// Package ivnt is a from-scratch Go reproduction of "Automated
// Interpretation and Reduction of In-Vehicle Network Traces at a Large
// Scale" (Mrowca, Pramsohler, Steinhorst, Baumgarten — DAC 2018): a
// distributable, parameterizable end-to-end preprocessing framework for
// massive in-vehicle network traces.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory); runnable entry points are the commands under cmd/ and the
// examples under examples/. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation.
package ivnt
