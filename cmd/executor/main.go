// Command executor runs one cluster worker node: it accepts engine
// stages from a driver over TCP and applies them to trace partitions —
// the per-server executor process of the paper's Spark deployment.
//
// On SIGINT/SIGTERM the executor drains gracefully: it stops accepting
// connections, finishes the tasks already in flight (and sends their
// results), then exits. A second signal forces an immediate exit.
//
//	executor -listen :7077 -capacity 5 -grace 30s
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ivnt/internal/cluster"
	"ivnt/internal/memgov"
	"ivnt/internal/telemetry"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("executor: ")
	var (
		listen    = flag.String("listen", ":7077", "TCP listen address")
		capacity  = flag.Int("capacity", 5, "advertised concurrent task capacity")
		grace     = flag.Duration("grace", 30*time.Second, "drain window for in-flight tasks on shutdown")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6061)")
		memBudget = flag.String("mem-budget", "", "task memory budget (e.g. 512MiB); sorts and aggregations spill to disk instead of exceeding it; empty = unlimited")
	)
	flag.Parse()

	if *memBudget != "" {
		budget, err := memgov.ParseBytes(*memBudget)
		if err != nil {
			log.Fatal(err)
		}
		memgov.Default().SetBudget(budget)
		memgov.Default().OnPressure(0.85, func(pressured bool) {
			if pressured {
				log.Printf("memory pressure: reservations above 85%% of %s budget (operators will spill)", *memBudget)
			} else {
				log.Printf("memory pressure cleared")
			}
		})
		log.Printf("memory budget %d bytes (%s)", budget, *memBudget)
	}

	dbg, err := telemetry.StartDebugServer(*debugAddr, telemetry.NewDebugMux(telemetry.Default(), nil, nil))
	if err != nil {
		log.Fatal(err)
	}
	if dbg != nil {
		defer dbg.Close()
		log.Printf("debug server on http://%s", dbg.Addr())
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	srv := &cluster.ExecutorServer{Capacity: *capacity, Logf: log.Printf}
	served := make(chan error, 1)
	go func() {
		served <- srv.ListenAndServe(context.Background(), *listen)
	}()
	log.Printf("listening on %s (capacity %d)", *listen, *capacity)

	select {
	case err := <-served:
		if err != nil {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v: draining (finishing in-flight tasks, up to %v)", s, *grace)
		go func() {
			s := <-sig
			log.Printf("received second %v: forcing exit after %d tasks", s, srv.TasksRun())
			os.Exit(1)
		}()
		srv.Shutdown(*grace)
		if err := <-served; err != nil {
			log.Printf("serve: %v", err)
		}
	}
	log.Printf("shut down after %d tasks", srv.TasksRun())
}
