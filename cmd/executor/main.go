// Command executor runs one cluster worker node: it accepts engine
// stages from a driver over TCP and applies them to trace partitions —
// the per-server executor process of the paper's Spark deployment.
//
//	executor -listen :7077 -capacity 5
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"

	"ivnt/internal/cluster"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("executor: ")
	var (
		listen   = flag.String("listen", ":7077", "TCP listen address")
		capacity = flag.Int("capacity", 5, "advertised concurrent task capacity")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := &cluster.ExecutorServer{Capacity: *capacity, Logf: log.Printf}
	log.Printf("listening on %s (capacity %d)", *listen, *capacity)
	if err := srv.ListenAndServe(ctx, *listen); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down after %d tasks", srv.TasksRun())
}
