// Command vetmetrics is the `make vet-metrics` gate: it fails the
// build when an engine.OpKind exists without a registered per-kind
// latency series and fused-step counter in the telemetry registry —
// i.e. when someone adds an operator but forgets its String() name or
// its metrics wiring. The check runs against the same init()-time
// registration the production binaries use, so passing here means
// every /metrics scrape carries the full engine_op_seconds and
// engine_fused_steps_total catalogue.
package main

import (
	"fmt"
	"os"

	"ivnt/internal/engine"
)

func main() {
	if err := engine.VerifyOpMetrics(); err != nil {
		fmt.Fprintf(os.Stderr, "vet-metrics: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("vet-metrics: ok (%d op kinds, each with registered engine_op_seconds and engine_fused_steps_total series)\n", engine.NumOpKinds)
}
