// Command vetmetrics is the `make vet-metrics` gate: it fails the
// build when an engine.OpKind exists without a registered per-kind
// latency series in the telemetry registry — i.e. when someone adds an
// operator but forgets its String() name or its metrics wiring. The
// check runs against the same init()-time registration the production
// binaries use, so passing here means every /metrics scrape carries
// the full engine_op_seconds catalogue.
package main

import (
	"fmt"
	"os"

	"ivnt/internal/engine"
)

func main() {
	if err := engine.VerifyOpMetrics(); err != nil {
		fmt.Fprintf(os.Stderr, "vet-metrics: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("vet-metrics: ok (%d op kinds, each with a registered engine_op_seconds series)\n", engine.NumOpKinds)
}
