// Command vetmetrics is the `make vet-metrics` gate: it fails the
// build when an engine.OpKind exists without a registered per-kind
// latency series and fused-step counter in the telemetry registry —
// i.e. when someone adds an operator but forgets its String() name or
// its metrics wiring — when the memory-governance catalogue (the
// engine spill counters and the memgov governor gauges) is incomplete,
// when the shuffle-exchange families (engine_shuffle_* and
// cluster_shuffle_*) are missing from the registry, and when the
// segment-store counters (segstore_*, including compactions and mmap
// opens), codec encoding-selection counters (colcodec_*),
// query-frontend counters (query_*) and query-service families
// (serve_*) are unregistered.
// The check runs against the same init()-time registration the
// production binaries use, so passing here means every /metrics scrape
// carries the full engine_op_seconds, engine_fused_steps_total,
// engine_spills_total/engine_spill_bytes_total and memgov_* catalogue.
package main

import (
	"fmt"
	"os"

	"ivnt/internal/cluster"
	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/query"
	"ivnt/internal/segstore"
	"ivnt/internal/serve"
)

func main() {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "vet-metrics: %v\n", err)
		os.Exit(1)
	}
	if err := engine.VerifyOpMetrics(); err != nil {
		fail(err)
	}
	if err := engine.VerifySpillMetrics(); err != nil {
		fail(err)
	}
	if err := memgov.VerifyMetrics(); err != nil {
		fail(err)
	}
	if err := engine.VerifyShuffleMetrics(); err != nil {
		fail(err)
	}
	if err := cluster.VerifyShuffleMetrics(); err != nil {
		fail(err)
	}
	if err := segstore.VerifyMetrics(); err != nil {
		fail(err)
	}
	if err := colcodec.VerifyMetrics(); err != nil {
		fail(err)
	}
	if err := query.VerifyMetrics(); err != nil {
		fail(err)
	}
	if err := serve.VerifyMetrics(); err != nil {
		fail(err)
	}
	fmt.Printf("vet-metrics: ok (%d op kinds with engine_op_seconds and engine_fused_steps_total series; spill, memgov, shuffle, segstore, colcodec, query and serve families registered)\n", engine.NumOpKinds)
}
