// Command mine runs the data-mining applications of Sec. 4.4 over a
// stored state representation: association rules, transition graphs
// (with rare-transition detection and DOT export) and anomaly ranking.
//
//	mine -store results -domain SYN -app rules
//	mine -store results -domain SYN -app graph -dot graph.dot
//	mine -store results -domain SYN -app anomaly -top 10
//	mine -store results -domain SYN -app motif -signal SYN.num00
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ivnt/internal/mining/anomaly"
	"ivnt/internal/mining/assoc"
	"ivnt/internal/mining/motif"
	"ivnt/internal/mining/transition"
	"ivnt/internal/store"
	"ivnt/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mine: ")
	var (
		storeDir  = flag.String("store", "", "result-store directory; required")
		domain    = flag.String("domain", "", "stored domain name; required (list with -domain '')")
		app       = flag.String("app", "rules", "application: rules, graph, anomaly or motif")
		signal    = flag.String("signal", "", "motif: which stored signal sequence to mine")
		motifLen  = flag.Int("motif-len", 3, "motif: pattern length")
		minSup    = flag.Float64("minsup", 0.1, "rules: minimum support")
		minConf   = flag.Float64("minconf", 0.8, "rules: minimum confidence")
		maxItems  = flag.Int("maxitems", 3, "rules: maximum item-set size")
		top       = flag.Int("top", 10, "rules/anomaly: how many results to print")
		rareN     = flag.Int("rare-count", 1, "graph: rare transition max count")
		rareP     = flag.Float64("rare-prob", 0.5, "graph: rare transition max probability")
		dotOut    = flag.String("dot", "", "graph: write Graphviz DOT to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6062)")
	)
	flag.Parse()
	if *storeDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	dbg, err := telemetry.StartDebugServer(*debugAddr, telemetry.NewDebugMux(telemetry.Default(), nil, nil))
	if err != nil {
		log.Fatal(err)
	}
	if dbg != nil {
		defer dbg.Close()
		log.Printf("debug server on http://%s", dbg.Addr())
	}
	db, err := store.Open(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	if *domain == "" {
		domains, err := db.Domains()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("stored domains:")
		for _, d := range domains {
			man, err := db.Manifest(d)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %6d states, %3d signals, extracted %s by %s\n",
				d, man.States, len(man.Signals), man.CreatedAt.Format("2006-01-02 15:04"), man.Executor)
		}
		return
	}

	tb, err := db.ReadState(*domain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domain %s: %d states x %d signals\n\n", *domain, tb.NumRows(), len(tb.Signals))

	switch *app {
	case "rules":
		rules := assoc.Mine(tb, assoc.Options{MinSupport: *minSup, MinConfidence: *minConf, MaxItems: *maxItems})
		n := *top
		if len(rules) < n {
			n = len(rules)
		}
		for _, r := range rules[:n] {
			fmt.Println(r)
		}
		fmt.Printf("(%d rules total)\n", len(rules))

	case "graph":
		g, err := transition.Build(tb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d states, %d transitions\n", g.NumStates(), g.Transitions)
		rare := g.Rare(*rareN, *rareP)
		fmt.Printf("%d rare transitions (count <= %d, prob <= %.2f):\n", len(rare), *rareN, *rareP)
		n := *top
		if len(rare) < n {
			n = len(rare)
		}
		for _, tr := range rare[:n] {
			fmt.Printf("  [%dx p=%.3f] %.50s -> %.50s\n", tr.Count, tr.Prob, tr.FromLabel, tr.ToLabel)
		}
		if *dotOut != "" {
			f, err := os.Create(*dotOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := g.WriteDOT(f, *rareN); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("graph written to %s\n", *dotOut)
		}

	case "anomaly":
		as := anomaly.Detect(tb, *top)
		fmt.Print(anomaly.Report(as))
		if len(as) > 0 {
			if ext, err := as[0].ToExtension(); err == nil {
				fmt.Printf("\nsuggested extension for further runs: %s on %s: %s\n", ext.WID, ext.SID, ext.Expr)
			}
		}

	case "motif":
		if *signal == "" {
			log.Fatal("motif mining needs -signal")
		}
		seq, err := db.ReadSequence(*domain, *signal)
		if err != nil {
			log.Fatal(err)
		}
		motifs, err := motif.Mine(seq, motif.Options{Length: *motifLen, MinSupport: *minSup, TopK: *top})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frequent motifs of %s (length %d):\n", *signal, *motifLen)
		for _, m := range motifs {
			fmt.Println(" ", m)
		}
		discords, err := motif.Discords(seq, motif.Options{Length: *motifLen}, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d discord windows (unique patterns, candidate errors)\n", len(discords))
		n := *top
		if len(discords) < n {
			n = len(discords)
		}
		for _, d := range discords[:n] {
			fmt.Println(" ", d)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		flag.Usage()
		os.Exit(2)
	}
}
