// Command inspect summarizes a recorded trace: row counts, channels,
// message types and — when a rules catalog is supplied — the Z
// classification (Sec. 4.2) every signal would receive.
//
//	inspect -trace syn.ivtr -catalog syn-catalog.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"ivnt/internal/classify"
	"ivnt/internal/engine"
	"ivnt/internal/interp"
	"ivnt/internal/protocol/dbc"
	"ivnt/internal/reduce"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")
	var (
		tracePath = flag.String("trace", "", "input trace file (IVTR); required")
		catPath   = flag.String("catalog", "", "optional rules catalog (JSON) for signal classification")
		dbcPath   = flag.String("dbc", "", "optional CAN database (DBC) to derive the catalog from")
		dbcChan   = flag.String("channel", "FC", "channel (b_id) the DBC messages occur on")
		rateT     = flag.Float64("rate-threshold", 2, "z_rate threshold T in values/second (Eq. 2)")
	)
	flag.Parse()
	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := trace.ReadFile(*tracePath)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rows:     %d\n", tr.Len())
	fmt.Printf("duration: %.2fs\n", tr.Duration())
	type pair struct {
		channel string
		mid     uint32
	}
	channels := map[string]int{}
	pairs := map[pair]int{}
	for i := range tr.Tuples {
		k := &tr.Tuples[i]
		channels[k.Channel]++
		pairs[pair{k.Channel, k.MsgID}]++
	}
	names := make([]string, 0, len(channels))
	for c := range channels {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Println("channels:")
	for _, c := range names {
		fmt.Printf("  %-8s %10d rows\n", c, channels[c])
	}
	fmt.Printf("message types: %d\n", len(pairs))

	if *catPath == "" && *dbcPath == "" {
		return
	}
	var catalog *rules.Catalog
	if *dbcPath != "" {
		db, err := dbc.ParseFile(*dbcPath)
		if err != nil {
			log.Fatal(err)
		}
		if catalog, err = db.ToCatalog(*dbcChan); err != nil {
			log.Fatal(err)
		}
	} else if catalog, err = rules.LoadCatalog(*catPath); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	exec := engine.NewLocal(0)
	ucomb := catalog.Translations
	ks, _, err := interp.Extract(ctx, exec, tr.ToRelation(8), ucomb, interp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	groups, err := reduce.Split(ctx, exec, ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("signal classification (Z = (type, rate, #values, valence)):")
	for _, g := range groups {
		sid := g.Key.AsString()
		var hint *rules.Translation
		if ts := catalog.Lookup(sid); len(ts) > 0 {
			hint = &ts[0]
		}
		z, err := classify.Compute(g.Rel, hint, *rateT)
		if err != nil {
			log.Fatal(err)
		}
		dt, br := classify.Classify(z)
		fmt.Printf("  %-16s Z=%-18s -> %-8s branch %s (%d instances)\n",
			sid, z, dt, br, g.Rel.NumRows())
	}
}
