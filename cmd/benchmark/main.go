// Command benchmark regenerates the paper's evaluation: Table 5,
// Fig. 5, Table 6 and the DESIGN.md ablations, printing paper-shaped
// tables. Scale factors shrink the paper's row counts to local-machine
// budgets while preserving shape (see DESIGN.md).
//
//	benchmark -exp all
//	benchmark -exp table6 -scale 5e-5
//	benchmark -exp fig5 -cluster host1:7077,host2:7077
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ivnt/internal/bench"
	"ivnt/internal/cluster"
	"ivnt/internal/engine"
	"ivnt/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchmark: ")
	var (
		exp         = flag.String("exp", "all", "experiment: table5, fig5, table6, preselect, scaling, reduction, storage, wire or all")
		scale       = flag.Float64("scale", 0, "scale factor vs paper row counts (0 = per-experiment default)")
		workers     = flag.Int("workers", 0, "local executor workers (0 = all cores)")
		steps       = flag.Int("steps", 8, "fig5: sweep steps per data set")
		clusterFl   = flag.String("cluster", "", "table6: comma-separated executor addresses for the proposed side")
		taskTimeout = flag.Duration("task-timeout", 0, "cluster: per-task deadline (0 = driver default, negative disables)")
		specFactor  = flag.Float64("speculation", 0, "cluster: straggler speculation factor k (0 = driver default, negative disables)")
		wireRows    = flag.Int("wire-rows", 0, "wire: rows in the streamed relation (0 = default)")
		wireOut     = flag.String("wire-out", "", "wire: also write results as JSON to this file (e.g. BENCH_engine.json)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON (load in Perfetto) of cluster task spans to this file")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /tasks, /trace and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	ctx := context.Background()

	var tracer *telemetry.Tracer
	if *traceOut != "" || *debugAddr != "" {
		tracer = telemetry.NewTracer()
	}
	tasks := telemetry.NewTaskTable()
	dbg, err := telemetry.StartDebugServer(*debugAddr, telemetry.NewDebugMux(telemetry.Default(), tracer, tasks))
	if err != nil {
		log.Fatal(err)
	}
	if dbg != nil {
		defer dbg.Close()
		log.Printf("debug server on http://%s", dbg.Addr())
	}
	if *traceOut != "" {
		defer func() {
			if err := writeTrace(*traceOut, tracer); err != nil {
				log.Printf("trace-out: %v", err)
			}
		}()
	}

	run := func(name string) {
		switch name {
		case "table5":
			s := *scale
			if s == 0 {
				s = bench.DefaultScale
			}
			fmt.Print(bench.FormatTable5(bench.Table5(s), s))
		case "fig5":
			points, err := bench.Fig5(ctx, bench.Fig5Options{Scale: *scale, Steps: *steps, Workers: *workers})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatFig5(points))
			fmt.Println("log-log slopes (paper claims O(n), slope ≈ 1):")
			slopes := bench.Fig5Slope(points)
			for _, ds := range []string{"SYN", "LIG", "STA"} {
				if s, ok := slopes[ds]; ok {
					fmt.Printf("  %-5s %.2f\n", ds, s)
				}
			}
		case "table6":
			opts := bench.Table6Options{Scale: *scale, Workers: *workers}
			if *clusterFl != "" {
				opts.Exec = &cluster.Driver{
					Addrs:             strings.Split(*clusterFl, ","),
					SlotsPerExecutor:  2,
					TaskTimeout:       *taskTimeout,
					SpeculationFactor: *specFactor,
					Tracer:            tracer,
					Tasks:             tasks,
				}
			} else {
				opts.Exec = engine.NewLocal(*workers)
			}
			rows, err := bench.Table6(ctx, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatTable6(rows, opts))
			fmt.Printf("(proposed executor: %s)\n", opts.Exec.Name())
		case "preselect":
			r, err := bench.AblationPreselect(ctx, *scale, *workers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatPreselect(r))
		case "scaling":
			points, err := bench.AblationScaling(ctx, *scale, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatScaling(points))
		case "reduction":
			rows, err := bench.AblationReduction(ctx, *scale, *workers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatReduction(rows))
		case "wire":
			if err := runWire(ctx, *wireRows, *wireOut, tracer, tasks); err != nil {
				log.Fatal(err)
			}
		case "storage":
			rows, err := bench.AblationStorage(*scale)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatStorage(rows))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"table5", "fig5", "table6", "preselect", "scaling", "reduction", "storage", "wire"} {
			run(name)
		}
		return
	}
	run(*exp)
}

// runWire measures protocol-v3 bytes per task against the simulated v2
// baseline, with compression off and on, and optionally writes the
// results (plus raw codec timings) as JSON.
func runWire(ctx context.Context, rows int, outPath string, tracer *telemetry.Tracer, tasks *telemetry.TaskTable) error {
	var results []*bench.WireResult
	var codec []*bench.WireCodecResult
	for _, compress := range []bool{false, true} {
		opts := bench.WireOptions{Rows: rows, Compress: compress, Tracer: tracer, Tasks: tasks}
		r, err := bench.Wire(ctx, opts)
		if err != nil {
			return err
		}
		results = append(results, r)
		c, err := bench.WireCodec(opts)
		if err != nil {
			return err
		}
		codec = append(codec, c)
	}
	fmt.Print(bench.FormatWire(results))
	for _, c := range codec {
		fmt.Printf("codec (compress=%v): %d rows/partition, encode %.0f ns/op, decode %.0f ns/op, %d B encoded\n",
			c.Compress, c.RowsPerPartition, c.EncodeNsPerOp, c.DecodeNsPerOp, c.EncodedBytes)
	}
	if outPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		Wire  []*bench.WireResult      `json:"wire"`
		Codec []*bench.WireCodecResult `json:"codec"`
	}{results, codec}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", outPath)
	return nil
}

// writeTrace exports every span recorded this run as a Chrome
// trace_event document, ready to load in Perfetto / chrome://tracing.
func writeTrace(path string, tracer *telemetry.Tracer) error {
	spans := tracer.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %s (%d spans)", path, len(spans))
	return nil
}
