// Command benchmark regenerates the paper's evaluation: Table 5,
// Fig. 5, Table 6 and the DESIGN.md ablations, printing paper-shaped
// tables. Scale factors shrink the paper's row counts to local-machine
// budgets while preserving shape (see DESIGN.md).
//
//	benchmark -exp all
//	benchmark -exp table6 -scale 5e-5
//	benchmark -exp fig5 -cluster host1:7077,host2:7077
package main

import (
	"compress/flate"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ivnt/internal/bench"
	"ivnt/internal/cluster"
	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchmark: ")
	var (
		exp         = flag.String("exp", "all", "experiment: table5, fig5, table6, preselect, scaling, reduction, storage, wire, pipeline, spill, shuffle, scan, serve or all")
		scale       = flag.Float64("scale", 0, "scale factor vs paper row counts (0 = per-experiment default)")
		workers     = flag.Int("workers", 0, "local executor workers (0 = all cores)")
		steps       = flag.Int("steps", 8, "fig5: sweep steps per data set")
		clusterFl   = flag.String("cluster", "", "table6: comma-separated executor addresses for the proposed side")
		taskTimeout = flag.Duration("task-timeout", 0, "cluster: per-task deadline (0 = driver default, negative disables)")
		specFactor  = flag.Float64("speculation", 0, "cluster: straggler speculation factor k (0 = driver default, negative disables)")
		wireRows    = flag.Int("wire-rows", 0, "wire: rows in the streamed relation (0 = default)")
		wireOut     = flag.String("wire-out", "", "wire: also write results into this JSON file's \"wire\"/\"codec\" sections (e.g. BENCH_engine.json)")
		pipeRows    = flag.Int("pipeline-rows", 0, "pipeline: rows in the measured partition (0 = default)")
		pipeOut     = flag.String("pipeline-out", "", "pipeline: also write results into this JSON file's \"pipeline\" section (e.g. BENCH_engine.json)")
		spillRows   = flag.Int("spill-rows", 0, "spill: rows in the measured partition (0 = default)")
		spillBudget = flag.String("spill-budget", "", "spill: memory budget for the governed run (e.g. 1MiB; empty = footprint/4)")
		spillOut    = flag.String("spill-out", "", "spill: also write results into this JSON file's \"spill\" section (e.g. BENCH_engine.json)")
		shufRows    = flag.Int("shuffle-rows", 0, "shuffle: probe-side rows (0 = default)")
		shufParts   = flag.Int("shuffle-parts", 0, "shuffle: exchange fan-out (0 = 2x executors)")
		shufKeyCard = flag.Int("shuffle-keycard", 0, "shuffle: join-key cardinality = build-side rows (0 = default)")
		shufOut     = flag.String("shuffle-out", "", "shuffle: also write results into this JSON file's \"shuffle\" section (e.g. BENCH_engine.json)")
		scanSegs    = flag.Int("scan-segments", 0, "scan: segments in the store (0 = default)")
		scanRows    = flag.Int("scan-rows", 0, "scan: rows per segment (0 = default)")
		scanOut     = flag.String("scan-out", "", "scan: also write results into this JSON file's \"scan\" section (e.g. BENCH_engine.json)")
		serveSegs   = flag.Int("serve-segments", 0, "serve: segments in the store (0 = default)")
		serveRows   = flag.Int("serve-rows", 0, "serve: rows per segment (0 = default)")
		serveIters  = flag.Int("serve-iters", 0, "serve: requests per mode (0 = default)")
		serveOut    = flag.String("serve-out", "", "serve: also write results into this JSON file's \"serve\" section (e.g. BENCH_engine.json)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON (load in Perfetto) of cluster task spans to this file")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /tasks, /trace and /debug/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	flag.Parse()
	ctx := context.Background()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			log.Printf("wrote %s", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			log.Printf("wrote %s", *memProfile)
		}()
	}

	var tracer *telemetry.Tracer
	if *traceOut != "" || *debugAddr != "" {
		tracer = telemetry.NewTracer()
	}
	tasks := telemetry.NewTaskTable()
	dbg, err := telemetry.StartDebugServer(*debugAddr, telemetry.NewDebugMux(telemetry.Default(), tracer, tasks))
	if err != nil {
		log.Fatal(err)
	}
	if dbg != nil {
		defer dbg.Close()
		log.Printf("debug server on http://%s", dbg.Addr())
	}
	if *traceOut != "" {
		defer func() {
			if err := writeTrace(*traceOut, tracer); err != nil {
				log.Printf("trace-out: %v", err)
			}
		}()
	}

	run := func(name string) {
		switch name {
		case "table5":
			s := *scale
			if s == 0 {
				s = bench.DefaultScale
			}
			fmt.Print(bench.FormatTable5(bench.Table5(s), s))
		case "fig5":
			points, err := bench.Fig5(ctx, bench.Fig5Options{Scale: *scale, Steps: *steps, Workers: *workers})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatFig5(points))
			fmt.Println("log-log slopes (paper claims O(n), slope ≈ 1):")
			slopes := bench.Fig5Slope(points)
			for _, ds := range []string{"SYN", "LIG", "STA"} {
				if s, ok := slopes[ds]; ok {
					fmt.Printf("  %-5s %.2f\n", ds, s)
				}
			}
		case "table6":
			opts := bench.Table6Options{Scale: *scale, Workers: *workers}
			if *clusterFl != "" {
				opts.Exec = &cluster.Driver{
					Addrs:             strings.Split(*clusterFl, ","),
					SlotsPerExecutor:  2,
					TaskTimeout:       *taskTimeout,
					SpeculationFactor: *specFactor,
					Tracer:            tracer,
					Tasks:             tasks,
				}
			} else {
				opts.Exec = engine.NewLocal(*workers)
			}
			rows, err := bench.Table6(ctx, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatTable6(rows, opts))
			fmt.Printf("(proposed executor: %s)\n", opts.Exec.Name())
		case "preselect":
			r, err := bench.AblationPreselect(ctx, *scale, *workers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatPreselect(r))
		case "scaling":
			points, err := bench.AblationScaling(ctx, *scale, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatScaling(points))
		case "reduction":
			rows, err := bench.AblationReduction(ctx, *scale, *workers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatReduction(rows))
		case "wire":
			if err := runWire(ctx, *wireRows, *wireOut, tracer, tasks); err != nil {
				log.Fatal(err)
			}
		case "pipeline":
			results, err := bench.Pipeline(bench.PipelineOptions{Rows: *pipeRows})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatPipeline(results))
			if *pipeOut != "" {
				if err := writeJSONSections(*pipeOut, map[string]any{"pipeline": results}); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("(wrote %s)\n", *pipeOut)
			}
		case "spill":
			opts := bench.SpillOptions{Rows: *spillRows}
			if *spillBudget != "" {
				b, err := memgov.ParseBytes(*spillBudget)
				if err != nil {
					log.Fatal(err)
				}
				opts.Budget = b
			}
			results, err := bench.Spill(opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatSpill(results))
			if *spillOut != "" {
				if err := writeJSONSections(*spillOut, map[string]any{"spill": results}); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("(wrote %s)\n", *spillOut)
			}
		case "shuffle":
			results, err := bench.Shuffle(ctx, bench.ShuffleOptions{
				Rows: *shufRows, Parts: *shufParts, KeyCard: *shufKeyCard,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatShuffle(results))
			if *shufOut != "" {
				if err := writeJSONSections(*shufOut, map[string]any{"shuffle": results}); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("(wrote %s)\n", *shufOut)
			}
		case "scan":
			results, err := bench.Scan(ctx, bench.ScanOptions{
				Segments: *scanSegs, RowsPerSeg: *scanRows, Compress: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatScan(results))
			if *scanOut != "" {
				if err := writeJSONSections(*scanOut, map[string]any{"scan": results}); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("(wrote %s)\n", *scanOut)
			}
		case "serve":
			results, err := bench.Serve(ctx, bench.ServeOptions{
				Segments: *serveSegs, RowsPerSeg: *serveRows, Iters: *serveIters,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatServe(results))
			if *serveOut != "" {
				if err := writeJSONSections(*serveOut, map[string]any{"serve": results}); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("(wrote %s)\n", *serveOut)
			}
		case "storage":
			rows, err := bench.AblationStorage(*scale)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatStorage(rows))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"table5", "fig5", "table6", "preselect", "scaling", "reduction", "storage", "wire", "pipeline", "spill", "shuffle", "scan", "serve"} {
			run(name)
		}
		return
	}
	run(*exp)
}

// runWire measures protocol-v3 bytes per task against the simulated v2
// baseline, with compression off and on, and optionally writes the
// results (plus raw codec timings) as JSON. The codec sweep pins the
// DEFLATE-level trade-off behind the driver's BestSpeed default: level
// 0 (= flate.BestSpeed) against flate.BestCompression.
func runWire(ctx context.Context, rows int, outPath string, tracer *telemetry.Tracer, tasks *telemetry.TaskTable) error {
	var results []*bench.WireResult
	var codec []*bench.WireCodecResult
	for _, compress := range []bool{false, true} {
		opts := bench.WireOptions{Rows: rows, Compress: compress, Tracer: tracer, Tasks: tasks}
		r, err := bench.Wire(ctx, opts)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	for _, cfg := range []struct {
		compress bool
		level    int
	}{{false, 0}, {true, 0}, {true, flate.BestCompression}} {
		c, err := bench.WireCodec(bench.WireOptions{Rows: rows, Compress: cfg.compress, Level: cfg.level})
		if err != nil {
			return err
		}
		codec = append(codec, c)
	}
	fmt.Print(bench.FormatWire(results))
	for _, c := range codec {
		fmt.Printf("codec (compress=%v level=%d): %d rows/partition, encode %.0f ns/op, decode %.0f ns/op, %d B encoded\n",
			c.Compress, c.Level, c.RowsPerPartition, c.EncodeNsPerOp, c.DecodeNsPerOp, c.EncodedBytes)
	}
	if outPath == "" {
		return nil
	}
	if err := writeJSONSections(outPath, map[string]any{"wire": results, "codec": codec}); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", outPath)
	return nil
}

// writeJSONSections merges the given top-level sections into the JSON
// object at path, preserving any other sections already present — so
// the wire and pipeline experiments can each refresh their part of
// BENCH_engine.json without clobbering the other's numbers.
func writeJSONSections(path string, sections map[string]any) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: existing content is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for name, v := range sections {
		blob, err := json.Marshal(v)
		if err != nil {
			return err
		}
		doc[name] = blob
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// writeTrace exports every span recorded this run as a Chrome
// trace_event document, ready to load in Perfetto / chrome://tracing.
func writeTrace(path string, tracer *telemetry.Tracer) error {
	spans := tracer.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %s (%d spans)", path, len(spans))
	return nil
}
