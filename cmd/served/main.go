// Command served runs the multi-tenant query service: an HTTP daemon
// that parses SQL-ish statements, compiles them onto engine plans and
// executes them over per-tenant segment stores — with a resident local
// worker pool or, given -cluster, a persistent driver whose pooled
// executor connections keep shipped stages warm across queries.
//
//	served -listen :8088 -catalog catalog.json -workers 4
//	served -listen :8088 -catalog catalog.json -cluster host1:7077,host2:7077
//
// On SIGINT/SIGTERM the daemon drains gracefully: new queries and
// ingests get 503, in-flight ones finish (up to -grace), the executor
// pool is released, then the process exits. A second signal forces an
// immediate exit. See docs/QUERY.md for the statement grammar, the
// catalog file format and a worked curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ivnt/internal/cluster"
	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/segstore"
	"ivnt/internal/serve"
	"ivnt/internal/telemetry"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("served: ")
	var (
		listen      = flag.String("listen", ":8088", "HTTP listen address")
		catalogPath = flag.String("catalog", "", "catalog config file (tenants -> relations -> store dirs); required")
		clusterAddr = flag.String("cluster", "", "comma-separated executor addresses; empty runs stages in-process")
		workers     = flag.Int("workers", runtime.NumCPU(), "local worker pool size (ignored with -cluster)")
		grace       = flag.Duration("grace", 30*time.Second, "drain window for in-flight queries on shutdown")
		compress    = flag.Bool("compress", false, "DEFLATE-compress column chunks of ingested segments")
		level       = flag.Int("compress-level", 0, "DEFLATE level for -compress (0 = BestSpeed)")
		encodings   = flag.Bool("encodings", true, "dictionary/RLE-encode column chunks of ingested and compacted segments")
		compactIvl  = flag.Duration("compact-interval", 0, "background compaction pass interval (0 disables); passes skip ticks with queries in flight")
		compactRows = flag.Int("compact-target-rows", 0, "max rows per compacted segment (0 = 64Ki)")
		memBudget   = flag.String("mem-budget", "", "process memory budget (e.g. 512MiB); admission defers under pressure and operators spill; empty = unlimited")
	)
	flag.Parse()

	if *catalogPath == "" {
		log.Fatal("-catalog is required")
	}
	cfg, err := serve.LoadConfig(*catalogPath)
	if err != nil {
		log.Fatal(err)
	}

	if *memBudget != "" {
		budget, err := memgov.ParseBytes(*memBudget)
		if err != nil {
			log.Fatal(err)
		}
		memgov.Default().SetBudget(budget)
		log.Printf("memory budget %d bytes (%s)", budget, *memBudget)
	}

	var exec engine.Executor
	if *clusterAddr != "" {
		addrs := strings.Split(*clusterAddr, ",")
		exec = &cluster.Driver{Addrs: addrs, Persistent: true}
		log.Printf("cluster executor: %d node(s), persistent connection pool", len(addrs))
	} else {
		exec = engine.NewLocal(*workers)
		log.Printf("local executor: %d workers", *workers)
	}

	srv := &serve.Server{
		Exec:    exec,
		Catalog: serve.NewCatalog(cfg, segstore.Options{Compress: *compress, Level: *level, Encodings: *encodings}),
		Tracer:  telemetry.NewTracer(),
		Tasks:   telemetry.NewTaskTable(),
	}
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}

	compactCtx, stopCompact := context.WithCancel(context.Background())
	defer stopCompact()
	if *compactIvl > 0 {
		go srv.RunCompactor(compactCtx, *compactIvl, segstore.CompactOptions{TargetRows: *compactRows})
		log.Printf("background compaction every %v (target %d rows/segment)", *compactIvl, *compactRows)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	served := make(chan error, 1)
	go func() { served <- hs.ListenAndServe() }()
	log.Printf("listening on %s (%d tenants)", *listen, len(cfg.Tenants))

	select {
	case err := <-served:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v: draining (finishing in-flight queries, up to %v)", s, *grace)
		go func() {
			s := <-sig
			log.Printf("received second %v: forcing exit", s)
			os.Exit(1)
		}()
		if srv.Shutdown(*grace) {
			log.Printf("drained")
		} else {
			log.Printf("drain window expired with queries still in flight")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = hs.Shutdown(ctx)
		cancel()
	}
	log.Printf("shut down")
}
