// Command tracegen generates synthetic in-vehicle network traces
// matching the paper's SYN/LIG/STA data sets (Table 5), along with the
// rules catalog and a default domain configuration describing them.
//
//	tracegen -dataset SYN -n 100000 -o syn.ivtr -catalog syn-catalog.json -config syn-domain.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ivnt/internal/gen"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		dataset  = flag.String("dataset", "SYN", "data set: SYN, LIG or STA")
		n        = flag.Int("n", 100000, "number of message instances (examples) to generate")
		out      = flag.String("o", "", "output trace file (IVTR format); required")
		csvOut   = flag.String("csv", "", "optional additional CSV output file")
		catOut   = flag.String("catalog", "", "optional output path for the rules catalog (JSON)")
		cfgOut   = flag.String("config", "", "optional output path for the default domain config (JSON)")
		journeys = flag.Int("journeys", 1, "number of independent journeys (files suffixed .J)")
		seed     = flag.Int64("seed", 0, "override the data set's default seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := gen.ByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	d := gen.Build(spec)

	writeTrace := func(path string, tr *trace.Trace) {
		if err := trace.WriteFile(path, tr); err != nil {
			log.Fatal(err)
		}
		st := d.DatasetStats(tr)
		fmt.Printf("%s: %d examples, %d signal types (α=%d β=%d γ=%d), %.2f signals/message, %.1fs span\n",
			path, st.Examples, st.SignalTypes, st.Alpha, st.Beta, st.Gamma,
			st.SignalsPerMessage, tr.Duration())
	}

	if *journeys <= 1 {
		tr := d.Generate(*n)
		writeTrace(*out, tr)
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := trace.WriteCSV(f, tr); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		fleet := gen.GenerateJourneys(spec, *journeys, *n)
		for j, tr := range fleet {
			writeTrace(fmt.Sprintf("%s.%d", *out, j), tr)
		}
	}

	if *catOut != "" {
		if err := rules.SaveCatalog(*catOut, d.Catalog); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d translation tuples\n", *catOut, len(d.Catalog.Translations))
	}
	if *cfgOut != "" {
		if err := rules.SaveConfig(*cfgOut, d.DefaultConfig()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: domain %q selecting %d signals\n", *cfgOut, spec.Name, spec.NumSignals())
	}
}
