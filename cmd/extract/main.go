// Command extract runs the full preprocessing pipeline (Algorithm 1) on
// a recorded trace under a domain configuration and writes the state
// representation — the per-domain workflow of Fig. 1.
//
//	extract -trace syn.ivtr -catalog syn-catalog.json -config syn-domain.json -o state.txt
//	extract -trace j.ivtr -dbc body.dbc -channel FC -config dom.json  # DBC documentation
//	extract ... -cluster host1:7077,host2:7077   # distributed execution
//	extract ... -store results/                  # persist to the result database
//	extract ... -store-dir segments/             # persist as columnar segments
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ivnt/internal/cluster"
	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/protocol/dbc"
	"ivnt/internal/reduce"
	"ivnt/internal/rules"
	"ivnt/internal/segstore"
	"ivnt/internal/store"
	"ivnt/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("extract: ")
	var (
		tracePath = flag.String("trace", "", "input trace file (IVTR); required")
		catPath   = flag.String("catalog", "", "rules catalog (JSON); this or -dbc required")
		dbcPath   = flag.String("dbc", "", "CAN database (DBC) to derive the catalog from")
		dbcChan   = flag.String("channel", "FC", "channel (b_id) the DBC messages occur on")
		cfgPath   = flag.String("config", "", "domain configuration (JSON); required")
		storeDir  = flag.String("store", "", "persist results into this result-store directory")
		segDir    = flag.String("store-dir", "", "persist reduced sequences as columnar segments under this directory (one segment store per domain, one segment per signal)")
		segEnc    = flag.Bool("store-encodings", true, "dictionary/RLE-encode column chunks of persisted segments (reduced signal sequences are low-cardinality, so this usually shrinks them further than DEFLATE alone)")
		out       = flag.String("o", "", "state representation output file (default stdout)")
		workers   = flag.Int("workers", 0, "local executor workers (0 = all cores)")
		clusterFl = flag.String("cluster", "", "comma-separated executor addresses; empty = local execution")
		maxRows   = flag.Int("maxrows", 0, "truncate rendered state table (0 = all)")
		noPresel  = flag.Bool("no-preselect", false, "disable line-3 preselection (interpret full catalog)")
	)
	flag.Parse()
	if *tracePath == "" || (*catPath == "" && *dbcPath == "") || *cfgPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	tr, err := trace.ReadFile(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	var catalog *rules.Catalog
	if *dbcPath != "" {
		db, err := dbc.ParseFile(*dbcPath)
		if err != nil {
			log.Fatal(err)
		}
		if catalog, err = db.ToCatalog(*dbcChan); err != nil {
			log.Fatal(err)
		}
	} else {
		if catalog, err = rules.LoadCatalog(*catPath); err != nil {
			log.Fatal(err)
		}
	}
	cfg, err := rules.LoadConfig(*cfgPath)
	if err != nil {
		log.Fatal(err)
	}

	var exec engine.Executor = engine.NewLocal(*workers)
	if *clusterFl != "" {
		exec = &cluster.Driver{Addrs: strings.Split(*clusterFl, ","), SlotsPerExecutor: 2}
	}
	fw, err := core.New(catalog, cfg, exec)
	if err != nil {
		log.Fatal(err)
	}
	if *noPresel {
		fw.Interp.Preselect = false
		fw.Interp.FullCatalog = catalog.Translations
	}

	res, err := fw.RunTrace(context.Background(), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executor:        %s\n", exec.Name())
	fmt.Printf("trace rows:      %d\n", tr.Len())
	fmt.Printf("K_s rows:        %d\n", res.KsRows)
	fmt.Printf("reduced rows:    %d (ratio %.3f)\n", res.ReduceStats.RowsOut, res.ReductionRatio())
	fmt.Printf("states:          %d\n", res.State.NumRows())
	fmt.Println("signals:")
	for _, s := range res.Signals {
		fmt.Printf("  %s\n", s.Summary())
	}
	for _, red := range res.Reduced {
		if len(red.Gateway.Corresponding) > 0 {
			fmt.Printf("gateway: %s processed on %s for %s\n",
				red.SID, red.Gateway.RepChannel, strings.Join(red.Gateway.Corresponding, ","))
		}
		if len(red.Gateway.Mismatched) > 0 {
			fmt.Printf("gateway MISMATCH: %s differs on %s (potential gateway fault)\n",
				red.SID, strings.Join(red.Gateway.Mismatched, ","))
		}
	}

	if *storeDir != "" {
		db, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.WriteResult(cfg.Name, res, exec.Name(), tr.Len()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results stored under %s/%s\n", *storeDir, cfg.Name)
	}

	if *segDir != "" {
		segs, rows, err := writeSegments(filepath.Join(*segDir, cfg.Name), res.Reduced, *segEnc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d segments (%d rows) sealed under %s/%s\n", segs, rows, *segDir, cfg.Name)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	} else {
		fmt.Println()
	}
	if err := res.State.Render(w, *maxRows); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Printf("state representation written to %s\n", *out)
	}
}

// writeSegments seals each signal's reduced sequence as one immutable
// columnar segment in a per-domain segment store. Segment-per-signal is
// the natural clustering: every segment's sid zone map collapses to a
// single value, so a pushed-down `sid == "..."` filter prunes all other
// signals without decoding a byte (see docs/STORAGE.md).
func writeSegments(dir string, reduced []reduce.Reduced, encodings bool) (segs, rows int, err error) {
	st, err := segstore.Open(dir, trace.SignalSchema(), segstore.Options{Compress: true, Encodings: encodings})
	if err != nil {
		return 0, 0, err
	}
	for _, red := range reduced {
		rs := red.Rel.Rows()
		if len(rs) == 0 {
			continue
		}
		if err := st.AppendSegment(rs); err != nil {
			return segs, rows, fmt.Errorf("segment for %s: %w", red.SID, err)
		}
		segs++
		rows += len(rs)
	}
	return segs, rows, nil
}
