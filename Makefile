GO ?= go

.PHONY: all build test race vet vet-metrics check bench bench-smoke profile difftest difftest-spill difftest-shuffle difftest-scan difftest-query difftest-compact fuzz-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the full module: the cluster scheduler is the
# concurrency-heavy core, but the local executor, rule cache and
# pipeline caches are shared-state too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Metric-catalogue gate: every engine.OpKind must have a registered
# engine_op_seconds{op=...} latency series (see docs/OBSERVABILITY.md).
vet-metrics:
	$(GO) run ./cmd/vetmetrics

# check is the pre-merge gate: nothing lands unless the module builds,
# vets, tests and race-tests clean (see docs/TESTING.md).
check: build vet vet-metrics test race

# Differential correctness run: DIFFTEST_N seeded workloads, each
# executed on the oracle, the local executor and a real TCP cluster,
# plus the five metamorphic invariants (partition count, row order,
# compression, kill+restart, speculation). Reproduce a reported seed
# with: go test ./internal/difftest/ -run Differential -difftest.seed=<seed> -v
DIFFTEST_N ?= 25
difftest:
	$(GO) test ./internal/difftest/ -run Differential -v -difftest.n=$(DIFFTEST_N)

# Differential run under a memory budget small enough that every sort
# and aggregation takes the external (spill-to-disk) path, on both the
# row and vectorized engines — results must stay bitwise identical to
# the ungoverned oracle (see docs/MEMORY.md).
SPILL_BUDGET ?= 4096
difftest-spill:
	$(GO) test -race ./internal/difftest/ -run 'DifferentialSpill|Differential$$' -v -difftest.n=$(DIFFTEST_N) -difftest.membudget=$(SPILL_BUDGET)

# Shuffle-exchange differential run, race-checked: every seeded
# workload's shuffle materialization / join / aggregation plan is
# compared bitwise against PartitionByKey and the broadcast funnel,
# in-process and over a real TCP cluster (see docs/SHUFFLE.md).
# Reproduce a reported seed with:
#   go test ./internal/difftest/ -run ShuffleDifferential -difftest.shuffle -difftest.seed=<seed> -v
difftest-shuffle:
	$(GO) test -race ./internal/difftest/ -run ShuffleDifferential -v -difftest.n=$(DIFFTEST_N)

# Segment-scan differential run, race-checked: every seeded workload is
# sealed into a persistent segment store and the pushdown scan (zone-map
# pruning + column projection) is held bitwise-equal to the full scan
# run through the engine's own Filter, the oracle, and a real TCP
# cluster reading segment files itself (see docs/STORAGE.md).
# Reproduce a reported seed with:
#   go test ./internal/difftest/ -run ScanDifferential -difftest.scan -difftest.seed=<seed> -v
difftest-scan:
	$(GO) test -race ./internal/difftest/ -run ScanDifferential -v -difftest.n=$(DIFFTEST_N)

# Query-frontend differential run, race-checked: every seeded workload
# gets a generated SELECT statement whose compiled plan must be the
# very op tree a caller would hand-build (same OpDesc data, same stage
# fingerprint) and whose execution over sealed segments stays
# bitwise-equal to the oracle and the hand-built pipeline, plus an
# aggregate statement held row-for-row equal to the hand-built
# distributed plan (see docs/QUERY.md).
# Reproduce a reported seed with:
#   go test ./internal/difftest/ -run QueryDifferential -difftest.query -difftest.seed=<seed> -v
difftest-query:
	$(GO) test -race ./internal/difftest/ -run QueryDifferential -v -difftest.n=$(DIFFTEST_N)

# Encoding/compaction differential run, race-checked: every seeded
# workload is sealed raw, dict/RLE-encoded and encoded-then-compacted;
# all three stores must scan bitwise-equal (raw == encoded per
# partition, raw == compacted concatenated) and each pushdown scan must
# match its oracle, in-process and over a real TCP cluster reading
# encoded segment files (see docs/STORAGE.md).
# Reproduce a reported seed with:
#   go test ./internal/difftest/ -run CompactDifferential -difftest.encoding -difftest.seed=<seed> -v
difftest-compact:
	$(GO) test -race ./internal/difftest/ -run CompactDifferential -v -difftest.n=$(DIFFTEST_N)

# Short fuzz pass over every fuzz target, seeded from the checked-in
# corpora under */testdata/fuzz/.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/colcodec/ -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/colcodec/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/expr/ -run '^$$' -fuzz '^FuzzParseAndEval$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/protocol/dbc/ -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/telemetry/ -run '^$$' -fuzz '^FuzzPromWriter$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/segstore/ -run '^$$' -fuzz '^FuzzSegmentDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/segstore/ -run '^$$' -fuzz '^FuzzFooter$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/query/ -run '^$$' -fuzz '^FuzzParseQuery$$' -fuzztime $(FUZZTIME)

# Codec, join-stage and cluster micro-benchmarks, then the wire,
# pipeline, spill, shuffle, scan and serve experiments, which refresh
# their sections of BENCH_engine.json (the writer merges, so none
# clobbers another's).
bench: build
	$(GO) test -run NONE -bench 'BenchmarkEncode|BenchmarkDecode' -benchtime 0.5s ./internal/colcodec/
	$(GO) test -run NONE -bench 'BenchmarkBroadcastJoinStage|BenchmarkRuleCacheParallel|BenchmarkEvalRuleParallel' -benchtime 0.5s ./internal/engine/
	$(GO) test -run NONE -bench 'BenchmarkFusedPipeline|BenchmarkBroadcastJoinRows|BenchmarkBroadcastJoinVec|BenchmarkSortWithin' -benchtime 0.5s ./internal/engine/
	$(GO) test -run NONE -bench 'BenchmarkClusterStage' -benchtime 0.5s ./internal/cluster/
	$(GO) run ./cmd/benchmark -exp wire -wire-out BENCH_engine.json
	$(GO) run ./cmd/benchmark -exp pipeline -pipeline-out BENCH_engine.json
	$(GO) run ./cmd/benchmark -exp spill -spill-out BENCH_engine.json
	$(GO) run ./cmd/benchmark -exp shuffle -shuffle-out BENCH_engine.json
	$(GO) run ./cmd/benchmark -exp scan -scan-out BENCH_engine.json
	$(GO) run ./cmd/benchmark -exp serve -serve-out BENCH_engine.json

# One-iteration pass over every benchmark in the module: catches
# bit-rotted benchmark code in CI without paying measurement time.
bench-smoke: build
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# CPU + heap profiles of the vectorized pipeline experiment; inspect
# with `go tool pprof cpu.prof` / `go tool pprof mem.prof` (see
# docs/PERFORMANCE.md).
profile: build
	$(GO) run ./cmd/benchmark -exp pipeline -cpuprofile cpu.prof -memprofile mem.prof
