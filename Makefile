GO ?= go

.PHONY: all build test race vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The cluster scheduler is the concurrency-heavy core (reconnecting
# slots, speculation, graceful drain); always race-check it.
race:
	$(GO) test -race ./internal/cluster/...

vet:
	$(GO) vet ./...

check: build vet test race
