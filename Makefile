GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The cluster scheduler is the concurrency-heavy core (reconnecting
# slots, speculation, graceful drain); always race-check it.
race:
	$(GO) test -race ./internal/cluster/...

vet:
	$(GO) vet ./...

check: build vet test race

# Codec, join-stage and cluster micro-benchmarks, then the wire
# experiment (protocol v3 vs simulated v2 bytes per task), which writes
# BENCH_engine.json.
bench: build
	$(GO) test -run NONE -bench 'BenchmarkEncode|BenchmarkDecode' -benchtime 0.5s ./internal/colcodec/
	$(GO) test -run NONE -bench 'BenchmarkBroadcastJoinStage|BenchmarkRuleCacheParallel|BenchmarkEvalRuleParallel' -benchtime 0.5s ./internal/engine/
	$(GO) test -run NONE -bench 'BenchmarkClusterStage' -benchtime 0.5s ./internal/cluster/
	$(GO) run ./cmd/benchmark -exp wire -wire-out BENCH_engine.json
