// Package reduce implements the reduction technique of Sec. 4.1
// (Algorithm 1 lines 8–11): splitting K_s per signal type, exploiting
// gateway forwarding by processing one representative channel per
// signal, and applying the constraint set C to keep only task-relevant
// elements.
package reduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

// Split performs signal splitting (line 8): K_s → one time-ordered
// sequence per signal type s*∈Σ*, sorted by signal id for determinism.
func Split(ctx context.Context, exec engine.Executor, ks *relation.Relation) ([]engine.KeyedRelation, error) {
	groups, err := engine.NewDataset(exec, ks).SplitBy(ctx, trace.ColSID)
	if err != nil {
		return nil, err
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].Key.AsString() < groups[j].Key.AsString()
	})
	for i, g := range groups {
		sorted, err := g.Rel.SortBy(true, trace.ColT)
		if err != nil {
			return nil, err
		}
		groups[i].Rel = sorted
	}
	return groups, nil
}

// GatewayResult is the output of the equality check e (line 9): the
// representative sequence (one channel) plus the corresponding channels
// whose instances mirror it.
type GatewayResult struct {
	// Representative holds the signal's rows on the representative
	// channel only.
	Representative *relation.Relation
	// RepChannel is the chosen channel (lexicographically smallest, so
	// runs are replicable).
	RepChannel string
	// Corresponding lists the other channels carrying the signal.
	Corresponding []string
	// Mismatched lists channels whose value sequence does NOT mirror
	// the representative; those must be processed separately (and are
	// themselves potential gateway faults worth surfacing).
	Mismatched []string
}

// DedupChannels implements e: given one signal's sequence across
// channels, pick a representative channel and verify the other
// channels' value sequences are equal, so downstream processing runs
// once per signal instead of once per route.
func DedupChannels(seq *relation.Relation) (*GatewayResult, error) {
	bidIdx := seq.Schema.Index(trace.ColBID)
	vIdx := seq.Schema.Index(trace.ColV)
	if bidIdx < 0 || vIdx < 0 {
		return nil, fmt.Errorf("reduce: sequence lacks %s/%s columns (%s)", trace.ColBID, trace.ColV, seq.Schema)
	}
	byChannel := map[string][]relation.Row{}
	var channels []string
	for _, p := range seq.Partitions {
		for _, r := range p {
			b := r[bidIdx].AsString()
			if _, ok := byChannel[b]; !ok {
				channels = append(channels, b)
			}
			byChannel[b] = append(byChannel[b], r)
		}
	}
	if len(channels) == 0 {
		return &GatewayResult{Representative: relation.FromRows(seq.Schema, nil)}, nil
	}
	sort.Strings(channels)
	rep := channels[0]
	res := &GatewayResult{
		Representative: relation.FromRows(seq.Schema, byChannel[rep]),
		RepChannel:     rep,
	}
	for _, ch := range channels[1:] {
		if valueSequencesEqual(byChannel[rep], byChannel[ch], vIdx) {
			res.Corresponding = append(res.Corresponding, ch)
		} else {
			res.Mismatched = append(res.Mismatched, ch)
		}
	}
	return res, nil
}

// valueSequencesEqual compares the value streams of two routes of the
// same signal. Timestamps differ by gateway latency, so only values in
// order are compared.
func valueSequencesEqual(a, b []relation.Row, vIdx int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i][vIdx].Equal(b[i][vIdx]) {
			return false
		}
	}
	return true
}

// ApplyConstraints performs constraint reduction (lines 10–11) on one
// signal's representative sequence: rows where any applicable marking
// function fires (under its guard) are kept; with no applicable
// constraints the sequence passes unreduced.
func ApplyConstraints(ctx context.Context, exec engine.Executor, seq *relation.Relation, cs []rules.Constraint) (*relation.Relation, engine.Stats, error) {
	if len(cs) == 0 {
		return seq, engine.Stats{RowsIn: seq.NumRows(), RowsOut: seq.NumRows()}, nil
	}
	keep := ""
	for i := range cs {
		if keep != "" {
			keep += " || "
		}
		keep += "(" + cs[i].KeepExpr() + ")"
	}
	ops := []engine.OpDesc{engine.Filter(keep)}
	return exec.RunStage(ctx, seq, ops)
}

// Reduced bundles one signal's fully reduced sequence with its gateway
// bookkeeping.
type Reduced struct {
	SID     string
	Rel     *relation.Relation
	Gateway *GatewayResult
	Stats   engine.Stats
}

// Run executes lines 8–11 for every signal in K_s under a domain
// config: split, per-channel dedup, constraint reduction. Results come
// back sorted by signal id.
func Run(ctx context.Context, exec engine.Executor, ks *relation.Relation, cfg *rules.DomainConfig) ([]Reduced, error) {
	groups, err := Split(ctx, exec, ks)
	if err != nil {
		return nil, err
	}
	out := make([]Reduced, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sid := groups[i].Key.AsString()
			gw, err := DedupChannels(groups[i].Rel)
			if err != nil {
				errs[i] = fmt.Errorf("reduce: %s: %w", sid, err)
				return
			}
			red, st, err := ApplyConstraints(ctx, exec, gw.Representative, cfg.ConstraintsFor(sid))
			if err != nil {
				errs[i] = fmt.Errorf("reduce: %s: %w", sid, err)
				return
			}
			out[i] = Reduced{SID: sid, Rel: red, Gateway: gw, Stats: st}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
