package reduce

import (
	"context"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
)

var ctx = context.Background()

func seqRow(t float64, sid string, v relation.Value, bid string) relation.Row {
	return relation.Row{relation.Float(t), relation.Str(sid), v, relation.Str(bid)}
}

// ksRelation builds a K_s with two signals; wpos is forwarded through a
// gateway onto channel BC with identical values but shifted timestamps.
func ksRelation() *relation.Relation {
	rows := []relation.Row{
		seqRow(1.0, "wpos", relation.Float(45), "FC"),
		seqRow(1.01, "wpos", relation.Float(45), "BC"),
		seqRow(1.5, "wpos", relation.Float(45), "FC"),
		seqRow(1.51, "wpos", relation.Float(45), "BC"),
		seqRow(2.0, "wpos", relation.Float(60), "FC"),
		seqRow(2.01, "wpos", relation.Float(60), "BC"),
		seqRow(1.2, "belt", relation.Str("ON"), "FC"),
		seqRow(1.7, "belt", relation.Str("ON"), "FC"),
		seqRow(2.2, "belt", relation.Str("OFF"), "FC"),
	}
	return relation.FromRows(rules.SequenceSchema(), rows).Repartition(3)
}

func TestSplitOrdersAndGroups(t *testing.T) {
	groups, err := Split(ctx, engine.NewLocal(2), ksRelation())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Key.AsString() != "belt" || groups[1].Key.AsString() != "wpos" {
		t.Fatalf("group order = %v, %v", groups[0].Key, groups[1].Key)
	}
	// Time-ordered within each group.
	for _, g := range groups {
		rows := g.Rel.Rows()
		for i := 1; i < len(rows); i++ {
			if rows[i][0].AsFloat() < rows[i-1][0].AsFloat() {
				t.Fatalf("group %v not time-ordered", g.Key)
			}
		}
	}
}

func TestDedupChannelsRepresentative(t *testing.T) {
	groups, err := Split(ctx, engine.NewLocal(1), ksRelation())
	if err != nil {
		t.Fatal(err)
	}
	wpos := groups[1].Rel
	gw, err := DedupChannels(wpos)
	if err != nil {
		t.Fatal(err)
	}
	if gw.RepChannel != "BC" { // lexicographically smallest
		t.Fatalf("rep channel = %q", gw.RepChannel)
	}
	if len(gw.Corresponding) != 1 || gw.Corresponding[0] != "FC" {
		t.Fatalf("corresponding = %v", gw.Corresponding)
	}
	if len(gw.Mismatched) != 0 {
		t.Fatalf("mismatched = %v", gw.Mismatched)
	}
	if gw.Representative.NumRows() != 3 {
		t.Fatalf("representative rows = %d, want 3", gw.Representative.NumRows())
	}
}

func TestDedupChannelsDetectsMismatch(t *testing.T) {
	rows := []relation.Row{
		seqRow(1, "s", relation.Float(1), "A"),
		seqRow(1.1, "s", relation.Float(2), "B"), // differs from A's value
		seqRow(2, "s", relation.Float(3), "A"),
		seqRow(2.1, "s", relation.Float(3), "B"),
	}
	seq := relation.FromRows(rules.SequenceSchema(), rows)
	gw, err := DedupChannels(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(gw.Mismatched) != 1 || gw.Mismatched[0] != "B" {
		t.Fatalf("mismatched = %v", gw.Mismatched)
	}
	// Length mismatch also counts.
	rows2 := append(rows, seqRow(3, "s", relation.Float(4), "A"))
	gw2, err := DedupChannels(relation.FromRows(rules.SequenceSchema(), rows2))
	if err != nil {
		t.Fatal(err)
	}
	if len(gw2.Mismatched) != 1 {
		t.Fatalf("mismatched = %v", gw2.Mismatched)
	}
}

func TestDedupChannelsEmptyAndBadSchema(t *testing.T) {
	gw, err := DedupChannels(relation.FromRows(rules.SequenceSchema(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if gw.Representative.NumRows() != 0 {
		t.Fatal("empty sequence must stay empty")
	}
	bad := relation.New(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if _, err := DedupChannels(bad); err == nil {
		t.Fatal("bad schema must fail")
	}
}

func TestApplyConstraintsChangeReduction(t *testing.T) {
	rows := []relation.Row{
		seqRow(1, "s", relation.Float(5), "A"),
		seqRow(2, "s", relation.Float(5), "A"),
		seqRow(3, "s", relation.Float(5), "A"),
		seqRow(4, "s", relation.Float(7), "A"),
		seqRow(5, "s", relation.Float(7), "A"),
	}
	seq := relation.FromRows(rules.SequenceSchema(), rows)
	red, st, err := ApplyConstraints(ctx, engine.NewLocal(1), seq,
		[]rules.Constraint{rules.ChangeConstraint("s")})
	if err != nil {
		t.Fatal(err)
	}
	if red.NumRows() != 2 {
		t.Fatalf("reduced rows = %d, want 2 (value changes only)", red.NumRows())
	}
	if st.RowsIn != 5 || st.RowsOut != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestApplyConstraintsPreservesViolations(t *testing.T) {
	// Change reduction would drop the repeated value at t=3.0, but the
	// cycle-violation constraint must keep it: "important state changes
	// such as violations of cycle times need to be preserved".
	rows := []relation.Row{
		seqRow(0.0, "s", relation.Float(1), "A"),
		seqRow(0.5, "s", relation.Float(1), "A"),
		seqRow(3.0, "s", relation.Float(1), "A"), // gap 2.5 >> cycle 0.5
		seqRow(3.5, "s", relation.Float(1), "A"),
	}
	seq := relation.FromRows(rules.SequenceSchema(), rows)
	red, _, err := ApplyConstraints(ctx, engine.NewLocal(1), seq, []rules.Constraint{
		rules.ChangeConstraint("s"),
		rules.CycleViolationConstraint("s", 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := red.Rows()
	if len(got) != 2 {
		t.Fatalf("reduced rows = %d, want 2: %v", len(got), got)
	}
	if got[0][0].AsFloat() != 0.0 || got[1][0].AsFloat() != 3.0 {
		t.Fatalf("kept rows at %v and %v, want 0.0 and 3.0", got[0][0], got[1][0])
	}
}

func TestApplyConstraintsNoneKeepsAll(t *testing.T) {
	seq := relation.FromRows(rules.SequenceSchema(), []relation.Row{
		seqRow(1, "s", relation.Float(1), "A"),
		seqRow(2, "s", relation.Float(1), "A"),
	})
	red, _, err := ApplyConstraints(ctx, engine.NewLocal(1), seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", red.NumRows())
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := &rules.DomainConfig{
		Name:        "wiper",
		SIDs:        []string{"wpos", "belt"},
		Constraints: []rules.Constraint{rules.ChangeConstraint("*")},
	}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	out, err := Run(ctx, engine.NewLocal(2), ksRelation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("reduced signals = %d", len(out))
	}
	if out[0].SID != "belt" || out[1].SID != "wpos" {
		t.Fatalf("order = %s, %s", out[0].SID, out[1].SID)
	}
	// wpos: values 45,45,60 on representative channel → changes at 45
	// and 60 → 2 rows. belt: ON,ON,OFF → 2 rows.
	if out[1].Rel.NumRows() != 2 {
		t.Fatalf("wpos reduced = %d rows", out[1].Rel.NumRows())
	}
	if out[0].Rel.NumRows() != 2 {
		t.Fatalf("belt reduced = %d rows", out[0].Rel.NumRows())
	}
	if out[1].Gateway.RepChannel != "BC" || len(out[1].Gateway.Corresponding) != 1 {
		t.Fatalf("gateway = %+v", out[1].Gateway)
	}
}
