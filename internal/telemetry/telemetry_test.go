package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instance.
	if r.Counter("requests_total", "Requests.") != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("depth", "Queue depth.")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "Ops.", "kind")
	v.With("filter").Add(2)
	v.With("project").Inc()
	v.With("filter").Inc()
	if got := v.With("filter").Value(); got != 3 {
		t.Fatalf("filter = %d, want 3", got)
	}
	if got := r.CounterValue("ops_total"); got != 4 {
		t.Fatalf("family sum = %d, want 4", got)
	}
	hv := r.HistogramVec("lat", "Latency.", DurationBuckets, "op")
	hv.With("a").Observe(0.001)
	hv.With("b").Observe(0.1)
	lvs := hv.LabelValues()
	if len(lvs) != 2 || lvs[0][0] != "a" || lvs[1][0] != "b" {
		t.Fatalf("label values = %v", lvs)
	}
	merged := r.HistogramData("lat")
	if merged.Count != 2 {
		t.Fatalf("merged count = %d, want 2", merged.Count)
	}
}

func TestVecRejectsWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	NewRegistry().CounterVec("x", "", "a", "b").With("only-one")
}

func TestMismatchedReregistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched re-registration must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.6, 3, 5, 100} {
		h.Observe(v)
	}
	d := h.Snapshot()
	if d.Count != 6 {
		t.Fatalf("count = %d, want 6", d.Count)
	}
	if math.Abs(d.Sum-111.6) > 1e-9 {
		t.Fatalf("sum = %v, want 111.6", d.Sum)
	}
	// +Inf bucket holds the 100 observation.
	if d.Counts[len(d.Counts)-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", d.Counts[len(d.Counts)-1])
	}
	if q := d.Quantile(0.5); q <= 0 || q > 4 {
		t.Fatalf("p50 = %v, want within (0, 4]", q)
	}
	// Quantiles clamp to the top finite bound for +Inf-bucket mass.
	if q := d.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want clamp to 8", q)
	}
	if d.Quantile(0.5) > d.Quantile(0.95) {
		t.Fatal("quantiles must be monotonic")
	}
}

func TestHistogramDataSubAndMerge(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	before := h.Snapshot()
	h.Observe(5)
	h.Observe(20)
	delta := h.Snapshot().Sub(before)
	if delta.Count != 2 {
		t.Fatalf("delta count = %d, want 2", delta.Count)
	}
	if delta.Counts[0] != 0 || delta.Counts[1] != 1 || delta.Counts[2] != 1 {
		t.Fatalf("delta buckets = %v", delta.Counts)
	}
	merged := before.Sub(nil)
	merged.Merge(delta)
	if merged.Count != 3 {
		t.Fatalf("merged count = %d, want 3", merged.Count)
	}
}

func TestEmptyHistogramQuantile(t *testing.T) {
	var d *HistogramData
	if d.Quantile(0.5) != 0 || d.Mean() != 0 {
		t.Fatal("nil histogram data must report zeros")
	}
	if (&HistogramData{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram data must report 0")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// meaningful under -race (make race runs the full module).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := r.CounterVec("c", "", "w")
			h := r.HistogramVec("h", "", DurationBuckets, "w")
			for i := 0; i < 500; i++ {
				v.With("shared").Inc()
				h.With("shared").ObserveDuration(time.Duration(i))
				if i%50 == 0 {
					_ = r.Snapshot()
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
}

func TestTaskTableLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	tt := NewTaskTableAt(func() time.Time { return now })
	tt.BeginStage("deadbeef", "cluster[2x1]", 3)
	tt.Running(0, "127.0.0.1:7077", 1)
	tt.Retrying(0)
	tt.Running(0, "127.0.0.1:7078", 2)
	tt.Speculative(1)
	tt.Done(0)
	tt.Running(0, "127.0.0.1:9999", 3) // stale speculative dispatch
	s := tt.Snapshot()
	if s.Pending != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending)
	}
	t0 := s.Tasks[0]
	if t0.State != TaskDone || t0.Attempts != 2 || t0.Addr != "127.0.0.1:7078" {
		t.Fatalf("task 0 = %+v", t0)
	}
	if s.Tasks[1].Speculative != 1 {
		t.Fatalf("task 1 = %+v", s.Tasks[1])
	}
	// nil table: all methods no-op, snapshot is empty but serviceable.
	var nilTT *TaskTable
	nilTT.BeginStage("x", "y", 1)
	nilTT.Done(0)
	if got := nilTT.Snapshot(); got.Pending != 0 || got.Tasks == nil {
		t.Fatalf("nil snapshot = %+v", got)
	}
}
