// Package telemetry is the cluster-wide observability layer: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms, optionally labeled), task-level tracing with
// exporters (Chrome trace_event JSON for Perfetto, a compact text
// timeline for terminals), a live table of in-flight task states, and
// an opt-in debug HTTP server exposing /metrics (Prometheus text
// exposition), /debug/pprof and /tasks.
//
// The paper's framework runs its evaluation on a 70-server Spark
// deployment with per-stage runtime tables; this package is the moral
// equivalent for our engine/cluster substrate — the single source of
// truth behind engine.Stats, and the only way to watch a running
// driver or executor instead of reading post-hoc counters.
//
// Everything here is stdlib-only and safe for concurrent use. Metric
// registration is idempotent: asking for an existing family returns
// the registered instance, so packages can declare their metrics in
// var blocks without init-order choreography.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Family types, as exposed in the Prometheus exposition.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing integral counter. All mutation
// is a single atomic add — safe from any number of goroutines, no
// read-modify-write on shared structs.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down (queue depths,
// in-flight tasks, connection counts).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric is the union of the three primitive kinds inside a family.
type metric struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric family: a type, a label-name list and one
// primitive per distinct label-value tuple.
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64 // histograms only

	mu      sync.RWMutex
	order   []string // insertion order of keys, for stable label listing
	metrics map[string]*metric
}

func (f *family) get(labelValues []string) *metric {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: family %q expects %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.RLock()
	m, ok := f.metrics[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[key]; ok {
		return m
	}
	m = &metric{labelValues: append([]string(nil), labelValues...)}
	switch f.typ {
	case TypeCounter:
		m.counter = &Counter{}
	case TypeGauge:
		m.gauge = &Gauge{}
	case TypeHistogram:
		m.hist = newHistogram(f.bounds)
	}
	f.order = append(f.order, key)
	f.metrics[key] = m
	return m
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry or the process-wide Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry (tests use private ones; the
// engine and cluster register on Default).
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry, the one the debug server's
// /metrics endpoint exposes.
func Default() *Registry { return defaultRegistry }

// familyFor returns the named family, creating it on first use.
// Re-registration with a different type, label set or bucket layout is
// a programming error and panics loudly rather than silently forking
// the family.
func (r *Registry) familyFor(name, help, typ string, bounds []float64, labels []string) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{
				name:    name,
				help:    help,
				typ:     typ,
				labels:  append([]string(nil), labels...),
				bounds:  append([]float64(nil), bounds...),
				metrics: map[string]*metric{},
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: family %q re-registered as %s%v (was %s%v)",
			name, typ, labels, f.typ, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("telemetry: family %q re-registered with labels %v (was %v)",
				name, labels, f.labels))
		}
	}
	return f
}

// Counter returns the unlabeled counter family's single counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.familyFor(name, help, TypeCounter, nil, nil).get(nil).counter
}

// Gauge returns the unlabeled gauge family's single gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.familyFor(name, help, TypeGauge, nil, nil).get(nil).gauge
}

// Histogram returns the unlabeled histogram family's single histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.familyFor(name, help, TypeHistogram, bounds, nil).get(nil).hist
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.familyFor(name, help, TypeCounter, nil, labels)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).counter
}

// LabelValues lists the registered label-value tuples in first-use
// order (the vet-metrics exhaustiveness check walks this).
func (v *CounterVec) LabelValues() [][]string {
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	out := make([][]string, 0, len(v.f.order))
	for _, key := range v.f.order {
		out = append(out, v.f.metrics[key].labelValues)
	}
	return out
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.familyFor(name, help, TypeGauge, nil, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues).gauge
}

// HistogramVec is a labeled histogram family with shared buckets.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.familyFor(name, help, TypeHistogram, bounds, labels)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).hist
}

// LabelValues lists the registered label-value tuples in first-use
// order (the vet-metrics exhaustiveness check walks this).
func (v *HistogramVec) LabelValues() [][]string {
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	out := make([][]string, 0, len(v.f.order))
	for _, key := range v.f.order {
		out = append(out, v.f.metrics[key].labelValues)
	}
	return out
}

// ---------------------------------------------------------------- snapshots

// MetricSnapshot is one metric (one label-value tuple) at a point in
// time.
type MetricSnapshot struct {
	LabelValues []string
	Value       float64        // counter (as float) or gauge
	Hist        *HistogramData // histograms only
}

// FamilySnapshot is a consistent point-in-time copy of one family.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    string
	Labels  []string
	Metrics []MetricSnapshot
}

// Snapshot copies every family, sorted by name with metrics sorted by
// label values, so two identical registries snapshot identically.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ, Labels: f.labels}
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			m := f.metrics[key]
			ms := MetricSnapshot{LabelValues: m.labelValues}
			switch f.typ {
			case TypeCounter:
				ms.Value = float64(m.counter.Value())
			case TypeGauge:
				ms.Value = m.gauge.Value()
			case TypeHistogram:
				ms.Hist = m.hist.Snapshot()
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}

// VerifyFamilies checks that every named metric family is registered on
// the default registry with the expected type ("counter", "gauge",
// "histogram"). Packages expose their catalogue checks (engine, cluster,
// memgov) on top of it, and `make vet-metrics` fails the build when an
// expected family is missing or mistyped.
func VerifyFamilies(want map[string]string) error {
	missing := make(map[string]string, len(want))
	for k, v := range want {
		missing[k] = v
	}
	for _, fam := range Default().Snapshot() {
		if typ, ok := missing[fam.Name]; ok {
			if fam.Type != typ {
				return fmt.Errorf("telemetry: family %q registered as %s, want %s", fam.Name, fam.Type, typ)
			}
			delete(missing, fam.Name)
		}
	}
	for name := range missing {
		return fmt.Errorf("telemetry: metric family %q not registered", name)
	}
	return nil
}

// HistogramData returns the merged data of every histogram in the named
// family (all label values folded together), or nil if the family does
// not exist or is not a histogram. The bench harness takes before/after
// snapshots of task-latency families and reports quantiles of the
// difference.
func (r *Registry) HistogramData(name string) *HistogramData {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.typ != TypeHistogram {
		return nil
	}
	merged := &HistogramData{Bounds: append([]float64(nil), f.bounds...)}
	merged.Counts = make([]int64, len(merged.Bounds)+1)
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, m := range f.metrics {
		merged.Merge(m.hist.Snapshot())
	}
	return merged
}

// CounterValue returns the summed value of every counter in the named
// family, or 0 if absent (convenient for tests and the bench harness).
func (r *Registry) CounterValue(name string) int64 {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.typ != TypeCounter {
		return 0
	}
	var sum int64
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, m := range f.metrics {
		sum += m.counter.Value()
	}
	return sum
}

// Since is a convenience for observing an elapsed duration in seconds.
func Since(h *Histogram, start time.Time) { h.Observe(time.Since(start).Seconds()) }
