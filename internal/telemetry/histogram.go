package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default latency buckets in seconds: 25µs up
// to 10s in a 1–2.5–5 progression. Local partition tasks on bench-sized
// inputs land in the tens of microseconds; chaos-test cluster tasks
// with deliberate stalls land in the hundreds of milliseconds — both
// ends need resolution.
var DurationBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// SizeBuckets are the default byte-size buckets: 256B to 64MB.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Histogram is a fixed-bucket histogram. Observations are two atomic
// adds (bucket count, total count) plus a CAS on the float sum — no
// locks, so hot paths (per-task, per-operator timing) can observe from
// many goroutines.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf after the last
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// NewHistogram builds a standalone (unregistered) histogram — tests and
// ad-hoc aggregation use these.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram's state.
func (h *Histogram) Snapshot() *HistogramData {
	d := &HistogramData{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	d.Count = h.count.Load()
	d.Sum = math.Float64frombits(h.sumBits.Load())
	return d
}

// HistogramData is an immutable histogram snapshot: per-bucket counts
// (not cumulative; Counts has one more entry than Bounds for the +Inf
// bucket), total count and sum.
type HistogramData struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Merge adds o's counts into d. Bucket layouts must match (families
// share bounds, so merging across label values is always safe).
func (d *HistogramData) Merge(o *HistogramData) {
	if o == nil {
		return
	}
	for i := range d.Counts {
		if i < len(o.Counts) {
			d.Counts[i] += o.Counts[i]
		}
	}
	d.Count += o.Count
	d.Sum += o.Sum
}

// Sub returns d - prev, the observations recorded between two
// snapshots of the same histogram.
func (d *HistogramData) Sub(prev *HistogramData) *HistogramData {
	out := &HistogramData{
		Bounds: append([]float64(nil), d.Bounds...),
		Counts: append([]int64(nil), d.Counts...),
		Count:  d.Count,
		Sum:    d.Sum,
	}
	if prev == nil {
		return out
	}
	for i := range out.Counts {
		if i < len(prev.Counts) {
			out.Counts[i] -= prev.Counts[i]
		}
	}
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket, the standard
// histogram_quantile estimate. Returns 0 on an empty histogram. Values
// in the +Inf bucket clamp to the highest finite bound.
func (d *HistogramData) Quantile(q float64) float64 {
	if d == nil || d.Count == 0 || len(d.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.Count)
	var cum float64
	for i, c := range d.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i >= len(d.Bounds) {
				return d.Bounds[len(d.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = d.Bounds[i-1]
			}
			hi := d.Bounds[i]
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return d.Bounds[len(d.Bounds)-1]
}

// Mean returns the average observation, or 0 when empty.
func (d *HistogramData) Mean() float64 {
	if d == nil || d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}
