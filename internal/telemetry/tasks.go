package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Task lifecycle states as reported by /tasks. A task moves
// queued → running → done, detouring through retrying when a transport
// failure requeues it; "speculative" counts extra in-flight copies.
const (
	TaskQueued   = "queued"
	TaskRunning  = "running"
	TaskRetrying = "retrying"
	TaskDone     = "done"
)

// TaskInfo is the live state of one task (one partition of the current
// stage). JSON field names are the /tasks contract — see
// docs/OBSERVABILITY.md for how states map to the FAULT_TOLERANCE.md
// failure matrix.
type TaskInfo struct {
	ID          int       `json:"id"`
	State       string    `json:"state"`
	Addr        string    `json:"addr,omitempty"`
	Epoch       int       `json:"epoch"`
	Attempts    int       `json:"attempts"`
	Speculative int       `json:"speculative"`
	Started     time.Time `json:"started"`
	Updated     time.Time `json:"updated"`
}

// TasksSnapshot is the /tasks JSON payload.
type TasksSnapshot struct {
	Stage    string     `json:"stage,omitempty"`
	Executor string     `json:"executor,omitempty"`
	Pending  int        `json:"pending"`
	Tasks    []TaskInfo `json:"tasks"`
}

// TaskTable tracks the in-flight task states of the current (or most
// recent) stage run. A nil *TaskTable is valid; every method no-ops, so
// the driver updates it unconditionally. All methods are safe for
// concurrent use — the debug server snapshots while the scheduler
// mutates.
type TaskTable struct {
	mu       sync.Mutex
	stage    string
	executor string
	tasks    map[int]*TaskInfo
	now      func() time.Time
}

// NewTaskTable returns an empty table.
func NewTaskTable() *TaskTable { return &TaskTable{now: time.Now} }

// NewTaskTableAt injects the clock (deterministic tests).
func NewTaskTableAt(now func() time.Time) *TaskTable {
	if now == nil {
		now = time.Now
	}
	return &TaskTable{now: now}
}

// BeginStage resets the table for a new stage of n tasks, all queued.
func (t *TaskTable) BeginStage(stage, executor string, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stage, t.executor = stage, executor
	t.tasks = make(map[int]*TaskInfo, n)
	now := t.now()
	for i := 0; i < n; i++ {
		t.tasks[i] = &TaskInfo{ID: i, State: TaskQueued, Updated: now}
	}
}

func (t *TaskTable) update(id int, f func(*TaskInfo)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ti, ok := t.tasks[id]
	if !ok {
		ti = &TaskInfo{ID: id, State: TaskQueued}
		if t.tasks == nil {
			t.tasks = map[int]*TaskInfo{}
		}
		t.tasks[id] = ti
	}
	f(ti)
	ti.Updated = t.now()
}

// Running marks a dispatch of task id on addr at the given epoch.
func (t *TaskTable) Running(id int, addr string, epoch int) {
	t.update(id, func(ti *TaskInfo) {
		if ti.State == TaskDone {
			return // stale speculative dispatch; first result already won
		}
		ti.State = TaskRunning
		ti.Addr = addr
		ti.Epoch = epoch
		ti.Attempts++
		if ti.Started.IsZero() {
			ti.Started = t.now()
		}
	})
}

// Retrying marks a transport failure requeue.
func (t *TaskTable) Retrying(id int) {
	t.update(id, func(ti *TaskInfo) {
		if ti.State != TaskDone {
			ti.State = TaskRetrying
		}
	})
}

// Speculative counts one speculative re-dispatch.
func (t *TaskTable) Speculative(id int) {
	t.update(id, func(ti *TaskInfo) { ti.Speculative++ })
}

// Done marks task completion (first result wins; later calls keep it
// done).
func (t *TaskTable) Done(id int) {
	t.update(id, func(ti *TaskInfo) { ti.State = TaskDone })
}

// Snapshot returns the current table, tasks sorted by id.
func (t *TaskTable) Snapshot() TasksSnapshot {
	if t == nil {
		return TasksSnapshot{Tasks: []TaskInfo{}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TasksSnapshot{Stage: t.stage, Executor: t.executor, Tasks: make([]TaskInfo, 0, len(t.tasks))}
	for _, ti := range t.tasks {
		out.Tasks = append(out.Tasks, *ti)
		if ti.State != TaskDone {
			out.Pending++
		}
	}
	sort.Slice(out.Tasks, func(i, j int) bool { return out.Tasks[i].ID < out.Tasks[j].ID })
	return out
}
