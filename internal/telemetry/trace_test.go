package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClock is the injected monotonic clock: every reading advances by
// a fixed step, so span layouts are fully deterministic (the same seam
// the colcodec golden tests use instead of wall time).
func fakeClock(step time.Duration) func() time.Time {
	t := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

// buildSampleTrace records the span shapes the cluster driver emits:
// a stage span, task children with lifecycle events, and fault-path
// events (task_retry, reconnect, speculation).
func buildSampleTrace() []SpanData {
	tr := NewTracerAt(fakeClock(250 * time.Microsecond))
	stage := tr.StartSpan("stage a1b2c3d4", A("partitions", 2), A("executor", "cluster[2 executors x 1 slots]"))
	t0 := stage.Child("task 0", A("stage", "a1b2c3d4"))
	t0.Event("queued")
	t0.Event("shipped", A("addr", "127.0.0.1:7077"), A("epoch", 1))
	t1 := stage.Child("task 1", A("stage", "a1b2c3d4"))
	t1.Event("queued")
	t1.Event("shipped", A("addr", "127.0.0.1:7078"), A("epoch", 1))
	t1.Event("task_retry", A("attempt", 1), A("cause", "EOF"))
	stage.Event("reconnect", A("addr", "127.0.0.1:7078"))
	t1.Event("shipped", A("addr", "127.0.0.1:7078"), A("epoch", 2))
	t0.Event("decoded", A("decode_us", 120))
	t0.Event("executed", A("exec_us", 800))
	t0.Event("merged")
	t0.End()
	stage.Event("speculation", A("task", 1))
	t1.Event("merged")
	t1.End()
	stage.End()
	return tr.Snapshot()
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, buildSampleTrace()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// The golden file must stay a valid trace_event document: a JSON
	// object with a traceEvents array whose entries carry the Perfetto
	// contract fields.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %v missing field %q", ev, field)
			}
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, buildSampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, buildSampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical traces must export byte-identically")
	}
}

func TestTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, buildSampleTrace()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stage a1b2c3d4", "task 0", "task_retry", "reconnect", "merged"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	s := tr.StartSpan("x", A("k", "v"))
	s.Event("e")
	s.SetAttr("a", 1)
	c := s.Child("y")
	c.Event("z")
	c.End()
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span must have id 0")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", got)
	}
}

func TestSpanEventsAndHasEvent(t *testing.T) {
	tr := NewTracerAt(fakeClock(time.Millisecond))
	s := tr.StartSpan("root")
	s.Event("reconnect", A("addr", "a"))
	s.Event("reconnect", A("addr", "b"))
	s.End()
	spans := tr.Snapshot()
	if !HasEvent(spans, "reconnect") || HasEvent(spans, "nope") {
		t.Fatal("HasEvent misreported")
	}
	if got := CountEvents(spans, "reconnect"); got != 2 {
		t.Fatalf("CountEvents = %d, want 2", got)
	}
	if spans[0].Duration() <= 0 {
		t.Fatal("ended span must have positive duration")
	}
}

// TestTracerConcurrency exercises concurrent span/event recording and
// snapshotting; meaningful under -race.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := root.Child("task", A("w", w))
				s.Event("queued")
				s.Event("merged")
				s.End()
				if i%50 == 0 {
					_ = tr.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Snapshot()); got != 1+8*200 {
		t.Fatalf("spans = %d, want %d", got, 1+8*200)
	}
}
