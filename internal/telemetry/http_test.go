package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	c := http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cluster_reconnects_total", "Reconnects.").Add(2)
	tr := NewTracerAt(fakeClock(time.Millisecond))
	s := tr.StartSpan("stage 1")
	s.Event("reconnect")
	s.End()
	tt := NewTaskTable()
	tt.BeginStage("cafe", "cluster[1x1]", 2)
	tt.Running(0, "127.0.0.1:1", 1)
	tt.Done(0)

	srv, err := StartDebugServer("127.0.0.1:0", NewDebugMux(reg, tr, tt))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "cluster_reconnects_total 2") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics not valid exposition: %v", err)
	}

	code, body = getBody(t, base+"/tasks")
	if code != http.StatusOK {
		t.Fatalf("/tasks = %d", code)
	}
	var snap TasksSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/tasks not JSON: %v\n%s", err, body)
	}
	if snap.Stage != "cafe" || snap.Pending != 1 || len(snap.Tasks) != 2 {
		t.Fatalf("/tasks snapshot = %+v", snap)
	}
	if snap.Tasks[0].State != TaskDone {
		t.Fatalf("task 0 = %+v", snap.Tasks[0])
	}

	code, body = getBody(t, base+"/trace")
	if code != http.StatusOK || !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/trace = %d:\n%s", code, body)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}

	code, body = getBody(t, base+"/timeline")
	if code != http.StatusOK || !strings.Contains(body, "stage 1") {
		t.Fatalf("/timeline = %d:\n%s", code, body)
	}

	code, body = getBody(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}

	code, _ = getBody(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("/nope = %d, want 404", code)
	}
}

func TestDebugServerNilPieces(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", NewDebugMux(nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, ep := range []string{"/metrics", "/tasks", "/trace", "/timeline"} {
		code, _ := getBody(t, base+ep)
		if code != http.StatusOK {
			t.Fatalf("%s with nil backends = %d, want 200", ep, code)
		}
	}
}

func TestStartDebugServerOff(t *testing.T) {
	srv, err := StartDebugServer("", nil)
	if err != nil || srv != nil {
		t.Fatalf("empty addr must be a no-op, got %v %v", srv, err)
	}
	srv.Close()                      // nil-safe
	if srv.Addr() != "" {
		t.Fatal("nil server addr must be empty")
	}
}
