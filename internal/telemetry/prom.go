package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4), hand-rolled: families sorted by name, metrics
// sorted by label values, histograms expanded into cumulative _bucket
// series plus _sum and _count. Metric and label names are sanitized and
// label values escaped, so the output is always parseable no matter
// what strings were registered (the fuzz target holds the writer to
// that).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Snapshot() {
		writeFamily(bw, fam)
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, fam FamilySnapshot) {
	name := SanitizeMetricName(fam.Name)
	if fam.Help != "" {
		w.WriteString("# HELP ")
		w.WriteString(name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(fam.Help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(fam.Type)
	w.WriteByte('\n')

	labels := make([]string, len(fam.Labels))
	for i, l := range fam.Labels {
		labels[i] = SanitizeLabelName(l)
	}
	for _, m := range fam.Metrics {
		switch fam.Type {
		case TypeHistogram:
			writeHistogram(w, name, labels, m)
		default:
			writeSample(w, name, labels, m.LabelValues, "", "", formatValue(m.Value))
		}
	}
}

func writeHistogram(w *bufio.Writer, name string, labels []string, m MetricSnapshot) {
	d := m.Hist
	if d == nil {
		return
	}
	var cum int64
	for i, c := range d.Counts {
		cum += c
		le := "+Inf"
		if i < len(d.Bounds) {
			le = formatValue(d.Bounds[i])
		}
		writeSample(w, name+"_bucket", labels, m.LabelValues, "le", le, strconv.FormatInt(cum, 10))
	}
	writeSample(w, name+"_sum", labels, m.LabelValues, "", "", formatValue(d.Sum))
	writeSample(w, name+"_count", labels, m.LabelValues, "", "", strconv.FormatInt(d.Count, 10))
}

// writeSample emits one exposition line; extraK/extraV append a
// synthetic label (the histogram "le").
func writeSample(w *bufio.Writer, name string, labels, values []string, extraK, extraV, val string) {
	w.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		w.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(l)
			w.WriteString(`="`)
			v := ""
			if i < len(values) {
				v = values[i]
			}
			w.WriteString(escapeLabelValue(v))
			w.WriteByte('"')
		}
		if extraK != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(extraK)
			w.WriteString(`="`)
			w.WriteString(escapeLabelValue(extraV))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(val)
	w.WriteByte('\n')
}

// formatValue renders a float the way Prometheus expects: integral
// values without exponent noise, specials as +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SanitizeMetricName maps an arbitrary string onto the legal metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*. Illegal runes become '_'; an
// empty or digit-leading name gains a '_' prefix.
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if c >= '0' && c <= '9' { // digit at position 0
				b.WriteByte('_')
				b.WriteByte(c)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// SanitizeLabelName is SanitizeMetricName without ':' (illegal in label
// names).
func SanitizeLabelName(s string) string {
	return strings.ReplaceAll(SanitizeMetricName(s), ":", "_")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
