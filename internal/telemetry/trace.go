package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value attribute on a span or event. Values are
// strings; callers format numbers themselves so exporters stay trivial
// and field ordering stays exactly as recorded.
type Attr struct {
	Key   string
	Value string
}

// A is a terse Attr constructor: telemetry.A("addr", addr).
func A(key string, value any) Attr { return Attr{Key: key, Value: fmt.Sprint(value)} }

// Tracer collects spans for one run. A nil *Tracer is valid and every
// method on it (and on the nil *Span its StartSpan returns) is a no-op,
// so instrumented code calls unconditionally — tracing off costs a nil
// check, not a branch per call site.
type Tracer struct {
	now func() time.Time

	mu     sync.Mutex
	nextID uint64
	spans  []*Span
}

// NewTracer returns a tracer on the real clock.
func NewTracer() *Tracer { return NewTracerAt(time.Now) }

// NewTracerAt injects the clock — the seam deterministic tests (and the
// golden-file exporter test) use instead of wall time.
func NewTracerAt(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	return t.startSpan(0, name, attrs)
}

func (t *Tracer) startSpan(parent uint64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{
		tr:     t,
		id:     t.nextID,
		parent: parent,
		name:   name,
		start:  t.now(),
		attrs:  append([]Attr(nil), attrs...),
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed operation (a stage, a task) with ordered events
// marking its internal phases and its fault-path incidents.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu     sync.Mutex
	end    time.Time
	attrs  []Attr
	events []EventData
}

// ID returns the span's tracer-unique id (0 for a nil span) — the value
// carried in the wire protocol's task frames.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a sub-span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(s.id, name, attrs)
}

// Event records a named instant (queued, shipped, decoded, executed,
// merged, reconnect, task_retry, speculation, deadline_hit, ...).
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.mu.Lock()
	s.events = append(s.events, EventData{Name: name, Time: now, Attrs: append([]Attr(nil), attrs...)})
	s.mu.Unlock()
}

// SetAttr appends an attribute after span start (e.g. the executor
// address a task actually landed on).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, A(key, value))
	s.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// EventData is one recorded instant.
type EventData struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// SpanData is an immutable span snapshot.
type SpanData struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	End    time.Time // zero while still open
	Attrs  []Attr
	Events []EventData
}

// Duration returns End-Start, or 0 while the span is open.
func (d SpanData) Duration() time.Duration {
	if d.End.IsZero() {
		return 0
	}
	return d.End.Sub(d.Start)
}

// Snapshot copies every span recorded so far, ordered by start time
// (ties by id), including still-open spans.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanData, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		out = append(out, SpanData{
			ID:     s.id,
			Parent: s.parent,
			Name:   s.name,
			Start:  s.start,
			End:    s.end,
			Attrs:  append([]Attr(nil), s.attrs...),
			Events: append([]EventData(nil), s.events...),
		})
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// HasEvent reports whether any snapshot span carries an event with the
// given name — chaos tests assert fault-path events this way.
func HasEvent(spans []SpanData, name string) bool {
	return CountEvents(spans, name) > 0
}

// CountEvents counts events with the given name across spans.
func CountEvents(spans []SpanData, name string) int {
	n := 0
	for _, s := range spans {
		for _, e := range s.Events {
			if e.Name == name {
				n++
			}
		}
	}
	return n
}
