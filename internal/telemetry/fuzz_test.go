package telemetry

import (
	"strings"
	"testing"
)

// FuzzPromWriter feeds arbitrary metric/label/help strings and values
// through a registry and asserts the Prometheus exposition writer
// always emits a document our strict validator accepts — no panics, no
// unescaped quotes or newlines, no illegal names, whatever the inputs.
// Seed corpus under testdata/fuzz/FuzzPromWriter; wired into
// `make fuzz-smoke`.
func FuzzPromWriter(f *testing.F) {
	f.Add("requests_total", "Total requests.", "op", "filter", 1.5, int64(3))
	f.Add("weird name!", "help \\ with\nnewline", "label-1", "va\"l\\ue\n", -0.0, int64(0))
	f.Add("9starts_with_digit", "", "", "", 1e300, int64(-1))
	f.Add("", "ünïcodé (╯°□°)╯", "λ", "\x00\xff", 0.0001, int64(1))

	f.Fuzz(func(t *testing.T, name, help, label, value string, obs float64, n int64) {
		r := NewRegistry()
		// One of each family type, all built from fuzz input.
		r.Counter(name+"_total", help).Add(n&0x7fffffff + 1)
		if label == "" {
			label = "l"
		}
		gv := r.GaugeVec(name+"_gauge", help, label)
		gv.With(value).Set(obs)
		hv := r.HistogramVec(name+"_seconds", help, []float64{0.001, 0.1, 1}, label)
		hv.With(value).Observe(obs)
		hv.With(value + "x").Observe(-obs)

		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatalf("writer error: %v", err)
		}
		if err := ValidateExposition(sb.String()); err != nil {
			t.Fatalf("invalid exposition for name=%q label=%q value=%q: %v\n%s",
				name, label, value, err, sb.String())
		}
		// Write twice: exposition must be deterministic.
		var sb2 strings.Builder
		if err := r.WritePrometheus(&sb2); err != nil {
			t.Fatal(err)
		}
		if sb.String() != sb2.String() {
			t.Fatal("exposition not deterministic")
		}
	})
}
