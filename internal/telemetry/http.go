package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux builds the introspection mux served at -debug-addr:
//
//	/metrics      Prometheus text exposition of reg
//	/tasks        JSON snapshot of in-flight task states (tasks may be nil)
//	/trace        Chrome trace_event JSON of tr's spans so far (tr may be nil)
//	/timeline     text timeline of tr's spans so far
//	/debug/pprof  stdlib profiling endpoints
//
// Any of reg/tr/tasks may be nil; the corresponding endpoint then
// serves an empty document rather than 404ing, so scrapers stay happy
// regardless of which pieces a binary wires up.
func NewDebugMux(reg *Registry, tr *Tracer, tasks *TaskTable) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ivnt debug endpoints: /metrics /tasks /trace /timeline /debug/pprof/")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/tasks", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tasks.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, tr.Snapshot())
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteTimeline(w, tr.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running introspection HTTP server.
type DebugServer struct {
	srv  *http.Server
	addr string
	done chan struct{}
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.addr
}

// Close shuts the server down, waiting briefly for in-flight requests.
func (d *DebugServer) Close() {
	if d == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = d.srv.Shutdown(ctx)
	<-d.done
}

// StartDebugServer binds addr and serves handler on a background
// goroutine. An empty addr returns (nil, nil): the feature is opt-in
// and "off" must be a zero-cost no-op for callers.
func StartDebugServer(addr string, handler http.Handler) (*DebugServer, error) {
	if addr == "" {
		return nil, nil
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server listen %s: %w", addr, err)
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		addr: l.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(l)
	}()
	return d, nil
}
