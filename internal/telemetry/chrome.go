package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteChromeTrace writes spans as Chrome trace_event JSON (the JSON
// Array Format with a traceEvents wrapper), loadable in Perfetto and
// chrome://tracing. The output is fully deterministic for a given span
// set: hand-rolled serialization with fixed field order, timestamps in
// microseconds relative to the earliest span start, spans as complete
// ("X") events on tid = span id and events as instant ("i") events on
// the owning span's tid. Golden-file tested.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	bw := &errWriter{w: w}
	epoch := traceEpoch(spans)
	bw.printf("{\"traceEvents\":[")
	first := true
	for _, s := range spans {
		if !first {
			bw.printf(",")
		}
		first = false
		dur := s.Duration().Microseconds()
		bw.printf("\n{\"name\":%s,\"cat\":\"span\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":%s}",
			jsonString(s.Name), rel(epoch, s.Start), dur, s.ID, jsonArgs(s.Attrs, s.Parent))
		for _, e := range s.Events {
			bw.printf(",\n{\"name\":%s,\"cat\":\"event\",\"ph\":\"i\",\"ts\":%d,\"s\":\"t\",\"pid\":1,\"tid\":%d,\"args\":%s}",
				jsonString(e.Name), rel(epoch, e.Time), s.ID, jsonArgs(e.Attrs, 0))
		}
	}
	bw.printf("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.err
}

func traceEpoch(spans []SpanData) time.Time {
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	return epoch
}

func rel(epoch, t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Sub(epoch).Microseconds()
}

// jsonArgs renders attributes as a JSON object in recorded order (maps
// would randomize it), with the parent span id appended when nonzero.
func jsonArgs(attrs []Attr, parent uint64) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(jsonString(a.Key))
		b.WriteByte(':')
		b.WriteString(jsonString(a.Value))
	}
	if parent != 0 {
		if len(attrs) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\"parent\":\"%d\"", parent)
	}
	b.WriteByte('}')
	return b.String()
}

func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `""`
	}
	return string(b)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// WriteTimeline renders spans as a compact fixed-width text timeline
// for terminals: one line per span (start offset, duration, name,
// attrs) with its events indented beneath.
//
//	+0.000ms    3.1ms  stage a1b2c3 partitions=8
//	+0.120ms    1.2ms  └ task 0 addr=127.0.0.1:7077
//	            +0.121ms · shipped
//	            +0.640ms · task_retry attempt=1
func WriteTimeline(w io.Writer, spans []SpanData) error {
	bw := &errWriter{w: w}
	epoch := traceEpoch(spans)
	for _, s := range spans {
		durMs := float64(s.Duration().Microseconds()) / 1000
		durStr := fmt.Sprintf("%.1fms", durMs)
		if s.End.IsZero() {
			durStr = "open"
		}
		indent := ""
		if s.Parent != 0 {
			indent = "└ "
		}
		bw.printf("%+9.3fms %9s  %s%s%s\n",
			float64(rel(epoch, s.Start))/1000, durStr, indent, s.Name, formatAttrs(s.Attrs))
		for _, e := range s.Events {
			bw.printf("            %+9.3fms · %s%s\n",
				float64(rel(epoch, e.Time))/1000, e.Name, formatAttrs(e.Attrs))
		}
	}
	return bw.err
}

func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	return b.String()
}
