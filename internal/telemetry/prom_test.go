package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestWritePrometheusShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster_reconnects_total", "Re-established executor connections.").Add(3)
	r.Gauge("inflight_tasks", "Tasks currently dispatched.").Set(2.5)
	v := r.HistogramVec("engine_op_seconds", "Per-op latency.", []float64{0.01, 0.1}, "op")
	v.With("filter").Observe(0.005)
	v.With("filter").Observe(0.05)
	v.With("project").Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cluster_reconnects_total counter",
		"cluster_reconnects_total 3",
		"# TYPE inflight_tasks gauge",
		"inflight_tasks 2.5",
		"# TYPE engine_op_seconds histogram",
		`engine_op_seconds_bucket{op="filter",le="0.01"} 1`,
		`engine_op_seconds_bucket{op="filter",le="0.1"} 2`,
		`engine_op_seconds_bucket{op="filter",le="+Inf"} 2`,
		`engine_op_seconds_count{op="filter"} 2`,
		`engine_op_seconds_bucket{op="project",le="+Inf"} 1`,
		`engine_op_seconds_sum{op="project"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		v := r.CounterVec("z_total", "Zs.", "k")
		v.With("b").Inc()
		v.With("a").Add(2)
		r.Counter("a_total", "As.").Inc()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("exposition must be deterministic:\n%s\nvs\n%s", a, b)
	}
	// Families sorted by name, label values sorted within a family.
	if strings.Index(a, "a_total") > strings.Index(a, "z_total") {
		t.Fatalf("families not sorted:\n%s", a)
	}
	if strings.Index(a, `z_total{k="a"}`) > strings.Index(a, `z_total{k="b"}`) {
		t.Fatalf("label values not sorted:\n%s", a)
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("weird metric-name", "help with \\ and\nnewline", "label name!")
	v.With("va\"lue\\with\nnasties").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("escaped exposition invalid: %v\n%s", err, out)
	}
	if !strings.Contains(out, `weird_metric_name{label_name_="va\"lue\\with\nnasties"} 1`) {
		t.Fatalf("unexpected escaping:\n%s", out)
	}
}

// ValidateExposition is a strict line-level checker for the Prometheus
// text format: every line is a comment, blank, or `name{labels} value`
// with a legal name, balanced quoted label values and a parseable
// float. The fuzz target holds WritePrometheus to this contract for
// arbitrary registry contents.
func ValidateExposition(s string) error {
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		rest, err := validateName(line)
		if err != nil {
			return fmt.Errorf("line %d: %w (%q)", lineNo, err, line)
		}
		if strings.HasPrefix(rest, "{") {
			end, err := validateLabels(rest)
			if err != nil {
				return fmt.Errorf("line %d: %w (%q)", lineNo, err, line)
			}
			rest = rest[end:]
		}
		if !strings.HasPrefix(rest, " ") {
			return fmt.Errorf("line %d: missing space before value (%q)", lineNo, line)
		}
		val := strings.TrimPrefix(rest, " ")
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := parseFloat(val); err != nil {
				return fmt.Errorf("line %d: bad value %q: %w", lineNo, val, err)
			}
		}
	}
	return sc.Err()
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

func validateName(line string) (rest string, err error) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0) {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return "", fmt.Errorf("empty or illegal metric name")
	}
	return line[i:], nil
}

func validateLabels(s string) (end int, err error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		start := i
		for i < len(s) && (s[i] == '_' || (s[i] >= 'a' && s[i] <= 'z') || (s[i] >= 'A' && s[i] <= 'Z') || (s[i] >= '0' && s[i] <= '9' && i > start)) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("empty label name at %d", i)
		}
		if i+1 >= len(s) || s[i] != '=' || s[i+1] != '"' {
			return 0, fmt.Errorf("expected =\" after label name at %d", i)
		}
		i += 2
		// quoted value with escapes
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			if s[i] == '\n' {
				return 0, fmt.Errorf("raw newline in label value")
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape")
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("illegal escape \\%c", s[i+1])
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				i++
				break
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		3:          "3",
		2.5:        "2.5",
		-1:         "-1",
		math.Inf(1): "+Inf",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Fatalf("formatValue(NaN) = %q", got)
	}
}
