package difftest

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ivnt/internal/relation"
)

// floatTol is the relative tolerance used by canonical comparison.
// Runs over the *same* partitioning must agree bitwise (they execute
// the identical float operations in the identical order), so the
// direct oracle-vs-executor checks use exact comparison; only the
// cross-partitioning invariants tolerate the re-association error of
// partial float sums.
const floatTol = 1e-9

// cellsExact reports bitwise value equality: same kind, and for floats
// the same bit pattern (so a -0 vs +0 or NaN-payload drift would be
// caught, not forgiven).
func cellsExact(a, b relation.Value) bool {
	if a.K != b.K {
		return false
	}
	switch a.K {
	case relation.KindNull:
		return true
	case relation.KindBool, relation.KindInt:
		return a.I == b.I
	case relation.KindFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case relation.KindString:
		return a.S == b.S
	case relation.KindBytes:
		return string(a.B) == string(b.B)
	default:
		return false
	}
}

func fmtRow(r relation.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.AsString()
		if v.IsNull() {
			parts[i] = "∅"
		}
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

// DiffExact compares two relations partition by partition, row by row,
// cell by cell. It returns "" when identical, otherwise a readable
// description of the first few differences.
func DiffExact(want, got *relation.Relation) string {
	if !want.Schema.Equal(got.Schema) {
		return fmt.Sprintf("schema mismatch:\n  want %s\n  got  %s", want.Schema, got.Schema)
	}
	if len(want.Partitions) != len(got.Partitions) {
		return fmt.Sprintf("partition count mismatch: want %d, got %d", len(want.Partitions), len(got.Partitions))
	}
	var b strings.Builder
	diffs := 0
	for pi := range want.Partitions {
		wp, gp := want.Partitions[pi], got.Partitions[pi]
		if len(wp) != len(gp) {
			fmt.Fprintf(&b, "partition %d: want %d rows, got %d\n", pi, len(wp), len(gp))
			diffs++
			continue
		}
		for ri := range wp {
			if diffs >= 5 {
				b.WriteString("  ... further diffs elided\n")
				return b.String()
			}
			same := len(wp[ri]) == len(gp[ri])
			if same {
				for ci := range wp[ri] {
					if !cellsExact(wp[ri][ci], gp[ri][ci]) {
						same = false
						break
					}
				}
			}
			if !same {
				fmt.Fprintf(&b, "partition %d row %d:\n  want %s\n  got  %s\n", pi, ri, fmtRow(wp[ri]), fmtRow(gp[ri]))
				diffs++
			}
		}
	}
	return b.String()
}

// bothNumeric reports whether both values are Int or Float — the one
// case where canonical comparison goes through float64 (a derived
// column can legitimately hold Int on one side and Float on the other:
// iff(p, intExpr, floatExpr) re-associated across partitions).
func bothNumeric(a, b relation.Value) bool {
	num := func(v relation.Value) bool { return v.K == relation.KindInt || v.K == relation.KindFloat }
	return num(a) && num(b)
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= floatTol*scale
}

// cellCanon is the tolerance-aware three-way comparison used to put
// rows into canonical order on both sides before pairing them up.
func cellCanon(a, b relation.Value) int {
	if bothNumeric(a, b) {
		fa, fb := a.AsFloat(), b.AsFloat()
		if closeEnough(fa, fb) {
			return 0
		}
		if fa < fb {
			return -1
		}
		return 1
	}
	return a.Compare(b)
}

func canonLess(a, b relation.Row) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := cellCanon(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

func cellsClose(a, b relation.Value) bool {
	if bothNumeric(a, b) {
		return closeEnough(a.AsFloat(), b.AsFloat())
	}
	return a.Equal(b)
}

// DiffCanonical compares two relations as multisets: both sides are
// flattened, sorted by a tolerance-aware row order, and paired up with
// numeric cells compared under relative tolerance. This is the
// comparison used by the partition-count and row-order invariances,
// where partial sums are re-associated and exact bit equality is not a
// meaningful expectation.
func DiffCanonical(want, got *relation.Relation) string {
	if !want.Schema.Equal(got.Schema) {
		return fmt.Sprintf("schema mismatch:\n  want %s\n  got  %s", want.Schema, got.Schema)
	}
	wr, gr := want.Rows(), got.Rows()
	if len(wr) != len(gr) {
		return fmt.Sprintf("row count mismatch: want %d, got %d", len(wr), len(gr))
	}
	wr, gr = append([]relation.Row(nil), wr...), append([]relation.Row(nil), gr...)
	sort.SliceStable(wr, func(i, j int) bool { return canonLess(wr[i], wr[j]) })
	sort.SliceStable(gr, func(i, j int) bool { return canonLess(gr[i], gr[j]) })
	var b strings.Builder
	diffs := 0
	for i := range wr {
		if diffs >= 5 {
			b.WriteString("  ... further diffs elided\n")
			break
		}
		same := len(wr[i]) == len(gr[i])
		if same {
			for ci := range wr[i] {
				if !cellsClose(wr[i][ci], gr[i][ci]) {
					same = false
					break
				}
			}
		}
		if !same {
			fmt.Fprintf(&b, "canonical row %d:\n  want %s\n  got  %s\n", i, fmtRow(wr[i]), fmtRow(gr[i]))
			diffs++
		}
	}
	return b.String()
}

// Report renders a mismatch with everything needed to replay it: the
// failing invariant, the seed, the input shape, and the operator tree.
func Report(w *Workload, invariant, detail string) string {
	return fmt.Sprintf(
		"differential mismatch [%s]\n"+
			"  seed: %d   (replay: go test ./internal/difftest/ -run Differential -difftest.seed=%d -v)\n"+
			"  input: %d rows, schema %s\n"+
			"  plan (window=%v dedup=%v):\n%s"+
			"  detail:\n%s",
		invariant, w.Seed, w.Seed, len(w.Rows), w.Schema, w.UsesWindow, w.HasDedup,
		FormatOps(w.Ops), indent(detail))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
