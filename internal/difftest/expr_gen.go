package difftest

import (
	"fmt"
	"strconv"
)

// exprType is the value class a generated expression must produce.
// Numeric expressions are only ever built over numeric-safe columns,
// so their values stay Int/Float/Null — never a string whose AsFloat
// would be NaN (NaN has no consistent ordering and would poison the
// canonical comparator).
type exprType int

const (
	tNum exprType = iota
	tBool
	tStr
)

type exprOpts struct {
	// window permits lag/gap/delta. Emitting one marks the workload
	// partition- and order-sensitive.
	window bool
	// noStr forbids string literals: rule bodies are embedded inside a
	// quoted literal of the enclosing expression, so they cannot
	// themselves contain quotes.
	noStr bool
}

func (g *gen) colsWhere(pred func(name string) bool) []string {
	var out []string
	for _, n := range g.cur.Names() {
		if pred(n) {
			out = append(out, n)
		}
	}
	return out
}

func (g *gen) numericCols() []string {
	return g.colsWhere(func(n string) bool { return g.meta[n].numericSafe })
}

func (g *gen) kindCols(k ...string) []string {
	want := map[string]bool{}
	for _, s := range k {
		want[s] = true
	}
	return g.colsWhere(func(n string) bool {
		return want[g.cur.Cols[g.cur.Index(n)].Kind.String()]
	})
}

func (g *gen) pick(names []string) string { return names[g.rng.Intn(len(names))] }

func (g *gen) numLit() string {
	if g.rng.Intn(2) == 0 {
		return strconv.Itoa(g.rng.Intn(201) - 100)
	}
	// Sixteenths: exactly representable, so cross-partitioning float
	// drift stays pure re-association error.
	return strconv.FormatFloat(float64(g.rng.Intn(3201)-1600)/16, 'g', -1, 64)
}

func (g *gen) strLit() string {
	w := wordPool[g.rng.Intn(len(wordPool))]
	n := g.rng.Intn(len(w) + 1)
	return strconv.Quote(w[:n])
}

// genExpr produces a random expression of the requested type with at
// most `depth` levels of nesting. All emitted constructs are
// deterministic and row-local (except the explicitly tracked window
// functions) and never yield NaN or Inf on generated data.
func (g *gen) genExpr(t exprType, depth int, o exprOpts) string {
	switch t {
	case tNum:
		return g.genNum(depth, o)
	case tStr:
		return g.genStr(depth, o)
	default:
		return g.genBool(depth, o)
	}
}

func (g *gen) genNum(depth int, o exprOpts) string {
	nums := g.numericCols()
	if depth <= 0 || g.rng.Float64() < 0.25 {
		if len(nums) > 0 && g.rng.Float64() < 0.7 {
			return g.pick(nums)
		}
		return g.numLit()
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		ops := []string{"+", "-", "*"}
		return fmt.Sprintf("(%s %s %s)", g.genNum(depth-1, o), ops[g.rng.Intn(3)], g.genNum(depth-1, o))
	case 3:
		return fmt.Sprintf("(%s / %s)", g.genNum(depth-1, o), g.genNum(depth-1, o))
	case 4:
		return fmt.Sprintf("(%s %% %s)", g.genNum(depth-1, o), g.genNum(depth-1, o))
	case 5:
		return fmt.Sprintf("abs(%s)", g.genNum(depth-1, o))
	case 6:
		fn := []string{"min", "max"}[g.rng.Intn(2)]
		return fmt.Sprintf("%s(%s, %s)", fn, g.genNum(depth-1, o), g.genNum(depth-1, o))
	case 7:
		return fmt.Sprintf("iff(%s, %s, %s)", g.genBool(depth-1, o), g.genNum(depth-1, o), g.genNum(depth-1, o))
	case 8:
		if len(nums) > 0 {
			return fmt.Sprintf("coalesce(%s, %s)", g.pick(nums), g.genNum(depth-1, o))
		}
		return g.numLit()
	default:
		if o.window && len(nums) > 0 {
			g.usedWindow = true
			col := g.pick(nums)
			switch g.rng.Intn(3) {
			case 0:
				return fmt.Sprintf("lag(%s, %d)", col, 1+g.rng.Intn(2))
			case 1:
				return fmt.Sprintf("gap(%s)", col)
			default:
				return fmt.Sprintf("delta(%s)", col)
			}
		}
		return fmt.Sprintf("-(%s)", g.genNum(depth-1, o))
	}
}

func (g *gen) genBool(depth int, o exprOpts) string {
	bools := g.kindCols("bool")
	if depth <= 0 || g.rng.Float64() < 0.2 {
		if len(bools) > 0 && g.rng.Float64() < 0.6 {
			return g.pick(bools)
		}
		return []string{"true", "false"}[g.rng.Intn(2)]
	}
	switch g.rng.Intn(8) {
	case 0, 1:
		rel := []string{"<", "<=", ">", ">="}[g.rng.Intn(4)]
		return fmt.Sprintf("(%s %s %s)", g.genNum(depth-1, o), rel, g.genNum(depth-1, o))
	case 2:
		eq := []string{"==", "!="}[g.rng.Intn(2)]
		if o.noStr || g.rng.Intn(2) == 0 {
			return fmt.Sprintf("(%s %s %s)", g.genNum(depth-1, o), eq, g.genNum(depth-1, o))
		}
		return fmt.Sprintf("(%s %s %s)", g.genStr(depth-1, o), eq, g.genStr(depth-1, o))
	case 3:
		op := []string{"&&", "||"}[g.rng.Intn(2)]
		return fmt.Sprintf("(%s %s %s)", g.genBool(depth-1, o), op, g.genBool(depth-1, o))
	case 4:
		return fmt.Sprintf("!(%s)", g.genBool(depth-1, o))
	case 5:
		return fmt.Sprintf("isnull(%s)", g.pick(g.cur.Names()))
	case 6:
		if !o.noStr {
			fn := []string{"contains", "startswith", "endswith"}[g.rng.Intn(3)]
			return fmt.Sprintf("%s(%s, %s)", fn, g.genStr(depth-1, o), g.strLit())
		}
		return fmt.Sprintf("(%s > %s)", g.genNum(depth-1, o), g.genNum(depth-1, o))
	default:
		return fmt.Sprintf("iff(%s, %s, %s)", g.genBool(depth-1, o), g.genBool(depth-1, o), g.genBool(depth-1, o))
	}
}

func (g *gen) genStr(depth int, o exprOpts) string {
	strs := g.kindCols("string")
	terminal := func() string {
		if len(strs) > 0 && g.rng.Float64() < 0.6 {
			return g.pick(strs)
		}
		if o.noStr {
			return fmt.Sprintf("str(%s)", g.numLit())
		}
		return g.strLit()
	}
	if depth <= 0 || g.rng.Float64() < 0.3 {
		return terminal()
	}
	switch g.rng.Intn(5) {
	case 0:
		fn := []string{"lower", "upper"}[g.rng.Intn(2)]
		return fmt.Sprintf("%s(%s)", fn, g.genStr(depth-1, o))
	case 1:
		return fmt.Sprintf("(%s + %s)", g.genStr(depth-1, o), g.genStr(depth-1, o))
	case 2:
		return fmt.Sprintf("str(%s)", g.genNum(depth-1, o))
	case 3:
		return fmt.Sprintf("iff(%s, %s, %s)", g.genBool(depth-1, o), g.genStr(depth-1, o), g.genStr(depth-1, o))
	default:
		return terminal()
	}
}
