package difftest

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/oracle"
	"ivnt/internal/query"
	"ivnt/internal/relation"
)

// -difftest.query narrows a replay to the query-frontend invariants:
// with -difftest.seed=<seed> it skips the main differential run, so the
// failing query check reproduces alone (and verbosely).
var flagQuery = flag.Bool("difftest.query", false,
	"replay only the query-frontend invariants (pair with -difftest.seed to reproduce a query failure)")

// queryAtom synthesizes one `col op literal` predicate from the
// workload's own cell values (so it is selective, not vacuous).
func queryAtom(w *Workload, rng *rand.Rand) string {
	type cand struct{ col, lit string }
	var cands []cand
	for ci, c := range w.Schema.Cols {
		switch c.Kind {
		case relation.KindInt, relation.KindFloat, relation.KindString:
		default:
			continue
		}
		for _, r := range w.Rows {
			v := r[ci]
			switch v.K {
			case relation.KindInt:
				cands = append(cands, cand{c.Name, strconv.FormatInt(v.I, 10)})
			case relation.KindFloat:
				if !math.IsNaN(v.F) && !math.IsInf(v.F, 0) {
					cands = append(cands, cand{c.Name, strconv.FormatFloat(v.F, 'g', -1, 64)})
				}
			case relation.KindString:
				cands = append(cands, cand{c.Name, strconv.Quote(v.S)})
			}
		}
	}
	if len(cands) == 0 {
		return "c0 >= 0" // empty input: any predicate will do
	}
	c := cands[rng.Intn(len(cands))]
	op := []string{"<", "<=", ">", ">=", "=="}[rng.Intn(5)]
	return fmt.Sprintf("%s %s %s", c.col, op, c.lit)
}

// genQuery derives a SELECT statement plus the op tree a caller would
// hand-build for it: a WHERE of 1..3 atoms mixed over && and || and a
// random nonempty column subset in select order. The statement embeds
// the predicate source verbatim, which is what makes the compiled plan
// byte-identical to the hand-built one.
func genQuery(w *Workload) (sql string, ops []engine.OpDesc) {
	rng := rand.New(rand.NewSource(w.Seed ^ 0x9e37))
	pred := queryAtom(w, rng)
	for extra := rng.Intn(3); extra > 0; extra-- {
		conn := []string{" && ", " || "}[rng.Intn(2)]
		pred = pred + conn + queryAtom(w, rng)
	}
	var cols []string
	for _, c := range w.Schema.Cols {
		if rng.Intn(2) == 0 {
			cols = append(cols, c.Name)
		}
	}
	if len(cols) == 0 {
		cols = []string{w.Schema.Cols[0].Name}
	}
	sql = "SELECT " + strings.Join(cols, ", ") + " FROM trace WHERE " + pred
	return sql, []engine.OpDesc{engine.Filter(pred), engine.Project(cols...)}
}

// stringCol returns the first string column (genSchema guarantees one).
func stringCol(w *Workload) string {
	for _, c := range w.Schema.Cols {
		if c.Kind == relation.KindString {
			return c.Name
		}
	}
	return ""
}

type storeSources struct{ src engine.ScanSource }

func (s storeSources) Source(string) (engine.ScanSource, error) { return s.src, nil }

func compileFor(w *Workload, sql string) (*query.Plan, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	return query.Compile(q, func(rel string) (relation.Schema, error) {
		if rel != "trace" {
			return relation.Schema{}, fmt.Errorf("unknown relation %q", rel)
		}
		return w.Schema, nil
	})
}

// checkQuery runs the query-frontend invariant family for one workload.
// The statement's compiled scan ops must be the very hand-built tree
// (same OpDesc data, same stage fingerprint), and for P ∈ {1, 2, 7}
// sealed segments three subjects stay bitwise-equal —
//
//	oracle(full scan + ops)  ==  hand-built ScanStage  ==  parsed query.Run
//
// — then a GROUP BY count(*) statement must match the hand-built
// DistributedAggregate row for row after the governed sort.
func checkQuery(ctx context.Context, local *engine.Local, w *Workload, dir string) []string {
	var fails []string
	fail := func(invariant, detail string) {
		fails = append(fails, Report(w, invariant, detail))
	}
	sql, ops := genQuery(w)
	plan, err := compileFor(w, sql)
	if err != nil {
		fail("query-compile", fmt.Sprintf("%s\n  statement: %s", err, sql))
		return fails
	}
	if !reflect.DeepEqual(plan.ScanOps, ops) {
		fail("query-plan", fmt.Sprintf("compiled ops differ from hand-built:\n  statement: %s\n  got  %s\n  want %s",
			sql, FormatOps(plan.ScanOps), FormatOps(ops)))
		return fails
	}
	if got, want := engine.StageFingerprint(w.Schema, plan.ScanOps), engine.StageFingerprint(w.Schema, ops); got != want {
		fail("query-fingerprint", fmt.Sprintf("compiled stage fingerprint %x != hand-built %x (statement: %s)", got, want, sql))
	}

	key := stringCol(w)
	aggSQL := fmt.Sprintf("SELECT %s, count(*) AS n FROM trace GROUP BY %s ORDER BY %s", key, key, key)

	for _, p := range []int{1, 2, 7} {
		st, err := buildScanStore(filepath.Join(dir, fmt.Sprintf("p%d", p)), w, p)
		if err != nil {
			fail(fmt.Sprintf("query-store p=%d", p), err.Error())
			continue
		}
		full, err := st.Scan(ctx, engine.Pushdown{})
		if err != nil {
			fail(fmt.Sprintf("query-full p=%d", p), err.Error())
			continue
		}
		ref, err := oracle.RunStage(full, ops)
		if err != nil {
			fail(fmt.Sprintf("query-oracle p=%d", p), err.Error())
			continue
		}
		hand, _, err := engine.ScanStage(ctx, local, st, ops)
		if err != nil {
			fail(fmt.Sprintf("query-hand p=%d", p), err.Error())
		} else if d := DiffExact(ref, hand); d != "" {
			fail(fmt.Sprintf("query-hand p=%d", p), d)
		}
		res, err := query.Run(ctx, local, storeSources{st}, plan, engine.PlanConfig{})
		if err != nil {
			fail(fmt.Sprintf("query-parsed p=%d", p), err.Error())
		} else if d := DiffExact(ref, res.Rel); d != "" {
			fail(fmt.Sprintf("query-parsed p=%d", p), d+"\n  statement: "+sql)
		}

		// Aggregate statement vs the hand-built distributed plan. Both
		// sort on the unique group key, so row order is total and the
		// comparison is exact (partition layout after a governed sort is
		// the sorter's business — rows are compared in order).
		if key == "" {
			continue
		}
		aggPlan, err := compileFor(w, aggSQL)
		if err != nil {
			fail(fmt.Sprintf("query-agg-compile p=%d", p), err.Error())
			continue
		}
		pre, _, err := engine.ScanStage(ctx, local, st, []engine.OpDesc{engine.Project(key)})
		if err != nil {
			fail(fmt.Sprintf("query-agg-scan p=%d", p), err.Error())
			continue
		}
		agg, _, _, err := engine.DistributedAggregate(ctx, local, pre, []string{key},
			[]engine.AggSpec{{Fn: engine.AggCount, As: "n"}}, engine.PlanConfig{})
		if err != nil {
			fail(fmt.Sprintf("query-agg-hand p=%d", p), err.Error())
			continue
		}
		sorted, err := engine.SortRelation(agg, key)
		if err != nil {
			fail(fmt.Sprintf("query-agg-sort p=%d", p), err.Error())
			continue
		}
		ares, err := query.Run(ctx, local, storeSources{st}, aggPlan, engine.PlanConfig{})
		if err != nil {
			fail(fmt.Sprintf("query-agg-parsed p=%d", p), err.Error())
			continue
		}
		if d := diffRowsInOrder(sorted, ares.Rel); d != "" {
			fail(fmt.Sprintf("query-agg p=%d", p), d+"\n  statement: "+aggSQL)
		}
	}
	return fails
}

// diffRowsInOrder compares two relations row by row in partition-major
// order, ignoring partition boundaries (both subjects are sorted on the
// same unique key, so order is total).
func diffRowsInOrder(want, got *relation.Relation) string {
	wr, gr := want.Rows(), got.Rows()
	if len(wr) != len(gr) {
		return fmt.Sprintf("row count mismatch: want %d, got %d", len(wr), len(gr))
	}
	for i := range wr {
		if !wr[i].Equal(gr[i]) {
			return fmt.Sprintf("row %d:\n  want %s\n  got  %s", i, fmtRow(wr[i]), fmtRow(gr[i]))
		}
	}
	return ""
}

// TestQueryDifferential drives the query-frontend invariants over the
// seeded workload population (the `make difftest-query` CI job). Replay
// one failure with -difftest.seed=<seed> -difftest.query.
func TestQueryDifferential(t *testing.T) {
	armBudget(t)
	ctx := context.Background()
	local := engine.NewLocal(4)

	var seeds []int64
	if *flagSeed != 0 {
		seeds = []int64{*flagSeed}
	} else {
		for i := int64(0); i < int64(*flagN); i++ {
			seeds = append(seeds, *flagBase+i)
		}
	}
	failures := 0
	for _, seed := range seeds {
		w := Generate(seed)
		if *flagQuery {
			sql, _ := genQuery(w)
			t.Logf("seed %d statement: %s", seed, sql)
		}
		for _, rep := range checkQuery(ctx, local, w, t.TempDir()) {
			t.Errorf("\n%s", rep)
			failures++
		}
		if failures >= 3 {
			t.Fatalf("stopping after %d mismatches", failures)
		}
	}
}

// TestQueryDifferentialCatchesPrecedenceBug demonstrates detection
// power: a frontend that parses `A || B && C` as `(A || B) && C`
// (injected via query.DebugMutateWhere) must break bitwise equality
// against the oracle running the correctly parsed predicate, with a
// replayable report. This is exactly the class of bug a hand-rolled
// statement parser invites, and the one the shared expr grammar is
// supposed to rule out.
func TestQueryDifferentialCatchesPrecedenceBug(t *testing.T) {
	query.DebugMutateWhere = func(where string) string {
		// Reassociate the first || to bind looser-than-&& on its right:
		// A || B && C  ->  (A || B) && C.
		i := strings.Index(where, " || ")
		j := strings.LastIndex(where, " && ")
		if i < 0 || j < i {
			return where
		}
		return "(" + where[:j] + ")" + where[j:]
	}
	defer func() { query.DebugMutateWhere = nil }()
	ctx := context.Background()
	local := engine.NewLocal(2)

	caught := false
	for seed := int64(1); seed <= 500 && !caught; seed++ {
		w := Generate(seed)
		if len(w.Rows) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(w.Seed ^ 0x51ec))
		pred := queryAtom(w, rng) + " || " + queryAtom(w, rng) + " && " + queryAtom(w, rng)
		sql := "SELECT * FROM trace WHERE " + pred
		plan, err := compileFor(w, sql)
		if err != nil {
			continue // mutated predicate failed to compile; try the next seed
		}
		st, err := buildScanStore(t.TempDir(), w, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full, err := st.Scan(ctx, engine.Pushdown{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := oracle.RunStage(full, []engine.OpDesc{engine.Filter(pred)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := query.Run(ctx, local, storeSources{st}, plan, engine.PlanConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := DiffExact(ref, got.Rel)
		if d == "" {
			continue
		}
		caught = true
		rep := Report(w, "injected-precedence", d)
		for _, token := range []string{"seed:", "-difftest.seed="} {
			if !strings.Contains(rep, token) {
				t.Fatalf("report missing %q:\n%s", token, rep)
			}
		}
		t.Logf("wrong-precedence parse caught at seed %d (%s):\n%s", seed, pred, rep)
	}
	if !caught {
		t.Fatal("wrong-precedence WHERE parses never changed a result across 500 seeded workloads")
	}
}
