package difftest

import (
	"context"
	"flag"
	"strings"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/oracle"
	"ivnt/internal/relation"
)

var (
	flagN    = flag.Int("difftest.n", 25, "number of seeded workloads to run")
	flagSeed = flag.Int64("difftest.seed", 0, "replay exactly one workload seed (0 = run difftest.n seeds)")
	flagBase = flag.Int64("difftest.base", 1, "first workload seed when difftest.seed is 0")
	flagVec  = flag.Bool("difftest.vectorize", true, "run executors on the vectorized engine path (set false to replay a failure on the row-at-a-time path)")
)

// TestDifferential is the main differential run: every seeded workload
// executes on the oracle, the local executor and a real TCP cluster,
// and is then pushed through the five metamorphic invariants. Any
// mismatch prints a seed + op-tree report; replay a failure with
// -difftest.seed=<seed>, and flip -difftest.vectorize to bisect
// whether it lives in the vectorized kernels or the shared row logic.
func TestDifferential(t *testing.T) {
	if *flagShuffle {
		t.Skip("-difftest.shuffle: running only the shuffle invariants (TestShuffleDifferential)")
	}
	if *flagScan {
		t.Skip("-difftest.scan: running only the segment-scan invariants (TestScanDifferential)")
	}
	prev := engine.Vectorize.Load()
	engine.Vectorize.Store(*flagVec)
	defer engine.Vectorize.Store(prev)
	armBudget(t) // -difftest.membudget forces the run under a governor budget

	ctx := context.Background()
	env, err := NewEnv(ctx)
	if err != nil {
		t.Fatalf("start cluster env: %v", err)
	}
	defer env.Close()

	var seeds []int64
	if *flagSeed != 0 {
		seeds = []int64{*flagSeed}
	} else {
		for i := int64(0); i < int64(*flagN); i++ {
			seeds = append(seeds, *flagBase+i)
		}
	}

	failures := 0
	for _, seed := range seeds {
		w := Generate(seed)
		t.Logf("seed %d: %d rows, %d ops, window=%v dedup=%v",
			seed, len(w.Rows), len(w.Ops), w.UsesWindow, w.HasDedup)
		for _, rep := range env.CheckWorkload(ctx, w) {
			t.Errorf("\n%s", rep)
			failures++
		}
		if failures >= 3 {
			t.Fatalf("stopping after %d mismatches", failures)
		}
	}
}

// TestGenerateDeterministic pins the replay contract: the same seed
// must regenerate the identical workload, otherwise printed seeds are
// useless for reproduction.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a, b := Generate(seed), Generate(seed)
		if FormatOps(a.Ops) != FormatOps(b.Ops) {
			t.Fatalf("seed %d: op trees differ:\n%s\nvs\n%s", seed, FormatOps(a.Ops), FormatOps(b.Ops))
		}
		if d := DiffExact(a.rel(3), b.rel(3)); d != "" {
			t.Fatalf("seed %d: inputs differ:\n%s", seed, d)
		}
	}
}

// sameOn mirrors the engine's dedup column comparison.
func sameOn(a, b relation.Row, idx []int) bool {
	for _, ci := range idx {
		if !a[ci].Equal(b[ci]) {
			return false
		}
	}
	return true
}

// buggyDedup is DedupConsecutive with a deliberate off-by-one: it
// compares each row against the row *two* back instead of its
// immediate predecessor.
func buggyDedup(rows []relation.Row, idx []int) []relation.Row {
	var out []relation.Row
	for i, r := range rows {
		if i > 1 && sameOn(r, rows[i-2], idx) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// runWithBuggyDedup replays a workload through the oracle but
// substitutes the broken dedup, simulating a wrong-answer engine bug.
func runWithBuggyDedup(w *Workload, nparts int) (*relation.Relation, error) {
	rel := w.rel(nparts)
	outParts := make([][]relation.Row, len(rel.Partitions))
	outSchema := rel.Schema
	for pi, part := range rel.Partitions {
		s := rel.Schema
		rows := part
		for _, op := range w.Ops {
			if op.Kind == engine.OpDedupConsecutive {
				idx := make([]int, len(op.Cols))
				for i, c := range op.Cols {
					idx[i] = s.Index(c)
				}
				rows = buggyDedup(rows, idx)
				continue
			}
			var err error
			s, rows, err = oracle.ApplyOp(s, rows, op)
			if err != nil {
				return nil, err
			}
		}
		outParts[pi] = rows
		outSchema = s
	}
	return &relation.Relation{Schema: outSchema, Partitions: outParts}, nil
}

// TestDifferentialCatchesInjectedDedupBug demonstrates the harness's
// detection power (acceptance criterion): an off-by-one injected into
// DedupConsecutive must be caught by the differ with a readable
// seed + op-tree report.
func TestDifferentialCatchesInjectedDedupBug(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 500 && !caught; seed++ {
		w := Generate(seed)
		if !w.HasDedup || len(w.Rows) == 0 {
			continue
		}
		ref, err := oracle.RunStage(w.rel(3), w.Ops)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		got, err := runWithBuggyDedup(w, 3)
		if err != nil {
			t.Fatalf("seed %d: buggy run: %v", seed, err)
		}
		d := DiffExact(ref, got)
		if d == "" {
			continue
		}
		caught = true
		rep := Report(w, "injected-dedup-bug", d)
		for _, want := range []string{"seed:", "-difftest.seed=", "dedupconsecutive", "partition"} {
			if !strings.Contains(rep, want) {
				t.Errorf("report missing %q:\n%s", want, rep)
			}
		}
		t.Logf("injected off-by-one caught at seed %d:\n%s", seed, rep)
	}
	if !caught {
		t.Fatalf("off-by-one dedup bug was never detected across 500 seeds")
	}
}

// TestDifferentialCatchesInjectedFusionBug demonstrates the harness
// guards the vectorized kernels themselves: a selection-vector bug
// injected through engine.DebugMutateSelection (each fused filter
// batch silently drops its last surviving row) must be caught by the
// oracle-vs-ApplyVectorized comparison with a readable seed + op-tree
// report. This is the acceptance criterion for the engine-path
// invariant added to CheckWorkload.
func TestDifferentialCatchesInjectedFusionBug(t *testing.T) {
	engine.DebugMutateSelection = func(sel []int32) []int32 {
		if len(sel) > 0 {
			return sel[:len(sel)-1]
		}
		return sel
	}
	defer func() { engine.DebugMutateSelection = nil }()

	caught := false
	for seed := int64(1); seed <= 500 && !caught; seed++ {
		w := Generate(seed)
		if len(w.Rows) == 0 {
			continue
		}
		pipe, err := engine.NewStagePipeline(w.Schema, w.Ops)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		ref, err := oracle.RunStage(w.rel(3), w.Ops)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		rel := w.rel(3)
		parts := make([][]relation.Row, len(rel.Partitions))
		for pi, part := range rel.Partitions {
			rows, err := pipe.ApplyVectorized(part)
			if err != nil {
				t.Fatalf("seed %d: vectorized: %v", seed, err)
			}
			parts[pi] = rows
		}
		got := &relation.Relation{Schema: pipe.OutputSchema(), Partitions: parts}
		d := DiffExact(ref, got)
		if d == "" {
			continue
		}
		caught = true
		rep := Report(w, "injected-fusion-bug", d)
		for _, want := range []string{"seed:", "-difftest.seed=", "partition"} {
			if !strings.Contains(rep, want) {
				t.Errorf("report missing %q:\n%s", want, rep)
			}
		}
		t.Logf("injected selection-vector bug caught at seed %d:\n%s", seed, rep)
	}
	if !caught {
		t.Fatalf("selection-vector fusion bug was never detected across 500 seeds")
	}
}
