package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ivnt/internal/cluster"
	"ivnt/internal/cluster/faultproxy"
	"ivnt/internal/engine"
	"ivnt/internal/oracle"
	"ivnt/internal/relation"
)

// Env is the shared execution environment for a differential run: a
// multi-core local executor, a real two-node TCP cluster, and a fault
// proxy in front of the first executor for the kill/restart and
// straggler invariants.
type Env struct {
	// Local is the in-process parallel executor every workload runs on.
	Local *engine.Local
	// addrs are the raw executor addresses; proxiedAddrs routes the
	// first executor through the chaos proxy.
	addrs        []string
	proxiedAddrs []string
	proxy        *faultproxy.Proxy
	stop         func()
}

// NewEnv starts a two-executor cluster plus a fault proxy. Close must
// be called when done.
func NewEnv(ctx context.Context) (*Env, error) {
	addrs, stop, err := cluster.StartLocalCluster(ctx, 2)
	if err != nil {
		return nil, err
	}
	proxy, err := faultproxy.New(addrs[0])
	if err != nil {
		stop()
		return nil, err
	}
	return &Env{
		Local:        engine.NewLocal(4),
		addrs:        addrs,
		proxiedAddrs: []string{proxy.Addr(), addrs[1]},
		proxy:        proxy,
		stop:         stop,
	}, nil
}

// Close tears down the proxy and the cluster.
func (e *Env) Close() {
	e.proxy.Close()
	e.stop()
}

// driver builds a fresh Driver against the direct executor addresses.
func (e *Env) driver() *cluster.Driver {
	return &cluster.Driver{
		Addrs:            e.addrs,
		SlotsPerExecutor: 2,
		ReconnectBase:    5 * time.Millisecond,
	}
}

// rel materializes a workload's input with the given partition count.
// Rows are deep-cloned per call: executors may reorder or otherwise
// reuse partition slices in place, and every run must see the pristine
// input.
func (w *Workload) rel(nparts int) *relation.Relation {
	rows := make([]relation.Row, len(w.Rows))
	for i, r := range w.Rows {
		rows[i] = r.Clone()
	}
	return relation.FromRows(w.Schema, rows).Repartition(nparts)
}

// shuffledRel is rel with the input rows in a seed-determined random
// order (the row-order invariance input).
func (w *Workload) shuffledRel(nparts int) *relation.Relation {
	rows := make([]relation.Row, len(w.Rows))
	for i, r := range w.Rows {
		rows[i] = r.Clone()
	}
	rng := rand.New(rand.NewSource(w.Seed ^ 0x5deece66d))
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return relation.FromRows(w.Schema, rows).Repartition(nparts)
}

// reduce collapses an executor result to a partitioning-independent
// relation: plans ending in a partial aggregation are merged (the
// driver-side combine), everything else passes through.
func reduce(res *relation.Relation, w *Workload) (*relation.Relation, error) {
	groupBy, aggs, ok := w.TerminalAgg()
	if !ok {
		return res, nil
	}
	return engine.MergePartials(res, groupBy, aggs)
}

// canonicalReference computes the partitioning-independent expected
// output straight from the oracle: the whole pipeline over the
// unpartitioned input, with a terminal partial aggregation replaced by
// the reference full aggregation.
func canonicalReference(w *Workload) (*relation.Relation, error) {
	groupBy, aggs, ok := w.TerminalAgg()
	if !ok {
		s, rows, err := oracle.RunPipeline(w.Schema, w.rel(1).Rows(), w.Ops)
		if err != nil {
			return nil, err
		}
		return relation.FromRows(s, rows), nil
	}
	pre := w.Ops[:len(w.Ops)-1]
	s, rows, err := oracle.RunPipeline(w.Schema, w.rel(1).Rows(), pre)
	if err != nil {
		return nil, err
	}
	return oracle.FinalAggregate(s, rows, groupBy, aggs)
}

// CheckWorkload executes one workload on the oracle, the local
// executor and the TCP cluster, then checks the five metamorphic
// invariants. It returns one formatted report per failed check; an
// empty slice means the workload passed everything.
func (e *Env) CheckWorkload(ctx context.Context, w *Workload) []string {
	var fails []string
	fail := func(invariant, detail string) {
		fails = append(fails, Report(w, invariant, detail))
	}

	nparts := 1 + int(uint64(w.Seed)%6)

	// Reference output on the baseline partitioning. Everything that
	// runs on the same partitioning must match it bitwise.
	ref, err := oracle.RunStage(w.rel(nparts), w.Ops)
	if err != nil {
		fail("oracle", err.Error())
		return fails
	}

	// Oracle vs multi-core local executor.
	lres, _, err := e.Local.RunStage(ctx, w.rel(nparts), w.Ops)
	if err != nil {
		fail("local", err.Error())
	} else if d := DiffExact(ref, lres); d != "" {
		fail("local", d)
	}

	// Engine-path invariant: the row-at-a-time reference path and the
	// vectorized batch path are both held bitwise-equal to the oracle,
	// regardless of where the process-wide Vectorize toggle happens to
	// point. This is the third differential subject — it pins the fused
	// kernels, the selection-vector compaction and the slab
	// materialization directly, without an executor in between.
	if pipe, err := engine.NewStagePipeline(w.Schema, w.Ops); err != nil {
		fail("engine-compile", err.Error())
	} else {
		in := w.rel(nparts)
		runPath := func(name string, apply func([]relation.Row) ([]relation.Row, error)) {
			parts := make([][]relation.Row, len(in.Partitions))
			for pi, part := range in.Partitions {
				rows, err := apply(part)
				if err != nil {
					fail(name, err.Error())
					return
				}
				parts[pi] = rows
			}
			got := &relation.Relation{Schema: pipe.OutputSchema(), Partitions: parts}
			if d := DiffExact(ref, got); d != "" {
				fail(name, d)
			}
		}
		runPath("row-path", pipe.ApplyRows)
		runPath("vectorized", pipe.ApplyVectorized)
	}

	// Oracle vs real TCP cluster.
	cres, _, err := e.driver().RunStage(ctx, w.rel(nparts), w.Ops)
	if err != nil {
		fail("cluster", err.Error())
	} else if d := DiffExact(ref, cres); d != "" {
		fail("cluster", d)
	}

	// Invariant 3: Driver.Compress on/off equivalence. Same
	// partitioning, so the comparison stays exact — compression must be
	// invisible down to the last bit.
	dc := e.driver()
	dc.Compress = true
	zres, _, err := dc.RunStage(ctx, w.rel(nparts), w.Ops)
	if err != nil {
		fail("compress", err.Error())
	} else if d := DiffExact(ref, zres); d != "" {
		fail("compress", d)
	}

	// Invariant 4: executor kill+restart mid-run. The first executor
	// sits behind the fault proxy; response chunks are slowed slightly
	// so the stage is still in flight when the proxy severs every
	// connection (twice). The driver must reconnect, re-dispatch, and
	// produce the identical result.
	killPlan := faultproxy.Passthrough() // zero-valued offsets are live faults
	killPlan.Latency = 2 * time.Millisecond
	e.proxy.SetPlan(killPlan)
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(4 * time.Millisecond)
		e.proxy.CutAll()
		time.Sleep(10 * time.Millisecond)
		e.proxy.CutAll()
	}()
	dk := e.driver()
	dk.Addrs = e.proxiedAddrs
	dk.MaxRetries = 8
	kres, _, err := dk.RunStage(ctx, w.rel(nparts), w.Ops)
	<-killDone
	e.proxy.Reset()
	if err != nil {
		fail("kill-restart", err.Error())
	} else if d := DiffExact(ref, kres); d != "" {
		fail("kill-restart", d)
	}

	// Invariant 5: speculation equivalence. The proxied executor is
	// made a straggler and speculation is tuned to fire eagerly; epoch
	// deduplication must keep duplicated task results from leaking into
	// the output.
	slowPlan := faultproxy.Passthrough()
	slowPlan.Latency = 30 * time.Millisecond
	e.proxy.SetPlan(slowPlan)
	ds := e.driver()
	ds.Addrs = e.proxiedAddrs
	ds.SpeculationFactor = 0.5
	ds.SpeculationMin = time.Millisecond
	ds.SpeculationInterval = 2 * time.Millisecond
	sres, _, err := ds.RunStage(ctx, w.rel(nparts), w.Ops)
	e.proxy.Reset()
	if err != nil {
		fail("speculation", err.Error())
	} else if d := DiffExact(ref, sres); d != "" {
		fail("speculation", d)
	}

	// Invariants 1+2 need a partitioning-independent output multiset.
	if !w.DistributionFree() {
		return fails
	}
	want, err := canonicalReference(w)
	if err != nil {
		fail("canonical-oracle", err.Error())
		return fails
	}

	// Invariant 1: partition-count invariance across 1, 2, 7 and 64
	// partitions on the local executor, plus one cluster run on a
	// partition count different from the baseline.
	for _, p := range []int{1, 2, 7, 64} {
		res, _, err := e.Local.RunStage(ctx, w.rel(p), w.Ops)
		if err != nil {
			fail(fmt.Sprintf("partitions=%d", p), err.Error())
			continue
		}
		red, err := reduce(res, w)
		if err != nil {
			fail(fmt.Sprintf("partitions=%d", p), err.Error())
			continue
		}
		if d := DiffCanonical(want, red); d != "" {
			fail(fmt.Sprintf("partitions=%d", p), d)
		}
	}
	cpres, _, err := e.driver().RunStage(ctx, w.rel(nparts+1), w.Ops)
	if err != nil {
		fail("partitions-cluster", err.Error())
	} else if red, err := reduce(cpres, w); err != nil {
		fail("partitions-cluster", err.Error())
	} else if d := DiffCanonical(want, red); d != "" {
		fail("partitions-cluster", d)
	}

	// Invariant 2: input row-order invariance.
	ores, _, err := e.Local.RunStage(ctx, w.shuffledRel(nparts), w.Ops)
	if err != nil {
		fail("row-order", err.Error())
	} else if red, err := reduce(ores, w); err != nil {
		fail("row-order", err.Error())
	} else if d := DiffCanonical(want, red); d != "" {
		fail("row-order", d)
	}

	return fails
}
