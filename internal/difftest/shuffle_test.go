package difftest

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/oracle"
	"ivnt/internal/relation"
)

// -difftest.shuffle narrows a replay to the shuffle invariants: with
// -difftest.seed=<seed> it skips the main differential run, so the
// failing shuffle check reproduces alone (and verbosely).
var flagShuffle = flag.Bool("difftest.shuffle", false,
	"replay only the shuffle invariants (pair with -difftest.seed to reproduce a shuffle failure)")

// shuffleKeys picks the workload's shuffle key deterministically from
// its output schema, preferring a hashable discrete column.
func shuffleKeys(out relation.Schema) []string {
	for _, c := range out.Cols {
		switch c.Kind {
		case relation.KindString, relation.KindInt, relation.KindBool:
			return []string{c.Name}
		}
	}
	if out.Len() == 0 {
		return nil
	}
	return []string{out.Cols[0].Name}
}

// joinTableFor builds a small dimension table over the key column's
// distinct output values (plus a null key, so null join keys are always
// exercised — the Repartition/hasher null-handling regression).
func joinTableFor(base *relation.Relation, key string) *relation.Relation {
	ki := base.Schema.MustIndex(key)
	kind := base.Schema.Cols[ki].Kind
	s := relation.NewSchema(
		relation.Column{Name: "rk", Kind: kind},
		relation.Column{Name: "tag", Kind: relation.KindString},
	)
	seen := map[string]bool{}
	var rows []relation.Row
	for _, r := range base.Rows() {
		v := r[ki]
		if v.IsNull() {
			continue
		}
		id := v.AsString()
		if seen[id] || len(rows) >= 16 {
			continue
		}
		seen[id] = true
		rows = append(rows, relation.Row{relation.Row{v}.Clone()[0], relation.Str(fmt.Sprintf("tag%d", len(rows)))})
	}
	rows = append(rows, relation.Row{relation.Null(), relation.Str("nulltag")})
	return relation.FromRows(s, rows).Repartition(2)
}

// checkShuffle runs the shuffle metamorphic invariants for one
// workload:
//
//  1. Exchange determinism (bitwise): ShuffleMaterialize — in-process
//     and over TCP — equals map-stage-then-PartitionByKey partition by
//     partition, at fan-outs 1/2/7/64.
//  2. Plan equivalence (canonical): shuffle join == broadcast join ==
//     oracle on the same inputs; and the TCP shuffle join equals the
//     in-process one bitwise at the same fan-out.
//  3. Aggregation plan equivalence (bitwise): for plans ending in a
//     partial aggregation, ShuffleAggregate equals the
//     PartialAgg→MergePartials funnel exactly — per-group accumulation
//     order is identical, so this holds for any float values.
func (e *Env) checkShuffle(ctx context.Context, w *Workload) []string {
	var fails []string
	fail := func(invariant, detail string) {
		fails = append(fails, Report(w, invariant, detail))
	}

	outSchema, err := engine.OutputSchema(w.Schema, w.Ops)
	if err != nil || outSchema.Len() == 0 {
		return nil // nothing to key a shuffle on
	}
	keys := shuffleKeys(outSchema)
	nparts := 1 + int(uint64(w.Seed)%6)

	mapped, _, err := e.Local.RunStage(ctx, w.rel(nparts), w.Ops)
	if err != nil {
		fail("shuffle-map", err.Error())
		return fails
	}

	// Invariant 1: the exchange is a deterministic repartitioning.
	for _, p := range []int{1, 2, 7, 64} {
		want, err := mapped.PartitionByKey(p, keys...)
		if err != nil {
			fail(fmt.Sprintf("shuffle-ref parts=%d", p), err.Error())
			continue
		}
		got, _, err := e.Local.ShuffleMaterialize(ctx, w.rel(nparts), w.Ops, keys, p)
		if err != nil {
			fail(fmt.Sprintf("shuffle-local parts=%d", p), err.Error())
		} else if d := DiffExact(want, got); d != "" {
			fail(fmt.Sprintf("shuffle-local parts=%d", p), d)
		}
	}
	clusterParts := 2 + int(uint64(w.Seed)%5)
	want, err := mapped.PartitionByKey(clusterParts, keys...)
	if err != nil {
		fail("shuffle-cluster", err.Error())
		return fails
	}
	cres, _, err := e.driver().ShuffleMaterialize(ctx, w.rel(nparts), w.Ops, keys, clusterParts)
	if err != nil {
		fail("shuffle-cluster", err.Error())
	} else if d := DiffExact(want, cres); d != "" {
		fail("shuffle-cluster", d)
	}

	// Invariant 2: shuffle join == broadcast join == oracle, joining the
	// workload's output against a dimension table on the shuffle key.
	key := keys[0]
	right := joinTableFor(mapped, key)
	joinOps := []engine.OpDesc{engine.BroadcastJoin(right, []string{key}, []string{"rk"})}
	bcast, _, err := e.Local.RunStage(ctx, mapped, joinOps)
	if err != nil {
		fail("shuffle-join-broadcast", err.Error())
		return fails
	}
	os, orows, err := oracle.RunPipeline(mapped.Schema, mapped.Rows(), joinOps)
	if err != nil {
		fail("shuffle-join-oracle", err.Error())
	} else if d := DiffCanonical(relation.FromRows(os, orows), bcast); d != "" {
		fail("shuffle-join-oracle", d)
	}
	sjLocal, _, err := e.Local.ShuffleJoin(ctx, mapped, right, []string{key}, []string{"rk"}, clusterParts)
	if err != nil {
		fail("shuffle-join-local", err.Error())
	} else if d := DiffCanonical(bcast, sjLocal); d != "" {
		fail("shuffle-join-local", d)
	}
	sjCluster, _, err := e.driver().ShuffleJoin(ctx, mapped, right, []string{key}, []string{"rk"}, clusterParts)
	if err != nil {
		fail("shuffle-join-cluster", err.Error())
	} else if sjLocal != nil {
		if d := DiffExact(sjLocal, sjCluster); d != "" {
			fail("shuffle-join-cluster", d)
		}
	}

	// Invariant 3: the shuffle aggregation plan replaces the funnel
	// bitwise.
	groupBy, aggs, ok := w.TerminalAgg()
	if !ok {
		return fails
	}
	pre, _, err := e.Local.RunStage(ctx, w.rel(nparts), w.Ops[:len(w.Ops)-1])
	if err != nil {
		fail("shuffle-agg-pre", err.Error())
		return fails
	}
	wantAgg, err := engine.AggregateDistributed(ctx, e.Local, pre, groupBy, aggs)
	if err != nil {
		fail("shuffle-agg-ref", err.Error())
		return fails
	}
	saLocal, _, err := e.Local.ShuffleAggregate(ctx, pre, groupBy, aggs, clusterParts)
	if err != nil {
		fail("shuffle-agg-local", err.Error())
	} else if d := DiffExact(wantAgg, saLocal); d != "" {
		fail("shuffle-agg-local", d)
	}
	saCluster, _, err := e.driver().ShuffleAggregate(ctx, pre, groupBy, aggs, clusterParts)
	if err != nil {
		fail("shuffle-agg-cluster", err.Error())
	} else if d := DiffExact(wantAgg, saCluster); d != "" {
		fail("shuffle-agg-cluster", d)
	}
	return fails
}

// TestShuffleDifferential drives the shuffle invariants over the seeded
// workload population (the `make difftest-shuffle` CI job). Replay one
// failure with -difftest.seed=<seed> -difftest.shuffle.
func TestShuffleDifferential(t *testing.T) {
	armBudget(t)
	ctx := context.Background()
	env, err := NewEnv(ctx)
	if err != nil {
		t.Fatalf("start cluster env: %v", err)
	}
	defer env.Close()

	var seeds []int64
	if *flagSeed != 0 {
		seeds = []int64{*flagSeed}
	} else {
		for i := int64(0); i < int64(*flagN); i++ {
			seeds = append(seeds, *flagBase+i)
		}
	}
	failures := 0
	for _, seed := range seeds {
		w := Generate(seed)
		if *flagShuffle {
			t.Logf("seed %d ops:\n%s", seed, FormatOps(w.Ops))
		}
		for _, rep := range env.checkShuffle(ctx, w) {
			t.Errorf("\n%s", rep)
			failures++
		}
		if failures >= 3 {
			t.Fatalf("stopping after %d mismatches", failures)
		}
	}
}

// TestShuffleDifferentialCatchesWrongBucket demonstrates detection
// power: a misrouting bug injected into the shuffle's bucket assignment
// (every row shifted one partition over) must be caught by the exchange
// determinism invariant — PartitionByKey, the reference, does not route
// through the hook.
func TestShuffleDifferentialCatchesWrongBucket(t *testing.T) {
	engine.SetDebugShuffleBucket(func(b, parts int) int { return (b + 1) % parts })
	defer engine.SetDebugShuffleBucket(nil)
	ctx := context.Background()
	local := engine.NewLocal(2)

	caught := false
	for seed := int64(1); seed <= 50 && !caught; seed++ {
		w := Generate(seed)
		out, err := engine.OutputSchema(w.Schema, w.Ops)
		if err != nil || out.Len() == 0 {
			continue
		}
		keys := shuffleKeys(out)
		mapped, _, err := local.RunStage(ctx, w.rel(3), w.Ops)
		if err != nil || mapped.NumRows() == 0 {
			continue
		}
		want, err := mapped.PartitionByKey(7, keys...)
		if err != nil {
			continue
		}
		got, _, err := local.ShuffleMaterialize(ctx, w.rel(3), w.Ops, keys, 7)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d := DiffExact(want, got); d != "" {
			rep := Report(w, "injected-wrong-bucket", d)
			for _, token := range []string{"seed:", "-difftest.seed="} {
				if !strings.Contains(rep, token) {
					t.Fatalf("report missing %q:\n%s", token, rep)
				}
			}
			caught = true
		}
	}
	if !caught {
		t.Fatal("wrong-bucket misrouting survived 50 seeded workloads undetected")
	}
}
