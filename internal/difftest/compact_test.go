package difftest

import (
	"context"
	"flag"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/oracle"
	"ivnt/internal/relation"
	"ivnt/internal/segstore"
)

// -difftest.encoding narrows a replay to the encoding/compaction
// invariants: with -difftest.seed=<seed> it skips the main differential
// run, so the failing check reproduces alone (and verbosely).
var flagEncoding = flag.Bool("difftest.encoding", false,
	"replay only the encoding/compaction invariants (pair with -difftest.seed to reproduce a failure)")

// buildStoreWith seals the workload's rows into a fresh store as nparts
// contiguous segments under explicit codec options — buildScanStore
// with the encoding knobs exposed.
func buildStoreWith(dir string, w *Workload, nparts int, opts segstore.Options) (*segstore.Store, error) {
	st, err := segstore.Open(dir, w.Schema, opts)
	if err != nil {
		return nil, err
	}
	n := len(w.Rows)
	per := (n + nparts - 1) / nparts
	for at := 0; at < n; at += per {
		end := min(at+per, n)
		rows := make([]relation.Row, end-at)
		for i, r := range w.Rows[at:end] {
			rows[i] = r.Clone()
		}
		if err := st.AppendSegment(rows); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// flatten concatenates a relation's partitions into one, for comparing
// stores whose physical partitioning legitimately differs (compaction
// merges segments but must preserve the row sequence).
func flatten(rel *relation.Relation) *relation.Relation {
	var all []relation.Row
	for _, p := range rel.Partitions {
		all = append(all, p...)
	}
	return &relation.Relation{Schema: rel.Schema, Partitions: [][]relation.Row{all}}
}

// checkCompact runs the encoding/compaction invariant family for one
// workload: for P ∈ {1, 2, 7},
//
//	raw store == dict/RLE-encoded store        bitwise, same partitioning
//	raw store == compacted encoded store       bitwise, concatenated
//	oracle(full scan) == ScanStage (pushdown)  over encoded AND compacted
//
// plus one ScanStage over the real TCP cluster reading encoded segment
// files. Raw and encoded stores share a partitioning, so equality is
// per-partition; compaction changes the layout, so its scans compare
// flattened and its pushdown runs against its own oracle.
func (e *Env) checkCompact(ctx context.Context, w *Workload, dir string) []string {
	var fails []string
	fail := func(invariant, detail string) {
		fails = append(fails, Report(w, invariant, detail))
	}
	ops := scanRootOps(w)
	clusterP := []int{1, 2, 7}[uint64(w.Seed)%3]

	for _, p := range []int{1, 2, 7} {
		raw, err := buildStoreWith(filepath.Join(dir, fmt.Sprintf("p%d-raw", p)), w, p, segstore.Options{})
		if err != nil {
			fail(fmt.Sprintf("compact-store-raw p=%d", p), err.Error())
			continue
		}
		enc, err := buildStoreWith(filepath.Join(dir, fmt.Sprintf("p%d-enc", p)), w, p,
			segstore.Options{Encodings: true, Compress: w.Seed%2 == 0})
		if err != nil {
			fail(fmt.Sprintf("compact-store-enc p=%d", p), err.Error())
			continue
		}
		rawFull, err := raw.Scan(ctx, engine.Pushdown{})
		if err != nil {
			fail(fmt.Sprintf("compact-scan-raw p=%d", p), err.Error())
			continue
		}
		encFull, err := enc.Scan(ctx, engine.Pushdown{})
		if err != nil {
			fail(fmt.Sprintf("compact-scan-enc p=%d", p), err.Error())
			continue
		}
		if d := DiffExact(rawFull, encFull); d != "" {
			fail(fmt.Sprintf("compact-encoded-equals-raw p=%d", p), d)
		}
		ref, err := oracle.RunStage(rawFull, ops)
		if err != nil {
			fail(fmt.Sprintf("compact-oracle p=%d", p), err.Error())
			continue
		}
		sres, _, err := engine.ScanStage(ctx, e.Local, enc, ops)
		if err != nil {
			fail(fmt.Sprintf("compact-pushdown-enc p=%d", p), err.Error())
		} else if d := DiffExact(ref, sres); d != "" {
			fail(fmt.Sprintf("compact-pushdown-enc p=%d", p), d)
		}

		cst, err := buildStoreWith(filepath.Join(dir, fmt.Sprintf("p%d-compact", p)), w, p,
			segstore.Options{Encodings: true})
		if err != nil {
			fail(fmt.Sprintf("compact-store-compact p=%d", p), err.Error())
			continue
		}
		if _, err := cst.Compact(segstore.CompactOptions{}); err != nil {
			fail(fmt.Sprintf("compact-run p=%d", p), err.Error())
			continue
		}
		compFull, err := cst.Scan(ctx, engine.Pushdown{})
		if err != nil {
			fail(fmt.Sprintf("compact-scan-compacted p=%d", p), err.Error())
			continue
		}
		if d := DiffExact(flatten(rawFull), flatten(compFull)); d != "" {
			fail(fmt.Sprintf("compact-compacted-equals-raw p=%d", p), d)
		}
		cref, err := oracle.RunStage(compFull, ops)
		if err != nil {
			fail(fmt.Sprintf("compact-oracle-compacted p=%d", p), err.Error())
			continue
		}
		csres, _, err := engine.ScanStage(ctx, e.Local, cst, ops)
		if err != nil {
			fail(fmt.Sprintf("compact-pushdown-compacted p=%d", p), err.Error())
		} else if d := DiffExact(cref, csres); d != "" {
			fail(fmt.Sprintf("compact-pushdown-compacted p=%d", p), d)
		}

		if p != clusterP {
			continue
		}
		cres, _, err := engine.ScanStage(ctx, e.driver(), enc, ops)
		if err != nil {
			fail(fmt.Sprintf("compact-cluster-enc p=%d", p), err.Error())
		} else if d := DiffExact(ref, cres); d != "" {
			fail(fmt.Sprintf("compact-cluster-enc p=%d", p), d)
		}
	}
	return fails
}

// TestCompactDifferential drives the encoding/compaction invariants
// over the seeded workload population (the `make difftest-compact` CI
// job). Replay one failure with -difftest.seed=<seed>
// -difftest.encoding.
func TestCompactDifferential(t *testing.T) {
	armBudget(t)
	ctx := context.Background()
	env, err := NewEnv(ctx)
	if err != nil {
		t.Fatalf("start cluster env: %v", err)
	}
	defer env.Close()

	var seeds []int64
	if *flagSeed != 0 {
		seeds = []int64{*flagSeed}
	} else {
		for i := int64(0); i < int64(*flagN); i++ {
			seeds = append(seeds, *flagBase+i)
		}
	}
	failures := 0
	for _, seed := range seeds {
		w := Generate(seed)
		if *flagEncoding {
			t.Logf("seed %d ops:\n%s", seed, FormatOps(scanRootOps(w)))
		}
		for _, rep := range env.checkCompact(ctx, w, t.TempDir()) {
			t.Errorf("\n%s", rep)
			failures++
		}
		if failures >= 3 {
			t.Fatalf("stopping after %d mismatches", failures)
		}
	}
}

// TestCompactDifferentialCatchesWrongRunLength demonstrates detection
// power: a corrupted RLE writer that swaps two run lengths produces a
// chunk that is structurally valid — runs still cover exactly the
// non-null cells, so decode succeeds — but assigns wrong values to the
// rows in between. The raw-equals-encoded bitwise invariant must catch
// it with a replayable report.
func TestCompactDifferentialCatchesWrongRunLength(t *testing.T) {
	colcodec.DebugMutateRuns = func(lens []int) {
		if len(lens) >= 2 && lens[0] != lens[1] {
			lens[0], lens[1] = lens[1], lens[0]
		}
	}
	defer func() { colcodec.DebugMutateRuns = nil }()
	ctx := context.Background()

	// A deterministic RLE-shaped workload: val holds two runs of unequal
	// length (40 zeros, 88 ones), so the injected swap reassigns rows
	// 40–87 — while ts stays distinct (raw) and sid constant (one run,
	// unaffected).
	sch := relation.NewSchema(
		relation.Column{Name: "ts", Kind: relation.KindInt},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sid", Kind: relation.KindString},
	)
	rows := make([]relation.Row, 128)
	for i := range rows {
		v := 0.0
		if i >= 40 {
			v = 1.0
		}
		rows[i] = relation.Row{relation.Int(int64(i)), relation.Float(v), relation.Str("s")}
	}
	w := &Workload{Seed: 424242, Schema: sch, Rows: rows}

	raw, err := buildStoreWith(filepath.Join(t.TempDir(), "raw"), w, 1, segstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := buildStoreWith(filepath.Join(t.TempDir(), "enc"), w, 1, segstore.Options{Encodings: true})
	if err != nil {
		t.Fatal(err)
	}
	rawFull, err := raw.Scan(ctx, engine.Pushdown{})
	if err != nil {
		t.Fatal(err)
	}
	encFull, err := enc.Scan(ctx, engine.Pushdown{})
	if err != nil {
		t.Fatal(err)
	}
	d := DiffExact(rawFull, encFull)
	if d == "" {
		t.Fatal("swapped run lengths survived the raw-equals-encoded invariant")
	}
	rep := Report(w, "injected-wrong-run-length", d)
	for _, token := range []string{"seed:", "-difftest.seed=", "partition"} {
		if !strings.Contains(rep, token) {
			t.Fatalf("report missing %q:\n%s", token, rep)
		}
	}
	t.Logf("wrong run length caught:\n%s", rep)
}
