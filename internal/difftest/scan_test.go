package difftest

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/oracle"
	"ivnt/internal/relation"
	"ivnt/internal/segstore"
)

// -difftest.scan narrows a replay to the segment-scan invariants: with
// -difftest.seed=<seed> it skips the main differential run, so the
// failing scan check reproduces alone (and verbosely).
var flagScan = flag.Bool("difftest.scan", false,
	"replay only the segment-scan invariants (pair with -difftest.seed to reproduce a scan failure)")

// scanRootOps returns the workload's plan with a Filter at the root —
// the shape predicate pushdown folds into the scan. Plans already
// rooted in a Filter are used as-is; otherwise a deterministic
// `col op literal` predicate is synthesized from the workload's own
// cell values (so it is selective, not vacuous) and prepended. A
// prepended Filter never changes the schema, so the rest of the plan
// runs unmodified.
func scanRootOps(w *Workload) []engine.OpDesc {
	if len(w.Ops) > 0 && w.Ops[0].Kind == engine.OpFilter {
		return w.Ops
	}
	rng := rand.New(rand.NewSource(w.Seed ^ 0x5ca9))

	// Candidate literals: actual values of int/float/string columns.
	type cand struct{ col, lit string }
	var cands []cand
	for ci, c := range w.Schema.Cols {
		switch c.Kind {
		case relation.KindInt, relation.KindFloat, relation.KindString:
		default:
			continue
		}
		for _, r := range w.Rows {
			v := r[ci]
			switch v.K {
			case relation.KindInt:
				cands = append(cands, cand{c.Name, strconv.FormatInt(v.I, 10)})
			case relation.KindFloat:
				if !math.IsNaN(v.F) && !math.IsInf(v.F, 0) {
					cands = append(cands, cand{c.Name, strconv.FormatFloat(v.F, 'g', -1, 64)})
				}
			case relation.KindString:
				cands = append(cands, cand{c.Name, strconv.Quote(v.S)})
			}
		}
	}
	pred := "c0 >= 0" // empty input: any filter will do
	if len(cands) > 0 {
		c := cands[rng.Intn(len(cands))]
		op := []string{"<", "<=", ">", ">=", "=="}[rng.Intn(5)]
		pred = fmt.Sprintf("%s %s %s", c.col, op, c.lit)
	}
	return append([]engine.OpDesc{engine.Filter(pred)}, w.Ops...)
}

// buildScanStore seals the workload's rows into a fresh segment store
// as nparts contiguous segments (fewer when rows run out) — the
// persistent counterpart of w.rel(nparts).
func buildScanStore(dir string, w *Workload, nparts int) (*segstore.Store, error) {
	st, err := segstore.Open(dir, w.Schema, segstore.Options{Compress: w.Seed%2 == 0})
	if err != nil {
		return nil, err
	}
	n := len(w.Rows)
	per := (n + nparts - 1) / nparts
	for at := 0; at < n; at += per {
		end := at + per
		if end > n {
			end = n
		}
		rows := make([]relation.Row, end-at)
		for i, r := range w.Rows[at:end] {
			rows[i] = r.Clone()
		}
		if err := st.AppendSegment(rows); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// checkScan runs the segment-scan invariant family for one workload:
// seal the input as P segments, then hold three subjects bitwise-equal
// on the identical per-segment partitioning —
//
//	oracle(full scan)  ==  local(full scan + engine filter)  ==  ScanStage (pushdown)
//
// for P ∈ {1, 2, 7}, plus one ScanStage over the real TCP cluster
// (segment-scheduled: executors read the segment files themselves).
// Pruned segments surface as empty partitions, so bitwise equality
// proves zone-map pruning only ever skips segments the stage's own
// Filter would have emptied anyway.
func (e *Env) checkScan(ctx context.Context, w *Workload, dir string) []string {
	var fails []string
	fail := func(invariant, detail string) {
		fails = append(fails, Report(w, invariant, detail))
	}
	ops := scanRootOps(w)
	clusterP := []int{1, 2, 7}[uint64(w.Seed)%3]

	for _, p := range []int{1, 2, 7} {
		st, err := buildScanStore(filepath.Join(dir, fmt.Sprintf("p%d", p)), w, p)
		if err != nil {
			fail(fmt.Sprintf("scan-store p=%d", p), err.Error())
			continue
		}
		full, err := st.Scan(ctx, engine.Pushdown{})
		if err != nil {
			fail(fmt.Sprintf("scan-full p=%d", p), err.Error())
			continue
		}
		ref, err := oracle.RunStage(full, ops)
		if err != nil {
			fail(fmt.Sprintf("scan-oracle p=%d", p), err.Error())
			continue
		}
		lres, _, err := e.Local.RunStage(ctx, full, ops)
		if err != nil {
			fail(fmt.Sprintf("scan-local p=%d", p), err.Error())
		} else if d := DiffExact(ref, lres); d != "" {
			fail(fmt.Sprintf("scan-local p=%d", p), d)
		}
		sres, _, err := engine.ScanStage(ctx, e.Local, st, ops)
		if err != nil {
			fail(fmt.Sprintf("scan-pushdown p=%d", p), err.Error())
		} else if d := DiffExact(ref, sres); d != "" {
			fail(fmt.Sprintf("scan-pushdown p=%d", p), d)
		}
		if p != clusterP {
			continue
		}
		cres, _, err := engine.ScanStage(ctx, e.driver(), st, ops)
		if err != nil {
			fail(fmt.Sprintf("scan-cluster p=%d", p), err.Error())
		} else if d := DiffExact(ref, cres); d != "" {
			fail(fmt.Sprintf("scan-cluster p=%d", p), d)
		}
	}
	return fails
}

// TestScanDifferential drives the segment-scan invariants over the
// seeded workload population (the `make difftest-scan` CI job). Replay
// one failure with -difftest.seed=<seed> -difftest.scan.
func TestScanDifferential(t *testing.T) {
	armBudget(t)
	ctx := context.Background()
	env, err := NewEnv(ctx)
	if err != nil {
		t.Fatalf("start cluster env: %v", err)
	}
	defer env.Close()

	var seeds []int64
	if *flagSeed != 0 {
		seeds = []int64{*flagSeed}
	} else {
		for i := int64(0); i < int64(*flagN); i++ {
			seeds = append(seeds, *flagBase+i)
		}
	}
	failures := 0
	for _, seed := range seeds {
		w := Generate(seed)
		if *flagScan {
			t.Logf("seed %d ops:\n%s", seed, FormatOps(scanRootOps(w)))
		}
		for _, rep := range env.checkScan(ctx, w, t.TempDir()) {
			t.Errorf("\n%s", rep)
			failures++
		}
		if failures >= 3 {
			t.Fatalf("stopping after %d mismatches", failures)
		}
	}
}

// TestScanDifferentialCatchesTightenedZone demonstrates detection
// power: zone maps corrupted to claim tighter bounds than the data
// (injected via segstore.DebugZoneMutate) make the scan falsely prune
// segments with matching rows, and the full-scan-vs-pushdown bitwise
// invariant must catch the missing rows with a replayable report.
// (Loosened bounds merely forfeit pruning — correct by the
// conservative contract — so tightening is the detectable direction.)
func TestScanDifferentialCatchesTightenedZone(t *testing.T) {
	segstore.DebugZoneMutate = func(_ string, z *segstore.ZoneMap) {
		if z.FHas {
			mid := (z.FMin + z.FMax) / 2
			z.FMin, z.FMax = mid, mid
		}
		if z.SHas {
			z.SMax = z.SMin
		}
	}
	defer func() { segstore.DebugZoneMutate = nil }()
	ctx := context.Background()
	local := engine.NewLocal(2)

	caught := false
	for seed := int64(1); seed <= 500 && !caught; seed++ {
		w := Generate(seed)
		if len(w.Rows) == 0 {
			continue
		}
		ops := scanRootOps(w)
		st, err := buildScanStore(t.TempDir(), w, 7)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full, err := st.Scan(ctx, engine.Pushdown{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, _, err := local.RunStage(ctx, full, ops)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, _, err := engine.ScanStage(ctx, local, st, ops)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := DiffExact(ref, got)
		if d == "" {
			continue
		}
		caught = true
		rep := Report(w, "injected-tight-zone", d)
		for _, token := range []string{"seed:", "-difftest.seed="} {
			if !strings.Contains(rep, token) {
				t.Fatalf("report missing %q:\n%s", token, rep)
			}
		}
		t.Logf("tightened zone map caught at seed %d:\n%s", seed, rep)
	}
	if !caught {
		t.Fatal("tightened zone maps never pruned a live segment across 500 seeded workloads")
	}
}
