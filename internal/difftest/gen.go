// Package difftest is the differential-correctness harness: a seeded
// workload generator (random schemas, random typed relations with
// nulls, random valid operator trees), a canonicalizing result differ,
// and a harness that executes every workload on the naive oracle
// (internal/oracle), the multi-core local executor and a real TCP
// cluster, then checks five metamorphic invariants on top. A mismatch
// anywhere prints the workload's seed and operator tree, so every
// failure replays with
//
//	go test ./internal/difftest/ -run Differential -difftest.seed=<seed>
//
// See docs/TESTING.md for the full tier description.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// Workload is one generated differential test case: a typed relation
// and a valid operator tree over it, plus the sensitivity flags the
// metamorphic invariants consult.
type Workload struct {
	Seed   int64
	Schema relation.Schema
	Rows   []relation.Row
	Ops    []engine.OpDesc

	// UsesWindow marks plans whose expressions read lag history —
	// results then legitimately depend on how rows are partitioned.
	UsesWindow bool
	// HasDedup marks plans containing OpDedupConsecutive, whose output
	// depends on which rows are adjacent.
	HasDedup bool
}

// DistributionFree reports whether the plan's output multiset is fully
// determined by the input multiset — the precondition for the
// partition-count and row-order invariances. SortWithin and PartialAgg
// stay distribution-free because the harness compares canonically and
// merges partials before comparing.
func (w *Workload) DistributionFree() bool { return !w.UsesWindow && !w.HasDedup }

// TerminalAgg returns the group-by parameters when the plan ends in a
// partial aggregation (the generator only ever places it last).
func (w *Workload) TerminalAgg() (groupBy []string, aggs []engine.AggSpec, ok bool) {
	if len(w.Ops) == 0 {
		return nil, nil, false
	}
	last := w.Ops[len(w.Ops)-1]
	if last.Kind != engine.OpPartialAgg {
		return nil, nil, false
	}
	return last.GroupBy, last.Aggs, true
}

// FormatOps renders an operator tree for failure reports.
func FormatOps(ops []engine.OpDesc) string {
	var b strings.Builder
	for i, op := range ops {
		fmt.Fprintf(&b, "  %2d %-16s", i, op.Kind)
		switch op.Kind {
		case engine.OpFilter, engine.OpAddColumn:
			if op.Col != "" {
				fmt.Fprintf(&b, "%s:%s = ", op.Col, op.ColKind)
			}
			b.WriteString(op.Expr)
		case engine.OpEvalRule:
			fmt.Fprintf(&b, "%s:%s = eval(%s)", op.Col, op.ColKind, op.RuleCol)
		case engine.OpProject, engine.OpDedupConsecutive, engine.OpSortWithin:
			b.WriteString(strings.Join(op.Cols, ", "))
		case engine.OpBroadcastJoin:
			j := op.Join
			fmt.Fprintf(&b, "on %v=%v table%s[%d rows]", j.LeftKeys, j.RightKeys, j.Schema, len(j.Rows))
		case engine.OpPartialAgg:
			fmt.Fprintf(&b, "by %v:", op.GroupBy)
			for _, a := range op.Aggs {
				fmt.Fprintf(&b, " %s=%s(%s)", a.As, a.Fn, a.Col)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// colMeta tracks generator knowledge about a column that outlives
// schema transforms: whether its cells are guaranteed numeric-or-null
// (safe to sum) and whether it is a low-cardinality original column
// (safe and useful as a join/group key).
type colMeta struct {
	numericSafe bool
	keyable     bool
}

// gen carries the generator state for one workload.
type gen struct {
	rng  *rand.Rand
	cur  relation.Schema
	meta map[string]colMeta
	// pools holds per-column low-cardinality value pools, shared
	// between row generation and broadcast-table generation so joins
	// actually match.
	pools map[string][]relation.Value

	allowWindow bool
	usedWindow  bool
	hasDedup    bool

	derived, rules, joins int // fresh-name counters
}

var wordPool = []string{"amber", "brake", "cruise", "door", "ecu", "flash", "gear", "horn"}

// Generate builds the workload for one seed. Identical seeds produce
// identical workloads on every platform (math/rand with a fixed
// source), which is what makes printed seeds reproducible.
func Generate(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	g := &gen{
		rng:         rng,
		meta:        map[string]colMeta{},
		pools:       map[string][]relation.Value{},
		allowWindow: rng.Float64() < 0.3,
	}
	w := &Workload{Seed: seed}
	w.Schema = g.genSchema()
	g.cur = w.Schema
	w.Rows = g.genRows(w.Schema)
	w.Ops = g.genOps(w.Schema)
	w.UsesWindow = g.usedWindow
	w.HasDedup = g.hasDedup

	// Every generated tree must be valid against the engine's schema
	// checker; anything else is a generator bug, not a test failure.
	if _, err := engine.OutputSchema(w.Schema, w.Ops); err != nil {
		panic(fmt.Sprintf("difftest: generated invalid plan (seed %d): %v\n%s", seed, err, FormatOps(w.Ops)))
	}
	return w
}

// genSchema picks 3..7 columns, guaranteeing at least one int, one
// float and one string column so every op kind has material to work on.
func (g *gen) genSchema() relation.Schema {
	kinds := []relation.Kind{relation.KindInt, relation.KindFloat, relation.KindString}
	extra := g.rng.Intn(5)
	all := []relation.Kind{relation.KindInt, relation.KindFloat, relation.KindString, relation.KindBool, relation.KindBytes}
	for i := 0; i < extra; i++ {
		kinds = append(kinds, all[g.rng.Intn(len(all))])
	}
	g.rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	cols := make([]relation.Column, len(kinds))
	for i, k := range kinds {
		name := fmt.Sprintf("c%d", i)
		cols[i] = relation.Column{Name: name, Kind: k}
		m := colMeta{numericSafe: k == relation.KindInt || k == relation.KindFloat}
		// Low-cardinality pools for non-float columns: join keys, group
		// keys and dedup runs all need repeated values to be
		// interesting. Pool strings are non-empty so a null key ("")
		// can never collide with a real one.
		lowCard := k != relation.KindFloat && k != relation.KindBytes && g.rng.Float64() < 0.6
		if lowCard {
			m.keyable = true
			g.pools[name] = g.genPool(k)
		}
		g.meta[name] = m
	}
	return relation.NewSchema(cols...)
}

func (g *gen) genPool(k relation.Kind) []relation.Value {
	n := 2 + g.rng.Intn(3)
	pool := make([]relation.Value, n)
	for i := range pool {
		switch k {
		case relation.KindInt:
			pool[i] = relation.Int(int64(g.rng.Intn(11) - 5))
		case relation.KindBool:
			pool[i] = relation.Bool(g.rng.Intn(2) == 0)
		default:
			pool[i] = relation.Str(wordPool[g.rng.Intn(len(wordPool))])
		}
	}
	return pool
}

// genRows fills the relation: mostly 20..260 rows, sometimes 0..2 rows
// (the empty and near-empty regressions), ~10% nulls, and a 25% chance
// per row of repeating its predecessor so DedupConsecutive has runs to
// collapse.
func (g *gen) genRows(s relation.Schema) []relation.Row {
	var n int
	if g.rng.Float64() < 0.1 {
		n = g.rng.Intn(3)
	} else {
		n = 20 + g.rng.Intn(241)
	}
	rows := make([]relation.Row, n)
	for i := range rows {
		if i > 0 && g.rng.Float64() < 0.25 {
			rows[i] = rows[i-1].Clone()
			continue
		}
		r := make(relation.Row, s.Len())
		for ci, c := range s.Cols {
			if g.rng.Float64() < 0.1 {
				r[ci] = relation.Null()
				continue
			}
			if pool := g.pools[c.Name]; pool != nil {
				r[ci] = pool[g.rng.Intn(len(pool))]
				continue
			}
			r[ci] = g.genValue(c.Kind)
		}
		rows[i] = r
	}
	return rows
}

// genValue draws a random cell. Floats are sixteenths of small
// integers, so they are exactly representable and partial sums stay
// well inside float64's exact-integer range — cross-partitioning sum
// differences then come only from association order, which the
// canonical comparator tolerates.
func (g *gen) genValue(k relation.Kind) relation.Value {
	switch k {
	case relation.KindInt:
		return relation.Int(int64(g.rng.Intn(2001) - 1000))
	case relation.KindFloat:
		return relation.Float(float64(g.rng.Intn(32001)-16000) / 16)
	case relation.KindString:
		w := wordPool[g.rng.Intn(len(wordPool))]
		return relation.Str(w[:g.rng.Intn(len(w)+1)])
	case relation.KindBool:
		return relation.Bool(g.rng.Intn(2) == 0)
	case relation.KindBytes:
		b := make([]byte, g.rng.Intn(9))
		for i := range b {
			b[i] = byte(g.rng.Intn(256))
		}
		return relation.Bytes(b)
	default:
		return relation.Null()
	}
}

// genOps builds 1..6 operators; OpPartialAgg, when drawn, terminates
// the tree (the engine treats partials as a stage's reduce boundary).
func (g *gen) genOps(in relation.Schema) []engine.OpDesc {
	nOps := 1 + g.rng.Intn(6)
	var ops []engine.OpDesc
	push := func(op engine.OpDesc) {
		ops = append(ops, op)
		next, err := engine.OutputSchema(in, ops)
		if err != nil {
			panic(fmt.Sprintf("difftest: op %s invalid: %v", op.Kind, err))
		}
		g.cur = next
	}
	for len(ops) < nOps {
		switch g.rng.Intn(10) {
		case 0, 1:
			push(engine.Filter(g.genExpr(tBool, 2, exprOpts{window: g.allowWindow})))
		case 2:
			if cols := g.projectCols(); cols != nil {
				push(engine.Project(cols...))
			}
		case 3, 4:
			name := fmt.Sprintf("d%d", g.derived)
			g.derived++
			push(g.genAddColumn(name))
		case 5:
			for _, op := range g.genEvalRule() {
				push(op)
			}
		case 6:
			if op, ok := g.genJoin(); ok {
				push(op)
			}
		case 7:
			push(engine.DedupConsecutive(g.someCols(1, 3)...))
			g.hasDedup = true
		case 8:
			push(engine.SortWithin(g.someCols(1, 2)...))
		case 9:
			if op, ok := g.genPartialAgg(); ok {
				push(op)
				return ops // partial aggregation is always terminal
			}
		}
	}
	return ops
}

// projectCols keeps a random non-empty subset of the current columns in
// a random order.
func (g *gen) projectCols() []string {
	names := g.cur.Names()
	g.rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	keep := 1 + g.rng.Intn(len(names))
	return names[:keep]
}

// someCols picks between min and max distinct current columns.
func (g *gen) someCols(min, max int) []string {
	names := g.cur.Names()
	g.rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	n := min + g.rng.Intn(max-min+1)
	if n > len(names) {
		n = len(names)
	}
	return names[:n]
}

func (g *gen) genAddColumn(name string) engine.OpDesc {
	roll := g.rng.Float64()
	switch {
	case roll < 0.6:
		src := g.genExpr(tNum, 2, exprOpts{window: g.allowWindow})
		g.meta[name] = colMeta{numericSafe: true}
		return engine.AddColumn(name, relation.KindFloat, src)
	case roll < 0.85:
		src := g.genExpr(tStr, 2, exprOpts{})
		g.meta[name] = colMeta{}
		return engine.AddColumn(name, relation.KindString, src)
	default:
		src := g.genExpr(tBool, 2, exprOpts{window: g.allowWindow})
		g.meta[name] = colMeta{}
		return engine.AddColumn(name, relation.KindBool, src)
	}
}

// genEvalRule emits an AddColumn holding per-row rule source text (an
// iff over 2..3 candidate rules, sometimes including the empty rule)
// followed by the EvalRule that executes it. Rules are numeric
// expressions without string literals (they must embed inside a quoted
// literal) and without window functions.
func (g *gen) genEvalRule() []engine.OpDesc {
	ruleCol := fmt.Sprintf("r%d", g.rules)
	outCol := fmt.Sprintf("re%d", g.rules)
	g.rules++
	ruleA := g.genExpr(tNum, 2, exprOpts{noStr: true})
	ruleB := g.genExpr(tNum, 1, exprOpts{noStr: true})
	if g.rng.Float64() < 0.3 {
		ruleB = "" // exercises the empty-rule → null path
	}
	cond := g.genExpr(tBool, 1, exprOpts{noStr: true})
	src := fmt.Sprintf("iff(%s, %q, %q)", cond, ruleA, ruleB)
	g.meta[ruleCol] = colMeta{}
	g.meta[outCol] = colMeta{numericSafe: true}
	return []engine.OpDesc{
		engine.AddColumn(ruleCol, relation.KindString, src),
		engine.EvalRule(outCol, relation.KindFloat, ruleCol),
	}
}

// genJoin builds a broadcast join on 1..2 keyable columns. Table key
// values come from the same pools as the stream, so matches, misses
// and fan-out (duplicate table keys) all occur; tables are sometimes
// empty.
func (g *gen) genJoin() (engine.OpDesc, bool) {
	var keys []string
	for _, name := range g.cur.Names() {
		if g.meta[name].keyable {
			keys = append(keys, name)
		}
	}
	if len(keys) == 0 {
		return engine.OpDesc{}, false
	}
	g.rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	nk := 1
	if len(keys) > 1 && g.rng.Float64() < 0.3 {
		nk = 2
	}
	keys = keys[:nk]

	cols := make([]relation.Column, 0, nk+2)
	rightKeys := make([]string, nk)
	for i, k := range keys {
		rightKeys[i] = fmt.Sprintf("jk%d_%d", g.joins, i)
		cols = append(cols, relation.Column{Name: rightKeys[i], Kind: g.cur.Cols[g.cur.Index(k)].Kind})
	}
	nv := 1 + g.rng.Intn(2)
	valKinds := []relation.Kind{relation.KindInt, relation.KindFloat, relation.KindString, relation.KindBool}
	valNames := make([]string, nv)
	for i := 0; i < nv; i++ {
		valNames[i] = fmt.Sprintf("jv%d_%d", g.joins, i)
		cols = append(cols, relation.Column{Name: valNames[i], Kind: valKinds[g.rng.Intn(len(valKinds))]})
	}
	g.joins++

	tschema := relation.NewSchema(cols...)
	nrows := g.rng.Intn(9) // sometimes zero: the empty-table join
	trows := make([]relation.Row, nrows)
	for ri := range trows {
		r := make(relation.Row, tschema.Len())
		for i, k := range keys {
			if g.rng.Float64() < 0.1 {
				r[i] = relation.Null()
			} else if pool := g.pools[k]; pool != nil {
				r[i] = pool[g.rng.Intn(len(pool))]
			} else {
				r[i] = g.genValue(tschema.Cols[i].Kind)
			}
		}
		for i := nk; i < tschema.Len(); i++ {
			if g.rng.Float64() < 0.15 {
				r[i] = relation.Null()
			} else {
				r[i] = g.genValue(tschema.Cols[i].Kind)
			}
		}
		trows[ri] = r
	}
	for i, vn := range valNames {
		k := tschema.Cols[nk+i].Kind
		g.meta[vn] = colMeta{numericSafe: k == relation.KindInt || k == relation.KindFloat}
	}
	table := relation.FromRows(tschema, trows)
	return engine.BroadcastJoin(table, keys, rightKeys), true
}

// genPartialAgg groups by 1..2 keyable columns with 1..3 aggregates.
// Sum and mean are restricted to numeric-safe columns (summing
// arbitrary strings would inject NaNs); min/max/count take any column.
func (g *gen) genPartialAgg() (engine.OpDesc, bool) {
	var keys, numeric []string
	for _, name := range g.cur.Names() {
		if g.meta[name].keyable {
			keys = append(keys, name)
		}
		if g.meta[name].numericSafe {
			numeric = append(numeric, name)
		}
	}
	if len(keys) == 0 {
		return engine.OpDesc{}, false
	}
	g.rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	nk := 1
	if len(keys) > 1 && g.rng.Float64() < 0.4 {
		nk = 2
	}
	groupBy := keys[:nk]

	all := g.cur.Names()
	nAggs := 1 + g.rng.Intn(3)
	aggs := make([]engine.AggSpec, 0, nAggs)
	for i := 0; i < nAggs; i++ {
		as := fmt.Sprintf("a%d", i)
		fns := []engine.AggFunc{engine.AggCount, engine.AggMin, engine.AggMax}
		if len(numeric) > 0 {
			fns = append(fns, engine.AggSum, engine.AggMean)
		}
		fn := fns[g.rng.Intn(len(fns))]
		col := ""
		switch fn {
		case engine.AggCount:
		case engine.AggSum, engine.AggMean:
			col = numeric[g.rng.Intn(len(numeric))]
		default:
			col = all[g.rng.Intn(len(all))]
		}
		aggs = append(aggs, engine.AggSpec{Fn: fn, Col: col, As: as})
	}
	return engine.PartialAgg(groupBy, aggs), true
}
