package difftest

import (
	"context"
	"flag"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/telemetry"
)

// -difftest.membudget puts the whole differential run under a memory
// budget: every seeded workload then executes with governed sorts and
// aggregations, and any budget small enough forces them all through the
// spill paths. make difftest-spill runs TestDifferential with a 4KiB
// budget under -race.
var flagMemBudget = flag.Int64("difftest.membudget", 0,
	"memory budget in bytes for the engine governor during the differential run (0 = unlimited); tiny values force every sort/aggregation to spill")

// armBudget applies -difftest.membudget (when set) for one test.
func armBudget(t *testing.T) {
	t.Helper()
	if *flagMemBudget <= 0 {
		return
	}
	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(*flagMemBudget)
	t.Cleanup(func() { g.SetBudget(old) })
	t.Logf("memory budget %d bytes (spill paths forced)", *flagMemBudget)
}

func spillTotal() int64 {
	return telemetry.Default().CounterValue("engine_spills_total")
}

// TestDifferentialSpill is the always-on spill acceptance run: seeded
// workloads execute under a 4KiB budget — low enough that every sort
// and aggregation takes the external path, on both engine paths — and
// the oracle/local/cluster outputs must stay bitwise identical to the
// ungoverned semantics the oracle defines. A counter delta proves the
// degraded paths actually ran rather than the budget being ignored.
func TestDifferentialSpill(t *testing.T) {
	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(4 << 10)
	defer g.SetBudget(old)

	prev := engine.Vectorize.Load()
	defer engine.Vectorize.Store(prev)

	ctx := context.Background()
	env, err := NewEnv(ctx)
	if err != nil {
		t.Fatalf("start cluster env: %v", err)
	}
	defer env.Close()

	before := spillTotal()
	failures := 0
	for _, vec := range []bool{false, true} {
		engine.Vectorize.Store(vec)
		for seed := int64(1); seed <= 8; seed++ {
			w := Generate(seed)
			for _, rep := range env.CheckWorkload(ctx, w) {
				t.Errorf("vectorize=%v:\n%s", vec, rep)
				failures++
			}
			if failures >= 3 {
				t.Fatalf("stopping after %d mismatches", failures)
			}
		}
	}
	if d := spillTotal() - before; d == 0 {
		t.Fatal("no spills recorded under a 4KiB budget: governed kernels were bypassed")
	}
}
