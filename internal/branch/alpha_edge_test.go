package branch

import (
	"strings"
	"testing"

	"ivnt/internal/classify"
	"ivnt/internal/relation"
)

// TestAlphaEdgeCases drives the α path (outlier split → smooth → SWAB →
// SAX) through its degenerate inputs as a table: a series that is
// constant once outliers are removed (the std==0 "(level,steady)"
// path), a series shorter than the SWAB working buffer, and a
// perfectly linear ramp that must symbolize as a single increasing
// segment.
func TestAlphaEdgeCases(t *testing.T) {
	// constant-after-outliers: 60 samples of 50.0 with three huge
	// spikes. Four distinct values keep the signal classified numeric/α
	// (more than two uniques), Hampel removes the spikes, and the
	// remainder z-normalizes to std==0.
	constWithSpikes := make([]relation.Value, 60)
	for i := range constWithSpikes {
		constWithSpikes[i] = relation.Float(50)
	}
	constWithSpikes[10] = relation.Float(800)
	constWithSpikes[30] = relation.Float(900)
	constWithSpikes[50] = relation.Float(1000)

	// short-series: 8 points, far below the default 50-point SWAB
	// buffer — everything is emitted by the final flush.
	short := make([]relation.Value, 8)
	for i := range short {
		short[i] = relation.Float(float64(i * i))
	}

	// linear ramp: a pure line (short enough for one SWAB flush) must
	// come out as one "(…,increasing)" segment — the single-segment
	// SAX output.
	ramp := make([]relation.Value, 40)
	for i := range ramp {
		ramp[i] = relation.Float(float64(i))
	}

	cases := []struct {
		name         string
		vals         []relation.Value
		wantOutliers int
		wantSegments int // <0: any count ≥ 1
		wantContains []string
		wantAbsent   []string
	}{
		{
			name:         "constant-after-outlier-split",
			vals:         constWithSpikes,
			wantOutliers: 3,
			wantSegments: 1,
			wantContains: []string{",steady)", "outlier v=800", "outlier v=900", "outlier v=1000"},
			wantAbsent:   []string{"increasing", "decreasing"},
		},
		{
			name:         "shorter-than-swab-buffer",
			vals:         short,
			wantOutliers: 0,
			wantSegments: -1,
		},
		{
			name:         "linear-ramp-single-segment",
			vals:         ramp,
			wantOutliers: 0,
			wantSegments: 1,
			wantContains: []string{",increasing)"},
			wantAbsent:   []string{"steady", "outlier"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Process("s", seqOf(0.05, tc.vals...), nil, cfg())
			if err != nil {
				t.Fatal(err)
			}
			if res.Branch != classify.Alpha {
				t.Fatalf("classified (%s, %s), want α", res.DataType, res.Branch)
			}
			if res.Outliers != tc.wantOutliers {
				t.Fatalf("outliers = %d, want %d", res.Outliers, tc.wantOutliers)
			}
			if tc.wantSegments >= 0 && res.Segments != tc.wantSegments {
				t.Fatalf("segments = %d, want %d", res.Segments, tc.wantSegments)
			}
			if tc.wantSegments < 0 && res.Segments < 1 {
				t.Fatalf("segments = %d, want ≥ 1", res.Segments)
			}
			if got := res.Rel.NumRows(); got != res.Segments+res.Outliers {
				t.Fatalf("output rows = %d, want segments+outliers = %d", got, res.Segments+res.Outliers)
			}
			var all []string
			vIdx := res.Rel.Schema.Index("v")
			for _, r := range res.Rel.Rows() {
				all = append(all, r[vIdx].AsString())
			}
			joined := strings.Join(all, "\n")
			for _, want := range tc.wantContains {
				if !strings.Contains(joined, want) {
					t.Errorf("output lacks %q:\n%s", want, joined)
				}
			}
			for _, nope := range tc.wantAbsent {
				if strings.Contains(joined, nope) {
					t.Errorf("output unexpectedly contains %q:\n%s", nope, joined)
				}
			}
		})
	}
}

// TestAlphaNaNValues feeds a sequence whose numeric cells are NaN mixed
// with normal values. NaN is not representable in trace data the
// pipeline generates, but a defensive guarantee matters: Process must
// not panic and must still produce a well-formed relation.
func TestAlphaNaNValues(t *testing.T) {
	nan := relation.Float(nan64())
	vals := []relation.Value{
		relation.Float(1), nan, relation.Float(3), nan, relation.Float(5),
		relation.Float(7), relation.Float(9), relation.Float(11),
	}
	res, err := Process("s", seqOf(0.05, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel == nil {
		t.Fatal("nil output relation")
	}
	for _, r := range res.Rel.Rows() {
		if len(r) != res.Rel.Schema.Len() {
			t.Fatalf("malformed row %v", r)
		}
	}
}

func nan64() float64 {
	var zero float64
	return zero / zero // avoids importing math just for NaN
}
