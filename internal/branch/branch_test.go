package branch

import (
	"strings"
	"testing"

	"ivnt/internal/classify"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
)

func cfg() *rules.DomainConfig {
	d := &rules.DomainConfig{Name: "test", SIDs: []string{"s"}}
	if err := d.Normalize(); err != nil {
		panic(err)
	}
	return d
}

func seqOf(dt float64, vals ...relation.Value) *relation.Relation {
	rel := relation.New(rules.SequenceSchema())
	for i, v := range vals {
		rel.Append(relation.Row{
			relation.Float(float64(i) * dt),
			relation.Str("s"),
			v,
			relation.Str("FC"),
		})
	}
	return rel
}

func TestAlphaRampSymbolization(t *testing.T) {
	// Fast numeric ramp up then down: α must produce few segments with
	// (level, trend) tuples and no outliers.
	vals := make([]relation.Value, 120)
	for i := range vals {
		x := float64(i)
		if i >= 60 {
			x = 120 - float64(i)
		}
		vals[i] = relation.Float(x)
	}
	res, err := Process("speed", seqOf(0.1, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != classify.Alpha || res.DataType != classify.Numeric {
		t.Fatalf("classified (%s, %s)", res.DataType, res.Branch)
	}
	if res.Segments == 0 || res.Segments > 20 {
		t.Fatalf("segments = %d", res.Segments)
	}
	if res.Outliers != 0 {
		t.Fatalf("outliers = %d", res.Outliers)
	}
	rows := res.Rel.Rows()
	if len(rows) != res.Segments {
		t.Fatalf("rows = %d, segments = %d", len(rows), res.Segments)
	}
	first := rows[0][2].AsString()
	if !strings.HasPrefix(first, "(") || !strings.Contains(first, ",") {
		t.Fatalf("symbolized value = %q", first)
	}
	// The ramp up must contain an increasing segment, the descent a
	// decreasing one.
	all := ""
	for _, r := range rows {
		all += r[2].AsString() + " "
	}
	if !strings.Contains(all, "increasing") || !strings.Contains(all, "decreasing") {
		t.Fatalf("trends missing in %q", all)
	}
}

func TestAlphaOutlierMergedBack(t *testing.T) {
	// Table 4's outlier row: a spike of 800 in an otherwise smooth
	// fast signal must surface as "outlier v=800" at its timestamp.
	vals := make([]relation.Value, 60)
	for i := range vals {
		vals[i] = relation.Float(100 + float64(i%5))
	}
	vals[30] = relation.Float(800)
	res, err := Process("speed", seqOf(0.1, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outliers != 1 {
		t.Fatalf("outliers = %d, want 1", res.Outliers)
	}
	found := false
	for _, r := range res.Rel.Rows() {
		if r[2].AsString() == "outlier v=800" {
			found = true
			if r[0].AsFloat() != 3.0 {
				t.Fatalf("outlier at t=%v, want 3.0", r[0])
			}
		}
	}
	if !found {
		t.Fatalf("outlier row missing: %v", res.Rel.Rows())
	}
}

func TestAlphaConstantSignal(t *testing.T) {
	// Constant fast numeric (many samples, but z_num must be > 2 for
	// α, so add tiny jitter values making it numeric-rich yet flat
	// after smoothing).
	vals := make([]relation.Value, 50)
	for i := range vals {
		vals[i] = relation.Float(10 + float64(i%7)/100)
	}
	res, err := Process("temp", seqOf(0.05, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != classify.Alpha {
		t.Fatalf("branch = %s", res.Branch)
	}
	if res.Rel.NumRows() == 0 {
		t.Fatal("no output rows")
	}
}

func TestBetaOrdinalWithScaleAndValidity(t *testing.T) {
	hint := &rules.Translation{
		SID:            "heat",
		Class:          rules.ClassOrdinal,
		OrdinalScale:   []string{"off", "low", "medium", "high"},
		ValidityValues: []string{"signal invalid"},
	}
	vals := []relation.Value{
		relation.Str("off"), relation.Str("low"), relation.Str("medium"),
		relation.Str("signal invalid"),
		relation.Str("high"), relation.Str("medium"),
	}
	res, err := Process("heat", seqOf(10, vals...), hint, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != classify.Beta || res.DataType != classify.Ordinal {
		t.Fatalf("classified (%s, %s)", res.DataType, res.Branch)
	}
	rows := res.Rel.Rows()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The validity instance passes through untransformed.
	if rows[3][2].AsString() != "signal invalid" {
		t.Fatalf("validity row = %q", rows[3][2])
	}
	// Functional rows carry (value, trend) with gradient-based trends.
	wantTrends := []string{"steady", "increasing", "increasing", "increasing", "decreasing"}
	fi := 0
	for i, r := range rows {
		if i == 3 {
			continue
		}
		v := r[2].AsString()
		if !strings.HasSuffix(v, ","+wantTrends[fi]+")") {
			t.Fatalf("row %d = %q, want trend %s", i, v, wantTrends[fi])
		}
		fi++
	}
}

func TestBetaNumericOrdinalOutlier(t *testing.T) {
	// Slow numeric gear-like signal with one absurd value.
	vals := []relation.Value{
		relation.Float(1), relation.Float(2), relation.Float(3),
		relation.Float(99), // outlier
		relation.Float(4), relation.Float(5), relation.Float(4), relation.Float(3),
	}
	res, err := Process("gear", seqOf(30, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != classify.Beta {
		t.Fatalf("branch = %s", res.Branch)
	}
	if res.Outliers != 1 {
		t.Fatalf("outliers = %d", res.Outliers)
	}
	joined := ""
	for _, r := range res.Rel.Rows() {
		joined += r[2].AsString() + "|"
	}
	if !strings.Contains(joined, "outlier v=99") {
		t.Fatalf("outlier missing: %s", joined)
	}
}

func TestGammaBinaryPassThrough(t *testing.T) {
	vals := []relation.Value{
		relation.Str("ON"), relation.Str("OFF"), relation.Str("ON"),
	}
	res, err := Process("belt", seqOf(1, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != classify.Gamma || res.DataType != classify.Binary {
		t.Fatalf("classified (%s, %s)", res.DataType, res.Branch)
	}
	rows := res.Rel.Rows()
	if len(rows) != 3 || rows[0][2].AsString() != "ON" || rows[1][2].AsString() != "OFF" {
		t.Fatalf("gamma rows = %v", rows)
	}
}

func TestGammaNominalPassThrough(t *testing.T) {
	vals := []relation.Value{
		relation.Str("driving"), relation.Str("parking"), relation.Str("charging"),
		relation.Str("idle"),
	}
	res, err := Process("state", seqOf(1, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != classify.Gamma || res.DataType != classify.Nominal {
		t.Fatalf("classified (%s, %s)", res.DataType, res.Branch)
	}
	if res.Rel.NumRows() != 4 {
		t.Fatalf("rows = %d", res.Rel.NumRows())
	}
}

func TestProcessEmptySequence(t *testing.T) {
	res, err := Process("empty", seqOf(1), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.NumRows() != 0 {
		t.Fatalf("rows = %d", res.Rel.NumRows())
	}
}

func TestProcessBadSchema(t *testing.T) {
	bad := relation.New(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if _, err := Process("s", bad, nil, cfg()); err == nil {
		t.Fatal("bad schema must fail")
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	vals := make([]relation.Value, 60)
	for i := range vals {
		vals[i] = relation.Float(float64(i % 13))
	}
	vals[30] = relation.Float(10000)
	res, err := Process("speed", seqOf(0.1, vals...), nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, frag := range []string{"speed", "alpha", "outliers=", "segments="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary %q missing %q", s, frag)
		}
	}
}

func TestOrdinalValueFallbacks(t *testing.T) {
	scale := map[string]int{"low": 0, "high": 1}
	if ordinalValue(relation.Str("low"), scale) != 0 || ordinalValue(relation.Str("high"), scale) != 1 {
		t.Fatal("scale lookup broken")
	}
	if ordinalValue(relation.Str("unknown"), scale) != -1 {
		t.Fatal("undocumented symbol must rank -1")
	}
	if ordinalValue(relation.Float(3.5), nil) != 3.5 {
		t.Fatal("numeric passthrough broken")
	}
}
