// Package branch implements the type-dependent processing of Sec. 4.2
// (Algorithm 1 lines 13–28): each reduced signal sequence is classified
// and routed to branch α (numeric: outlier split, smoothing, SWAB
// segmentation, SAX symbolization), branch β (ordinal: F/V affiliation
// split, numeric translation, gradient trend) or branch γ (nominal and
// binary: pass-through), producing the homogeneous symbolic sequences
// merged into the state representation (Sec. 4.3).
package branch

import (
	"fmt"
	"sort"
	"strings"

	"ivnt/internal/classify"
	"ivnt/internal/dsp/outlier"
	"ivnt/internal/dsp/sax"
	"ivnt/internal/dsp/smooth"
	"ivnt/internal/dsp/swab"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

// trendSlopeThreshold classifies SWAB segment slopes, in z-normalized
// units per second.
const trendSlopeThreshold = 0.1

// Result is one signal's homogenized output.
type Result struct {
	SID      string
	Criteria classify.Criteria
	DataType classify.DataType
	Branch   classify.Branch
	// Rel holds the symbolized sequence in K_s shape with string
	// values — "(high, increasing)", "ON", "outlier v=800" — ready for
	// the state representation.
	Rel *relation.Relation
	// Outliers counts values split off as potential errors.
	Outliers int
	// Segments counts SWAB segments (branch α only).
	Segments int
}

// Process classifies and homogenizes one reduced per-signal sequence
// (time-ordered). The hint may be nil; cfg supplies the rate threshold
// and α parameters.
func Process(sid string, seq *relation.Relation, hint *rules.Translation, cfg *rules.DomainConfig) (*Result, error) {
	z, err := classify.Compute(seq, hint, cfg.RateThreshold)
	if err != nil {
		return nil, fmt.Errorf("branch: %s: %w", sid, err)
	}
	dt, br := classify.Classify(z)
	res := &Result{SID: sid, Criteria: z, DataType: dt, Branch: br}

	pts, err := collect(seq)
	if err != nil {
		return nil, fmt.Errorf("branch: %s: %w", sid, err)
	}
	switch br {
	case classify.Alpha:
		err = processAlpha(res, pts, cfg.Alpha)
	case classify.Beta:
		err = processBeta(res, pts, hint, cfg.Alpha)
	default:
		processGamma(res, pts)
	}
	if err != nil {
		return nil, fmt.Errorf("branch: %s: %w", sid, err)
	}
	return res, nil
}

// point is one sequence element with its source row context.
type point struct {
	t   float64
	v   relation.Value
	bid string
}

func collect(seq *relation.Relation) ([]point, error) {
	tIdx := seq.Schema.Index(trace.ColT)
	vIdx := seq.Schema.Index(trace.ColV)
	bIdx := seq.Schema.Index(trace.ColBID)
	if tIdx < 0 || vIdx < 0 || bIdx < 0 {
		return nil, fmt.Errorf("sequence lacks t/v/bid columns (%s)", seq.Schema)
	}
	pts := make([]point, 0, seq.NumRows())
	for _, p := range seq.Partitions {
		for _, r := range p {
			if r[vIdx].IsNull() {
				continue
			}
			pts = append(pts, point{t: r[tIdx].AsFloat(), v: r[vIdx], bid: r[bIdx].AsString()})
		}
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	return pts, nil
}

func emit(res *Result, sid string, rows []outRow) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	rel := relation.New(rules.SequenceSchema())
	for _, r := range rows {
		rel.Append(relation.Row{
			relation.Float(r.t),
			relation.Str(sid),
			relation.Str(r.v),
			relation.Str(r.bid),
		})
	}
	res.Rel = rel
}

type outRow struct {
	t   float64
	v   string
	bid string
}

func outlierText(v relation.Value) string {
	return "outlier v=" + v.AsString()
}

// processAlpha implements lines 14–19: split off outliers as potential
// errors, smooth, segment with SWAB, symbolize each segment with SAX
// (level + trend), then merge the outliers back.
func processAlpha(res *Result, pts []point, p rules.AlphaParams) error {
	var numeric, nominal []point
	for _, pt := range pts {
		// typeSplit (line 15): stray non-numeric instances pass
		// through as nominal.
		if pt.v.IsNumeric() {
			numeric = append(numeric, pt)
		} else {
			nominal = append(nominal, pt)
		}
	}
	xs := make([]float64, len(numeric))
	ts := make([]float64, len(numeric))
	for i, pt := range numeric {
		xs[i] = pt.v.AsFloat()
		ts[i] = pt.t
	}
	mask := outlier.Hampel(xs, p.OutlierWindow, p.OutlierK)
	keptIdx, outIdx := outlier.Partition(mask)
	res.Outliers = len(outIdx)

	var rows []outRow
	for _, i := range outIdx {
		rows = append(rows, outRow{t: numeric[i].t, v: outlierText(numeric[i].v), bid: numeric[i].bid})
	}
	for _, pt := range nominal {
		rows = append(rows, outRow{t: pt.t, v: pt.v.AsString(), bid: pt.bid})
	}

	if len(keptIdx) > 0 {
		cleanX := make([]float64, len(keptIdx))
		cleanT := make([]float64, len(keptIdx))
		cleanB := make([]string, len(keptIdx))
		for j, i := range keptIdx {
			cleanX[j] = xs[i]
			cleanT[j] = ts[i]
			cleanB[j] = numeric[i].bid
		}
		smoothed := smooth.MovingAverage(cleanX, p.SmoothWindow)
		norm, _, std := sax.ZNormalize(smoothed)
		if std == 0 {
			// Constant after cleaning: one steady segment.
			sym, err := sax.Symbol(0, p.SAXAlphabet)
			if err != nil {
				return err
			}
			rows = append(rows, outRow{
				t:   cleanT[0],
				v:   fmt.Sprintf("(%s,steady)", sax.LevelName(sym, p.SAXAlphabet)),
				bid: cleanB[0],
			})
			res.Segments = 1
		} else {
			segs := swab.Segmentize(cleanT, norm, swab.Options{BufferSize: p.SWABBuffer, MaxError: p.SWABMaxError})
			res.Segments = len(segs)
			for _, s := range segs {
				sym, err := sax.Symbol(s.Mean(cleanT, norm), p.SAXAlphabet)
				if err != nil {
					return err
				}
				rows = append(rows, outRow{
					t: cleanT[s.Start],
					v: fmt.Sprintf("(%s,%s)", sax.LevelName(sym, p.SAXAlphabet),
						swab.Trend(s.Slope, trendSlopeThreshold)),
					bid: cleanB[s.Start],
				})
			}
		}
	}
	emit(res, res.SID, rows)
	return nil
}

// processBeta implements lines 20–25: split by affiliation z_aff into a
// validity part K_V (pass-through) and a functional part K_F, translate
// K_F to numeric equivalents, split off outliers, attach the gradient
// trend, merge.
func processBeta(res *Result, pts []point, hint *rules.Translation, p rules.AlphaParams) error {
	validity := map[string]bool{}
	if hint != nil {
		for _, v := range hint.ValidityValues {
			validity[v] = true
		}
	}
	var functional, validityPts []point
	for _, pt := range pts {
		if validity[pt.v.AsString()] {
			validityPts = append(validityPts, pt)
		} else {
			functional = append(functional, pt)
		}
	}

	scale := ordinalScale(functional, hint)
	xs := make([]float64, len(functional))
	for i, pt := range functional {
		xs[i] = ordinalValue(pt.v, scale)
	}
	mask := outlier.Hampel(xs, p.OutlierWindow, p.OutlierK)
	keptIdx, outIdx := outlier.Partition(mask)
	res.Outliers = len(outIdx)

	var rows []outRow
	for _, pt := range validityPts {
		rows = append(rows, outRow{t: pt.t, v: pt.v.AsString(), bid: pt.bid})
	}
	for _, i := range outIdx {
		rows = append(rows, outRow{t: functional[i].t, v: outlierText(functional[i].v), bid: functional[i].bid})
	}
	// addGradient (line 23): trend from the numeric equivalent's
	// difference to the previous kept element.
	prev := 0.0
	for j, i := range keptIdx {
		trend := "steady"
		if j > 0 {
			switch {
			case xs[i] > prev:
				trend = "increasing"
			case xs[i] < prev:
				trend = "decreasing"
			}
		}
		prev = xs[i]
		rows = append(rows, outRow{
			t:   functional[i].t,
			v:   fmt.Sprintf("(%s,%s)", functional[i].v.AsString(), trend),
			bid: functional[i].bid,
		})
	}
	emit(res, res.SID, rows)
	return nil
}

// ordinalScale resolves symbol→rank: the documented OrdinalScale when
// available, else the sorted distinct values (deterministic fallback).
func ordinalScale(pts []point, hint *rules.Translation) map[string]int {
	scale := map[string]int{}
	if hint != nil && len(hint.OrdinalScale) > 0 {
		for i, s := range hint.OrdinalScale {
			scale[s] = i
		}
		return scale
	}
	set := map[string]bool{}
	numeric := true
	for _, pt := range pts {
		set[pt.v.AsString()] = true
		if !pt.v.IsNumeric() {
			numeric = false
		}
	}
	if numeric {
		// Numeric ordinals use their own value; no table needed.
		return nil
	}
	vals := make([]string, 0, len(set))
	for s := range set {
		vals = append(vals, s)
	}
	sort.Strings(vals)
	for i, s := range vals {
		scale[s] = i
	}
	return scale
}

func ordinalValue(v relation.Value, scale map[string]int) float64 {
	if v.IsNumeric() {
		return v.AsFloat()
	}
	if scale != nil {
		if r, ok := scale[v.AsString()]; ok {
			return float64(r)
		}
	}
	return -1 // undocumented symbol ranks below the scale
}

// processGamma implements lines 26–28: nominal and binary values need
// no transformation; instances pass through with values rendered as
// strings.
func processGamma(res *Result, pts []point) {
	rows := make([]outRow, len(pts))
	for i, pt := range pts {
		rows[i] = outRow{t: pt.t, v: pt.v.AsString(), bid: pt.bid}
	}
	emit(res, res.SID, rows)
}

// Summary renders a one-line report of the result for logs and the
// inspect tool.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Z=%s type=%s branch=%s rows=%d", r.SID, r.Criteria, r.DataType, r.Branch, r.Rel.NumRows())
	if r.Outliers > 0 {
		fmt.Fprintf(&b, " outliers=%d", r.Outliers)
	}
	if r.Segments > 0 {
		fmt.Fprintf(&b, " segments=%d", r.Segments)
	}
	return b.String()
}
