package memgov

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTryGrantWithinBudget(t *testing.T) {
	g := New(100)
	gr := g.TryGrant(60)
	if gr == nil {
		t.Fatal("60 of 100 denied")
	}
	if g.Used() != 60 {
		t.Fatalf("used = %d, want 60", g.Used())
	}
	if g.TryGrant(50) != nil {
		t.Fatal("60+50 of 100 granted")
	}
	if g.Denials() != 1 {
		t.Fatalf("denials = %d, want 1", g.Denials())
	}
	// Boundary: grant == remaining need must succeed (used+n > budget
	// is the denial condition, not >=).
	if g.TryGrant(40) == nil {
		t.Fatal("exact fit denied")
	}
	if g.Used() != 100 {
		t.Fatalf("used = %d, want 100", g.Used())
	}
	gr.Release()
	if g.Used() != 40 {
		t.Fatalf("used after release = %d, want 40", g.Used())
	}
}

func TestReleaseIdempotentAndNilSafe(t *testing.T) {
	g := New(10)
	gr := g.TryGrant(5)
	gr.Release()
	gr.Release()
	if g.Used() != 0 {
		t.Fatalf("double release changed usage: %d", g.Used())
	}
	var nilGrant *Grant
	nilGrant.Release() // must not panic
}

func TestUnlimitedGovernor(t *testing.T) {
	g := New(0)
	if !g.Unlimited() {
		t.Fatal("zero budget should be unlimited")
	}
	if g.TryGrant(1 << 40) == nil {
		t.Fatal("unlimited governor denied")
	}
	if g.Pressure() != 0 {
		t.Fatalf("unlimited pressure = %v", g.Pressure())
	}
}

func TestForceGrantOvershoots(t *testing.T) {
	g := New(100)
	gr := g.ForceGrant(250)
	if gr == nil || g.Used() != 250 {
		t.Fatalf("force grant: used = %d, want 250", g.Used())
	}
	if p := g.Pressure(); p < 2.4 || p > 2.6 {
		t.Fatalf("pressure = %v, want 2.5", p)
	}
	if g.HighWater() != 250 {
		t.Fatalf("highwater = %d, want 250", g.HighWater())
	}
	gr.Release()
	if g.Used() != 0 {
		t.Fatalf("used after release = %d", g.Used())
	}
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	g := New(100)
	first := g.TryGrant(80)
	done := make(chan *Grant, 1)
	go func() {
		gr, err := g.Acquire(context.Background(), 50)
		if err != nil {
			t.Errorf("acquire: %v", err)
		}
		done <- gr
	}()
	select {
	case <-done:
		t.Fatal("acquire returned while budget was full")
	case <-time.After(20 * time.Millisecond):
	}
	first.Release()
	select {
	case gr := <-done:
		gr.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("acquire never woke after release")
	}
}

func TestAcquireRespectsContext(t *testing.T) {
	g := New(100)
	hold := g.TryGrant(100)
	defer hold.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx, 50); err == nil {
		t.Fatal("acquire succeeded with exhausted budget")
	}
}

func TestAcquireImpossibleRequest(t *testing.T) {
	g := New(100)
	if _, err := g.Acquire(context.Background(), 200); err == nil {
		t.Fatal("acquire of 2x budget must fail fast, not block forever")
	}
}

func TestConcurrentGrantsNeverExceedBudget(t *testing.T) {
	g := New(1000)
	var wg sync.WaitGroup
	var maxSeen atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				gr := g.TryGrant(100)
				if gr == nil {
					continue
				}
				u := g.Used()
				for {
					m := maxSeen.Load()
					if u <= m || maxSeen.CompareAndSwap(m, u) {
						break
					}
				}
				gr.Release()
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > 1000 {
		t.Fatalf("TryGrant admitted past the budget: peak %d", maxSeen.Load())
	}
	if g.Used() != 0 {
		t.Fatalf("leaked reservations: %d", g.Used())
	}
	if g.HighWater() > 1000 {
		t.Fatalf("highwater %d exceeds budget", g.HighWater())
	}
}

func TestPressureCallbacks(t *testing.T) {
	g := New(100)
	var transitions []bool
	var mu sync.Mutex
	g.OnPressure(0.8, func(p bool) {
		mu.Lock()
		transitions = append(transitions, p)
		mu.Unlock()
	})
	a := g.TryGrant(50) // 0.5: below
	b := g.TryGrant(40) // 0.9: crosses up
	b.Release()         // 0.5: crosses down
	a.Release()
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) != 2 || transitions[0] != true || transitions[1] != false {
		t.Fatalf("transitions = %v, want [true false]", transitions)
	}
}

func TestSetBudgetWakesWaiters(t *testing.T) {
	g := New(50)
	hold := g.TryGrant(50)
	defer hold.Release()
	done := make(chan struct{})
	go func() {
		gr, err := g.Acquire(context.Background(), 40)
		if err == nil {
			gr.Release()
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	g.SetBudget(200)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("raising the budget did not wake the waiter")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"1024":   1024,
		"4k":     4096,
		"4KiB":   4096,
		"1KB":    1000,
		"512MiB": 512 << 20,
		"2g":     2 << 30,
		"1.5M":   3 << 19, // 1.5 * 1MiB
		"64mb":   64e6,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "12QB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) succeeded", bad)
		}
	}
}

func TestVerifyMetrics(t *testing.T) {
	if err := VerifyMetrics(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultGovernorObserves(t *testing.T) {
	d := Default()
	old := d.Budget()
	defer d.SetBudget(old)
	d.SetBudget(1 << 20)
	gr := d.TryGrant(1 << 10)
	if gr == nil {
		t.Fatal("grant denied")
	}
	gr.Release()
	if d.Grants() == 0 {
		t.Fatal("default governor did not count grants")
	}
}
