// Package memgov is the process-wide memory governor: a reservation
// accountant that operators ask before building large in-memory state
// (sort copies, aggregation hash tables, decoded partitions). It does
// not measure the Go heap — it tracks declared working-set bytes, the
// way Spark's execution-memory pool tracks task reservations — so a
// denial is a *policy* signal ("stay within budget, spill to disk"),
// not an allocator failure.
//
// The paper's pipeline survives 1.5 TB/day on Spark because operators
// degrade to external algorithms when their working set exceeds the
// executor's memory fraction; memgov is the accounting half of that
// contract for our engine. The spill half lives in internal/engine
// (external sort and grace hash aggregation), which consults
// Default() on every governed operator.
//
// A Governor is safe for concurrent use. The zero budget means
// "unlimited": every grant succeeds and nothing is tracked, so
// ungoverned processes pay no estimation cost.
package memgov

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ivnt/internal/telemetry"
)

// Metric families for the default governor, pre-registered so
// /metrics exposes the reservation state before any work runs (the
// vet-metrics gate checks their presence; see VerifyMetrics).
var (
	mBudget = telemetry.Default().Gauge("memgov_budget_bytes",
		"Configured memory budget of the default governor (0 = unlimited).")
	mUsed = telemetry.Default().Gauge("memgov_used_bytes",
		"Bytes currently reserved from the default governor.")
	mHighWater = telemetry.Default().Gauge("memgov_highwater_bytes",
		"Largest reservation total the default governor has seen.")
	mGrants = telemetry.Default().Counter("memgov_grants_total",
		"Reservations granted by the default governor.")
	mDenials = telemetry.Default().Counter("memgov_denials_total",
		"Reservations denied by the default governor (operators spill on denial).")
	mWaits = telemetry.Default().Counter("memgov_waits_total",
		"Blocking Acquire calls that had to wait for released memory.")
)

// pressureSub is one registered pressure callback with its own
// hysteresis state, so transitions fire exactly once per crossing.
type pressureSub struct {
	threshold float64
	fn        func(pressured bool)
	state     bool
}

// Governor is a reservation-based memory accountant: an atomic budget,
// atomic usage, a high-water mark, and waiter wake-ups for the
// blocking acquire path.
type Governor struct {
	budget atomic.Int64 // bytes; 0 or negative = unlimited
	used   atomic.Int64
	high   atomic.Int64

	grants  atomic.Int64
	denials atomic.Int64
	waits   atomic.Int64

	// observe mirrors this governor's state into the memgov_* metric
	// families; only the process default does, so private governors in
	// tests do not pollute /metrics.
	observe bool

	mu      sync.Mutex
	waiters map[chan struct{}]struct{}
	subs    []*pressureSub
}

// New returns a governor with the given budget in bytes (<= 0 means
// unlimited).
func New(budget int64) *Governor {
	g := &Governor{waiters: map[chan struct{}]struct{}{}}
	g.budget.Store(budget)
	return g
}

// def is the process-wide governor every governed operator consults.
// It starts unlimited; cmd flags (-mem-budget) and tests set a budget.
var def = func() *Governor {
	g := New(0)
	g.observe = true
	return g
}()

// Default returns the process-wide governor.
func Default() *Governor { return def }

// SetBudget replaces the budget (<= 0 means unlimited). Raising the
// budget wakes blocked acquirers. Lowering it never evicts existing
// reservations; usage drains as grants release.
func (g *Governor) SetBudget(budget int64) {
	g.budget.Store(budget)
	if g.observe {
		mBudget.Set(float64(budget))
	}
	g.wake()
	g.checkPressure()
}

// Budget returns the configured budget (0 = unlimited).
func (g *Governor) Budget() int64 {
	b := g.budget.Load()
	if b < 0 {
		return 0
	}
	return b
}

// Unlimited reports whether no budget is configured.
func (g *Governor) Unlimited() bool { return g.budget.Load() <= 0 }

// Used returns the bytes currently reserved.
func (g *Governor) Used() int64 { return g.used.Load() }

// HighWater returns the largest reservation total ever observed.
func (g *Governor) HighWater() int64 { return g.high.Load() }

// Grants returns how many reservations have been granted.
func (g *Governor) Grants() int64 { return g.grants.Load() }

// Denials returns how many TryGrant calls were denied.
func (g *Governor) Denials() int64 { return g.denials.Load() }

// Pressure returns used/budget, or 0 when unlimited. Values above 1
// are possible: ForceGrant admits unconditionally and reports the
// overshoot here instead of hiding it.
func (g *Governor) Pressure() float64 {
	b := g.budget.Load()
	if b <= 0 {
		return 0
	}
	return float64(g.used.Load()) / float64(b)
}

// ResetHighWater clears the high-water mark down to current usage
// (tests isolate per-phase peaks with it).
func (g *Governor) ResetHighWater() { g.high.Store(g.used.Load()) }

// Grant is one live reservation. Release is idempotent and nil-safe,
// so call sites can unconditionally defer it.
type Grant struct {
	g        *Governor
	n        int64
	released atomic.Bool
}

// Bytes returns the reserved size.
func (gr *Grant) Bytes() int64 {
	if gr == nil {
		return 0
	}
	return gr.n
}

// Release returns the reservation to the governor.
func (gr *Grant) Release() {
	if gr == nil || gr.g == nil || gr.released.Swap(true) {
		return
	}
	gr.g.release(gr.n)
}

// TryGrant reserves n bytes if they fit in the budget, returning nil
// on denial. n <= 0 and unlimited governors always succeed.
func (g *Governor) TryGrant(n int64) *Grant {
	if n <= 0 {
		return &Grant{g: g}
	}
	for {
		b := g.budget.Load()
		u := g.used.Load()
		if b > 0 && u+n > b {
			g.denials.Add(1)
			if g.observe {
				mDenials.Inc()
			}
			return nil
		}
		if g.used.CompareAndSwap(u, u+n) {
			g.granted(n, u+n)
			return &Grant{g: g, n: n}
		}
	}
}

// ForceGrant reserves n bytes unconditionally, even past the budget.
// Operators use it for the bounded minimum working set they cannot do
// without (a spill run buffer, one decoded merge block): forward
// progress beats a deadlock, and the overshoot is visible as
// Pressure() > 1 rather than hidden.
func (g *Governor) ForceGrant(n int64) *Grant {
	if n <= 0 {
		return &Grant{g: g}
	}
	u := g.used.Add(n)
	g.granted(n, u)
	return &Grant{g: g, n: n}
}

// Acquire blocks until n bytes fit in the budget or ctx is cancelled.
// It is the coordination primitive for callers that must not proceed
// degraded (e.g. admission of whole tasks); spilling operators use
// TryGrant instead.
func (g *Governor) Acquire(ctx context.Context, n int64) (*Grant, error) {
	if gr := g.TryGrant(n); gr != nil {
		return gr, nil
	}
	if b := g.Budget(); b > 0 && n > b {
		return nil, fmt.Errorf("memgov: acquire of %d bytes can never fit budget %d", n, b)
	}
	g.waits.Add(1)
	if g.observe {
		mWaits.Inc()
	}
	ch := make(chan struct{}, 1)
	g.mu.Lock()
	g.waiters[ch] = struct{}{}
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.waiters, ch)
		g.mu.Unlock()
	}()
	for {
		if gr := g.TryGrant(n); gr != nil {
			return gr, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

func (g *Governor) granted(n, newUsed int64) {
	g.grants.Add(1)
	for {
		h := g.high.Load()
		if newUsed <= h || g.high.CompareAndSwap(h, newUsed) {
			break
		}
	}
	if g.observe {
		mGrants.Inc()
		mUsed.Set(float64(newUsed))
		mHighWater.Set(float64(g.high.Load()))
	}
	g.checkPressure()
}

func (g *Governor) release(n int64) {
	u := g.used.Add(-n)
	if g.observe {
		mUsed.Set(float64(u))
	}
	g.wake()
	g.checkPressure()
}

// wake signals every blocked Acquire to re-check the budget.
func (g *Governor) wake() {
	g.mu.Lock()
	for ch := range g.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	g.mu.Unlock()
}

// OnPressure registers fn to be called with true when used/budget
// crosses above threshold and with false when it falls back below.
// Callbacks run synchronously on the goroutine that crossed the
// threshold; keep them cheap (set a flag, log a line).
func (g *Governor) OnPressure(threshold float64, fn func(pressured bool)) {
	g.mu.Lock()
	g.subs = append(g.subs, &pressureSub{threshold: threshold, fn: fn})
	g.mu.Unlock()
	g.checkPressure()
}

func (g *Governor) checkPressure() {
	g.mu.Lock()
	if len(g.subs) == 0 {
		g.mu.Unlock()
		return
	}
	p := g.Pressure()
	var fire []func()
	for _, s := range g.subs {
		next := p >= s.threshold && s.threshold > 0
		if next != s.state {
			s.state = next
			fn, v := s.fn, next
			fire = append(fire, func() { fn(v) })
		}
	}
	g.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// ParseBytes parses a human byte size: a plain integer is bytes;
// suffixes KB/MB/GB/TB are decimal, KiB/MiB/GiB/TiB (or bare K/M/G/T)
// are binary. "0" means unlimited. Flag parsing (-mem-budget) uses it.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("memgov: empty size")
	}
	upper := strings.ToUpper(t)
	mult := int64(1)
	for _, suf := range []struct {
		tag string
		n   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.tag) {
			mult = suf.n
			upper = strings.TrimSuffix(upper, suf.tag)
			break
		}
	}
	num := strings.TrimSpace(upper)
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("memgov: bad size %q", s)
	}
	if f < 0 {
		return 0, fmt.Errorf("memgov: negative size %q", s)
	}
	return int64(f * float64(mult)), nil
}

// VerifyMetrics checks that every memgov metric family is registered
// on the process-wide telemetry registry with the expected type. It is
// part of the `make vet-metrics` catalogue gate.
func VerifyMetrics() error {
	want := map[string]string{
		"memgov_budget_bytes":    telemetry.TypeGauge,
		"memgov_used_bytes":      telemetry.TypeGauge,
		"memgov_highwater_bytes": telemetry.TypeGauge,
		"memgov_grants_total":    telemetry.TypeCounter,
		"memgov_denials_total":   telemetry.TypeCounter,
		"memgov_waits_total":     telemetry.TypeCounter,
	}
	for _, fam := range telemetry.Default().Snapshot() {
		if typ, ok := want[fam.Name]; ok {
			if fam.Type != typ {
				return fmt.Errorf("memgov: family %q registered as %s, want %s", fam.Name, fam.Type, typ)
			}
			delete(want, fam.Name)
		}
	}
	for name := range want {
		return fmt.Errorf("memgov: metric family %q not registered", name)
	}
	return nil
}
