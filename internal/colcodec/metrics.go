// Codec observability: the colcodec_* counter catalogue, pre-registered
// at init so every /metrics scrape carries the full family set, gated
// by cmd/vetmetrics like the engine and segstore catalogues.
package colcodec

import (
	"fmt"

	"ivnt/internal/telemetry"
)

// mEncodings counts per-column encoding decisions made by the
// selection path (Options.Encodings), labelled by the winner.
var mEncodings = telemetry.Default().CounterVec(
	"colcodec_encoding_total",
	"Columns written by the encoding-selection path, by chosen encoding.",
	"kind",
)

func init() {
	// Pre-register every kind so scrapes and vet-metrics see the full
	// label set before the first encode.
	mEncodings.With("raw")
	mEncodings.With("dict")
	mEncodings.With("rle")
}

// metricNames lists the families this package must register.
var metricNames = []string{
	"colcodec_encoding_total",
}

// VerifyMetrics is the vet-metrics gate for the colcodec catalogue: it
// fails when any colcodec_* family is missing from the default registry
// or registered under the wrong type.
func VerifyMetrics() error {
	found := map[string]string{}
	for _, fam := range telemetry.Default().Snapshot() {
		found[fam.Name] = fam.Type
	}
	for _, name := range metricNames {
		typ, ok := found[name]
		if !ok {
			return fmt.Errorf("colcodec metric family %q is not registered", name)
		}
		if typ != telemetry.TypeCounter {
			return fmt.Errorf("colcodec metric family %q registered as %s, want %s", name, typ, telemetry.TypeCounter)
		}
	}
	return nil
}
