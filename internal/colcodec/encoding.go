// Per-column dictionary and run-length encodings behind flagEncoded.
//
// Decoded in-vehicle signals are overwhelmingly low-cardinality and
// piecewise-constant — status flags, gears, forward-filled sensors —
// so most columns are either a few distinct values repeated (dict wins)
// or long runs of one value (RLE wins). The encoder measures both
// against the raw payload in one pass and keeps whichever is strictly
// smallest; the decoder accepts all three unconditionally.
//
// Layout per column when flagEncoded is set (first byte selects):
//
//	enc=0x00 raw   the standard column encoding, unchanged
//	enc=0x01 dict  tag uint8 | nulls bitmap? | dcount uvarint |
//	               dcount values (kind payloads as in the raw format) |
//	               m uvarint dictionary indexes, one per non-null cell
//	enc=0x02 rle   tag uint8 | nulls bitmap? | nruns uvarint |
//	               nruns × (runlen uvarint ≥ 1, one value payload)
//
// Dict and RLE apply only to homogeneous int/float/string/bytes
// columns: bool is already one bit per cell, mixed and all-null
// columns stay raw. Hardening: dict indexes must be < dcount and
// dcount ≤ m; RLE run lengths must be ≥ 1 and total exactly m.
package colcodec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"ivnt/internal/relation"
)

const (
	encRaw  = 0x00
	encDict = 0x01
	encRLE  = 0x02
)

// maxDictBuild caps the distinct-value set tracked while sizing a
// column: past 64 Ki distinct values the index stream alone costs more
// than most raw payloads, so the encoder stops counting and keeps raw.
const maxDictBuild = 1 << 16

// DebugMutateRuns, when set, receives every RLE column's run lengths
// just before they are written. Difftest uses it to inject a
// wrong-run-length corruption (structurally valid, wrong data) and
// prove the differential harness catches it. Never set in production.
var DebugMutateRuns func(runLens []int)

// valueSameBits reports bitwise equality of two cells — the identity
// used for run detection and dictionary keys. Float compares by bit
// pattern so distinct NaN payloads stay distinct and roundtrips stay
// bitwise-exact.
func valueSameBits(a, b relation.Value) bool {
	return a.K == b.K && a.I == b.I &&
		math.Float64bits(a.F) == math.Float64bits(b.F) &&
		a.S == b.S && bytes.Equal(a.B, b.B)
}

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// valueBytes is a cell's cost in the raw column payload (and in a
// dictionary or run value slot): varint for ints, 8 for floats,
// length-prefixed bytes for string/bytes.
func valueBytes(v relation.Value) int {
	switch v.K {
	case relation.KindInt:
		return uvarintLen(uint64(v.I)<<1 ^ uint64(v.I>>63))
	case relation.KindFloat:
		return 8
	case relation.KindString:
		return uvarintLen(uint64(len(v.S))) + len(v.S)
	case relation.KindBytes:
		return uvarintLen(uint64(len(v.B))) + len(v.B)
	}
	return 0
}

// dictKey is a map key carrying a cell's identity under valueSameBits
// (the column is homogeneous, so the kind is implied).
type dictKey struct {
	i int64
	f uint64
	s string
}

func keyOf(v relation.Value) dictKey {
	k := dictKey{i: v.I, f: math.Float64bits(v.F), s: v.S}
	if v.K == relation.KindBytes {
		k.s = string(v.B)
	}
	return k
}

// encodeColumnSelect writes one column under the flagEncoded layout,
// choosing the cheapest of raw/dict/RLE by exact byte cost.
func encodeColumnSelect(w *bytes.Buffer, rows []relation.Row, ci int, scratch []byte) {
	kind, mixed, nulls := classifyColumn(rows, ci)
	if mixed || kind == relation.KindNull || kind == relation.KindBool {
		w.WriteByte(encRaw)
		mEncodings.With("raw").Inc()
		encodeColumn(w, rows, ci, scratch)
		return
	}

	rawB, dictB, rleB := columnCosts(rows, ci)
	enc := byte(encRaw)
	best := rawB
	if dictB < best {
		enc, best = encDict, dictB
	}
	if rleB < best {
		enc = encRLE
	}
	switch enc {
	case encDict:
		w.WriteByte(encDict)
		mEncodings.With("dict").Inc()
		encodeDict(w, rows, ci, kind, nulls, scratch)
	case encRLE:
		w.WriteByte(encRLE)
		mEncodings.With("rle").Inc()
		encodeRLE(w, rows, ci, kind, nulls, scratch)
	default:
		w.WriteByte(encRaw)
		mEncodings.With("raw").Inc()
		encodeColumn(w, rows, ci, scratch)
	}
}

// columnCosts sizes the three candidate payloads (excluding the shared
// tag byte and null bitmap) in one pass over the non-null cells. A
// column with more than maxDictBuild distinct values reports an
// unreachable dict cost.
func columnCosts(rows []relation.Row, ci int) (rawB, dictB, rleB int) {
	dict := make(map[dictKey]int)
	dictOverflow := false
	dictValB, dictIdxB := 0, 0
	nruns, runLen := 0, 0
	var prev relation.Value
	for _, r := range rows {
		v := r[ci]
		if v.K == relation.KindNull {
			continue
		}
		vb := valueBytes(v)
		rawB += vb
		if runLen > 0 && valueSameBits(prev, v) {
			runLen++
		} else {
			if runLen > 0 {
				rleB += uvarintLen(uint64(runLen)) + valueBytes(prev)
				nruns++
			}
			prev, runLen = v, 1
		}
		if !dictOverflow {
			k := keyOf(v)
			id, ok := dict[k]
			if !ok {
				if len(dict) >= maxDictBuild {
					dictOverflow = true
					continue
				}
				id = len(dict)
				dict[k] = id
				dictValB += vb
			}
			dictIdxB += uvarintLen(uint64(id))
		}
	}
	if runLen > 0 {
		rleB += uvarintLen(uint64(runLen)) + valueBytes(prev)
		nruns++
	}
	rleB += uvarintLen(uint64(nruns))
	dictB = math.MaxInt
	if !dictOverflow {
		dictB = uvarintLen(uint64(len(dict))) + dictValB + dictIdxB
	}
	return rawB, dictB, rleB
}

// writeValue emits one value payload (raw-format cell, sans kind byte).
func writeValue(w *bytes.Buffer, v relation.Value, scratch []byte) {
	switch v.K {
	case relation.KindInt:
		w.Write(scratch[:binary.PutVarint(scratch, v.I)])
	case relation.KindFloat:
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v.F))
		w.Write(scratch[:8])
	case relation.KindString:
		w.Write(scratch[:binary.PutUvarint(scratch, uint64(len(v.S)))])
		w.WriteString(v.S)
	case relation.KindBytes:
		w.Write(scratch[:binary.PutUvarint(scratch, uint64(len(v.B)))])
		w.Write(v.B)
	}
}

func writeColumnHeader(w *bytes.Buffer, rows []relation.Row, ci int, kind relation.Kind, nulls bool) {
	tag := byte(kind)
	if nulls {
		tag |= tagHasNulls
	}
	w.WriteByte(tag)
	if nulls {
		writeBitmap(w, rows, func(r relation.Row) bool { return r[ci].K == relation.KindNull })
	}
}

func encodeDict(w *bytes.Buffer, rows []relation.Row, ci int, kind relation.Kind, nulls bool, scratch []byte) {
	writeColumnHeader(w, rows, ci, kind, nulls)
	// First-appearance order: the id stream is smallest when early rows
	// get small ids, and the decoder rebuilds the same order for free.
	dict := make(map[dictKey]int)
	var vals []relation.Value
	ids := make([]int, 0, len(rows))
	for _, r := range rows {
		v := r[ci]
		if v.K == relation.KindNull {
			continue
		}
		k := keyOf(v)
		id, ok := dict[k]
		if !ok {
			id = len(vals)
			dict[k] = id
			vals = append(vals, v)
		}
		ids = append(ids, id)
	}
	w.Write(scratch[:binary.PutUvarint(scratch, uint64(len(vals)))])
	for _, v := range vals {
		writeValue(w, v, scratch)
	}
	for _, id := range ids {
		w.Write(scratch[:binary.PutUvarint(scratch, uint64(id))])
	}
}

func encodeRLE(w *bytes.Buffer, rows []relation.Row, ci int, kind relation.Kind, nulls bool, scratch []byte) {
	writeColumnHeader(w, rows, ci, kind, nulls)
	var lens []int
	var vals []relation.Value
	for _, r := range rows {
		v := r[ci]
		if v.K == relation.KindNull {
			continue
		}
		if len(vals) > 0 && valueSameBits(vals[len(vals)-1], v) {
			lens[len(lens)-1]++
		} else {
			vals = append(vals, v)
			lens = append(lens, 1)
		}
	}
	if DebugMutateRuns != nil {
		DebugMutateRuns(lens)
	}
	w.Write(scratch[:binary.PutUvarint(scratch, uint64(len(lens)))])
	for i, v := range vals {
		w.Write(scratch[:binary.PutUvarint(scratch, uint64(lens[i]))])
		writeValue(w, v, scratch)
	}
}

// decodeColumnSelect dispatches one flagEncoded column on its encoding
// byte.
func decodeColumnSelect(rd *reader, rows []relation.Row, ci, n int) error {
	enc, err := rd.byte()
	if err != nil {
		return err
	}
	switch enc {
	case encRaw:
		return decodeColumn(rd, rows, ci, n)
	case encDict:
		return decodeDictColumn(rd, rows, ci, n)
	case encRLE:
		return decodeRLEColumn(rd, rows, ci, n)
	default:
		return fmt.Errorf("bad column encoding %#x", enc)
	}
}

// readEncodedHeader reads and validates the tag + null bitmap shared by
// dict and RLE columns. Only homogeneous int/float/string/bytes columns
// may carry these encodings.
func readEncodedHeader(rd *reader, n int) (kind relation.Kind, isNull func(int) bool, m int, err error) {
	tag, err := rd.byte()
	if err != nil {
		return 0, nil, 0, err
	}
	k := tag & 0x0F
	switch relation.Kind(k) {
	case relation.KindInt, relation.KindFloat, relation.KindString, relation.KindBytes:
	default:
		return 0, nil, 0, fmt.Errorf("kind %d is not dict/rle-encodable", k)
	}
	var nulls []byte
	if tag&tagHasNulls != 0 {
		nulls, err = rd.bytes((n + 7) / 8)
		if err != nil {
			return 0, nil, 0, err
		}
	}
	isNull = func(i int) bool {
		return nulls != nil && nulls[i/8]&(1<<(i%8)) != 0
	}
	m = n
	if nulls != nil {
		m = 0
		for i := 0; i < n; i++ {
			if !isNull(i) {
				m++
			}
		}
	}
	return relation.Kind(k), isNull, m, nil
}

// readValue reads one value payload of the given homogeneous kind. For
// bytes the returned Value aliases the reader's buffer; callers must
// copy per cell.
func (r *reader) value(k relation.Kind) (relation.Value, error) {
	switch k {
	case relation.KindInt:
		i, err := r.varint()
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Int(i), nil
	case relation.KindFloat:
		f, err := r.float()
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Float(f), nil
	case relation.KindString:
		l, err := r.uvarint()
		if err != nil {
			return relation.Value{}, err
		}
		b, err := r.bytes(int(l))
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Str(string(b)), nil
	default: // KindBytes, pre-validated by readEncodedHeader
		l, err := r.uvarint()
		if err != nil {
			return relation.Value{}, err
		}
		b, err := r.bytes(int(l))
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Bytes(b), nil
	}
}

func decodeDictColumn(rd *reader, rows []relation.Row, ci, n int) error {
	kind, isNull, m, err := readEncodedHeader(rd, n)
	if err != nil {
		return err
	}
	dcount, err := rd.uvarint()
	if err != nil {
		return err
	}
	// A dictionary never outgrows the cells it describes — the writer
	// would have kept raw — so dcount > m is crafted, and bounds the
	// allocation below by m.
	if dcount > uint64(m) {
		return fmt.Errorf("dictionary size %d exceeds %d non-null cells", dcount, m)
	}
	if m > 0 && dcount == 0 {
		return fmt.Errorf("empty dictionary for %d non-null cells", m)
	}
	vals := make([]relation.Value, dcount)
	for i := range vals {
		vals[i], err = rd.value(kind)
		if err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		if isNull(i) {
			continue
		}
		id, err := rd.uvarint()
		if err != nil {
			return err
		}
		if id >= dcount {
			return fmt.Errorf("dictionary index %d out of range (%d entries)", id, dcount)
		}
		v := vals[id]
		if kind == relation.KindBytes {
			// Cells must not alias each other (or the input buffer).
			b := make([]byte, len(v.B))
			copy(b, v.B)
			v = relation.Bytes(b)
		}
		rows[i][ci] = v
	}
	return nil
}

func decodeRLEColumn(rd *reader, rows []relation.Row, ci, n int) error {
	kind, isNull, m, err := readEncodedHeader(rd, n)
	if err != nil {
		return err
	}
	nruns, err := rd.uvarint()
	if err != nil {
		return err
	}
	if nruns > uint64(m) {
		return fmt.Errorf("%d runs for %d non-null cells", nruns, m)
	}
	i := 0 // row cursor, advanced past nulls
	covered := 0
	for run := uint64(0); run < nruns; run++ {
		rl, err := rd.uvarint()
		if err != nil {
			return err
		}
		if rl == 0 {
			return fmt.Errorf("zero-length run")
		}
		if rl > uint64(m-covered) {
			return fmt.Errorf("run length %d overflows %d remaining cells", rl, m-covered)
		}
		v, err := rd.value(kind)
		if err != nil {
			return err
		}
		for c := uint64(0); c < rl; c++ {
			for isNull(i) {
				i++
			}
			cell := v
			if kind == relation.KindBytes {
				b := make([]byte, len(v.B))
				copy(b, v.B)
				cell = relation.Bytes(b)
			}
			rows[i][ci] = cell
			i++
		}
		covered += int(rl)
	}
	if covered != m {
		return fmt.Errorf("runs cover %d of %d non-null cells", covered, m)
	}
	return nil
}
