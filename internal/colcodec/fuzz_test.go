package colcodec

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ivnt/internal/relation"
)

// rowsFromSeed deterministically builds a row set from fuzz input bytes,
// covering every Kind (including nulls and mixed columns) so the fuzzer
// explores the full encoder surface.
func rowsFromSeed(seed []byte) (relation.Schema, []relation.Row) {
	s := relation.NewSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindString},
		relation.Column{Name: "c", Kind: relation.KindFloat},
	)
	var rows []relation.Row
	for i := 0; i+3 <= len(seed) && len(rows) < 512; i += 3 {
		b0, b1, b2 := seed[i], seed[i+1], seed[i+2]
		var row relation.Row
		for ci, sel := range []byte{b0, b1, b2} {
			switch sel % 7 {
			case 0:
				row = append(row, relation.Null())
			case 1:
				row = append(row, relation.Bool(sel&0x10 != 0))
			case 2:
				row = append(row, relation.Int(int64(b0)<<8|int64(b1)-int64(b2)*3))
			case 3:
				row = append(row, relation.Float(math.Float64frombits(uint64(b0)<<56|uint64(b1)<<24|uint64(b2))))
			case 4:
				row = append(row, relation.Str(string(seed[i:i+1+int(sel%2)])))
			case 5:
				row = append(row, relation.Bytes(seed[i:i+ci+1]))
			case 6:
				row = append(row, relation.Str(""))
			}
		}
		rows = append(rows, row)
	}
	return s, rows
}

// FuzzRoundTrip asserts Encode→Decode is the identity for arbitrary row
// sets, with and without compression.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Add([]byte{7, 7, 7, 0xFF, 0x00, 0x80, 3, 3, 3})
	f.Fuzz(func(t *testing.T, seed []byte) {
		s, rows := rowsFromSeed(seed)
		for _, compress := range []bool{false, true} {
			for _, encodings := range []bool{false, true} {
				data, err := Encode(s, rows, Options{Compress: compress, Encodings: encodings})
				if err != nil {
					t.Fatalf("encode(compress=%v, encodings=%v): %v", compress, encodings, err)
				}
				got, err := Decode(s, data)
				if err != nil {
					t.Fatalf("decode(compress=%v, encodings=%v): %v", compress, encodings, err)
				}
				assertRowsEqual(t, got, rows)
			}
		}
	})
}

// TestFuzzCorpusCheckedIn pins the malicious dict/RLE shapes as
// seed-corpus files under testdata/fuzz/FuzzDecode, so `go test -fuzz`
// (and plain runs of the fuzz target) always start from them.
// Regenerate with UPDATE_FUZZ_CORPUS=1 after changing the format.
func TestFuzzCorpusCheckedIn(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	update := os.Getenv("UPDATE_FUZZ_CORPUS") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range maliciousEncoded() {
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus file missing (run with UPDATE_FUZZ_CORPUS=1 to regenerate): %v", err)
		}
		if string(got) != want {
			t.Fatalf("corpus file %s is stale (run with UPDATE_FUZZ_CORPUS=1 to regenerate)", name)
		}
	}
}

// FuzzDecode feeds arbitrary bytes straight into Decode: it must return
// an error or valid rows, never panic or over-allocate.
func FuzzDecode(f *testing.F) {
	s := kitchenSinkSchema()
	good, err := Encode(s, kitchenSinkRows(), Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{magic0, magic1, 0, 3, 2})
	f.Add([]byte{magic0, magic1, flagCompressed, 1, 1, 0xDE, 0xAD})
	f.Add([]byte{})
	// Malicious shapes the hardening gates must hold against: a header
	// claiming 2^27 rows over a 3-byte body, an all-null column with the
	// bitmap bit cleared, a cell length overclaiming a terabyte, and a
	// zero-column payload claiming rows with no body to back them.
	f.Add(craft(1<<27, uint64(s.Len()), false, []byte{0, 0, 0}))
	f.Add(craft(1<<27, uint64(s.Len()), true, []byte{0, 0, 0}))
	f.Add(craft(64, uint64(s.Len()), false, append([]byte{0}, make([]byte, 64)...)))
	f.Add(craft(8, uint64(s.Len()), false, append([]byte{byte(relation.KindString), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, make([]byte, 32)...)))
	f.Add(craft(1<<21, 0, false, nil))
	// The dict/RLE hardening shapes (out-of-range dictionary index,
	// run-count overflow, ...) plus a valid encoded payload so mutations
	// reach the flagEncoded paths. Checked in via TestFuzzCorpusCheckedIn.
	goodEnc, err := Encode(s, kitchenSinkRows(), Options{Encodings: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(goodEnc)
	for _, data := range maliciousEncoded() {
		f.Add(data)
	}
	// The one-column schema matches the malicious encoded shapes, so the
	// dict/RLE validation paths actually run instead of dying at the
	// column-count check.
	one := relation.NewSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, sch := range []relation.Schema{s, one} {
			rows, err := Decode(sch, data)
			if err == nil {
				// Whatever decoded must at least be schema-shaped.
				for _, r := range rows {
					if len(r) != sch.Len() {
						t.Fatalf("decoded row has %d cells, schema has %d", len(r), sch.Len())
					}
				}
			}
		}
	})
}
