package colcodec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"ivnt/internal/relation"
)

// craft builds a raw payload from a header claim and a body, the shape
// an adversary (or a corrupted disk block) hands the decoder.
func craft(nrows, ncols uint64, compress bool, body []byte) []byte {
	out := []byte{magic0, magic1, 0}
	if compress {
		out[2] = flagCompressed
	}
	out = binary.AppendUvarint(out, nrows)
	out = binary.AppendUvarint(out, ncols)
	if compress {
		var cb bytes.Buffer
		fw, _ := flate.NewWriter(&cb, flate.BestSpeed)
		_, _ = fw.Write(body)
		_ = fw.Close()
		return append(out, cb.Bytes()...)
	}
	return append(out, body...)
}

// TestDecodeRejectsHugeRowClaim: a header claiming 2^27 rows over a
// 3-byte body must be rejected by the plausibility gate before the row
// allocation, not during column decode — and quickly.
func TestDecodeRejectsHugeRowClaim(t *testing.T) {
	s := kitchenSinkSchema()
	for _, compress := range []bool{false, true} {
		start := time.Now()
		data := craft(1<<27, uint64(s.Len()), compress, []byte{0, 0, 0})
		_, err := Decode(s, data)
		if err == nil {
			t.Fatalf("compress=%v: 2^27-row claim over 3 bytes decoded", compress)
		}
		if !strings.Contains(err.Error(), "need at least") {
			t.Fatalf("compress=%v: wrong rejection: %v", compress, err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("compress=%v: rejection took %v — allocation happened first", compress, d)
		}
	}
}

// TestDecodeRejectsAllNullWithoutBitmap: the one-tag-byte trick for
// claiming n rows (an all-null column with the bitmap bit cleared) must
// be rejected; the real encoder always writes the bitmap.
func TestDecodeRejectsAllNullWithoutBitmap(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	// Body padded past the plausibility gate so the column check itself
	// is what fires.
	body := make([]byte, 1+8)
	body[0] = byte(relation.KindNull) // tag: all-null, no bitmap bit
	_, err := Decode(s, craft(64, 1, false, body))
	if err == nil || !strings.Contains(err.Error(), "without null bitmap") {
		t.Fatalf("all-null column without bitmap: err = %v", err)
	}

	// The legitimate all-null encoding still round-trips.
	rows := make([]relation.Row, 64)
	for i := range rows {
		rows[i] = relation.Row{relation.Null()}
	}
	data, err := Encode(s, rows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 || !got[0][0].IsNull() {
		t.Fatalf("all-null round trip broke: %d rows", len(got))
	}
}

// TestDecodeZeroColumnRowCap: with no columns there is no body to size
// the row claim against, so the decoder enforces a fixed cap.
func TestDecodeZeroColumnRowCap(t *testing.T) {
	s := relation.NewSchema()
	if _, err := Decode(s, craft(maxZeroColRows+1, 0, false, nil)); err == nil {
		t.Fatal("zero-column payload claiming rows above the cap decoded")
	}
	got, err := Decode(s, craft(16, 0, false, nil))
	if err != nil {
		t.Fatalf("small zero-column payload must decode: %v", err)
	}
	if len(got) != 16 {
		t.Fatalf("rows = %d, want 16", len(got))
	}
}

// TestDecodeRejectsOverclaimedCellLength: a string cell length larger
// than the remaining buffer must fail before any arena allocation.
func TestDecodeRejectsOverclaimedCellLength(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "b", Kind: relation.KindString})
	var body []byte
	body = append(body, byte(relation.KindString))
	body = binary.AppendUvarint(body, 1<<40) // one cell claiming a terabyte
	body = append(body, make([]byte, 16)...)
	_, err := Decode(s, craft(8, 1, false, body))
	if err == nil || !strings.Contains(err.Error(), "exceeds remaining") {
		t.Fatalf("overclaimed cell length: err = %v", err)
	}
}

// TestDecodeTruncatedEverywhere re-encodes a kitchen-sink partition and
// asserts every prefix either errors cleanly or decodes schema-shaped
// rows — no panics, no partial-row results.
func TestDecodeTruncatedEverywhere(t *testing.T) {
	s := kitchenSinkSchema()
	for _, compress := range []bool{false, true} {
		data, err := Encode(s, kitchenSinkRows(), Options{Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			rows, err := Decode(s, data[:cut])
			if err != nil {
				continue
			}
			for _, r := range rows {
				if len(r) != s.Len() {
					t.Fatalf("compress=%v cut=%d: row width %d", compress, cut, len(r))
				}
			}
		}
	}
}
