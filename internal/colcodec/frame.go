// Streaming frame layer: uvarint length-prefixed colcodec frames over
// any byte stream. This is the run format the engine's spill files
// introduced (a sequence of `uvarint(len) || colcodec frame` records),
// factored out so the shuffle exchange can reuse it verbatim — the
// same bytes written to a spill run on disk are what an executor
// streams to a peer for one shuffle partition, and what the receiving
// side spills back to disk under memory pressure without re-encoding.
package colcodec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameWire bounds a frame length read back from a stream; anything
// larger is corruption, not data (a frame covers at most one encoded
// partition block).
const MaxFrameWire = 1 << 30

// FrameWriter appends length-prefixed frames to a stream through a
// buffered writer. Not safe for concurrent use.
type FrameWriter struct {
	bw    *bufio.Writer
	bytes int64
}

// NewFrameWriter wraps w. Call Flush before relying on the underlying
// stream's contents.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

// WriteFrame appends one frame (typically one Encode result). Empty
// frames are rejected: a zero length is the reader's corruption signal.
func (w *FrameWriter) WriteFrame(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("colcodec: empty frame")
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(data)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(data); err != nil {
		return err
	}
	w.bytes += int64(n + len(data))
	return nil
}

// Flush drains the internal buffer to the underlying writer.
func (w *FrameWriter) Flush() error { return w.bw.Flush() }

// Bytes returns the total frame bytes written (headers included).
func (w *FrameWriter) Bytes() int64 { return w.bytes }

// FrameReader streams length-prefixed frames back from a stream. Not
// safe for concurrent use.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next frame's payload, or io.EOF at a clean end of
// stream. Truncation mid-header or mid-frame and implausible lengths
// surface as errors, never short results. The returned slice is freshly
// allocated and owned by the caller.
func (r *FrameReader) Next() ([]byte, error) {
	l, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("colcodec: frame header: %w", err)
	}
	if l == 0 || l > MaxFrameWire {
		return nil, fmt.Errorf("colcodec: corrupt frame length %d", l)
	}
	buf := make([]byte, l)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("colcodec: truncated frame: %w", err)
	}
	return buf, nil
}
