// Package colcodec is the hand-rolled columnar partition codec of the
// v3 cluster wire protocol. It replaces per-row gob reflection (which
// encodes every cell as a 5-field relation.Value struct) with per-column
// typed vectors: varint-packed ints and bools, raw little-endian
// float64s, length-prefixed string/bytes arenas, and a null bitmap per
// column. The schema is NOT part of the stream — both ends of the wire
// already share it (the driver computed it; the executor received it in
// the stage message) — so the payload scales with data bytes only.
//
// Layout (all multi-byte integers are unsigned varints unless noted):
//
//	magic   [2]byte   "C1"
//	flags   uint8     bit0: body is DEFLATE-compressed
//	nrows   uvarint
//	ncols   uvarint   (must equal the schema length on decode)
//	body    — per column, possibly compressed as one DEFLATE stream:
//	  tag   uint8     low nibble: homogeneous relation.Kind of the
//	                  non-null cells, or tagMixed (0xF); bit 0x10 set
//	                  when a null bitmap follows
//	  nulls [ceil(nrows/8)]byte   (only when bit 0x10; bit set = null)
//	  payload for the m non-null cells, in row order:
//	    bool    ceil(m/8) bitmap
//	    int     m zigzag varints
//	    float   m × 8 bytes little-endian IEEE-754
//	    string  m uvarint lengths, then one concatenated arena
//	    bytes   same as string
//	    mixed   per cell: kind uint8 then the cell's payload as above
//	                  (bool as one byte)
//
// When flags bit1 (flagEncoded) is set, every column is preceded by one
// encoding byte selecting raw, dictionary, or run-length representation
// for that column's payload — see encoding.go. Payloads without the
// flag are the raw format above, so pre-encoding streams decode
// unchanged.
//
// Encode buffers come from a sync.Pool so steady-state encoding does
// not regrow buffers per task.
package colcodec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"ivnt/internal/relation"
)

const (
	magic0 = 'C'
	magic1 = '1'

	flagCompressed = 0x01
	flagEncoded    = 0x02

	tagMixed    = 0xF
	tagHasNulls = 0x10
)

// maxDecodeRows bounds the row count a decoder will allocate for, so a
// corrupt or adversarial header cannot OOM the executor. Partitions at
// the paper's scale are a few hundred thousand rows.
const maxDecodeRows = 1 << 28

// maxZeroColRows bounds the row count when the schema has no columns:
// with zero cells per row there is no body to size the claim against,
// so a tighter cap stands in for the plausibility check.
const maxZeroColRows = 1 << 20

// flateMaxRatio caps decompression: DEFLATE tops out near 1032:1, so a
// body claiming to inflate past ~1040x the wire bytes is a decompression
// bomb, not trace data.
const flateMaxRatio = 1040

// maxEncodedRows bounds the row count of a payload carrying flagEncoded.
// Dict/RLE columns can legitimately describe many rows in a few bytes
// (a constant column is one run), which defeats the raw-format min-body
// plausibility gate — so encoded payloads get a tighter absolute cap
// instead. The encoder falls back to the raw format above it, so the
// cap never rejects our own output; it only bounds what a crafted
// header can make the decoder allocate before column checks run.
const maxEncodedRows = 1 << 22

// Options tune encoding.
type Options struct {
	// Compress runs the column body through DEFLATE (stdlib flate).
	// Worth it for string/bytes-heavy traces crossing real networks;
	// pure overhead on loopback.
	Compress bool

	// Level is the DEFLATE level when Compress is set. Zero means
	// flate.BestSpeed — the measured default: full DEFLATE is ~11x
	// slower to encode for ~2.5x smaller output (see the codec bench) —
	// any other value is handed to flate.NewWriter unchanged
	// (flate.BestCompression, flate.HuffmanOnly, ...).
	Level int

	// Encodings lets the encoder pick a per-column dictionary or
	// run-length representation when it is strictly smaller than the
	// raw column payload. Decoders accept such payloads regardless of
	// this option; raw payloads are unchanged on the wire.
	Encodings bool
}

// flateLevel maps Options.Level to the flate package's scale.
func flateLevel(l int) int {
	if l == 0 {
		return flate.BestSpeed
	}
	return l
}

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// IsCompressed reports whether an encoded payload has the DEFLATE flag
// set (false for anything too short to be a valid payload). Executors
// use it to mirror the driver's compression choice on results.
func IsCompressed(data []byte) bool {
	return len(data) >= 3 && data[0] == magic0 && data[1] == magic1 && data[2]&flagCompressed != 0
}

// Encode serializes rows (which must match schema s) into a
// self-describing byte payload.
func Encode(s relation.Schema, rows []relation.Row, opts Options) ([]byte, error) {
	ncols := s.Len()
	for i, r := range rows {
		if len(r) != ncols {
			return nil, fmt.Errorf("colcodec: row %d has %d cells, schema has %d", i, len(r), ncols)
		}
	}

	encoded := opts.Encodings && len(rows) <= maxEncodedRows

	body := bufPool.Get().(*bytes.Buffer)
	body.Reset()
	defer bufPool.Put(body)
	var scratch [binary.MaxVarintLen64]byte
	for ci := 0; ci < ncols; ci++ {
		if encoded {
			encodeColumnSelect(body, rows, ci, scratch[:])
		} else {
			encodeColumn(body, rows, ci, scratch[:])
		}
	}

	out := bufPool.Get().(*bytes.Buffer)
	out.Reset()
	defer bufPool.Put(out)
	flags := byte(0)
	if opts.Compress {
		flags |= flagCompressed
	}
	if encoded {
		flags |= flagEncoded
	}
	out.WriteByte(magic0)
	out.WriteByte(magic1)
	out.WriteByte(flags)
	out.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(rows)))])
	out.Write(scratch[:binary.PutUvarint(scratch[:], uint64(ncols))])
	if opts.Compress {
		fw, err := flate.NewWriter(out, flateLevel(opts.Level))
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(body.Bytes()); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
	} else {
		out.Write(body.Bytes())
	}
	// Copy out of the pooled buffer: the caller owns the result.
	res := make([]byte, out.Len())
	copy(res, out.Bytes())
	return res, nil
}

// classifyColumn makes one pass over a column: homogeneous (all
// non-null cells share a kind) or mixed, and whether any cell is null.
func classifyColumn(rows []relation.Row, ci int) (kind relation.Kind, mixed, nulls bool) {
	kind = relation.KindNull
	for _, r := range rows {
		k := r[ci].K
		if k == relation.KindNull {
			nulls = true
			continue
		}
		if kind == relation.KindNull {
			kind = k
		} else if kind != k {
			mixed = true
		}
	}
	return kind, mixed, nulls
}

func encodeColumn(w *bytes.Buffer, rows []relation.Row, ci int, scratch []byte) {
	kind, mixed, nulls := classifyColumn(rows, ci)

	tag := byte(kind)
	if mixed {
		tag = tagMixed
	}
	if nulls {
		tag |= tagHasNulls
	}
	w.WriteByte(tag)
	if nulls {
		writeBitmap(w, rows, func(r relation.Row) bool { return r[ci].K == relation.KindNull })
	}
	if !mixed && kind == relation.KindNull {
		return // all-null column: no payload
	}

	putUvarint := func(u uint64) { w.Write(scratch[:binary.PutUvarint(scratch, u)]) }
	putVarint := func(i int64) { w.Write(scratch[:binary.PutVarint(scratch, i)]) }
	putFloat := func(f float64) {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(f))
		w.Write(scratch[:8])
	}

	if mixed {
		for _, r := range rows {
			v := r[ci]
			if v.K == relation.KindNull {
				continue
			}
			w.WriteByte(byte(v.K))
			switch v.K {
			case relation.KindBool:
				w.WriteByte(byte(v.I & 1))
			case relation.KindInt:
				putVarint(v.I)
			case relation.KindFloat:
				putFloat(v.F)
			case relation.KindString:
				putUvarint(uint64(len(v.S)))
				w.WriteString(v.S)
			case relation.KindBytes:
				putUvarint(uint64(len(v.B)))
				w.Write(v.B)
			}
		}
		return
	}

	switch kind {
	case relation.KindBool:
		// Pack one bit per NON-NULL cell (the decoder skips null slots
		// entirely), not one bit per row.
		var cur byte
		m := 0
		for _, r := range rows {
			if r[ci].K == relation.KindNull {
				continue
			}
			if r[ci].I != 0 {
				cur |= 1 << (m % 8)
			}
			m++
			if m%8 == 0 {
				w.WriteByte(cur)
				cur = 0
			}
		}
		if m%8 != 0 {
			w.WriteByte(cur)
		}
	case relation.KindInt:
		for _, r := range rows {
			if r[ci].K != relation.KindNull {
				putVarint(r[ci].I)
			}
		}
	case relation.KindFloat:
		for _, r := range rows {
			if r[ci].K != relation.KindNull {
				putFloat(r[ci].F)
			}
		}
	case relation.KindString:
		for _, r := range rows {
			if r[ci].K != relation.KindNull {
				putUvarint(uint64(len(r[ci].S)))
			}
		}
		for _, r := range rows {
			if r[ci].K != relation.KindNull {
				w.WriteString(r[ci].S)
			}
		}
	case relation.KindBytes:
		for _, r := range rows {
			if r[ci].K != relation.KindNull {
				putUvarint(uint64(len(r[ci].B)))
			}
		}
		for _, r := range rows {
			if r[ci].K != relation.KindNull {
				w.Write(r[ci].B)
			}
		}
	}
}

// writeBitmap packs one bit per row (LSB-first within each byte).
func writeBitmap(w *bytes.Buffer, rows []relation.Row, bit func(relation.Row) bool) {
	var cur byte
	n := 0
	for _, r := range rows {
		if bit(r) {
			cur |= 1 << (n % 8)
		}
		n++
		if n%8 == 0 {
			w.WriteByte(cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		w.WriteByte(cur)
	}
}

// Decode reconstructs the rows of a payload produced by Encode against
// the same schema. Every length and offset is bounds-checked; corrupt
// input yields an error, never a panic.
func Decode(s relation.Schema, data []byte) ([]relation.Row, error) {
	if len(data) < 3 || data[0] != magic0 || data[1] != magic1 {
		return nil, fmt.Errorf("colcodec: bad magic")
	}
	flags := data[2]
	if flags&^byte(flagCompressed|flagEncoded) != 0 {
		return nil, fmt.Errorf("colcodec: unknown flags %#x", flags)
	}
	encoded := flags&flagEncoded != 0
	rd := &reader{buf: data[3:]}
	nrows, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("colcodec: row count: %w", err)
	}
	ncols, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("colcodec: column count: %w", err)
	}
	if nrows > maxDecodeRows {
		return nil, fmt.Errorf("colcodec: row count %d exceeds limit", nrows)
	}
	if encoded && nrows > maxEncodedRows {
		return nil, fmt.Errorf("colcodec: encoded row count %d exceeds limit", nrows)
	}
	if int(ncols) != s.Len() {
		return nil, fmt.Errorf("colcodec: payload has %d columns, schema has %d", ncols, s.Len())
	}
	if ncols == 0 && nrows > maxZeroColRows {
		return nil, fmt.Errorf("colcodec: %d rows claimed with no columns", nrows)
	}
	if flags&flagCompressed != 0 {
		// Decompress under a hard output cap so a tiny adversarial
		// payload cannot inflate into gigabytes before any column-level
		// bounds check runs.
		limit := int64(len(data))*flateMaxRatio + 4096
		fr := flate.NewReader(bytes.NewReader(rd.rest()))
		body, err := io.ReadAll(io.LimitReader(fr, limit))
		if err != nil {
			return nil, fmt.Errorf("colcodec: decompress: %w", err)
		}
		_ = fr.Close()
		if int64(len(body)) >= limit {
			return nil, fmt.Errorf("colcodec: decompressed body exceeds %dx input", flateMaxRatio)
		}
		rd = &reader{buf: body}
	}

	n := int(nrows)
	// Plausibility gate before the big allocation: every well-formed raw
	// column costs at least one tag byte plus either a null bitmap or a
	// denser payload, so a body shorter than ncols*(1+ceil(n/8)) bytes
	// cannot be describing n rows — reject it before make() does. An
	// encoded column can legitimately be a handful of bytes (one RLE run
	// covers any row count), so those payloads only owe two bytes per
	// column here and lean on the maxEncodedRows cap above instead.
	if n > 0 {
		minBody := int64(ncols) * int64(1+(n+7)/8)
		if encoded {
			minBody = int64(ncols) * 2
		}
		if int64(len(rd.rest())) < minBody {
			return nil, fmt.Errorf("colcodec: body has %d bytes, %d rows need at least %d", len(rd.rest()), n, minBody)
		}
	}
	rows := make([]relation.Row, n)
	cells := make([]relation.Value, n*int(ncols)) // one backing array
	for i := range rows {
		rows[i] = cells[i*int(ncols) : (i+1)*int(ncols) : (i+1)*int(ncols)]
	}
	for ci := 0; ci < int(ncols); ci++ {
		var err error
		if encoded {
			err = decodeColumnSelect(rd, rows, ci, n)
		} else {
			err = decodeColumn(rd, rows, ci, n)
		}
		if err != nil {
			return nil, fmt.Errorf("colcodec: column %d: %w", ci, err)
		}
	}
	if len(rd.rest()) != 0 {
		return nil, fmt.Errorf("colcodec: %d trailing bytes", len(rd.rest()))
	}
	return rows, nil
}

func decodeColumn(rd *reader, rows []relation.Row, ci, n int) error {
	tag, err := rd.byte()
	if err != nil {
		return err
	}
	kind := tag & 0x0F
	hasNulls := tag&tagHasNulls != 0
	if kind != tagMixed && kind > byte(relation.KindBytes) {
		return fmt.Errorf("bad column tag %#x", tag)
	}

	var nulls []byte
	if hasNulls {
		nulls, err = rd.bytes((n + 7) / 8)
		if err != nil {
			return err
		}
	}
	isNull := func(i int) bool {
		return nulls != nil && nulls[i/8]&(1<<(i%8)) != 0
	}

	if kind == byte(relation.KindNull) {
		// The encoder always writes a null bitmap for an all-null column
		// of one or more rows; its absence is a crafted stream trying to
		// claim many rows for one tag byte.
		if !hasNulls && n > 0 {
			return fmt.Errorf("all-null column without null bitmap")
		}
		return nil // all cells stay the zero (null) Value
	}

	if kind == tagMixed {
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			k, err := rd.byte()
			if err != nil {
				return err
			}
			if k == byte(relation.KindNull) || k > byte(relation.KindBytes) {
				return fmt.Errorf("bad mixed cell kind %d", k)
			}
			v, err := rd.cell(relation.Kind(k))
			if err != nil {
				return err
			}
			rows[i][ci] = v
		}
		return nil
	}

	switch relation.Kind(kind) {
	case relation.KindBool:
		m := 0
		for i := 0; i < n; i++ {
			if !isNull(i) {
				m++
			}
		}
		bits, err := rd.bytes((m + 7) / 8)
		if err != nil {
			return err
		}
		j := 0
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			rows[i][ci] = relation.Bool(bits[j/8]&(1<<(j%8)) != 0)
			j++
		}
	case relation.KindInt:
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			x, err := rd.varint()
			if err != nil {
				return err
			}
			rows[i][ci] = relation.Int(x)
		}
	case relation.KindFloat:
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			f, err := rd.float()
			if err != nil {
				return err
			}
			rows[i][ci] = relation.Float(f)
		}
	case relation.KindString, relation.KindBytes:
		lens := make([]int, 0, n)
		total := 0
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			l, err := rd.uvarint()
			if err != nil {
				return err
			}
			if l > uint64(len(rd.rest())) {
				return fmt.Errorf("cell length %d exceeds remaining %d bytes", l, len(rd.rest()))
			}
			lens = append(lens, int(l))
			total += int(l)
		}
		arena, err := rd.bytes(total)
		if err != nil {
			return err
		}
		j, off := 0, 0
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			chunk := arena[off : off+lens[j]]
			if relation.Kind(kind) == relation.KindString {
				rows[i][ci] = relation.Str(string(chunk))
			} else {
				b := make([]byte, len(chunk))
				copy(b, chunk)
				rows[i][ci] = relation.Bytes(b)
			}
			off += lens[j]
			j++
		}
	}
	return nil
}

// reader is a bounds-checked cursor over a byte slice.
type reader struct {
	buf []byte
	off int
}

func (r *reader) rest() []byte { return r.buf[r.off:] }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint")
	}
	r.off += n
	return u, nil
}

func (r *reader) varint() (int64, error) {
	i, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint")
	}
	r.off += n
	return i, nil
}

func (r *reader) float() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// cell decodes one mixed-column cell payload of the given kind.
func (r *reader) cell(k relation.Kind) (relation.Value, error) {
	switch k {
	case relation.KindBool:
		b, err := r.byte()
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Bool(b != 0), nil
	case relation.KindInt:
		i, err := r.varint()
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Int(i), nil
	case relation.KindFloat:
		f, err := r.float()
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Float(f), nil
	case relation.KindString:
		l, err := r.uvarint()
		if err != nil {
			return relation.Value{}, err
		}
		b, err := r.bytes(int(l))
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Str(string(b)), nil
	case relation.KindBytes:
		l, err := r.uvarint()
		if err != nil {
			return relation.Value{}, err
		}
		b, err := r.bytes(int(l))
		if err != nil {
			return relation.Value{}, err
		}
		cp := make([]byte, len(b))
		copy(cp, b)
		return relation.Bytes(cp), nil
	default:
		return relation.Value{}, fmt.Errorf("bad cell kind %d", k)
	}
}
