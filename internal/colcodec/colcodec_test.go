package colcodec

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"math"
	"strings"
	"testing"

	"ivnt/internal/relation"
)

func kitchenSinkSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "b", Kind: relation.KindBool},
		relation.Column{Name: "i", Kind: relation.KindInt},
		relation.Column{Name: "f", Kind: relation.KindFloat},
		relation.Column{Name: "s", Kind: relation.KindString},
		relation.Column{Name: "y", Kind: relation.KindBytes},
		relation.Column{Name: "mixed", Kind: relation.KindString},
	)
}

// kitchenSinkRows exercises every Kind, nulls in every column, empty
// and huge byte payloads, non-ASCII strings, and NaN/±Inf floats — and
// a genuinely mixed-kind column (EvalRule output is dynamically typed).
func kitchenSinkRows() []relation.Row {
	huge := make([]byte, 70000)
	for i := range huge {
		huge[i] = byte(i * 7)
	}
	return []relation.Row{
		{relation.Bool(true), relation.Int(0), relation.Float(0), relation.Str(""), relation.Bytes(nil), relation.Int(1)},
		{relation.Bool(false), relation.Int(-1), relation.Float(math.NaN()), relation.Str("héllo wörld ✓✓"), relation.Bytes([]byte{}), relation.Str("zwei")},
		{relation.Null(), relation.Null(), relation.Null(), relation.Null(), relation.Null(), relation.Null()},
		{relation.Bool(true), relation.Int(math.MaxInt64), relation.Float(math.Inf(1)), relation.Str("日本語テキスト"), relation.Bytes(huge), relation.Float(2.5)},
		{relation.Bool(false), relation.Int(math.MinInt64), relation.Float(math.Inf(-1)), relation.Str(strings.Repeat("x", 9000)), relation.Bytes([]byte{0, 255, 0}), relation.Bool(true)},
		{relation.Null(), relation.Int(42), relation.Float(-0.0), relation.Str("\x00nul byte"), relation.Null(), relation.Bytes([]byte("raw"))},
	}
}

// cellEqual compares two values including float bit patterns, so NaN
// round-trips count as equal and -0.0 is distinguished from +0.0.
func cellEqual(a, b relation.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == relation.KindFloat {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	if a.K == relation.KindBytes {
		return bytes.Equal(a.B, b.B)
	}
	return a.I == b.I && a.S == b.S
}

func assertRowsEqual(t *testing.T, got, want []relation.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: %d cells, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if !cellEqual(got[i][j], want[i][j]) {
				t.Fatalf("row %d cell %d: %#v, want %#v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRoundTripKitchenSink(t *testing.T) {
	s := kitchenSinkSchema()
	rows := kitchenSinkRows()
	for _, compress := range []bool{false, true} {
		data, err := Encode(s, rows, Options{Compress: compress})
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if IsCompressed(data) != compress {
			t.Fatalf("compress=%v: IsCompressed = %v", compress, IsCompressed(data))
		}
		got, err := Decode(s, data)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		assertRowsEqual(t, got, rows)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	s := kitchenSinkSchema()
	data, err := Encode(s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("rows = %d", len(got))
	}
}

// TestGoldenLayout pins the exact uncompressed wire bytes of a small
// fixture, so accidental layout changes (which would desynchronize
// driver and executor) fail loudly instead of corrupting data.
func TestGoldenLayout(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "i", Kind: relation.KindInt},
		relation.Column{Name: "s", Kind: relation.KindString},
	)
	rows := []relation.Row{
		{relation.Int(1), relation.Str("ab")},
		{relation.Null(), relation.Str("c")},
		{relation.Int(-3), relation.Null()},
	}
	data, err := Encode(s, rows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "C1", flags 0, nrows 3, ncols 2;
	// col 0: tag int|nulls (0x12), bitmap 0b010, varints 1, -3 (zigzag 2, 5);
	// col 1: tag string|nulls (0x14), bitmap 0b100, lens 2, 1, arena "abc".
	const want = "43310003021202020514040201616263"
	if got := hex.EncodeToString(data); got != want {
		t.Fatalf("golden mismatch:\n got  %s\n want %s", got, want)
	}
	back, err := Decode(s, data)
	if err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, back, rows)
}

func TestEncodeRejectsRaggedRows(t *testing.T) {
	s := kitchenSinkSchema()
	if _, err := Encode(s, []relation.Row{{relation.Int(1)}}, Options{}); err == nil {
		t.Fatal("ragged row must be rejected")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	s := kitchenSinkSchema()
	good, err := Encode(s, kitchenSinkRows(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    {0x00, 0x01, 0x02, 0x03},
		"truncated":    good[:len(good)/2],
		"trailing":     append(append([]byte{}, good...), 0xAA),
		"wrong schema": good, // decoded against a narrower schema below
	}
	for name, data := range cases {
		sch := s
		if name == "wrong schema" {
			sch = relation.NewSchema(relation.Column{Name: "only", Kind: relation.KindInt})
		}
		if _, err := Decode(sch, data); err == nil {
			t.Fatalf("%s: expected decode error", name)
		}
	}
}

func TestDecodeRejectsHugeRowCount(t *testing.T) {
	// A forged header claiming 2^40 rows must fail fast, not allocate.
	data := []byte{magic0, magic1, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20, 0x01}
	if _, err := Decode(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}), data); err == nil {
		t.Fatal("expected row-count limit error")
	}
}

// TestWireSizeBeatsGob quantifies the codec-only share of the v3 wire
// savings: columnar encoding of a realistic signal-stream partition must
// be meaningfully smaller than the gob []relation.Row encoding it
// replaces. (The protocol-level ≥2× bytes-per-task reduction additionally
// comes from stage-once shipping — measured by the wire benchmark.)
func TestWireSizeBeatsGob(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
	rows := make([]relation.Row, 5000)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.1),
			relation.Int(int64(3 + i%2)),
			relation.Float(float64(i%97) * 1.5),
		}
	}
	col, err := Encode(s, rows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(rows); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(gobBuf.Len()) / float64(len(col)); ratio < 1.4 {
		t.Fatalf("columnar %dB vs gob %dB: ratio %.2f, want >= 1.4", len(col), gobBuf.Len(), ratio)
	}
}

func BenchmarkEncode(b *testing.B) {
	s := kitchenSinkSchema()
	rows := benchRows(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(s, rows, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkDecode(b *testing.B) {
	s := kitchenSinkSchema()
	rows := benchRows(10000)
	data, err := Encode(s, rows, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(s, data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func benchRows(n int) []relation.Row {
	rows := make([]relation.Row, n)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Bool(i%3 == 0),
			relation.Int(int64(i) * 13),
			relation.Float(float64(i) / 7),
			relation.Str("signal-name"),
			relation.Bytes([]byte{byte(i), 1, 2, 3, 4, 5, 6, 7}),
			relation.Int(int64(i % 5)),
		}
	}
	return rows
}
