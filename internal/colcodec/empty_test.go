package colcodec

import "testing"

// TestZeroRowRoundTrip pins the degenerate-input behaviour: a relation
// with no rows must encode and decode cleanly (with and without
// compression) — empty partitions are routine in repartitioned cluster
// stages, not an edge case the codec may reject.
func TestZeroRowRoundTrip(t *testing.T) {
	s := kitchenSinkSchema()
	for _, compress := range []bool{false, true} {
		data, err := Encode(s, nil, Options{Compress: compress})
		if err != nil {
			t.Fatalf("encode 0 rows (compress=%v): %v", compress, err)
		}
		if compress && IsCompressed(data) != true {
			t.Fatalf("compress=%v but IsCompressed=%v", compress, IsCompressed(data))
		}
		rows, err := Decode(s, data)
		if err != nil {
			t.Fatalf("decode 0 rows (compress=%v): %v", compress, err)
		}
		if len(rows) != 0 {
			t.Fatalf("decoded %d rows from empty encoding", len(rows))
		}
	}
}
