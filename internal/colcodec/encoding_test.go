package colcodec

import (
	"compress/flate"
	"encoding/binary"
	"strings"
	"testing"

	"ivnt/internal/relation"
)

// craftEncoded builds a flagEncoded payload from a header claim and a
// hand-assembled body.
func craftEncoded(nrows, ncols uint64, body []byte) []byte {
	out := []byte{magic0, magic1, flagEncoded}
	out = binary.AppendUvarint(out, nrows)
	out = binary.AppendUvarint(out, ncols)
	return append(out, body...)
}

// maliciousEncoded returns crafted flagEncoded payloads (against the
// one-int-column schema) that the hardened decoder must reject, keyed
// by shape. Shared by the rejection test, the FuzzDecode seeds, and the
// checked-in corpus.
func maliciousEncoded() map[string][]byte {
	mk := func(f func(b []byte) []byte) []byte { return f(nil) }
	return map[string][]byte{
		// A dictionary index pointing past the dictionary: 2 entries,
		// last cell asks for entry 7.
		"dict-index-out-of-range": craftEncoded(8, 1, mk(func(b []byte) []byte {
			b = append(b, encDict, byte(relation.KindInt))
			b = binary.AppendUvarint(b, 2)
			b = binary.AppendVarint(b, 5)
			b = binary.AppendVarint(b, 6)
			for _, id := range []uint64{0, 1, 0, 1, 0, 1, 0, 7} {
				b = binary.AppendUvarint(b, id)
			}
			return b
		})),
		// A dictionary claiming more entries than the column has cells.
		"dict-oversized": craftEncoded(8, 1, mk(func(b []byte) []byte {
			b = append(b, encDict, byte(relation.KindInt))
			b = binary.AppendUvarint(b, 20)
			for i := 0; i < 20; i++ {
				b = binary.AppendVarint(b, int64(i))
			}
			for i := 0; i < 8; i++ {
				b = binary.AppendUvarint(b, 0)
			}
			return b
		})),
		// Run lengths totalling 12 for an 8-cell column.
		"rle-run-overflow": craftEncoded(8, 1, mk(func(b []byte) []byte {
			b = append(b, encRLE, byte(relation.KindInt))
			b = binary.AppendUvarint(b, 2)
			b = binary.AppendUvarint(b, 7)
			b = binary.AppendVarint(b, 1)
			b = binary.AppendUvarint(b, 5)
			b = binary.AppendVarint(b, 2)
			return b
		})),
		// Runs covering only 3 of 8 cells.
		"rle-run-undercount": craftEncoded(8, 1, mk(func(b []byte) []byte {
			b = append(b, encRLE, byte(relation.KindInt))
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 3)
			b = binary.AppendVarint(b, 1)
			return b
		})),
		// A zero-length run (the classic infinite-progress trap).
		"rle-zero-run": craftEncoded(8, 1, mk(func(b []byte) []byte {
			b = append(b, encRLE, byte(relation.KindInt))
			b = binary.AppendUvarint(b, 2)
			b = binary.AppendUvarint(b, 0)
			b = binary.AppendVarint(b, 1)
			b = binary.AppendUvarint(b, 8)
			b = binary.AppendVarint(b, 2)
			return b
		})),
		// RLE over a kind that must stay raw.
		"rle-bool-kind": craftEncoded(8, 1, mk(func(b []byte) []byte {
			b = append(b, encRLE, byte(relation.KindBool))
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 8)
			b = append(b, 1)
			return b
		})),
		// An undefined encoding byte.
		"bad-encoding-byte": craftEncoded(8, 1, []byte{9, byte(relation.KindInt)}),
		// An encoded header claiming rows past the encoded cap — a
		// constant-column RLE body could otherwise "justify" any count.
		"encoded-huge-claim": craftEncoded(maxEncodedRows+1, 1, mk(func(b []byte) []byte {
			b = append(b, encRLE, byte(relation.KindInt))
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, maxEncodedRows+1)
			b = binary.AppendVarint(b, 0)
			return b
		})),
	}
}

func TestMaliciousEncodedRejected(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	wantErr := map[string]string{
		"dict-index-out-of-range": "out of range",
		"dict-oversized":          "exceeds 8 non-null cells",
		"rle-run-overflow":        "overflows",
		"rle-run-undercount":      "cover 3 of 8",
		"rle-zero-run":            "zero-length run",
		"rle-bool-kind":           "not dict/rle-encodable",
		"bad-encoding-byte":       "bad column encoding",
		"encoded-huge-claim":      "exceeds limit",
	}
	for name, data := range maliciousEncoded() {
		_, err := Decode(s, data)
		if err == nil {
			t.Fatalf("%s: decoded", name)
		}
		if !strings.Contains(err.Error(), wantErr[name]) {
			t.Fatalf("%s: wrong rejection: %v", name, err)
		}
	}
}

// TestDecodeRejectsUnknownFlags: flag bits the decoder does not
// understand mean a format it cannot faithfully parse.
func TestDecodeRejectsUnknownFlags(t *testing.T) {
	s := kitchenSinkSchema()
	data, err := Encode(s, kitchenSinkRows(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data[2] |= 0x40
	if _, err := Decode(s, data); err == nil || !strings.Contains(err.Error(), "unknown flags") {
		t.Fatalf("unknown flag bit: err = %v", err)
	}
}

// TestEncodedRoundTrip: the selection path must be a bitwise identity
// over the kitchen sink (mixed kinds, nulls, NaNs, huge cells) and over
// encoding-friendly shapes, with and without DEFLATE on top.
func TestEncodedRoundTrip(t *testing.T) {
	type fixture struct {
		name string
		s    relation.Schema
		rows []relation.Row
	}
	lowCard := func() ([]relation.Row, relation.Schema) {
		s := relation.NewSchema(
			relation.Column{Name: "gear", Kind: relation.KindInt},
			relation.Column{Name: "flag", Kind: relation.KindString},
			relation.Column{Name: "temp", Kind: relation.KindFloat},
		)
		var rows []relation.Row
		for i := 0; i < 700; i++ {
			r := relation.Row{
				relation.Int(int64(i / 100)),
				relation.Str([]string{"ok", "warn"}[i%2]),
				relation.Float(float64((i / 50) % 4)),
			}
			if i%97 == 0 {
				r[2] = relation.Null()
			}
			rows = append(rows, r)
		}
		return rows, s
	}
	lcRows, lcSchema := lowCard()
	fixtures := []fixture{
		{"kitchen-sink", kitchenSinkSchema(), kitchenSinkRows()},
		{"low-cardinality", lcSchema, lcRows},
	}
	for _, fx := range fixtures {
		for _, compress := range []bool{false, true} {
			data, err := Encode(fx.s, fx.rows, Options{Compress: compress, Encodings: true})
			if err != nil {
				t.Fatalf("%s compress=%v: %v", fx.name, compress, err)
			}
			if data[2]&flagEncoded == 0 {
				t.Fatalf("%s: flagEncoded not set", fx.name)
			}
			got, err := Decode(fx.s, data)
			if err != nil {
				t.Fatalf("%s compress=%v: %v", fx.name, compress, err)
			}
			assertRowsEqual(t, got, fx.rows)
		}
	}
}

// TestEncodingSelection pins which representation wins for canonical
// column shapes, via the per-kind counters and payload sizes.
func TestEncodingSelection(t *testing.T) {
	snap := func() map[string]int64 {
		return map[string]int64{
			"raw":  mEncodings.With("raw").Value(),
			"dict": mEncodings.With("dict").Value(),
			"rle":  mEncodings.With("rle").Value(),
		}
	}
	cases := []struct {
		name string
		want string
		cell func(i int) relation.Value
	}{
		{"constant-int", "rle", func(i int) relation.Value { return relation.Int(3) }},
		{"piecewise-float", "rle", func(i int) relation.Value { return relation.Float(float64(i / 64)) }},
		{"alternating-string", "dict", func(i int) relation.Value { return relation.Str([]string{"drive", "park"}[i%2]) }},
		{"distinct-int", "raw", func(i int) relation.Value { return relation.Int(int64(i) * 977) }},
	}
	s := relation.NewSchema(relation.Column{Name: "c", Kind: relation.KindInt})
	for _, tc := range cases {
		rows := make([]relation.Row, 512)
		for i := range rows {
			rows[i] = relation.Row{tc.cell(i)}
		}
		before := snap()
		data, err := Encode(s, rows, Options{Encodings: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		after := snap()
		for _, kind := range []string{"raw", "dict", "rle"} {
			wantDelta := int64(0)
			if kind == tc.want {
				wantDelta = 1
			}
			if d := after[kind] - before[kind]; d != wantDelta {
				t.Fatalf("%s: %s columns = %d, want %d", tc.name, kind, d, wantDelta)
			}
		}
		raw, err := Encode(s, rows, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if tc.want != "raw" && len(data) >= len(raw) {
			t.Fatalf("%s: %s payload %dB is not smaller than raw %dB", tc.name, tc.want, len(data), len(raw))
		}
		got, err := Decode(s, data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		assertRowsEqual(t, got, rows)
	}
}

// TestDebugMutateRuns: swapping two run lengths (sum preserved) yields
// a structurally valid payload that decodes to the WRONG rows — the
// corruption difftest's injected-bug shape must be expressible.
func TestDebugMutateRuns(t *testing.T) {
	defer func() { DebugMutateRuns = nil }()
	DebugMutateRuns = func(lens []int) {
		if len(lens) >= 2 {
			lens[0], lens[1] = lens[1], lens[0]
		}
	}
	s := relation.NewSchema(relation.Column{Name: "c", Kind: relation.KindInt})
	rows := make([]relation.Row, 150)
	for i := range rows {
		v := int64(1)
		if i >= 100 {
			v = 2
		}
		rows[i] = relation.Row{relation.Int(v)}
	}
	data, err := Encode(s, rows, Options{Encodings: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(s, data)
	if err != nil {
		t.Fatalf("mutated runs must stay structurally valid: %v", err)
	}
	// Runs [100×1, 50×2] become [50×1, 100×2]: rows 50..99 flip to 2.
	if got[49][0].I != 1 || got[50][0].I != 2 || got[99][0].I != 2 {
		t.Fatalf("run swap did not take: got[49]=%v got[50]=%v got[99]=%v", got[49][0], got[50][0], got[99][0])
	}
}

// TestCompressLevels: every flate level round-trips; an out-of-range
// level surfaces as an encode error, not silence.
func TestCompressLevels(t *testing.T) {
	s := kitchenSinkSchema()
	rows := kitchenSinkRows()
	for _, lvl := range []int{0, flate.BestSpeed, flate.DefaultCompression, flate.BestCompression, flate.HuffmanOnly} {
		data, err := Encode(s, rows, Options{Compress: true, Level: lvl})
		if err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		if !IsCompressed(data) {
			t.Fatalf("level %d: not flagged compressed", lvl)
		}
		got, err := Decode(s, data)
		if err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		assertRowsEqual(t, got, rows)
	}
	if _, err := Encode(s, rows, Options{Compress: true, Level: 42}); err == nil {
		t.Fatal("level 42 accepted")
	}
}
