package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"ivnt/internal/relation"
)

func sampleTrace(n int) *Trace {
	tr := &Trace{}
	protos := []Protocol{ProtoCAN, ProtoLIN, ProtoSOMEIP}
	chans := []string{"FC", "K-LIN", "ETH1"}
	for i := 0; i < n; i++ {
		tr.Append(ByteTuple{
			T:       float64(i) * 0.01,
			Channel: chans[i%3],
			MsgID:   uint32(3 + i%5),
			Payload: []byte{byte(i), byte(i * 2), byte(i % 7)},
			Info:    MsgInfo{Protocol: protos[i%3], DLC: 3},
		})
	}
	return tr
}

func TestProtocolStringRoundTrip(t *testing.T) {
	for _, p := range []Protocol{ProtoCAN, ProtoLIN, ProtoSOMEIP} {
		got, err := ParseProtocol(p.String())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	}
	if _, err := ParseProtocol("FLEXRAY"); err == nil {
		t.Fatal("unknown protocol must error")
	}
	if _, err := ParseProtocol("SOMEIP"); err != nil {
		t.Fatal("SOMEIP alias must parse")
	}
}

func TestTraceDuration(t *testing.T) {
	tr := sampleTrace(101)
	if d := tr.Duration(); d != 1.0 {
		t.Fatalf("duration = %v, want 1.0", d)
	}
	if (&Trace{}).Duration() != 0 {
		t.Fatal("empty trace duration must be 0")
	}
	if tr.Len() != 101 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestToFromRelationRoundTrip(t *testing.T) {
	tr := sampleTrace(50)
	rel := tr.ToRelation(4)
	if rel.NumRows() != 50 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	if rel.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", rel.NumPartitions())
	}
	back, err := FromRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Tuples {
		a, b := tr.Tuples[i], back.Tuples[i]
		if a.T != b.T || a.Channel != b.Channel || a.MsgID != b.MsgID ||
			a.Info != b.Info || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestFromRelationMissingColumn(t *testing.T) {
	rel := relation.New(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if _, err := FromRelation(rel); err == nil {
		t.Fatal("expected error for missing columns")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace(200)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Tuples {
		a, b := tr.Tuples[i], back.Tuples[i]
		if a.T != b.T || a.Channel != b.Channel || a.MsgID != b.MsgID ||
			a.Info != b.Info || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	tr := sampleTrace(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must fail")
	}

	bad = append([]byte{}, data...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version must fail")
	}

	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated stream must fail")
	}

	if _, err := ReadBinary(bytes.NewReader(data[:6])); err == nil {
		t.Fatal("short header must fail")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journey.ivtr")
	tr := sampleTrace(30)
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 30 {
		t.Fatalf("len = %d", back.Len())
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.ivtr")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace(25)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Tuples {
		a, b := tr.Tuples[i], back.Tuples[i]
		if a.T != b.T || a.Channel != b.Channel || a.MsgID != b.MsgID ||
			a.Info != b.Info || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestCSVRejectsBadRows(t *testing.T) {
	cases := []string{
		"t,proto,channel,mid,dlc,payload\nxx,CAN,FC,3,2,0102\n",
		"t,proto,channel,mid,dlc,payload\n1,NOPE,FC,3,2,0102\n",
		"t,proto,channel,mid,dlc,payload\n1,CAN,FC,yy,2,0102\n",
		"t,proto,channel,mid,dlc,payload\n1,CAN,FC,3,zz,0102\n",
		"t,proto,channel,mid,dlc,payload\n1,CAN,FC,3,2,010\n",
		"t,proto,channel,mid,dlc,payload\n1,CAN,FC,3,2,01gg\n",
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestSignalsFromRelation(t *testing.T) {
	rel := relation.FromRows(SignalSchema(), []relation.Row{
		{relation.Float(2), relation.Str("wpos"), relation.Float(45), relation.Str("FC")},
		{relation.Float(2.5), relation.Str("wpos"), relation.Float(60), relation.Str("FC")},
	})
	sig, err := SignalsFromRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 2 || sig[0].SID != "wpos" || sig[1].V.AsFloat() != 60 {
		t.Fatalf("signals = %+v", sig)
	}
	bad := relation.New(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if _, err := SignalsFromRelation(bad); err == nil {
		t.Fatal("missing columns must fail")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ts []float64, payload []byte, mid uint32, dlc uint8) bool {
		tr := &Trace{}
		for _, tv := range ts {
			tr.Append(ByteTuple{T: tv, Channel: "FC", MsgID: mid, Payload: payload,
				Info: MsgInfo{Protocol: ProtoCAN, DLC: dlc}})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if back.Len() != tr.Len() {
			return false
		}
		for i := range tr.Tuples {
			if tr.Tuples[i].T != back.Tuples[i].T && !(tr.Tuples[i].T != tr.Tuples[i].T) { // NaN-safe
				return false
			}
			if !bytes.Equal(tr.Tuples[i].Payload, back.Tuples[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeInterleavesByTime(t *testing.T) {
	a := &Trace{}
	b := &Trace{}
	for i := 0; i < 10; i++ {
		a.Append(ByteTuple{T: float64(i * 2), Channel: "FC", MsgID: 1,
			Info: MsgInfo{Protocol: ProtoCAN}})
		b.Append(ByteTuple{T: float64(i*2 + 1), Channel: "DC", MsgID: 2,
			Info: MsgInfo{Protocol: ProtoCAN}})
	}
	m := Merge(a, b)
	if m.Len() != 20 {
		t.Fatalf("merged len = %d", m.Len())
	}
	for i := 1; i < m.Len(); i++ {
		if m.Tuples[i].T < m.Tuples[i-1].T {
			t.Fatalf("merge broke order at %d", i)
		}
	}
	if m.Tuples[0].Channel != "FC" || m.Tuples[1].Channel != "DC" {
		t.Fatalf("interleave wrong: %v %v", m.Tuples[0].Channel, m.Tuples[1].Channel)
	}
	// Nil and empty inputs are tolerated.
	if got := Merge(nil, &Trace{}, a); got.Len() != 10 {
		t.Fatalf("merge with nil = %d", got.Len())
	}
	if got := Merge(); got.Len() != 0 {
		t.Fatal("empty merge must be empty")
	}
}

func TestMergeTiesKeepInputOrder(t *testing.T) {
	a := &Trace{Tuples: []ByteTuple{{T: 1, MsgID: 1, Info: MsgInfo{Protocol: ProtoCAN}}}}
	b := &Trace{Tuples: []ByteTuple{{T: 1, MsgID: 2, Info: MsgInfo{Protocol: ProtoCAN}}}}
	m := Merge(a, b)
	if m.Tuples[0].MsgID != 1 || m.Tuples[1].MsgID != 2 {
		t.Fatalf("tie order wrong: %v", m.Tuples)
	}
}

func TestWriteBinaryRejectsOversizedFields(t *testing.T) {
	long := make([]byte, 0x10000+1)
	tr := &Trace{Tuples: []ByteTuple{{T: 1, Channel: "FC", Payload: long,
		Info: MsgInfo{Protocol: ProtoCAN}}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err == nil {
		t.Fatal("oversized payload must fail")
	}
	tr = &Trace{Tuples: []ByteTuple{{T: 1, Channel: strings.Repeat("x", 0x10000+1),
		Info: MsgInfo{Protocol: ProtoCAN}}}}
	buf.Reset()
	if err := WriteBinary(&buf, tr); err == nil {
		t.Fatal("oversized channel name must fail")
	}
}

func TestCapHintBounds(t *testing.T) {
	if capHint(10) != 10 {
		t.Fatal("small counts pass through")
	}
	if capHint(1<<40) != 1<<20 {
		t.Fatal("huge counts must be clamped")
	}
}

func TestBinaryRejectsInvalidProtocolByte(t *testing.T) {
	tr := sampleTrace(1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header is 4+1+8 = 13 bytes, then t (8 bytes), then the protocol
	// byte of record 0.
	data[13+8] = 99
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("invalid protocol byte must fail")
	}
}
