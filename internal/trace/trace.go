// Package trace implements the formal trace model of Sec. 2: raw traces
// are ordered byte sequences K_b of tuples k_b = (t, l, b_id, m_id,
// m_info); interpretation turns them into signal-instance sequences K_s
// of (t, ŝ, b_id) with ŝ = (v, s_id).
//
// The package also defines the canonical relational schemas these
// sequences take when handed to the engine, plus binary and CSV
// persistence for recorded traces.
package trace

import (
	"fmt"

	"ivnt/internal/relation"
)

// Protocol identifies the bus protocol a message was recorded from.
// The framework combines multiple protocols in one extraction run
// (Table 1 mixes CAN, K-LIN and SOME/IP).
type Protocol uint8

// Supported in-vehicle protocols.
const (
	ProtoCAN Protocol = iota
	ProtoLIN
	ProtoSOMEIP
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoCAN:
		return "CAN"
	case ProtoLIN:
		return "LIN"
	case ProtoSOMEIP:
		return "SOME/IP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// ParseProtocol inverts String.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "CAN":
		return ProtoCAN, nil
	case "LIN":
		return ProtoLIN, nil
	case "SOME/IP", "SOMEIP":
		return ProtoSOMEIP, nil
	default:
		return 0, fmt.Errorf("trace: unknown protocol %q", s)
	}
}

// MsgInfo is m_info: the protocol-specific message fields needed for
// translation (e.g. the DLC in CAN).
type MsgInfo struct {
	Protocol Protocol
	// DLC is the data length code (CAN/LIN) or payload length
	// (SOME/IP).
	DLC uint8
}

// ByteTuple is one k_b = (t, l, b_id, m_id, m_info): a raw recorded
// message occurrence.
type ByteTuple struct {
	// T is the record timestamp in seconds from trace start.
	T float64
	// Payload is l, the message payload bytes.
	Payload []byte
	// Channel is b_id, e.g. "FC" for FA-CAN.
	Channel string
	// MsgID is m_id; for CAN it is the CAN identifier.
	MsgID uint32
	// Info is m_info.
	Info MsgInfo
}

// Trace is K_b, an ordered byte sequence.
type Trace struct {
	Tuples []ByteTuple
}

// Len returns |K_b|.
func (tr *Trace) Len() int { return len(tr.Tuples) }

// Append adds a tuple preserving order.
func (tr *Trace) Append(k ByteTuple) { tr.Tuples = append(tr.Tuples, k) }

// Duration returns the time span covered by the trace.
func (tr *Trace) Duration() float64 {
	if len(tr.Tuples) == 0 {
		return 0
	}
	return tr.Tuples[len(tr.Tuples)-1].T - tr.Tuples[0].T
}

// Canonical column names of the K_b relation.
const (
	ColT     = "t"
	ColBID   = "bid"
	ColMID   = "mid"
	ColL     = "l"
	ColProto = "proto"
	ColDLC   = "dlc"
)

// Canonical column names added by interpretation (the K_s relation).
const (
	ColSID  = "sid"
	ColV    = "v"
	ColLRel = "lrel"
)

// ByteSchema returns the relational schema of K_b.
func ByteSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: ColT, Kind: relation.KindFloat},
		relation.Column{Name: ColBID, Kind: relation.KindString},
		relation.Column{Name: ColMID, Kind: relation.KindInt},
		relation.Column{Name: ColL, Kind: relation.KindBytes},
		relation.Column{Name: ColProto, Kind: relation.KindString},
		relation.Column{Name: ColDLC, Kind: relation.KindInt},
	)
}

// SignalSchema returns the relational schema of K_s rows: one
// interpreted signal instance per row.
func SignalSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: ColT, Kind: relation.KindFloat},
		relation.Column{Name: ColSID, Kind: relation.KindString},
		relation.Column{Name: ColV, Kind: relation.KindNull},
		relation.Column{Name: ColBID, Kind: relation.KindString},
	)
}

// ToRelation converts K_b into its relational form, split into parts
// partitions.
func (tr *Trace) ToRelation(parts int) *relation.Relation {
	rows := make([]relation.Row, len(tr.Tuples))
	for i, k := range tr.Tuples {
		rows[i] = relation.Row{
			relation.Float(k.T),
			relation.Str(k.Channel),
			relation.Int(int64(k.MsgID)),
			relation.Bytes(k.Payload),
			relation.Str(k.Info.Protocol.String()),
			relation.Int(int64(k.Info.DLC)),
		}
	}
	return relation.FromRows(ByteSchema(), rows).Repartition(parts)
}

// FromRelation reassembles a Trace from a K_b relation (inverse of
// ToRelation).
func FromRelation(rel *relation.Relation) (*Trace, error) {
	s := rel.Schema
	for _, c := range ByteSchema().Cols {
		if !s.Has(c.Name) {
			return nil, fmt.Errorf("trace: relation lacks column %q", c.Name)
		}
	}
	ti, bi, mi, li := s.MustIndex(ColT), s.MustIndex(ColBID), s.MustIndex(ColMID), s.MustIndex(ColL)
	pi, di := s.MustIndex(ColProto), s.MustIndex(ColDLC)
	tr := &Trace{Tuples: make([]ByteTuple, 0, rel.NumRows())}
	for _, part := range rel.Partitions {
		for _, r := range part {
			proto, err := ParseProtocol(r[pi].AsString())
			if err != nil {
				return nil, err
			}
			tr.Append(ByteTuple{
				T:       r[ti].AsFloat(),
				Channel: r[bi].AsString(),
				MsgID:   uint32(r[mi].AsInt()),
				Payload: r[li].B,
				Info:    MsgInfo{Protocol: proto, DLC: uint8(r[di].AsInt())},
			})
		}
	}
	return tr, nil
}

// SignalInstance is one interpreted occurrence (t, ŝ, b_id) with
// ŝ = (v, s_id).
type SignalInstance struct {
	T       float64
	SID     string
	V       relation.Value
	Channel string
}

// SignalsFromRelation extracts signal instances from a K_s-shaped
// relation.
func SignalsFromRelation(rel *relation.Relation) ([]SignalInstance, error) {
	s := rel.Schema
	for _, name := range []string{ColT, ColSID, ColV, ColBID} {
		if !s.Has(name) {
			return nil, fmt.Errorf("trace: relation lacks column %q", name)
		}
	}
	ti, si, vi, bi := s.MustIndex(ColT), s.MustIndex(ColSID), s.MustIndex(ColV), s.MustIndex(ColBID)
	out := make([]SignalInstance, 0, rel.NumRows())
	for _, part := range rel.Partitions {
		for _, r := range part {
			out = append(out, SignalInstance{
				T:       r[ti].AsFloat(),
				SID:     r[si].AsString(),
				V:       r[vi],
				Channel: r[bi].AsString(),
			})
		}
	}
	return out, nil
}

// Merge combines multiple time-ordered traces (e.g. recordings from
// separate loggers on different buses of the same drive) into one
// time-ordered trace. Inputs must each be sorted by T; ties keep the
// input order.
func Merge(traces ...*Trace) *Trace {
	total := 0
	for _, tr := range traces {
		if tr != nil {
			total += tr.Len()
		}
	}
	out := &Trace{Tuples: make([]ByteTuple, 0, total)}
	idx := make([]int, len(traces))
	for {
		best := -1
		var bestT float64
		for i, tr := range traces {
			if tr == nil || idx[i] >= tr.Len() {
				continue
			}
			t := tr.Tuples[idx[i]].T
			if best < 0 || t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			return out
		}
		out.Append(traces[best].Tuples[idx[best]])
		idx[best]++
	}
}
