package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// Binary trace format ("IVTR"): a compact record-per-message log,
// standing in for the proprietary logger formats (BLF/ASC-class) that
// in-vehicle monitoring devices write.
//
//	magic "IVTR" | version u8 | count u64 |
//	repeat count times:
//	  t f64 | proto u8 | dlc u8 | mid u32 | chanLen u16 | chan |
//	  payloadLen u16 | payload
//
// All integers little-endian.

const (
	binMagic   = "IVTR"
	binVersion = 1
)

// WriteBinary writes the trace in IVTR format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binVersion); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(tr.Tuples)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for i := range tr.Tuples {
		k := &tr.Tuples[i]
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(k.T))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(k.Info.Protocol)); err != nil {
			return err
		}
		if err := bw.WriteByte(k.Info.DLC); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], k.MsgID)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		if len(k.Channel) > 0xFFFF {
			return fmt.Errorf("trace: channel name too long (%d bytes)", len(k.Channel))
		}
		binary.LittleEndian.PutUint16(buf[:2], uint16(len(k.Channel)))
		if _, err := bw.Write(buf[:2]); err != nil {
			return err
		}
		if _, err := bw.WriteString(k.Channel); err != nil {
			return err
		}
		if len(k.Payload) > 0xFFFF {
			return fmt.Errorf("trace: payload too long (%d bytes)", len(k.Payload))
		}
		binary.LittleEndian.PutUint16(buf[:2], uint16(len(k.Payload)))
		if _, err := bw.Write(buf[:2]); err != nil {
			return err
		}
		if _, err := bw.Write(k.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses an IVTR stream.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(binMagic)+1+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:4]) != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:4])
	}
	if head[4] != binVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", head[4])
	}
	count := binary.LittleEndian.Uint64(head[5:])
	tr := &Trace{Tuples: make([]ByteTuple, 0, capHint(count))}
	var buf [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		t := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
		pb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if pb > uint8(ProtoSOMEIP) {
			return nil, fmt.Errorf("trace: record %d: invalid protocol %d", i, pb)
		}
		dlc, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		mid := binary.LittleEndian.Uint32(buf[:4])
		if _, err := io.ReadFull(br, buf[:2]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		chanLen := binary.LittleEndian.Uint16(buf[:2])
		chanBytes := make([]byte, chanLen)
		if _, err := io.ReadFull(br, chanBytes); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if _, err := io.ReadFull(br, buf[:2]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		payLen := binary.LittleEndian.Uint16(buf[:2])
		payload := make([]byte, payLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		tr.Append(ByteTuple{
			T:       t,
			Channel: string(chanBytes),
			MsgID:   mid,
			Payload: payload,
			Info:    MsgInfo{Protocol: Protocol(pb), DLC: dlc},
		})
	}
	return tr, nil
}

// capHint bounds the pre-allocation so a corrupted count field cannot
// OOM the reader.
func capHint(count uint64) int {
	const max = 1 << 20
	if count > max {
		return max
	}
	return int(count)
}

// WriteFile writes the trace to path in IVTR format.
func WriteFile(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads an IVTR file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteCSV writes the trace as text (t,proto,channel,mid,dlc,payloadHex)
// for interoperability with spreadsheet-class inspection.
func WriteCSV(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "proto", "channel", "mid", "dlc", "payload"}); err != nil {
		return err
	}
	for i := range tr.Tuples {
		k := &tr.Tuples[i]
		rec := []string{
			strconv.FormatFloat(k.T, 'g', -1, 64),
			k.Info.Protocol.String(),
			k.Channel,
			strconv.FormatUint(uint64(k.MsgID), 10),
			strconv.FormatUint(uint64(k.Info.DLC), 10),
			fmt.Sprintf("%x", k.Payload),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the CSV form written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return &Trace{}, nil
	}
	tr := &Trace{Tuples: make([]ByteTuple, 0, len(recs)-1)}
	for i, rec := range recs[1:] {
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: bad t %q", i+1, rec[0])
		}
		proto, err := ParseProtocol(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %v", i+1, err)
		}
		mid, err := strconv.ParseUint(rec[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: bad mid %q", i+1, rec[3])
		}
		dlc, err := strconv.ParseUint(rec[4], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: bad dlc %q", i+1, rec[4])
		}
		payload, err := parseHex(rec[5])
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: bad payload %q", i+1, rec[5])
		}
		tr.Append(ByteTuple{
			T:       t,
			Channel: rec[2],
			MsgID:   uint32(mid),
			Payload: payload,
			Info:    MsgInfo{Protocol: proto, DLC: uint8(dlc)},
		})
	}
	return tr, nil
}

func parseHex(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex length %d", len(s))
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi, err := hexNibble(s[2*i])
		if err != nil {
			return nil, err
		}
		lo, err := hexNibble(s[2*i+1])
		if err != nil {
			return nil, err
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexNibble(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, nil
	default:
		return 0, fmt.Errorf("bad hex digit %q", c)
	}
}
