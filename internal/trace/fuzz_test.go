package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hardens the IVTR reader against corrupted logger
// output: it must either parse or error, never panic, and everything it
// parses must re-serialize.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleTrace(5)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IVTR"))
	f.Add([]byte{})
	data := append([]byte{}, buf.Bytes()...)
	data[7] = 0xFF // absurd count
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("parsed trace failed to serialize: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil || back.Len() != tr.Len() {
			t.Fatalf("re-read failed: %v (%d vs %d)", err, back.Len(), tr.Len())
		}
	})
}

// FuzzReadCSV covers the text reader the same way.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleTrace(3)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("t,proto,channel,mid,dlc,payload\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, tr); err != nil {
			t.Fatalf("parsed trace failed to serialize: %v", err)
		}
	})
}
