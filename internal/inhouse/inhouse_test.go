package inhouse

import (
	"context"
	"sort"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/gen"
	"ivnt/internal/interp"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

func dataset() (*gen.Dataset, *trace.Trace) {
	d := gen.Build(gen.SYN)
	return d, d.Generate(5000)
}

func TestIngestThenExtract(t *testing.T) {
	d, tr := dataset()
	tool, err := New(d.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tool.Extract(d.SelectSIDs(1)...); err == nil {
		t.Fatal("extract before ingest must fail")
	}
	if err := tool.Ingest(tr); err != nil {
		t.Fatal(err)
	}
	sids := d.SelectSIDs(5)
	out, err := tool.Extract(sids...)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("extracted %d signals", len(out))
	}
	total := 0
	for _, inst := range out {
		total += len(inst)
	}
	if total == 0 {
		t.Fatal("no instances extracted")
	}
	if tool.StoredInstances() < total {
		t.Fatal("store smaller than extraction")
	}
}

func TestExtractUnknownSignal(t *testing.T) {
	d, tr := dataset()
	tool, err := New(d.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Ingest(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := tool.Extract("no.such.signal"); err == nil {
		t.Fatal("undocumented signal must fail")
	}
}

func TestReset(t *testing.T) {
	d, tr := dataset()
	tool, err := New(d.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Ingest(tr); err != nil {
		t.Fatal(err)
	}
	tool.Reset()
	if tool.StoredInstances() != 0 {
		t.Fatal("reset kept instances")
	}
	if _, err := tool.Extract(d.SelectSIDs(1)...); err == nil {
		t.Fatal("extract after reset must fail")
	}
}

func TestNewRejectsBadCatalog(t *testing.T) {
	bad := &rules.Catalog{Translations: []rules.Translation{
		{SID: "x", Channel: "FC", Rule: "", LastByte: 1},
	}}
	if _, err := New(bad); err == nil {
		t.Fatal("invalid catalog must fail")
	}
}

// TestMatchesProposedPipeline is the cross-validation: for the same
// trace and signals, the baseline's interpreted values must equal what
// the distributed pipeline extracts (they implement the same
// interpretation semantics, differing only in cost model).
func TestMatchesProposedPipeline(t *testing.T) {
	d, tr := dataset()
	sids := d.SelectSIDs(4)

	tool, err := New(d.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Ingest(tr); err != nil {
		t.Fatal(err)
	}
	baseline, err := tool.Extract(sids...)
	if err != nil {
		t.Fatal(err)
	}

	ucomb, err := d.Catalog.Select(sids...)
	if err != nil {
		t.Fatal(err)
	}
	ks, _, err := interp.Extract(context.Background(), engine.NewLocal(4),
		tr.ToRelation(8), ucomb, interp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	proposed, err := trace.SignalsFromRelation(ks)
	if err != nil {
		t.Fatal(err)
	}
	bySID := map[string][]trace.SignalInstance{}
	for _, s := range proposed {
		bySID[s.SID] = append(bySID[s.SID], s)
	}
	for _, sid := range sids {
		a, b := baseline[sid], bySID[sid]
		sort.Slice(a, func(i, j int) bool {
			if a[i].T != a[j].T {
				return a[i].T < a[j].T
			}
			return a[i].Channel < a[j].Channel
		})
		sort.Slice(b, func(i, j int) bool {
			if b[i].T != b[j].T {
				return b[i].T < b[j].T
			}
			return b[i].Channel < b[j].Channel
		})
		if len(a) != len(b) {
			t.Fatalf("%s: counts differ: baseline %d vs proposed %d", sid, len(a), len(b))
		}
		for i := range a {
			if a[i].T != b[i].T || !a[i].V.Equal(b[i].V) {
				t.Fatalf("%s[%d]: baseline (%v, %v) vs proposed (%v, %v)",
					sid, i, a[i].T, a[i].V, b[i].T, b[i].V)
			}
		}
	}
}
