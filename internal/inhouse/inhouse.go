// Package inhouse implements the comparison baseline of Sec. 5.1: an
// OEM in-house analyzer of the Wireshark/CARMEN class. Its cost model
// follows the paper's characterization exactly: the tool must *ingest*
// a trace before anything can be extracted — one sequential loop over
// all data points that interprets every documented signal on the way in
// — so extraction time equals ingest time, scales linearly with trace
// rows, and does not depend on how many signals the analyst wants.
package inhouse

import (
	"fmt"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

// Tool is one analyzer instance, parameterized with the full signal
// documentation (the tool has no notion of per-domain preselection).
type Tool struct {
	catalog *rules.Catalog

	// byPair indexes translations by (channel, msgID) for the ingest
	// loop.
	byPair map[pairKey][]compiled

	// store is the interpreted in-memory database filled by Ingest.
	store    map[string][]trace.SignalInstance
	ingested bool
}

type pairKey struct {
	channel string
	msgID   uint32
}

type compiled struct {
	sid       string
	firstByte int
	lastByte  int
	prog      *expr.Program
}

// interpSchema is the row shape the per-signal rules see during
// sequential interpretation.
func interpSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: trace.ColT, Kind: relation.KindFloat},
		relation.Column{Name: trace.ColBID, Kind: relation.KindString},
		relation.Column{Name: trace.ColSID, Kind: relation.KindString},
		relation.Column{Name: trace.ColLRel, Kind: relation.KindBytes},
		relation.Column{Name: "l", Kind: relation.KindBytes},
	)
}

// New compiles the catalog into a ready tool.
func New(catalog *rules.Catalog) (*Tool, error) {
	if err := catalog.Validate(); err != nil {
		return nil, err
	}
	t := &Tool{
		catalog: catalog,
		byPair:  map[pairKey][]compiled{},
		store:   map[string][]trace.SignalInstance{},
	}
	schema := interpSchema()
	for i := range catalog.Translations {
		u := &catalog.Translations[i]
		prog, err := expr.Compile(u.Rule, schema)
		if err != nil {
			return nil, fmt.Errorf("inhouse: %s: %w", u.SID, err)
		}
		k := pairKey{channel: u.Channel, msgID: u.MsgID}
		t.byPair[k] = append(t.byPair[k], compiled{
			sid:       u.SID,
			firstByte: u.FirstByte,
			lastByte:  u.LastByte,
			prog:      prog,
		})
	}
	return t, nil
}

// Ingest performs the sequential load: every tuple is visited once and
// every documented signal it carries is interpreted and stored —
// "performing interpretation on ingest". Deliberately single-threaded;
// that IS the baseline.
func (t *Tool) Ingest(tr *trace.Trace) error {
	row := make(relation.Row, 5)
	env := expr.SingleRowEnv{}
	for i := range tr.Tuples {
		k := &tr.Tuples[i]
		for _, c := range t.byPair[pairKey{channel: k.Channel, msgID: k.MsgID}] {
			if c.lastByte >= len(k.Payload) {
				continue // documented bytes missing from this instance
			}
			lrel := k.Payload[c.firstByte : c.lastByte+1]
			row[0] = relation.Float(k.T)
			row[1] = relation.Str(k.Channel)
			row[2] = relation.Str(c.sid)
			row[3] = relation.Bytes(lrel)
			row[4] = relation.Bytes(k.Payload)
			env.Row = row
			v := c.prog.Eval(env)
			t.store[c.sid] = append(t.store[c.sid], trace.SignalInstance{
				T: k.T, SID: c.sid, V: v, Channel: k.Channel,
			})
		}
	}
	t.ingested = true
	return nil
}

// Extract returns the stored instances for the requested signals. It
// requires a prior Ingest — the tool cannot extract from raw traces,
// which is precisely why its extraction time is the ingest time.
func (t *Tool) Extract(sids ...string) (map[string][]trace.SignalInstance, error) {
	if !t.ingested {
		return nil, fmt.Errorf("inhouse: extract before ingest (the tool must load the journey first)")
	}
	out := make(map[string][]trace.SignalInstance, len(sids))
	for _, sid := range sids {
		inst, ok := t.store[sid]
		if !ok {
			if len(t.catalog.Lookup(sid)) == 0 {
				return nil, fmt.Errorf("inhouse: signal %q not documented", sid)
			}
			inst = nil // documented but never occurred
		}
		out[sid] = inst
	}
	return out, nil
}

// StoredInstances reports the size of the interpreted database; the
// paper's memory-efficiency argument (Sec. 3.2) is that this eager
// representation can be ~8× the raw trace.
func (t *Tool) StoredInstances() int {
	n := 0
	for _, inst := range t.store {
		n += len(inst)
	}
	return n
}

// Reset drops the ingested database (a new journey requires a fresh
// ingest, the per-journey "up to 2 hours" cost the paper cites).
func (t *Tool) Reset() {
	t.store = map[string][]trace.SignalInstance{}
	t.ingested = false
}
