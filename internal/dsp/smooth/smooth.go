// Package smooth provides the smoothing step of branch α (Sec. 4.2):
// centered moving average and exponential smoothing over cleaned
// (outlier-free) numeric sequences.
package smooth

// MovingAverage returns the centered moving average with the given
// total window width (forced odd, minimum 1). Edges shrink the window
// symmetrically, so output length equals input length.
func MovingAverage(xs []float64, window int) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	// Prefix sums for O(n) averaging.
	prefix := make([]float64, n+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
	}
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}

// Exponential returns single exponential smoothing with factor alpha in
// (0,1]; alpha outside the range is clamped.
func Exponential(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	if alpha <= 0 {
		alpha = 0.1
	}
	if alpha > 1 {
		alpha = 1
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}
