package smooth

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMovingAverageBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("ma[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageWindowOneIsIdentity(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	got := MovingAverage(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("window 1 must be identity: %v", got)
		}
	}
}

func TestMovingAverageEvenWindowAndEmpty(t *testing.T) {
	if got := MovingAverage(nil, 3); len(got) != 0 {
		t.Fatal("empty input must stay empty")
	}
	// Even window is bumped to odd; must not panic and keep length.
	xs := []float64{1, 2, 3, 4}
	if got := MovingAverage(xs, 2); len(got) != 4 {
		t.Fatalf("length = %d", len(got))
	}
}

func TestExponential(t *testing.T) {
	xs := []float64{0, 10, 10, 10}
	got := Exponential(xs, 0.5)
	want := []float64{0, 5, 7.5, 8.75}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("exp[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Alpha 1 is identity.
	got = Exponential(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("alpha=1 must be identity")
		}
	}
	// Out-of-range alphas are clamped, no panic.
	_ = Exponential(xs, -1)
	_ = Exponential(xs, 5)
	if got := Exponential(nil, 0.5); len(got) != 0 {
		t.Fatal("empty input must stay empty")
	}
}

func TestMovingAveragePreservesConstantProperty(t *testing.T) {
	f := func(c float64, n, w uint8) bool {
		if math.IsNaN(c) || math.Abs(c) > 1e12 {
			return true
		}
		xs := make([]float64, int(n)%50+1)
		for i := range xs {
			xs[i] = c
		}
		for _, y := range MovingAverage(xs, int(w)) {
			if math.Abs(y-c) > 1e-9*math.Max(1, math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageBoundsProperty(t *testing.T) {
	// Averages stay within [min, max] of the input.
	f := func(raw []float64, w uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) <= 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		for _, y := range MovingAverage(xs, int(w)) {
			if y < lo-1e-9 || y > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
