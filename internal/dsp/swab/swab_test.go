package swab

import (
	"math"
	"testing"
	"testing/quick"
)

// ramp builds ts = 0,1,2,... and a piecewise-linear xs.
func piecewise() (ts, xs []float64) {
	for i := 0; i < 30; i++ {
		ts = append(ts, float64(i))
		switch {
		case i < 10:
			xs = append(xs, float64(i)) // slope +1
		case i < 20:
			xs = append(xs, 10) // flat
		default:
			xs = append(xs, 10-2*float64(i-20)) // slope -2
		}
	}
	return ts, xs
}

func TestFitExactLine(t *testing.T) {
	ts := []float64{0, 1, 2, 3}
	xs := []float64{5, 7, 9, 11} // 2t + 5
	slope, intercept, sse := fit(ts, xs, 0, 4)
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-5) > 1e-9 || sse > 1e-9 {
		t.Fatalf("fit = %v, %v, %v", slope, intercept, sse)
	}
}

func TestFitDegenerate(t *testing.T) {
	slope, intercept, sse := fit([]float64{1}, []float64{7}, 0, 1)
	if slope != 0 || intercept != 7 || sse != 0 {
		t.Fatalf("single point fit = %v, %v, %v", slope, intercept, sse)
	}
	// Identical timestamps fall back to flat fit through mean.
	slope, intercept, _ = fit([]float64{2, 2}, []float64{4, 6}, 0, 2)
	if slope != 0 || intercept != 5 {
		t.Fatalf("degenerate fit = %v, %v", slope, intercept)
	}
}

func TestBottomUpRecoversBreakpoints(t *testing.T) {
	ts, xs := piecewise()
	segs := BottomUp(ts, xs, 0.5)
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3: %+v", len(segs), segs)
	}
	// Segment boundaries at the structural breaks (±1 point slack:
	// point 10 fits both the ramp's end and the plateau).
	if abs(segs[0].End-10) > 1 || abs(segs[1].End-20) > 1 {
		t.Fatalf("boundaries = %d, %d", segs[0].End, segs[1].End)
	}
	if Trend(segs[0].Slope, 0.1) != "increasing" ||
		Trend(segs[1].Slope, 0.1) != "steady" ||
		Trend(segs[2].Slope, 0.1) != "decreasing" {
		t.Fatalf("trends = %v %v %v", segs[0].Slope, segs[1].Slope, segs[2].Slope)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestBottomUpEdgeCases(t *testing.T) {
	if segs := BottomUp(nil, nil, 1); segs != nil {
		t.Fatal("empty input must yield nil")
	}
	segs := BottomUp([]float64{1}, []float64{5}, 1)
	if len(segs) != 1 || segs[0].Start != 0 || segs[0].End != 1 {
		t.Fatalf("single point = %+v", segs)
	}
}

func TestSegmentizeCoversSeriesExactly(t *testing.T) {
	ts, xs := piecewise()
	segs := Segmentize(ts, xs, Options{BufferSize: 8, MaxError: 0.5})
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	if segs[0].Start != 0 || segs[len(segs)-1].End != len(xs) {
		t.Fatalf("coverage [%d,%d), want [0,%d)", segs[0].Start, segs[len(segs)-1].End, len(xs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("gap/overlap between segments %d and %d", i-1, i)
		}
	}
}

func TestSegmentizeMatchesTrendStructure(t *testing.T) {
	ts, xs := piecewise()
	segs := Segmentize(ts, xs, Options{BufferSize: 12, MaxError: 0.5})
	// Collapse consecutive segments with equal trend.
	var trends []string
	for _, s := range segs {
		tr := Trend(s.Slope, 0.1)
		if len(trends) == 0 || trends[len(trends)-1] != tr {
			trends = append(trends, tr)
		}
	}
	want := []string{"increasing", "steady", "decreasing"}
	if len(trends) != 3 {
		t.Fatalf("trend structure = %v, want %v", trends, want)
	}
	for i := range want {
		if trends[i] != want[i] {
			t.Fatalf("trend structure = %v, want %v", trends, want)
		}
	}
}

func TestSegmentizeDefaults(t *testing.T) {
	ts := []float64{0, 1, 2}
	xs := []float64{0, 0, 0}
	segs := Segmentize(ts, xs, Options{})
	if len(segs) != 1 {
		t.Fatalf("constant series = %d segments", len(segs))
	}
	if Segmentize(nil, nil, Options{}) != nil {
		t.Fatal("empty must be nil")
	}
}

func TestSegmentMean(t *testing.T) {
	ts := []float64{0, 1, 2, 3}
	xs := []float64{2, 4, 6, 8}
	s := Segment{Start: 1, End: 3}
	if m := s.Mean(ts, xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if !math.IsNaN((Segment{Start: 2, End: 2}).Mean(ts, xs)) {
		t.Fatal("empty segment mean must be NaN")
	}
}

func TestTrendThreshold(t *testing.T) {
	if Trend(0.05, 0.1) != "steady" || Trend(0.2, 0.1) != "increasing" || Trend(-0.2, 0.1) != "decreasing" {
		t.Fatal("trend classification wrong")
	}
}

func TestSegmentizeCoverageProperty(t *testing.T) {
	f := func(raw []float64, buf uint8) bool {
		xs := make([]float64, 0, len(raw))
		ts := make([]float64, 0, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
			ts = append(ts, float64(i))
		}
		segs := Segmentize(ts, xs, Options{BufferSize: int(buf), MaxError: 0.5})
		if len(xs) == 0 {
			return segs == nil
		}
		if segs[0].Start != 0 || segs[len(segs)-1].End != len(xs) {
			return false
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Start != segs[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStreamMatchesOffline(t *testing.T) {
	ts, xs := piecewise()
	opts := Options{BufferSize: 8, MaxError: 0.5}
	want := Segmentize(ts, xs, opts)

	st := NewStream(opts)
	var got []Segment
	for i := range xs {
		got = append(got, st.Push(ts[i], xs[i])...)
	}
	got = append(got, st.Flush()...)

	if len(got) != len(want) {
		t.Fatalf("stream %d segments, offline %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Fatalf("segment %d: stream [%d,%d) vs offline [%d,%d)",
				i, got[i].Start, got[i].End, want[i].Start, want[i].End)
		}
	}
}

func TestStreamCoverageAndReuse(t *testing.T) {
	opts := Options{BufferSize: 6, MaxError: 0.5}
	st := NewStream(opts)
	n := 100
	var segs []Segment
	for i := 0; i < n; i++ {
		segs = append(segs, st.Push(float64(i), float64(i%10))...)
	}
	segs = append(segs, st.Flush()...)
	if segs[0].Start != 0 || segs[len(segs)-1].End != n {
		t.Fatalf("coverage [%d,%d), want [0,%d)", segs[0].Start, segs[len(segs)-1].End, n)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("gap between segments %d and %d", i-1, i)
		}
	}
	if st.Buffered() != 0 {
		t.Fatalf("buffered after flush = %d", st.Buffered())
	}
	// The stream is reusable after Flush.
	if out := st.Push(0, 1); len(out) != 0 {
		t.Fatalf("fresh stream emitted %d segments", len(out))
	}
	if got := st.Flush(); len(got) != 1 || got[0].Start != 0 {
		t.Fatalf("reuse flush = %+v", got)
	}
}

func TestStreamCompactionKeepsIndexes(t *testing.T) {
	// Push far more points than the buffer so compaction kicks in;
	// indexes must stay global.
	opts := Options{BufferSize: 4, MaxError: 0.01}
	st := NewStream(opts)
	var segs []Segment
	n := 500
	for i := 0; i < n; i++ {
		x := float64(i % 2 * 100) // sawtooth forces many segments
		segs = append(segs, st.Push(float64(i), x)...)
	}
	segs = append(segs, st.Flush()...)
	if segs[0].Start != 0 || segs[len(segs)-1].End != n {
		t.Fatalf("coverage [%d,%d), want [0,%d)", segs[0].Start, segs[len(segs)-1].End, n)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("discontinuity at segment %d after compaction", i)
		}
	}
}

func TestStreamEmptyFlush(t *testing.T) {
	st := NewStream(Options{})
	if got := st.Flush(); len(got) != 0 {
		t.Fatalf("empty flush = %+v", got)
	}
}
