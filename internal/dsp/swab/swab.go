// Package swab implements the SWAB online time-series segmentation
// algorithm (Keogh, Chu, Hart, Pazzani: "An Online Algorithm for
// Segmenting Time Series", ICDM 2001), the segmentation/trend step of
// branch α (Sec. 4.2).
//
// SWAB (Sliding Window And Bottom-up) keeps a working buffer, runs
// bottom-up segmentation on it, emits the leftmost segment as final,
// and refills the buffer — combining bottom-up quality with online
// operation. Segments carry a least-squares linear fit, whose slope is
// the trend reported in the symbolized output ("(high, increasing)").
package swab

import "math"

// Segment is one fitted piece of a series: the half-open index range
// [Start, End) with a least-squares line v ≈ Slope·t + Intercept and
// the fit's SSE.
type Segment struct {
	Start, End int // indexes into the input, End exclusive
	Slope      float64
	Intercept  float64
	SSE        float64
}

// Mean returns the mean fitted value over the segment's time span.
func (s Segment) Mean(ts, xs []float64) float64 {
	if s.End <= s.Start {
		return math.NaN()
	}
	var sum float64
	for i := s.Start; i < s.End; i++ {
		sum += xs[i]
	}
	return sum / float64(s.End-s.Start)
}

// fit computes the least-squares line over [start,end) and its SSE.
func fit(ts, xs []float64, start, end int) (slope, intercept, sse float64) {
	n := float64(end - start)
	if n == 0 {
		return 0, 0, 0
	}
	if n == 1 {
		return 0, xs[start], 0
	}
	var st, sx, stt, stx float64
	for i := start; i < end; i++ {
		st += ts[i]
		sx += xs[i]
		stt += ts[i] * ts[i]
		stx += ts[i] * xs[i]
	}
	den := n*stt - st*st
	if den == 0 {
		// Identical timestamps: fall back to a flat fit through the
		// mean.
		slope = 0
		intercept = sx / n
	} else {
		slope = (n*stx - st*sx) / den
		intercept = (sx - slope*st) / n
	}
	for i := start; i < end; i++ {
		d := xs[i] - (slope*ts[i] + intercept)
		sse += d * d
	}
	return slope, intercept, sse
}

// BottomUp segments [ts, xs] by the classic bottom-up algorithm: start
// from two-point segments and greedily merge the adjacent pair with the
// smallest merge cost while that cost stays below maxErr.
func BottomUp(ts, xs []float64, maxErr float64) []Segment {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if n == 1 {
		s, i, e := fit(ts, xs, 0, 1)
		return []Segment{{Start: 0, End: 1, Slope: s, Intercept: i, SSE: e}}
	}
	// Initial fine segmentation into pairs.
	var segs []Segment
	for i := 0; i < n; i += 2 {
		end := i + 2
		if end > n {
			end = n
		}
		sl, ic, e := fit(ts, xs, i, end)
		segs = append(segs, Segment{Start: i, End: end, Slope: sl, Intercept: ic, SSE: e})
	}
	mergeCost := func(i int) float64 {
		_, _, e := fit(ts, xs, segs[i].Start, segs[i+1].End)
		return e
	}
	for len(segs) > 1 {
		best, bestCost := -1, math.Inf(1)
		for i := 0; i < len(segs)-1; i++ {
			if c := mergeCost(i); c < bestCost {
				best, bestCost = i, c
			}
		}
		if bestCost > maxErr {
			break
		}
		sl, ic, e := fit(ts, xs, segs[best].Start, segs[best+1].End)
		segs[best] = Segment{Start: segs[best].Start, End: segs[best+1].End, Slope: sl, Intercept: ic, SSE: e}
		segs = append(segs[:best+1], segs[best+2:]...)
	}
	return segs
}

// Options tune SWAB.
type Options struct {
	// BufferSize is the working buffer length in points; minimum 4,
	// default 50.
	BufferSize int
	// MaxError is the bottom-up merge cost ceiling (SSE). Default 0.5,
	// calibrated for z-normalized data.
	MaxError float64
}

func (o Options) withDefaults() Options {
	if o.BufferSize < 4 {
		if o.BufferSize == 0 {
			o.BufferSize = 50
		} else {
			o.BufferSize = 4
		}
	}
	if o.MaxError <= 0 {
		o.MaxError = 0.5
	}
	return o
}

// Segmentize runs SWAB over the full series (offline driver over the
// online algorithm): repeatedly bottom-up the buffer, emit its leftmost
// segment, refill; trailing buffer contents are emitted as-is.
func Segmentize(ts, xs []float64, opts Options) []Segment {
	opts = opts.withDefaults()
	n := len(xs)
	if n == 0 {
		return nil
	}
	var out []Segment
	lo := 0
	for lo < n {
		hi := lo + opts.BufferSize
		if hi > n {
			hi = n
		}
		segs := BottomUp(ts[lo:hi], xs[lo:hi], opts.MaxError)
		if hi == n {
			// Final buffer: everything is final.
			for _, s := range segs {
				out = append(out, offset(s, lo))
			}
			break
		}
		// Emit only the leftmost segment; the rest re-enters the
		// buffer with fresh data appended.
		out = append(out, offset(segs[0], lo))
		lo += segs[0].End - segs[0].Start
	}
	return out
}

func offset(s Segment, by int) Segment {
	s.Start += by
	s.End += by
	return s
}

// Trend classifies a segment's slope against a threshold in value units
// per second.
func Trend(slope, threshold float64) string {
	switch {
	case slope > threshold:
		return "increasing"
	case slope < -threshold:
		return "decreasing"
	default:
		return "steady"
	}
}
