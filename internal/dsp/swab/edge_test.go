package swab

import (
	"math"
	"testing"
)

// TestSegmentizeEdgeCases drives the segmenter through the degenerate
// series the α branch can legitimately produce after outlier removal
// and smoothing: empty, single-point, constant, shorter than the SWAB
// buffer, and NaN-contaminated input. The invariant in every case:
// no panic, and the returned segments tile [0, len) contiguously.
func TestSegmentizeEdgeCases(t *testing.T) {
	mk := func(vals ...float64) (ts, xs []float64) {
		ts = make([]float64, len(vals))
		for i := range vals {
			ts[i] = float64(i)
		}
		return ts, vals
	}
	cases := []struct {
		name string
		xs   []float64
		opts Options
		// wantSegs < 0 means "any count"; coverage is always checked.
		wantSegs  int
		flatSlope bool
	}{
		{name: "empty", xs: nil, wantSegs: 0},
		{name: "single-point", xs: []float64{3.5}, wantSegs: 1, flatSlope: true},
		{name: "two-points", xs: []float64{1, 2}, wantSegs: -1},
		{name: "constant", xs: []float64{7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, wantSegs: 1, flatSlope: true},
		{
			name: "shorter-than-buffer",
			xs:   []float64{1, 5, 2},
			opts: Options{BufferSize: 50},
			// Three points cannot fill the 50-point working buffer; the
			// final flush must still emit them.
			wantSegs: -1,
		},
		{name: "nan-values", xs: []float64{1, math.NaN(), 3, math.NaN(), 5}, wantSegs: -1},
		{name: "all-nan", xs: []float64{math.NaN(), math.NaN(), math.NaN()}, wantSegs: -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, xs := mk(tc.xs...)
			segs := Segmentize(ts, xs, tc.opts)
			if tc.wantSegs >= 0 && len(segs) != tc.wantSegs {
				t.Fatalf("segments = %d, want %d", len(segs), tc.wantSegs)
			}
			// Segments must tile the series exactly.
			next := 0
			for i, s := range segs {
				if s.Start != next || s.End <= s.Start || s.End > len(xs) {
					t.Fatalf("segment %d = [%d,%d) breaks coverage at %d", i, s.Start, s.End, next)
				}
				next = s.End
			}
			if next != len(xs) {
				t.Fatalf("segments cover [0,%d), series has %d points", next, len(xs))
			}
			if tc.flatSlope {
				for i, s := range segs {
					if s.Slope != 0 {
						t.Fatalf("segment %d slope = %v, want 0", i, s.Slope)
					}
				}
			}
		})
	}
}

// TestBottomUpShorterThanWindow pins the pre-SWAB primitive on inputs
// smaller than any merge window: it must return one fine-grained
// segment per point pair (or fewer after merging), never panic.
func TestBottomUpShorterThanWindow(t *testing.T) {
	for n := 0; n <= 4; n++ {
		ts := make([]float64, n)
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			ts[i], xs[i] = float64(i), float64(i*i)
		}
		segs := BottomUp(ts, xs, 0.5)
		next := 0
		for _, s := range segs {
			if s.Start != next {
				t.Fatalf("n=%d: coverage gap at %d", n, next)
			}
			next = s.End
		}
		if next != n {
			t.Fatalf("n=%d: covered [0,%d)", n, next)
		}
	}
}
