package swab

// Stream is the genuinely online form of SWAB (the algorithm's original
// setting in Keogh et al. 2001): points arrive one at a time, finalized
// segments are emitted as soon as the working buffer proves their left
// boundary stable. Offline callers use Segmentize; live-monitoring
// pipelines (e.g. symbolizing a signal while the vehicle is still
// driving) use Stream.
type Stream struct {
	opts Options
	ts   []float64
	xs   []float64
	// emitted counts points already covered by emitted segments; the
	// buffer holds the remainder. base is the stream index of ts[0]
	// after compaction, so reported segment indexes always count from
	// the first pushed point.
	emitted int
	base    int
	out     []Segment
}

// NewStream creates an online segmenter.
func NewStream(opts Options) *Stream {
	return &Stream{opts: opts.withDefaults()}
}

// Push adds one point and returns any segments finalized by it. The
// returned slice is valid until the next call.
func (s *Stream) Push(t, x float64) []Segment {
	s.ts = append(s.ts, t)
	s.xs = append(s.xs, x)
	s.out = s.out[:0]
	for len(s.ts)-s.emitted >= s.opts.BufferSize {
		s.emitLeftmost()
	}
	return s.out
}

// emitLeftmost runs bottom-up on the current buffer and finalizes its
// first segment.
func (s *Stream) emitLeftmost() {
	lo := s.emitted
	hi := lo + s.opts.BufferSize
	if hi > len(s.ts) {
		hi = len(s.ts)
	}
	segs := BottomUp(s.ts[lo:hi], s.xs[lo:hi], s.opts.MaxError)
	first := offset(segs[0], lo)
	s.out = append(s.out, offset(first, s.base))
	s.emitted = first.End
	s.compact()
}

// Flush finalizes everything still buffered (end of trace) and resets
// the stream for reuse.
func (s *Stream) Flush() []Segment {
	s.out = s.out[:0]
	lo := s.emitted
	if lo < len(s.ts) {
		segs := BottomUp(s.ts[lo:], s.xs[lo:], s.opts.MaxError)
		for _, seg := range segs {
			s.out = append(s.out, offset(seg, lo+s.base))
		}
	}
	s.ts = s.ts[:0]
	s.xs = s.xs[:0]
	s.emitted = 0
	s.base = 0
	return s.out
}

// Buffered reports how many points await finalization.
func (s *Stream) Buffered() int { return len(s.ts) - s.emitted }

// compact drops emitted points once they dominate the backing arrays,
// keeping memory proportional to the buffer, not the trace. Segment
// indexes keep counting from the stream start.
func (s *Stream) compact() {
	if s.emitted < s.opts.BufferSize*4 {
		return
	}
	n := copy(s.ts, s.ts[s.emitted:])
	s.ts = s.ts[:n]
	m := copy(s.xs, s.xs[s.emitted:])
	s.xs = s.xs[:m]
	s.base += s.emitted
	s.emitted = 0
}
