// Package sax implements Symbolic Aggregate approXimation (Lin, Keogh,
// Lonardi, Chiu: "A Symbolic Representation of Time Series...", SIGMOD
// DMKD 2003/2004): z-normalization, piecewise aggregate approximation
// and Gaussian-breakpoint symbolization. Branch α (Sec. 4.2) maps each
// SWAB segment to a SAX symbol, yielding the (trend, symbol) tuples of
// the homogeneous representation.
package sax

import (
	"fmt"
	"math"
)

// MaxAlphabet is the largest supported alphabet size.
const MaxAlphabet = 10

// breakpoints[a] are the a-1 Gaussian quantile boundaries for alphabet
// size a (standard SAX lookup table).
var breakpoints = map[int][]float64{
	2:  {0},
	3:  {-0.43, 0.43},
	4:  {-0.67, 0, 0.67},
	5:  {-0.84, -0.25, 0.25, 0.84},
	6:  {-0.97, -0.43, 0, 0.43, 0.97},
	7:  {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
	8:  {-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15},
	9:  {-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22},
	10: {-1.28, -0.84, -0.52, -0.25, 0, 0.25, 0.52, 0.84, 1.28},
}

// Breakpoints returns the quantile boundaries for an alphabet size in
// [2, MaxAlphabet].
func Breakpoints(alphabet int) ([]float64, error) {
	bp, ok := breakpoints[alphabet]
	if !ok {
		return nil, fmt.Errorf("sax: unsupported alphabet size %d (want 2..%d)", alphabet, MaxAlphabet)
	}
	return bp, nil
}

// ZNormalize returns (xs - mean)/std along with the normalization
// parameters. A constant series (std≈0) normalizes to all zeros.
func ZNormalize(xs []float64) (normalized []float64, mean, std float64) {
	n := len(xs)
	normalized = make([]float64, n)
	if n == 0 {
		return normalized, 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(n))
	if std < 1e-12 {
		return normalized, mean, 0
	}
	for i, x := range xs {
		normalized[i] = (x - mean) / std
	}
	return normalized, mean, std
}

// PAA reduces xs to frames piecewise-aggregate means. Frame boundaries
// distribute remainder points evenly (the standard fractional scheme is
// approximated by floor boundaries).
func PAA(xs []float64, frames int) []float64 {
	n := len(xs)
	if frames <= 0 || n == 0 {
		return nil
	}
	if frames > n {
		frames = n
	}
	out := make([]float64, frames)
	for f := 0; f < frames; f++ {
		lo := f * n / frames
		hi := (f + 1) * n / frames
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
		out[f] = sum / float64(hi-lo)
	}
	return out
}

// Symbol maps one z-normalized value to its SAX letter.
func Symbol(z float64, alphabet int) (byte, error) {
	bp, err := Breakpoints(alphabet)
	if err != nil {
		return 0, err
	}
	idx := 0
	for _, b := range bp {
		if z >= b {
			idx++
		}
	}
	return byte('a' + idx), nil
}

// Symbolize computes the full SAX word of a series: z-normalize, PAA
// into frames, symbol per frame.
func Symbolize(xs []float64, frames, alphabet int) (string, error) {
	if _, err := Breakpoints(alphabet); err != nil {
		return "", err
	}
	norm, _, _ := ZNormalize(xs)
	paa := PAA(norm, frames)
	word := make([]byte, len(paa))
	for i, z := range paa {
		s, err := Symbol(z, alphabet)
		if err != nil {
			return "", err
		}
		word[i] = s
	}
	return string(word), nil
}

// LevelName renders a SAX letter as a human-readable level for the
// state representation of Table 4 (e.g. alphabet 5: very low, low,
// medium, high, very high — "(high, increasing)").
func LevelName(sym byte, alphabet int) string {
	idx := int(sym - 'a')
	if idx < 0 || idx >= alphabet {
		return string(sym)
	}
	switch alphabet {
	case 2:
		return []string{"low", "high"}[idx]
	case 3:
		return []string{"low", "medium", "high"}[idx]
	case 4:
		return []string{"very low", "low", "high", "very high"}[idx]
	case 5:
		return []string{"very low", "low", "medium", "high", "very high"}[idx]
	default:
		return fmt.Sprintf("level%d", idx+1)
	}
}

// distCell returns the breakpoint distance between symbol cells r and
// c for the given alphabet (the dist() lookup table of the SAX paper):
// adjacent or equal symbols have distance 0.
func distCell(r, c int, bp []float64) float64 {
	if r > c {
		r, c = c, r
	}
	if c-r <= 1 {
		return 0
	}
	return bp[c-1] - bp[r]
}

// MinDist computes the SAX lower-bounding distance between two equal
// length words (Lin et al. 2004, Definition MINDIST): a lower bound of
// the Euclidean distance between the original z-normalized series of
// length n. It enables exact-answer pruning in similarity search over
// symbolized traces.
func MinDist(a, b string, alphabet, n int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("sax: word lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	if n < len(a) {
		return 0, fmt.Errorf("sax: series length %d shorter than word length %d", n, len(a))
	}
	bp, err := Breakpoints(alphabet)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i := 0; i < len(a); i++ {
		ra, rb := int(a[i]-'a'), int(b[i]-'a')
		if ra < 0 || ra >= alphabet || rb < 0 || rb >= alphabet {
			return 0, fmt.Errorf("sax: symbol outside alphabet %d in %q/%q", alphabet, a, b)
		}
		d := distCell(ra, rb, bp)
		sum += d * d
	}
	return math.Sqrt(float64(n)/float64(len(a))) * math.Sqrt(sum), nil
}
