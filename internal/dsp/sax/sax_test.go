package sax

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBreakpointsTable(t *testing.T) {
	for a := 2; a <= MaxAlphabet; a++ {
		bp, err := Breakpoints(a)
		if err != nil {
			t.Fatalf("alphabet %d: %v", a, err)
		}
		if len(bp) != a-1 {
			t.Fatalf("alphabet %d: %d breakpoints", a, len(bp))
		}
		for i := 1; i < len(bp); i++ {
			if bp[i] <= bp[i-1] {
				t.Fatalf("alphabet %d: breakpoints not increasing: %v", a, bp)
			}
		}
	}
	for _, bad := range []int{0, 1, 11, -3} {
		if _, err := Breakpoints(bad); err == nil {
			t.Errorf("alphabet %d must be rejected", bad)
		}
	}
}

func TestZNormalize(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	norm, mean, std := ZNormalize(xs)
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-math.Sqrt(5)) > 1e-9 {
		t.Fatalf("std = %v", std)
	}
	var sum float64
	for _, z := range norm {
		sum += z
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("normalized mean not 0: %v", sum)
	}
	// Constant series → zeros, std 0.
	norm, _, std = ZNormalize([]float64{3, 3, 3})
	if std != 0 || norm[0] != 0 {
		t.Fatalf("constant normalize = %v, std %v", norm, std)
	}
	if n, _, _ := ZNormalize(nil); len(n) != 0 {
		t.Fatal("empty input must stay empty")
	}
}

func TestPAA(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	got := PAA(xs, 3)
	want := []float64{1.5, 3.5, 5.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paa = %v, want %v", got, want)
		}
	}
	// More frames than points clamps to len.
	if got := PAA(xs, 10); len(got) != 6 {
		t.Fatalf("clamped paa len = %d", len(got))
	}
	if PAA(nil, 3) != nil || PAA(xs, 0) != nil {
		t.Fatal("degenerate PAA must be nil")
	}
}

func TestSymbolBoundaries(t *testing.T) {
	// Alphabet 4: breakpoints -0.67, 0, 0.67.
	cases := map[float64]byte{
		-1:    'a',
		-0.68: 'a',
		-0.5:  'b',
		-0.0:  'c', // z >= 0 crosses the middle breakpoint
		0.5:   'c',
		0.68:  'd',
		2:     'd',
	}
	for z, want := range cases {
		got, err := Symbol(z, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Symbol(%v) = %c, want %c", z, got, want)
		}
	}
	if _, err := Symbol(0, 1); err == nil {
		t.Fatal("bad alphabet must error")
	}
}

func TestSymbolizeRampWord(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	word, err := Symbolize(xs, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(word) != 5 {
		t.Fatalf("word = %q", word)
	}
	// A ramp must produce a non-decreasing word starting low ending
	// high.
	if word[0] != 'a' || word[4] != 'e' {
		t.Fatalf("ramp word = %q", word)
	}
	for i := 1; i < len(word); i++ {
		if word[i] < word[i-1] {
			t.Fatalf("ramp word not monotone: %q", word)
		}
	}
	if _, err := Symbolize(xs, 5, 99); err == nil {
		t.Fatal("bad alphabet must error")
	}
}

func TestSymbolizeConstantIsMiddle(t *testing.T) {
	xs := []float64{7, 7, 7, 7}
	word, err := Symbolize(xs, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if word != strings.Repeat("c", 2) {
		t.Fatalf("constant word = %q, want cc", word)
	}
}

func TestLevelName(t *testing.T) {
	if LevelName('d', 5) != "high" || LevelName('a', 5) != "very low" || LevelName('c', 5) != "medium" {
		t.Fatal("alphabet-5 level names wrong")
	}
	if LevelName('b', 2) != "high" {
		t.Fatal("alphabet-2 level names wrong")
	}
	if LevelName('c', 3) != "high" {
		t.Fatal("alphabet-3 level names wrong")
	}
	if LevelName('f', 8) != "level6" {
		t.Fatalf("fallback name = %q", LevelName('f', 8))
	}
	if LevelName('z', 5) != "z" {
		t.Fatal("out-of-range symbol must render as itself")
	}
}

func TestSymbolMonotoneProperty(t *testing.T) {
	// Property: Symbol is monotone in z for every alphabet size.
	f := func(z1, z2 float64, a uint8) bool {
		alpha := int(a)%9 + 2
		if math.IsNaN(z1) || math.IsNaN(z2) {
			return true
		}
		if z1 > z2 {
			z1, z2 = z2, z1
		}
		s1, err1 := Symbol(z1, alpha)
		s2, err2 := Symbol(z2, alpha)
		return err1 == nil && err2 == nil && s1 <= s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPAAPreservesMeanProperty(t *testing.T) {
	// PAA with equal frame sizes preserves the overall mean.
	f := func(seed uint8) bool {
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = float64((int(seed) * (i + 3) % 17))
		}
		paa := PAA(xs, 8)
		var m1, m2 float64
		for _, x := range xs {
			m1 += x
		}
		m1 /= float64(len(xs))
		for _, x := range paa {
			m2 += x
		}
		m2 /= float64(len(paa))
		return math.Abs(m1-m2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinDistBasics(t *testing.T) {
	// Equal words have distance 0; adjacent symbols too (SAX dist
	// table); far symbols do not.
	if d, err := MinDist("abc", "abc", 5, 12); err != nil || d != 0 {
		t.Fatalf("identical words: %v, %v", d, err)
	}
	if d, err := MinDist("aa", "bb", 5, 8); err != nil || d != 0 {
		t.Fatalf("adjacent symbols must be 0: %v, %v", d, err)
	}
	d, err := MinDist("aa", "cc", 5, 8)
	if err != nil || d <= 0 {
		t.Fatalf("distant symbols: %v, %v", d, err)
	}
	d2, err := MinDist("aa", "ee", 5, 8)
	if err != nil || d2 <= d {
		t.Fatalf("farther symbols must be farther: %v vs %v", d2, d)
	}
}

func TestMinDistErrors(t *testing.T) {
	if _, err := MinDist("ab", "abc", 5, 8); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := MinDist("ab", "ab", 99, 8); err == nil {
		t.Fatal("bad alphabet must fail")
	}
	if _, err := MinDist("az", "ab", 5, 8); err == nil {
		t.Fatal("symbol outside alphabet must fail")
	}
	if _, err := MinDist("abcd", "abcd", 5, 2); err == nil {
		t.Fatal("n < word length must fail")
	}
	if d, err := MinDist("", "", 5, 0); err != nil || d != 0 {
		t.Fatalf("empty words: %v, %v", d, err)
	}
}

func TestMinDistLowerBoundsEuclideanProperty(t *testing.T) {
	// MINDIST's defining property: it never exceeds the Euclidean
	// distance of the z-normalized series it symbolizes.
	f := func(seed uint8) bool {
		n := 64
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = math.Sin(float64(i)/7 + float64(seed))
			ys[i] = math.Cos(float64(i)/5) * (1 + float64(seed%5))
		}
		nx, _, _ := ZNormalize(xs)
		ny, _, _ := ZNormalize(ys)
		var euclid float64
		for i := range nx {
			d := nx[i] - ny[i]
			euclid += d * d
		}
		euclid = math.Sqrt(euclid)
		const frames, alphabet = 8, 6
		wa, err1 := Symbolize(xs, frames, alphabet)
		wb, err2 := Symbolize(ys, frames, alphabet)
		if err1 != nil || err2 != nil {
			return false
		}
		md, err := MinDist(wa, wb, alphabet, n)
		return err == nil && md <= euclid+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
