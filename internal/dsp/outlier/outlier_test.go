package outlier

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHampelFlagsSpike(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1, 1.05, 800, 1, 0.95, 1.02, 1}
	mask := Hampel(xs, 5, 3)
	for i, m := range mask {
		want := i == 5
		if m != want {
			t.Errorf("index %d: outlier = %v, want %v (xs=%v)", i, m, want, xs[i])
		}
	}
}

func TestHampelConstantSeriesNoOutliers(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	for i, m := range Hampel(xs, 5, 3) {
		if m {
			t.Errorf("constant series flagged at %d", i)
		}
	}
}

func TestHampelConstantNeighbourhoodFlagsDeviation(t *testing.T) {
	xs := []float64{5, 5, 5, 6, 5, 5, 5}
	mask := Hampel(xs, 7, 3)
	if !mask[3] {
		t.Error("deviation from constant neighbourhood must be flagged (MAD=0 case)")
	}
}

func TestHampelDefaultsAndEdgeCases(t *testing.T) {
	if got := Hampel(nil, 0, 0); len(got) != 0 {
		t.Fatal("nil input must yield empty mask")
	}
	// Even window and zero k must not panic, defaults apply.
	xs := []float64{1, 2, 1, 2, 100, 2, 1}
	mask := Hampel(xs, 4, 0)
	if !mask[4] {
		t.Error("spike not flagged with defaulted parameters")
	}
}

func TestZScore(t *testing.T) {
	xs := []float64{0, 0.1, -0.1, 0.05, 50, -0.02, 0.08, 0, 0.1, -0.1, 0.05, -0.02}
	mask := ZScore(xs, 3)
	for i, m := range mask {
		want := i == 4
		if m != want {
			t.Errorf("index %d: z-outlier = %v, want %v", i, m, want)
		}
	}
	if got := ZScore([]float64{1}, 3); got[0] {
		t.Error("single sample must not be flagged")
	}
	for i, m := range ZScore([]float64{2, 2, 2}, 3) {
		if m {
			t.Errorf("constant series flagged at %d", i)
		}
	}
}

func TestPartition(t *testing.T) {
	kept, removed := Partition([]bool{false, true, false, true, true})
	if len(kept) != 2 || kept[0] != 0 || kept[1] != 2 {
		t.Fatalf("kept = %v", kept)
	}
	if len(removed) != 3 || removed[0] != 1 {
		t.Fatalf("removed = %v", removed)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if !math.IsNaN(median(nil)) {
		t.Fatal("empty median must be NaN")
	}
}

func TestHampelMaskLengthProperty(t *testing.T) {
	f := func(xs []float64, w uint8, k float64) bool {
		mask := Hampel(xs, int(w), math.Abs(k))
		return len(mask) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHampelScaleInvarianceProperty(t *testing.T) {
	// Scaling a series by a positive constant must not change the mask.
	f := func(seed uint8) bool {
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = float64((int(seed)+i*7)%11) / 10
		}
		xs[17] = 1e6
		a := Hampel(xs, 7, 3)
		for i := range xs {
			xs[i] *= 42.5
		}
		b := Hampel(xs, 7, 3)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
