// Package outlier implements the outlier detection used by branches α
// and β of the type-dependent processing (Sec. 4.2): outliers are split
// off before smoothing/segmentation and merged back afterwards as
// potential errors (Sec. 4.4 inspects them as error candidates).
//
// The primary detector is a Hampel filter (sliding-window median ±
// k·MAD), which is robust against the very outliers it hunts; a global
// z-score detector is provided for comparison and tests.
package outlier

import (
	"math"
	"sort"
)

// hampelScale makes MAD a consistent estimator of the standard
// deviation under normality.
const hampelScale = 1.4826

// Hampel flags outliers with a centered sliding window of the given
// total width (forced odd, minimum 3). A point is an outlier when its
// distance to the window median exceeds k scaled MADs; when the window
// MAD is zero (constant neighbourhood), any deviation from the median
// is an outlier.
func Hampel(xs []float64, window int, k float64) []bool {
	n := len(xs)
	out := make([]bool, n)
	if n == 0 {
		return out
	}
	if window < 3 {
		window = 3
	}
	if window%2 == 0 {
		window++
	}
	if k <= 0 {
		k = 3
	}
	half := window / 2
	buf := make([]float64, 0, window)
	dev := make([]float64, 0, window)
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		buf = buf[:0]
		buf = append(buf, xs[lo:hi+1]...)
		med := median(buf)
		dev = dev[:0]
		for _, x := range xs[lo : hi+1] {
			dev = append(dev, math.Abs(x-med))
		}
		mad := median(dev)
		diff := math.Abs(xs[i] - med)
		if mad == 0 {
			out[i] = diff > 0
		} else {
			out[i] = diff > k*hampelScale*mad
		}
	}
	return out
}

// ZScore flags points more than k global standard deviations from the
// global mean. Degenerate inputs (constant or shorter than 2) flag
// nothing.
func ZScore(xs []float64, k float64) []bool {
	out := make([]bool, len(xs))
	if len(xs) < 2 {
		return out
	}
	if k <= 0 {
		k = 3
	}
	mean, std := meanStd(xs)
	if std == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = math.Abs(x-mean) > k*std
	}
	return out
}

// Partition splits indexes by the mask: kept (false) and removed
// (true) — the (K_num_out, K_num_rep) split of Algorithm 1 line 16.
func Partition(mask []bool) (kept, removed []int) {
	for i, m := range mask {
		if m {
			removed = append(removed, i)
		} else {
			kept = append(kept, i)
		}
	}
	return kept, removed
}

// median computes the median, mutating (sorting) its argument.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	m := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[m]
	}
	return (xs[m-1] + xs[m]) / 2
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(xs)))
	return mean, std
}
