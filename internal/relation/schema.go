package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. Schemas are immutable by
// convention: operators derive new schemas rather than mutating.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex returns the position of the named column and panics when the
// column does not exist; used where the plan compiler has already
// validated names.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: schema has no column %q (have %s)", name, s))
	}
	return i
}

// Has reports whether the named column exists.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// Append returns a new schema with extra columns appended.
func (s Schema) Append(cols ...Column) Schema {
	out := make([]Column, 0, len(s.Cols)+len(cols))
	out = append(out, s.Cols...)
	out = append(out, cols...)
	return Schema{Cols: out}
}

// Project returns a new schema restricted to the named columns, in the
// given order.
func (s Schema) Project(names ...string) (Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return Schema{}, fmt.Errorf("relation: project: no column %q in %s", n, s)
		}
		cols = append(cols, s.Cols[i])
	}
	return Schema{Cols: cols}, nil
}

// Equal reports whether two schemas have identical columns.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name:kind, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple of a relation; cells align with the schema columns.
type Row []Value

// Clone returns a deep-enough copy of the row (cell slice copied; byte
// payloads shared, as operators never mutate payloads in place).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports cell-wise equality with another row.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Hash combines the hashes of the given cell indexes; with no indexes it
// hashes the whole row.
func (r Row) Hash(idx ...int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	if len(idx) == 0 {
		for i := range r {
			h = (h ^ r[i].Hash()) * prime
		}
		return h
	}
	for _, i := range idx {
		h = (h ^ r[i].Hash()) * prime
	}
	return h
}

// Bucket maps the row onto one of parts hash buckets by the given key
// cell indexes. This is the single authority on shuffle bucket
// assignment: PartitionByKey and the engine's shuffle exchange both
// route through it, so every layer agrees on the edge cases — in
// particular null keys, which hash through Value.Hash's KindNull tag
// and therefore land in exactly one deterministic bucket rather than
// being scattered or dropped.
func (r Row) Bucket(parts int, idx ...int) int {
	if parts < 1 {
		parts = 1
	}
	return int(r.Hash(idx...) % uint64(parts))
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.AsString()
	}
	return "[" + strings.Join(parts, " | ") + "]"
}
