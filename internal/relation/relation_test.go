package relation

import (
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return NewSchema(
		Column{Name: "t", Kind: KindInt},
		Column{Name: "sid", Kind: KindString},
		Column{Name: "v", Kind: KindFloat},
	)
}

func testRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Str([]string{"a", "b", "c"}[i%3]), Float(float64(i) / 2)}
	}
	return rows
}

func TestSchemaIndexAndProject(t *testing.T) {
	s := testSchema()
	if s.Index("sid") != 1 || s.Index("nope") != -1 {
		t.Fatalf("Index results wrong: %d %d", s.Index("sid"), s.Index("nope"))
	}
	p, err := s.Project("v", "t")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Cols[0].Name != "v" || p.Cols[1].Name != "t" {
		t.Fatalf("Project wrong: %s", p)
	}
	if _, err := s.Project("missing"); err == nil {
		t.Fatal("Project with missing column must fail")
	}
}

func TestSchemaAppendDoesNotMutate(t *testing.T) {
	s := testSchema()
	s2 := s.Append(Column{Name: "extra", Kind: KindBool})
	if s.Len() != 3 || s2.Len() != 4 {
		t.Fatalf("Append mutated original: %d %d", s.Len(), s2.Len())
	}
	if !s2.Has("extra") || s.Has("extra") {
		t.Fatal("Has results wrong after Append")
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on missing column must panic")
		}
	}()
	testSchema().MustIndex("missing")
}

func TestRelationRepartitionPreservesRowsAndOrder(t *testing.T) {
	rel := FromRows(testSchema(), testRows(10))
	for _, n := range []int{1, 2, 3, 7, 10, 25} {
		rp := rel.Repartition(n)
		if rp.NumRows() != 10 {
			t.Fatalf("n=%d: lost rows: %d", n, rp.NumRows())
		}
		flat := rp.Rows()
		for i, row := range flat {
			if row[0].AsInt() != int64(i) {
				t.Fatalf("n=%d: order broken at %d: %v", n, i, row)
			}
		}
	}
}

func TestRelationPartitionByKeyGroupsKeys(t *testing.T) {
	rel := FromRows(testSchema(), testRows(30))
	pk, err := rel.PartitionByKey(4, "sid")
	if err != nil {
		t.Fatal(err)
	}
	if pk.NumRows() != 30 {
		t.Fatalf("lost rows: %d", pk.NumRows())
	}
	// Every key must live in exactly one partition.
	where := map[string]int{}
	for pi, p := range pk.Partitions {
		for _, row := range p {
			k := row[1].S
			if prev, ok := where[k]; ok && prev != pi {
				t.Fatalf("key %q split across partitions %d and %d", k, prev, pi)
			}
			where[k] = pi
		}
	}
}

func TestRelationPartitionByKeyMissingColumn(t *testing.T) {
	rel := FromRows(testSchema(), testRows(3))
	if _, err := rel.PartitionByKey(2, "nope"); err == nil {
		t.Fatal("expected error for missing key column")
	}
}

func TestRelationSortByGlobal(t *testing.T) {
	rows := []Row{
		{Int(3), Str("b"), Float(0)},
		{Int(1), Str("a"), Float(0)},
		{Int(2), Str("a"), Float(0)},
		{Int(1), Str("b"), Float(0)},
	}
	rel := &Relation{Schema: testSchema(), Partitions: [][]Row{rows[:2], rows[2:]}}
	sorted, err := rel.SortBy(true, "t", "sid")
	if err != nil {
		t.Fatal(err)
	}
	got := sorted.Rows()
	want := [][2]string{{"1", "a"}, {"1", "b"}, {"2", "a"}, {"3", "b"}}
	for i, w := range want {
		if got[i][0].AsString() != w[0] || got[i][1].AsString() != w[1] {
			t.Fatalf("row %d = %v, want %v", i, got[i], w)
		}
	}
}

func TestRelationSortByPerPartition(t *testing.T) {
	rel := &Relation{Schema: testSchema(), Partitions: [][]Row{
		{{Int(5), Str("x"), Float(0)}, {Int(1), Str("x"), Float(0)}},
		{{Int(4), Str("y"), Float(0)}, {Int(2), Str("y"), Float(0)}},
	}}
	sorted, err := rel.SortBy(false, "t")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.NumPartitions() != 2 {
		t.Fatalf("partition count changed: %d", sorted.NumPartitions())
	}
	if sorted.Partitions[0][0][0].AsInt() != 1 || sorted.Partitions[1][0][0].AsInt() != 2 {
		t.Fatalf("per-partition sort wrong: %v", sorted.Partitions)
	}
	// Original must be untouched.
	if rel.Partitions[0][0][0].AsInt() != 5 {
		t.Fatal("SortBy mutated input relation")
	}
}

func TestRelationConcatSchemaMismatch(t *testing.T) {
	a := FromRows(testSchema(), testRows(2))
	b := FromRows(NewSchema(Column{Name: "x", Kind: KindInt}), nil)
	if _, err := a.Concat(b); err == nil {
		t.Fatal("expected schema mismatch error")
	}
	c, err := a.Concat(FromRows(testSchema(), testRows(3)))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 5 {
		t.Fatalf("concat rows = %d, want 5", c.NumRows())
	}
}

func TestRelationAppendCreatesPartition(t *testing.T) {
	r := &Relation{Schema: testSchema()}
	r.Append(Row{Int(1), Str("a"), Float(0)})
	if r.NumRows() != 1 || r.NumPartitions() != 1 {
		t.Fatalf("append bootstrap failed: %d rows, %d parts", r.NumRows(), r.NumPartitions())
	}
}

func TestRepartitionCountPropertyQuick(t *testing.T) {
	f := func(n uint8, parts uint8) bool {
		rel := FromRows(testSchema(), testRows(int(n)%200))
		rp := rel.Repartition(int(parts)%16 + 1)
		return rp.NumRows() == rel.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].AsInt() != 1 {
		t.Fatal("Clone shares cell storage")
	}
	if !r.Equal(Row{Int(1), Str("a")}) {
		t.Fatal("Equal failed on identical rows")
	}
	if r.Equal(c) {
		t.Fatal("Equal true on different rows")
	}
	if r.Equal(Row{Int(1)}) {
		t.Fatal("Equal true on different lengths")
	}
}

func TestRowHashSubset(t *testing.T) {
	a := Row{Int(1), Str("x"), Float(5)}
	b := Row{Int(1), Str("x"), Float(9)}
	if a.Hash(0, 1) != b.Hash(0, 1) {
		t.Fatal("subset hash should ignore other columns")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("full hash should differ")
	}
}

// TestRepartitionAppendDoesNotAliasNeighbor is the regression test for
// the sub-slice aliasing bug: Repartition's partitions are windows into
// one backing array, so without full-slice expressions an Append to
// partition i (within spare capacity) would overwrite the first row of
// partition i+1.
func TestRepartitionAppendDoesNotAliasNeighbor(t *testing.T) {
	r := FromRows(testSchema(), testRows(12)).Repartition(3)
	if len(r.Partitions) != 3 {
		t.Fatalf("partitions = %d", len(r.Partitions))
	}
	// Remember partition 1's first row, then append to partition 0.
	wantFirst := r.Partitions[1][0].Clone()
	r.Partitions[0] = append(r.Partitions[0], Row{Int(999), Str("x"), Float(0)})
	if got := r.Partitions[1][0]; !got.Equal(wantFirst) {
		t.Fatalf("append to partition 0 clobbered partition 1: got %v, want %v", got, wantFirst)
	}
	// Same must hold for the relation-level Append, which targets the
	// last partition — growing it must not write past its own window.
	r2 := FromRows(testSchema(), testRows(12)).Repartition(4)
	mid := r2.Partitions[2][0].Clone()
	r2.Partitions[1] = append(r2.Partitions[1], Row{Int(-1), Str("y"), Float(1)})
	if got := r2.Partitions[2][0]; !got.Equal(mid) {
		t.Fatalf("append to partition 1 clobbered partition 2: got %v, want %v", got, mid)
	}
}
