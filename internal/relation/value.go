// Package relation provides the tabular data model used by the trace
// processing engine: typed values, schemas, rows and partitioned relations.
//
// The paper expresses Algorithm 1 in relational algebra over tables of
// trace elements; this package is the substrate those operators run on.
// Values are a compact tagged union rather than interface{} so that rows
// stay allocation-friendly at the row counts the paper targets.
package relation

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// Supported value kinds. KindNull is the zero value so that a zero Value
// is a well-formed null.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar cell. Exactly one of the payload
// fields is meaningful, selected by K. Fields are exported so values
// cross gob encoding to remote executors unchanged.
type Value struct {
	K Kind
	I int64   // KindBool (0/1) and KindInt
	F float64 // KindFloat
	S string  // KindString
	B []byte  // KindBytes
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool wraps a bool.
func Bool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// Int wraps an int64.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// String wraps a string. The method set of Value already has String()
// for fmt.Stringer, so the constructor is named Str.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bytes wraps a byte slice without copying.
func Bytes(b []byte) Value { return Value{K: KindBytes, B: b} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsBool returns the boolean payload; null and zero numerics are false.
func (v Value) AsBool() bool {
	switch v.K {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// AsInt converts the value to int64 (truncating floats, parsing strings
// best-effort; null is 0).
func (v Value) AsInt() int64 {
	switch v.K {
	case KindBool, KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindString:
		i, err := strconv.ParseInt(v.S, 0, 64)
		if err != nil {
			return 0
		}
		return i
	default:
		return 0
	}
}

// AsFloat converts the value to float64 (null is 0; non-numeric strings
// are NaN).
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindBool, KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindString:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	default:
		return 0
	}
}

// AsString renders the value as a string; bytes are rendered as hex.
func (v Value) AsString() string {
	switch v.K {
	case KindNull:
		return ""
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBytes:
		return fmt.Sprintf("%x", v.B)
	default:
		return ""
	}
}

// String implements fmt.Stringer.
func (v Value) String() string { return v.AsString() }

// IsNumeric reports whether the value holds an int or float, or a string
// that parses as a number.
func (v Value) IsNumeric() bool {
	switch v.K {
	case KindInt, KindFloat:
		return true
	case KindString:
		_, err := strconv.ParseFloat(v.S, 64)
		return err == nil
	default:
		return false
	}
}

// Equal reports deep equality between two values. Int/float compare
// numerically (Int(2) equals Float(2)).
func (v Value) Equal(o Value) bool {
	if v.K == KindNull || o.K == KindNull {
		return v.K == o.K
	}
	if v.isNum() && o.isNum() {
		return v.AsFloat() == o.AsFloat()
	}
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindBool:
		return (v.I != 0) == (o.I != 0)
	case KindString:
		return v.S == o.S
	case KindBytes:
		if len(v.B) != len(o.B) {
			return false
		}
		for i := range v.B {
			if v.B[i] != o.B[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (v Value) isNum() bool { return v.K == KindInt || v.K == KindFloat }

// Compare orders two values: null < bool < numeric < string < bytes, and
// within a class by natural order. It returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	cv, co := v.class(), o.class()
	if cv != co {
		if cv < co {
			return -1
		}
		return 1
	}
	switch cv {
	case 0: // both null
		return 0
	case 1: // bool
		return cmpInt(v.I&1, o.I&1)
	case 2: // numeric
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case 3: // string
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	default: // bytes
		n := len(v.B)
		if len(o.B) < n {
			n = len(o.B)
		}
		for i := 0; i < n; i++ {
			if v.B[i] != o.B[i] {
				return cmpInt(int64(v.B[i]), int64(o.B[i]))
			}
		}
		return cmpInt(int64(len(v.B)), int64(len(o.B)))
	}
}

func (v Value) class() int {
	switch v.K {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	default:
		return 4
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Hash returns a 64-bit hash consistent with Equal (numeric values that
// compare equal hash equally).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.K {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindBool:
		buf[0] = 1
		buf[1] = byte(v.I & 1)
		h.Write(buf[:2])
	case KindInt, KindFloat:
		buf[0] = 2
		bits := math.Float64bits(v.AsFloat())
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindBytes:
		buf[0] = 4
		h.Write(buf[:1])
		h.Write(v.B)
	}
	return h.Sum64()
}
