package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Bool(false), KindBool},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Str("abc"), KindString},
		{Bytes([]byte{1, 2}), KindBytes},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.K, c.kind)
		}
	}
}

func TestValueAsBool(t *testing.T) {
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("bool round trip failed")
	}
	if !Int(7).AsBool() || Int(0).AsBool() {
		t.Error("int truthiness failed")
	}
	if !Float(0.1).AsBool() || Float(0).AsBool() {
		t.Error("float truthiness failed")
	}
	if Null().AsBool() || Str("true").AsBool() {
		t.Error("null/string must be false")
	}
}

func TestValueAsIntConversions(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
	}{
		{Int(-9), -9},
		{Float(2.9), 2},
		{Bool(true), 1},
		{Str("17"), 17},
		{Str("0x10"), 16},
		{Str("junk"), 0},
		{Null(), 0},
	}
	for _, c := range cases {
		if got := c.v.AsInt(); got != c.want {
			t.Errorf("AsInt(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestValueAsFloatConversions(t *testing.T) {
	if got := Str("2.5").AsFloat(); got != 2.5 {
		t.Errorf("AsFloat string = %v", got)
	}
	if got := Int(3).AsFloat(); got != 3 {
		t.Errorf("AsFloat int = %v", got)
	}
	if !math.IsNaN(Str("xyz").AsFloat()) {
		t.Error("non-numeric string should be NaN")
	}
	if Null().AsFloat() != 0 {
		t.Error("null should be 0")
	}
}

func TestValueAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-3), "-3"},
		{Float(1.25), "1.25"},
		{Str("hi"), "hi"},
		{Bytes([]byte{0xAB, 0x01}), "ab01"},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("AsString(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(2).Equal(Float(2)) {
		t.Error("Int(2) should equal Float(2)")
	}
	if Int(2).Equal(Str("2")) {
		t.Error("Int(2) should not equal Str(\"2\")")
	}
	if !Bytes([]byte{1, 2}).Equal(Bytes([]byte{1, 2})) {
		t.Error("bytes equality failed")
	}
	if Bytes([]byte{1}).Equal(Bytes([]byte{1, 2})) {
		t.Error("bytes length mismatch should not be equal")
	}
	if !Null().Equal(Null()) {
		t.Error("null equals null")
	}
	if Null().Equal(Int(0)) {
		t.Error("null must not equal 0")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	ordered := []Value{
		Null(), Bool(false), Bool(true), Int(-5), Float(0), Int(9),
		Str("a"), Str("b"), Bytes([]byte{0}), Bytes([]byte{0, 1}), Bytes([]byte{1}),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueHashConsistentWithEqual(t *testing.T) {
	if Int(5).Hash() != Float(5).Hash() {
		t.Error("numerically equal values must hash equally")
	}
	if Str("a").Hash() == Str("b").Hash() {
		t.Error("distinct strings should (overwhelmingly) hash differently")
	}
}

func TestValueCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueEqualHashProperty(t *testing.T) {
	f := func(a int64) bool {
		return Int(a).Hash() == Float(float64(a)).Hash() == (float64(a) == float64(int64(float64(a))))
	}
	// The equality above only holds when the int survives the float
	// round trip; restrict to small values where it always does.
	g := func(a int32) bool {
		return Int(int64(a)).Hash() == Float(float64(a)).Hash()
	}
	_ = f
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
