package relation

import (
	"fmt"
	"sort"
)

// Relation is a materialized, horizontally partitioned table. Partitions
// are the unit of parallelism in the engine: narrow operators run on each
// partition independently, mirroring how the paper distributes row-wise
// interpretation across cluster nodes.
type Relation struct {
	Schema     Schema
	Partitions [][]Row
}

// New creates an empty relation with the given schema and one empty
// partition.
func New(s Schema) *Relation {
	return &Relation{Schema: s, Partitions: [][]Row{nil}}
}

// FromRows builds a single-partition relation from rows.
func FromRows(s Schema, rows []Row) *Relation {
	return &Relation{Schema: s, Partitions: [][]Row{rows}}
}

// NumRows returns the total row count across partitions.
func (r *Relation) NumRows() int {
	n := 0
	for _, p := range r.Partitions {
		n += len(p)
	}
	return n
}

// NumPartitions returns the partition count.
func (r *Relation) NumPartitions() int { return len(r.Partitions) }

// Rows flattens all partitions into one slice, in partition order.
func (r *Relation) Rows() []Row {
	out := make([]Row, 0, r.NumRows())
	for _, p := range r.Partitions {
		out = append(out, p...)
	}
	return out
}

// Append adds a row to the last partition.
func (r *Relation) Append(row Row) {
	if len(r.Partitions) == 0 {
		r.Partitions = [][]Row{nil}
	}
	last := len(r.Partitions) - 1
	r.Partitions[last] = append(r.Partitions[last], row)
}

// Repartition redistributes all rows round-robin into n partitions of
// near-equal size, preserving global order within the concatenation.
func (r *Relation) Repartition(n int) *Relation {
	if n < 1 {
		n = 1
	}
	rows := r.Rows()
	parts := make([][]Row, n)
	per := (len(rows) + n - 1) / n
	if per == 0 {
		per = 1
	}
	for i := 0; i < n; i++ {
		lo := i * per
		if lo > len(rows) {
			lo = len(rows)
		}
		hi := lo + per
		if hi > len(rows) {
			hi = len(rows)
		}
		// Full-slice expression: partitions share one backing array, so
		// each slice's capacity must stop at its own end — otherwise an
		// Append to partition i would clobber partition i+1's first row.
		parts[i] = rows[lo:hi:hi]
	}
	return &Relation{Schema: r.Schema, Partitions: parts}
}

// PartitionByKey redistributes rows into n partitions by hashing the
// given key columns, so that equal keys land in the same partition. This
// is the shuffle used before per-signal processing.
func (r *Relation) PartitionByKey(n int, keyCols ...string) (*Relation, error) {
	if n < 1 {
		n = 1
	}
	idx := make([]int, len(keyCols))
	for i, c := range keyCols {
		j := r.Schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("relation: partition key %q not in schema %s", c, r.Schema)
		}
		idx[i] = j
	}
	parts := make([][]Row, n)
	for _, p := range r.Partitions {
		for _, row := range p {
			b := row.Bucket(n, idx...)
			parts[b] = append(parts[b], row)
		}
	}
	return &Relation{Schema: r.Schema, Partitions: parts}, nil
}

// SortBy sorts every partition (and, when global is true, the whole
// relation as a single partition) by the given columns ascending. Sorting
// restores determinism after hash shuffles, which the paper requires for
// replicable fault diagnosis.
func (r *Relation) SortBy(global bool, cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := r.Schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("relation: sort key %q not in schema %s", c, r.Schema)
		}
		idx[i] = j
	}
	less := func(a, b Row) bool {
		for _, j := range idx {
			if c := a[j].Compare(b[j]); c != 0 {
				return c < 0
			}
		}
		return false
	}
	if global {
		rows := r.Rows()
		sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
		return FromRows(r.Schema, rows), nil
	}
	out := &Relation{Schema: r.Schema, Partitions: make([][]Row, len(r.Partitions))}
	for pi, p := range r.Partitions {
		cp := make([]Row, len(p))
		copy(cp, p)
		sort.SliceStable(cp, func(i, j int) bool { return less(cp[i], cp[j]) })
		out.Partitions[pi] = cp
	}
	return out, nil
}

// Concat appends the partitions of o (same schema required) to r,
// returning a new relation.
func (r *Relation) Concat(o *Relation) (*Relation, error) {
	if !r.Schema.Equal(o.Schema) {
		return nil, fmt.Errorf("relation: concat schema mismatch: %s vs %s", r.Schema, o.Schema)
	}
	parts := make([][]Row, 0, len(r.Partitions)+len(o.Partitions))
	parts = append(parts, r.Partitions...)
	parts = append(parts, o.Partitions...)
	return &Relation{Schema: r.Schema, Partitions: parts}, nil
}
