package segstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// seqRows builds rowsPer deterministic low-cardinality rows starting at
// base (the shape compaction re-encodes in production).
func seqRows(base, rowsPer int) []relation.Row {
	rows := make([]relation.Row, rowsPer)
	for i := range rows {
		ts := base + i
		rows[i] = relation.Row{
			relation.Int(int64(ts)),
			relation.Float(float64((ts / 16) % 4)),
			relation.Str([]string{"sig-a", "sig-b"}[(ts/32)%2]),
		}
	}
	return rows
}

// fillStore appends nseg segments of rowsPer rows and returns the full
// row sequence in store order.
func fillStore(t *testing.T, st *Store, nseg, rowsPer int) []relation.Row {
	t.Helper()
	var all []relation.Row
	for s := 0; s < nseg; s++ {
		rows := seqRows(s*rowsPer, rowsPer)
		if err := st.AppendSegment(rows); err != nil {
			t.Fatal(err)
		}
		all = append(all, rows...)
	}
	return all
}

// storeRows returns the store's full scan concatenated in partition
// order.
func storeRows(t *testing.T, st *Store) []relation.Row {
	t.Helper()
	rel, err := st.Scan(context.Background(), engine.Pushdown{})
	if err != nil {
		t.Fatal(err)
	}
	var all []relation.Row
	for _, p := range rel.Partitions {
		all = append(all, p...)
	}
	return all
}

func TestCompactMergesAndPreservesRows(t *testing.T) {
	for _, opts := range []Options{{}, {Compress: true}, {Encodings: true}, {Compress: true, Encodings: true}} {
		t.Run(fmt.Sprintf("%+v", opts), func(t *testing.T) {
			st, err := Open(t.TempDir(), testSchema(), opts)
			if err != nil {
				t.Fatal(err)
			}
			want := fillStore(t, st, 8, 32)
			genBefore := st.Generation()

			groups, err := st.Compact(CompactOptions{TargetRows: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			if groups != 1 {
				t.Fatalf("groups = %d, want 1", groups)
			}
			if n := st.NumSegments(); n != 1 {
				t.Fatalf("segments = %d, want 1", n)
			}
			if st.Generation() <= genBefore {
				t.Fatalf("generation %d did not bump past %d", st.Generation(), genBefore)
			}
			if got := storeRows(t, st); !rowsEq(got, want) {
				t.Fatalf("rows differ after compaction (%d vs %d)", len(got), len(want))
			}
		})
	}
}

func TestCompactRespectsTargetRows(t *testing.T) {
	st := openTestStore(t, false)
	want := fillStore(t, st, 10, 4) // 40 rows in 10 micro-segments
	// 12-row target → three groups of 3; the lone tail segment is below
	// MinSegments and stays.
	groups, err := st.Compact(CompactOptions{TargetRows: 12, MinSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if groups != 3 {
		t.Fatalf("groups = %d, want 3", groups)
	}
	if n := st.NumSegments(); n != 4 {
		t.Fatalf("segments = %d, want 4", n)
	}
	if got := storeRows(t, st); !rowsEq(got, want) {
		t.Fatal("rows differ after targeted compaction")
	}
	// Large segments are left alone: a second pass finds nothing small
	// enough to pair under the same target.
	groups, err = st.Compact(CompactOptions{TargetRows: 12, MinSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if groups != 0 {
		t.Fatalf("second pass rewrote %d groups, want 0", groups)
	}
}

// TestCompactRetiresThenDeletes: replaced files survive the committing
// pass (in-flight scans may still hold them) and are deleted by the
// next pass.
func TestCompactRetiresThenDeletes(t *testing.T) {
	st := openTestStore(t, false)
	fillStore(t, st, 4, 8)
	oldPaths := st.SegmentPaths()
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range oldPaths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("replaced segment %s deleted in the committing pass", filepath.Base(p))
		}
	}
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range oldPaths {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("retired segment %s not deleted by the next pass", filepath.Base(p))
		}
	}
}

// TestCompactSurvivesReopen: a reopened store sees the compacted
// manifest, reclaims retired orphans, and scans identically.
func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testSchema(), Options{Encodings: true})
	if err != nil {
		t.Fatal(err)
	}
	want := fillStore(t, st, 6, 16)
	oldPaths := st.SegmentPaths()
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	gen := st.Generation()

	re, err := Open(dir, relation.Schema{}, Options{Encodings: true})
	if err != nil {
		t.Fatal(err)
	}
	if re.Generation() != gen {
		t.Fatalf("generation %d after reopen, want %d", re.Generation(), gen)
	}
	if n := re.NumSegments(); n != 1 {
		t.Fatalf("segments = %d after reopen, want 1", n)
	}
	if got := storeRows(t, re); !rowsEq(got, want) {
		t.Fatal("rows differ after reopen")
	}
	// Open reclaims the unmanifested pre-compaction files.
	for _, p := range oldPaths {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived reopen", filepath.Base(p))
		}
	}
}

// TestCompactCrashMidSeal kills the compactor at every seal stage: the
// manifest (and therefore every reader) must keep seeing the
// pre-compaction state, and a retried pass must succeed cleanly.
func TestCompactCrashMidSeal(t *testing.T) {
	for _, stage := range []string{"chunks", "footer", "sync", "rename", "manifest"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, testSchema(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := fillStore(t, st, 4, 8)
			genBefore := st.Generation()

			DebugSealFailure = func(s string) error {
				if s == stage {
					return fmt.Errorf("killed at %s", s)
				}
				return nil
			}
			_, err = st.Compact(CompactOptions{})
			DebugSealFailure = nil
			if err == nil || !strings.Contains(err.Error(), "injected crash") {
				t.Fatalf("stage %s: err = %v", stage, err)
			}
			if st.Generation() != genBefore {
				t.Fatalf("stage %s: generation moved on a failed compaction", stage)
			}
			if n := st.NumSegments(); n != 4 {
				t.Fatalf("stage %s: segments = %d, want 4", stage, n)
			}
			if got := storeRows(t, st); !rowsEq(got, want) {
				t.Fatalf("stage %s: rows changed under a failed compaction", stage)
			}
			// A clean retry — and a reopen of the torn directory — both work.
			if _, err := st.Compact(CompactOptions{}); err != nil {
				t.Fatalf("stage %s: retry: %v", stage, err)
			}
			if got := storeRows(t, st); !rowsEq(got, want) {
				t.Fatalf("stage %s: rows differ after retried compaction", stage)
			}
			re, err := Open(dir, relation.Schema{}, Options{})
			if err != nil {
				t.Fatalf("stage %s: reopen: %v", stage, err)
			}
			if got := storeRows(t, re); !rowsEq(got, want) {
				t.Fatalf("stage %s: rows differ after reopen", stage)
			}
		})
	}
}

// TestCompactConcurrentAppends: appends racing a compaction never lose
// rows — the group splice only touches segments that existed at plan
// time, appends land at the tail.
func TestCompactConcurrentAppends(t *testing.T) {
	st := openTestStore(t, false)
	fillStore(t, st, 6, 8)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for s := 6; s < 12; s++ {
			if err := st.AppendSegment(seqRows(s*8, 8)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := st.Compact(CompactOptions{}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if got := st.Rows(); got != 96 {
		t.Fatalf("rows = %d after racing append/compact, want 96", got)
	}
	rows := storeRows(t, st)
	if len(rows) != 96 {
		t.Fatalf("scan returned %d rows, want 96", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		seen[r[0].I] = true
	}
	if len(seen) != 96 {
		t.Fatalf("distinct ts = %d, want 96", len(seen))
	}
}

// TestMmapReadEquality: the mapped and pread paths decode identical
// rows, and the mmap counter moves only when the toggle is on.
func TestMmapReadEquality(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	st := openTestStore(t, true)
	want := fillStore(t, st, 2, 64)

	Mmap.Store(true)
	before := mSegmentsMmapped.Value()
	mapped := storeRows(t, st)
	if d := mSegmentsMmapped.Value() - before; d != 2 {
		t.Fatalf("mmap counter moved by %d, want 2", d)
	}

	Mmap.Store(false)
	before = mSegmentsMmapped.Value()
	copied := storeRows(t, st)
	Mmap.Store(mmapSupported)
	if d := mSegmentsMmapped.Value() - before; d != 0 {
		t.Fatalf("mmap counter moved by %d with the toggle off", d)
	}

	if !rowsEq(mapped, copied) || !rowsEq(mapped, want) {
		t.Fatal("mmap and pread scans differ")
	}
}
