// Store: a directory of immutable segment files plus a CRC'd manifest
// naming the committed ones. The manifest is the commit point — a
// segment exists once (a) its file is fully written, fsynced and
// renamed into place and (b) the manifest names it. Anything else in
// the directory (a *.tmp from a writer that died mid-seal, a renamed
// segment whose manifest update never happened) is torn state: Open
// deletes temp files and ignores orphans, so a crash at any point
// leaves every previously sealed segment readable bit for bit.
package segstore

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// Options tune a store.
type Options struct {
	// Compress runs each column chunk through DEFLATE (colcodec's
	// compressed framing). Chunks decompress independently, so
	// projection still skips unread columns entirely.
	Compress bool

	// Level is the DEFLATE level when Compress is set (0 =
	// flate.BestSpeed; see colcodec.Options.Level).
	Level int

	// Encodings enables per-column dictionary/RLE chunk encodings:
	// the writer keeps whichever of raw/dict/RLE is smallest for each
	// column. Readers accept all encodings regardless of this option,
	// so stores written either way coexist in one directory.
	Encodings bool
}

// codecOpts maps store options onto the chunk codec.
func (st *Store) codecOpts() colcodec.Options {
	return colcodec.Options{Compress: st.opts.Compress, Level: st.opts.Level, Encodings: st.opts.Encodings}
}

// Debug hooks, nil in production (same pattern as the engine's spill
// fault hooks). Tests use them to inject crashes and corruption.
var (
	// DebugSealFailure, when non-nil, is consulted before each stage of
	// a segment seal — "chunks", "footer", "sync", "rename", "manifest"
	// — and a returned error aborts the seal AT that point without any
	// cleanup, simulating a writer killed mid-seal. (A normal I/O error
	// removes the temp file; a simulated kill must not, because a dead
	// process cleans up nothing.)
	DebugSealFailure func(stage string) error
	// DebugZoneMutate, when non-nil, edits each column's zone map as a
	// footer is loaded for pruning, simulating a corrupt or buggy zone
	// map. Note the detectable direction is TIGHTENING a bound (the
	// difftest asserts a falsely pruned segment breaks bitwise
	// equality); loosening a bound merely forfeits pruning, which is
	// correct by the conservative contract.
	DebugZoneMutate func(col string, z *ZoneMap)
)

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	maxManifestLen  = 1 << 24
)

var manifestMagic = [4]byte{'I', 'V', 'S', 'M'}

// manifestPayload is the gob body of the manifest file. The file
// framing is magic | payloadLen:uint32 | payloadCRC:uint32 | payload.
// Generation counts seals monotonically over the store's life and is
// the result-cache invalidation token (see Store.Generation); the field
// is gob-additive, so manifests written before it existed decode with
// Generation 0 and Open derives len(Segs) as a floor.
type manifestPayload struct {
	Version    int
	Generation uint64
	Cols       []manifestCol
	Segs       []manifestSeg
}

type manifestCol struct {
	Name string
	Kind uint8
}

type manifestSeg struct {
	Name string // file name within the store directory
	Rows int
}

// Store is an open segment store for one relation. It implements
// engine.ScanSource and engine.SegmentLister; all methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	schema relation.Schema
	segs   []manifestSeg
	gen    uint64 // committed manifest generation (seal counter)
	nextID int
	foots  map[string]*footer // pruning footer cache, keyed by path

	// compactMu serializes compactions (one rewrite cycle at a time);
	// retired holds paths replaced by a committed compaction, deleted
	// one full cycle later so scans that snapshotted the pre-compaction
	// manifest can finish (see Compact).
	compactMu sync.Mutex
	retired   []string
}

var (
	_ engine.ScanSource    = (*Store)(nil)
	_ engine.SegmentLister = (*Store)(nil)
)

// Open opens (or creates) the store in dir. A zero-length schema adopts
// the existing manifest's schema; a non-empty schema must match an
// existing manifest exactly, and is required to create a new store.
// Open removes temp files left by crashed writers and ignores segment
// files the manifest does not name.
func Open(dir string, schema relation.Schema, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, opts: opts, schema: schema, foots: map[string]*footer{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segNames []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Torn writer state from a crash mid-seal; the segment was
			// never committed, so the bytes are garbage by contract.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("segstore: clean %s: %w", name, err)
			}
			continue
		}
		if id, ok := parseSegName(name); ok {
			if id >= st.nextID {
				st.nextID = id + 1
			}
			segNames = append(segNames, name)
		}
	}
	mpath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		p, err := parseManifest(data)
		if err != nil {
			return nil, fmt.Errorf("segstore: %s: %w", mpath, err)
		}
		stored := manifestSchema(p)
		if schema.Len() > 0 && !schema.Equal(stored) {
			return nil, fmt.Errorf("segstore: %s holds schema %s, caller wants %s", dir, stored, schema)
		}
		st.schema = stored
		st.segs = p.Segs
		st.gen = p.Generation
		if floor := uint64(len(p.Segs)); st.gen < floor {
			// Manifest predates the Generation field: every committed
			// segment was one seal, so len(Segs) is an exact floor.
			st.gen = floor
		}
	case os.IsNotExist(err):
		if schema.Len() == 0 {
			return nil, fmt.Errorf("segstore: %s has no manifest and no schema was given", dir)
		}
		if err := st.writeManifestLocked(); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	// Reclaim orphans: segment files the manifest does not name are
	// uncommitted by contract — a seal that died before its manifest
	// update, or a pre-compaction segment whose deferred deletion never
	// ran. nextID already counted them, so their names are not reused.
	committed := make(map[string]bool, len(st.segs))
	for _, s := range st.segs {
		committed[s.Name] = true
	}
	for _, name := range segNames {
		if !committed[name] {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return st, nil
}

// parseSegName extracts the numeric id from "seg-NNNNNN.ivsg".
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".ivsg") {
		return 0, false
	}
	id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".ivsg"))
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

func manifestSchema(p *manifestPayload) relation.Schema {
	cols := make([]relation.Column, len(p.Cols))
	for i, c := range p.Cols {
		cols[i] = relation.Column{Name: c.Name, Kind: relation.Kind(c.Kind)}
	}
	return relation.Schema{Cols: cols}
}

// parseManifest validates framing, CRC and content of a manifest file.
func parseManifest(data []byte) (*manifestPayload, error) {
	if len(data) < 12 || [4]byte(data[:4]) != manifestMagic {
		return nil, fmt.Errorf("bad manifest magic")
	}
	plen := int64(le32(data[4:8]))
	if plen > maxManifestLen || plen != int64(len(data))-12 {
		return nil, fmt.Errorf("manifest length %d does not match %d-byte file", plen, len(data))
	}
	payload := data[12:]
	if got, want := crc32.ChecksumIEEE(payload), le32(data[8:12]); got != want {
		return nil, fmt.Errorf("manifest CRC mismatch (got %08x, want %08x)", got, want)
	}
	var p manifestPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("manifest decode: %w", err)
	}
	if p.Version != manifestVersion {
		return nil, fmt.Errorf("unsupported manifest version %d", p.Version)
	}
	if len(p.Cols) > maxCols {
		return nil, fmt.Errorf("manifest claims %d columns", len(p.Cols))
	}
	seenCol := map[string]bool{}
	for _, c := range p.Cols {
		if c.Name == "" || len(c.Name) > maxNameLen || seenCol[c.Name] || c.Kind > uint8(relation.KindBytes) {
			return nil, fmt.Errorf("bad manifest column %q", c.Name)
		}
		seenCol[c.Name] = true
	}
	seenSeg := map[string]bool{}
	for _, s := range p.Segs {
		if _, ok := parseSegName(s.Name); !ok || s.Name != filepath.Base(s.Name) || seenSeg[s.Name] {
			return nil, fmt.Errorf("bad manifest segment name %q", s.Name)
		}
		if s.Rows < 0 || s.Rows > maxRows {
			return nil, fmt.Errorf("bad manifest row count %d for %q", s.Rows, s.Name)
		}
		seenSeg[s.Name] = true
	}
	return &p, nil
}

// writeManifestLocked rewrites the manifest atomically (temp + fsync +
// rename). Callers hold st.mu or have exclusive access.
func (st *Store) writeManifestLocked() error {
	p := manifestPayload{Version: manifestVersion, Generation: st.gen, Segs: st.segs}
	for _, c := range st.schema.Cols {
		p.Cols = append(p.Cols, manifestCol{Name: c.Name, Kind: uint8(c.Kind)})
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&p); err != nil {
		return err
	}
	out := make([]byte, 0, body.Len()+12)
	out = append(out, manifestMagic[:]...)
	out = appendLE32(out, uint32(body.Len()))
	out = appendLE32(out, crc32.ChecksumIEEE(body.Bytes()))
	out = append(out, body.Bytes()...)

	path := filepath.Join(st.dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Generation returns the committed manifest generation: a monotonic
// seal counter, bumped exactly when a new segment commits. Result
// caches key entries on it — a bump makes every cached result for the
// relation unreachable, which is the whole invalidation contract (see
// docs/QUERY.md).
func (st *Store) Generation() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// Schema returns the stored schema.
func (st *Store) Schema() relation.Schema {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.schema
}

// NumSegments returns the number of committed segments.
func (st *Store) NumSegments() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.segs)
}

// Rows returns the total committed row count (from manifest metadata,
// no file access).
func (st *Store) Rows() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	total := 0
	for _, s := range st.segs {
		total += s.Rows
	}
	return total
}

// SegmentPaths returns the committed segment files in order.
func (st *Store) SegmentPaths() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	paths := make([]string, len(st.segs))
	for i, s := range st.segs {
		paths[i] = filepath.Join(st.dir, s.Name)
	}
	return paths
}

// AppendSegment seals rows as one new immutable segment and commits it
// to the manifest. The write order is the crash contract: chunk bytes →
// footer+trailer → fsync → rename tmp into place → manifest update. A
// crash before the rename leaves only a temp file (cleaned on next
// Open); a crash before the manifest update leaves an orphan segment
// file the manifest never names.
func (st *Store) AppendSegment(rows []relation.Row) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	img, err := encodeSegment(st.schema, rows, st.codecOpts())
	if err != nil {
		return err
	}
	name := fmt.Sprintf("seg-%06d.ivsg", st.nextID)
	if err := writeSegmentFile(filepath.Join(st.dir, name), img); err != nil {
		return err
	}
	if err := sealCrash("manifest"); err != nil {
		return err
	}
	st.segs = append(st.segs, manifestSeg{Name: name, Rows: len(rows)})
	st.gen++
	if err := st.writeManifestLocked(); err != nil {
		// The segment file stays behind as an uncommitted orphan; the
		// in-memory view must keep matching the on-disk manifest.
		st.segs = st.segs[:len(st.segs)-1]
		st.gen--
		return err
	}
	st.nextID++
	mSegmentsWritten.Inc()
	return nil
}

// sealCrash consults the DebugSealFailure hook for one seal stage.
func sealCrash(stage string) error {
	if DebugSealFailure == nil {
		return nil
	}
	if err := DebugSealFailure(stage); err != nil {
		return fmt.Errorf("segstore: injected crash at %s: %w", stage, err)
	}
	return nil
}

// writeSegmentFile writes a sealed segment image under the crash
// contract shared by AppendSegment and Compact: chunk bytes →
// footer+trailer → fsync → rename *.tmp into place. The caller commits
// the file by naming it in the manifest; until then it is a removable
// orphan.
func writeSegmentFile(path string, img *segmentImage) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error { // ordinary failure: clean up the temp
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(img.header); err != nil {
		return fail(err)
	}
	if err := sealCrash("chunks"); err != nil {
		f.Close()
		return err
	}
	for _, chunk := range img.chunks {
		if _, err := f.Write(chunk); err != nil {
			return fail(err)
		}
	}
	if err := sealCrash("footer"); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(img.tail); err != nil {
		return fail(err)
	}
	if err := sealCrash("sync"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := sealCrash("rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Writer batches rows into segments: Append buffers, Seal commits the
// buffer as one segment (no-op when empty).
type Writer struct {
	st   *Store
	rows []relation.Row
}

// Writer returns a new segment writer for the store.
func (st *Store) Writer() *Writer { return &Writer{st: st} }

// Append buffers rows for the next segment.
func (w *Writer) Append(rows ...relation.Row) { w.rows = append(w.rows, rows...) }

// Buffered returns the number of rows awaiting Seal.
func (w *Writer) Buffered() int { return len(w.rows) }

// Seal commits the buffered rows as one segment and resets the buffer.
func (w *Writer) Seal() error {
	if len(w.rows) == 0 {
		return nil
	}
	if err := w.st.AppendSegment(w.rows); err != nil {
		return err
	}
	w.rows = nil
	return nil
}

// ------------------------------------------------------------- scanning

// ScanSchema implements engine.ScanSource.
func (st *Store) ScanSchema() relation.Schema { return st.Schema() }

// Segments implements engine.SegmentLister: one SegmentRef per
// committed segment, in manifest order, with Pruned set on segments
// whose zone maps refute a pushed filter. Only footers are read here.
func (st *Store) Segments(pd engine.Pushdown) ([]engine.SegmentRef, error) {
	cs, err := pruneConjuncts(pd.Filters)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	segs := append([]manifestSeg(nil), st.segs...)
	st.mu.Unlock()
	refs := make([]engine.SegmentRef, len(segs))
	for i, e := range segs {
		path := filepath.Join(st.dir, e.Name)
		pruned := false
		if len(cs) > 0 {
			foot, err := st.loadFooter(path)
			if err != nil {
				return nil, err
			}
			pruned = segmentPruned(cs, foot)
		}
		if pruned {
			mSegmentsPruned.Inc()
		}
		refs[i] = engine.SegmentRef{Path: path, Cols: pd.Cols, Rows: e.Rows, Pruned: pruned}
	}
	return refs, nil
}

// loadFooter returns the segment's footer for pruning, cached per path
// (segments are immutable, so a footer never goes stale).
func (st *Store) loadFooter(path string) (*footer, error) {
	st.mu.Lock()
	foot := st.foots[path]
	st.mu.Unlock()
	if foot != nil {
		return foot, nil
	}
	g, err := OpenSegment(path)
	if err != nil {
		return nil, err
	}
	g.Close() // footer already parsed; chunks are read elsewhere
	foot = g.foot
	if DebugZoneMutate != nil {
		for i := range foot.cols {
			DebugZoneMutate(foot.cols[i].name, &foot.cols[i].zone)
		}
	}
	st.mu.Lock()
	st.foots[path] = foot
	st.mu.Unlock()
	return foot, nil
}

// Scan implements engine.ScanSource: one partition per committed
// segment, pruned segments as empty partitions (partition indexes stay
// stable either way), columns restricted to pd.Cols when non-nil.
func (st *Store) Scan(ctx context.Context, pd engine.Pushdown) (*relation.Relation, error) {
	refs, err := st.Segments(pd)
	if err != nil {
		return nil, err
	}
	scanSchema := st.Schema()
	if pd.Cols != nil {
		scanSchema, err = scanSchema.Project(pd.Cols...)
		if err != nil {
			return nil, err
		}
	}
	parts := make([][]relation.Row, len(refs))
	for i, ref := range refs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ref.Pruned {
			continue
		}
		s, rows, err := ReadSegmentRows(ref.Path, ref.Cols)
		if err != nil {
			return nil, err
		}
		if !s.Equal(scanSchema) {
			return nil, fmt.Errorf("segstore: %s decodes to schema %s, store schema is %s", ref.Path, s, scanSchema)
		}
		parts[i] = rows
	}
	return &relation.Relation{Schema: scanSchema, Partitions: parts}, nil
}

// SortedSegmentNames is a test helper exposing the committed segment
// file names in manifest order.
func (st *Store) SortedSegmentNames() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, len(st.segs))
	for i, s := range st.segs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
