//go:build linux || darwin

package segstore

import (
	"os"
	"syscall"
)

// mmapSupported: this platform has the syscall mapping path.
const mmapSupported = true

// mmapFile maps the whole file read-only. The caller owns the mapping
// and must munmapFile it before closing the store's view of the file.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
