package segstore

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

func testSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "ts", Kind: relation.KindInt},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sid", Kind: relation.KindString},
	)
}

// testRows mixes every comparison class the pruner reasons about:
// ints, floats, NaN, nulls, plain strings and numeric strings.
func testRows() []relation.Row {
	return []relation.Row{
		{relation.Int(10), relation.Float(1.5), relation.Str("a")},
		{relation.Int(20), relation.Float(math.NaN()), relation.Str("b")},
		{relation.Int(30), relation.Null(), relation.Str("42")},
		{relation.Int(40), relation.Float(-3.25), relation.Str("c")},
	}
}

// valEq compares two cells bitwise: float cells by their bit pattern
// (so NaN == NaN and -0.0 != 0.0), everything else structurally.
func valEq(a, b relation.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == relation.KindFloat {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return reflect.DeepEqual(a, b)
}

func rowsEq(a, b []relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !valEq(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

func openTestStore(t *testing.T, compress bool) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), testSchema(), Options{Compress: compress})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			st := openTestStore(t, compress)
			want := testRows()
			if err := st.AppendSegment(want); err != nil {
				t.Fatal(err)
			}
			s, got, err := ReadSegmentRows(st.SegmentPaths()[0], nil)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Equal(testSchema()) {
				t.Fatalf("schema %s, want %s", s, testSchema())
			}
			if !rowsEq(got, want) {
				t.Fatalf("rows differ after round trip:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestLazyColumnProjection proves the zero-decode guarantee: reading
// one column of a two-segment store touches exactly that column's
// chunk bytes, as observed through the segstore_bytes_decoded counter.
func TestLazyColumnProjection(t *testing.T) {
	st := openTestStore(t, false)
	if err := st.AppendSegment(testRows()); err != nil {
		t.Fatal(err)
	}
	g, err := OpenSegment(st.SegmentPaths()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tsSize := g.foot.col("ts").size
	total := int64(0)
	for i := range g.foot.cols {
		total += g.foot.cols[i].size
	}
	if tsSize >= total {
		t.Fatalf("test needs ts chunk (%d) smaller than all chunks (%d)", tsSize, total)
	}

	before := telemetry.Default().CounterValue("segstore_bytes_decoded_total")
	s, rows, err := g.ReadColumns([]string{"ts"})
	if err != nil {
		t.Fatal(err)
	}
	decoded := telemetry.Default().CounterValue("segstore_bytes_decoded_total") - before
	if decoded != tsSize {
		t.Fatalf("decoded %d bytes reading ts, want exactly its chunk size %d", decoded, tsSize)
	}
	if s.Len() != 1 || s.Cols[0].Name != "ts" {
		t.Fatalf("projected schema %s, want just ts", s)
	}
	for i, r := range rows {
		if !valEq(r[0], testRows()[i][0]) {
			t.Fatalf("row %d: got %v", i, r[0])
		}
	}
	if _, _, err := g.ReadColumns([]string{"nosuch"}); err == nil {
		t.Fatal("reading a missing column must fail")
	}
}

// TestSatisfiable pins the pruning rules against the expression
// engine's comparison semantics (see prune.go).
func TestSatisfiable(t *testing.T) {
	// Zone of a pure numeric column over 4 rows: values {1.5, 2, 30}, one null.
	num := ZoneMap{Nulls: 1, NumKind: 3, NumOrd: 3, FHas: true, FMin: 1.5, FMax: 30}
	// All four cells numeric, one of them NaN.
	nan := ZoneMap{NumKind: 4, NumOrd: 4, NaNs: 1, FHas: true, FMin: 1.5, FMax: 30}
	// Pure string column (plus a null).
	str := ZoneMap{Nulls: 1, Strs: 3, SHas: true, SMin: "b", SMax: "f"}
	// Mixed column: 2 strings (one numeric string "42"), 1 int, 1 null.
	mixed := ZoneMap{Nulls: 1, NumKind: 1, NumOrd: 2, Strs: 2, FHas: true, FMin: 10, FMax: 42, SHas: true, SMin: "42", SMax: "x"}
	// All nulls.
	nulls := ZoneMap{Nulls: 4}

	cases := []struct {
		name string
		z    ZoneMap
		op   string
		lit  relation.Value
		want bool
	}{
		{"all-null kills everything", nulls, "==", relation.Int(0), false},
		{"all-null ordered", nulls, "<", relation.Int(1000), false},

		{"eq inside range", num, "==", relation.Int(2), true},
		{"eq below range", num, "==", relation.Int(1), false},
		{"eq above range", num, "==", relation.Float(30.5), false},
		{"eq NaN literal", num, "==", relation.Float(math.NaN()), false},
		{"eq string literal no strings", num, "==", relation.Str("zzz"), false},

		{"lt above min", num, "<", relation.Int(2), true},
		{"lt at min", num, "<", relation.Float(1.5), false},
		{"le at min", num, "<=", relation.Float(1.5), true},
		{"le below min", num, "<=", relation.Int(1), false},
		{"gt below max", num, ">", relation.Int(29), true},
		{"gt at max", num, ">", relation.Int(30), false},
		{"ge at max", num, ">=", relation.Int(30), true},
		{"ge above max", num, ">=", relation.Int(31), false},

		// NaN cells order as equal to everything: <=/>= stay satisfiable
		// out of range, </> do not.
		{"nan saves le", nan, "<=", relation.Int(0), true},
		{"nan saves ge", nan, ">=", relation.Int(100), true},
		{"nan does not save lt", nan, "<", relation.Int(1), false},
		{"nan does not save gt", nan, ">", relation.Int(31), false},

		{"str eq inside", str, "==", relation.Str("c"), true},
		{"str eq outside", str, "==", relation.Str("a"), false},
		{"str lt at min", str, "<", relation.Str("b"), false},
		{"str lt above min", str, "<", relation.Str("c"), true},
		{"str gt at max", str, ">", relation.Str("f"), false},
		{"str numeric lit vs strings", str, "<", relation.Int(0), true}, // lexicographic cells: no float claim

		// Mixed columns: == prunable per class, ordered never prunable
		// (cells straddle both comparison regimes).
		{"mixed eq num outside", mixed, "==", relation.Int(5), false},
		{"mixed eq num inside", mixed, "==", relation.Int(11), true},
		{"mixed eq str outside", mixed, "==", relation.Str("zz"), false},
		{"mixed ordered unprunable", mixed, "<", relation.Int(-1000), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := satisfiable(conjunct{col: "c", op: tc.op, lit: tc.lit}, tc.z, 4)
			if got != tc.want {
				t.Fatalf("satisfiable(%s %v, %+v) = %v, want %v", tc.op, tc.lit, tc.z, got, tc.want)
			}
		})
	}
}

// TestPruningNeverDropsMatches is a randomized soundness check: for
// random segments and random conjunct filters, a pruned segment must
// contain no row satisfying the filter (checked by running the real
// engine on the segment's rows).
func TestPruningNeverDropsMatches(t *testing.T) {
	ctx := context.Background()
	filters := []string{
		"ts < 25", "ts <= 10", "ts > 100", "ts >= 40", "ts == 20",
		"val < 0", "val >= 1.5", "val == -3.25", "sid == \"b\"",
		"sid > \"a\" && ts < 15", "-5 > ts", "ts == -10",
	}
	st := openTestStore(t, false)
	if err := st.AppendSegment(testRows()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSegment([]relation.Row{
		{relation.Int(100), relation.Float(7), relation.Str("q")},
		{relation.Int(200), relation.Float(8), relation.Str("r")},
	}); err != nil {
		t.Fatal(err)
	}
	local := engine.NewLocal(2)
	for _, f := range filters {
		refs, err := st.Segments(engine.Pushdown{Filters: []string{f}})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for i, ref := range refs {
			if !ref.Pruned {
				continue
			}
			_, rows, err := ReadSegmentRows(ref.Path, nil)
			if err != nil {
				t.Fatal(err)
			}
			rel := &relation.Relation{Schema: st.Schema(), Partitions: [][]relation.Row{rows}}
			out, _, err := local.RunStage(ctx, rel, []engine.OpDesc{engine.Filter(f)})
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			if out.NumRows() != 0 {
				t.Fatalf("filter %q: segment %d pruned but %d rows match", f, i, out.NumRows())
			}
		}
	}
}

// TestScanPushdownEquivalence: ScanStage over the store (pruning +
// column restriction) is bitwise-identical to running the same ops on
// the full materialized relation.
func TestScanPushdownEquivalence(t *testing.T) {
	ctx := context.Background()
	st := openTestStore(t, true)
	if err := st.AppendSegment(testRows()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSegment([]relation.Row{
		{relation.Int(100), relation.Float(7), relation.Str("q")},
	}); err != nil {
		t.Fatal(err)
	}
	local := engine.NewLocal(2)
	ops := []engine.OpDesc{
		engine.Filter("ts < 50"),
		engine.Project("ts", "sid"),
	}
	full, err := st.Scan(ctx, engine.Pushdown{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := local.RunStage(ctx, full, ops)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := engine.ScanStage(ctx, local, st, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Schema.Equal(got.Schema) || len(want.Partitions) != len(got.Partitions) {
		t.Fatalf("shape mismatch: %s/%d vs %s/%d", want.Schema, len(want.Partitions), got.Schema, len(got.Partitions))
	}
	for pi := range want.Partitions {
		if !rowsEq(want.Partitions[pi], got.Partitions[pi]) {
			t.Fatalf("partition %d differs", pi)
		}
	}
	// The second segment (ts=100) must actually have been pruned.
	refs, err := st.Segments(engine.Pushdown{Filters: []string{"ts < 50"}})
	if err != nil {
		t.Fatal(err)
	}
	if refs[0].Pruned || !refs[1].Pruned {
		t.Fatalf("want exactly segment 1 pruned, got %+v", refs)
	}
}

func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSegment(testRows()); err != nil {
		t.Fatal(err)
	}
	// Reopen with no schema: adopts the manifest's.
	st2, err := Open(dir, relation.Schema{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Schema().Equal(testSchema()) || st2.NumSegments() != 1 || st2.Rows() != 4 {
		t.Fatalf("reopen lost state: schema %s, %d segs, %d rows", st2.Schema(), st2.NumSegments(), st2.Rows())
	}
	// Appending after reopen must not collide with existing ids.
	if err := st2.AppendSegment(testRows()); err != nil {
		t.Fatal(err)
	}
	if names := st2.SortedSegmentNames(); len(names) != 2 || names[0] == names[1] {
		t.Fatalf("bad segment names %v", names)
	}
	// Reopen with a conflicting schema must fail.
	other := relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt})
	if _, err := Open(dir, other, Options{}); err == nil {
		t.Fatal("schema mismatch must fail Open")
	}
	// No manifest and no schema must fail.
	if _, err := Open(t.TempDir(), relation.Schema{}, Options{}); err == nil {
		t.Fatal("empty dir without schema must fail Open")
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSegment(testRows()); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(mpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, relation.Schema{}, Options{}); err == nil {
		t.Fatal("corrupt manifest must fail Open")
	}
}

// TestCrashRecovery kills the writer at every stage of a segment seal
// and proves the store reopens with previously sealed segments intact
// bit for bit and the torn segment invisible.
func TestCrashRecovery(t *testing.T) {
	for _, stage := range []string{"chunks", "footer", "sync", "rename", "manifest"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, testSchema(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.AppendSegment(testRows()); err != nil {
				t.Fatal(err)
			}
			sealedPath := st.SegmentPaths()[0]
			sealedBytes, err := os.ReadFile(sealedPath)
			if err != nil {
				t.Fatal(err)
			}

			DebugSealFailure = func(s string) error {
				if s == stage {
					return fmt.Errorf("killed at %s", s)
				}
				return nil
			}
			defer func() { DebugSealFailure = nil }()
			if err := st.AppendSegment(testRows()); err == nil {
				t.Fatalf("injected crash at %s did not surface", stage)
			}
			DebugSealFailure = nil

			// Reopen as a fresh process would.
			re, err := Open(dir, relation.Schema{}, Options{})
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", stage, err)
			}
			if re.NumSegments() != 1 {
				t.Fatalf("crash at %s: %d committed segments, want 1", stage, re.NumSegments())
			}
			after, err := os.ReadFile(sealedPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sealedBytes, after) {
				t.Fatalf("crash at %s altered a sealed segment", stage)
			}
			// No temp files survive Open.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if filepath.Ext(e.Name()) == ".tmp" {
					t.Fatalf("crash at %s: %s survived reopen", stage, e.Name())
				}
			}
			// And the store still works: the next append commits.
			if err := re.AppendSegment(testRows()); err != nil {
				t.Fatal(err)
			}
			if got, _, err := ReadSegmentRows(re.SegmentPaths()[1], nil); err != nil || len(got.Cols) != 3 {
				t.Fatalf("post-recovery append unreadable: %v", err)
			}
		})
	}
}

func TestWriterSeal(t *testing.T) {
	st := openTestStore(t, false)
	w := st.Writer()
	if err := w.Seal(); err != nil || st.NumSegments() != 0 {
		t.Fatalf("empty seal must be a no-op (err %v, %d segs)", err, st.NumSegments())
	}
	w.Append(testRows()...)
	if w.Buffered() != 4 {
		t.Fatalf("buffered %d", w.Buffered())
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if st.NumSegments() != 1 || w.Buffered() != 0 {
		t.Fatalf("seal: %d segs, %d buffered", st.NumSegments(), w.Buffered())
	}
}

func TestVerifyMetrics(t *testing.T) {
	if err := VerifyMetrics(); err != nil {
		t.Fatal(err)
	}
}
