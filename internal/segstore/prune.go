// Zone-map pruning: deciding, from a segment's footer alone, that no
// row of the segment can satisfy a pushed-down filter — so the segment
// is never decoded. The pruning contract (docs/STORAGE.md) is strictly
// conservative: prune only when unsatisfiability is *provable* under
// the exact comparison semantics of internal/expr, and keep the
// segment on any doubt. The difftest scan invariant holds pruned scans
// bitwise-equal to full scans, so any unsound rule here is caught by a
// seeded counterexample.
//
// What makes a conjunct provably unsatisfiable is subtler than
// "literal outside [min, max]" because expr compares dynamically typed
// cells:
//
//   - Ordered comparisons (<, <=, >, >=) with a null operand are false,
//     and == against a non-null literal is false for null cells — so a
//     conjunct over an all-null column is unsatisfiable outright.
//   - expr.compareForOrder compares two values as floats only when BOTH
//     are numeric, where strings that parse as numbers count as
//     numeric; otherwise it compares their string renderings. Float
//     bounds may therefore only be trusted when EVERY non-null cell is
//     numeric (ZoneMap.NumOrd == non-null count); one "abc" cell would
//     compare lexicographically and escape the float range.
//   - NaN cells order as EQUAL to everything (compareForOrder returns 0
//     when neither side is less), so <= and >= are satisfiable whenever
//     the column holds a NaN, while < and > never match NaN.
//   - == uses relation.Value.Equal: numeric kinds (int/float only — NOT
//     numeric strings) compare as floats, strings compare exactly, and
//     cross-class is never equal. So a numeric literal can only equal
//     int/float-kind cells inside the float bounds, and a string
//     literal can only equal string-kind cells inside the lexicographic
//     bounds — both prunable even in mixed-kind columns.
//   - != is never pruned: it is TRUE for a null cell against a non-null
//     literal, so even a zone proving "no cell equals L" says nothing.
package segstore

import (
	"fmt"
	"math"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

// conjunct is one prunable atom of a filter: column op literal, with op
// one of < <= > >= ==.
type conjunct struct {
	col string
	op  string
	lit relation.Value
}

// pruneConjuncts parses the pushed filters and extracts every conjunct
// of prunable shape. Filters split on top-level && only; atoms that
// aren't `ident op literal` (either side) are dropped — they simply
// contribute no pruning power.
func pruneConjuncts(filters []string) ([]conjunct, error) {
	var out []conjunct
	for _, src := range filters {
		n, err := expr.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("segstore: pushdown filter %q: %w", src, err)
		}
		collectConjuncts(n, &out)
	}
	return out, nil
}

func collectConjuncts(n expr.Node, out *[]conjunct) {
	b, ok := n.(*expr.Binary)
	if !ok {
		return
	}
	if b.Op == "&&" {
		collectConjuncts(b.L, out)
		collectConjuncts(b.R, out)
		return
	}
	switch b.Op {
	case "<", "<=", ">", ">=", "==":
	default:
		return
	}
	if id, lit, ok := identAndLit(b.L, b.R); ok {
		*out = append(*out, conjunct{col: id, op: b.Op, lit: lit})
	} else if id, lit, ok := identAndLit(b.R, b.L); ok {
		// literal op column: flip the comparison around the column.
		*out = append(*out, conjunct{col: id, op: flipOp(b.Op), lit: lit})
	}
}

// identAndLit matches (Ident, literal) where the literal side is a Lit
// or a negated numeric Lit (the parser emits -5 as Unary{-,Lit 5}).
// Null literals are rejected — every comparison against null is false
// or null-driven, and expr handles those without our help.
func identAndLit(l, r expr.Node) (string, relation.Value, bool) {
	id, ok := l.(*expr.Ident)
	if !ok {
		return "", relation.Value{}, false
	}
	v, ok := litValue(r)
	if !ok || v.K == relation.KindNull {
		return "", relation.Value{}, false
	}
	return id.Name, v, true
}

func litValue(n expr.Node) (relation.Value, bool) {
	switch x := n.(type) {
	case *expr.Lit:
		return x.Value(), true
	case *expr.Unary:
		if x.Op != "-" {
			return relation.Value{}, false
		}
		v, ok := x.X.(*expr.Lit)
		if !ok {
			return relation.Value{}, false
		}
		switch lv := v.Value(); lv.K {
		case relation.KindInt:
			return relation.Int(-lv.I), true
		case relation.KindFloat:
			return relation.Float(-lv.F), true
		}
	}
	return relation.Value{}, false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // == is symmetric
}

// segmentPruned reports whether the footer's zone maps prove some
// conjunct unsatisfiable over the whole segment — one dead conjunct
// kills the filter it came from for every row, which empties the stage
// pipeline at that Filter regardless of what the other ops do.
func segmentPruned(cs []conjunct, foot *footer) bool {
	for _, c := range cs {
		cm := foot.col(c.col)
		if cm == nil {
			continue // unknown column: no claim
		}
		if !satisfiable(c, cm.zone, foot.rows) {
			return true
		}
	}
	return false
}

// satisfiable reports whether some cell of a column with zone map z
// could make `cell (op) lit` true. Any "true" here must be read as
// "cannot rule it out".
func satisfiable(c conjunct, z ZoneMap, nrows int) bool {
	nonNull := nrows - z.Nulls
	if nonNull <= 0 {
		return false // null op non-null-literal is always false
	}
	if c.op == "==" {
		switch c.lit.K {
		case relation.KindInt, relation.KindFloat:
			f := c.lit.AsFloat()
			if math.IsNaN(f) {
				return false // NaN equals nothing
			}
			// Equal's float path covers int/float kinds only; FMin/FMax
			// is a superset range (it also spans numeric strings), so
			// "outside the range" still proves no int/float cell matches.
			return z.NumKind > 0 && z.FHas && z.FMin <= f && f <= z.FMax
		case relation.KindString:
			return z.SHas && z.SMin <= c.lit.S && c.lit.S <= z.SMax
		default:
			return true // bool/bytes: no bounds tracked
		}
	}
	// Ordered comparison. Decide which comparison regime every cell of
	// the column falls into; bail out (true) when the zone can't pin it.
	switch {
	case c.lit.IsNumeric():
		if z.NumOrd != nonNull {
			return true // some cell would compare lexicographically
		}
		f := c.lit.AsFloat()
		if math.IsNaN(f) {
			return true
		}
		switch c.op {
		case "<":
			return z.FHas && z.FMin < f
		case "<=":
			return z.NaNs > 0 || (z.FHas && z.FMin <= f)
		case ">":
			return z.FHas && z.FMax > f
		case ">=":
			return z.NaNs > 0 || (z.FHas && z.FMax >= f)
		}
	case c.lit.K == relation.KindString:
		// Non-numeric string literal: compareForOrder never takes the
		// float path, so every comparison is lexicographic — trustable
		// only when every cell is a string (bounds cover them all).
		if z.Strs != nonNull || !z.SHas {
			return true
		}
		switch c.op {
		case "<":
			return z.SMin < c.lit.S
		case "<=":
			return z.SMin <= c.lit.S
		case ">":
			return z.SMax > c.lit.S
		case ">=":
			return z.SMax >= c.lit.S
		}
	}
	return true
}
