package segstore

import (
	"bytes"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ivnt/internal/colcodec"
	"ivnt/internal/relation"
)

// validSegmentBytes assembles a complete, well-formed segment file
// image in memory (the fuzz baseline every mutation starts from).
func validSegmentBytes(t testing.TB) []byte {
	t.Helper()
	img, err := encodeSegment(testSchema(), testRows(), colcodec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b []byte
	b = append(b, img.header...)
	for _, c := range img.chunks {
		b = append(b, c...)
	}
	return append(b, img.tail...)
}

// assemble builds a segment file from a hand-crafted footer body with a
// CORRECT trailer (length + CRC), so the malicious payload reaches the
// footer parser instead of dying at the checksum.
func assemble(chunks []byte, footerBody []byte) []byte {
	var b []byte
	b = append(b, headerMagic[:]...)
	b = append(b, formatVersion)
	b = append(b, chunks...)
	b = append(b, footerBody...)
	b = appendLE32(b, uint32(len(footerBody)))
	b = appendLE32(b, crc32.ChecksumIEEE(footerBody))
	return append(b, trailerMagic[:]...)
}

// The four checked-in malicious corpus shapes. Each must be rejected
// with an error — never a panic, never a Segment licensing unsound
// pruning.
func maliciousSegments(t testing.TB) map[string][]byte {
	t.Helper()
	valid := validSegmentBytes(t)

	// 1. Footer truncated mid-stream: the trailer (and its CRC) vanish.
	truncated := valid[:len(valid)-7]

	// 2. Zone map claiming FMin > FMax: a crafted footer over one real
	// float chunk. If the parser trusted it, "v < 3" would prune a
	// segment that contains 2.0.
	one := relation.NewSchema(relation.Column{Name: "v", Kind: relation.KindFloat})
	chunk, err := colcodec.Encode(one, []relation.Row{{relation.Float(2)}}, colcodec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := newByteWriter()
	w.byte(formatVersion)
	w.uvarint(1) // rows
	w.uvarint(1) // cols
	w.str("v")
	w.byte(byte(relation.KindFloat))
	w.uvarint(uint64(headerLen))
	w.uvarint(uint64(len(chunk)))
	w.uvarint(0) // nulls
	w.uvarint(1) // numkind
	w.uvarint(1) // numord
	w.uvarint(0) // nans
	w.uvarint(0) // strs
	w.byte(zoneFlagF)
	w.float(5) // FMin
	w.float(1) // FMax  — inverted bounds
	badZone := assemble(chunk, w.bytes())

	// 3. Column-count overflow: a footer claiming 2^20 columns (far past
	// maxCols) to bait a huge allocation before any per-column data.
	w = newByteWriter()
	w.byte(formatVersion)
	w.uvarint(1)
	w.uvarint(1 << 20)
	overflow := assemble(nil, w.bytes())

	// 4. CRC mismatch: one bit flipped inside an otherwise valid footer.
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-trailerLen-3] ^= 0x01
	return map[string][]byte{
		"truncated-footer":      truncated,
		"zone-min-gt-max":       badZone,
		"column-count-overflow": overflow,
		"footer-crc-mismatch":   flipped,
	}
}

// maliciousChunkSegments builds segments whose footers are VALID — they
// open fine, their zone maps parse, the CRC holds — but whose column
// chunks carry malicious dict/RLE payloads. Rejection must happen at
// ReadColumns, inside the colcodec layer.
func maliciousChunkSegments(t testing.TB) map[string][]byte {
	t.Helper()
	// Hand-assembled colcodec chunk: one int column "v", eight rows,
	// flagEncoded, uncompressed.
	chunkHeader := func() *byteWriter {
		w := newByteWriter()
		w.byte('C')
		w.byte('1')
		w.byte(0x02) // flagEncoded
		w.uvarint(8) // nrows
		w.uvarint(1) // ncols
		return w
	}
	zigzag := func(w *byteWriter, v int64) { w.uvarint(uint64(v)<<1 ^ uint64(v>>63)) }

	// Dictionary of one entry, but the last index points to slot 5.
	w := chunkHeader()
	w.byte(0x01) // encDict
	w.byte(byte(relation.KindInt))
	w.uvarint(1) // dcount
	zigzag(w, 7) // the single dictionary value
	for i := 0; i < 7; i++ {
		w.uvarint(0)
	}
	w.uvarint(5) // index out of range
	dictChunk := w.bytes()

	// Two runs claiming 7+9 = 16 cells against 8 non-null rows.
	w = chunkHeader()
	w.byte(0x02) // encRLE
	w.byte(byte(relation.KindInt))
	w.uvarint(2) // nruns
	w.uvarint(7)
	zigzag(w, 1)
	w.uvarint(9) // overflows the 1 remaining cell
	zigzag(w, 2)
	rleChunk := w.bytes()

	// Wrap each chunk in a fully consistent footer: counts match the
	// claimed 8 int rows, float bounds are ordered, CRC is correct.
	wrap := func(chunk []byte) []byte {
		w := newByteWriter()
		w.byte(formatVersion)
		w.uvarint(8) // rows
		w.uvarint(1) // cols
		w.str("v")
		w.byte(byte(relation.KindInt))
		w.uvarint(uint64(headerLen))
		w.uvarint(uint64(len(chunk)))
		w.uvarint(0) // nulls
		w.uvarint(8) // numkind
		w.uvarint(8) // numord
		w.uvarint(0) // nans
		w.uvarint(0) // strs
		w.byte(zoneFlagF)
		w.float(0)
		w.float(7)
		return assemble(chunk, w.bytes())
	}
	return map[string][]byte{
		"dict-index-out-of-range": wrap(dictChunk),
		"rle-run-overflow":        wrap(rleChunk),
	}
}

// allMaliciousSegments merges the footer-level and chunk-level shapes
// for corpus check-in and fuzz seeding.
func allMaliciousSegments(t testing.TB) map[string][]byte {
	all := maliciousSegments(t)
	for name, data := range maliciousChunkSegments(t) {
		all[name] = data
	}
	return all
}

func TestMaliciousSegmentsRejected(t *testing.T) {
	for name, data := range maliciousSegments(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := OpenSegmentReaderAt(bytes.NewReader(data), int64(len(data))); err == nil {
				t.Fatalf("%s accepted (%d bytes)", name, len(data))
			}
		})
	}
}

// TestMaliciousChunksRejected: the chunk-level shapes get PAST the
// footer gate (open succeeds — the footer really is valid) and die in
// colcodec validation when the chunks are decoded.
func TestMaliciousChunksRejected(t *testing.T) {
	for name, data := range maliciousChunkSegments(t) {
		t.Run(name, func(t *testing.T) {
			g, err := OpenSegmentReaderAt(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatalf("%s rejected at open — it must reach chunk decode: %v", name, err)
			}
			if _, _, err := g.ReadColumns(nil); err == nil {
				t.Fatalf("%s decoded cleanly", name)
			}
		})
	}
}

// TestFuzzCorpusCheckedIn pins the malicious shapes as seed-corpus
// files under testdata/fuzz/FuzzSegmentDecode, so `go test -fuzz` (and
// plain runs of the fuzz target) always start from them. Regenerate
// with UPDATE_FUZZ_CORPUS=1 after changing the format.
func TestFuzzCorpusCheckedIn(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecode")
	update := os.Getenv("UPDATE_FUZZ_CORPUS") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range allMaliciousSegments(t) {
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus file missing (run with UPDATE_FUZZ_CORPUS=1 to regenerate): %v", err)
		}
		if string(got) != want {
			t.Fatalf("corpus file %s is stale (run with UPDATE_FUZZ_CORPUS=1 to regenerate)", name)
		}
	}
}

// FuzzSegmentDecode hardens the whole read path: arbitrary bytes must
// either fail to open or yield a segment whose columns decode without
// panics, allocation blow-ups, or rows beyond the footer's claim.
func FuzzSegmentDecode(f *testing.F) {
	f.Add(validSegmentBytes(f))
	f.Add([]byte{})
	f.Add([]byte("IVSG\x01"))
	for _, data := range allMaliciousSegments(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := OpenSegmentReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if g.Rows() < 0 || g.Rows() > maxRows {
			t.Fatalf("accepted segment with %d rows", g.Rows())
		}
		if s := g.Schema(); s.Len() > maxCols {
			t.Fatalf("accepted segment with %d columns", s.Len())
		}
		// Zone maps of an accepted segment must never be self-inverted —
		// that is exactly the shape that licenses unsound pruning.
		for _, c := range g.Schema().Cols {
			z, ok := g.Zone(c.Name)
			if !ok {
				t.Fatalf("column %q lost its zone", c.Name)
			}
			if z.FHas && (math.IsNaN(z.FMin) || z.FMin > z.FMax) {
				t.Fatalf("accepted inverted float bounds [%g, %g]", z.FMin, z.FMax)
			}
			if z.SHas && z.SMin > z.SMax {
				t.Fatalf("accepted inverted string bounds [%q, %q]", z.SMin, z.SMax)
			}
		}
		// Chunk decode must fail cleanly or produce the footer's row count.
		if _, rows, err := g.ReadColumns(nil); err == nil && len(rows) != g.Rows() {
			t.Fatalf("decoded %d rows, footer says %d", len(rows), g.Rows())
		}
	})
}

// FuzzFooter drills the footer parser directly, without the CRC gate in
// front of it: every structural invariant must hold by validation, not
// by trust in the writer.
func FuzzFooter(f *testing.F) {
	img, err := encodeSegment(testSchema(), testRows(), colcodec.Options{})
	if err != nil {
		f.Fatal(err)
	}
	var dataEnd int64 = int64(headerLen)
	for _, c := range img.chunks {
		dataEnd += int64(len(c))
	}
	f.Add(img.tail[:len(img.tail)-trailerLen], uint32(dataEnd))
	f.Add([]byte{formatVersion, 0, 0}, uint32(headerLen))
	f.Fuzz(func(t *testing.T, body []byte, end uint32) {
		foot, err := parseFooter(body, int64(end))
		if err != nil {
			return
		}
		if foot.rows < 0 || foot.rows > maxRows || len(foot.cols) > maxCols {
			t.Fatalf("accepted footer rows=%d cols=%d", foot.rows, len(foot.cols))
		}
		prevEnd := int64(headerLen)
		for _, c := range foot.cols {
			if c.off < prevEnd || c.off+c.size > int64(end) {
				t.Fatalf("accepted out-of-bounds chunk [%d,+%d)", c.off, c.size)
			}
			prevEnd = c.off + c.size
		}
	})
}
