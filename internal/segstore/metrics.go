// Segment-store observability: the segstore_* counter catalogue,
// pre-registered at init so every /metrics scrape carries the full
// family set, and gated by cmd/vetmetrics like the engine and cluster
// catalogues (see docs/OBSERVABILITY.md).
package segstore

import (
	"fmt"

	"ivnt/internal/telemetry"
)

var (
	mSegmentsWritten = telemetry.Default().Counter("segstore_segments_written_total",
		"Segments sealed and committed to a store manifest.")
	mSegmentsPruned = telemetry.Default().Counter("segstore_segments_pruned_total",
		"Segments skipped by zone-map pruning (footer read, chunks never decoded).")
	mSegmentsScanned = telemetry.Default().Counter("segstore_segments_scanned_total",
		"Segments whose column chunks were decoded for a scan.")
	mBytesDecoded = telemetry.Default().Counter("segstore_bytes_decoded_total",
		"Chunk bytes read and decoded from segment files.")
	mCompactions = telemetry.Default().Counter("segstore_compactions_total",
		"Adjacent segment groups rewritten into one segment by compaction.")
	mSegmentsMmapped = telemetry.Default().Counter("segstore_mmap_segments_total",
		"Segment files opened via mmap (zero-copy chunk reads).")
)

// metricNames lists the families this package must register.
var metricNames = []string{
	"segstore_segments_written_total",
	"segstore_segments_pruned_total",
	"segstore_segments_scanned_total",
	"segstore_bytes_decoded_total",
	"segstore_compactions_total",
	"segstore_mmap_segments_total",
}

// VerifyMetrics is the vet-metrics gate for the segstore catalogue: it
// fails when any segstore_* family is missing from the default registry
// or registered under the wrong type.
func VerifyMetrics() error {
	found := map[string]string{}
	for _, fam := range telemetry.Default().Snapshot() {
		found[fam.Name] = fam.Type
	}
	for _, name := range metricNames {
		typ, ok := found[name]
		if !ok {
			return fmt.Errorf("segstore metric family %q is not registered", name)
		}
		if typ != telemetry.TypeCounter {
			return fmt.Errorf("segstore metric family %q registered as %s, want %s", name, typ, telemetry.TypeCounter)
		}
	}
	return nil
}
