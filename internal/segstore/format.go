// Package segstore is the persistent columnar segment store: the
// on-disk system of record behind the engine's scan path. A relation is
// stored as a directory of immutable segment files plus a CRC'd
// manifest; each segment holds one colcodec chunk per column and a
// footer with per-column zone maps, so a scan can decode only the
// columns a stage touches and skip whole segments whose zone maps prove
// a pushed-down filter unsatisfiable (see docs/STORAGE.md).
//
// Segment file layout (all multi-byte integers little-endian; varints
// are unsigned unless noted):
//
//	header   "IVSG" version:uint8
//	chunks   one colcodec payload per column, contiguous — column i of
//	         the stored schema encoded standalone (single-column
//	         colcodec stream), so a reader can fetch any column with one
//	         ReadAt of [off, off+size) and nothing else
//	footer   see encodeFooter; carries the schema, each chunk's
//	         [off, size), and each column's zone map
//	trailer  footerLen:uint32 footerCRC:uint32 "IVS1"
//
// The fixed-size trailer makes lazy access possible: a reader seeks to
// EOF-12, validates the CRC'd footer, and from then on touches only the
// chunk byte ranges it needs. Unprojected columns are never read, let
// alone decoded.
//
// The footer parser is hardened to the same standard as colcodec's
// decoder (it shares its row cap): every count, length and offset is
// bounds-checked against the file size, chunks must be strictly
// ascending and non-overlapping, and zone maps must be internally
// consistent (min <= max, counts that add up) — a corrupt or
// adversarial segment yields an error, never a panic or an OOM. The
// FuzzFooter / FuzzSegmentDecode targets pin this down.
package segstore

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync/atomic"

	"ivnt/internal/colcodec"
	"ivnt/internal/relation"
)

const (
	formatVersion = 1

	headerLen  = 5  // "IVSG" + version
	trailerLen = 12 // footerLen u32 | footerCRC u32 | "IVS1"

	// maxRows mirrors colcodec's decode cap: a footer claiming more
	// rows than any partition could hold is corrupt, not big.
	maxRows = 1 << 28
	// maxCols bounds the schema width a footer may claim.
	maxCols = 4096
	// maxNameLen bounds one column name.
	maxNameLen = 256
	// maxZoneStrLen bounds the string min/max carried in a zone map
	// (the writer stores bounds verbatim; trace strings are short).
	maxZoneStrLen = 1 << 16
	// maxFooterLen bounds the footer allocation before the CRC check.
	maxFooterLen = 1 << 24
)

var (
	headerMagic  = [4]byte{'I', 'V', 'S', 'G'}
	trailerMagic = [4]byte{'I', 'V', 'S', '1'}
)

// ZoneMap summarizes one column of one segment for pruning. The counts
// partition the column's cells by how the expression engine would
// compare them (see prune.go for the exact rules each field licenses):
// Nulls counts null cells; of the non-null cells, NumKind are int/float
// kinds, NumOrd are numerically ordered (int/float kinds plus strings
// that parse as numbers — expr.compareForOrder compares those as
// floats), NaNs are the NumOrd cells whose float value is NaN, and Strs
// are string-kind cells. FMin/FMax bound the float values of the
// non-NaN NumOrd cells (valid when FHas); SMin/SMax bound the string
// cells lexicographically (valid when SHas).
type ZoneMap struct {
	Nulls   int
	NumKind int
	NumOrd  int
	NaNs    int
	Strs    int

	FHas       bool
	FMin, FMax float64

	SHas       bool
	SMin, SMax string
}

// zoneOf computes column ci's zone map over rows.
func zoneOf(rows []relation.Row, ci int) ZoneMap {
	var z ZoneMap
	for _, r := range rows {
		v := r[ci]
		if v.K == relation.KindNull {
			z.Nulls++
			continue
		}
		if v.K == relation.KindInt || v.K == relation.KindFloat {
			z.NumKind++
		}
		if v.K == relation.KindString {
			z.Strs++
			if !z.SHas || v.S < z.SMin {
				z.SMin = v.S
			}
			if !z.SHas || v.S > z.SMax {
				z.SMax = v.S
			}
			z.SHas = true
		}
		if v.IsNumeric() {
			z.NumOrd++
			f := v.AsFloat()
			if math.IsNaN(f) {
				z.NaNs++
				continue
			}
			if !z.FHas || f < z.FMin {
				z.FMin = f
			}
			if !z.FHas || f > z.FMax {
				z.FMax = f
			}
			z.FHas = true
		}
	}
	return z
}

// colMeta is one column's footer entry.
type colMeta struct {
	name string
	kind relation.Kind // advisory declared kind (cells carry their own)
	off  int64         // absolute file offset of the colcodec chunk
	size int64
	zone ZoneMap
}

// footer is the parsed tail of a segment file.
type footer struct {
	rows int
	cols []colMeta
}

// schema reconstructs the stored schema from the footer.
func (f *footer) schema() relation.Schema {
	cols := make([]relation.Column, len(f.cols))
	for i, c := range f.cols {
		cols[i] = relation.Column{Name: c.name, Kind: c.kind}
	}
	return relation.Schema{Cols: cols}
}

// col returns the named column's footer entry, or nil.
func (f *footer) col(name string) *colMeta {
	for i := range f.cols {
		if f.cols[i].name == name {
			return &f.cols[i]
		}
	}
	return nil
}

const (
	zoneFlagF = 0x01
	zoneFlagS = 0x02
)

// encodeFooter serializes the footer body (without the trailer):
//
//	version:uint8 nrows:uvarint ncols:uvarint
//	per column:
//	  nameLen:uvarint name kind:uint8 off:uvarint size:uvarint
//	  nulls numKind numOrd nans strs  (five uvarints)
//	  zoneFlags:uint8
//	  [fmin:float64 fmax:float64]      when zoneFlags&zoneFlagF
//	  [sminLen:uvarint smin smaxLen:uvarint smax]  when zoneFlags&zoneFlagS
func encodeFooter(f *footer) []byte {
	w := newByteWriter()
	w.byte(formatVersion)
	w.uvarint(uint64(f.rows))
	w.uvarint(uint64(len(f.cols)))
	for _, c := range f.cols {
		w.str(c.name)
		w.byte(byte(c.kind))
		w.uvarint(uint64(c.off))
		w.uvarint(uint64(c.size))
		z := c.zone
		w.uvarint(uint64(z.Nulls))
		w.uvarint(uint64(z.NumKind))
		w.uvarint(uint64(z.NumOrd))
		w.uvarint(uint64(z.NaNs))
		w.uvarint(uint64(z.Strs))
		var flags byte
		if z.FHas {
			flags |= zoneFlagF
		}
		if z.SHas {
			flags |= zoneFlagS
		}
		w.byte(flags)
		if z.FHas {
			w.float(z.FMin)
			w.float(z.FMax)
		}
		if z.SHas {
			w.str(z.SMin)
			w.str(z.SMax)
		}
	}
	return w.bytes()
}

// parseFooter decodes and validates a footer body. dataEnd is the file
// offset where the footer begins — chunks must live entirely inside
// [headerLen, dataEnd). Every structural claim is checked here so
// readers past this point can trust offsets, sizes and zone maps.
func parseFooter(data []byte, dataEnd int64) (*footer, error) {
	rd := &reader{buf: data}
	ver, err := rd.byte()
	if err != nil {
		return nil, fmt.Errorf("segstore: footer version: %w", err)
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("segstore: unsupported footer version %d", ver)
	}
	nrows, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("segstore: footer rows: %w", err)
	}
	if nrows > maxRows {
		return nil, fmt.Errorf("segstore: footer claims %d rows, cap %d", nrows, maxRows)
	}
	ncols, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("segstore: footer cols: %w", err)
	}
	if ncols > maxCols {
		return nil, fmt.Errorf("segstore: footer claims %d columns, cap %d", ncols, maxCols)
	}
	f := &footer{rows: int(nrows), cols: make([]colMeta, 0, ncols)}
	seen := make(map[string]bool, ncols)
	prevEnd := int64(headerLen)
	nonNullMax := int(nrows)
	for i := 0; i < int(ncols); i++ {
		c, err := parseColMeta(rd, nonNullMax)
		if err != nil {
			return nil, fmt.Errorf("segstore: footer column %d: %w", i, err)
		}
		if seen[c.name] {
			return nil, fmt.Errorf("segstore: footer column %d: duplicate name %q", i, c.name)
		}
		seen[c.name] = true
		// Chunks must tile the data region in order: ascending,
		// non-overlapping, inside [headerLen, dataEnd).
		if c.off < prevEnd || c.size < 0 || c.off+c.size > dataEnd || c.off+c.size < c.off {
			return nil, fmt.Errorf("segstore: footer column %d (%q): chunk [%d,+%d) outside [%d,%d)",
				i, c.name, c.off, c.size, prevEnd, dataEnd)
		}
		prevEnd = c.off + c.size
		f.cols = append(f.cols, c)
	}
	if len(rd.rest()) != 0 {
		return nil, fmt.Errorf("segstore: footer has %d trailing bytes", len(rd.rest()))
	}
	return f, nil
}

// parseColMeta reads one column entry and validates its zone map's
// internal consistency against the segment row count.
func parseColMeta(rd *reader, nrows int) (colMeta, error) {
	var c colMeta
	name, err := rd.str(maxNameLen)
	if err != nil {
		return c, fmt.Errorf("name: %w", err)
	}
	if name == "" {
		return c, fmt.Errorf("empty name")
	}
	c.name = name
	k, err := rd.byte()
	if err != nil {
		return c, fmt.Errorf("kind: %w", err)
	}
	if k > byte(relation.KindBytes) {
		return c, fmt.Errorf("bad kind %d", k)
	}
	c.kind = relation.Kind(k)
	off, err := rd.uvarint()
	if err != nil {
		return c, fmt.Errorf("offset: %w", err)
	}
	size, err := rd.uvarint()
	if err != nil {
		return c, fmt.Errorf("size: %w", err)
	}
	if off > math.MaxInt64 || size > math.MaxInt64 {
		return c, fmt.Errorf("chunk bounds overflow")
	}
	c.off, c.size = int64(off), int64(size)

	z := &c.zone
	for _, field := range []struct {
		name string
		dst  *int
	}{
		{"nulls", &z.Nulls}, {"numkind", &z.NumKind}, {"numord", &z.NumOrd},
		{"nans", &z.NaNs}, {"strs", &z.Strs},
	} {
		u, err := rd.uvarint()
		if err != nil {
			return c, fmt.Errorf("zone %s: %w", field.name, err)
		}
		if u > uint64(nrows) {
			return c, fmt.Errorf("zone %s %d exceeds %d rows", field.name, u, nrows)
		}
		*field.dst = int(u)
	}
	nonNull := nrows - z.Nulls
	// The counts must describe one consistent partition of the cells:
	// numeric-ordered cells are the int/float kinds plus numeric
	// strings, NaNs are a subset of the ordered cells, and kinds can't
	// exceed the non-null population.
	if z.NumKind > z.NumOrd || z.NaNs > z.NumOrd || z.NumOrd > nonNull ||
		z.Strs > nonNull || z.NumKind+z.Strs > nonNull || z.NumOrd-z.NumKind > z.Strs {
		return c, fmt.Errorf("inconsistent zone counts (nulls=%d numkind=%d numord=%d nans=%d strs=%d of %d rows)",
			z.Nulls, z.NumKind, z.NumOrd, z.NaNs, z.Strs, nrows)
	}
	flags, err := rd.byte()
	if err != nil {
		return c, fmt.Errorf("zone flags: %w", err)
	}
	if flags&^(zoneFlagF|zoneFlagS) != 0 {
		return c, fmt.Errorf("bad zone flags %#x", flags)
	}
	z.FHas = flags&zoneFlagF != 0
	z.SHas = flags&zoneFlagS != 0
	// The flags are implied by the counts; a mismatch (e.g. float
	// bounds for a column with no orderable numeric cell) is corruption.
	if z.FHas != (z.NumOrd > z.NaNs) {
		return c, fmt.Errorf("float bounds flag %v contradicts counts (numord=%d nans=%d)", z.FHas, z.NumOrd, z.NaNs)
	}
	if z.SHas != (z.Strs > 0) {
		return c, fmt.Errorf("string bounds flag %v contradicts count strs=%d", z.SHas, z.Strs)
	}
	if z.FHas {
		if z.FMin, err = rd.float(); err != nil {
			return c, fmt.Errorf("fmin: %w", err)
		}
		if z.FMax, err = rd.float(); err != nil {
			return c, fmt.Errorf("fmax: %w", err)
		}
		// min > max (or NaN bounds) would license unsound pruning — a
		// crafted footer of exactly this shape is in the fuzz corpus.
		if math.IsNaN(z.FMin) || math.IsNaN(z.FMax) || z.FMin > z.FMax {
			return c, fmt.Errorf("bad float bounds [%g, %g]", z.FMin, z.FMax)
		}
	}
	if z.SHas {
		if z.SMin, err = rd.str(maxZoneStrLen); err != nil {
			return c, fmt.Errorf("smin: %w", err)
		}
		if z.SMax, err = rd.str(maxZoneStrLen); err != nil {
			return c, fmt.Errorf("smax: %w", err)
		}
		if z.SMin > z.SMax {
			return c, fmt.Errorf("bad string bounds [%q, %q]", z.SMin, z.SMax)
		}
	}
	return c, nil
}

// ------------------------------------------------------------- reading

// Mmap controls whether OpenSegment maps committed segment files into
// memory instead of issuing per-chunk pread copies. On by default where
// the platform supports it (see mmap_unix.go); a failed map silently
// falls back to file reads, and the CRC/footer validation is identical
// either way. Flip off to A/B the copying path.
var Mmap atomic.Bool

func init() { Mmap.Store(mmapSupported) }

// Segment is an open segment file: footer parsed and validated, chunks
// read lazily per column. The zero decode guarantee lives here — only
// ReadColumns touches chunk bytes, and only for the columns asked.
type Segment struct {
	path string
	r    io.ReaderAt
	f    *os.File // non-nil when opened from a path (owned; Close closes it)
	mm   []byte   // non-nil when the file is mmapped (Close unmaps)
	foot *footer
}

// OpenSegment opens a segment file and validates its header, trailer
// and footer (chunk bytes stay untouched).
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	g, err := OpenSegmentReaderAt(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	g.path, g.f = path, f
	if Mmap.Load() {
		if mm, err := mmapFile(f, st.Size()); err == nil {
			g.mm = mm
			mSegmentsMmapped.Inc()
		}
	}
	return g, nil
}

// OpenSegmentReaderAt opens a segment over any ReaderAt (the fuzz
// harness feeds adversarial byte slices through here). The caller
// retains ownership of r.
func OpenSegmentReaderAt(r io.ReaderAt, size int64) (*Segment, error) {
	if size < headerLen+trailerLen {
		return nil, fmt.Errorf("segstore: %d bytes is too short for a segment", size)
	}
	var hdr [headerLen]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("segstore: header: %w", err)
	}
	if [4]byte(hdr[:4]) != headerMagic {
		return nil, fmt.Errorf("segstore: bad magic %q", hdr[:4])
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("segstore: unsupported version %d", hdr[4])
	}
	var tr [trailerLen]byte
	if _, err := r.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("segstore: trailer: %w", err)
	}
	if [4]byte(tr[8:12]) != trailerMagic {
		return nil, fmt.Errorf("segstore: bad trailer magic %q (truncated segment?)", tr[8:12])
	}
	flen := int64(le32(tr[0:4]))
	if flen == 0 || flen > maxFooterLen || flen > size-headerLen-trailerLen {
		return nil, fmt.Errorf("segstore: implausible footer length %d in %d-byte file", flen, size)
	}
	fb := make([]byte, flen)
	footOff := size - trailerLen - flen
	if _, err := r.ReadAt(fb, footOff); err != nil {
		return nil, fmt.Errorf("segstore: footer: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(fb), le32(tr[4:8]); got != want {
		return nil, fmt.Errorf("segstore: footer CRC mismatch (got %08x, want %08x)", got, want)
	}
	foot, err := parseFooter(fb, footOff)
	if err != nil {
		return nil, err
	}
	return &Segment{r: r, foot: foot}, nil
}

// Close releases the mapping and the underlying file (no-op for
// ReaderAt-backed segments).
func (g *Segment) Close() error {
	if g.mm != nil {
		_ = munmapFile(g.mm)
		g.mm = nil
	}
	if g.f != nil {
		return g.f.Close()
	}
	return nil
}

// sliceAt returns the chunk bytes [off, off+size): a zero-copy window
// into the mapping when the segment is mmapped, a pread copy otherwise.
// The footer parser already proved the range lies inside the data
// region. Handing the mapping out directly is safe because
// colcodec.Decode never retains its input — strings and byte cells are
// copied out during decode.
func (g *Segment) sliceAt(off, size int64) ([]byte, error) {
	if g.mm != nil && off >= 0 && size >= 0 && off+size <= int64(len(g.mm)) {
		return g.mm[off : off+size : off+size], nil
	}
	chunk := make([]byte, size)
	if _, err := g.r.ReadAt(chunk, off); err != nil {
		return nil, err
	}
	return chunk, nil
}

// Rows returns the segment's row count (from the footer, no decode).
func (g *Segment) Rows() int { return g.foot.rows }

// Schema returns the stored schema.
func (g *Segment) Schema() relation.Schema { return g.foot.schema() }

// Zone returns the named column's zone map (zero value if absent).
func (g *Segment) Zone(name string) (ZoneMap, bool) {
	if c := g.foot.col(name); c != nil {
		return c.zone, true
	}
	return ZoneMap{}, false
}

// ReadColumns decodes the named columns (nil = all, in stored order)
// and assembles them into rows. Only the requested chunks are read from
// the file; each chunk must decode to exactly the footer's row count.
func (g *Segment) ReadColumns(cols []string) (relation.Schema, []relation.Row, error) {
	metas := make([]*colMeta, 0, len(cols))
	if cols == nil {
		for i := range g.foot.cols {
			metas = append(metas, &g.foot.cols[i])
		}
	} else {
		for _, name := range cols {
			c := g.foot.col(name)
			if c == nil {
				return relation.Schema{}, nil, fmt.Errorf("segstore: %s: no column %q", g.path, name)
			}
			metas = append(metas, c)
		}
	}
	n := g.foot.rows
	rows := make([]relation.Row, n)
	cells := make([]relation.Value, n*len(metas))
	for i := range rows {
		rows[i] = cells[i*len(metas) : (i+1)*len(metas) : (i+1)*len(metas)]
	}
	outCols := make([]relation.Column, len(metas))
	var decoded int64
	for mi, c := range metas {
		outCols[mi] = relation.Column{Name: c.name, Kind: c.kind}
		chunk, err := g.sliceAt(c.off, c.size)
		if err != nil {
			return relation.Schema{}, nil, fmt.Errorf("segstore: %s: column %q chunk: %w", g.path, c.name, err)
		}
		decoded += c.size
		one := relation.NewSchema(outCols[mi])
		colRows, err := colcodec.Decode(one, chunk)
		if err != nil {
			return relation.Schema{}, nil, fmt.Errorf("segstore: %s: column %q: %w", g.path, c.name, err)
		}
		if len(colRows) != n {
			return relation.Schema{}, nil, fmt.Errorf("segstore: %s: column %q has %d rows, footer says %d",
				g.path, c.name, len(colRows), n)
		}
		for ri, cr := range colRows {
			rows[ri][mi] = cr[0]
		}
	}
	mSegmentsScanned.Inc()
	mBytesDecoded.Add(decoded)
	return relation.Schema{Cols: outCols}, rows, nil
}

// ReadSegmentRows opens path and decodes the named columns (nil = all):
// the one-call read used by cluster executors running segment-scheduled
// tasks.
func ReadSegmentRows(path string, cols []string) (relation.Schema, []relation.Row, error) {
	g, err := OpenSegment(path)
	if err != nil {
		return relation.Schema{}, nil, err
	}
	defer g.Close()
	return g.ReadColumns(cols)
}

// ------------------------------------------------------------- writing

// encodeSegment lays out a whole segment file image for rows under
// schema s. Split into parts so the seal path can place crash hooks
// between chunk, footer and sync stages.
type segmentImage struct {
	header []byte
	chunks [][]byte
	tail   []byte // footer + trailer
}

func encodeSegment(s relation.Schema, rows []relation.Row, opts colcodec.Options) (*segmentImage, error) {
	img := &segmentImage{header: append(append([]byte{}, headerMagic[:]...), formatVersion)}
	foot := &footer{rows: len(rows), cols: make([]colMeta, s.Len())}
	off := int64(headerLen)
	colRows := make([]relation.Row, len(rows))
	for ci, col := range s.Cols {
		for ri, r := range rows {
			if len(r) != s.Len() {
				return nil, fmt.Errorf("segstore: row %d has %d cells, schema has %d", ri, len(r), s.Len())
			}
			colRows[ri] = relation.Row{r[ci]}
		}
		chunk, err := colcodec.Encode(relation.NewSchema(col), colRows, opts)
		if err != nil {
			return nil, fmt.Errorf("segstore: column %q: %w", col.Name, err)
		}
		img.chunks = append(img.chunks, chunk)
		foot.cols[ci] = colMeta{
			name: col.Name,
			kind: col.Kind,
			off:  off,
			size: int64(len(chunk)),
			zone: zoneOf(rows, ci),
		}
		off += int64(len(chunk))
	}
	fb := encodeFooter(foot)
	tail := make([]byte, 0, len(fb)+trailerLen)
	tail = append(tail, fb...)
	tail = appendLE32(tail, uint32(len(fb)))
	tail = appendLE32(tail, crc32.ChecksumIEEE(fb))
	tail = append(tail, trailerMagic[:]...)
	img.tail = tail
	return img, nil
}

// ------------------------------------------------------------- byte helpers

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func appendLE32(b []byte, u uint32) []byte {
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

// byteWriter builds the footer body.
type byteWriter struct{ b []byte }

func newByteWriter() *byteWriter { return &byteWriter{} }

func (w *byteWriter) byte(v byte) { w.b = append(w.b, v) }

func (w *byteWriter) uvarint(u uint64) {
	for u >= 0x80 {
		w.b = append(w.b, byte(u)|0x80)
		u >>= 7
	}
	w.b = append(w.b, byte(u))
}

func (w *byteWriter) float(f float64) {
	u := math.Float64bits(f)
	w.b = append(w.b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func (w *byteWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

func (w *byteWriter) bytes() []byte { return w.b }

// reader is a bounds-checked cursor over the footer body.
type reader struct {
	buf []byte
	off int
}

func (r *reader) rest() []byte { return r.buf[r.off:] }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	var u uint64
	for shift := 0; shift < 64; shift += 7 {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		u |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return u, nil
		}
	}
	return 0, fmt.Errorf("uvarint overflow")
}

func (r *reader) float() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.off : r.off+8]
	r.off += 8
	u := uint64(le32(b[:4])) | uint64(le32(b[4:]))<<32
	return math.Float64frombits(u), nil
}

func (r *reader) str(maxLen int) (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if l > uint64(maxLen) {
		return "", fmt.Errorf("string length %d exceeds cap %d", l, maxLen)
	}
	if r.off+int(l) > len(r.buf) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(r.buf[r.off : r.off+int(l)])
	r.off += int(l)
	return s, nil
}
