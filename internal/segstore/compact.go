// Background compaction: many small sealed segments become few large
// re-encoded ones. Streaming ingest and per-signal extraction both
// produce micro-segments; every one costs a footer read, an open, and a
// partition slot per scan. Compact rewrites adjacent runs of small
// segments into one segment under the same tmp-rename seal contract as
// AppendSegment, splices the manifest atomically, and bumps the
// generation — so serve-layer result caches invalidate by construction,
// exactly as if new data had been ingested.
//
// Readers never see a half-compaction: the manifest write is the commit
// point, and the replaced files are deleted one full compaction cycle
// AFTER the splice commits (or by the next Open, which reclaims any
// segment file the manifest does not name). A scan that snapshotted the
// pre-compaction segment list keeps reading files that still exist.
package segstore

import (
	"fmt"
	"os"
	"path/filepath"

	"ivnt/internal/relation"
)

// CompactOptions tune one Compact pass.
type CompactOptions struct {
	// TargetRows caps the rows of one rewritten segment (default 64 Ki).
	// Segments at or above it are left alone.
	TargetRows int

	// MinSegments is the smallest adjacent run worth rewriting
	// (default 2; values below 2 are meaningless and raised to it).
	MinSegments int
}

func (o CompactOptions) withDefaults() CompactOptions {
	if o.TargetRows <= 0 {
		o.TargetRows = 1 << 16
	}
	if o.MinSegments < 2 {
		o.MinSegments = 2
	}
	return o
}

// planGroups picks adjacent runs of small segments to merge: each group
// has at least MinSegments members and at most TargetRows combined
// rows. Adjacency preserves the store's row order — the concatenated
// full scan is bitwise-identical before and after.
func planGroups(segs []manifestSeg, opts CompactOptions) [][]manifestSeg {
	var groups [][]manifestSeg
	var cur []manifestSeg
	curRows := 0
	flush := func() {
		if len(cur) >= opts.MinSegments {
			groups = append(groups, cur)
		}
		cur, curRows = nil, 0
	}
	for _, s := range segs {
		if s.Rows >= opts.TargetRows {
			flush()
			continue
		}
		if curRows+s.Rows > opts.TargetRows {
			flush()
		}
		cur = append(cur, s)
		curRows += s.Rows
	}
	flush()
	return groups
}

// Compact rewrites adjacent runs of small segments into single larger
// ones (re-encoded under the store's current Options) and returns the
// number of groups rewritten. Each group commits independently — a
// failure mid-pass leaves every earlier group committed and the store
// consistent. Safe to run concurrently with appends and scans; at most
// one Compact runs at a time.
func (st *Store) Compact(opts CompactOptions) (int, error) {
	opts = opts.withDefaults()
	st.compactMu.Lock()
	defer st.compactMu.Unlock()

	// Delete the files retired by the PREVIOUS pass: any scan that could
	// have held the pre-compaction manifest has had a full cycle to
	// finish with them.
	st.mu.Lock()
	retired := st.retired
	st.retired = nil
	segs := append([]manifestSeg(nil), st.segs...)
	schema := st.schema
	st.mu.Unlock()
	for _, path := range retired {
		_ = os.Remove(path)
	}

	done := 0
	for _, grp := range planGroups(segs, opts) {
		if err := st.compactGroup(schema, grp); err != nil {
			return done, err
		}
		done++
		mCompactions.Inc()
	}
	return done, nil
}

// compactGroup rewrites one adjacent group into a single new segment
// and splices the manifest. The group's rows are read outside the store
// lock (sealed segments are immutable); only the manifest splice holds
// it.
func (st *Store) compactGroup(schema relation.Schema, grp []manifestSeg) error {
	var rows []relation.Row
	for _, e := range grp {
		s, segRows, err := ReadSegmentRows(filepath.Join(st.dir, e.Name), nil)
		if err != nil {
			return fmt.Errorf("segstore: compact read %s: %w", e.Name, err)
		}
		if !s.Equal(schema) {
			return fmt.Errorf("segstore: compact: %s holds schema %s, store schema is %s", e.Name, s, schema)
		}
		if len(segRows) != e.Rows {
			return fmt.Errorf("segstore: compact: %s decodes %d rows, manifest says %d", e.Name, len(segRows), e.Rows)
		}
		rows = append(rows, segRows...)
	}
	img, err := encodeSegment(schema, rows, st.codecOpts())
	if err != nil {
		return err
	}

	st.mu.Lock()
	id := st.nextID
	st.nextID++
	st.mu.Unlock()
	name := fmt.Sprintf("seg-%06d.ivsg", id)
	path := filepath.Join(st.dir, name)
	if err := writeSegmentFile(path, img); err != nil {
		return err
	}
	if err := sealCrash("manifest"); err != nil {
		return err
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	// Re-locate the group: appends can only have grown the tail, and
	// compactions are serialized, so the members are still adjacent at
	// their original relative position (or something is badly wrong).
	i := 0
	for i < len(st.segs) && st.segs[i].Name != grp[0].Name {
		i++
	}
	if i+len(grp) > len(st.segs) {
		os.Remove(path)
		return fmt.Errorf("segstore: compact group head %s vanished from manifest", grp[0].Name)
	}
	for j, e := range grp {
		if st.segs[i+j].Name != e.Name {
			os.Remove(path)
			return fmt.Errorf("segstore: compact group member %s moved in manifest", e.Name)
		}
	}
	newSegs := make([]manifestSeg, 0, len(st.segs)-len(grp)+1)
	newSegs = append(newSegs, st.segs[:i]...)
	newSegs = append(newSegs, manifestSeg{Name: name, Rows: len(rows)})
	newSegs = append(newSegs, st.segs[i+len(grp):]...)
	oldSegs, oldGen := st.segs, st.gen
	st.segs, st.gen = newSegs, st.gen+1
	if err := st.writeManifestLocked(); err != nil {
		// Commit failed: restore the in-memory view to match disk and
		// drop the new segment as an orphan.
		st.segs, st.gen = oldSegs, oldGen
		os.Remove(path)
		return err
	}
	mSegmentsWritten.Inc()
	for _, e := range grp {
		old := filepath.Join(st.dir, e.Name)
		delete(st.foots, old)
		st.retired = append(st.retired, old)
	}
	return nil
}
