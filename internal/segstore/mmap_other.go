//go:build !(linux || darwin)

package segstore

import (
	"errors"
	"os"
)

// mmapSupported: no syscall mapping path on this platform; segment
// reads fall back to pread copies transparently.
const mmapSupported = false

var errNoMmap = errors.New("segstore: mmap unsupported on this platform")

func mmapFile(*os.File, int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile([]byte) error { return nil }
