package segstore

import (
	"fmt"
	"testing"

	"ivnt/internal/relation"
)

// Generation is the result-cache invalidation token: it must start at
// zero, bump exactly once per committed seal, and survive reopen.
func TestGenerationBumpsOnSeal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != 0 {
		t.Fatalf("fresh store generation = %d, want 0", g)
	}
	for i := 1; i <= 3; i++ {
		if err := st.AppendSegment(testRows()); err != nil {
			t.Fatal(err)
		}
		if g := st.Generation(); g != uint64(i) {
			t.Fatalf("after %d seals generation = %d", i, g)
		}
	}
	// Empty Writer.Seal is a no-op and must not bump.
	w := st.Writer()
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != 3 {
		t.Fatalf("empty seal bumped generation to %d", g)
	}

	re, err := Open(dir, relation.Schema{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := re.Generation(); g != 3 {
		t.Fatalf("reopened generation = %d, want 3", g)
	}
}

// A crash at any seal stage must leave the committed generation
// unchanged — a failed seal must not invalidate caches — and the
// reopened store must report the pre-crash value.
func TestGenerationCrashRecovery(t *testing.T) {
	for _, stage := range []string{"chunks", "footer", "sync", "rename", "manifest"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, testSchema(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.AppendSegment(testRows()); err != nil {
				t.Fatal(err)
			}

			DebugSealFailure = func(s string) error {
				if s == stage {
					return fmt.Errorf("killed at %s", s)
				}
				return nil
			}
			defer func() { DebugSealFailure = nil }()
			if err := st.AppendSegment(testRows()); err == nil {
				t.Fatalf("injected crash at %s did not surface", stage)
			}
			DebugSealFailure = nil

			if g := st.Generation(); g != 1 {
				t.Fatalf("crash at %s moved live generation to %d, want 1", stage, g)
			}
			re, err := Open(dir, relation.Schema{}, Options{})
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", stage, err)
			}
			if g := re.Generation(); g != 1 {
				t.Fatalf("crash at %s: reopened generation = %d, want 1", stage, g)
			}
			// The next successful seal resumes the monotonic count.
			if err := re.AppendSegment(testRows()); err != nil {
				t.Fatal(err)
			}
			if g := re.Generation(); g != 2 {
				t.Fatalf("post-recovery generation = %d, want 2", g)
			}
		})
	}
}
