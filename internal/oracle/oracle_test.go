package oracle

import (
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// The oracle is exercised exhaustively against the real executors by
// internal/difftest; these tests pin a few hand-checkable results so a
// bug cannot hide as "oracle and engine are wrong the same way".

func testSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindString},
		relation.Column{Name: "v", Kind: relation.KindInt},
	)
}

func testRows() []relation.Row {
	return []relation.Row{
		{relation.Str("a"), relation.Int(1)},
		{relation.Str("b"), relation.Int(2)},
		{relation.Str("a"), relation.Int(3)},
		{relation.Str("b"), relation.Null()},
	}
}

func TestRunPipelineFilterAddColumn(t *testing.T) {
	ops := []engine.OpDesc{
		engine.Filter(`v >= 2`),
		engine.AddColumn("twice", relation.KindInt, `v * 2`),
	}
	s, rows, err := RunPipeline(testSchema(), testRows(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("schema = %v, want 3 columns", s)
	}
	// v >= 2 drops (a,1) and the null row (null comparison is not true).
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	ti := s.Index("twice")
	if got := rows[0][ti].AsInt(); got != 4 {
		t.Fatalf("twice[0] = %d, want 4", got)
	}
	if got := rows[1][ti].AsInt(); got != 6 {
		t.Fatalf("twice[1] = %d, want 6", got)
	}
}

func TestPartialAggThenFinalAggregate(t *testing.T) {
	aggs := []engine.AggSpec{
		{Fn: engine.AggCount, As: "n"},
		{Fn: engine.AggSum, Col: "v", As: "total"},
	}
	op := engine.PartialAgg([]string{"k"}, aggs)

	// Partial-aggregate the two halves separately and merge with the
	// engine's driver-side merge; the result must match the oracle's
	// single-pass FinalAggregate over the unpartitioned rows.
	all := testRows()
	s1, r1, err := ApplyOp(testSchema(), all[:2], op)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := ApplyOp(testSchema(), all[2:], op)
	if err != nil {
		t.Fatal(err)
	}
	partials := relation.FromRows(s1, append(r1, r2...))
	merged, err := engine.MergePartials(partials, []string{"k"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	final, err := FinalAggregate(testSchema(), all, []string{"k"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	// count counts rows (including the null v); sum skips the null.
	want := map[string][2]float64{"a": {2, 4}, "b": {2, 2}}
	for _, rel := range []*relation.Relation{merged, final} {
		if rel.NumRows() != 2 {
			t.Fatalf("groups = %d, want 2", rel.NumRows())
		}
		ki := rel.Schema.Index("k")
		ni := rel.Schema.Index("n")
		ti := rel.Schema.Index("total")
		seen := map[string]bool{}
		for _, r := range rel.Rows() {
			k := r[ki].AsString()
			w, ok := want[k]
			if !ok || seen[k] {
				t.Fatalf("unexpected group %q", k)
			}
			seen[k] = true
			if got := float64(r[ni].AsInt()); got != w[0] {
				t.Errorf("group %q: n = %v, want %v", k, got, w[0])
			}
			if got := r[ti].AsFloat(); got != w[1] {
				t.Errorf("group %q: total = %v, want %v", k, got, w[1])
			}
		}
		if len(seen) != len(want) {
			t.Fatalf("saw groups %v, want %d groups", seen, len(want))
		}
	}
}

func TestDedupConsecutive(t *testing.T) {
	rows := []relation.Row{
		{relation.Str("a"), relation.Int(1)},
		{relation.Str("a"), relation.Int(1)},
		{relation.Str("a"), relation.Int(2)},
		{relation.Str("a"), relation.Int(2)},
		{relation.Str("a"), relation.Int(1)},
	}
	_, got, err := ApplyOp(testSchema(), rows, engine.DedupConsecutive("v"))
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive dedup keeps the first of each run: 1, 2, 1.
	if len(got) != 3 {
		t.Fatalf("rows = %d, want 3", len(got))
	}
	for i, want := range []int64{1, 2, 1} {
		if v := got[i][1].AsInt(); v != want {
			t.Fatalf("row %d: v = %d, want %d", i, v, want)
		}
	}
}
