// Package oracle is the reference implementation of the engine's
// operator algebra for differential testing (internal/difftest). Every
// operator is re-implemented in the most naive way that is still
// semantically exact: single-threaded, row at a time, nested-loop
// joins, no caches, no codecs, no wire. The package deliberately shares
// only internal/expr (the expression language is the contract both
// sides evaluate) and internal/relation (the data model) with the real
// engine — none of the pipeline compiler, pipeline/rule caches,
// executors or cluster machinery — so a silent wrong-answer bug in any
// of those layers shows up as a diff against this oracle rather than
// being replicated on both sides.
//
// Semantics intentionally mirrored from the engine, operator by
// operator:
//
//   - window functions (lag/gap/delta) see the rows as they entered the
//     current operator, partition-local;
//   - OpEvalRule treats an empty rule string as null and a rule that
//     fails to compile as a stage-fatal error;
//   - OpBroadcastJoin emits, per stream row, the matching table rows in
//     table order, with right key columns dropped;
//   - OpDedupConsecutive compares each row to its immediate input
//     predecessor on the value columns;
//   - OpSortWithin is a stable per-partition sort;
//   - OpPartialAgg groups rows of one partition and orders output by
//     the NUL-joined string rendering of the group key.
package oracle

import (
	"fmt"
	"sort"

	"ivnt/internal/engine"
	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

// coveredKinds is the number of operator kinds ApplyOp implements. The
// two zero-length array declarations below pin it to engine.NumOpKinds
// in both directions: adding an OpKind to the engine without teaching
// the oracle about it makes one of the array lengths negative, which
// fails to compile. Update coveredKinds only together with a new case
// in ApplyOp (and generator coverage in internal/difftest).
const coveredKinds = 9

var _ [engine.NumOpKinds - coveredKinds]struct{} // engine has a kind the oracle lacks
var _ [coveredKinds - engine.NumOpKinds]struct{} // oracle claims a kind the engine lacks

// RunStage applies ops to every partition of rel independently — the
// reference for Executor.RunStage: same partition count, same
// partition-local row order.
func RunStage(rel *relation.Relation, ops []engine.OpDesc) (*relation.Relation, error) {
	outSchema, err := engine.OutputSchema(rel.Schema, ops)
	if err != nil {
		return nil, err
	}
	out := &relation.Relation{Schema: outSchema, Partitions: make([][]relation.Row, len(rel.Partitions))}
	for pi, part := range rel.Partitions {
		_, rows, err := RunPipeline(rel.Schema, part, ops)
		if err != nil {
			return nil, fmt.Errorf("oracle: partition %d: %w", pi, err)
		}
		out.Partitions[pi] = rows
	}
	return out, nil
}

// RunPipeline applies ops to one unpartitioned row slice, operator by
// operator — the end-to-end pipeline oracle.
func RunPipeline(s relation.Schema, rows []relation.Row, ops []engine.OpDesc) (relation.Schema, []relation.Row, error) {
	cur := s
	for i, op := range ops {
		var err error
		cur, rows, err = ApplyOp(cur, rows, op)
		if err != nil {
			return relation.Schema{}, nil, fmt.Errorf("oracle: op %d (%s): %w", i, op.Kind, err)
		}
	}
	return cur, rows, nil
}

// ApplyOp applies one operator to one partition's rows and returns the
// output schema and rows. The input slice is never mutated.
func ApplyOp(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	switch op.Kind {
	case engine.OpFilter:
		return applyFilter(in, rows, op)
	case engine.OpProject:
		return applyProject(in, rows, op)
	case engine.OpAddColumn:
		return applyAddColumn(in, rows, op)
	case engine.OpEvalRule:
		return applyEvalRule(in, rows, op)
	case engine.OpBroadcastJoin:
		return applyBroadcastJoin(in, rows, op)
	case engine.OpDedupConsecutive:
		return applyDedupConsecutive(in, rows, op)
	case engine.OpSortWithin:
		return applySortWithin(in, rows, op)
	case engine.OpPartialAgg:
		return applyPartialAgg(in, rows, op)
	case engine.OpShuffleExchange:
		return applyShuffleExchange(in, rows, op)
	default:
		return relation.Schema{}, nil, fmt.Errorf("no reference implementation for op kind %v", op.Kind)
	}
}

func applyFilter(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	prog, err := expr.Compile(op.Expr, in)
	if err != nil {
		return relation.Schema{}, nil, err
	}
	var out []relation.Row
	env := &expr.RowEnv{Rows: rows}
	for i := range rows {
		env.Idx = i
		if prog.EvalBool(env) {
			out = append(out, rows[i])
		}
	}
	return in, out, nil
}

func applyProject(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	outSchema, err := in.Project(op.Cols...)
	if err != nil {
		return relation.Schema{}, nil, err
	}
	out := make([]relation.Row, len(rows))
	for i, r := range rows {
		nr := make(relation.Row, 0, len(op.Cols))
		for _, name := range op.Cols {
			nr = append(nr, r[in.MustIndex(name)])
		}
		out[i] = nr
	}
	return outSchema, out, nil
}

func applyAddColumn(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	if in.Has(op.Col) {
		return relation.Schema{}, nil, fmt.Errorf("column %q already exists", op.Col)
	}
	prog, err := expr.Compile(op.Expr, in)
	if err != nil {
		return relation.Schema{}, nil, err
	}
	out := make([]relation.Row, len(rows))
	env := &expr.RowEnv{Rows: rows}
	for i, r := range rows {
		env.Idx = i
		nr := append(r.Clone(), prog.Eval(env))
		out[i] = nr
	}
	return in.Append(relation.Column{Name: op.Col, Kind: op.ColKind}), out, nil
}

func applyEvalRule(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	if !in.Has(op.RuleCol) {
		return relation.Schema{}, nil, fmt.Errorf("rule column %q missing", op.RuleCol)
	}
	if in.Has(op.Col) {
		return relation.Schema{}, nil, fmt.Errorf("column %q already exists", op.Col)
	}
	ruleIdx := in.MustIndex(op.RuleCol)
	out := make([]relation.Row, len(rows))
	env := &expr.RowEnv{Rows: rows}
	for i, r := range rows {
		env.Idx = i
		var v relation.Value
		// Recompile the rule for every single row: maximally naive, and
		// immune by construction to stale-cache bugs.
		if src := r[ruleIdx].AsString(); src != "" {
			prog, err := expr.Compile(src, in)
			if err != nil {
				return relation.Schema{}, nil, fmt.Errorf("row rule %q: %w", src, err)
			}
			v = prog.Eval(env)
		}
		out[i] = append(r.Clone(), v)
	}
	return in.Append(relation.Column{Name: op.Col, Kind: op.ColKind}), out, nil
}

func applyBroadcastJoin(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	j := op.Join
	if j == nil {
		return relation.Schema{}, nil, fmt.Errorf("nil join spec")
	}
	outSchema, err := engine.OutputSchema(in, []engine.OpDesc{op})
	if err != nil {
		return relation.Schema{}, nil, err
	}
	leftIdx := make([]int, len(j.LeftKeys))
	for k, name := range j.LeftKeys {
		leftIdx[k] = in.MustIndex(name)
	}
	rightIdx := make([]int, len(j.RightKeys))
	rightKeySet := map[string]bool{}
	for k, name := range j.RightKeys {
		rightIdx[k] = j.Schema.MustIndex(name)
		rightKeySet[name] = true
	}
	var keepIdx []int
	for ci, c := range j.Schema.Cols {
		if !rightKeySet[c.Name] {
			keepIdx = append(keepIdx, ci)
		}
	}
	var out []relation.Row
	for _, r := range rows {
		// Nested-loop scan of the whole broadcast table, in table order.
		for _, cand := range j.Rows {
			match := true
			for k := range leftIdx {
				if !r[leftIdx[k]].Equal(cand[rightIdx[k]]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			nr := make(relation.Row, 0, len(r)+len(keepIdx))
			nr = append(nr, r...)
			for _, ci := range keepIdx {
				nr = append(nr, cand[ci])
			}
			out = append(out, nr)
		}
	}
	return outSchema, out, nil
}

func applyDedupConsecutive(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	idx := make([]int, len(op.Cols))
	for k, name := range op.Cols {
		i := in.Index(name)
		if i < 0 {
			return relation.Schema{}, nil, fmt.Errorf("column %q missing", name)
		}
		idx[k] = i
	}
	var out []relation.Row
	for i, r := range rows {
		if i > 0 {
			same := true
			for _, ci := range idx {
				if !r[ci].Equal(rows[i-1][ci]) {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		out = append(out, r)
	}
	return in, out, nil
}

func applySortWithin(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	idx := make([]int, len(op.Cols))
	for k, name := range op.Cols {
		i := in.Index(name)
		if i < 0 {
			return relation.Schema{}, nil, fmt.Errorf("column %q missing", name)
		}
		idx[k] = i
	}
	out := make([]relation.Row, len(rows))
	copy(out, rows)
	// Insertion sort: trivially stable and trivially correct.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			less := false
			for _, ci := range idx {
				if c := out[j][ci].Compare(out[j-1][ci]); c != 0 {
					less = c < 0
					break
				}
			}
			if !less {
				break
			}
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return in, out, nil
}

// applyShuffleExchange reorders one partition's rows into contiguous
// runs of ascending key-hash bucket, keeping input order within each
// bucket: one full pass over the input per bucket, O(parts × rows) —
// maximally naive, no per-bucket buffers. Bucket assignment uses
// relation.Row.Bucket directly (the data-model contract shared with
// the engine, like expr), so null keys land in the same single bucket
// on both sides.
func applyShuffleExchange(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	if op.Parts < 1 {
		return relation.Schema{}, nil, fmt.Errorf("shuffle fan-out %d < 1", op.Parts)
	}
	idx := make([]int, len(op.Cols))
	for k, name := range op.Cols {
		i := in.Index(name)
		if i < 0 {
			return relation.Schema{}, nil, fmt.Errorf("shuffle key %q missing", name)
		}
		idx[k] = i
	}
	out := make([]relation.Row, 0, len(rows))
	for b := 0; b < op.Parts; b++ {
		for _, r := range rows {
			if r.Bucket(op.Parts, idx...) == b {
				out = append(out, r)
			}
		}
	}
	return in, out, nil
}

// applyPartialAgg computes the map-side partial aggregates of one
// partition: group columns followed by per-aggregate partial columns
// (mean expands into "<as>__sum" and "<as>__n"), rows ordered by the
// NUL-joined string form of the group key.
func applyPartialAgg(in relation.Schema, rows []relation.Row, op engine.OpDesc) (relation.Schema, []relation.Row, error) {
	outSchema, err := engine.OutputSchema(in, []engine.OpDesc{op})
	if err != nil {
		return relation.Schema{}, nil, err
	}
	keyIdx := make([]int, len(op.GroupBy))
	for i, g := range op.GroupBy {
		keyIdx[i] = in.MustIndex(g)
	}
	groups, order := groupRows(rows, keyIdx)
	out := make([]relation.Row, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make(relation.Row, 0, outSchema.Len())
		row = append(row, g.key...)
		for _, a := range op.Aggs {
			ci := -1
			if a.Fn != engine.AggCount {
				ci = in.MustIndex(a.Col)
			}
			switch a.Fn {
			case engine.AggCount:
				row = append(row, relation.Int(int64(len(g.rows))))
			case engine.AggSum:
				row = append(row, relation.Float(sumOf(g.rows, ci)))
			case engine.AggMin:
				row = append(row, minMaxOf(g.rows, ci, true))
			case engine.AggMax:
				row = append(row, minMaxOf(g.rows, ci, false))
			case engine.AggMean:
				row = append(row,
					relation.Float(sumOf(g.rows, ci)),
					relation.Int(countNonNull(g.rows, ci)))
			default:
				return relation.Schema{}, nil, fmt.Errorf("aggregate %s not distributable", a.Fn)
			}
		}
		out = append(out, row)
	}
	return outSchema, out, nil
}

// FinalAggregate is the reference for a full distributed group-by
// (partial aggregation + driver-side merge): a sequential aggregation
// over unpartitioned rows producing final values, ordered by group key.
// It mirrors engine.Aggregate's observable semantics without sharing
// its accumulator machinery.
func FinalAggregate(in relation.Schema, rows []relation.Row, groupBy []string, aggs []engine.AggSpec) (*relation.Relation, error) {
	keyIdx := make([]int, len(groupBy))
	cols := make([]relation.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		j := in.Index(g)
		if j < 0 {
			return nil, fmt.Errorf("oracle: no group column %q", g)
		}
		keyIdx[i] = j
		cols = append(cols, in.Cols[j])
	}
	for _, a := range aggs {
		kind := relation.KindFloat
		if a.Fn == engine.AggCount {
			kind = relation.KindInt
		}
		cols = append(cols, relation.Column{Name: a.As, Kind: kind})
	}
	groups, order := groupRows(rows, keyIdx)
	out := relation.New(relation.NewSchema(cols...))
	for _, k := range order {
		g := groups[k]
		row := make(relation.Row, 0, len(cols))
		row = append(row, g.key...)
		for _, a := range aggs {
			ci := -1
			if a.Fn != engine.AggCount {
				j := in.Index(a.Col)
				if j < 0 {
					return nil, fmt.Errorf("oracle: no column %q for %s", a.Col, a.Fn)
				}
				ci = j
			}
			switch a.Fn {
			case engine.AggCount:
				row = append(row, relation.Int(int64(len(g.rows))))
			case engine.AggSum:
				row = append(row, relation.Float(sumOf(g.rows, ci)))
			case engine.AggMin:
				row = append(row, minMaxOf(g.rows, ci, true))
			case engine.AggMax:
				row = append(row, minMaxOf(g.rows, ci, false))
			case engine.AggMean:
				n := countNonNull(g.rows, ci)
				if n == 0 {
					row = append(row, relation.Null())
				} else {
					row = append(row, relation.Float(sumOf(g.rows, ci)/float64(n)))
				}
			default:
				return nil, fmt.Errorf("oracle: aggregate %s not distributable", a.Fn)
			}
		}
		out.Append(row)
	}
	return out, nil
}

// group is the rows of one group-by key plus the first-seen key cells.
type group struct {
	key  relation.Row
	rows []relation.Row
}

// groupRows buckets rows by the string rendering of their key cells and
// returns the buckets plus the sorted key order.
func groupRows(rows []relation.Row, keyIdx []int) (map[string]*group, []string) {
	groups := map[string]*group{}
	var order []string
	for _, r := range rows {
		k := ""
		for _, ki := range keyIdx {
			k += r[ki].AsString() + "\x00"
		}
		g, ok := groups[k]
		if !ok {
			key := make(relation.Row, len(keyIdx))
			for i, ki := range keyIdx {
				key[i] = r[ki]
			}
			g = &group{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	sort.Strings(order)
	return groups, order
}

func sumOf(rows []relation.Row, ci int) float64 {
	var s float64
	for _, r := range rows {
		if !r[ci].IsNull() {
			s += r[ci].AsFloat()
		}
	}
	return s
}

func countNonNull(rows []relation.Row, ci int) int64 {
	var n int64
	for _, r := range rows {
		if !r[ci].IsNull() {
			n++
		}
	}
	return n
}

// minMaxOf returns the first-seen extreme non-null value (strict
// comparison, so ties keep the earliest), or null when every value is
// null.
func minMaxOf(rows []relation.Row, ci int, min bool) relation.Value {
	var best relation.Value
	seen := false
	for _, r := range rows {
		v := r[ci]
		if v.IsNull() {
			continue
		}
		if !seen {
			best, seen = v, true
			continue
		}
		if c := v.Compare(best); (min && c < 0) || (!min && c > 0) {
			best = v
		}
	}
	if !seen {
		return relation.Null()
	}
	return best
}
