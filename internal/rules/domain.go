package rules

import (
	"encoding/json"
	"fmt"
	"os"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
	"ivnt/internal/trace"
)

// Constraint is one c = (s_id, d, F) of the reduction constraint set C
// (Sec. 4.1). When the guard d holds for a row of the signal's
// sequence, the functions F are evaluated; the row's mark e is true
// when any f is true (Eq. 1), and marked rows are KEPT — constraints
// express task relevance (value changes, cycle-time violations), so
// reduction is "filter to the marked elements".
type Constraint struct {
	// SID selects the sequence this constraint applies to; "*" applies
	// to every signal.
	SID string
	// When is the guard d; empty means "true".
	When string
	// Funcs are the marking functions F, expressions over the
	// per-signal sequence rows (t, sid, v, bid) with window access.
	Funcs []string
}

// Validate compiles the guard and all functions against the per-signal
// sequence schema.
func (c *Constraint) Validate() error {
	if c.SID == "" {
		return fmt.Errorf("rules: constraint without s_id (use \"*\" for all)")
	}
	if len(c.Funcs) == 0 {
		return fmt.Errorf("rules: constraint for %s has no functions", c.SID)
	}
	schema := SequenceSchema()
	if c.When != "" {
		if _, err := expr.Compile(c.When, schema); err != nil {
			return fmt.Errorf("rules: constraint %s guard: %w", c.SID, err)
		}
	}
	for _, f := range c.Funcs {
		if _, err := expr.Compile(f, schema); err != nil {
			return fmt.Errorf("rules: constraint %s: %w", c.SID, err)
		}
	}
	return nil
}

// KeepExpr renders the constraint as a single keep-mark expression
// (guard ∧ (f₁ ∨ f₂ ∨ …)).
func (c *Constraint) KeepExpr() string {
	funcs := "(" + c.Funcs[0] + ")"
	for _, f := range c.Funcs[1:] {
		funcs += " || (" + f + ")"
	}
	if c.When == "" || c.When == "true" {
		return funcs
	}
	return "(" + c.When + ") && (" + funcs + ")"
}

// ChangeConstraint marks rows whose value differs from the previous
// occurrence — the paper's evaluation reduction ("identical subsequent
// signal instances are removed", Sec. 5.1). Sequence heads are kept.
func ChangeConstraint(sid string) Constraint {
	return Constraint{
		SID:   sid,
		Funcs: []string{"isnull(lag(v)) || v != lag(v)"},
	}
}

// CycleViolationConstraint marks rows whose gap to the previous
// occurrence exceeds the cycle time — the violations that must survive
// reduction.
func CycleViolationConstraint(sid string, cycleTime float64) Constraint {
	return Constraint{
		SID:   sid,
		Funcs: []string{fmt.Sprintf("gap(t) > %g", cycleTime*1.5)},
	}
}

// Extension is one extension rule of E (Sec. 4.1): it derives a
// meta-data sequence W of instances ŵ = (v, w_id) from a reduced signal
// sequence, e.g. the temporal gap wposGap of Table 2.
type Extension struct {
	// WID is w_id, the identifier of the produced meta signal.
	WID string
	// SID is the source sequence; "*" derives from every signal (WID
	// is then suffixed with the source id).
	SID string
	// Expr computes v per row of the source sequence.
	Expr string
}

// Validate compiles the expression.
func (e *Extension) Validate() error {
	if e.WID == "" || e.SID == "" {
		return fmt.Errorf("rules: extension needs w_id and s_id")
	}
	if _, err := expr.Compile(e.Expr, SequenceSchema()); err != nil {
		return fmt.Errorf("rules: extension %s: %w", e.WID, err)
	}
	return nil
}

// SequenceSchema is the schema of a per-signal sequence (a split K_s):
// the rows constraints, extensions and branch processing operate on.
func SequenceSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: trace.ColT, Kind: relation.KindFloat},
		relation.Column{Name: trace.ColSID, Kind: relation.KindString},
		relation.Column{Name: trace.ColV, Kind: relation.KindNull},
		relation.Column{Name: trace.ColBID, Kind: relation.KindString},
	)
}

// AlphaParams tune branch α (numeric processing, Sec. 4.2).
type AlphaParams struct {
	// OutlierWindow is the Hampel filter window (total width, odd);
	// default 11.
	OutlierWindow int
	// OutlierK is the MAD multiplier; default 3.
	OutlierK float64
	// SmoothWindow is the moving-average width; default 3.
	SmoothWindow int
	// SWABBuffer is the SWAB working buffer size in points; default 50.
	SWABBuffer int
	// SWABMaxError is the segment merge cost ceiling (SSE of linear
	// fit); default 0.5 on z-normalized data.
	SWABMaxError float64
	// SAXAlphabet is the symbol alphabet size (2..10); default 5.
	SAXAlphabet int
}

// withDefaults fills zero fields.
func (p AlphaParams) withDefaults() AlphaParams {
	if p.OutlierWindow == 0 {
		p.OutlierWindow = 11
	}
	if p.OutlierK == 0 {
		p.OutlierK = 3
	}
	if p.SmoothWindow == 0 {
		p.SmoothWindow = 3
	}
	if p.SWABBuffer == 0 {
		p.SWABBuffer = 50
	}
	if p.SWABMaxError == 0 {
		p.SWABMaxError = 0.5
	}
	if p.SAXAlphabet == 0 {
		p.SAXAlphabet = 5
	}
	return p
}

// DomainConfig is the per-domain parameterization: which signals to
// extract (U_comb selection), how to reduce and extend them, and the
// type-dependent processing thresholds. Parameterize once, run on every
// trace — the framework's central workflow.
type DomainConfig struct {
	// Name labels the domain (e.g. "lights", "wiper").
	Name string
	// SIDs is the signal selection defining U_comb.
	SIDs []string
	// Constraints is C; when a signal has no applicable constraint all
	// its rows are kept.
	Constraints []Constraint
	// Extensions is E.
	Extensions []Extension
	// RateThreshold is T of Eq. 2 (values per second separating high
	// from low change rate); default 2.
	RateThreshold float64
	// Alpha tunes branch α.
	Alpha AlphaParams
	// Partitions sets the engine parallelism for this domain's jobs;
	// 0 lets the executor decide.
	Partitions int
}

// Normalize fills defaults and validates; call before use.
func (d *DomainConfig) Normalize() error {
	if d.Name == "" {
		return fmt.Errorf("rules: domain config without name")
	}
	if len(d.SIDs) == 0 {
		return fmt.Errorf("rules: domain %s selects no signals", d.Name)
	}
	if d.RateThreshold == 0 {
		d.RateThreshold = 2
	}
	d.Alpha = d.Alpha.withDefaults()
	for i := range d.Constraints {
		if err := d.Constraints[i].Validate(); err != nil {
			return fmt.Errorf("rules: domain %s: %w", d.Name, err)
		}
	}
	for i := range d.Extensions {
		if err := d.Extensions[i].Validate(); err != nil {
			return fmt.Errorf("rules: domain %s: %w", d.Name, err)
		}
	}
	return nil
}

// ConstraintsFor returns the constraints applying to a signal id
// (exact matches plus "*" wildcards).
func (d *DomainConfig) ConstraintsFor(sid string) []Constraint {
	var out []Constraint
	for i := range d.Constraints {
		if d.Constraints[i].SID == sid || d.Constraints[i].SID == "*" {
			out = append(out, d.Constraints[i])
		}
	}
	return out
}

// ExtensionsFor returns the extensions deriving from a signal id.
func (d *DomainConfig) ExtensionsFor(sid string) []Extension {
	var out []Extension
	for i := range d.Extensions {
		if d.Extensions[i].SID == sid || d.Extensions[i].SID == "*" {
			out = append(out, d.Extensions[i])
		}
	}
	return out
}

// SaveConfig writes a domain config as JSON.
func SaveConfig(path string, d *DomainConfig) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadConfig reads and normalizes a domain config from JSON.
func LoadConfig(path string) (*DomainConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d DomainConfig
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("rules: %s: %w", path, err)
	}
	if err := d.Normalize(); err != nil {
		return nil, err
	}
	return &d, nil
}

// SaveCatalog writes a catalog as JSON.
func SaveCatalog(path string, c *Catalog) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadCatalog reads and validates a catalog from JSON.
func LoadCatalog(path string) (*Catalog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("rules: %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
