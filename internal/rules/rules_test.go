package rules

import (
	"path/filepath"
	"strings"
	"testing"

	"ivnt/internal/relation"
)

func wiperCatalog() *Catalog {
	return &Catalog{Translations: []Translation{
		{SID: "wpos", Channel: "FC", MsgID: 3, FirstByte: 0, LastByte: 1,
			Rule: "0.5 * ube(lrel, 0, 2)", Class: ClassNumeric, Unit: "deg", CycleTime: 0.5},
		{SID: "wvel", Channel: "FC", MsgID: 3, FirstByte: 2, LastByte: 3,
			Rule: "ube(lrel, 0, 2)", Class: ClassNumeric, Unit: "rad/min", CycleTime: 0.5},
		{SID: "wtype", Channel: "K-LIN", MsgID: 11, FirstByte: 0, LastByte: 0,
			Rule: "byteat(lrel, 0) + 2", Class: ClassOrdinal,
			OrdinalScale: []string{"none", "front", "both"}},
		{SID: "wstat", Channel: "ETH1", MsgID: 212, FirstByte: 9, LastByte: 21,
			Rule: "lookup(byteat(lrel, 1), '0=idle;1=wiping;2=error')", Class: ClassNominal,
			ValidityValues: []string{"error"}},
		// wpos also forwarded through a gateway onto a second channel.
		{SID: "wpos", Channel: "BC", MsgID: 77, FirstByte: 0, LastByte: 1,
			Rule: "0.5 * ube(lrel, 0, 2)", Class: ClassNumeric, CycleTime: 0.5},
	}}
}

func TestCatalogValidate(t *testing.T) {
	c := wiperCatalog()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := &Catalog{Translations: []Translation{
		c.Translations[0], c.Translations[0],
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate (sid, channel) must fail")
	}
}

func TestTranslationValidateErrors(t *testing.T) {
	bad := []Translation{
		{SID: "", Channel: "FC", Rule: "1", LastByte: 1},
		{SID: "x", Channel: "", Rule: "1", LastByte: 1},
		{SID: "x", Channel: "FC", Rule: "1", FirstByte: 2, LastByte: 1},
		{SID: "x", Channel: "FC", Rule: "", LastByte: 1},
		{SID: "x", Channel: "FC", Rule: "nosuchcol + (", LastByte: 1},
		{SID: "x", Channel: "FC", Rule: "missingcol + 1", LastByte: 1},
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, u)
		}
	}
}

func TestCatalogSelectAndLookup(t *testing.T) {
	c := wiperCatalog()
	sids := c.SIDs()
	if strings.Join(sids, ",") != "wpos,wstat,wtype,wvel" {
		t.Fatalf("SIDs = %v", sids)
	}
	ts, err := c.Select("wpos", "wvel")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 { // wpos on two channels + wvel
		t.Fatalf("U_comb size = %d, want 3", len(ts))
	}
	if _, err := c.Select("nonexistent"); err == nil {
		t.Fatal("unknown signal must fail selection")
	}
	if got := c.Lookup("wpos"); len(got) != 2 {
		t.Fatalf("Lookup(wpos) = %d tuples, want 2", len(got))
	}
}

func TestToRelationAndPairRelation(t *testing.T) {
	c := wiperCatalog()
	ts, err := c.Select("wpos", "wvel")
	if err != nil {
		t.Fatal(err)
	}
	rel := ToRelation(ts)
	if rel.NumRows() != 3 || rel.Schema.Len() != 5 {
		t.Fatalf("relation %s with %d rows", rel.Schema, rel.NumRows())
	}
	u1Idx := rel.Schema.MustIndex(ColU1Rule)
	if got := rel.Rows()[0][u1Idx].AsString(); got != "slice(l, 0, 2)" {
		t.Fatalf("u1 rule = %q", got)
	}
	pairs := PairRelation(ts)
	// (FC,3) shared by wpos+wvel, (BC,77) for forwarded wpos.
	if pairs.NumRows() != 2 {
		t.Fatalf("pair rows = %d, want 2", pairs.NumRows())
	}
}

func TestConstraintKeepExpr(t *testing.T) {
	c := Constraint{SID: "wpos", Funcs: []string{"a > 1", "b > 2"}, When: "sid == 'wpos'"}
	want := "(sid == 'wpos') && ((a > 1) || (b > 2))"
	if got := c.KeepExpr(); got != want {
		t.Fatalf("KeepExpr = %q, want %q", got, want)
	}
	c2 := Constraint{SID: "x", Funcs: []string{"v != lag(v)"}}
	if got := c2.KeepExpr(); got != "(v != lag(v))" {
		t.Fatalf("KeepExpr = %q", got)
	}
}

func TestConstraintValidate(t *testing.T) {
	good := ChangeConstraint("wpos")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	viol := CycleViolationConstraint("wpos", 0.5)
	if err := viol.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Constraint{
		{SID: "", Funcs: []string{"true"}},
		{SID: "x"},
		{SID: "x", Funcs: []string{"nosuchcol > 1"}},
		{SID: "x", When: "nosuchcol > 1", Funcs: []string{"true"}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestExtensionValidate(t *testing.T) {
	good := Extension{WID: "wposGap", SID: "wpos", Expr: "gap(t)"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Extension{
		{WID: "", SID: "x", Expr: "1"},
		{WID: "w", SID: "", Expr: "1"},
		{WID: "w", SID: "x", Expr: "nosuchcol"},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDomainConfigNormalizeAndSelectors(t *testing.T) {
	d := &DomainConfig{
		Name: "wiper",
		SIDs: []string{"wpos", "wvel"},
		Constraints: []Constraint{
			ChangeConstraint("*"),
			CycleViolationConstraint("wpos", 0.5),
		},
		Extensions: []Extension{{WID: "wposGap", SID: "wpos", Expr: "gap(t)"}},
	}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d.RateThreshold != 2 || d.Alpha.SAXAlphabet != 5 || d.Alpha.OutlierWindow != 11 {
		t.Fatalf("defaults not applied: %+v", d)
	}
	if got := d.ConstraintsFor("wpos"); len(got) != 2 {
		t.Fatalf("constraints for wpos = %d, want 2", len(got))
	}
	if got := d.ConstraintsFor("wvel"); len(got) != 1 {
		t.Fatalf("constraints for wvel = %d, want 1", len(got))
	}
	if got := d.ExtensionsFor("wpos"); len(got) != 1 {
		t.Fatalf("extensions for wpos = %d", len(got))
	}
	if got := d.ExtensionsFor("wvel"); len(got) != 0 {
		t.Fatalf("extensions for wvel = %d", len(got))
	}
}

func TestDomainConfigNormalizeErrors(t *testing.T) {
	bad := []*DomainConfig{
		{Name: "", SIDs: []string{"a"}},
		{Name: "x"},
		{Name: "x", SIDs: []string{"a"}, Constraints: []Constraint{{SID: "a"}}},
		{Name: "x", SIDs: []string{"a"}, Extensions: []Extension{{WID: "w", SID: "a", Expr: "("}}},
	}
	for i, d := range bad {
		if err := d.Normalize(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wiper.json")
	d := &DomainConfig{
		Name:        "wiper",
		SIDs:        []string{"wpos"},
		Constraints: []Constraint{ChangeConstraint("*")},
	}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := SaveConfig(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "wiper" || len(back.SIDs) != 1 || len(back.Constraints) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.json")
	c := wiperCatalog()
	if err := SaveCatalog(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Translations) != len(c.Translations) {
		t.Fatalf("round trip lost tuples: %d vs %d", len(back.Translations), len(c.Translations))
	}
	if back.Translations[0].Rule != c.Translations[0].Rule {
		t.Fatal("rule text lost")
	}
}

func TestValueTableString(t *testing.T) {
	vt := map[uint64]string{2: "headlight on", 0: "off", 1: "parklight on"}
	got := ValueTableString(vt)
	if got != "0=off;1=parklight on;2=headlight on" {
		t.Fatalf("ValueTableString = %q", got)
	}
}

func TestSignalClassString(t *testing.T) {
	for c, want := range map[SignalClass]string{
		ClassNumeric: "numeric", ClassOrdinal: "ordinal",
		ClassNominal: "nominal", ClassBinary: "binary",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestSequenceSchemaShape(t *testing.T) {
	s := SequenceSchema()
	for _, name := range []string{"t", "sid", "v", "bid"} {
		if !s.Has(name) {
			t.Errorf("sequence schema missing %q", name)
		}
	}
	_ = relation.Schema{}
}
