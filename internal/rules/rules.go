// Package rules holds the framework's parameterization: the U_rel
// catalog of translation tuples (Sec. 3.1, Table 1), the reduction
// constraint sets C (Sec. 4.1, Eq. 1), the extension rules E and the
// per-domain configuration bundling a selection U_comb with processing
// thresholds. One such configuration is the "one-time parameterization"
// the paper's abstract promises per analyzing domain.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
	"ivnt/internal/trace"
)

// SignalClass is the documented value domain of a signal, feeding the
// z_val / z_aff classification criteria of Sec. 4.2.
type SignalClass uint8

// Signal classes as documented per signal type.
const (
	// ClassNumeric signals carry physical quantities (steering angle,
	// speed).
	ClassNumeric SignalClass = iota
	// ClassOrdinal signals carry ranked states (off < low < medium <
	// high); valence is comparable.
	ClassOrdinal
	// ClassNominal signals carry unranked states (driving, parking).
	ClassNominal
	// ClassBinary signals carry exactly two states (ON/OFF).
	ClassBinary
)

// String returns the class name.
func (c SignalClass) String() string {
	switch c {
	case ClassNumeric:
		return "numeric"
	case ClassOrdinal:
		return "ordinal"
	case ClassNominal:
		return "nominal"
	case ClassBinary:
		return "binary"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Translation is one u_rel = (s_id, b_id, m_id, u_info) translation
// tuple. The u_info part is everything needed for extraction: the
// relevant byte range (rel.B), the interpretation rule (Int.rule), data
// typing and documentation-derived knowledge.
type Translation struct {
	// SID is s_id^rel.
	SID string
	// Channel is b_id, MsgID is m_id.
	Channel string
	MsgID   uint32

	// FirstByte/LastByte delimit rel.B, the payload bytes the signal
	// occupies (inclusive).
	FirstByte int
	LastByte  int
	// Rule is the Int.rule: an expression over column "lrel" (the
	// relevant bytes extracted by u₁) yielding the signal value v.
	Rule string

	// Class is the documented value domain.
	Class SignalClass
	// Unit is the physical unit, informational.
	Unit string
	// CycleTime is the documented nominal send period in seconds
	// (0 = event driven); constraints check violations against it.
	CycleTime float64
	// OrdinalScale orders symbolic ordinal values low→high; branch β
	// uses it to translate symbols into numeric equivalents.
	OrdinalScale []string
	// ValidityValues lists values expressing validity (V) rather than
	// a functional property (F), e.g. "signal invalid" — z_aff.
	ValidityValues []string
}

// Validate checks internal consistency of the tuple.
func (u *Translation) Validate() error {
	if u.SID == "" {
		return fmt.Errorf("rules: translation without s_id")
	}
	if u.Channel == "" {
		return fmt.Errorf("rules: %s: empty channel", u.SID)
	}
	if u.FirstByte < 0 || u.LastByte < u.FirstByte {
		return fmt.Errorf("rules: %s: bad relevant byte range [%d,%d]", u.SID, u.FirstByte, u.LastByte)
	}
	if u.Rule == "" {
		return fmt.Errorf("rules: %s: empty interpretation rule", u.SID)
	}
	if _, err := expr.Compile(u.Rule, u1Schema()); err != nil {
		return fmt.Errorf("rules: %s: %w", u.SID, err)
	}
	return nil
}

// U1Rule renders the u₁ relevant-byte extraction for this tuple as an
// expression over the raw payload column l.
func (u *Translation) U1Rule() string {
	return fmt.Sprintf("slice(l, %d, %d)", u.FirstByte, u.LastByte-u.FirstByte+1)
}

// u1Schema is the schema interpretation rules see: the relevant bytes
// plus timing/identity context.
func u1Schema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: trace.ColT, Kind: relation.KindFloat},
		relation.Column{Name: trace.ColBID, Kind: relation.KindString},
		relation.Column{Name: trace.ColSID, Kind: relation.KindString},
		relation.Column{Name: trace.ColLRel, Kind: relation.KindBytes},
		relation.Column{Name: "l", Kind: relation.KindBytes},
	)
}

// Catalog is U_rel: every documented signal of the vehicle (the paper
// verifies over 10 000 signal types; catalogs here are whatever the
// generator or the user supplies).
type Catalog struct {
	Translations []Translation
}

// Validate checks every tuple and uniqueness of s_id per channel.
func (c *Catalog) Validate() error {
	seen := map[string]bool{}
	for i := range c.Translations {
		u := &c.Translations[i]
		if err := u.Validate(); err != nil {
			return err
		}
		key := u.SID + "\x00" + u.Channel
		if seen[key] {
			return fmt.Errorf("rules: duplicate translation for %s on %s", u.SID, u.Channel)
		}
		seen[key] = true
	}
	return nil
}

// SIDs returns the distinct signal ids in the catalog, sorted.
func (c *Catalog) SIDs() []string {
	set := map[string]bool{}
	for i := range c.Translations {
		set[c.Translations[i].SID] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Lookup returns all translation tuples for a signal id (one per
// channel the signal is routed on).
func (c *Catalog) Lookup(sid string) []Translation {
	var out []Translation
	for i := range c.Translations {
		if c.Translations[i].SID == sid {
			out = append(out, c.Translations[i])
		}
	}
	return out
}

// Select builds U_comb: the subset of tuples for the requested signal
// ids. Unknown ids are an error — a domain asking for an undocumented
// signal is a parameterization bug.
func (c *Catalog) Select(sids ...string) ([]Translation, error) {
	var out []Translation
	for _, sid := range sids {
		ts := c.Lookup(sid)
		if len(ts) == 0 {
			return nil, fmt.Errorf("rules: no translation tuple for signal %q", sid)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// Column names of the U_comb broadcast table.
const (
	ColUSID     = "sid"
	ColUBID     = "ubid"
	ColUMID     = "umid"
	ColU1Rule   = "u1rule"
	ColU2Rule   = "rule"
	ColUPairBID = "pbid"
	ColUPairMID = "pmid"
)

// ToRelation renders translation tuples as the broadcast join table of
// Sec. 3.2 (schema: sid, ubid, umid, u1rule, rule).
func ToRelation(ts []Translation) *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: ColUSID, Kind: relation.KindString},
		relation.Column{Name: ColUBID, Kind: relation.KindString},
		relation.Column{Name: ColUMID, Kind: relation.KindInt},
		relation.Column{Name: ColU1Rule, Kind: relation.KindString},
		relation.Column{Name: ColU2Rule, Kind: relation.KindString},
	)
	rel := relation.New(s)
	for i := range ts {
		u := &ts[i]
		rel.Append(relation.Row{
			relation.Str(u.SID),
			relation.Str(u.Channel),
			relation.Int(int64(u.MsgID)),
			relation.Str(u.U1Rule()),
			relation.Str(u.Rule),
		})
	}
	return rel
}

// PairRelation renders the distinct (b_id, m_id) pairs of the tuples —
// the preselection semijoin table of Sec. 3.1 (line 3 of Algorithm 1).
func PairRelation(ts []Translation) *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: ColUPairBID, Kind: relation.KindString},
		relation.Column{Name: ColUPairMID, Kind: relation.KindInt},
	)
	rel := relation.New(s)
	seen := map[string]bool{}
	for i := range ts {
		u := &ts[i]
		key := fmt.Sprintf("%s\x00%d", u.Channel, u.MsgID)
		if seen[key] {
			continue
		}
		seen[key] = true
		rel.Append(relation.Row{relation.Str(u.Channel), relation.Int(int64(u.MsgID))})
	}
	return rel
}

// ValueTableString serializes a raw→symbol table into the argument
// format of the expression function lookup().
func ValueTableString(vt map[uint64]string) string {
	keys := make([]uint64, 0, len(vt))
	for k := range vt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d=%s", k, vt[k])
	}
	return strings.Join(parts, ";")
}
