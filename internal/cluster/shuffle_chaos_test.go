package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"ivnt/internal/cluster/faultproxy"
	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// shuffleChaosWant computes the reference shuffle output (map ops, then
// PartitionByKey) the chaos runs must reproduce bitwise.
func shuffleChaosWant(t *testing.T, ctx context.Context, rel *relation.Relation, ops []engine.OpDesc, parts int) *relation.Relation {
	t.Helper()
	mapped, _, err := engine.NewLocal(2).RunStage(ctx, rel, ops)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mapped.PartitionByKey(parts, "k")
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// peerProxyCluster starts a 2-executor cluster and a chaos proxy on the
// PEER link to executor 1: the driver talks to both executors directly,
// but executor-to-executor pushes bound for executor 1 traverse the
// proxy (ShufflePeers overrides only the endpoint map the executors
// dial each other with).
func peerProxyCluster(t *testing.T, ctx context.Context) (drv *Driver, proxy *faultproxy.Proxy, cleanup func()) {
	t.Helper()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err = faultproxy.New(addrs[1])
	if err != nil {
		stop()
		t.Fatal(err)
	}
	drv = &Driver{
		Addrs:              addrs,
		ShufflePeers:       []string{addrs[0], proxy.Addr()},
		ShufflePushTimeout: 300 * time.Millisecond,
		MaxRetries:         8,
		ReconnectBase:      10 * time.Millisecond,
	}
	return drv, proxy, func() { proxy.Close(); stop() }
}

// TestChaosShufflePeerSevered: the peer stream to executor 1 dies
// mid-partition (inside the first push ack) once. The pushing map task
// must fail retryably and be re-run — re-pushing a deterministically
// identical run that the receiver dedups — and the stage must complete
// bitwise-correct, not abort.
func TestChaosShufflePeerSevered(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	drv, proxy, cleanup := peerProxyCluster(t, ctx)
	defer cleanup()

	plan := faultproxy.Passthrough()
	plan.SeverAfter = ackLen(t, 1) + 4 // handshake passes; die inside the first push ack
	plan.Once = true
	proxy.SetPlan(plan)

	rel := keyedRel(2000, 8)
	want := shuffleChaosWant(t, ctx, rel, nil, 6)
	got, st, err := drv.ShuffleMaterialize(ctx, rel, nil, []string{"k"}, 6)
	if err != nil {
		t.Fatalf("severed peer stream aborted the stage: %v", err)
	}
	mustSamePartitioned(t, "severed peer", want, got)
	if st.Retries == 0 {
		t.Fatalf("severed push must retry the map task, stats = %+v", st)
	}
}

// TestChaosShufflePeerHung: the peer stream stalls mid-partition (acks
// stop after the handshake) once. The push deadline must fire on the
// sending executor, the map task must come back retryable, and the
// retry must finish the stage.
func TestChaosShufflePeerHung(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	drv, proxy, cleanup := peerProxyCluster(t, ctx)
	defer cleanup()

	plan := faultproxy.Passthrough()
	plan.StallAfter = ackLen(t, 1) // handshake completes; every ack stalls
	plan.Once = true
	proxy.SetPlan(plan)

	rel := keyedRel(2000, 8)
	want := shuffleChaosWant(t, ctx, rel, nil, 6)
	got, st, err := drv.ShuffleMaterialize(ctx, rel, nil, []string{"k"}, 6)
	if err != nil {
		t.Fatalf("hung peer stream aborted the stage: %v", err)
	}
	mustSamePartitioned(t, "hung peer", want, got)
	if st.Retries == 0 {
		t.Fatalf("hung push must retry the map task, stats = %+v", st)
	}
}

// TestChaosShufflePeerCorrupted: one byte of the peer ack stream is
// flipped. The pusher must treat the broken gob stream as a transport
// failure (retryable), not commit anything partial, and the retried
// task must complete the stage bitwise-correct.
func TestChaosShufflePeerCorrupted(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	drv, proxy, cleanup := peerProxyCluster(t, ctx)
	defer cleanup()

	plan := faultproxy.Passthrough()
	plan.CorruptAt = ackLen(t, 1) + 2 // inside the first push ack
	plan.Once = true
	proxy.SetPlan(plan)

	rel := keyedRel(2000, 8)
	want := shuffleChaosWant(t, ctx, rel, nil, 6)
	got, st, err := drv.ShuffleMaterialize(ctx, rel, nil, []string{"k"}, 6)
	if err != nil {
		t.Fatalf("corrupted peer stream aborted the stage: %v", err)
	}
	mustSamePartitioned(t, "corrupted peer", want, got)
	if st.Retries == 0 {
		t.Fatalf("corrupted push must retry the map task, stats = %+v", st)
	}
}

// TestChaosShuffleExecutorKilledAtReduce pins the reduce-phase
// recovery path: the executor dies AFTER the barrier (its committed
// runs fully materialized) and restarts before reduce. The restarted
// process answers reduce with a retryable "source not materialized";
// reduceAll must preserve that retryability across the control-plane
// retry loop, re-materialize the lost runs, and complete the
// partition set bitwise-correct.
func TestChaosShuffleExecutorKilledAtReduce(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	addrs0, stop0, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop0()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := l.Addr().String()
	srv1 := &ExecutorServer{Capacity: 2}
	sctx1, kill1 := context.WithCancel(ctx)
	served1 := make(chan struct{})
	go func() {
		defer close(served1)
		_ = srv1.Serve(sctx1, l)
	}()

	drv := &Driver{
		Addrs:            []string{addrs0[0], addr1},
		MaxRetries:       8,
		ReconnectBase:    10 * time.Millisecond,
		SlotFailureLimit: 500,
	}
	rel := keyedRel(5000, 8)
	const parts = 6
	want := shuffleChaosWant(t, ctx, rel, nil, parts)

	stats := engine.NewStatsCollector()
	ss, err := drv.newShuffleSession(rel, nil, []string{"k"}, parts, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.free()
	if err := ss.ensureMaterialized(ctx, ss.allTasks()); err != nil {
		t.Fatalf("materialize: %v", err)
	}

	// Everything is committed on both executors; now lose one of them.
	kill1()
	<-served1
	l2, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &ExecutorServer{Capacity: 2}
	sctx2, kill2 := context.WithCancel(ctx)
	served2 := make(chan struct{})
	go func() {
		defer close(served2)
		_ = srv2.Serve(sctx2, l2)
	}()
	defer func() { kill2(); <-served2 }()

	makeMsg := func(p int) *shuffleReduceMsg {
		return &shuffleReduceMsg{Shuffle: ss.id, Part: p, Kind: reduceCollect, Sources: ss.sources}
	}
	outParts, err := reduceAll(ctx, []*shuffleSession{ss}, makeMsg, ss.schema)
	if err != nil {
		t.Fatalf("reduce after kill did not recover: %v", err)
	}
	got := &relation.Relation{Schema: ss.schema, Partitions: outParts}
	mustSamePartitioned(t, "killed at reduce", want, got)
}

// TestChaosShuffleExecutorKilled is the acceptance criterion: an
// executor process dies mid-shuffle and restarts on the same address.
// Its committed runs are gone; the driver's barrier detects the missing
// (partition, source) pairs, re-runs exactly those map tasks on the
// fresh process (re-opening the shuffle on reconnect), and the stage
// completes bitwise-correct.
func TestChaosShuffleExecutorKilled(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	addrs0, stop0, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop0()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := l.Addr().String()
	srv1 := &ExecutorServer{Capacity: 1}
	sctx1, kill1 := context.WithCancel(ctx)
	served1 := make(chan struct{})
	go func() {
		defer close(served1)
		_ = srv1.Serve(sctx1, l)
	}()

	rel := keyedRel(120000, 40)
	ops := []engine.OpDesc{engine.AddColumn("w", relation.KindFloat, "v * 0.5")}
	parts := 6
	want := shuffleChaosWant(t, ctx, rel, ops, parts)

	drv := &Driver{
		Addrs:            []string{addrs0[0], addr1},
		SlotsPerExecutor: 1,
		MaxRetries:       8,
		ReconnectBase:    10 * time.Millisecond,
		SlotFailureLimit: 500, // survive the restart window
	}
	type result struct {
		out *relation.Relation
		st  engine.Stats
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		out, st, err := drv.ShuffleMaterialize(ctx, rel, ops, []string{"k"}, parts)
		resCh <- result{out, st, err}
	}()

	// Let the doomed executor commit shuffle state, then kill it.
	for srv1.TasksRun() < 2 && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	kill1()
	<-served1

	l2, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &ExecutorServer{Capacity: 1}
	sctx2, kill2 := context.WithCancel(ctx)
	served2 := make(chan struct{})
	go func() {
		defer close(served2)
		_ = srv2.Serve(sctx2, l2)
	}()
	defer func() { kill2(); <-served2 }()

	r := <-resCh
	if r.err != nil {
		t.Fatalf("killed executor aborted the shuffle: %v", r.err)
	}
	mustSamePartitioned(t, "killed executor", want, r.out)
	if r.st.Reconnects == 0 {
		t.Fatalf("expected reconnects after the kill, stats = %+v", r.st)
	}
}
