// Package faultproxy is a deterministic in-process TCP chaos proxy for
// exercising the cluster driver's fault tolerance. It forwards byte
// streams between a client (the driver) and a backend (an executor)
// and can, on command, delay, stall, sever, or corrupt them at exact
// byte offsets — no randomness, so every chaos test is replayable.
//
// Faults are scripted per connection via a Plan captured at accept
// time; SetPlan changes the script for subsequent connections, and
// CutAll severs everything currently open (a process kill, as seen
// from the network).
package faultproxy

import (
	"net"
	"sync"
	"time"
)

// Plan scripts the faults applied to one proxied connection. The byte
// offsets address the response stream (backend → client), which is
// where result frames travel; the request stream always flows. The
// zero Plan is NOT a passthrough — use Passthrough() as the base and
// override fields.
type Plan struct {
	// Refuse accepts and immediately closes the client connection
	// (connection refused, as seen by a dialer that got through).
	Refuse bool
	// Latency is added before forwarding each response chunk.
	Latency time.Duration
	// StallAfter stops forwarding response bytes after this many have
	// passed, keeping both connections open — a hung executor. <0
	// disables.
	StallAfter int64
	// SeverAfter closes both sides after this many response bytes — a
	// mid-stream crash. <0 disables.
	SeverAfter int64
	// CorruptAt XORs the response byte at this offset with 0xFF — a
	// corrupted frame. <0 disables.
	CorruptAt int64
	// Once reverts the proxy to Passthrough after this plan has been
	// applied to one connection.
	Once bool
}

// Passthrough is the no-fault plan.
func Passthrough() Plan {
	return Plan{StallAfter: -1, SeverAfter: -1, CorruptAt: -1}
}

// Proxy is one listening chaos proxy in front of a single backend.
type Proxy struct {
	backend string
	ln      net.Listener

	mu    sync.Mutex
	plan  Plan
	links map[*link]struct{}
	wg    sync.WaitGroup
}

// New starts a proxy on a loopback port forwarding to backend
// ("host:port"). It begins in passthrough mode.
func New(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{backend: backend, ln: ln, plan: Passthrough(), links: make(map[*link]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the address clients should dial instead of the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetPlan scripts the faults for connections accepted from now on.
func (p *Proxy) SetPlan(plan Plan) {
	p.mu.Lock()
	p.plan = plan
	p.mu.Unlock()
}

// Reset returns the proxy to passthrough mode.
func (p *Proxy) Reset() { p.SetPlan(Passthrough()) }

// CutAll severs every currently open proxied connection — the network
// view of killing the backend process.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	ls := make([]*link, 0, len(p.links))
	for l := range p.links {
		ls = append(ls, l)
	}
	p.mu.Unlock()
	for _, l := range ls {
		l.close()
	}
}

// Close shuts the proxy down and severs all connections.
func (p *Proxy) Close() {
	_ = p.ln.Close()
	p.CutAll()
	p.wg.Wait()
}

// takePlan returns the plan for a newly accepted connection, reverting
// a Once plan to passthrough.
func (p *Proxy) takePlan() Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	plan := p.plan
	if plan.Once {
		p.plan = Passthrough()
	}
	return plan
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		plan := p.takePlan()
		if plan.Refuse {
			_ = client.Close()
			continue
		}
		backend, err := net.Dial("tcp", p.backend)
		if err != nil {
			_ = client.Close()
			continue
		}
		l := &link{client: client, backend: backend, done: make(chan struct{})}
		p.mu.Lock()
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go func() {
			defer p.wg.Done()
			l.pump(backend, client, plan, false) // requests flow clean
		}()
		go func() {
			defer p.wg.Done()
			defer p.unlink(l)
			l.pump(client, backend, plan, true) // responses get the faults
		}()
	}
}

func (p *Proxy) unlink(l *link) {
	p.mu.Lock()
	delete(p.links, l)
	p.mu.Unlock()
	l.close()
}

// link is one proxied connection pair.
type link struct {
	client  net.Conn
	backend net.Conn

	once sync.Once
	done chan struct{}
}

func (l *link) close() {
	l.once.Do(func() {
		close(l.done)
		_ = l.client.Close()
		_ = l.backend.Close()
	})
}

// pump copies src → dst, applying the response-direction faults of
// plan when response is true. Offsets are byte positions in the copied
// stream.
func (l *link) pump(dst, src net.Conn, plan Plan, response bool) {
	defer l.close()
	buf := make([]byte, 16*1024)
	var off int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			b := buf[:n]
			if response {
				if plan.CorruptAt >= 0 && plan.CorruptAt >= off && plan.CorruptAt < off+int64(n) {
					b[plan.CorruptAt-off] ^= 0xFF
				}
				if plan.StallAfter >= 0 && off+int64(n) > plan.StallAfter {
					if keep := plan.StallAfter - off; keep > 0 {
						_, _ = dst.Write(b[:keep])
					}
					// Hang forever (until the link is severed): the
					// backend produced bytes the client never sees.
					<-l.done
					return
				}
				if plan.SeverAfter >= 0 && off+int64(n) > plan.SeverAfter {
					if keep := plan.SeverAfter - off; keep > 0 {
						_, _ = dst.Write(b[:keep])
					}
					return // defer severs both sides
				}
				if plan.Latency > 0 {
					t := time.NewTimer(plan.Latency)
					select {
					case <-l.done:
						t.Stop()
						return
					case <-t.C:
					}
				}
			}
			if _, err := dst.Write(b); err != nil {
				return
			}
			off += int64(n)
		}
		if err != nil {
			return
		}
	}
}
