package faultproxy

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer answers every received chunk with the same bytes.
func echoServer(t *testing.T) (addr string, cleanup func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
	return l.Addr().String(), func() { _ = l.Close() }
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPassthrough(t *testing.T) {
	backend, cleanup := echoServer(t)
	defer cleanup()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
}

func TestCorruptAt(t *testing.T) {
	backend, cleanup := echoServer(t)
	defer cleanup()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	plan := Passthrough()
	plan.CorruptAt = 2
	p.SetPlan(plan)

	c := dialProxy(t, p)
	defer c.Close()
	if _, err := c.Write([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3 ^ 0xFF, 4}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSeverAfter(t *testing.T) {
	backend, cleanup := echoServer(t)
	defer cleanup()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	plan := Passthrough()
	plan.SeverAfter = 3
	p.SetPlan(plan)

	c := dialProxy(t, p)
	defer c.Close()
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(c) // reads until the proxy severs
	if string(got) != "abc" {
		t.Fatalf("received %q before sever, want %q", got, "abc")
	}
}

func TestStallAfterAndCutAll(t *testing.T) {
	backend, cleanup := echoServer(t)
	defer cleanup()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	plan := Passthrough()
	plan.StallAfter = 2
	p.SetPlan(plan)

	c := dialProxy(t, p)
	defer c.Close()
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ab" {
		t.Fatalf("prefix %q, want %q", got, "ab")
	}
	// The stream is stalled: a short read deadline must expire.
	_ = c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	one := make([]byte, 1)
	if _, err := c.Read(one); err == nil {
		t.Fatal("read past the stall point must not succeed")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout while stalled, got %v", err)
	}
	// CutAll severs the stalled link for real.
	_ = c.SetReadDeadline(time.Time{})
	p.CutAll()
	if _, err := c.Read(one); err == nil {
		t.Fatal("read after CutAll must fail")
	}
}

func TestOnceRevertsToPassthrough(t *testing.T) {
	backend, cleanup := echoServer(t)
	defer cleanup()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	plan := Passthrough()
	plan.Refuse = true
	plan.Once = true
	p.SetPlan(plan)

	// First connection: refused (closed immediately — a read sees EOF).
	c1 := dialProxy(t, p)
	defer c1.Close()
	one := make([]byte, 1)
	_ = c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c1.Read(one); err == nil {
		t.Fatal("refused connection must be closed")
	}

	// Second connection: clean passthrough again.
	c2 := dialProxy(t, p)
	defer c2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("echo after Once revert = %q", got)
	}
}
