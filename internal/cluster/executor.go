package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/relation"
	"ivnt/internal/segstore"
)

// ExecutorServer is one worker node: it accepts driver connections and
// applies stage pipelines to the partitions it is handed.
type ExecutorServer struct {
	// Capacity advertised in the handshake; informational only.
	Capacity int
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
	// HandshakeTimeout bounds the hello exchange on a new connection, so
	// a client that connects and sends nothing cannot hold a handler
	// goroutine forever. 0 means the 10s default; negative disables.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds sending one result back to the driver. 0 means
	// the 1m default; negative disables.
	WriteTimeout time.Duration
	// PushTimeout bounds one shuffle peer push round trip (chunk write +
	// ack read) when the driver's shuffleBeginMsg does not set one. 0
	// means the 30s default.
	PushTimeout time.Duration

	// shuffles holds this executor's open shuffles (protocol v4); peers
	// pools its outgoing executor-to-executor connections.
	shuffles shuffleStore
	peers    peerPool

	mu         sync.Mutex
	listener   net.Listener
	tasksRun   int
	stagesRecv int
	draining   bool
	conns      map[*conn]struct{}
	handlers   sync.WaitGroup
}

// TasksRun reports how many tasks this executor has completed.
func (s *ExecutorServer) TasksRun() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasksRun
}

// StagesReceived reports how many stage shipments (stageMsg frames)
// this executor has accepted — one per stage per driver connection,
// plus re-shipments after reconnects. Chaos tests assert on it.
func (s *ExecutorServer) StagesReceived() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stagesRecv
}

// Addr returns the listen address once Serve has bound it.
func (s *ExecutorServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

func (s *ExecutorServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *ExecutorServer) handshakeTimeout() time.Duration {
	switch {
	case s.HandshakeTimeout > 0:
		return s.HandshakeTimeout
	case s.HandshakeTimeout < 0:
		return 0
	default:
		return 10 * time.Second
	}
}

func (s *ExecutorServer) writeTimeout() time.Duration {
	switch {
	case s.WriteTimeout > 0:
		return s.WriteTimeout
	case s.WriteTimeout < 0:
		return 0
	default:
		return time.Minute
	}
}

func (s *ExecutorServer) pushTimeout() time.Duration {
	if s.PushTimeout > 0 {
		return s.PushTimeout
	}
	return defaultPushTimeout
}

// ListenAndServe binds addr (e.g. ":7077" or "127.0.0.1:0") and serves
// until ctx is cancelled.
func (s *ExecutorServer) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// Serve accepts connections on l until ctx is cancelled or the
// listener is closed (see Shutdown). Each connection is handled on its
// own goroutine, so one executor process serves many driver
// connections concurrently (the "5 virtual CPUs per executor" of the
// paper's setup corresponds to slots-per-executor on the driver side).
func (s *ExecutorServer) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[*conn]struct{})
	}
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		_ = l.Close()
		s.closeConns()
	})
	defer stop()
	defer s.handlers.Wait()
	// Outgoing peer connections and shuffle state die with the server:
	// grants release, spill files unlink.
	defer s.peers.closeAll()
	defer s.shuffles.freeAll()
	for {
		raw, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			s.handle(ctx, newConn(raw))
		}()
	}
}

// Shutdown drains the executor gracefully: it stops accepting new
// connections, wakes handlers waiting for a task, lets in-flight
// tasks finish (and their results be sent) for up to grace, then
// force-closes whatever is left and waits for all handlers to exit.
func (s *ExecutorServer) Shutdown(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.drainConns()

	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
	s.closeConns() // force
	<-done
}

// drainConns expires the read deadline on every tracked connection:
// handlers blocked waiting for the next task wake immediately and
// exit, while a task that was already decoded keeps running and its
// result write still goes out (writes are unaffected by the read
// deadline). Closing "idle" connections instead would race with the
// instant between a task being decoded and the handler marking itself
// busy, dropping that task's result.
func (s *ExecutorServer) drainConns() {
	s.mu.Lock()
	cs := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	now := time.Now()
	for _, c := range cs {
		_ = c.raw.SetReadDeadline(now)
	}
}

// closeConns force-closes every tracked connection.
func (s *ExecutorServer) closeConns() {
	s.mu.Lock()
	victims := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		victims = append(victims, c)
	}
	s.mu.Unlock()
	for _, c := range victims {
		c.close()
	}
}

func (s *ExecutorServer) track(c *conn) {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[*conn]struct{})
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *ExecutorServer) untrack(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *ExecutorServer) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *ExecutorServer) handle(ctx context.Context, c *conn) {
	defer c.close()
	s.track(c)
	defer s.untrack(c)
	mExecConns.Add(1)
	defer mExecConns.Add(-1)

	if ht := s.handshakeTimeout(); ht > 0 {
		_ = c.raw.SetReadDeadline(time.Now().Add(ht))
	}
	var hello helloMsg
	if err := c.dec.Decode(&hello); err != nil {
		s.logf("cluster executor: bad hello: %v", err)
		return
	}
	_ = c.raw.SetReadDeadline(time.Time{})
	ok := hello.Magic == magic && hello.Version == protocolVersion
	capacity := s.Capacity
	if capacity <= 0 {
		capacity = 1
	}
	if err := c.enc.Encode(helloAck{OK: ok, Version: protocolVersion, Capacity: capacity}); err != nil {
		return
	}
	if !ok {
		s.logf("cluster executor: rejected connection (magic %q version %d)", hello.Magic, hello.Version)
		return
	}

	// Per-connection stage state. The driver guarantees a stage frame
	// precedes any task referencing it on the same connection, so these
	// maps are always warm by the time a task arrives. Lifetime equals
	// the connection, which is exactly the driver's book-keeping scope:
	// after a reconnect both sides start empty and the stage re-ships.
	// Compiled pipelines are additionally deduplicated process-wide by
	// content fingerprint (engine.CompileStageAs), so N slot
	// connections compile — and build the broadcast hash table of — a
	// given stage once.
	stages := map[uint64]*engine.StagePipeline{}
	stageErrs := map[uint64]error{}
	tables := map[uint64][]relation.Row{}
	// In-flight shuffle push streams on this connection (protocol v4).
	// Scoped to the connection like the stage caches: a dropped peer
	// connection drops its partial streams and the retried map task
	// starts a fresh sequence.
	pend := map[pushKey]*pendingRun{}

	// reply sends one response frame under the write timeout.
	reply := func(what string, v any) bool {
		if wt := s.writeTimeout(); wt > 0 {
			_ = c.raw.SetWriteDeadline(time.Now().Add(wt))
		}
		err := c.enc.Encode(v)
		_ = c.raw.SetWriteDeadline(time.Time{})
		if err != nil {
			s.logf("cluster executor: send %s: %v", what, err)
			return false
		}
		return true
	}

	for ctx.Err() == nil && !s.isDraining() {
		var hdr frameHdr
		if err := c.dec.Decode(&hdr); err != nil {
			// Connection closed by driver (or by drain); normal end of
			// stream.
			return
		}
		switch hdr.Kind {
		case frameStage:
			var st stageMsg
			if err := c.dec.Decode(&st); err != nil {
				return
			}
			s.mu.Lock()
			s.stagesRecv++
			s.mu.Unlock()
			mExecStages.Inc()
			pipe, err := s.registerStage(&st, tables)
			if err != nil {
				// A stage that fails to materialize or compile is
				// deterministic; remember the error and report it on
				// the tasks that reference the stage.
				stageErrs[st.Fingerprint] = err
			} else {
				stages[st.Fingerprint] = pipe
			}
		case frameTask:
			var task taskMsg
			if err := c.dec.Decode(&task); err != nil {
				return
			}
			res, fatal := s.runTask(stages, stageErrs, &task)
			if fatal {
				// Corrupt partition payload: drop the connection so the
				// driver treats it as a transport failure and retries,
				// instead of aborting the whole stage.
				s.logf("cluster executor: task %d: corrupt partition payload", task.ID)
				return
			}
			if !reply(fmt.Sprintf("result %d", task.ID), res) {
				return
			}
		case frameShuffleBegin:
			var msg shuffleBeginMsg
			if err := c.dec.Decode(&msg); err != nil {
				return
			}
			var ack shuffleBeginAck
			if _, err := s.shuffles.begin(&msg, s.pushTimeout()); err != nil {
				ack.Err = err.Error()
			}
			if !reply("shuffle begin ack", ack) {
				return
			}
		case frameShuffleMap:
			var task shuffleMapMsg
			if err := c.dec.Decode(&task); err != nil {
				return
			}
			ack, fatal := s.runShuffleMap(stages, stageErrs, &task)
			if fatal {
				s.logf("cluster executor: shuffle map %d: corrupt partition payload", task.ID)
				return
			}
			if !reply(fmt.Sprintf("shuffle map ack %d", task.ID), ack) {
				return
			}
		case frameShufflePush:
			var msg shufflePushMsg
			if err := c.dec.Decode(&msg); err != nil {
				return
			}
			if !reply("shuffle push ack", s.handleShufflePush(pend, &msg)) {
				return
			}
		case frameShuffleBarrier:
			var msg shuffleBarrierMsg
			if err := c.dec.Decode(&msg); err != nil {
				return
			}
			var ack shuffleBarrierAck
			if st := s.shuffles.get(msg.Shuffle); st == nil {
				ack.Err = fmt.Sprintf("unknown shuffle %#x", msg.Shuffle)
			} else {
				ack.Missing, ack.Rows, ack.Bytes = st.missing(msg.Sources)
			}
			if !reply("shuffle barrier ack", ack) {
				return
			}
		case frameShuffleReduce:
			var msg shuffleReduceMsg
			if err := c.dec.Decode(&msg); err != nil {
				return
			}
			if !reply(fmt.Sprintf("shuffle reduce ack %d", msg.Part), s.runShuffleReduce(&msg)) {
				return
			}
		case frameShuffleFree:
			var msg shuffleFreeMsg
			if err := c.dec.Decode(&msg); err != nil {
				return
			}
			s.shuffles.free(msg.Shuffles)
			if !reply("shuffle free ack", shuffleFreeAck{}) {
				return
			}
		default:
			s.logf("cluster executor: unknown frame kind %d", hdr.Kind)
			return
		}
	}
}

// registerStage decodes a stage shipment: broadcast tables land in the
// connection's content-hash cache, table references in the pipeline are
// materialized from it, and the stage compiles through the process-wide
// pipeline cache keyed by the driver's fingerprint.
func (s *ExecutorServer) registerStage(st *stageMsg, tables map[uint64][]relation.Row) (*engine.StagePipeline, error) {
	for _, t := range st.Tables {
		rows, err := colcodec.Decode(t.Schema, t.Data)
		if err != nil {
			return nil, fmt.Errorf("broadcast table %#x: %w", t.Hash, err)
		}
		tables[t.Hash] = rows
	}
	ops := make([]engine.OpDesc, len(st.Ops))
	copy(ops, st.Ops)
	for i, op := range ops {
		if op.Kind != engine.OpBroadcastJoin || op.Join == nil || op.Join.Rows != nil {
			continue
		}
		rows, ok := tables[op.Join.TableHash]
		if !ok {
			return nil, fmt.Errorf("broadcast table %#x referenced but never shipped", op.Join.TableHash)
		}
		j := *op.Join
		j.Rows = rows
		ops[i].Join = &j
	}
	return engine.CompileStageAs(st.Fingerprint, st.Schema, ops)
}

// runTask applies the cached stage pipeline to one columnar partition.
// fatal=true means the partition payload itself was undecodable and the
// connection should be dropped (retryable corruption); every other
// failure is reported as a task error, classified for the driver:
// retryable (spill I/O faults), panicked (a recovered op panic), or
// deterministic (everything else, aborts the stage). Every result also
// snapshots the memory governor so the driver sees executor pressure.
func (s *ExecutorServer) runTask(stages map[uint64]*engine.StagePipeline, stageErrs map[uint64]error, task *taskMsg) (res resultMsg, fatal bool) {
	defer func() {
		g := memgov.Default()
		res.MemUsed, res.MemBudget = g.Used(), g.Budget()
	}()
	fail := func(err error) resultMsg {
		return resultMsg{
			ID: task.ID, Epoch: task.Epoch, Span: task.Span, Err: err.Error(),
			Retryable: engine.IsRetryable(err), Panicked: engine.IsPanic(err),
		}
	}
	pipe, ok := stages[task.Stage]
	if !ok {
		if err := stageErrs[task.Stage]; err != nil {
			return fail(err), false
		}
		return fail(fmt.Errorf("unknown stage %#x (driver sent task before stage)", task.Stage)), false
	}
	t0 := time.Now()
	var rows []relation.Row
	if task.SegPath != "" {
		// Segment-backed task (protocol v4): read the named segment file
		// directly instead of decoding driver-shipped bytes. A read
		// failure is environmental (file on shared storage, executor
		// may lack it transiently) and therefore retryable elsewhere; a
		// segment whose columns don't match the stage's input schema is
		// a planning bug and aborts deterministically.
		s, segRows, err := segstore.ReadSegmentRows(task.SegPath, task.SegCols)
		if err != nil {
			return fail(engine.Retryable(fmt.Errorf("segment %s: %w", task.SegPath, err))), false
		}
		if !s.Equal(pipe.InputSchema()) {
			return fail(fmt.Errorf("segment %s: schema %s does not match stage input %s", task.SegPath, s, pipe.InputSchema())), false
		}
		rows = segRows
	} else {
		var err error
		rows, err = colcodec.Decode(pipe.InputSchema(), task.Data)
		if err != nil {
			return resultMsg{}, true
		}
	}
	decodeNs := time.Since(t0).Nanoseconds()
	// The decoded partition is this task's resident input; reserving it
	// with the governor makes spilling operators see honest pressure
	// when several slot connections run tasks concurrently.
	var gr *memgov.Grant
	if g := memgov.Default(); !g.Unlimited() {
		gr = g.ForceGrant(engine.RowsFootprint(rows))
	}
	t1 := time.Now()
	out, err := pipe.ApplyContained(rows)
	if err != nil {
		gr.Release()
		if engine.IsPanic(err) {
			mExecPanics.Inc()
			s.logf("cluster executor: task %d: contained panic: %v", task.ID, err)
		}
		return fail(err), false
	}
	execNs := time.Since(t1).Nanoseconds()
	// Results mirror the task payload's compression choice.
	t2 := time.Now()
	data, err := colcodec.Encode(pipe.OutputSchema(), out, colcodec.Options{Compress: colcodec.IsCompressed(task.Data)})
	gr.Release()
	if err != nil {
		return fail(err), false
	}
	encodeNs := time.Since(t2).Nanoseconds()
	s.mu.Lock()
	s.tasksRun++
	s.mu.Unlock()
	mExecTasks.Inc()
	return resultMsg{
		ID: task.ID, Epoch: task.Epoch, Span: task.Span, Data: data,
		DecodeNs: decodeNs, ExecNs: execNs, EncodeNs: encodeNs,
	}, false
}

// StartLocalCluster spins up n executor servers on loopback ports and
// returns their addresses plus a stop function. It backs tests, the
// fleet example and the bench harness's distributed mode.
func StartLocalCluster(ctx context.Context, n int) (addrs []string, stop func(), err error) {
	cctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	servers := make([]*ExecutorServer, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cancel()
			return nil, nil, err
		}
		srv := &ExecutorServer{Capacity: 1}
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(cctx, l); err != nil {
				srv.logf("cluster: executor: %v", err)
			}
		}()
	}
	return addrs, func() {
		cancel()
		wg.Wait()
	}, nil
}

// sanity check that Relation gob round trips; referenced by tests.
var _ = relation.Relation{}
