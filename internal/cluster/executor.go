package cluster

import (
	"context"
	"errors"
	"log"
	"net"
	"sync"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// ExecutorServer is one worker node: it accepts driver connections and
// applies stage pipelines to the partitions it is handed.
type ExecutorServer struct {
	// Capacity advertised in the handshake; informational only.
	Capacity int
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	tasksRun int
}

// TasksRun reports how many tasks this executor has completed.
func (s *ExecutorServer) TasksRun() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasksRun
}

// Addr returns the listen address once Serve has bound it.
func (s *ExecutorServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

func (s *ExecutorServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ListenAndServe binds addr (e.g. ":7077" or "127.0.0.1:0") and serves
// until ctx is cancelled.
func (s *ExecutorServer) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// Serve accepts connections on l until ctx is cancelled. Each
// connection is handled on its own goroutine, so one executor process
// serves many driver connections concurrently (the "5 virtual CPUs per
// executor" of the paper's setup corresponds to slots-per-executor on
// the driver side).
func (s *ExecutorServer) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()

	go func() {
		<-ctx.Done()
		_ = l.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(ctx, newConn(raw))
		}()
	}
}

func (s *ExecutorServer) handle(ctx context.Context, c *conn) {
	defer c.close()
	var hello helloMsg
	if err := c.dec.Decode(&hello); err != nil {
		s.logf("cluster executor: bad hello: %v", err)
		return
	}
	ok := hello.Magic == magic && hello.Version == protocolVersion
	cap := s.Capacity
	if cap <= 0 {
		cap = 1
	}
	if err := c.enc.Encode(helloAck{OK: ok, Version: protocolVersion, Capacity: cap}); err != nil {
		return
	}
	if !ok {
		s.logf("cluster executor: rejected connection (magic %q version %d)", hello.Magic, hello.Version)
		return
	}
	for ctx.Err() == nil {
		var task taskMsg
		if err := c.dec.Decode(&task); err != nil {
			// Connection closed by driver; normal end of stream.
			return
		}
		res := s.runTask(&task)
		if err := c.enc.Encode(res); err != nil {
			s.logf("cluster executor: send result %d: %v", task.ID, err)
			return
		}
	}
}

func (s *ExecutorServer) runTask(task *taskMsg) resultMsg {
	pipe, err := engine.NewStagePipeline(task.Schema, task.Ops)
	if err != nil {
		return resultMsg{ID: task.ID, Err: err.Error()}
	}
	rows, err := pipe.Apply(task.Rows)
	if err != nil {
		return resultMsg{ID: task.ID, Err: err.Error()}
	}
	s.mu.Lock()
	s.tasksRun++
	s.mu.Unlock()
	return resultMsg{ID: task.ID, Schema: pipe.OutputSchema(), Rows: rows}
}

// StartLocalCluster spins up n executor servers on loopback ports and
// returns their addresses plus a stop function. It backs tests, the
// fleet example and the bench harness's distributed mode.
func StartLocalCluster(ctx context.Context, n int) (addrs []string, stop func(), err error) {
	cctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	servers := make([]*ExecutorServer, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cancel()
			return nil, nil, err
		}
		srv := &ExecutorServer{Capacity: 1}
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(cctx, l); err != nil {
				log.Printf("cluster: executor: %v", err)
			}
		}()
	}
	return addrs, func() {
		cancel()
		wg.Wait()
	}, nil
}

// sanity check that Relation gob round trips; referenced by tests.
var _ = relation.Relation{}
