package cluster

import (
	"context"
	"testing"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// emptyTestSchema builds the small schema used by the empty-partition
// regressions: one join/group key and one numeric column.
func emptyTestSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindString},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
}

func emptyTestOps() []engine.OpDesc {
	table := relation.FromRows(
		relation.NewSchema(
			relation.Column{Name: "rk", Kind: relation.KindString},
			relation.Column{Name: "label", Kind: relation.KindString},
		),
		[]relation.Row{
			{relation.Str("a"), relation.Str("alpha")},
			{relation.Str("b"), relation.Str("beta")},
		},
	)
	return []engine.OpDesc{
		engine.BroadcastJoin(table, []string{"k"}, []string{"rk"}),
		engine.PartialAgg([]string{"k"}, []engine.AggSpec{
			{Fn: engine.AggCount, As: "n"},
			{Fn: engine.AggSum, Col: "v", As: "total"},
		}),
	}
}

// TestEmptyPartitionsExecute runs BroadcastJoin+PartialAgg over (a) a
// relation with zero rows and (b) a partition plan where most
// partitions are empty, on both the local executor and a real cluster.
// Both must complete without panicking and agree with each other —
// empty partitions flow through the columnar codec as zero-row
// payloads (see TestZeroRowRoundTrip in internal/colcodec).
func TestEmptyPartitionsExecute(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	s := emptyTestSchema()
	ops := emptyTestOps()
	cases := []struct {
		name   string
		rows   []relation.Row
		nparts int
	}{
		{"zero-rows-4-parts", nil, 4},
		{"three-rows-8-parts", []relation.Row{
			{relation.Str("a"), relation.Float(1.5)},
			{relation.Str("b"), relation.Float(-2)},
			{relation.Str("a"), relation.Null()},
		}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel := relation.FromRows(s, tc.rows).Repartition(tc.nparts)
			empties := 0
			for _, p := range rel.Partitions {
				if len(p) == 0 {
					empties++
				}
			}
			if empties == 0 {
				t.Fatalf("test premise broken: no empty partitions in %s", tc.name)
			}

			for _, compress := range []bool{false, true} {
				drv := &Driver{Addrs: addrs, Compress: compress}
				got, _, err := drv.RunStage(ctx, rel, ops)
				if err != nil {
					t.Fatalf("cluster (compress=%v): %v", compress, err)
				}
				mustMatchLocal(t, ctx, got, rel, ops)
			}

			// The merged result must also be well-formed: group counts
			// over the joined stream, no phantom groups from empty
			// partitions.
			lres, _, err := engine.NewLocal(2).RunStage(ctx, rel, ops)
			if err != nil {
				t.Fatalf("local: %v", err)
			}
			merged, err := engine.MergePartials(lres, []string{"k"}, []engine.AggSpec{
				{Fn: engine.AggCount, As: "n"},
				{Fn: engine.AggSum, Col: "v", As: "total"},
			})
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			if len(tc.rows) == 0 && merged.NumRows() != 0 {
				t.Fatalf("zero-row input produced %d groups", merged.NumRows())
			}
		})
	}
}
