package cluster

import (
	"context"
	"testing"
	"time"

	"ivnt/internal/engine"
)

// A persistent driver must reuse connections — and their stage-once
// shipping caches — across stages: the second run of the same stage
// ships nothing and dials nothing.
func TestPersistentDriverReusesConnections(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rel := traceRel(300, 6)
	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 1, Persistent: true}
	defer drv.Close()

	want, _, err := engine.NewLocal(2).RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	run := func() engine.Stats {
		t.Helper()
		got, st, err := drv.RunStage(ctx, rel, stageOps())
		if err != nil {
			t.Fatal(err)
		}
		gr, wr := got.Rows(), want.Rows()
		if len(gr) != len(wr) {
			t.Fatalf("rows = %d, want %d", len(gr), len(wr))
		}
		for i := range gr {
			if !gr[i].Equal(wr[i]) {
				t.Fatalf("row %d differs: %v vs %v", i, gr[i], wr[i])
			}
		}
		return st
	}

	st1 := run()
	if st1.StagesShipped == 0 {
		t.Fatalf("first run shipped no stages: %+v", st1)
	}
	drv.poolMu.Lock()
	pooled := 0
	for _, l := range drv.pool {
		pooled += len(l)
	}
	drv.poolMu.Unlock()
	if pooled == 0 {
		t.Fatal("no connections pooled after a clean stage")
	}

	st2 := run()
	if st2.StagesShipped != 0 {
		t.Fatalf("second run re-shipped the stage %d time(s): pooled connections lost their cache", st2.StagesShipped)
	}
	if st2.Reconnects != 0 {
		t.Fatalf("second run reconnected %d time(s)", st2.Reconnects)
	}
	// Byte accounting must be per-stage deltas, not cumulative: the
	// second run moves less (no stage shipment) but still nonzero.
	if st2.BytesSent <= 0 || st2.BytesSent >= st1.BytesSent {
		t.Fatalf("second-run bytes %d not a fresh delta of first-run %d", st2.BytesSent, st1.BytesSent)
	}
}

// Close must be idempotent and stop further pooling.
func TestPersistentDriverClose(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	drv := &Driver{Addrs: addrs, Persistent: true}
	if _, _, err := drv.RunStage(ctx, traceRel(50, 2), stageOps()); err != nil {
		t.Fatal(err)
	}
	drv.Close()
	drv.Close()
	// Stages still run after Close (fresh dials, nothing pooled).
	if _, _, err := drv.RunStage(ctx, traceRel(50, 2), stageOps()); err != nil {
		t.Fatal(err)
	}
	drv.poolMu.Lock()
	defer drv.poolMu.Unlock()
	if len(drv.pool) != 0 {
		t.Fatalf("pool repopulated after Close: %v", drv.pool)
	}
}
