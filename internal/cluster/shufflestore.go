// Executor-side shuffle state (protocol v4, docs/SHUFFLE.md): every
// ExecutorServer carries one shuffleStore holding, per open shuffle,
// the committed bucket runs pushed to it by map tasks — its own and its
// peers'. Runs commit atomically when a push stream's Last frame
// arrives and the decoded rows cross-check against the declared count;
// partial streams whose connection drops leave no trace, so a retried
// map task simply pushes again and the first complete run of a
// (partition, source) pair wins. Committed rows are held under memory
// governor grants; when the governor denies a grant the run's frames
// spill to a disk file in the same uvarint-framed colcodec format the
// engine's spill runs use (internal/colcodec.FrameWriter), and are
// decoded back only when a reduce materializes the partition.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// shuffleState is one shuffle's configuration and committed runs on one
// executor.
type shuffleState struct {
	id        uint64
	endpoints []string
	selfIdx   int
	parts     int
	keys      []string
	keyIdx    []int
	schema    relation.Schema
	compress  bool
	pushTO    time.Duration

	mu sync.Mutex
	// runs[part][source] is the committed bucket run pushed by map task
	// `source` for output partition `part`.
	runs map[int]map[uint64]*shuffleRunData
}

// shuffleRunData is one committed (partition, source) bucket run:
// resident rows under a governor grant, or frames spilled to disk.
type shuffleRunData struct {
	rows  []relation.Row // resident form (nil when spilled)
	spill string         // spill file path (frames), "" when resident
	nrows int64
	bytes int64 // wire payload bytes (sum of frame lengths)
	grant *memgov.Grant
}

func (r *shuffleRunData) free() {
	r.grant.Release()
	r.grant = nil
	r.rows = nil
	if r.spill != "" {
		_ = os.Remove(r.spill)
		r.spill = ""
	}
}

// owns reports whether this executor owns output partition p.
func (st *shuffleState) owns(p int) bool {
	return p%len(st.endpoints) == st.selfIdx
}

// ownerIdx returns the endpoint index owning partition p.
func (st *shuffleState) ownerIdx(p int) int { return p % len(st.endpoints) }

// commit installs one complete bucket run. First complete run per
// (part, source) wins: map-task retries re-push deterministically
// identical rows, so duplicates are discarded, not appended. Resident
// storage asks the governor for the rows' footprint; on denial the
// already-encoded frames go to a spill file instead and the rows are
// dropped.
func (st *shuffleState) commit(part int, source uint64, rows []relation.Row, frames [][]byte, wireBytes int64) error {
	run := &shuffleRunData{nrows: int64(len(rows)), bytes: wireBytes}
	if len(rows) > 0 {
		if g := memgov.Default(); !g.Unlimited() {
			run.grant = g.TryGrant(engine.RowsFootprint(rows))
			if run.grant == nil {
				// Denied: spill the frames as received — no re-encode.
				path, n, err := writeShuffleSpill(frames)
				if err != nil {
					return engine.Retryable(fmt.Errorf("shuffle spill: %w", err))
				}
				run.spill = path
				mShuffleSpills.Inc()
				mShuffleSpillBytes.Add(n)
			}
		}
		if run.spill == "" {
			run.rows = rows
		}
	}
	st.mu.Lock()
	if st.runs[part] == nil {
		st.runs[part] = map[uint64]*shuffleRunData{}
	}
	_, dup := st.runs[part][source]
	if !dup {
		st.runs[part][source] = run
	}
	st.mu.Unlock()
	if dup {
		run.free()
		return nil
	}
	mShufflePartsRecv.Inc()
	return nil
}

// writeShuffleSpill writes frames to a fresh temp file in spill-run
// format and returns its path and byte size.
func writeShuffleSpill(frames [][]byte) (string, int64, error) {
	f, err := os.CreateTemp("", "ivnt-shuffle-*.run")
	if err != nil {
		return "", 0, err
	}
	fw := colcodec.NewFrameWriter(f)
	for _, fr := range frames {
		if err := fw.WriteFrame(fr); err != nil {
			f.Close()
			os.Remove(f.Name())
			return "", 0, err
		}
	}
	if err := fw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", 0, err
	}
	return f.Name(), fw.Bytes(), nil
}

// missing returns, sorted, the sources with no committed run on any
// partition this executor owns, plus committed row/byte totals.
func (st *shuffleState) missing(sources []uint64) (miss []uint64, rows, bytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	missSet := map[uint64]bool{}
	for p := 0; p < st.parts; p++ {
		if !st.owns(p) {
			continue
		}
		for _, src := range sources {
			run, ok := st.runs[p][src]
			if !ok {
				missSet[src] = true
				continue
			}
			rows += run.nrows
			bytes += run.bytes
		}
	}
	for src := range missSet {
		miss = append(miss, src)
	}
	sort.Slice(miss, func(i, j int) bool { return miss[i] < miss[j] })
	return miss, rows, bytes
}

// materialize returns partition p's rows: every committed run
// concatenated in ascending source order — the same order the driver's
// single-process reference (Relation.PartitionByKey over partitions in
// order) produces, which is what keeps the distributed exchange bitwise
// deterministic. Spilled runs decode from their frame files.
func (st *shuffleState) materialize(p int, sources []uint64) ([]relation.Row, error) {
	st.mu.Lock()
	runs := st.runs[p]
	ordered := make([]*shuffleRunData, 0, len(sources))
	var total int64
	for _, src := range sources {
		run, ok := runs[src]
		if !ok {
			st.mu.Unlock()
			return nil, engine.Retryable(fmt.Errorf("shuffle %#x partition %d: source %d not materialized", st.id, p, src))
		}
		ordered = append(ordered, run)
		total += run.nrows
	}
	st.mu.Unlock()
	out := make([]relation.Row, 0, total)
	for _, run := range ordered {
		if run.spill == "" {
			out = append(out, run.rows...)
			continue
		}
		rows, err := readShuffleSpill(run.spill, st.schema)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// readShuffleSpill decodes one spilled run file back into rows.
func readShuffleSpill(path string, schema relation.Schema) ([]relation.Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, engine.Retryable(fmt.Errorf("shuffle spill read: %w", err))
	}
	defer f.Close()
	fr := colcodec.NewFrameReader(f)
	var out []relation.Row
	for {
		frame, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, engine.Retryable(fmt.Errorf("shuffle spill read: %w", err))
		}
		rows, err := colcodec.Decode(schema, frame)
		if err != nil {
			return nil, engine.Retryable(fmt.Errorf("shuffle spill decode: %w", err))
		}
		out = append(out, rows...)
	}
	return out, nil
}

// freeAll releases every run's grant and spill file.
func (st *shuffleState) freeAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, runs := range st.runs {
		for _, run := range runs {
			run.free()
		}
	}
	st.runs = map[int]map[uint64]*shuffleRunData{}
}

// shuffleStore tracks every open shuffle on one executor server.
type shuffleStore struct {
	mu       sync.Mutex
	shuffles map[uint64]*shuffleState
}

// begin opens (or idempotently re-opens) a shuffle. A repeat with the
// same ID keeps the existing state — reconnecting drivers re-send begin
// frames exactly like they re-ship stages.
func (ss *shuffleStore) begin(msg *shuffleBeginMsg, defaultPushTO time.Duration) (*shuffleState, error) {
	if msg.Parts < 1 || len(msg.Endpoints) == 0 || msg.SelfIdx < 0 || msg.SelfIdx >= len(msg.Endpoints) {
		return nil, fmt.Errorf("shuffle %#x: invalid begin (parts=%d endpoints=%d self=%d)",
			msg.ID, msg.Parts, len(msg.Endpoints), msg.SelfIdx)
	}
	if len(msg.Keys) == 0 {
		return nil, fmt.Errorf("shuffle %#x: no key columns", msg.ID)
	}
	keyIdx := make([]int, len(msg.Keys))
	for i, k := range msg.Keys {
		keyIdx[i] = msg.Schema.Index(k)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("shuffle %#x: key %q missing from payload schema", msg.ID, k)
		}
	}
	pushTO := defaultPushTO
	if msg.PushTimeoutMs > 0 {
		pushTO = time.Duration(msg.PushTimeoutMs) * time.Millisecond
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.shuffles == nil {
		ss.shuffles = map[uint64]*shuffleState{}
	}
	if st, ok := ss.shuffles[msg.ID]; ok {
		return st, nil
	}
	st := &shuffleState{
		id:        msg.ID,
		endpoints: append([]string(nil), msg.Endpoints...),
		selfIdx:   msg.SelfIdx,
		parts:     msg.Parts,
		keys:      append([]string(nil), msg.Keys...),
		keyIdx:    keyIdx,
		schema:    msg.Schema,
		compress:  msg.Compress,
		pushTO:    pushTO,
		runs:      map[int]map[uint64]*shuffleRunData{},
	}
	ss.shuffles[msg.ID] = st
	return st, nil
}

// get returns the shuffle's state, or nil when unknown (executor
// restarted since begin; the caller reports a retryable error and the
// driver re-opens the shuffle on its reconnected connection).
func (ss *shuffleStore) get(id uint64) *shuffleState {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.shuffles[id]
}

// free drops the listed shuffles and releases their resources.
func (ss *shuffleStore) free(ids []uint64) {
	ss.mu.Lock()
	var victims []*shuffleState
	for _, id := range ids {
		if st, ok := ss.shuffles[id]; ok {
			victims = append(victims, st)
			delete(ss.shuffles, id)
		}
	}
	ss.mu.Unlock()
	for _, st := range victims {
		st.freeAll()
	}
}

// freeAll drops every shuffle (server shutdown).
func (ss *shuffleStore) freeAll() {
	ss.mu.Lock()
	victims := make([]*shuffleState, 0, len(ss.shuffles))
	for id, st := range ss.shuffles {
		victims = append(victims, st)
		delete(ss.shuffles, id)
	}
	ss.mu.Unlock()
	for _, st := range victims {
		st.freeAll()
	}
}
