// Executor-side shuffle execution (protocol v4, docs/SHUFFLE.md): map
// tasks split their output by key hash and push every bucket to the
// peer executor owning that output partition, over pooled executor-to-
// executor connections that speak the same framed protocol as driver
// connections; reduces materialize an owned partition and run the
// partition-local computation (collect, final aggregation, or the
// broadcast-join kernel against a second shuffle's partition).
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// shuffleChunkRows bounds how many rows ride in one shufflePushMsg
// frame, so one push round trip stays small and a severed peer stream
// loses (and retries) bounded work.
const shuffleChunkRows = 4096

// defaultPushTimeout bounds one peer push round trip when the driver
// does not configure one via shuffleBeginMsg.PushTimeoutMs.
const defaultPushTimeout = 30 * time.Second

// peerSlot is one pooled outgoing connection to a peer executor. Pushes
// to the same peer serialize on its mutex, which also makes the frame
// sequences of concurrent map tasks non-interleaved per (part, source).
type peerSlot struct {
	mu     sync.Mutex
	c      *conn
	dialed bool
}

// peerPool caches one outgoing connection per peer endpoint.
type peerPool struct {
	mu    sync.Mutex
	slots map[string]*peerSlot
}

func (pp *peerPool) slot(addr string) *peerSlot {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.slots == nil {
		pp.slots = map[string]*peerSlot{}
	}
	s, ok := pp.slots[addr]
	if !ok {
		s = &peerSlot{}
		pp.slots[addr] = s
	}
	return s
}

// closeAll drops every pooled peer connection (server shutdown).
func (pp *peerPool) closeAll() {
	pp.mu.Lock()
	slots := make([]*peerSlot, 0, len(pp.slots))
	for _, s := range pp.slots {
		slots = append(slots, s)
	}
	pp.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		if s.c != nil {
			s.c.close()
			s.c = nil
		}
		s.mu.Unlock()
	}
}

// pushKey identifies one in-flight push stream on a receiving
// connection.
type pushKey struct {
	shuffle uint64
	part    int
	source  uint64
}

// pendingRun accumulates one push stream's frames until Last commits
// it. Lifetime is the receiving connection: a dropped connection drops
// its partial streams, so a retried map task starts clean.
type pendingRun struct {
	frames  [][]byte
	nextSeq int
	bytes   int64
}

// runShuffleMap executes one map task: decode, run the shipped stage
// pipeline (if any), hash-split, and deliver every bucket to its
// partition owner. fatal=true means the input payload was undecodable
// (drop the connection, like runTask).
func (s *ExecutorServer) runShuffleMap(stages map[uint64]*engine.StagePipeline, stageErrs map[uint64]error, task *shuffleMapMsg) (ack shuffleMapAck, fatal bool) {
	ack = shuffleMapAck{ID: task.ID, Epoch: task.Epoch}
	fail := func(err error) shuffleMapAck {
		return shuffleMapAck{
			ID: task.ID, Epoch: task.Epoch, Err: err.Error(),
			Retryable: engine.IsRetryable(err), Panicked: engine.IsPanic(err),
		}
	}
	st := s.shuffles.get(task.Shuffle)
	if st == nil {
		// Executor restarted since the shuffle began; the driver re-opens
		// it on the reconnected connection and retries.
		return fail(engine.Retryable(fmt.Errorf("unknown shuffle %#x", task.Shuffle))), false
	}
	inSchema := st.schema
	var pipe *engine.StagePipeline
	if task.Stage != 0 {
		var ok bool
		pipe, ok = stages[task.Stage]
		if !ok {
			if err := stageErrs[task.Stage]; err != nil {
				return fail(err), false
			}
			return fail(fmt.Errorf("unknown stage %#x (driver sent shuffle map before stage)", task.Stage)), false
		}
		inSchema = pipe.InputSchema()
	}
	rows, err := colcodec.Decode(inSchema, task.Data)
	if err != nil {
		return shuffleMapAck{}, true
	}
	var gr *memgov.Grant
	if g := memgov.Default(); !g.Unlimited() {
		gr = g.ForceGrant(engine.RowsFootprint(rows))
	}
	defer gr.Release()
	out := rows
	if pipe != nil {
		out, err = pipe.ApplyContained(rows)
		if err != nil {
			if engine.IsPanic(err) {
				mExecPanics.Inc()
				s.logf("cluster executor: shuffle map %d: contained panic: %v", task.ID, err)
			}
			return fail(err), false
		}
	}
	split := engine.ShuffleSplit(out, st.keyIdx, st.parts)
	limited := !memgov.Default().Unlimited()
	for p, bucket := range split {
		ack.Rows += int64(len(bucket))
		if st.ownerIdx(p) == st.selfIdx {
			// Self-shortcut: commit directly, no wire. Frames are only
			// needed if the governor might deny residency and force a
			// spill.
			var frames [][]byte
			var wire int64
			if limited && len(bucket) > 0 {
				frames, wire, err = encodeBucketFrames(st, bucket)
				if err != nil {
					return fail(err), false
				}
			}
			if err := st.commit(p, task.ID, bucket, frames, wire); err != nil {
				return fail(err), false
			}
			mShufflePartsSent.Inc()
			continue
		}
		n, err := s.pushBucket(st, p, task.ID, bucket)
		if err != nil {
			// Peer transport and peer-side failures are environmental:
			// the driver requeues this map task (possibly elsewhere) and
			// the first complete re-push wins on the receiver.
			return fail(engine.Retryable(fmt.Errorf("shuffle push partition %d to %s: %w",
				p, st.endpoints[st.ownerIdx(p)], err))), false
		}
		ack.PushedBytes += n
		mShufflePartsSent.Inc()
		mShuffleBytesSent.Add(n)
	}
	s.mu.Lock()
	s.tasksRun++
	s.mu.Unlock()
	mExecTasks.Inc()
	return ack, false
}

// encodeBucketFrames chunks one bucket into colcodec frames — the wire
// payload of shufflePushMsg and the spill-run format of the receiver.
func encodeBucketFrames(st *shuffleState, bucket []relation.Row) ([][]byte, int64, error) {
	var frames [][]byte
	var total int64
	for lo := 0; lo < len(bucket); lo += shuffleChunkRows {
		hi := lo + shuffleChunkRows
		if hi > len(bucket) {
			hi = len(bucket)
		}
		data, err := colcodec.Encode(st.schema, bucket[lo:hi], colcodec.Options{Compress: st.compress})
		if err != nil {
			return nil, 0, fmt.Errorf("encode shuffle chunk: %w", err)
		}
		frames = append(frames, data)
		total += int64(len(data))
	}
	return frames, total, nil
}

// pushBucket streams one bucket to the owner of partition p over the
// pooled peer connection: one shufflePushMsg per frame, each
// acknowledged, then a Last message carrying the total row count. Any
// error invalidates the pooled connection so the next push re-dials.
func (s *ExecutorServer) pushBucket(st *shuffleState, p int, source uint64, bucket []relation.Row) (int64, error) {
	frames, wire, err := encodeBucketFrames(st, bucket)
	if err != nil {
		return 0, err
	}
	addr := st.endpoints[st.ownerIdx(p)]
	slot := s.peers.slot(addr)
	slot.mu.Lock()
	defer slot.mu.Unlock()
	to := st.pushTO
	if to <= 0 {
		to = defaultPushTimeout
	}
	if slot.c == nil {
		// A refused dial usually means the peer is restarting (hard kill
		// + rebind): keep redialing with capped backoff within the push
		// timeout, the same patience driver slots give a restarting
		// executor, instead of burning a map-task retry per attempt.
		deadline := time.Now().Add(to)
		pause := 25 * time.Millisecond
		for {
			raw, err := net.DialTimeout("tcp", addr, to)
			if err == nil {
				c := newConn(raw)
				if err = c.handshake(to); err == nil {
					if slot.dialed {
						mShufflePeerReconnects.Inc()
					}
					slot.dialed = true
					slot.c = c
					break
				}
				c.close()
			}
			if time.Now().Add(pause).After(deadline) {
				return 0, err
			}
			time.Sleep(pause)
			if pause *= 2; pause > 500*time.Millisecond {
				pause = 500 * time.Millisecond
			}
		}
	}
	c := slot.c
	roundTrip := func(msg *shufflePushMsg) error {
		_ = c.raw.SetDeadline(time.Now().Add(to))
		defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
		if err := c.enc.Encode(frameHdr{Kind: frameShufflePush}); err != nil {
			return err
		}
		if err := c.enc.Encode(msg); err != nil {
			return err
		}
		var ack shufflePushAck
		if err := c.dec.Decode(&ack); err != nil {
			return err
		}
		if ack.Err != "" {
			return fmt.Errorf("peer rejected push: %s", ack.Err)
		}
		return nil
	}
	for i, frame := range frames {
		msg := &shufflePushMsg{Shuffle: st.id, Part: p, Source: source, Seq: i, Data: frame}
		if err := roundTrip(msg); err != nil {
			c.close()
			slot.c = nil
			return 0, err
		}
	}
	last := &shufflePushMsg{Shuffle: st.id, Part: p, Source: source, Seq: len(frames), Last: true, Rows: int64(len(bucket))}
	if err := roundTrip(last); err != nil {
		c.close()
		slot.c = nil
		return 0, err
	}
	return wire, nil
}

// handleShufflePush processes one incoming push frame on a receiving
// connection. pend is that connection's in-flight stream buffer.
func (s *ExecutorServer) handleShufflePush(pend map[pushKey]*pendingRun, msg *shufflePushMsg) shufflePushAck {
	st := s.shuffles.get(msg.Shuffle)
	if st == nil {
		return shufflePushAck{Err: fmt.Sprintf("unknown shuffle %#x", msg.Shuffle)}
	}
	if !st.owns(msg.Part) {
		return shufflePushAck{Err: fmt.Sprintf("shuffle %#x: partition %d not owned here", msg.Shuffle, msg.Part)}
	}
	key := pushKey{shuffle: msg.Shuffle, part: msg.Part, source: msg.Source}
	run := pend[key]
	if run == nil {
		run = &pendingRun{}
		pend[key] = run
	}
	if msg.Seq != run.nextSeq {
		delete(pend, key)
		return shufflePushAck{Err: fmt.Sprintf("shuffle %#x: push seq %d, want %d", msg.Shuffle, msg.Seq, run.nextSeq)}
	}
	run.nextSeq++
	if !msg.Last {
		if len(msg.Data) == 0 {
			delete(pend, key)
			return shufflePushAck{Err: fmt.Sprintf("shuffle %#x: empty push frame", msg.Shuffle)}
		}
		run.frames = append(run.frames, msg.Data)
		run.bytes += int64(len(msg.Data))
		return shufflePushAck{}
	}
	// Last: decode and cross-check before committing, so corruption that
	// survived the transport surfaces here as a rejected push (the map
	// task retries) rather than later as a wrong reduce.
	delete(pend, key)
	var rows []relation.Row
	for _, frame := range run.frames {
		decoded, err := colcodec.Decode(st.schema, frame)
		if err != nil {
			return shufflePushAck{Err: fmt.Sprintf("shuffle %#x: corrupt partition frame: %v", msg.Shuffle, err)}
		}
		rows = append(rows, decoded...)
	}
	if int64(len(rows)) != msg.Rows {
		return shufflePushAck{Err: fmt.Sprintf("shuffle %#x: partition %d source %d: got %d rows, declared %d",
			msg.Shuffle, msg.Part, msg.Source, len(rows), msg.Rows)}
	}
	if err := st.commit(msg.Part, msg.Source, rows, run.frames, run.bytes); err != nil {
		return shufflePushAck{Err: err.Error()}
	}
	mShuffleBytesRecv.Add(run.bytes)
	return shufflePushAck{}
}

// runShuffleReduce materializes one owned partition and computes the
// requested partition-local reduce.
func (s *ExecutorServer) runShuffleReduce(msg *shuffleReduceMsg) shuffleReduceAck {
	fail := func(err error) shuffleReduceAck {
		return shuffleReduceAck{
			Part: msg.Part, Err: err.Error(),
			Retryable: engine.IsRetryable(err), Panicked: engine.IsPanic(err),
		}
	}
	st := s.shuffles.get(msg.Shuffle)
	if st == nil {
		return fail(engine.Retryable(fmt.Errorf("unknown shuffle %#x", msg.Shuffle)))
	}
	rows, err := st.materialize(msg.Part, msg.Sources)
	if err != nil {
		return fail(err)
	}
	var gr *memgov.Grant
	if g := memgov.Default(); !g.Unlimited() {
		gr = g.ForceGrant(engine.RowsFootprint(rows))
	}
	defer gr.Release()

	var outSchema relation.Schema
	var out []relation.Row
	switch msg.Kind {
	case reduceCollect:
		outSchema, out = st.schema, rows
	case reduceFinalAgg:
		partials := &relation.Relation{Schema: st.schema, Partitions: [][]relation.Row{rows}}
		final, err := engine.MergePartials(partials, msg.GroupBy, msg.Aggs)
		if err != nil {
			return fail(err)
		}
		outSchema, out = final.Schema, final.Rows()
	case reduceJoin:
		st2 := s.shuffles.get(msg.Shuffle2)
		if st2 == nil {
			return fail(engine.Retryable(fmt.Errorf("unknown shuffle %#x", msg.Shuffle2)))
		}
		build, err := st2.materialize(msg.Part, msg.Sources2)
		if err != nil {
			return fail(err)
		}
		var gr2 *memgov.Grant
		if g := memgov.Default(); !g.Unlimited() {
			gr2 = g.ForceGrant(engine.RowsFootprint(build))
		}
		// The per-partition join runs the exact broadcast-join kernel
		// with the right partition as the build table, so a shuffle join
		// is bitwise the broadcast plan applied partition by partition.
		buildRel := &relation.Relation{Schema: st2.schema, Partitions: [][]relation.Row{build}}
		pipe, _, err := engine.CompileStage(st.schema, []engine.OpDesc{
			engine.BroadcastJoin(buildRel, msg.LeftKeys, msg.RightKeys),
		})
		if err != nil {
			gr2.Release()
			return fail(err)
		}
		out, err = pipe.ApplyContained(rows)
		gr2.Release()
		if err != nil {
			if engine.IsPanic(err) {
				mExecPanics.Inc()
			}
			return fail(err)
		}
		outSchema = pipe.OutputSchema()
	default:
		return fail(fmt.Errorf("unknown shuffle reduce kind %d", msg.Kind))
	}
	data, err := colcodec.Encode(outSchema, out, colcodec.Options{Compress: msg.Compress})
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	s.tasksRun++
	s.mu.Unlock()
	mExecTasks.Inc()
	return shuffleReduceAck{Part: msg.Part, Data: data}
}
