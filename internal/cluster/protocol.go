// Package cluster distributes engine stages across executor processes
// over TCP — the stand-in for the paper's Spark cluster (Sec. 5.1 runs
// on 70 servers; we run the same operator plans on N executors reachable
// over stdlib net, or in-process for tests).
//
// The wire protocol (v3) ships each stage once per connection: a
// stageMsg carries the operator pipeline, the input schema, and any
// broadcast-join tables (keyed by content hash, columnar-encoded), and
// executors cache the compiled pipeline by stage fingerprint. Tasks
// then shrink to {id, epoch, stage fingerprint, columnar partition} —
// bytes on the wire scale with partition data, not with stage size, the
// same economics Spark gets from broadcast variables and per-stage
// closures. Rules still ride along as expression text, so executors
// need no code shipping, mirroring how the paper submits one-time
// parameterization to its Big Data jobs.
package cluster

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// protocolVersion guards against driver/executor skew. Version 2 added
// the task epoch (speculative re-execution, duplicate-result discard);
// version 3 added stage-once shipping (stageMsg, content-hashed
// broadcast tables, executor-side pipeline caching) and the columnar
// partition codec (internal/colcodec); version 4 added the
// hash-partitioned shuffle exchange (docs/SHUFFLE.md): six new frame
// kinds for shuffle setup, map tasks, executor-to-executor partition
// pushes, the materialization barrier, partition-local reduces and
// cleanup. New frame kinds are not gob-additive — a v3 peer would
// reject them as unknown frames mid-stream — hence the version bump.
const protocolVersion = 4

// magic identifies the protocol on connect.
const magic = "IVNT"

type helloMsg struct {
	Magic   string
	Version int
}

type helloAck struct {
	OK      bool
	Version int
	// Capacity advertises how many tasks the executor is willing to run
	// concurrently; informational.
	Capacity int
}

// Frame kinds. Every driver→executor message after the handshake is a
// frameHdr followed by the payload it announces, so the executor knows
// whether to expect a stage shipment or a task.
const (
	frameStage uint8 = 1
	frameTask  uint8 = 2
	// Shuffle frames (protocol v4). Begin/map/barrier/reduce/free travel
	// driver→executor; push travels executor→executor on peer
	// connections, which use the same handshake and frame format as
	// driver connections, so one server loop handles both.
	frameShuffleBegin   uint8 = 3
	frameShuffleMap     uint8 = 4
	frameShufflePush    uint8 = 5
	frameShuffleBarrier uint8 = 6
	frameShuffleReduce  uint8 = 7
	frameShuffleFree    uint8 = 8
)

type frameHdr struct {
	Kind uint8
}

// tableMsg is one broadcast-join table, shipped at most once per
// connection and cached by content hash on the executor. Rows are
// columnar-encoded against Schema.
type tableMsg struct {
	Hash   uint64
	Schema relation.Schema
	Data   []byte
}

// stageMsg ships one stage: the operator pipeline (broadcast tables
// stripped and replaced by JoinSpec.TableHash references), the input
// schema, and whichever referenced tables this connection has not seen
// yet. The fingerprint is the content hash of the complete stage
// (schema + ops + table contents), so executor caches can never serve
// a stale entry: a different stage is a different fingerprint.
type stageMsg struct {
	Fingerprint uint64
	Schema      relation.Schema
	Ops         []engine.OpDesc
	Tables      []tableMsg
}

// taskMsg carries one partition, columnar-encoded against the stage's
// input schema, plus the fingerprint of the (already shipped) stage to
// apply. Epoch distinguishes re-dispatches of the same task (retries
// and speculative copies); executors echo it so the driver can discard
// stale or desynchronized results.
//
// Span is the driver-side trace span ID of this task launch, echoed in
// the result. It and the result's timing fields are additive within
// protocol v3: gob zeroes fields a peer does not send and ignores
// fields it does not know, so v3 binaries with and without them
// interoperate — no version bump.
type taskMsg struct {
	ID    uint64
	Epoch uint64
	Stage uint64
	Span  uint64
	Data  []byte
	// SegPath/SegCols describe a segment-backed task (protocol v4,
	// gob-additive like the v3 trace fields): instead of shipping the
	// partition in Data, the driver names a segment file the executor
	// reads itself, restricted to SegCols (nil = every column). Data is
	// nil for such tasks; executors that predate the fields see an
	// empty partition, but such executors also never receive one —
	// segment scheduling is opt-in per stage via Driver.RunSegmentStage.
	SegPath string
	SegCols []string
}

// resultMsg returns the transformed partition, columnar-encoded against
// the stage's output schema (which the driver computed before shipping
// anything), or a task error.
type resultMsg struct {
	ID    uint64
	Epoch uint64
	Span  uint64
	Data  []byte
	// DecodeNs/ExecNs/EncodeNs break down where the executor spent this
	// task's time (partition decode, pipeline execution, result encode),
	// so driver-side traces show remote time without clock agreement.
	DecodeNs int64
	ExecNs   int64
	EncodeNs int64
	// Err is a task failure (e.g. a malformed rule); unless flagged
	// Retryable, the driver aborts the stage rather than re-running
	// elsewhere.
	Err string
	// Retryable marks Err as environmental (disk full during spill, a
	// truncated spill file): the work is sound, so the driver requeues
	// the task instead of failing the stage. Panicked marks Err as a
	// recovered panic (Err carries the stack); the driver retries but
	// quarantines the task as poisoned after repeated panics. MemUsed
	// and MemBudget snapshot the executor's memory governor after the
	// task, feeding driver-side admission control. All four are
	// gob-additive within protocol v3, like Span and the timing fields.
	Retryable bool
	Panicked  bool
	MemUsed   int64
	MemBudget int64
}

// Shuffle reduce kinds: what an executor computes over the partitions
// it owns once a shuffle is fully materialized.
const (
	// reduceCollect returns the partition's rows unchanged (a plain
	// repartition-and-fetch, what Driver.ShuffleMaterialize uses).
	reduceCollect uint8 = 1
	// reduceFinalAgg merges the partition's partial-aggregate rows into
	// finals (the reduce side of the shuffle aggregation plan).
	reduceFinalAgg uint8 = 2
	// reduceJoin hash-joins the partition of the primary (left) shuffle
	// against the same partition of a second (right) shuffle using the
	// engine's broadcast-join kernel, so per-partition results are
	// bitwise identical to what the broadcast plan would produce.
	reduceJoin uint8 = 3
)

// shuffleBeginMsg opens one shuffle on an executor: the endpoint map
// (partition p is owned by Endpoints[p%len(Endpoints)]; SelfIdx is this
// executor's slot in it), the fan-out, the hash key columns, and the
// schema the pushed partition payloads are columnar-encoded against.
// The driver sends it once per shuffle per connection — like stageMsg,
// a reconnected executor receives it again — and executors treat
// repeats as idempotent.
type shuffleBeginMsg struct {
	ID        uint64
	Endpoints []string
	SelfIdx   int
	Parts     int
	Keys      []string
	Schema    relation.Schema
	Compress  bool
	// PushTimeoutMs bounds one peer push round trip (chunk write + ack
	// read) on the map side. 0 means the executor default.
	PushTimeoutMs int64
}

type shuffleBeginAck struct {
	Err string
}

// shuffleMapMsg is one shuffle map task: decode the carried input
// partition, run the (already shipped) stage pipeline over it if Stage
// is nonzero, split the output by key hash, and push every bucket to
// the executor that owns the corresponding output partition. ID doubles
// as the push dedup source: re-executions of the same map task push
// under the same source id and the first complete run of a (partition,
// source) pair wins, so retries cannot duplicate rows.
type shuffleMapMsg struct {
	ID      uint64
	Epoch   uint64
	Shuffle uint64
	Stage   uint64
	Data    []byte
}

// shuffleMapAck reports one map task's outcome. PushedBytes counts
// peer-wire payload bytes (self-owned buckets never hit a socket and
// are excluded); Rows counts all routed rows.
type shuffleMapAck struct {
	ID          uint64
	Epoch       uint64
	Rows        int64
	PushedBytes int64
	Err         string
	Retryable   bool
	Panicked    bool
}

// shufflePushMsg streams one bucket of one map task to the partition
// owner as a sequence of colcodec frames — the exact run format the
// engine's spill files use, so the receiver can spill the frames to
// disk under memory pressure without re-encoding. Frames for one
// (Shuffle, Part, Source) arrive in Seq order on one connection; Last
// closes the run (its Rows is the total row count, cross-checked
// against the decoded frames before the run commits). A frameless Last
// commits an empty run, so every (partition, source) pair commits even
// when no rows hashed there — which is what lets the barrier treat
// "missing" as "map output lost", never "map output empty".
type shufflePushMsg struct {
	Shuffle uint64
	Part    int
	Source  uint64
	Seq     int
	Data    []byte
	Last    bool
	Rows    int64
}

type shufflePushAck struct {
	Err string
}

// shuffleBarrierMsg asks an executor whether every partition it owns
// has a committed run from every map source. The ack lists the sources
// still missing anywhere (the driver re-enqueues exactly those map
// tasks) plus committed row/byte totals for observability.
type shuffleBarrierMsg struct {
	Shuffle uint64
	Sources []uint64
}

type shuffleBarrierAck struct {
	Missing []uint64
	Rows    int64
	Bytes   int64
	Err     string
}

// shuffleReduceMsg runs one partition-local reduce on the partition's
// owner and returns the result rows in the ack, columnar-encoded.
// Sources re-states the complete map-source set so the reduce fails
// retryably — instead of silently computing over partial data — if the
// executor lost runs (e.g. restarted) after the barrier passed.
// Shuffle2/Sources2 name the right-side shuffle for reduceJoin;
// GroupBy/Aggs parameterize reduceFinalAgg; LeftKeys/RightKeys
// parameterize reduceJoin.
type shuffleReduceMsg struct {
	Shuffle   uint64
	Shuffle2  uint64
	Part      int
	Kind      uint8
	Sources   []uint64
	Sources2  []uint64
	GroupBy   []string
	Aggs      []engine.AggSpec
	LeftKeys  []string
	RightKeys []string
	Compress  bool
}

type shuffleReduceAck struct {
	Part      int
	Data      []byte
	Err       string
	Retryable bool
	Panicked  bool
}

// shuffleFreeMsg releases executor-side shuffle state (committed runs,
// memory grants, spill files). Best-effort: executors also free
// everything on shutdown.
type shuffleFreeMsg struct {
	Shuffles []uint64
}

type shuffleFreeAck struct{}

// countingRW wraps the raw connection and counts bytes in both
// directions, so the driver can report exact bytes-on-wire per stage.
// Each conn is driven by a single goroutine, so plain int64s suffice.
type countingRW struct {
	rw      io.ReadWriter
	read    int64
	written int64
}

func (c *countingRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.written += int64(n)
	return n, err
}

// conn wraps a net.Conn with gob codecs, byte counters and per-
// connection v3 shipping state: which stages and broadcast tables the
// remote end has already received on this connection. A reconnect
// builds a fresh conn, so the driver naturally re-ships the stage to a
// restarted executor.
type conn struct {
	raw   net.Conn
	count *countingRW
	enc   *gob.Encoder
	dec   *gob.Decoder

	sentStages map[uint64]bool
	sentTables map[uint64]bool
	// sentShuffles tracks which shuffles this connection has opened with
	// a shuffleBeginMsg, so reconnects naturally re-open them (protocol
	// v4; same lifetime discipline as sentStages).
	sentShuffles map[uint64]bool

	// busy is set while a task round trip is in flight on this
	// connection. A persistent driver's stage-end watcher only closes
	// busy connections (to unblock a stalled read); idle ones survive
	// into the pool with their sentStages/sentTables caches warm.
	busy atomic.Bool
	// harvestedW/R mark how much of the cumulative byte counters has
	// been folded into stage stats, so pooled connections reused across
	// stages attribute each stage only its own delta (see takeCounts).
	harvestedW, harvestedR int64
}

// takeCounts returns the bytes written/read since the previous call and
// commits the new high-water marks. Callers must own the connection
// (no concurrent I/O).
func (c *conn) takeCounts() (written, read int64) {
	written = c.count.written - c.harvestedW
	read = c.count.read - c.harvestedR
	c.harvestedW, c.harvestedR = c.count.written, c.count.read
	return written, read
}

func newConn(raw net.Conn) *conn {
	c := &countingRW{rw: raw}
	return &conn{
		raw:          raw,
		count:        c,
		enc:          gob.NewEncoder(c),
		dec:          gob.NewDecoder(c),
		sentStages:   map[uint64]bool{},
		sentTables:   map[uint64]bool{},
		sentShuffles: map[uint64]bool{},
	}
}

func (c *conn) close() { _ = c.raw.Close() }

// handshake runs the driver side of the version exchange.
func (c *conn) handshake(timeout time.Duration) error {
	if timeout > 0 {
		_ = c.raw.SetDeadline(time.Now().Add(timeout))
		defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(helloMsg{Magic: magic, Version: protocolVersion}); err != nil {
		return fmt.Errorf("cluster: handshake send: %w", err)
	}
	var ack helloAck
	if err := c.dec.Decode(&ack); err != nil {
		return fmt.Errorf("cluster: handshake recv: %w", err)
	}
	if !ack.OK {
		return fmt.Errorf("cluster: executor rejected handshake (version %d, ours %d)", ack.Version, protocolVersion)
	}
	return nil
}
