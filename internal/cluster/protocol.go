// Package cluster distributes engine stages across executor processes
// over TCP — the stand-in for the paper's Spark cluster (Sec. 5.1 runs
// on 70 servers; we run the same operator plans on N executors reachable
// over stdlib net, or in-process for tests).
//
// The wire protocol is deliberately minimal: a driver opens one or more
// connections per executor, performs a version handshake, then streams
// gob-encoded tasks. A task is a partition of rows plus the serializable
// operator pipeline (engine.OpDesc) to apply — rules ride along as
// expression text, so executors need no code shipping, mirroring how the
// paper submits one-time parameterization to its Big Data jobs.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// protocolVersion guards against driver/executor skew. Version 2 added
// the task epoch (speculative re-execution, duplicate-result discard).
const protocolVersion = 2

// magic identifies the protocol on connect.
const magic = "IVNT"

type helloMsg struct {
	Magic   string
	Version int
}

type helloAck struct {
	OK      bool
	Version int
	// Capacity advertises how many tasks the executor is willing to run
	// concurrently; informational.
	Capacity int
}

// taskMsg carries one partition and the stage pipeline to apply to it.
// Epoch distinguishes re-dispatches of the same task (retries and
// speculative copies); executors echo it so the driver can discard
// stale or desynchronized results.
type taskMsg struct {
	ID     uint64
	Epoch  uint64
	Schema relation.Schema
	Rows   []relation.Row
	Ops    []engine.OpDesc
}

// resultMsg returns the transformed partition (or a task error).
type resultMsg struct {
	ID     uint64
	Epoch  uint64
	Schema relation.Schema
	Rows   []relation.Row
	// Err is a non-retryable task failure (e.g. a malformed rule); the
	// driver aborts the stage rather than re-running elsewhere.
	Err string
}

// conn wraps a net.Conn with gob codecs and deadlines.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

func (c *conn) close() { _ = c.raw.Close() }

// handshake runs the driver side of the version exchange.
func (c *conn) handshake(timeout time.Duration) error {
	if timeout > 0 {
		_ = c.raw.SetDeadline(time.Now().Add(timeout))
		defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(helloMsg{Magic: magic, Version: protocolVersion}); err != nil {
		return fmt.Errorf("cluster: handshake send: %w", err)
	}
	var ack helloAck
	if err := c.dec.Decode(&ack); err != nil {
		return fmt.Errorf("cluster: handshake recv: %w", err)
	}
	if !ack.OK {
		return fmt.Errorf("cluster: executor rejected handshake (version %d, ours %d)", ack.Version, protocolVersion)
	}
	return nil
}
