// Package cluster distributes engine stages across executor processes
// over TCP — the stand-in for the paper's Spark cluster (Sec. 5.1 runs
// on 70 servers; we run the same operator plans on N executors reachable
// over stdlib net, or in-process for tests).
//
// The wire protocol (v3) ships each stage once per connection: a
// stageMsg carries the operator pipeline, the input schema, and any
// broadcast-join tables (keyed by content hash, columnar-encoded), and
// executors cache the compiled pipeline by stage fingerprint. Tasks
// then shrink to {id, epoch, stage fingerprint, columnar partition} —
// bytes on the wire scale with partition data, not with stage size, the
// same economics Spark gets from broadcast variables and per-stage
// closures. Rules still ride along as expression text, so executors
// need no code shipping, mirroring how the paper submits one-time
// parameterization to its Big Data jobs.
package cluster

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// protocolVersion guards against driver/executor skew. Version 2 added
// the task epoch (speculative re-execution, duplicate-result discard);
// version 3 added stage-once shipping (stageMsg, content-hashed
// broadcast tables, executor-side pipeline caching) and the columnar
// partition codec (internal/colcodec), making v2 and v3 mutually
// unintelligible past the handshake — hence the version bump.
const protocolVersion = 3

// magic identifies the protocol on connect.
const magic = "IVNT"

type helloMsg struct {
	Magic   string
	Version int
}

type helloAck struct {
	OK      bool
	Version int
	// Capacity advertises how many tasks the executor is willing to run
	// concurrently; informational.
	Capacity int
}

// Frame kinds. Every driver→executor message after the handshake is a
// frameHdr followed by the payload it announces, so the executor knows
// whether to expect a stage shipment or a task.
const (
	frameStage uint8 = 1
	frameTask  uint8 = 2
)

type frameHdr struct {
	Kind uint8
}

// tableMsg is one broadcast-join table, shipped at most once per
// connection and cached by content hash on the executor. Rows are
// columnar-encoded against Schema.
type tableMsg struct {
	Hash   uint64
	Schema relation.Schema
	Data   []byte
}

// stageMsg ships one stage: the operator pipeline (broadcast tables
// stripped and replaced by JoinSpec.TableHash references), the input
// schema, and whichever referenced tables this connection has not seen
// yet. The fingerprint is the content hash of the complete stage
// (schema + ops + table contents), so executor caches can never serve
// a stale entry: a different stage is a different fingerprint.
type stageMsg struct {
	Fingerprint uint64
	Schema      relation.Schema
	Ops         []engine.OpDesc
	Tables      []tableMsg
}

// taskMsg carries one partition, columnar-encoded against the stage's
// input schema, plus the fingerprint of the (already shipped) stage to
// apply. Epoch distinguishes re-dispatches of the same task (retries
// and speculative copies); executors echo it so the driver can discard
// stale or desynchronized results.
//
// Span is the driver-side trace span ID of this task launch, echoed in
// the result. It and the result's timing fields are additive within
// protocol v3: gob zeroes fields a peer does not send and ignores
// fields it does not know, so v3 binaries with and without them
// interoperate — no version bump.
type taskMsg struct {
	ID    uint64
	Epoch uint64
	Stage uint64
	Span  uint64
	Data  []byte
}

// resultMsg returns the transformed partition, columnar-encoded against
// the stage's output schema (which the driver computed before shipping
// anything), or a task error.
type resultMsg struct {
	ID    uint64
	Epoch uint64
	Span  uint64
	Data  []byte
	// DecodeNs/ExecNs/EncodeNs break down where the executor spent this
	// task's time (partition decode, pipeline execution, result encode),
	// so driver-side traces show remote time without clock agreement.
	DecodeNs int64
	ExecNs   int64
	EncodeNs int64
	// Err is a task failure (e.g. a malformed rule); unless flagged
	// Retryable, the driver aborts the stage rather than re-running
	// elsewhere.
	Err string
	// Retryable marks Err as environmental (disk full during spill, a
	// truncated spill file): the work is sound, so the driver requeues
	// the task instead of failing the stage. Panicked marks Err as a
	// recovered panic (Err carries the stack); the driver retries but
	// quarantines the task as poisoned after repeated panics. MemUsed
	// and MemBudget snapshot the executor's memory governor after the
	// task, feeding driver-side admission control. All four are
	// gob-additive within protocol v3, like Span and the timing fields.
	Retryable bool
	Panicked  bool
	MemUsed   int64
	MemBudget int64
}

// countingRW wraps the raw connection and counts bytes in both
// directions, so the driver can report exact bytes-on-wire per stage.
// Each conn is driven by a single goroutine, so plain int64s suffice.
type countingRW struct {
	rw      io.ReadWriter
	read    int64
	written int64
}

func (c *countingRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.written += int64(n)
	return n, err
}

// conn wraps a net.Conn with gob codecs, byte counters and per-
// connection v3 shipping state: which stages and broadcast tables the
// remote end has already received on this connection. A reconnect
// builds a fresh conn, so the driver naturally re-ships the stage to a
// restarted executor.
type conn struct {
	raw   net.Conn
	count *countingRW
	enc   *gob.Encoder
	dec   *gob.Decoder

	sentStages map[uint64]bool
	sentTables map[uint64]bool
}

func newConn(raw net.Conn) *conn {
	c := &countingRW{rw: raw}
	return &conn{
		raw:        raw,
		count:      c,
		enc:        gob.NewEncoder(c),
		dec:        gob.NewDecoder(c),
		sentStages: map[uint64]bool{},
		sentTables: map[uint64]bool{},
	}
}

func (c *conn) close() { _ = c.raw.Close() }

// handshake runs the driver side of the version exchange.
func (c *conn) handshake(timeout time.Duration) error {
	if timeout > 0 {
		_ = c.raw.SetDeadline(time.Now().Add(timeout))
		defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(helloMsg{Magic: magic, Version: protocolVersion}); err != nil {
		return fmt.Errorf("cluster: handshake send: %w", err)
	}
	var ack helloAck
	if err := c.dec.Decode(&ack); err != nil {
		return fmt.Errorf("cluster: handshake recv: %w", err)
	}
	if !ack.OK {
		return fmt.Errorf("cluster: executor rejected handshake (version %d, ours %d)", ack.Version, protocolVersion)
	}
	return nil
}
