package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// keyedRel builds a relation with nullable string/int keys and an
// exactly-representable float payload (sixteenths), so aggregation
// plans compare bitwise.
func keyedRel(n, parts int) *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindString},
		relation.Column{Name: "g", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
	rows := make([]relation.Row, n)
	for i := range rows {
		k := relation.Str(fmt.Sprintf("key%02d", i%23))
		if i%13 == 0 {
			k = relation.Null()
		}
		rows[i] = relation.Row{k, relation.Int(int64(i % 7)), relation.Float(float64(i%32) / 16)}
	}
	return relation.FromRows(s, rows).Repartition(parts)
}

// labelsRel is a small dimension table keyed on rk, with one null key.
func labelsRel(n, parts int) *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "rk", Kind: relation.KindString},
		relation.Column{Name: "label", Kind: relation.KindString},
	)
	rows := make([]relation.Row, 0, n+1)
	for i := 0; i < n; i++ {
		rows = append(rows, relation.Row{
			relation.Str(fmt.Sprintf("key%02d", i)), relation.Str(fmt.Sprintf("label%d", i)),
		})
	}
	rows = append(rows, relation.Row{relation.Null(), relation.Str("nolabel")})
	return relation.FromRows(s, rows).Repartition(parts)
}

func cellBitsCl(v relation.Value) string {
	if v.K == relation.KindFloat {
		return fmt.Sprintf("f%x", math.Float64bits(v.F))
	}
	return fmt.Sprintf("%d:%s", v.K, v.AsString())
}

func rowBitsCl(r relation.Row) string {
	out := ""
	for _, v := range r {
		out += cellBitsCl(v) + "|"
	}
	return out
}

// mustSamePartitioned fails unless the relations are partitionwise
// bitwise identical — the shuffle determinism contract.
func mustSamePartitioned(t *testing.T, what string, want, got *relation.Relation) {
	t.Helper()
	if !want.Schema.Equal(got.Schema) {
		t.Fatalf("%s: schema mismatch:\n want %s\n got  %s", what, want.Schema, got.Schema)
	}
	if len(want.Partitions) != len(got.Partitions) {
		t.Fatalf("%s: partitions %d vs %d", what, len(want.Partitions), len(got.Partitions))
	}
	for pi := range want.Partitions {
		wp, gp := want.Partitions[pi], got.Partitions[pi]
		if len(wp) != len(gp) {
			t.Fatalf("%s: partition %d rows %d vs %d", what, pi, len(wp), len(gp))
		}
		for ri := range wp {
			if rowBitsCl(wp[ri]) != rowBitsCl(gp[ri]) {
				t.Fatalf("%s: partition %d row %d: want %v got %v", what, pi, ri, wp[ri], gp[ri])
			}
		}
	}
}

func canonRowsCl(rel *relation.Relation) []string {
	var out []string
	for _, p := range rel.Partitions {
		for _, r := range p {
			out = append(out, rowBitsCl(r))
		}
	}
	sort.Strings(out)
	return out
}

// TestClusterShuffleMaterializeMatchesPartitionByKey: the tentpole
// determinism contract over TCP — for any executor count and fan-out,
// ShuffleMaterialize equals map-stage-then-PartitionByKey bitwise,
// partition by partition. Null keys ride along in the fixture.
func TestClusterShuffleMaterializeMatchesPartitionByKey(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rel := keyedRel(700, 8)
	ops := []engine.OpDesc{engine.Filter("g != 1")}
	mapped, _, err := engine.NewLocal(2).RunStage(ctx, rel, ops)
	if err != nil {
		t.Fatal(err)
	}
	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond}
	for _, parts := range []int{1, 2, 7} {
		want, err := mapped.PartitionByKey(parts, "k")
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := drv.ShuffleMaterialize(ctx, rel, ops, []string{"k"}, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		mustSamePartitioned(t, fmt.Sprintf("parts=%d", parts), want, got)
		if st.ShufflePartitions != parts {
			t.Fatalf("parts=%d: stats.ShufflePartitions = %d", parts, st.ShufflePartitions)
		}
		if parts > 1 && st.ShuffleBytesPushed == 0 {
			t.Fatalf("parts=%d: no shuffle bytes pushed, stats = %+v", parts, st)
		}
	}
}

// TestClusterShuffleJoinMatchesBroadcast: the shuffle-hash join plan
// over TCP equals the in-process shuffle join bitwise per partition,
// and the broadcast plan as a row multiset — with null join keys on
// both sides (the Repartition/hasher null-handling regression).
func TestClusterShuffleJoinMatchesBroadcast(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	left := keyedRel(600, 6)
	right := labelsRel(23, 2)
	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond}
	local := engine.NewLocal(2)

	bcast, _, err := local.RunStage(ctx, left, []engine.OpDesc{
		engine.BroadcastJoin(right, []string{"k"}, []string{"rk"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCanon := canonRowsCl(bcast)
	if len(wantCanon) == 0 {
		t.Fatal("broadcast join empty")
	}
	for _, parts := range []int{2, 5} {
		want, _, err := local.ShuffleJoin(ctx, left, right, []string{"k"}, []string{"rk"}, parts)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := drv.ShuffleJoin(ctx, left, right, []string{"k"}, []string{"rk"}, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		mustSamePartitioned(t, fmt.Sprintf("join parts=%d", parts), want, got)
		gotCanon := canonRowsCl(got)
		if fmt.Sprint(gotCanon) != fmt.Sprint(wantCanon) {
			t.Fatalf("parts=%d: shuffle join disagrees with broadcast (%d vs %d rows)",
				parts, len(gotCanon), len(wantCanon))
		}
		if st.ShufflePartitions == 0 {
			t.Fatalf("parts=%d: stats carry no shuffle partitions: %+v", parts, st)
		}
	}
}

// TestClusterShuffleAggregateMatchesDistributed: the shuffle
// aggregation plan over TCP is bitwise identical to the
// PartialAgg→driver→MergePartials funnel it replaces.
func TestClusterShuffleAggregateMatchesDistributed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rel := keyedRel(900, 9)
	groupBy := []string{"k", "g"}
	aggs := []engine.AggSpec{
		{Fn: engine.AggCount, As: "n"},
		{Fn: engine.AggSum, Col: "v", As: "sum"},
		{Fn: engine.AggMin, Col: "v", As: "min"},
		{Fn: engine.AggMax, Col: "v", As: "max"},
	}
	want, err := engine.AggregateDistributed(ctx, engine.NewLocal(2), rel, groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond}
	for _, parts := range []int{1, 2, 7} {
		got, _, err := drv.ShuffleAggregate(ctx, rel, groupBy, aggs, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		mustSamePartitioned(t, fmt.Sprintf("agg parts=%d", parts), want, got)
	}
}

// TestClusterShuffleCompressed: the same contracts hold with frame
// compression on (push payloads and reduce results flate-compressed).
func TestClusterShuffleCompressed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rel := keyedRel(400, 5)
	mapped, _, err := engine.NewLocal(2).RunStage(ctx, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mapped.PartitionByKey(4, "k")
	if err != nil {
		t.Fatal(err)
	}
	drv := &Driver{Addrs: addrs, Compress: true, ReconnectBase: 10 * time.Millisecond}
	got, _, err := drv.ShuffleMaterialize(ctx, rel, nil, []string{"k"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	mustSamePartitioned(t, "compressed", want, got)
}

// TestClusterShuffleSpillsUnderBudget: a governed executor that cannot
// hold its received partitions resident must spill them to disk and
// still materialize bitwise-correct output (grants denied → frames to
// disk → decode on reduce).
func TestClusterShuffleSpillsUnderBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(8 << 10)
	defer g.SetBudget(old)

	rel := keyedRel(4000, 8)
	mapped, _, err := engine.NewLocal(2).RunStage(ctx, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mapped.PartitionByKey(6, "k")
	if err != nil {
		t.Fatal(err)
	}
	spillsBefore := mShuffleSpills.Value()
	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond}
	got, _, err := drv.ShuffleMaterialize(ctx, rel, nil, []string{"k"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBudget(old)
	mustSamePartitioned(t, "spilled", want, got)
	if mShuffleSpills.Value() == spillsBefore {
		t.Fatal("budgeted executors never spilled a shuffle run")
	}
}

// TestClusterShuffleJoinExceedsBroadcastBudget is the acceptance
// criterion: a join whose build side exceeds a single executor's
// memory budget completes via the shuffle plan — each executor only
// holds its own partitions (spilling the rest), where the broadcast
// plan must pin executors × full build table.
func TestClusterShuffleJoinExceedsBroadcastBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	left := keyedRel(2000, 6)
	// A build side far beyond the 64 KiB budget set below.
	bigRight := func() *relation.Relation {
		s := relation.NewSchema(
			relation.Column{Name: "rk", Kind: relation.KindString},
			relation.Column{Name: "pad", Kind: relation.KindString},
		)
		pad := make([]byte, 256)
		for i := range pad {
			pad[i] = byte('a' + i%26)
		}
		rows := make([]relation.Row, 4000)
		for i := range rows {
			rows[i] = relation.Row{
				relation.Str(fmt.Sprintf("key%02d", i%23)),
				relation.Str(fmt.Sprintf("%s%d", pad, i)),
			}
		}
		return relation.FromRows(s, rows).Repartition(4)
	}()

	// Reference result, computed unbudgeted.
	local := engine.NewLocal(2)
	want, _, err := local.ShuffleJoin(ctx, left, bigRight, []string{"k"}, []string{"rk"}, 4)
	if err != nil {
		t.Fatal(err)
	}

	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(64 << 10)
	defer g.SetBudget(old)

	var fp int64
	for _, p := range bigRight.Partitions {
		fp += engine.RowsFootprint(p)
	}
	if fp <= 64<<10 {
		t.Fatalf("fixture too small to exceed the budget: %d bytes", fp)
	}

	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond}
	got, _, err := drv.ShuffleJoin(ctx, left, bigRight, []string{"k"}, []string{"rk"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBudget(old)
	mustSamePartitioned(t, "budgeted join", want, got)
}

// TestShuffleBeginValidation: malformed plans are rejected at begin
// time with deterministic errors, driver-side before any bytes move
// where possible.
func TestShuffleBeginValidation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	drv := &Driver{Addrs: addrs}
	rel := keyedRel(50, 2)
	if _, _, err := drv.ShuffleMaterialize(ctx, rel, nil, nil, 4); err == nil {
		t.Fatal("no keys must fail")
	}
	if _, _, err := drv.ShuffleMaterialize(ctx, rel, nil, []string{"nope"}, 4); err == nil {
		t.Fatal("unknown key must fail")
	}
	if _, _, err := drv.ShuffleJoin(ctx, rel, labelsRel(3, 1), []string{"k", "g"}, []string{"rk"}, 2); err == nil {
		t.Fatal("key arity mismatch must fail")
	}
	// Default fan-out on a live cluster.
	if p := drv.DefaultShuffleParts(); p != 2 {
		t.Fatalf("DefaultShuffleParts = %d, want 2", p)
	}
	got, _, err := drv.ShuffleMaterialize(ctx, rel, nil, []string{"k"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Partitions) != 2 {
		t.Fatalf("default fan-out produced %d partitions", len(got.Partitions))
	}
}

// TestClusterDistributedJoinPicksShuffle: the planner on a cluster
// executor routes a large build side through the shuffle plan and a
// small one through broadcast, with identical row multisets.
func TestClusterDistributedJoinPicksShuffle(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	left := keyedRel(500, 4)
	right := labelsRel(23, 2)
	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond}

	outB, planB, _, err := engine.DistributedJoin(ctx, drv, left, right, []string{"k"}, []string{"rk"}, engine.PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if planB != engine.PlanBroadcast {
		t.Fatalf("small build chose %v", planB)
	}
	outS, planS, _, err := engine.DistributedJoin(ctx, drv, left, right, []string{"k"}, []string{"rk"},
		engine.PlanConfig{BroadcastThreshold: 1, Parts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if planS != engine.PlanShuffle {
		t.Fatalf("threshold=1 chose %v", planS)
	}
	if fmt.Sprint(canonRowsCl(outB)) != fmt.Sprint(canonRowsCl(outS)) {
		t.Fatal("broadcast and shuffle plans disagree on a cluster executor")
	}
}
