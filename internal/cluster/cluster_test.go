package cluster

import (
	"compress/flate"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

func traceRel(n, parts int) *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "l", Kind: relation.KindBytes},
	)
	rows := make([]relation.Row, n)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.1),
			relation.Int(int64(3 + i%2)),
			relation.Bytes([]byte{byte(i % 5), byte(i % 3)}),
		}
	}
	return relation.FromRows(s, rows).Repartition(parts)
}

func stageOps() []engine.OpDesc {
	return []engine.OpDesc{
		engine.Filter("mid == 3"),
		engine.AddColumn("v", relation.KindFloat, "0.5 * byteat(l, 0)"),
	}
}

// connState is the minimal executor-side v3 connection state used by
// scripted/adversarial test executors speaking the wire protocol
// directly.
type connState struct {
	stages map[uint64]*engine.StagePipeline
	tables map[uint64][]relation.Row
}

func newConnState() *connState {
	return &connState{stages: map[uint64]*engine.StagePipeline{}, tables: map[uint64][]relation.Row{}}
}

// recvTask consumes frames — registering any stage shipments — until a
// task frame arrives, and returns it with its compiled pipeline.
func (cs *connState) recvTask(c *conn) (*taskMsg, *engine.StagePipeline, error) {
	for {
		var hdr frameHdr
		if err := c.dec.Decode(&hdr); err != nil {
			return nil, nil, err
		}
		switch hdr.Kind {
		case frameStage:
			var st stageMsg
			if err := c.dec.Decode(&st); err != nil {
				return nil, nil, err
			}
			pipe, err := (&ExecutorServer{}).registerStage(&st, cs.tables)
			if err != nil {
				return nil, nil, err
			}
			cs.stages[st.Fingerprint] = pipe
		case frameTask:
			var task taskMsg
			if err := c.dec.Decode(&task); err != nil {
				return nil, nil, err
			}
			return &task, cs.stages[task.Stage], nil
		default:
			return nil, nil, fmt.Errorf("unknown frame kind %d", hdr.Kind)
		}
	}
}

func TestClusterMatchesLocal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rel := traceRel(500, 8)
	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 2}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := engine.NewLocal(2).RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("cluster rows = %d, local = %d", got.NumRows(), want.NumRows())
	}
	gr, wr := got.Rows(), want.Rows()
	for i := range gr {
		if !gr[i].Equal(wr[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, gr[i], wr[i])
		}
	}
	if st.Tasks != 8 || st.Partitions != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if !got.Schema.Has("v") {
		t.Fatalf("schema missing computed column: %s", got.Schema)
	}
}

func TestClusterBroadcastJoin(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	small := relation.FromRows(
		relation.NewSchema(
			relation.Column{Name: "rmid", Kind: relation.KindInt},
			relation.Column{Name: "sid", Kind: relation.KindString},
			relation.Column{Name: "rule", Kind: relation.KindString},
		),
		[]relation.Row{
			{relation.Int(3), relation.Str("wpos"), relation.Str("byteat(l, 0)")},
			{relation.Int(4), relation.Str("wvel"), relation.Str("byteat(l, 1) * 2")},
		},
	)
	ops := []engine.OpDesc{
		engine.BroadcastJoin(small, []string{"mid"}, []string{"rmid"}),
		engine.EvalRule("v", relation.KindFloat, "rule"),
	}
	rel := traceRel(100, 4)
	drv := &Driver{Addrs: addrs}
	got, _, err := drv.RunStage(ctx, rel, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 100 {
		t.Fatalf("rows = %d, want 100", got.NumRows())
	}
	sidIdx := got.Schema.MustIndex("sid")
	vIdx := got.Schema.MustIndex("v")
	lIdx := got.Schema.MustIndex("l")
	for _, r := range got.Rows() {
		var want int64
		if r[sidIdx].AsString() == "wpos" {
			want = int64(r[lIdx].B[0])
		} else {
			want = int64(r[lIdx].B[1]) * 2
		}
		if r[vIdx].AsInt() != want {
			t.Fatalf("interpreted %v, want %d (%v)", r[vIdx], want, r)
		}
	}
}

func TestClusterTaskErrorAborts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// A per-row rule that fails to compile is a deterministic task
	// error: no retry, stage aborts.
	small := relation.FromRows(
		relation.NewSchema(
			relation.Column{Name: "rmid", Kind: relation.KindInt},
			relation.Column{Name: "rule", Kind: relation.KindString},
		),
		[]relation.Row{{relation.Int(3), relation.Str("byteat(")}},
	)
	ops := []engine.OpDesc{
		engine.BroadcastJoin(small, []string{"mid"}, []string{"rmid"}),
		engine.EvalRule("v", relation.KindFloat, "rule"),
	}
	drv := &Driver{Addrs: addrs}
	if _, _, err := drv.RunStage(ctx, traceRel(50, 4), ops); err == nil {
		t.Fatal("expected task error to abort stage")
	}
}

func TestClusterBadPlanRejectedOnDriver(t *testing.T) {
	drv := &Driver{Addrs: []string{"127.0.0.1:1"}} // never dialed
	_, _, err := drv.RunStage(context.Background(), traceRel(10, 1),
		[]engine.OpDesc{engine.Filter("nosuchcol > 0")})
	if err == nil {
		t.Fatal("bad plan must be rejected before dialing")
	}
}

func TestClusterNoExecutors(t *testing.T) {
	drv := &Driver{}
	if _, _, err := drv.RunStage(context.Background(), traceRel(10, 1), stageOps()); err == nil {
		t.Fatal("driver without addresses must fail")
	}
}

func TestClusterAllExecutorsUnreachable(t *testing.T) {
	drv := &Driver{
		Addrs:       []string{"127.0.0.1:1"},
		DialTimeout: 200 * time.Millisecond,
		// Fast backoff so the slots burn through their failure budget
		// quickly; correctness is the same at any speed.
		ReconnectBase: time.Millisecond,
		ReconnectMax:  4 * time.Millisecond,
	}
	_, _, err := drv.RunStage(context.Background(), traceRel(10, 2), stageOps())
	if err == nil {
		t.Fatal("unreachable executors must fail the stage")
	}
	if !strings.Contains(err.Error(), "undeliverable") {
		t.Fatalf("err = %v, want undeliverable", err)
	}
}

func TestClusterSurvivesOneDeadExecutor(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// One live executor, one address that refuses connections.
	drv := &Driver{Addrs: []string{addrs[0], "127.0.0.1:1"}, DialTimeout: 200 * time.Millisecond}
	got, _, err := drv.RunStage(ctx, traceRel(200, 6), stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 100 {
		t.Fatalf("rows = %d, want 100", got.NumRows())
	}
}

func TestClusterRetryOnConnectionDrop(t *testing.T) {
	// An adversarial executor that accepts, handshakes, then drops the
	// first task connection mid-stream; a healthy executor must pick up
	// the requeued partition.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	evil, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	var once sync.Once
	go func() {
		for {
			raw, err := evil.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				c := newConn(raw)
				var hello helloMsg
				if c.dec.Decode(&hello) != nil {
					return
				}
				_ = c.enc.Encode(helloAck{OK: true, Version: protocolVersion, Capacity: 1})
				cs := newConnState()
				if _, _, err := cs.recvTask(c); err != nil {
					return
				}
				once.Do(func() { raw.Close() }) // drop first task
				// Subsequent connections: politely run nothing and hang
				// up too (driver should stop using us).
				raw.Close()
			}(raw)
		}
	}()

	drv := &Driver{Addrs: []string{addrs[0], evil.Addr().String()}, MaxRetries: 3}
	got, st, err := drv.RunStage(ctx, traceRel(200, 4), stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 100 {
		t.Fatalf("rows = %d, want 100", got.NumRows())
	}
	if st.Retries == 0 {
		t.Fatal("expected at least one retry to be recorded")
	}
}

func TestExecutorRejectsBadMagic(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	raw, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := newConn(raw)
	if err := c.enc.Encode(helloMsg{Magic: "BAD!", Version: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := c.dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("executor accepted bad magic")
	}
}

func TestDriverName(t *testing.T) {
	drv := &Driver{Addrs: []string{"a", "b"}, SlotsPerExecutor: 3}
	if drv.Name() != "cluster[2 executors x 3 slots]" {
		t.Fatalf("Name = %q", drv.Name())
	}
}

func TestClusterConcurrentStages(t *testing.T) {
	// One driver, many concurrent RunStage calls — the multi-domain
	// situation where several analyses share the cluster.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 2}
	rel := traceRel(300, 5)
	const stages = 8
	errs := make(chan error, stages)
	for i := 0; i < stages; i++ {
		go func() {
			out, _, err := drv.RunStage(ctx, rel, stageOps())
			if err == nil && out.NumRows() != 150 {
				err = fmt.Errorf("rows = %d", out.NumRows())
			}
			errs <- err
		}()
	}
	for i := 0; i < stages; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterLargePartitions(t *testing.T) {
	// Multi-megabyte partitions must stream through gob without
	// corruption.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	s := relation.NewSchema(
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "l", Kind: relation.KindBytes},
	)
	rows := make([]relation.Row, 20000)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := range rows {
		rows[i] = relation.Row{relation.Int(int64(i % 2)), relation.Bytes(payload)}
	}
	rel := relation.FromRows(s, rows).Repartition(4)
	drv := &Driver{Addrs: addrs}
	out, _, err := drv.RunStage(ctx, rel, []engine.OpDesc{engine.Filter("mid == 0")})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 10000 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	lIdx := out.Schema.MustIndex("l")
	got := out.Rows()[9999][lIdx].B
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestClusterEmptyRelation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	drv := &Driver{Addrs: addrs}
	empty := traceRel(0, 1)
	out, _, err := drv.RunStage(ctx, empty, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("rows = %d", out.NumRows())
	}
}

func TestClusterContextCancellation(t *testing.T) {
	addrs, stop, err := StartLocalCluster(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled
	drv := &Driver{Addrs: addrs}
	if _, _, err := drv.RunStage(ctx, traceRel(100, 4), stageOps()); err == nil {
		t.Fatal("cancelled context must fail the stage")
	}
}

func TestDistributedAggregationOverTCP(t *testing.T) {
	// The reduceByKey analogue: map-side partial aggregation runs on
	// remote executors; the driver merges. Must match local Aggregate.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rel := traceRel(400, 8)
	aggs := []engine.AggSpec{
		{Fn: engine.AggCount, As: "n"},
		{Fn: engine.AggMean, Col: "t", As: "meanT"},
		{Fn: engine.AggMax, Col: "t", As: "maxT"},
	}
	want, err := engine.Aggregate(rel, []string{"mid"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.AggregateDistributed(ctx, &Driver{Addrs: addrs}, rel, []string{"mid"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("groups %d vs %d", got.NumRows(), want.NumRows())
	}
	gr, wr := got.Rows(), want.Rows()
	for i := range gr {
		for j := range gr[i] {
			// Partial sums combine in a different order than the local
			// single pass; float results agree only up to rounding.
			a, b := gr[i][j].AsFloat(), wr[i][j].AsFloat()
			if diff := a - b; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("group %d col %d: %v vs %v", i, j, gr[i][j], wr[i][j])
			}
		}
	}
}

func TestExecutorAddrAndTasksRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &ExecutorServer{Capacity: 2}
	if srv.Addr() != nil {
		t.Fatal("Addr before Serve must be nil")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, l)
	}()
	drv := &Driver{Addrs: []string{l.Addr().String()}}
	if _, _, err := drv.RunStage(ctx, traceRel(50, 3), stageOps()); err != nil {
		t.Fatal(err)
	}
	if srv.Addr() == nil {
		t.Fatal("Addr after Serve must be set")
	}
	if srv.TasksRun() != 3 {
		t.Fatalf("tasks run = %d, want 3", srv.TasksRun())
	}
	cancel()
	<-done
}

// TestClusterMatchesLocalCompressed is the byte-identical equivalence
// check with the DEFLATE flag on: compression must be invisible to
// results.
func TestClusterMatchesLocalCompressed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	small := relation.FromRows(
		relation.NewSchema(
			relation.Column{Name: "rmid", Kind: relation.KindInt},
			relation.Column{Name: "sid", Kind: relation.KindString},
			relation.Column{Name: "rule", Kind: relation.KindString},
		),
		[]relation.Row{
			{relation.Int(3), relation.Str("wpos"), relation.Str("byteat(l, 0)")},
			{relation.Int(4), relation.Str("wvel"), relation.Str("byteat(l, 1) * 2")},
		},
	)
	ops := []engine.OpDesc{
		engine.BroadcastJoin(small, []string{"mid"}, []string{"rmid"}),
		engine.EvalRule("v", relation.KindFloat, "rule"),
	}
	rel := traceRel(600, 7)
	want, _, err := engine.NewLocal(2).RunStage(ctx, rel, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 is flate.BestSpeed by default; BestCompression must be
	// equally invisible to results.
	for _, cfg := range []struct {
		compress bool
		level    int
	}{{false, 0}, {true, 0}, {true, flate.BestCompression}} {
		drv := &Driver{Addrs: addrs, SlotsPerExecutor: 2, Compress: cfg.compress, CompressLevel: cfg.level}
		got, st, err := drv.RunStage(ctx, rel, ops)
		if err != nil {
			t.Fatalf("compress=%v level=%d: %v", cfg.compress, cfg.level, err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("compress=%v level=%d: rows = %d, want %d", cfg.compress, cfg.level, got.NumRows(), want.NumRows())
		}
		gr, wr := got.Rows(), want.Rows()
		for i := range gr {
			if !gr[i].Equal(wr[i]) {
				t.Fatalf("compress=%v level=%d: row %d differs: %v vs %v", cfg.compress, cfg.level, i, gr[i], wr[i])
			}
		}
		if st.BytesSent == 0 || st.BytesRecv == 0 {
			t.Fatalf("compress=%v level=%d: wire byte counters not populated: %+v", cfg.compress, cfg.level, st)
		}
	}
}

// TestStageShippedOncePerConnection: with one executor and one slot the
// stage must cross the wire exactly once, however many tasks follow.
func TestStageShippedOncePerConnection(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 1}
	_, st, err := drv.RunStage(ctx, traceRel(400, 8), stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 8 {
		t.Fatalf("Tasks = %d, want 8", st.Tasks)
	}
	if st.StagesShipped != 1 {
		t.Fatalf("StagesShipped = %d, want exactly 1 (stage must not ride along with every task)", st.StagesShipped)
	}
}

// TestV3DriverRejectedByV2Executor: a legacy executor that only accepts
// protocol version 2 must refuse the v3 driver's handshake, and the
// driver must fail the stage rather than talk past it.
func TestV3DriverRejectedByV2Executor(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				c := newConn(raw)
				var hello helloMsg
				if c.dec.Decode(&hello) != nil {
					return
				}
				// A v2 executor's exact acceptance check.
				ok := hello.Magic == magic && hello.Version == 2
				_ = c.enc.Encode(helloAck{OK: ok, Version: 2, Capacity: 1})
			}(raw)
		}
	}()
	drv := &Driver{Addrs: []string{l.Addr().String()}, DialTimeout: time.Second}
	_, _, err = drv.RunStage(context.Background(), traceRel(10, 2), stageOps())
	if err == nil {
		t.Fatal("v2 executor must reject the v3 driver and fail the stage")
	}
	if !strings.Contains(err.Error(), "undeliverable") {
		t.Fatalf("err = %v, want undeliverable (no usable executor)", err)
	}
}

func TestDriverRejectsWrongVersionExecutor(t *testing.T) {
	// An "executor" speaking a different protocol version: the driver's
	// handshake must fail, and with no other executors the stage fails.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				c := newConn(raw)
				var hello helloMsg
				if c.dec.Decode(&hello) != nil {
					return
				}
				_ = c.enc.Encode(helloAck{OK: false, Version: 999})
			}(raw)
		}
	}()
	drv := &Driver{Addrs: []string{l.Addr().String()}, DialTimeout: time.Second}
	if _, _, err := drv.RunStage(context.Background(), traceRel(10, 2), stageOps()); err == nil {
		t.Fatal("version mismatch must fail the stage")
	}
}
