package cluster

import (
	"context"
	"fmt"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// benchStage is the wire benchmark's broadcast-join stage at a small
// fixed size, reused across cluster benchmark variants.
func benchStage() (*relation.Relation, []engine.OpDesc) {
	const nRows, nParts, nTable = 8000, 8, 128
	streamSchema := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "x", Kind: relation.KindInt},
	)
	rows := make([]relation.Row, nRows)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.01),
			relation.Int(int64(i % nTable)),
			relation.Int(int64(i % 4096)),
		}
	}
	rel := relation.FromRows(streamSchema, rows).Repartition(nParts)
	tableSchema := relation.NewSchema(
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
	trows := make([]relation.Row, nTable)
	for i := range trows {
		trows[i] = relation.Row{
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("x * %d + %d", i%13+1, i%29)),
		}
	}
	small := relation.FromRows(tableSchema, trows)
	return rel, []engine.OpDesc{
		engine.BroadcastJoin(small, []string{"mid"}, []string{"mid"}),
		engine.EvalRule("v", relation.KindInt, "rule"),
		engine.Project("t", "mid", "v"),
	}
}

// BenchmarkClusterStage round-trips the broadcast-join stage over a
// loopback cluster with the v3 protocol. Bytes on the wire per task are
// reported as a metric; stage shipping is amortized across iterations
// (executor pipelines are cached per connection).
func benchmarkClusterStage(b *testing.B, compress bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 2, Compress: compress}
	rel, ops := benchStage()
	var bytesOnWire int64
	var tasks int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := drv.RunStage(ctx, rel, ops)
		if err != nil {
			b.Fatal(err)
		}
		bytesOnWire += st.BytesSent + st.BytesRecv
		tasks += st.Tasks
	}
	b.StopTimer()
	if tasks > 0 {
		b.ReportMetric(float64(bytesOnWire)/float64(tasks), "wire-B/task")
	}
}

func BenchmarkClusterStage(b *testing.B)           { benchmarkClusterStage(b, false) }
func BenchmarkClusterStageCompressed(b *testing.B) { benchmarkClusterStage(b, true) }
