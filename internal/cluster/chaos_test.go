package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ivnt/internal/cluster/faultproxy"
	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// ackLen is the exact gob wire length of the executor's handshake ack,
// so chaos plans can target byte offsets after the handshake but
// before the first result frame.
func ackLen(t *testing.T, capacity int) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(helloAck{OK: true, Version: protocolVersion, Capacity: capacity}); err != nil {
		t.Fatal(err)
	}
	return int64(buf.Len())
}

// mustMatchLocal runs the stage locally and asserts the cluster output
// is row-for-row identical.
func mustMatchLocal(t *testing.T, ctx context.Context, got *relation.Relation, rel *relation.Relation, ops []engine.OpDesc) {
	t.Helper()
	want, _, err := engine.NewLocal(2).RunStage(ctx, rel, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("cluster rows = %d, local = %d", got.NumRows(), want.NumRows())
	}
	gr, wr := got.Rows(), want.Rows()
	for i := range gr {
		if !gr[i].Equal(wr[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, gr[i], wr[i])
		}
	}
}

// TestChaosHangingExecutor: one executor's responses stall permanently
// right after the handshake. The per-task deadline must fire, the task
// must be requeued on the healthy executor, and the stage must
// complete with output identical to local execution.
func TestChaosHangingExecutor(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.StallAfter = ackLen(t, 1) // handshake completes; every result stalls
	proxy.SetPlan(plan)

	// Heavy partitions keep the healthy executor busy long enough that
	// the stalled one is guaranteed to win at least one task.
	rel := traceRel(40000, 8)
	drv := &Driver{
		Addrs:             []string{addrs[0], proxy.Addr()},
		TaskTimeout:       250 * time.Millisecond,
		MaxRetries:        8,
		ReconnectBase:     20 * time.Millisecond,
		SpeculationFactor: -1, // isolate the deadline path
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.DeadlineHits == 0 {
		t.Fatalf("expected deadline hits, stats = %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("stalled tasks must be requeued, stats = %+v", st)
	}
}

// TestChaosKillAndReconnect: the only executor's connection is severed
// mid-result (the network view of a kill), then the link comes back
// clean. The slot must reconnect with backoff and finish the stage —
// no "undeliverable" on a briefly-down cluster.
func TestChaosKillAndReconnect(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.SeverAfter = ackLen(t, 1) + 32 // die inside the first result frame
	plan.Once = true                    // the "restarted" executor behaves
	proxy.SetPlan(plan)

	rel := traceRel(300, 6)
	drv := &Driver{
		Addrs:         []string{proxy.Addr()},
		MaxRetries:    4,
		ReconnectBase: 10 * time.Millisecond,
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.Reconnects == 0 {
		t.Fatalf("expected a reconnect after the sever, stats = %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("the severed task must be retried, stats = %+v", st)
	}
}

// TestChaosExecutorRestart kills a real executor process mid-stage and
// restarts it on the same address; the driver's reconnect loop must
// pick it back up.
func TestChaosExecutorRestart(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv1 := &ExecutorServer{Capacity: 1}
	sctx1, kill1 := context.WithCancel(ctx)
	served1 := make(chan struct{})
	go func() {
		defer close(served1)
		_ = srv1.Serve(sctx1, l)
	}()

	// Enough heavy partitions that the stage is still in flight when the
	// executor is killed after its second task.
	rel := traceRel(100000, 50)
	drv := &Driver{
		Addrs:            []string{addr},
		MaxRetries:       6,
		ReconnectBase:    10 * time.Millisecond,
		SlotFailureLimit: 500, // survive the whole restart window
	}
	type result struct {
		out *relation.Relation
		st  engine.Stats
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		out, st, err := drv.RunStage(ctx, rel, stageOps())
		resCh <- result{out, st, err}
	}()

	// Wait for the stage to make progress, then kill the executor.
	for srv1.TasksRun() < 2 {
		time.Sleep(time.Millisecond)
	}
	kill1()
	<-served1

	// Restart on the same address.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &ExecutorServer{Capacity: 1}
	sctx2, kill2 := context.WithCancel(ctx)
	defer kill2()
	served2 := make(chan struct{})
	go func() {
		defer close(served2)
		_ = srv2.Serve(sctx2, l2)
	}()
	defer func() { kill2(); <-served2 }()

	r := <-resCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	mustMatchLocal(t, ctx, r.out, rel, stageOps())
	if r.st.Reconnects == 0 {
		t.Fatalf("expected reconnects after restart, stats = %+v", r.st)
	}
	if srv2.TasksRun() == 0 {
		t.Fatal("restarted executor never ran a task")
	}
	// The restarted executor has no stage cache: the driver must ship
	// the stage again on the fresh connection (StagesShipped counts the
	// pre-kill shipment plus at least one re-shipment), and the new
	// process must have accepted it.
	if r.st.StagesShipped < 2 {
		t.Fatalf("StagesShipped = %d, want >= 2 (stage must re-ship after restart)", r.st.StagesShipped)
	}
	if srv2.StagesReceived() == 0 {
		t.Fatal("restarted executor never received a stage shipment")
	}
}

// TestChaosStageReshipOnReconnect severs the only executor's connection
// mid-stage once. The driver's fresh connection starts with an empty
// per-connection stage ledger, so the stage must cross the wire again —
// and the output must stay byte-identical (no stale stage cache, no
// double-applied epochs).
func TestChaosStageReshipOnReconnect(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.SeverAfter = ackLen(t, 1) + 32 // die inside the first result frame
	plan.Once = true
	proxy.SetPlan(plan)

	rel := traceRel(300, 6)
	drv := &Driver{
		Addrs:         []string{proxy.Addr()},
		MaxRetries:    4,
		ReconnectBase: 10 * time.Millisecond,
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.Reconnects == 0 {
		t.Fatalf("expected a reconnect after the sever, stats = %+v", st)
	}
	if st.StagesShipped < 2 {
		t.Fatalf("StagesShipped = %d, want >= 2: the reconnected link must receive the stage again", st.StagesShipped)
	}
}

// TestChaosCorruptedResultFrame flips one byte inside the first result
// frame. The driver must treat the broken gob stream as a transport
// failure, reconnect, and still produce output identical to local.
func TestChaosCorruptedResultFrame(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.CorruptAt = ackLen(t, 1) + 5 // inside the result frame's type wire
	plan.Once = true
	proxy.SetPlan(plan)

	rel := traceRel(300, 6)
	drv := &Driver{
		Addrs:         []string{proxy.Addr()},
		MaxRetries:    4,
		ReconnectBase: 10 * time.Millisecond,
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.Retries == 0 {
		t.Fatalf("corrupt frame must cause a retry, stats = %+v", st)
	}
}

// TestChaosSpeculativeExecution: an executor accepts a task and never
// answers (deadlines disabled). The straggler monitor must launch a
// speculative copy on the healthy executor and the first result wins.
func TestChaosSpeculativeExecution(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.StallAfter = ackLen(t, 1)
	proxy.SetPlan(plan)

	rel := traceRel(60000, 12)
	drv := &Driver{
		Addrs:               []string{addrs[0], proxy.Addr()},
		TaskTimeout:         -1, // disabled: only speculation can save the stage
		SpeculationFactor:   2,
		SpeculationMin:      20 * time.Millisecond,
		SpeculationInterval: 5 * time.Millisecond,
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.Speculative == 0 {
		t.Fatalf("expected speculative launches, stats = %+v", st)
	}
}

// TestChaosRefusedThenHealthy: connections to one executor are refused
// outright (process down); the other carries the stage.
func TestChaosRefusedThenHealthy(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.Refuse = true
	proxy.SetPlan(plan)

	rel := traceRel(200, 4)
	drv := &Driver{
		Addrs:         []string{addrs[0], proxy.Addr()},
		ReconnectBase: 10 * time.Millisecond,
	}
	got, _, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
}

// scriptedExecutor speaks the wire protocol directly: the first
// connection is dropped right after reading a task; later connections
// are served via behave, which receives the task alongside the stage
// pipeline the connection has registered for it.
func scriptedExecutor(t *testing.T, behave func(c *conn, pipe *engine.StagePipeline, task *taskMsg)) (addr string, cleanup func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	nconns := 0
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			nconns++
			first := nconns == 1
			mu.Unlock()
			go func(raw net.Conn, first bool) {
				defer raw.Close()
				c := newConn(raw)
				var hello helloMsg
				if c.dec.Decode(&hello) != nil {
					return
				}
				if c.enc.Encode(helloAck{OK: true, Version: protocolVersion, Capacity: 1}) != nil {
					return
				}
				cs := newConnState()
				for {
					task, pipe, err := cs.recvTask(c)
					if err != nil {
						return
					}
					if first {
						return // drop the connection mid-task
					}
					behave(c, pipe, task)
				}
			}(raw, first)
		}
	}()
	return l.Addr().String(), func() { _ = l.Close() }
}

// TestRetryAccountingExact injects exactly one connection drop and
// asserts the stats are exact: one retry, one reconnect, Tasks equal
// to the partition count.
func TestRetryAccountingExact(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	addr, cleanup := scriptedExecutor(t, func(c *conn, pipe *engine.StagePipeline, task *taskMsg) {
		rows, err := colcodec.Decode(pipe.InputSchema(), task.Data)
		if err != nil {
			_ = c.enc.Encode(resultMsg{ID: task.ID, Epoch: task.Epoch, Err: err.Error()})
			return
		}
		out, err := pipe.Apply(rows)
		if err != nil {
			_ = c.enc.Encode(resultMsg{ID: task.ID, Epoch: task.Epoch, Err: err.Error()})
			return
		}
		data, err := colcodec.Encode(pipe.OutputSchema(), out, colcodec.Options{})
		if err != nil {
			_ = c.enc.Encode(resultMsg{ID: task.ID, Epoch: task.Epoch, Err: err.Error()})
			return
		}
		_ = c.enc.Encode(resultMsg{ID: task.ID, Epoch: task.Epoch, Data: data})
	})
	defer cleanup()

	rel := traceRel(200, 5)
	drv := &Driver{
		Addrs:             []string{addr},
		MaxRetries:        3,
		ReconnectBase:     5 * time.Millisecond,
		SpeculationFactor: -1, // speculation would blur exact counts
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.Retries != 1 {
		t.Fatalf("Retries = %d, want exactly 1 (stats %+v)", st.Retries, st)
	}
	if st.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want exactly 1 (stats %+v)", st.Reconnects, st)
	}
	if st.Tasks != 5 {
		t.Fatalf("Tasks = %d, want 5", st.Tasks)
	}
}

// TestTaskErrorAfterTransportRetryAborts: the first attempt dies on a
// connection drop; the retried attempt returns a deterministic task
// error. The stage must abort with that task error — the earlier
// transport failure must not mask it or turn it into another retry.
func TestTaskErrorAfterTransportRetryAborts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	addr, cleanup := scriptedExecutor(t, func(c *conn, pipe *engine.StagePipeline, task *taskMsg) {
		_ = c.enc.Encode(resultMsg{ID: task.ID, Epoch: task.Epoch, Err: "boom: deterministic task failure"})
	})
	defer cleanup()

	drv := &Driver{
		Addrs:             []string{addr},
		MaxRetries:        5,
		ReconnectBase:     5 * time.Millisecond,
		SpeculationFactor: -1,
	}
	_, _, err := drv.RunStage(ctx, traceRel(50, 1), stageOps())
	if err == nil {
		t.Fatal("task error after a transport retry must abort the stage")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("stage error must carry the task error, got: %v", err)
	}
	if strings.Contains(err.Error(), "failed") && strings.Contains(err.Error(), "times") {
		t.Fatalf("task error must not be double-counted as retry exhaustion: %v", err)
	}
}

// TestCancellationReportsCanceled is the regression test for the
// misleading "no executor reachable" on user cancellation: a stage
// cancelled mid-flight must surface ctx.Err(), whatever the transport
// was doing at the time.
func TestCancellationReportsCanceled(t *testing.T) {
	bg, bgCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer bgCancel()
	addrs, stop, err := StartLocalCluster(bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Stall everything so the stage cannot finish before the cancel.
	proxy, err := faultproxy.New(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.StallAfter = ackLen(t, 1)
	proxy.SetPlan(plan)

	ctx, cancel := context.WithCancel(bg)
	drv := &Driver{Addrs: []string{proxy.Addr()}}
	done := make(chan error, 1)
	go func() {
		_, _, err := drv.RunStage(ctx, traceRel(100, 4), stageOps())
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("stage did not return after cancellation")
	}
}

// TestExecutorGracefulDrain: Shutdown must close idle connections,
// stop accepting, and leave completed work accounted for.
func TestExecutorGracefulDrain(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &ExecutorServer{Capacity: 1}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	drv := &Driver{Addrs: []string{l.Addr().String()}}
	rel := traceRel(100, 4)
	if _, _, err := drv.RunStage(ctx, rel, stageOps()); err != nil {
		t.Fatal(err)
	}
	if srv.TasksRun() != 4 {
		t.Fatalf("tasks run = %d, want 4", srv.TasksRun())
	}

	// An idle connection sitting in the task-decode loop...
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := newConn(raw)
	if err := c.enc.Encode(helloMsg{Magic: magic, Version: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := c.dec.Decode(&ack); err != nil || !ack.OK {
		t.Fatalf("handshake failed: %v %+v", err, ack)
	}

	// ...must be closed by a graceful drain, and Serve must return.
	go srv.Shutdown(5 * time.Second)
	var msg resultMsg
	if err := c.dec.Decode(&msg); err == nil {
		t.Fatal("idle connection must be closed on drain")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// New connections must be refused.
	if _, err := net.Dial("tcp", l.Addr().String()); err == nil {
		t.Fatal("listener must be closed after drain")
	}
	if srv.TasksRun() != 4 {
		t.Fatalf("tasks run changed during drain: %d", srv.TasksRun())
	}
}
