package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// Driver distributes engine stages across remote executors. It
// implements engine.Executor, so every pipeline in the framework runs
// unchanged either locally or on a cluster — the property the paper
// gets from targeting Spark.
type Driver struct {
	// Addrs are executor addresses ("host:port").
	Addrs []string
	// SlotsPerExecutor is how many concurrent task connections the
	// driver opens per executor (the paper's "5 cores per executor").
	// Default 1.
	SlotsPerExecutor int
	// MaxRetries is how often a task is re-dispatched after a transport
	// failure before the stage aborts. Default 2.
	MaxRetries int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
}

// Name implements engine.Executor.
func (d *Driver) Name() string {
	return fmt.Sprintf("cluster[%d executors x %d slots]", len(d.Addrs), d.slots())
}

func (d *Driver) slots() int {
	if d.SlotsPerExecutor > 0 {
		return d.SlotsPerExecutor
	}
	return 1
}

func (d *Driver) retries() int {
	if d.MaxRetries > 0 {
		return d.MaxRetries
	}
	return 2
}

func (d *Driver) dialTimeout() time.Duration {
	if d.DialTimeout > 0 {
		return d.DialTimeout
	}
	return 5 * time.Second
}

// stageRun is the shared scheduling state of one RunStage call. Tasks
// are partition indexes flowing through work; pending counts tasks not
// yet completed. A worker that hits a transport failure requeues its
// task and retires its connection slot (executor blacklisting); when
// every slot has retired with work outstanding, the stage fails.
type stageRun struct {
	rel      *relation.Relation
	ops      []engine.OpDesc
	outParts [][]relation.Row

	mu       sync.Mutex
	work     chan int
	closed   bool
	pending  int
	attempts []int
	retries  int
	firstErr error
	cancel   context.CancelFunc
}

// closeWorkLocked closes the work channel exactly once; callers hold
// sr.mu.
func (sr *stageRun) closeWorkLocked() {
	if !sr.closed {
		sr.closed = true
		close(sr.work)
	}
}

func (sr *stageRun) fail(err error) {
	sr.mu.Lock()
	if sr.firstErr == nil {
		sr.firstErr = err
	}
	sr.pending = 0
	sr.closeWorkLocked()
	sr.mu.Unlock()
	sr.cancel()
}

// complete marks one task done and closes the work channel when all
// tasks have finished.
func (sr *stageRun) complete() {
	sr.mu.Lock()
	if sr.pending > 0 {
		sr.pending--
		if sr.pending == 0 {
			sr.closeWorkLocked()
		}
	}
	sr.mu.Unlock()
}

// requeue re-offers a task after a transport failure; returns false
// (and fails the stage) when the retry budget is exhausted. The send
// happens under the mutex — the channel is buffered generously, so it
// never blocks, and the lock serializes it against closeWorkLocked.
func (sr *stageRun) requeue(pi, maxRetries int, cause error, addr string) bool {
	sr.mu.Lock()
	if sr.closed {
		sr.mu.Unlock()
		return false
	}
	sr.attempts[pi]++
	sr.retries++
	tooMany := sr.attempts[pi] > maxRetries
	attempts := sr.attempts[pi]
	if !tooMany {
		sr.work <- pi
	}
	sr.mu.Unlock()
	if tooMany {
		sr.fail(fmt.Errorf("cluster: partition %d failed %d times (last on %s): %w", pi, attempts, addr, cause))
		return false
	}
	return true
}

// RunStage implements engine.Executor: each partition becomes one task,
// dispatched over a pool of executor connections; results reassemble in
// partition order so the stage is deterministic.
func (d *Driver) RunStage(ctx context.Context, rel *relation.Relation, ops []engine.OpDesc) (*relation.Relation, engine.Stats, error) {
	start := time.Now()
	if len(d.Addrs) == 0 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: driver has no executor addresses")
	}
	// Validate the plan on the driver before shipping anything.
	outSchema, err := engine.OutputSchema(rel.Schema, ops)
	if err != nil {
		return nil, engine.Stats{}, err
	}

	nParts := len(rel.Partitions)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sr := &stageRun{
		rel:      rel,
		ops:      ops,
		outParts: make([][]relation.Row, nParts),
		// Capacity covers every task being requeued up to the retry
		// budget, so requeue never blocks.
		work:     make(chan int, nParts*(d.retries()+2)),
		pending:  nParts,
		attempts: make([]int, nParts),
		cancel:   cancel,
	}
	for pi := 0; pi < nParts; pi++ {
		sr.work <- pi
	}
	if nParts == 0 {
		close(sr.work)
	}

	var wg sync.WaitGroup
	for _, addr := range d.Addrs {
		for s := 0; s < d.slots(); s++ {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				d.runSlot(cctx, addr, sr)
			}(addr)
		}
	}
	wg.Wait()

	sr.mu.Lock()
	firstErr, pending, retries := sr.firstErr, sr.pending, sr.retries
	sr.mu.Unlock()
	if firstErr != nil {
		return nil, engine.Stats{}, firstErr
	}
	if pending > 0 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: %d partition(s) undeliverable: no executor reachable", pending)
	}
	if ctx.Err() != nil {
		return nil, engine.Stats{}, ctx.Err()
	}
	out := &relation.Relation{Schema: outSchema, Partitions: sr.outParts}
	st := engine.Stats{
		RowsIn:     rel.NumRows(),
		RowsOut:    out.NumRows(),
		Partitions: nParts,
		Wall:       time.Since(start),
		Tasks:      nParts,
		Retries:    retries,
	}
	return out, st, nil
}

// runSlot owns one executor connection. On a transport failure it
// requeues the in-flight task and retires, blacklisting this slot for
// the remainder of the stage (a flaky executor must not starve the
// retry budget of healthy ones).
func (d *Driver) runSlot(ctx context.Context, addr string, sr *stageRun) {
	raw, err := net.DialTimeout("tcp", addr, d.dialTimeout())
	if err != nil {
		return
	}
	c := newConn(raw)
	defer c.close()
	if err := c.handshake(d.dialTimeout()); err != nil {
		return
	}
	for {
		var pi int
		var ok bool
		select {
		case <-ctx.Done():
			return
		case pi, ok = <-sr.work:
			if !ok {
				return
			}
		}
		if err := d.sendTask(c, sr, pi); err != nil {
			if tf, isTF := err.(*taskFailure); isTF && tf.taskErr != nil {
				sr.fail(tf.taskErr)
				return
			}
			sr.requeue(pi, d.retries(), err, addr)
			return
		}
		sr.complete()
	}
}

// taskFailure distinguishes deterministic task errors (abort) from
// transport errors (retry elsewhere).
type taskFailure struct {
	taskErr error // non-retryable
	ioErr   error // retryable
}

// Error implements error.
func (t *taskFailure) Error() string {
	if t.taskErr != nil {
		return t.taskErr.Error()
	}
	return t.ioErr.Error()
}

func (t *taskFailure) Unwrap() error {
	if t.taskErr != nil {
		return t.taskErr
	}
	return t.ioErr
}

func (d *Driver) sendTask(c *conn, sr *stageRun, pi int) error {
	task := taskMsg{ID: uint64(pi), Schema: sr.rel.Schema, Rows: sr.rel.Partitions[pi], Ops: sr.ops}
	if err := c.enc.Encode(task); err != nil {
		return &taskFailure{ioErr: err}
	}
	var res resultMsg
	if err := c.dec.Decode(&res); err != nil {
		return &taskFailure{ioErr: err}
	}
	if res.Err != "" {
		return &taskFailure{taskErr: fmt.Errorf("cluster: task %d: %s", pi, res.Err)}
	}
	if res.ID != uint64(pi) {
		return &taskFailure{ioErr: fmt.Errorf("cluster: task id mismatch: sent %d got %d", pi, res.ID)}
	}
	sr.outParts[pi] = res.Rows
	return nil
}
