package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

// Driver distributes engine stages across remote executors. It
// implements engine.Executor, so every pipeline in the framework runs
// unchanged either locally or on a cluster — the property the paper
// gets from targeting Spark. The driver survives every single-node
// failure mode without aborting a stage: stalled connections hit
// per-task deadlines, dropped connections are re-established with
// capped exponential backoff, and straggler tasks are speculatively
// re-executed on other executors (first result wins).
type Driver struct {
	// Addrs are executor addresses ("host:port").
	Addrs []string
	// SlotsPerExecutor is how many concurrent task connections the
	// driver opens per executor (the paper's "5 cores per executor").
	// Default 1.
	SlotsPerExecutor int
	// MaxRetries is how often a task is re-dispatched after a transport
	// failure before the stage aborts. Default 2.
	MaxRetries int
	// DialTimeout bounds connection establishment and the handshake.
	// Default 5s.
	DialTimeout time.Duration
	// TaskTimeout bounds one task round trip (send + remote compute +
	// receive) on a slot connection. A deadline hit counts in
	// Stats.DeadlineHits and requeues the task like any other transport
	// failure. 0 means the 2m default; negative disables deadlines.
	TaskTimeout time.Duration
	// ReconnectBase and ReconnectMax shape the capped exponential
	// backoff (with jitter) between reconnection attempts of a slot.
	// Defaults 50ms and 2s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// SlotFailureLimit is how many consecutive dial/transport failures a
	// slot tolerates before it retires for the remainder of the stage (a
	// persistently dead executor must not spin forever, and the stage
	// must be able to report "undeliverable" when every slot is gone).
	// Any successfully completed task resets the counter. The default 8
	// gives a restarting executor a multi-second window to rejoin.
	SlotFailureLimit int
	// SpeculationFactor k: a task whose runtime exceeds k× the median
	// completed-task duration is re-dispatched speculatively; the first
	// result wins and duplicates are discarded by task epoch. 0 means
	// the default 3; negative disables speculation.
	SpeculationFactor float64
	// SpeculationMin is the floor on the straggler threshold, so
	// microsecond medians do not trigger spurious re-execution.
	// Default 100ms.
	SpeculationMin time.Duration
	// SpeculationInterval is how often the straggler monitor scans
	// in-flight tasks. Default 25ms.
	SpeculationInterval time.Duration
	// MaxSpeculation bounds speculative launches per task. Default 2.
	MaxSpeculation int
	// PanicRetryLimit is how many contained executor panics one task
	// tolerates before the driver quarantines it as poisoned and fails
	// the stage with a diagnostic (a deterministic panic must not burn
	// the whole retry budget executor by executor). Default 2.
	PanicRetryLimit int
	// AdmissionThreshold is the executor memory pressure (used/budget,
	// reported in result frames) above which the driver defers further
	// dispatch on that slot by AdmissionPause, letting the executor
	// drain instead of piling on. 0 means the 0.85 default; negative
	// disables admission control.
	AdmissionThreshold float64
	// AdmissionPause is how long a pressured slot waits before taking
	// its next task. Default 20ms.
	AdmissionPause time.Duration
	// Compress runs columnar partition and broadcast-table payloads
	// through DEFLATE (stdlib flate) before they hit the wire. Worth it
	// for string-heavy traces crossing real networks; pure CPU overhead
	// on loopback. Executors auto-detect the flag per payload and
	// mirror it on results.
	Compress bool
	// CompressLevel selects the DEFLATE effort for driver-side payload
	// encodes when Compress is set. 0 means flate.BestSpeed — wire
	// compression is latency-bound, so the fast level is the default —
	// and any valid flate level (including flate.BestCompression for
	// bandwidth-starved links) passes through unchanged.
	CompressLevel int
	// Tracer, when set, records one span per stage plus one child span
	// per task, with lifecycle events (queued, shipped, decoded,
	// executed, merged) and fault events (task_retry, reconnect,
	// speculation, deadline_hit). Nil disables tracing; every span
	// operation on nil is a no-op.
	Tracer *telemetry.Tracer
	// Tasks, when set, mirrors per-task scheduling state into a live
	// table — what the /tasks introspection endpoint serves. Nil
	// disables it.
	Tasks *telemetry.TaskTable

	// ShufflePeers overrides the endpoint map executors use for
	// executor-to-executor shuffle pushes (protocol v4). Entry i is how
	// peers reach the executor at Addrs[i]; default is Addrs itself.
	// Chaos tests point entries at fault proxies so only peer links see
	// injected faults while driver connections stay clean.
	ShufflePeers []string
	// ShufflePushTimeout bounds one peer push round trip on the map
	// side, distributed to executors in shuffle begin frames. 0 leaves
	// the executors' own default (30s).
	ShufflePushTimeout time.Duration
	// ShuffleParts is the default shuffle fan-out when a plan does not
	// pick one. 0 means 2× the executor count (at least 2).
	ShuffleParts int

	// Persistent keeps executor connections open across stages instead
	// of dialing per stage: a slot that finishes a stage cleanly
	// returns its connection — with the stage-once sentStages and
	// sentTables caches warm — to a per-address pool the next stage
	// checks out of. This is the resident mode the query service runs
	// the driver in (many stages over one daemon lifetime); batch runs
	// keep the default dial-per-stage lifecycle. Close releases the
	// pool. A pooled connection whose executor died is detected on
	// first use and handled by the ordinary reconnect machinery.
	Persistent bool

	// live points at the stats collector of the most recent RunStage so
	// introspection can snapshot counters while a stage is running.
	live atomic.Pointer[engine.StatsCollector]

	poolMu     sync.Mutex
	pool       map[string][]*conn
	poolClosed bool
}

// checkoutConn pops a pooled connection for addr (nil when the pool is
// empty, closed, or the driver is not Persistent).
func (d *Driver) checkoutConn(addr string) *conn {
	if !d.Persistent {
		return nil
	}
	d.poolMu.Lock()
	defer d.poolMu.Unlock()
	l := d.pool[addr]
	if len(l) == 0 {
		return nil
	}
	c := l[len(l)-1]
	d.pool[addr] = l[:len(l)-1]
	return c
}

// stashConn returns a healthy connection to the pool, reporting whether
// it was kept (false: caller must close it).
func (d *Driver) stashConn(addr string, c *conn) bool {
	if !d.Persistent {
		return false
	}
	d.poolMu.Lock()
	defer d.poolMu.Unlock()
	if d.poolClosed || len(d.pool[addr]) >= d.slots() {
		return false
	}
	if d.pool == nil {
		d.pool = map[string][]*conn{}
	}
	d.pool[addr] = append(d.pool[addr], c)
	return true
}

// Close closes every pooled connection and stops further pooling. Only
// meaningful for Persistent drivers; idempotent.
func (d *Driver) Close() {
	d.poolMu.Lock()
	conns := d.pool
	d.pool = nil
	d.poolClosed = true
	d.poolMu.Unlock()
	for _, l := range conns {
		for _, c := range l {
			c.close()
		}
	}
}

// LiveStats returns a point-in-time snapshot of the most recent
// stage's counters — safe to call concurrently with RunStage. Zero
// before the first stage starts.
func (d *Driver) LiveStats() engine.Stats {
	if c := d.live.Load(); c != nil {
		return c.Snapshot()
	}
	return engine.Stats{}
}

// Name implements engine.Executor.
func (d *Driver) Name() string {
	return fmt.Sprintf("cluster[%d executors x %d slots]", len(d.Addrs), d.slots())
}

func (d *Driver) slots() int {
	if d.SlotsPerExecutor > 0 {
		return d.SlotsPerExecutor
	}
	return 1
}

func (d *Driver) retries() int {
	if d.MaxRetries > 0 {
		return d.MaxRetries
	}
	return 2
}

func (d *Driver) dialTimeout() time.Duration {
	if d.DialTimeout > 0 {
		return d.DialTimeout
	}
	return 5 * time.Second
}

func (d *Driver) taskTimeout() time.Duration {
	switch {
	case d.TaskTimeout > 0:
		return d.TaskTimeout
	case d.TaskTimeout < 0:
		return 0
	default:
		return 2 * time.Minute
	}
}

func (d *Driver) reconnectBase() time.Duration {
	if d.ReconnectBase > 0 {
		return d.ReconnectBase
	}
	return 50 * time.Millisecond
}

func (d *Driver) reconnectMax() time.Duration {
	if d.ReconnectMax > 0 {
		return d.ReconnectMax
	}
	return 2 * time.Second
}

func (d *Driver) slotFailureLimit() int {
	if d.SlotFailureLimit > 0 {
		return d.SlotFailureLimit
	}
	return 8
}

func (d *Driver) speculationFactor() float64 {
	switch {
	case d.SpeculationFactor > 0:
		return d.SpeculationFactor
	case d.SpeculationFactor < 0:
		return 0
	default:
		return 3
	}
}

func (d *Driver) speculationMin() time.Duration {
	if d.SpeculationMin > 0 {
		return d.SpeculationMin
	}
	return 100 * time.Millisecond
}

func (d *Driver) speculationInterval() time.Duration {
	if d.SpeculationInterval > 0 {
		return d.SpeculationInterval
	}
	return 25 * time.Millisecond
}

func (d *Driver) maxSpeculation() int {
	if d.MaxSpeculation > 0 {
		return d.MaxSpeculation
	}
	return 2
}

func (d *Driver) panicRetryLimit() int {
	if d.PanicRetryLimit > 0 {
		return d.PanicRetryLimit
	}
	return 2
}

func (d *Driver) admissionThreshold() float64 {
	switch {
	case d.AdmissionThreshold > 0:
		return d.AdmissionThreshold
	case d.AdmissionThreshold < 0:
		return 0
	default:
		return 0.85
	}
}

func (d *Driver) admissionPause() time.Duration {
	if d.AdmissionPause > 0 {
		return d.AdmissionPause
	}
	return 20 * time.Millisecond
}

// backoff returns the sleep before reconnection attempt number fails
// (1-based): capped exponential with ±50% jitter.
func (d *Driver) backoff(fails int) time.Duration {
	b := d.reconnectBase()
	max := d.reconnectMax()
	for i := 1; i < fails && b < max; i++ {
		b *= 2
	}
	if b > max {
		b = max
	}
	half := int64(b / 2)
	if half <= 0 {
		return b
	}
	return time.Duration(half + rand.Int63n(half+1))
}

// The driver schedules stages straight from segment files when the
// scan source can name them (engine.ScanStage wires the two up).
var _ engine.SegmentExecutor = (*Driver)(nil)

// inflightInfo tracks the live dispatches of one task: how many copies
// are out (original + speculative) and when the oldest was launched.
type inflightInfo struct {
	n     int
	start time.Time
}

// stageRun is the shared scheduling state of one RunStage call. Tasks
// are partition indexes flowing through work; pending counts tasks not
// yet completed. Slots survive transport failures by reconnecting; the
// stage fails only when a task exhausts its retry budget, the context
// is cancelled, or every slot has retired with work outstanding.
type stageRun struct {
	rel      *relation.Relation
	outParts [][]relation.Row

	// segs, when non-nil, marks a segment-scheduled stage
	// (RunSegmentStage): task pi reads segs[pi] on the executor instead
	// of receiving rel.Partitions[pi] over the wire. rel is then a
	// placeholder carrying only the scan schema; pruned refs are
	// committed driver-side before any slot starts, using prunedPipe —
	// the stage compiled from the ORIGINAL ops (opsWire has broadcast
	// rows stripped and is only compilable on an executor).
	segs       []engine.SegmentRef
	prunedPipe *engine.StagePipeline

	// v3 stage shipment, prepared once per RunStage: the stage's
	// content fingerprint, the pipeline with broadcast rows stripped
	// (replaced by table-hash references), the columnar-encoded
	// broadcast tables, and the output schema results decode against.
	fp        uint64
	opsWire   []engine.OpDesc
	tables    []tableMsg
	outSchema relation.Schema
	compress  bool
	level     int

	mu        sync.Mutex
	work      chan int
	closed    bool
	pending   int
	done      []bool
	attempts  []int
	epoch     []int
	specs     []int
	panics    []int
	inflight  map[int]inflightInfo
	durations []time.Duration
	// encParts caches each partition's columnar encoding so retries and
	// speculative copies reuse the bytes instead of re-encoding.
	encParts [][]byte

	// stats is the single accumulation point for this stage's counters:
	// slots and the speculation monitor write through its atomics, the
	// final engine.Stats is its snapshot, and Driver.LiveStats snapshots
	// it mid-flight. No counter lives behind sr.mu.
	stats *engine.StatsCollector

	// stageSpan/spans carry the stage's trace; nil when tracing is off
	// (all span operations on nil are no-ops). tasks mirrors scheduling
	// state for /tasks; nil-safe the same way.
	stageSpan *telemetry.Span
	spans     []*telemetry.Span
	tasks     *telemetry.TaskTable

	firstErr error
	cancel   context.CancelFunc
}

// spanFor returns the trace span of task pi, or nil when tracing is
// off.
func (sr *stageRun) spanFor(pi int) *telemetry.Span {
	if sr.spans == nil {
		return nil
	}
	return sr.spans[pi]
}

// closeWorkLocked closes the work channel exactly once; callers hold
// sr.mu.
func (sr *stageRun) closeWorkLocked() {
	if !sr.closed {
		sr.closed = true
		close(sr.work)
	}
}

func (sr *stageRun) finished() bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.closed
}

func (sr *stageRun) fail(err error) {
	sr.mu.Lock()
	if sr.firstErr == nil {
		sr.firstErr = err
	}
	sr.closeWorkLocked()
	sr.mu.Unlock()
	sr.cancel()
}

func (sr *stageRun) noteReconnect(addr string) {
	sr.stats.Reconnects.Add(1)
	mReconnects.With(addr).Inc()
	sr.stageSpan.Event("reconnect", telemetry.A("addr", addr))
}

func (sr *stageRun) noteDeadline(pi int) {
	sr.stats.DeadlineHits.Add(1)
	mDeadlineHits.Inc()
	sr.spanFor(pi).Event("deadline_hit")
}

func (sr *stageRun) noteStageShipped() {
	sr.stats.StagesShipped.Add(1)
	mStagesShipped.Inc()
}

// notePanic counts a contained executor panic against task pi and
// returns the new total; the slot quarantines the task once it reaches
// the driver's panic retry limit.
func (sr *stageRun) notePanic(pi int) int {
	sr.mu.Lock()
	sr.panics[pi]++
	n := sr.panics[pi]
	sr.mu.Unlock()
	mTaskPanics.Inc()
	sr.spanFor(pi).Event("task_panic", telemetry.A("count", n))
	return n
}

// noteAdmissionDeferral records one pressure-induced dispatch pause.
func (sr *stageRun) noteAdmissionDeferral(addr string) {
	sr.stats.AdmissionDeferrals.Add(1)
	mAdmissionDeferrals.Inc()
	sr.stageSpan.Event("admission_deferral", telemetry.A("addr", addr))
}

func (sr *stageRun) noteDecode(d time.Duration) {
	sr.stats.DecodeNs.Add(int64(d))
}

// harvestBytes folds a connection's byte counters into the stage
// totals; called exactly once per connection, when it is closed.
func (sr *stageRun) harvestBytes(c *conn) {
	w, r := c.takeCounts()
	sr.stats.BytesSent.Add(w)
	sr.stats.BytesRecv.Add(r)
	mBytesSent.Add(w)
	mBytesRecv.Add(r)
}

// encodedPartition returns (caching) the columnar encoding of partition
// pi. Re-dispatches of a task (retries, speculation) reuse the bytes.
func (sr *stageRun) encodedPartition(pi int) ([]byte, error) {
	sr.mu.Lock()
	if b := sr.encParts[pi]; b != nil {
		sr.mu.Unlock()
		return b, nil
	}
	sr.mu.Unlock()
	start := time.Now()
	b, err := colcodec.Encode(sr.rel.Schema, sr.rel.Partitions[pi], colcodec.Options{Compress: sr.compress, Level: sr.level})
	if err != nil {
		return nil, err
	}
	sr.stats.EncodeNs.Add(int64(time.Since(start)))
	sr.mu.Lock()
	if sr.encParts[pi] == nil {
		sr.encParts[pi] = b
	} else {
		b = sr.encParts[pi] // lost a benign double-encode race
	}
	sr.mu.Unlock()
	return b, nil
}

// dispatch registers one launch of task pi and returns its epoch. A
// task that already completed (e.g. a stale speculative queue entry)
// is not dispatched again.
func (sr *stageRun) dispatch(pi int) (epoch int, ok bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.closed || sr.done[pi] {
		return 0, false
	}
	sr.epoch[pi]++
	fl := sr.inflight[pi]
	if fl.n == 0 {
		fl.start = time.Now()
	}
	fl.n++
	sr.inflight[pi] = fl
	mInflight.Add(1)
	return sr.epoch[pi], true
}

// commit records a completed task. The first result for a partition
// wins; duplicates from speculative copies are discarded.
func (sr *stageRun) commit(pi int, rows []relation.Row) {
	sr.mu.Lock()
	started := sr.dropInflightLocked(pi)
	if sr.done[pi] || sr.closed {
		sr.mu.Unlock()
		return
	}
	sr.done[pi] = true
	sr.outParts[pi] = rows
	if !started.IsZero() {
		sr.durations = append(sr.durations, time.Since(started))
	}
	sr.pending--
	finished := sr.pending == 0
	if finished {
		sr.closeWorkLocked()
	}
	sr.mu.Unlock()
	if !started.IsZero() {
		engine.ObserveTask("cluster", time.Since(started))
	}
	sp := sr.spanFor(pi)
	sp.Event("merged")
	sp.End()
	sr.tasks.Done(pi)
	if finished {
		// Unblock slots whose connections are mid-read (e.g. a stalled
		// executor that lost the speculation race).
		sr.cancel()
	}
}

func (sr *stageRun) dropInflightLocked(pi int) time.Time {
	fl, ok := sr.inflight[pi]
	if !ok {
		return time.Time{}
	}
	start := fl.start
	fl.n--
	if fl.n <= 0 {
		delete(sr.inflight, pi)
	} else {
		sr.inflight[pi] = fl
	}
	mInflight.Add(-1)
	return start
}

// abandon records a transport failure of one launch of task pi and
// requeues the task unless another copy is still in flight or the
// retry budget is exhausted (which fails the stage).
func (sr *stageRun) abandon(pi, maxRetries int, cause error, addr string) {
	sr.mu.Lock()
	sr.dropInflightLocked(pi)
	if sr.done[pi] || sr.closed {
		sr.mu.Unlock()
		return
	}
	sr.attempts[pi]++
	sr.stats.Retries.Add(1)
	attempts := sr.attempts[pi]
	tooMany := attempts > maxRetries
	if !tooMany {
		if fl, live := sr.inflight[pi]; !live || fl.n <= 0 {
			sr.work <- pi
		}
	}
	sr.mu.Unlock()
	mRetries.Inc()
	sr.spanFor(pi).Event("task_retry",
		telemetry.A("attempt", attempts), telemetry.A("addr", addr), telemetry.A("cause", cause.Error()))
	sr.tasks.Retrying(pi)
	if tooMany {
		sr.fail(fmt.Errorf("cluster: partition %d failed %d times (last on %s): %w", pi, attempts, addr, cause))
	}
}

// speculate is the straggler monitor: any task whose oldest in-flight
// copy has been running longer than factor× the median completed-task
// duration (floored at min) is re-enqueued, up to maxPer copies.
func (sr *stageRun) speculate(ctx context.Context, factor float64, min, interval time.Duration, maxPer int) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		sr.mu.Lock()
		if sr.closed {
			sr.mu.Unlock()
			return
		}
		med := medianDuration(sr.durations)
		if med <= 0 {
			sr.mu.Unlock()
			continue
		}
		thr := time.Duration(factor * float64(med))
		if thr < min {
			thr = min
		}
		now := time.Now()
		var launched []int
		for pi, fl := range sr.inflight {
			if fl.n == 1 && !sr.done[pi] && sr.specs[pi] < maxPer && now.Sub(fl.start) > thr {
				sr.specs[pi]++
				sr.stats.Speculative.Add(1)
				sr.work <- pi
				launched = append(launched, pi)
			}
		}
		sr.mu.Unlock()
		for _, pi := range launched {
			mSpeculative.Inc()
			sr.stageSpan.Event("speculation", telemetry.A("task", pi))
			sr.tasks.Speculative(pi)
		}
	}
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	c := make([]time.Duration, len(ds))
	copy(c, ds)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c[len(c)/2]
}

// RunStage implements engine.Executor: each partition becomes one task,
// dispatched over a pool of executor connections; results reassemble in
// partition order so the stage is deterministic.
func (d *Driver) RunStage(ctx context.Context, rel *relation.Relation, ops []engine.OpDesc) (*relation.Relation, engine.Stats, error) {
	start := time.Now()
	if len(d.Addrs) == 0 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: driver has no executor addresses")
	}
	// Validate the plan on the driver before shipping anything.
	outSchema, err := engine.OutputSchema(rel.Schema, ops)
	if err != nil {
		return nil, engine.Stats{}, err
	}

	// Prepare the stage shipment once: fingerprint the stage, strip
	// broadcast tables out of the pipeline (they ship separately, keyed
	// by content hash, at most once per connection), and columnar-encode
	// each distinct table a single time for the whole stage.
	fp, opsWire, tables, err := d.stageWire(rel.Schema, ops)
	if err != nil {
		return nil, engine.Stats{}, err
	}

	sr := d.newStageRun(rel, fp, opsWire, tables, outSchema)
	return d.drive(ctx, sr, start, rel.NumRows())
}

// RunSegmentStage implements engine.SegmentExecutor: the same
// scheduling machinery as RunStage, except tasks name segment files
// (taskMsg.SegPath/SegCols) instead of carrying encoded partitions —
// executors read their own segment, so the driver never decodes or
// ships scan input. refs[i] becomes partition i; refs whose zone maps
// pruned them are committed driver-side as the stage pipeline applied
// to an empty partition, which keeps partition indexes stable and the
// output bitwise-equal to a full scan (aggregations over empty input
// produce the same rows either way, because the pushed filter provably
// empties those segments mid-pipeline).
func (d *Driver) RunSegmentStage(ctx context.Context, refs []engine.SegmentRef, schema relation.Schema, ops []engine.OpDesc) (*relation.Relation, engine.Stats, error) {
	start := time.Now()
	if len(d.Addrs) == 0 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: driver has no executor addresses")
	}
	outSchema, err := engine.OutputSchema(schema, ops)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	fp, opsWire, tables, err := d.stageWire(schema, ops)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	// Placeholder input relation: it carries the scan schema for the
	// stage shipment; its (empty) partitions are never encoded because
	// sendTask ships segment paths for this stage.
	rel := &relation.Relation{Schema: schema, Partitions: make([][]relation.Row, len(refs))}
	sr := d.newStageRun(rel, fp, opsWire, tables, outSchema)
	sr.segs = refs
	for _, ref := range refs {
		if ref.Pruned {
			pipe, _, err := engine.CompileStage(schema, ops)
			if err != nil {
				return nil, engine.Stats{}, err
			}
			sr.prunedPipe = pipe
			break
		}
	}
	rowsIn := 0
	for _, ref := range refs {
		if !ref.Pruned {
			rowsIn += ref.Rows
		}
	}
	return d.drive(ctx, sr, start, rowsIn)
}

// newStageRun builds the scheduling state shared by RunStage and
// RunSegmentStage. The work channel capacity covers every task being
// requeued up to the retry budget plus every speculative launch, so no
// send ever blocks.
func (d *Driver) newStageRun(rel *relation.Relation, fp uint64, opsWire []engine.OpDesc, tables []tableMsg, outSchema relation.Schema) *stageRun {
	nParts := len(rel.Partitions)
	return &stageRun{
		rel:       rel,
		fp:        fp,
		opsWire:   opsWire,
		tables:    tables,
		outSchema: outSchema,
		compress:  d.Compress,
		level:     d.CompressLevel,
		outParts:  make([][]relation.Row, nParts),
		work:      make(chan int, nParts*(d.retries()+d.maxSpeculation()+2)),
		pending:   nParts,
		done:      make([]bool, nParts),
		attempts:  make([]int, nParts),
		epoch:     make([]int, nParts),
		specs:     make([]int, nParts),
		panics:    make([]int, nParts),
		encParts:  make([][]byte, nParts),
		inflight:  make(map[int]inflightInfo),
		stats:     engine.NewStatsCollector(),
		tasks:     d.Tasks,
	}
}

// drive runs a prepared stage to completion: spans, pruned-partition
// pre-commit, work distribution, slot pool, speculation, and the final
// stats fold. rowsIn is the stage's input row count (the driver cannot
// derive it for segment stages, whose partitions never materialize
// here).
func (d *Driver) drive(ctx context.Context, sr *stageRun, start time.Time, rowsIn int) (*relation.Relation, engine.Stats, error) {
	nParts := len(sr.outParts)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sr.cancel = cancel
	d.live.Store(sr.stats)
	fpHex := fmt.Sprintf("%016x", sr.fp)
	if d.Tracer.Enabled() {
		sr.stageSpan = d.Tracer.StartSpan("stage "+fpHex,
			telemetry.A("partitions", nParts), telemetry.A("executor", d.Name()))
		sr.spans = make([]*telemetry.Span, nParts)
		for pi := range sr.spans {
			sr.spans[pi] = sr.stageSpan.Child(fmt.Sprintf("task %d", pi), telemetry.A("stage", fpHex))
			sr.spans[pi].Event("queued")
		}
	}
	defer sr.stageSpan.End()
	d.Tasks.BeginStage(fpHex, d.Name(), nParts)

	// Pruned segments complete before any slot dials: their output is
	// the stage pipeline over an empty partition, computed on the
	// driver. Each pruned partition gets its own ApplyContained call so
	// no output rows alias across partitions.
	live := 0
	for pi := 0; pi < nParts; pi++ {
		if sr.segs != nil && sr.segs[pi].Pruned {
			rows, err := sr.prunedPipe.ApplyContained(nil)
			if err != nil {
				return nil, engine.Stats{}, err
			}
			sr.mu.Lock()
			sr.done[pi] = true
			sr.outParts[pi] = rows
			sr.pending--
			sr.mu.Unlock()
			if sp := sr.spanFor(pi); sp != nil {
				sp.Event("pruned")
				sp.End()
			}
			sr.tasks.Done(pi)
			continue
		}
		sr.work <- pi
		live++
	}
	if live == 0 {
		sr.mu.Lock()
		sr.closeWorkLocked()
		sr.mu.Unlock()
	}

	if f := d.speculationFactor(); f > 0 && live > 0 {
		go sr.speculate(cctx, f, d.speculationMin(), d.speculationInterval(), d.maxSpeculation())
	}

	var wg sync.WaitGroup
	for _, addr := range d.Addrs {
		for s := 0; s < d.slots(); s++ {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				d.runSlot(cctx, addr, sr)
			}(addr)
		}
	}
	wg.Wait()

	sr.mu.Lock()
	firstErr, pending := sr.firstErr, sr.pending
	sr.mu.Unlock()
	st := sr.stats.Snapshot()
	// A user cancellation must surface as such, not as a transport
	// failure or an "undeliverable" stage.
	if ctx.Err() != nil {
		return nil, engine.Stats{}, ctx.Err()
	}
	if firstErr != nil {
		return nil, engine.Stats{}, firstErr
	}
	if pending > 0 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: %d partition(s) undeliverable: no executor reachable", pending)
	}
	out := &relation.Relation{Schema: sr.outSchema, Partitions: sr.outParts}
	st.RowsIn = rowsIn
	st.RowsOut = out.NumRows()
	st.Partitions = nParts
	st.Wall = time.Since(start)
	st.Tasks = nParts
	// Fold the driver-computed fields back so LiveStats sees complete
	// totals after the stage ends.
	sr.stats.RowsIn.Store(int64(st.RowsIn))
	sr.stats.RowsOut.Store(int64(st.RowsOut))
	sr.stats.Partitions.Store(int64(st.Partitions))
	sr.stats.WallNs.Store(int64(st.Wall))
	sr.stats.Tasks.Store(int64(st.Tasks))
	engine.ObserveStage("cluster", st)
	return out, st, nil
}

// stageWire prepares one stage's v3 shipment: the content fingerprint,
// the pipeline with broadcast-table rows stripped (replaced by
// content-hash references), and each distinct table columnar-encoded
// once. Both RunStage and the shuffle map phase ship stages this way.
func (d *Driver) stageWire(schema relation.Schema, ops []engine.OpDesc) (fp uint64, opsWire []engine.OpDesc, tables []tableMsg, err error) {
	fp = engine.StageFingerprint(schema, ops)
	opsWire = make([]engine.OpDesc, len(ops))
	seenTables := map[uint64]bool{}
	for i, op := range ops {
		opsWire[i] = op
		if op.Kind != engine.OpBroadcastJoin || op.Join == nil {
			continue
		}
		th := engine.TableFingerprint(op.Join.Schema, op.Join.Rows)
		j := *op.Join
		j.Rows = nil
		j.TableHash = th
		opsWire[i].Join = &j
		if !seenTables[th] {
			seenTables[th] = true
			data, err := colcodec.Encode(op.Join.Schema, op.Join.Rows, colcodec.Options{Compress: d.Compress, Level: d.CompressLevel})
			if err != nil {
				return 0, nil, nil, fmt.Errorf("cluster: encode broadcast table: %w", err)
			}
			tables = append(tables, tableMsg{Hash: th, Schema: op.Join.Schema, Data: data})
		}
	}
	return fp, opsWire, tables, nil
}

// connect dials and handshakes one executor connection.
func (d *Driver) connect(ctx context.Context, addr string) (*conn, error) {
	dialer := net.Dialer{Timeout: d.dialTimeout()}
	raw, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := newConn(raw)
	if err := c.handshake(d.dialTimeout()); err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

// runSlot owns one executor connection. Transport failures no longer
// retire the slot: the in-flight task is requeued and the slot
// reconnects with capped exponential backoff, so executors that
// restart mid-stage rejoin. Only SlotFailureLimit consecutive failures
// retire the slot, bounding the damage of a persistently dead or
// flaky executor (it must not starve the retry budget of healthy
// ones).
func (d *Driver) runSlot(ctx context.Context, addr string, sr *stageRun) {
	var c *conn
	var stopWatch func() bool
	// dropConn hard-closes the connection (transport failures, and
	// every stage end for non-persistent drivers).
	dropConn := func() {
		if c != nil {
			if stopWatch != nil {
				stopWatch()
			}
			c.close()
			sr.harvestBytes(c)
			c = nil
		}
	}
	// releaseConn runs at slot exit: a healthy idle connection goes
	// back to the persistent pool (watcher stopped in time, or it ran
	// but skipped the close because the connection was idle); anything
	// else closes.
	releaseConn := func() {
		if c == nil {
			return
		}
		stopped := stopWatch == nil || stopWatch()
		sr.harvestBytes(c)
		if (stopped || !c.busy.Load()) && d.stashConn(addr, c) {
			c = nil
			return
		}
		c.close()
		c = nil
	}
	defer releaseConn()

	fails := 0      // consecutive dial/transport failures
	dialed := false // ever connected successfully
	for {
		if ctx.Err() != nil || sr.finished() {
			return
		}
		if c == nil {
			if fails == 0 {
				c = d.checkoutConn(addr)
			}
			if c == nil {
				if fails > 0 {
					if !sleepCtx(ctx, d.backoff(fails)) {
						return
					}
				}
				nc, err := d.connect(ctx, addr)
				if err != nil {
					fails++
					if fails >= d.slotFailureLimit() {
						return
					}
					continue
				}
				c = nc
				if dialed || fails > 0 {
					sr.noteReconnect(addr)
				}
				dialed = true
			}
			// Close the connection when the stage ends so a slot blocked
			// in a read (stalled executor, stage already complete) wakes.
			// A persistent driver's watcher leaves idle connections open:
			// they are not blocking anything and releaseConn pools them.
			nc := c
			stopWatch = context.AfterFunc(ctx, func() {
				if !d.Persistent || nc.busy.Load() {
					nc.close()
				}
			})
		}
		var pi int
		var ok bool
		select {
		case <-ctx.Done():
			return
		case pi, ok = <-sr.work:
			if !ok {
				return
			}
		}
		ep, ok := sr.dispatch(pi)
		if !ok {
			continue
		}
		sr.spanFor(pi).Event("shipped", telemetry.A("addr", addr), telemetry.A("epoch", ep))
		sr.tasks.Running(pi, addr, ep)
		c.busy.Store(true)
		if ctx.Err() != nil {
			// The stage-end watcher may have observed the connection
			// idle a moment ago and left it open; nobody would unblock
			// a read started now, so bail out. busy stays set so
			// releaseConn closes instead of pooling (the watcher may
			// have closed the connection concurrently).
			return
		}
		pressured, err := d.sendTask(c, sr, pi, ep)
		c.busy.Store(false)
		if err == nil {
			fails = 0
			if pressured {
				// Admission control: the executor reported memory
				// pressure in the result frame, so this slot backs off
				// before taking more work instead of piling on.
				sr.noteAdmissionDeferral(addr)
				if !sleepCtx(ctx, d.admissionPause()) {
					return
				}
			}
			continue
		}
		if tf, isTF := err.(*taskFailure); isTF && tf.taskErr != nil {
			// The transport round-trip succeeded; the task itself failed.
			// The connection stays healthy either way.
			fails = 0
			switch {
			case tf.panicked:
				// A contained executor panic is worth a bounded number
				// of retries (it may be machine-local), but a task that
				// panics everywhere is poisoned: quarantine it with a
				// diagnostic instead of retrying forever.
				if n := sr.notePanic(pi); n >= d.panicRetryLimit() {
					sr.fail(fmt.Errorf("cluster: partition %d poisoned: %d contained panic(s), last on %s: %w",
						pi, n, addr, tf.taskErr))
					return
				}
				sr.abandon(pi, d.retries(), tf.taskErr, addr)
			case tf.retryable:
				// Environmental task failure (e.g. disk full during
				// spill): requeue like a transport failure.
				sr.abandon(pi, d.retries(), tf.taskErr, addr)
			default:
				sr.fail(tf.taskErr)
				return
			}
			continue
		}
		if isTimeout(err) {
			sr.noteDeadline(pi)
		}
		sr.abandon(pi, d.retries(), err, addr)
		dropConn()
		fails++
		if fails >= d.slotFailureLimit() {
			return
		}
	}
}

// sleepCtx sleeps for dur or until ctx is done; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, dur time.Duration) bool {
	if dur <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// isTimeout reports whether a transport error was caused by an expired
// read/write deadline (as opposed to a closed or reset connection).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// taskFailure distinguishes task errors (the executor ran the task and
// reported failure) from transport errors (retry elsewhere). Task
// errors are further classified by the executor's result flags:
// retryable (environmental, e.g. spill I/O — requeue) and panicked (a
// contained panic — retry up to the panic limit, then quarantine);
// unflagged task errors are deterministic and abort the stage.
type taskFailure struct {
	taskErr   error // executor-reported task failure
	ioErr     error // transport failure
	retryable bool
	panicked  bool
}

// Error implements error.
func (t *taskFailure) Error() string {
	if t.taskErr != nil {
		return t.taskErr.Error()
	}
	return t.ioErr.Error()
}

func (t *taskFailure) Unwrap() error {
	if t.taskErr != nil {
		return t.taskErr
	}
	return t.ioErr
}

// sendTask runs one task round trip on c. It returns pressured=true
// when the executor's result frame reported memory pressure at or
// above the admission threshold (the slot then defers its next
// dispatch).
func (d *Driver) sendTask(c *conn, sr *stageRun, pi, epoch int) (pressured bool, err error) {
	if tt := d.taskTimeout(); tt > 0 {
		_ = c.raw.SetDeadline(time.Now().Add(tt))
		defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
	}
	// Ship the stage first if this connection has not seen it yet —
	// once per stage per connection, so a reconnected (restarted)
	// executor receives it again, and broadcast tables the connection
	// already holds are not re-sent even across stages.
	if !c.sentStages[sr.fp] {
		msg := stageMsg{Fingerprint: sr.fp, Schema: sr.rel.Schema, Ops: sr.opsWire}
		for _, tbl := range sr.tables {
			if !c.sentTables[tbl.Hash] {
				msg.Tables = append(msg.Tables, tbl)
			}
		}
		if err := c.enc.Encode(frameHdr{Kind: frameStage}); err != nil {
			return false, &taskFailure{ioErr: err}
		}
		if err := c.enc.Encode(msg); err != nil {
			return false, &taskFailure{ioErr: err}
		}
		c.sentStages[sr.fp] = true
		for _, tbl := range msg.Tables {
			c.sentTables[tbl.Hash] = true
		}
		sr.noteStageShipped()
	}
	task := taskMsg{ID: uint64(pi), Epoch: uint64(epoch), Stage: sr.fp, Span: sr.spanFor(pi).ID()}
	if sr.segs != nil {
		// Segment-scheduled stage: the executor reads the segment file
		// itself; nothing to encode or ship.
		task.SegPath = sr.segs[pi].Path
		task.SegCols = sr.segs[pi].Cols
	} else {
		data, err := sr.encodedPartition(pi)
		if err != nil {
			// Encoding is driver-local and deterministic: abort, don't retry.
			return false, &taskFailure{taskErr: fmt.Errorf("cluster: task %d: encode partition: %w", pi, err)}
		}
		task.Data = data
	}
	if err := c.enc.Encode(frameHdr{Kind: frameTask}); err != nil {
		return false, &taskFailure{ioErr: err}
	}
	if err := c.enc.Encode(task); err != nil {
		return false, &taskFailure{ioErr: err}
	}
	var res resultMsg
	if err := c.dec.Decode(&res); err != nil {
		return false, &taskFailure{ioErr: err}
	}
	// Memory pressure rides on every result frame, success or failure
	// (gob-additive v3 fields; old executors leave them zero, which
	// reads as "no budget configured" and disables admission control).
	if thr := d.admissionThreshold(); thr > 0 && res.MemBudget > 0 {
		pressured = float64(res.MemUsed) >= thr*float64(res.MemBudget)
	}
	if res.Err != "" {
		return pressured, &taskFailure{
			taskErr:   fmt.Errorf("cluster: task %d: %s", pi, res.Err),
			retryable: res.Retryable,
			panicked:  res.Panicked,
		}
	}
	if res.ID != uint64(pi) || res.Epoch != uint64(epoch) {
		return pressured, &taskFailure{ioErr: fmt.Errorf("cluster: task id/epoch mismatch: sent %d/%d got %d/%d", pi, epoch, res.ID, res.Epoch)}
	}
	dstart := time.Now()
	rows, err := colcodec.Decode(sr.outSchema, res.Data)
	if err != nil {
		// A payload that gob-decoded but fails the columnar codec is
		// wire corruption: retryable, like any broken frame.
		return pressured, &taskFailure{ioErr: fmt.Errorf("cluster: task %d: decode result: %w", pi, err)}
	}
	driverDecode := time.Since(dstart)
	sr.noteDecode(driverDecode)
	// The round trip's I/O is complete: clear busy before the commit so
	// that, when this is the stage's last task, the stage-end watcher
	// the commit triggers sees an idle connection and leaves it for the
	// persistent pool instead of closing it.
	c.busy.Store(false)
	if sp := sr.spanFor(pi); sp != nil {
		// The executor's timing breakdown (echoed in the result) places
		// remote work on the driver's trace without clock agreement.
		sp.Event("decoded",
			telemetry.A("remote_decode_us", time.Duration(res.DecodeNs).Microseconds()),
			telemetry.A("driver_decode_us", driverDecode.Microseconds()))
		sp.Event("executed",
			telemetry.A("exec_us", time.Duration(res.ExecNs).Microseconds()),
			telemetry.A("remote_encode_us", time.Duration(res.EncodeNs).Microseconds()))
	}
	sr.commit(pi, rows)
	return pressured, nil
}
