package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ivnt/internal/cluster/faultproxy"
	"ivnt/internal/telemetry"
)

// TestChaosObservability runs a two-executor stage where one executor's
// connection is severed mid-result (kill+restart as the network sees
// it) and asserts the full observability contract: the trace carries
// reconnect and task_retry events, the Chrome trace_event export is
// Perfetto-loadable, a /metrics scrape shows cluster_reconnects_total
// advancing and non-zero latency histograms for every executed op
// kind, and /tasks reports every task done.
func TestChaosObservability(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.SeverAfter = ackLen(t, 1) + 32 // die inside the first result frame
	plan.Once = true                    // the "restarted" executor behaves
	proxy.SetPlan(plan)

	reg := telemetry.Default()
	beforeReconnects := reg.CounterValue("cluster_reconnects_total")
	beforeRetries := reg.CounterValue("cluster_task_retries_total")
	beforeTasks := reg.HistogramData("task_seconds")
	beforeOps := map[string]*telemetry.HistogramData{}
	for _, op := range []string{"filter", "addcolumn"} {
		beforeOps[op] = opHistogramData(t, reg, op)
	}

	tracer := telemetry.NewTracer()
	table := telemetry.NewTaskTable()
	// Heavy partitions keep the stage alive well past the severed
	// slot's reconnect backoff, so the reconnect is observed in-stage.
	rel := traceRel(60000, 12)
	drv := &Driver{
		Addrs:         []string{addrs[0], proxy.Addr()},
		MaxRetries:    4,
		ReconnectBase: 5 * time.Millisecond,
		Tracer:        tracer,
		Tasks:         table,
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.Reconnects == 0 || st.Retries == 0 {
		t.Fatalf("chaos run must reconnect and retry, stats = %+v", st)
	}

	// Span events from the fault paths.
	spans := tracer.Snapshot()
	if !telemetry.HasEvent(spans, "reconnect") {
		t.Fatal("trace missing reconnect event")
	}
	if !telemetry.HasEvent(spans, "task_retry") {
		t.Fatal("trace missing task_retry event")
	}
	for _, ev := range []string{"queued", "shipped", "decoded", "executed", "merged"} {
		if !telemetry.HasEvent(spans, ev) {
			t.Fatalf("trace missing lifecycle event %q", ev)
		}
	}

	// The exported trace must be a Perfetto-loadable trace_event doc.
	traceFile := filepath.Join(t.TempDir(), "chaos.trace.json")
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(traceFile, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var sawRetry bool
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("trace event %v missing Perfetto field %q", ev, field)
			}
		}
		if ev["name"] == "task_retry" {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("exported trace has no task_retry instant event")
	}

	// Registry counters advanced, and a live /metrics scrape agrees.
	if d := reg.CounterValue("cluster_reconnects_total") - beforeReconnects; d < 1 {
		t.Fatalf("cluster_reconnects_total advanced by %d, want >= 1", d)
	}
	if d := reg.CounterValue("cluster_task_retries_total") - beforeRetries; d < 1 {
		t.Fatalf("cluster_task_retries_total advanced by %d, want >= 1", d)
	}
	srv, err := telemetry.StartDebugServer("127.0.0.1:0", telemetry.NewDebugMux(reg, tracer, table))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(body)
	if !strings.Contains(scrape, "cluster_reconnects_total{") {
		t.Fatalf("/metrics scrape missing cluster_reconnects_total:\n%.2000s", scrape)
	}
	// Every op kind the stage executed must show a non-zero latency
	// histogram (stage = filter + addcolumn; the executors share this
	// process's registry).
	for op, before := range beforeOps {
		if d := opHistogramData(t, reg, op).Sub(before); d.Count < 1 {
			t.Fatalf("engine_op_seconds{op=%q} did not advance", op)
		}
		if !strings.Contains(scrape, `engine_op_seconds_count{op="`+op+`"}`) {
			t.Fatalf("/metrics scrape missing engine_op_seconds{op=%q}", op)
		}
	}
	if d := reg.HistogramData("task_seconds").Sub(beforeTasks); d.Count < 12 {
		t.Fatalf("task_seconds advanced by %d observations, want >= 12", d.Count)
	}

	// /tasks reports the stage fully drained.
	resp, err = http.Get("http://" + srv.Addr() + "/tasks")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.TasksSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/tasks not JSON: %v\n%s", err, body)
	}
	if snap.Pending != 0 || len(snap.Tasks) != 12 {
		t.Fatalf("/tasks after stage = %+v", snap)
	}
	for _, ti := range snap.Tasks {
		if ti.State != telemetry.TaskDone {
			t.Fatalf("task %d not done: %+v", ti.ID, ti)
		}
	}
}

// opHistogramData snapshots one op's engine_op_seconds series via the
// registry's merged family view filtered by label — enough for delta
// assertions because tests in this package run sequentially.
func opHistogramData(t *testing.T, reg *telemetry.Registry, op string) *telemetry.HistogramData {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name != "engine_op_seconds" {
			continue
		}
		for _, m := range fam.Metrics {
			if len(m.LabelValues) == 1 && m.LabelValues[0] == op {
				return m.Hist
			}
		}
	}
	t.Fatalf("engine_op_seconds{op=%q} not registered", op)
	return nil
}

// TestSpeculationTraceEvents: a stalling executor forces the straggler
// monitor to fire; the stage span must carry speculation events and
// the task table must record the speculative launches.
func TestSpeculationTraceEvents(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	proxy, err := faultproxy.New(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	plan := faultproxy.Passthrough()
	plan.StallAfter = ackLen(t, 1)
	proxy.SetPlan(plan)

	tracer := telemetry.NewTracer()
	table := telemetry.NewTaskTable()
	rel := traceRel(60000, 12)
	drv := &Driver{
		Addrs:               []string{addrs[0], proxy.Addr()},
		TaskTimeout:         -1, // disabled: only speculation can save the stage
		SpeculationFactor:   2,
		SpeculationMin:      20 * time.Millisecond,
		SpeculationInterval: 5 * time.Millisecond,
		Tracer:              tracer,
		Tasks:               table,
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if st.Speculative == 0 {
		t.Fatalf("expected speculative launches, stats = %+v", st)
	}
	spans := tracer.Snapshot()
	if got := telemetry.CountEvents(spans, "speculation"); got < 1 {
		t.Fatalf("speculation events = %d, want >= 1 (stats %+v)", got, st)
	}
	var specTasks int
	for _, ti := range table.Snapshot().Tasks {
		specTasks += ti.Speculative
	}
	if specTasks != st.Speculative {
		t.Fatalf("task table records %d speculative launches, stats say %d", specTasks, st.Speculative)
	}
}

// TestLiveStatsRaceSafety runs a cluster stage while hammering every
// concurrent read surface — LiveStats, the registry snapshot, the
// Prometheus writer, the tracer, and the task table — from other
// goroutines. The assertions are light; the point is that `make race`
// runs this with the race detector on and proves stats accumulation is
// race-safe by construction.
func TestLiveStatsRaceSafety(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	tracer := telemetry.NewTracer()
	table := telemetry.NewTaskTable()
	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 2, Tracer: tracer, Tasks: table}
	rel := traceRel(30000, 16)

	stopSnap := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopSnap:
					return
				default:
				}
				_ = drv.LiveStats()
				_ = telemetry.Default().WritePrometheus(io.Discard)
				_ = tracer.Snapshot()
				_ = table.Snapshot()
			}
		}()
	}
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	close(stopSnap)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
	if live := drv.LiveStats(); live.Tasks != st.Tasks || live.RowsOut != st.RowsOut {
		t.Fatalf("post-stage LiveStats %+v disagrees with returned stats %+v", live, st)
	}
}
