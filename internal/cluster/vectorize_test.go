package cluster

import (
	"context"
	"testing"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/telemetry"
)

// TestClusterUsesVectorizedEngine asserts that remote executors run
// stages through the vectorized engine path: a driver RunStage against
// a real TCP cluster must advance engine_vectorized_batches_total
// (StartLocalCluster executors live in-process, so they share the
// default telemetry registry), and must leave it untouched when the
// Vectorize toggle is off.
func TestClusterUsesVectorizedEngine(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	reg := telemetry.Default()
	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 2}

	before := reg.CounterValue("engine_vectorized_batches_total")
	if _, _, err := drv.RunStage(ctx, traceRel(5000, 4), stageOps()); err != nil {
		t.Fatal(err)
	}
	after := reg.CounterValue("engine_vectorized_batches_total")
	if after <= before {
		t.Fatalf("engine_vectorized_batches_total did not advance across a cluster stage: before=%d after=%d", before, after)
	}

	prev := engine.Vectorize.Load()
	engine.Vectorize.Store(false)
	defer engine.Vectorize.Store(prev)
	if _, _, err := drv.RunStage(ctx, traceRel(5000, 4), stageOps()); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("engine_vectorized_batches_total"); got != after {
		t.Fatalf("vectorized batch counter moved with Vectorize off: %d -> %d", after, got)
	}
}
