package cluster

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/memgov"
)

// resetExecDebug disarms the engine debug hooks shared by the
// in-process executors when the test ends.
func resetExecDebug(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		engine.DebugForceSpill.Store(false)
		engine.SetDebugSpillFailure(nil)
		engine.SetDebugSpillTruncate(0)
		engine.SetDebugApplyHook(nil)
	})
}

// spillyOps is a stage whose sort actually exercises the governed
// kernel on the executor side.
func spillyOps() []engine.OpDesc {
	return []engine.OpDesc{
		engine.Filter("mid >= 0"),
		engine.SortWithin("mid", "t"),
	}
}

// TestPanicQuarantine: every task attempt panics inside the executor.
// The driver must retry a contained panic a bounded number of times,
// then quarantine the partition as poisoned and abort the stage with a
// diagnosable error — and the executors must survive to run the next
// stage.
func TestPanicQuarantine(t *testing.T) {
	resetExecDebug(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	engine.SetDebugApplyHook(func() { panic("poisoned partition") })
	drv := &Driver{
		Addrs:             addrs,
		MaxRetries:        8,
		ReconnectBase:     10 * time.Millisecond,
		SpeculationFactor: -1,
	}
	before := mTaskPanics.Value()
	_, _, err = drv.RunStage(ctx, traceRel(200, 4), stageOps())
	if err == nil {
		t.Fatal("a permanently panicking stage must fail")
	}
	if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("quarantine diagnostic missing, got: %v", err)
	}
	if !strings.Contains(err.Error(), "task panic") {
		t.Fatalf("stage error must carry the contained panic, got: %v", err)
	}
	if d := mTaskPanics.Value() - before; d < 2 {
		t.Fatalf("cluster_task_panics_total delta = %d, want >= 2 (retry before quarantine)", d)
	}

	// Containment contract: the same executors run the next stage.
	engine.SetDebugApplyHook(nil)
	rel := traceRel(200, 4)
	got, _, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatalf("executors unusable after contained panics: %v", err)
	}
	mustMatchLocal(t, ctx, got, rel, stageOps())
}

// TestPanicRetryRecovers: a task panics exactly once; the retried
// attempt succeeds, so a transient panic costs one requeue, not the
// stage.
func TestPanicRetryRecovers(t *testing.T) {
	resetExecDebug(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	var once atomic.Bool
	engine.SetDebugApplyHook(func() {
		if once.CompareAndSwap(false, true) {
			panic("transient")
		}
	})
	drv := &Driver{
		Addrs:             addrs,
		MaxRetries:        8,
		ReconnectBase:     10 * time.Millisecond,
		SpeculationFactor: -1,
	}
	before := mTaskPanics.Value()
	rel := traceRel(300, 6)
	got, _, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatalf("one transient panic must not fail the stage: %v", err)
	}
	if d := mTaskPanics.Value() - before; d != 1 {
		t.Fatalf("cluster_task_panics_total delta = %d, want exactly 1", d)
	}
	engine.SetDebugApplyHook(nil)
	mustMatchLocal(t, ctx, got, rel, stageOps())
}

// TestRetryableSpillErrorRequeued: spill I/O fails (injected ENOSPC) on
// the first attempts; the error is flagged retryable on the wire, so
// the driver requeues the task instead of aborting, and the stage
// completes once the "disk" recovers — without killing any executor.
func TestRetryableSpillErrorRequeued(t *testing.T) {
	resetExecDebug(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	engine.DebugForceSpill.Store(true)
	var remaining atomic.Int64
	remaining.Store(2)
	engine.SetDebugSpillFailure(func(op string) error {
		if op == "create" && remaining.Add(-1) >= 0 {
			return errENOSPC{}
		}
		return nil
	})
	drv := &Driver{
		Addrs:             addrs,
		MaxRetries:        8,
		ReconnectBase:     10 * time.Millisecond,
		SpeculationFactor: -1,
	}
	rel := traceRel(400, 8)
	got, st, err := drv.RunStage(ctx, rel, spillyOps())
	if err != nil {
		t.Fatalf("stage must survive transient spill failures: %v", err)
	}
	if st.Retries == 0 {
		t.Fatalf("retryable task errors must be requeued, stats = %+v", st)
	}
	engine.SetDebugSpillFailure(nil)
	engine.DebugForceSpill.Store(false)
	mustMatchLocal(t, ctx, got, rel, spillyOps())
}

type errENOSPC struct{}

func (errENOSPC) Error() string { return "no space left on device" }

// TestPermanentSpillFailureFailsStageNotProcess: spill I/O that never
// recovers must exhaust the retry budget and fail the stage with the
// underlying cause — while the executors stay alive for the next stage.
func TestPermanentSpillFailureFailsStageNotProcess(t *testing.T) {
	resetExecDebug(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	engine.DebugForceSpill.Store(true)
	engine.SetDebugSpillFailure(func(op string) error {
		if op == "create" {
			return errENOSPC{}
		}
		return nil
	})
	drv := &Driver{
		Addrs:             addrs,
		MaxRetries:        2,
		ReconnectBase:     10 * time.Millisecond,
		SpeculationFactor: -1,
	}
	_, _, err = drv.RunStage(ctx, traceRel(100, 2), spillyOps())
	if err == nil {
		t.Fatal("permanent spill failure must fail the stage")
	}
	if !strings.Contains(err.Error(), "no space left on device") {
		t.Fatalf("stage error must carry the spill cause, got: %v", err)
	}

	engine.SetDebugSpillFailure(nil)
	engine.DebugForceSpill.Store(false)
	rel := traceRel(100, 2)
	got, _, err := drv.RunStage(ctx, rel, spillyOps())
	if err != nil {
		t.Fatalf("executor unusable after spill failures: %v", err)
	}
	mustMatchLocal(t, ctx, got, rel, spillyOps())
}

// TestClusterSpillMatchesLocal runs governed sort work over the wire
// under a budget small enough that every task spills, and asserts the
// output is row-for-row identical to ungoverned local execution.
func TestClusterSpillMatchesLocal(t *testing.T) {
	resetExecDebug(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(8 << 10)
	defer g.SetBudget(old)

	rel := traceRel(4000, 8)
	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond}
	got, _, err := drv.RunStage(ctx, rel, spillyOps())
	if err != nil {
		t.Fatal(err)
	}
	g.SetBudget(old)
	mustMatchLocal(t, ctx, got, rel, spillyOps())
}

// TestAdmissionControlDefers: an executor under memory pressure (its
// governor reports reservations above the threshold) must slow the
// driver down — dispatch pauses are counted as admission deferrals —
// without failing any task.
func TestAdmissionControlDefers(t *testing.T) {
	resetExecDebug(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// The in-process executors share the default governor: give it a
	// budget and pin a reservation above the admission threshold, the
	// picture a loaded executor paints in its result frames.
	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(1 << 20)
	held := g.ForceGrant(1 << 20)
	defer func() {
		held.Release()
		g.SetBudget(old)
	}()

	rel := traceRel(400, 8)
	drv := &Driver{
		Addrs:             addrs,
		ReconnectBase:     10 * time.Millisecond,
		AdmissionPause:    time.Millisecond,
		SpeculationFactor: -1,
	}
	before := mAdmissionDeferrals.Value()
	got, st, err := drv.RunStage(ctx, rel, stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if st.AdmissionDeferrals == 0 {
		t.Fatalf("pressured executors must defer dispatch, stats = %+v", st)
	}
	if d := mAdmissionDeferrals.Value() - before; d == 0 {
		t.Fatal("cluster_admission_deferrals_total did not move")
	}

	held.Release()
	g.SetBudget(old)
	mustMatchLocal(t, ctx, got, rel, stageOps())

	// With the threshold disabled the same pressure must not defer.
	g.SetBudget(1 << 20)
	held2 := g.ForceGrant(1 << 20)
	defer func() {
		held2.Release()
		g.SetBudget(old)
	}()
	drv2 := &Driver{
		Addrs:              addrs,
		ReconnectBase:      10 * time.Millisecond,
		AdmissionThreshold: -1,
		SpeculationFactor:  -1,
	}
	_, st2, err := drv2.RunStage(ctx, traceRel(100, 4), stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if st2.AdmissionDeferrals != 0 {
		t.Fatalf("threshold disabled but AdmissionDeferrals = %d", st2.AdmissionDeferrals)
	}
}

// TestResultMsgCarriesGovernorSnapshot pins the wire contract: every
// result frame reports the executor governor's usage and budget, the
// inputs to driver-side admission control.
func TestResultMsgCarriesGovernorSnapshot(t *testing.T) {
	resetExecDebug(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(64 << 20)
	defer g.SetBudget(old)

	// No held reservations: tasks must report their budget and a usage
	// below the admission threshold, so nothing defers.
	drv := &Driver{Addrs: addrs, ReconnectBase: 10 * time.Millisecond, SpeculationFactor: -1}
	_, st, err := drv.RunStage(ctx, traceRel(100, 4), stageOps())
	if err != nil {
		t.Fatal(err)
	}
	if st.AdmissionDeferrals != 0 {
		t.Fatalf("idle governor must not defer, stats = %+v", st)
	}
}
