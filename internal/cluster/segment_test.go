package cluster

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/segstore"
)

// segTestStore builds a store of nSegs segments with disjoint,
// monotonically increasing ts ranges — the natural clustering a
// time-ordered trace gives zone maps to work with.
func segTestStore(t *testing.T, nSegs, rowsPerSeg int) *segstore.Store {
	t.Helper()
	s := relation.NewSchema(
		relation.Column{Name: "ts", Kind: relation.KindInt},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sid", Kind: relation.KindString},
	)
	st, err := segstore.Open(t.TempDir(), s, segstore.Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < nSegs; g++ {
		rows := make([]relation.Row, rowsPerSeg)
		for i := range rows {
			ts := g*rowsPerSeg + i
			rows[i] = relation.Row{
				relation.Int(int64(ts)),
				relation.Float(math.Sin(float64(ts))),
				relation.Str(fmt.Sprintf("sig-%d", ts%7)),
			}
		}
		if err := st.AppendSegment(rows); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// bitEq compares relations partition-by-partition, cell-by-cell, with
// float cells compared by bit pattern.
func bitEq(a, b *relation.Relation) bool {
	if !a.Schema.Equal(b.Schema) || len(a.Partitions) != len(b.Partitions) {
		return false
	}
	for pi := range a.Partitions {
		pa, pb := a.Partitions[pi], b.Partitions[pi]
		if len(pa) != len(pb) {
			return false
		}
		for ri := range pa {
			if len(pa[ri]) != len(pb[ri]) {
				return false
			}
			for ci := range pa[ri] {
				va, vb := pa[ri][ci], pb[ri][ci]
				if va.K != vb.K {
					return false
				}
				if va.K == relation.KindFloat {
					if math.Float64bits(va.F) != math.Float64bits(vb.F) {
						return false
					}
				} else if !reflect.DeepEqual(va, vb) {
					return false
				}
			}
		}
	}
	return true
}

// TestSegmentStageMatchesLocal proves segment-scheduled cluster scans:
// executors read the segment files themselves (taskMsg carries a path,
// not rows), zone maps prune driver-side, and the result is bitwise
// identical to the local executor running the same scan.
func TestSegmentStageMatchesLocal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	st := segTestStore(t, 6, 50)
	drv := &Driver{Addrs: addrs, SlotsPerExecutor: 2}

	for _, ops := range [][]engine.OpDesc{
		{engine.Filter("ts < 120"), engine.Project("ts", "sid")},
		{engine.Filter("ts >= 100 && ts < 160"), engine.AddColumn("v2", relation.KindFloat, "val * 2.0")},
		{engine.Project("sid", "val")},
		{engine.Filter("ts < -1")}, // prunes every segment
	} {
		want, _, err := engine.ScanStage(ctx, engine.NewLocal(2), st, ops)
		if err != nil {
			t.Fatal(err)
		}
		got, cst, err := engine.ScanStage(ctx, drv, st, ops)
		if err != nil {
			t.Fatal(err)
		}
		if !bitEq(want, got) {
			t.Fatalf("ops %v: cluster segment scan diverged from local (%d vs %d rows)",
				ops, got.NumRows(), want.NumRows())
		}
		if cst.Partitions != st.NumSegments() {
			t.Fatalf("ops %v: %d partitions, want one per segment (%d)", ops, cst.Partitions, st.NumSegments())
		}
	}
}

// TestSegmentStagePrunesWithoutShipping asserts the scheduling
// contract directly: pruned refs never become wire tasks, live refs
// ship as paths with no partition payload, and RowsIn counts only the
// rows executors actually decode.
func TestSegmentStagePrunesWithoutShipping(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	st := segTestStore(t, 4, 25)
	drv := &Driver{Addrs: addrs}

	ops := []engine.OpDesc{engine.Filter("ts < 30"), engine.Project("ts")}
	pd, err := engine.FoldPushdown(st.ScanSchema(), ops)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := st.Segments(pd)
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, r := range refs {
		if r.Pruned {
			pruned++
		}
	}
	if pruned != 2 {
		t.Fatalf("want segments 2 and 3 pruned, got %d of %+v", pruned, refs)
	}
	out, cst, err := engine.ScanStage(ctx, drv, st, ops)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 30 {
		t.Fatalf("scan returned %d rows, want 30", out.NumRows())
	}
	if wantIn := (len(refs) - pruned) * 25; cst.RowsIn != wantIn {
		t.Fatalf("RowsIn %d, want %d (pruned segments never decode)", cst.RowsIn, wantIn)
	}
	// Pruned partitions exist but are empty — indexes stay stable.
	if len(out.Partitions) != len(refs) {
		t.Fatalf("%d output partitions, want %d", len(out.Partitions), len(refs))
	}
	for pi := 2; pi < 4; pi++ {
		if len(out.Partitions[pi]) != 0 {
			t.Fatalf("pruned partition %d has %d rows", pi, len(out.Partitions[pi]))
		}
	}
}

// TestSegmentStageBadPath: an unreadable segment path exhausts its
// retries (read failures are environmental) and aborts the stage with
// the read error, not a hang.
func TestSegmentStageBadPath(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs, stop, err := StartLocalCluster(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	drv := &Driver{Addrs: addrs, MaxRetries: 1}
	s := relation.NewSchema(relation.Column{Name: "ts", Kind: relation.KindInt})
	refs := []engine.SegmentRef{{Path: "/nonexistent/seg-000000.ivsg", Rows: 10}}
	if _, _, err := drv.RunSegmentStage(ctx, refs, s, []engine.OpDesc{engine.Filter("ts > 0")}); err == nil {
		t.Fatal("unreadable segment must fail the stage")
	}
}
