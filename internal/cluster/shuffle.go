// Driver-side shuffle orchestration (protocol v4, docs/SHUFFLE.md).
//
// A shuffle stage runs in three driver-visible phases. Begin: every
// executor receives the shuffle's configuration — the peer endpoint
// map, fan-out, hash keys and payload schema — once per connection,
// re-sent on reconnect exactly like stage shipments. Map: each input
// partition becomes one map task dispatched through a retrying work
// queue; the executor runs the shipped pipeline over it, splits the
// output by key hash (engine.ShuffleSplit, whose bucket assignment is
// relation.Row.Bucket — the same authority Relation.PartitionByKey
// uses), and pushes every bucket directly to the partition's owner,
// never through the driver, so bytes-on-wire scale with the data
// (O(rows)) instead of with executors × build-side as broadcast does.
// Barrier: the driver asks every executor which map sources its owned
// partitions are still missing; lost outputs (a crashed or restarted
// executor) re-enqueue exactly those map tasks, and the stage proceeds
// only when every (partition, source) pair has committed. Reduces then
// run partition-locally on the owners: collect (ShuffleMaterialize),
// final aggregation (ShuffleAggregate), or the broadcast-join kernel
// against a second shuffle's partition (ShuffleJoin).
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// Shuffle IDs are unique per driver process: a time-seeded base plus a
// counter, so concurrent drivers sharing in-process executors (tests)
// never collide.
var (
	shuffleIDBase uint64 = uint64(time.Now().UnixNano())
	shuffleIDSeq  atomic.Uint64
)

func nextShuffleID() uint64 {
	return shuffleIDBase + shuffleIDSeq.Add(1)
}

// Interface conformance: the Driver is a ShuffleExecutor, so the
// planner can select shuffle plans on a cluster.
var _ engine.ShuffleExecutor = (*Driver)(nil)

// DefaultShuffleParts implements engine.ShuffleExecutor: the fan-out
// used when a plan does not pick one — ShuffleParts if configured, else
// two output partitions per executor.
func (d *Driver) DefaultShuffleParts() int {
	if d.ShuffleParts > 0 {
		return d.ShuffleParts
	}
	p := 2 * len(d.Addrs)
	if p < 2 {
		p = 2
	}
	return p
}

// shufflePeers returns the endpoint map advertised to executors.
func (d *Driver) shufflePeers() []string {
	if len(d.ShufflePeers) == len(d.Addrs) && len(d.ShufflePeers) > 0 {
		return d.ShufflePeers
	}
	return d.Addrs
}

// shuffleSession is one shuffle stage in flight: configuration, the
// map input, per-task encodings, and the per-executor control
// connections the barrier and reduce phases run on.
type shuffleSession struct {
	d         *Driver
	id        uint64
	parts     int
	keys      []string
	schema    relation.Schema // map output = push payload schema
	endpoints []string
	sources   []uint64 // all map task ids (input partition indexes)

	rel     *relation.Relation
	fp      uint64 // map stage fingerprint; 0 when the map runs no ops
	opsWire []engine.OpDesc
	tables  []tableMsg

	stats *engine.StatsCollector

	encMu    sync.Mutex
	encParts [][]byte

	ctrlMu sync.Mutex
	ctrl   map[string]*conn

	// harvested tracks how much of each connection's byte counters has
	// already been folded into stats, so harvest can run both before the
	// stats snapshot (live control conns) and again at free() without
	// double-counting.
	hMu       sync.Mutex
	harvested map[*conn][2]int64
}

// newShuffleSession validates the plan and prepares the map-stage
// shipment. stats is shared so multi-shuffle plans (joins) accumulate
// into one collector.
func (d *Driver) newShuffleSession(rel *relation.Relation, ops []engine.OpDesc, keys []string, parts int, stats *engine.StatsCollector) (*shuffleSession, error) {
	if len(d.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: driver has no executor addresses")
	}
	if parts < 1 {
		parts = d.DefaultShuffleParts()
	}
	outSchema, err := engine.OutputSchema(rel.Schema, ops)
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("cluster: shuffle needs key columns")
	}
	for _, k := range keys {
		if !outSchema.Has(k) {
			return nil, fmt.Errorf("cluster: shuffle key %q missing from map output schema", k)
		}
	}
	ss := &shuffleSession{
		d:         d,
		id:        nextShuffleID(),
		parts:     parts,
		keys:      keys,
		schema:    outSchema,
		endpoints: d.shufflePeers(),
		rel:       rel,
		stats:     stats,
		encParts:  make([][]byte, len(rel.Partitions)),
		ctrl:      map[string]*conn{},
		harvested: map[*conn][2]int64{},
	}
	if len(ops) > 0 {
		ss.fp, ss.opsWire, ss.tables, err = d.stageWire(rel.Schema, ops)
		if err != nil {
			return nil, err
		}
	}
	ss.sources = make([]uint64, len(rel.Partitions))
	for i := range ss.sources {
		ss.sources[i] = uint64(i)
	}
	return ss, nil
}

// beginMsg is the shuffle's configuration frame.
func (ss *shuffleSession) beginMsg() *shuffleBeginMsg {
	var pushMs int64
	if ss.d.ShufflePushTimeout > 0 {
		pushMs = ss.d.ShufflePushTimeout.Milliseconds()
		if pushMs < 1 {
			pushMs = 1
		}
	}
	return &shuffleBeginMsg{
		ID:            ss.id,
		Endpoints:     ss.endpoints,
		Parts:         ss.parts,
		Keys:          ss.keys,
		Schema:        ss.schema,
		Compress:      ss.d.Compress,
		PushTimeoutMs: pushMs,
	}
}

// ensureBegin opens the shuffle on one connection if it has not been
// opened there yet. addrIdx is the executor's slot in the endpoint map.
func (ss *shuffleSession) ensureBegin(c *conn, addrIdx int) error {
	if c.sentShuffles[ss.id] {
		return nil
	}
	msg := ss.beginMsg()
	msg.SelfIdx = addrIdx
	if err := c.enc.Encode(frameHdr{Kind: frameShuffleBegin}); err != nil {
		return &taskFailure{ioErr: err}
	}
	if err := c.enc.Encode(msg); err != nil {
		return &taskFailure{ioErr: err}
	}
	var ack shuffleBeginAck
	if err := c.dec.Decode(&ack); err != nil {
		return &taskFailure{ioErr: err}
	}
	if ack.Err != "" {
		// A rejected begin is a plan error — deterministic, not worth a
		// retry elsewhere.
		return &taskFailure{taskErr: fmt.Errorf("cluster: shuffle begin rejected: %s", ack.Err)}
	}
	c.sentShuffles[ss.id] = true
	return nil
}

// encodedPartition caches the columnar encoding of map input pi.
func (ss *shuffleSession) encodedPartition(pi int) ([]byte, error) {
	ss.encMu.Lock()
	if b := ss.encParts[pi]; b != nil {
		ss.encMu.Unlock()
		return b, nil
	}
	ss.encMu.Unlock()
	start := time.Now()
	b, err := colcodec.Encode(ss.rel.Schema, ss.rel.Partitions[pi], colcodec.Options{Compress: ss.d.Compress, Level: ss.d.CompressLevel})
	if err != nil {
		return nil, err
	}
	ss.stats.EncodeNs.Add(int64(time.Since(start)))
	ss.encMu.Lock()
	if ss.encParts[pi] == nil {
		ss.encParts[pi] = b
	} else {
		b = ss.encParts[pi]
	}
	ss.encMu.Unlock()
	return b, nil
}

// harvest folds one connection's byte counters into the session stats.
// Delta-based and idempotent: only bytes not yet harvested are added,
// so finishStats can fold live control connections in before the
// snapshot and free() can harvest the same conns again afterwards.
func (ss *shuffleSession) harvest(c *conn) {
	ss.hMu.Lock()
	prev := ss.harvested[c]
	dw, dr := c.count.written-prev[0], c.count.read-prev[1]
	ss.harvested[c] = [2]int64{c.count.written, c.count.read}
	ss.hMu.Unlock()
	ss.stats.BytesSent.Add(dw)
	ss.stats.BytesRecv.Add(dr)
	mBytesSent.Add(dw)
	mBytesRecv.Add(dr)
}

// harvestCtrl folds the live control connections' counters into stats
// (they stay open for free()).
func (ss *shuffleSession) harvestCtrl() {
	ss.ctrlMu.Lock()
	conns := make([]*conn, 0, len(ss.ctrl))
	for _, c := range ss.ctrl {
		conns = append(conns, c)
	}
	ss.ctrlMu.Unlock()
	for _, c := range conns {
		ss.harvest(c)
	}
}

// addrIdx maps an executor address to its endpoint-map slot.
func (ss *shuffleSession) addrIdx(addr string) int {
	for i, a := range ss.d.Addrs {
		if a == addr {
			return i
		}
	}
	return 0
}

// mapRun is the retrying work queue of one map round. A slimmer
// stageRun: no speculation, no admission control, no result payloads —
// map results are counters, the data went to the peers.
type mapRun struct {
	ss *shuffleSession

	mu       sync.Mutex
	work     chan int
	closed   bool
	pending  int
	done     []bool
	attempts []int
	epoch    []int
	firstErr error
	cancel   context.CancelFunc
}

func (mr *mapRun) finished() bool {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return mr.closed
}

func (mr *mapRun) closeWorkLocked() {
	if !mr.closed {
		mr.closed = true
		close(mr.work)
	}
}

func (mr *mapRun) fail(err error) {
	mr.mu.Lock()
	if mr.firstErr == nil {
		mr.firstErr = err
	}
	mr.closeWorkLocked()
	mr.mu.Unlock()
	mr.cancel()
}

// dispatch registers one launch of map task pi and returns its epoch.
func (mr *mapRun) dispatch(pi int) (int, bool) {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	if mr.closed || mr.done[pi] {
		return 0, false
	}
	mr.epoch[pi]++
	return mr.epoch[pi], true
}

// commit records a completed map task; the first completion wins
// (pushes deduplicate receiver-side by (partition, source)).
func (mr *mapRun) commit(pi int, ack *shuffleMapAck) {
	mr.mu.Lock()
	if mr.done[pi] || mr.closed {
		mr.mu.Unlock()
		return
	}
	mr.done[pi] = true
	mr.pending--
	finished := mr.pending == 0
	if finished {
		mr.closeWorkLocked()
	}
	mr.mu.Unlock()
	mr.ss.stats.Tasks.Add(1)
	mr.ss.stats.ShuffleBytesPushed.Add(ack.PushedBytes)
	if finished {
		mr.cancel()
	}
}

// abandon requeues a failed launch, or fails the round when the retry
// budget is gone.
func (mr *mapRun) abandon(pi int, cause error, addr string) {
	mr.mu.Lock()
	if mr.done[pi] || mr.closed {
		mr.mu.Unlock()
		return
	}
	mr.attempts[pi]++
	attempts := mr.attempts[pi]
	tooMany := attempts > mr.ss.d.retries()
	if !tooMany {
		mr.work <- pi
	}
	mr.mu.Unlock()
	mr.ss.stats.Retries.Add(1)
	mRetries.Inc()
	if tooMany {
		mr.fail(fmt.Errorf("cluster: shuffle map %d failed %d times (last on %s): %w", pi, attempts, addr, cause))
	}
}

// runMaps dispatches the given map tasks and blocks until all
// committed or the round failed.
func (ss *shuffleSession) runMaps(ctx context.Context, tasks []int) error {
	if len(tasks) == 0 {
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	n := len(ss.rel.Partitions)
	mr := &mapRun{
		ss:       ss,
		work:     make(chan int, len(tasks)*(ss.d.retries()+2)),
		pending:  len(tasks),
		done:     make([]bool, n),
		attempts: make([]int, n),
		epoch:    make([]int, n),
		cancel:   cancel,
	}
	for i := range mr.done {
		mr.done[i] = true
	}
	for _, pi := range tasks {
		mr.done[pi] = false
		mr.work <- pi
	}

	var wg sync.WaitGroup
	for _, addr := range ss.d.Addrs {
		for s := 0; s < ss.d.slots(); s++ {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				ss.runMapSlot(cctx, addr, mr)
			}(addr)
		}
	}
	wg.Wait()

	mr.mu.Lock()
	firstErr, pending := mr.firstErr, mr.pending
	mr.mu.Unlock()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if firstErr != nil {
		return firstErr
	}
	if pending > 0 {
		return fmt.Errorf("cluster: %d shuffle map task(s) undeliverable: no executor reachable", pending)
	}
	return nil
}

// runMapSlot owns one executor connection for the duration of a map
// round, reconnecting with backoff like RunStage's slots.
func (ss *shuffleSession) runMapSlot(ctx context.Context, addr string, mr *mapRun) {
	d := ss.d
	var c *conn
	var stopWatch func() bool
	closeConn := func() {
		if c != nil {
			if stopWatch != nil {
				stopWatch()
			}
			c.close()
			ss.harvest(c)
			c = nil
		}
	}
	defer closeConn()

	fails := 0
	dialed := false
	for {
		if ctx.Err() != nil || mr.finished() {
			return
		}
		if c == nil {
			if fails > 0 {
				if !sleepCtx(ctx, d.backoff(fails)) {
					return
				}
			}
			nc, err := d.connect(ctx, addr)
			if err != nil {
				fails++
				if fails >= d.slotFailureLimit() {
					return
				}
				continue
			}
			c = nc
			stopWatch = context.AfterFunc(ctx, func() { nc.close() })
			if dialed || fails > 0 {
				ss.stats.Reconnects.Add(1)
				mReconnects.With(addr).Inc()
			}
			dialed = true
		}
		var pi int
		var ok bool
		select {
		case <-ctx.Done():
			return
		case pi, ok = <-mr.work:
			if !ok {
				return
			}
		}
		ep, ok := mr.dispatch(pi)
		if !ok {
			continue
		}
		err := ss.sendMap(c, mr, addr, pi, ep)
		if err == nil {
			fails = 0
			continue
		}
		if tf, isTF := err.(*taskFailure); isTF && tf.taskErr != nil {
			fails = 0
			if tf.retryable || tf.panicked {
				mr.abandon(pi, tf.taskErr, addr)
			} else {
				mr.fail(tf.taskErr)
				return
			}
			continue
		}
		if isTimeout(err) {
			ss.stats.DeadlineHits.Add(1)
			mDeadlineHits.Inc()
		}
		mr.abandon(pi, err, addr)
		closeConn()
		fails++
		if fails >= d.slotFailureLimit() {
			return
		}
	}
}

// sendMap runs one map-task round trip: begin and stage shipments as
// needed, then the task frame and its ack.
func (ss *shuffleSession) sendMap(c *conn, mr *mapRun, addr string, pi, epoch int) error {
	d := ss.d
	started := time.Now()
	if tt := d.taskTimeout(); tt > 0 {
		_ = c.raw.SetDeadline(time.Now().Add(tt))
		defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
	}
	if err := ss.ensureBegin(c, ss.addrIdx(addr)); err != nil {
		return err
	}
	if ss.fp != 0 && !c.sentStages[ss.fp] {
		msg := stageMsg{Fingerprint: ss.fp, Schema: ss.rel.Schema, Ops: ss.opsWire}
		for _, tbl := range ss.tables {
			if !c.sentTables[tbl.Hash] {
				msg.Tables = append(msg.Tables, tbl)
			}
		}
		if err := c.enc.Encode(frameHdr{Kind: frameStage}); err != nil {
			return &taskFailure{ioErr: err}
		}
		if err := c.enc.Encode(msg); err != nil {
			return &taskFailure{ioErr: err}
		}
		c.sentStages[ss.fp] = true
		for _, tbl := range msg.Tables {
			c.sentTables[tbl.Hash] = true
		}
		ss.stats.StagesShipped.Add(1)
		mStagesShipped.Inc()
	}
	data, err := ss.encodedPartition(pi)
	if err != nil {
		return &taskFailure{taskErr: fmt.Errorf("cluster: shuffle map %d: encode partition: %w", pi, err)}
	}
	task := shuffleMapMsg{ID: uint64(pi), Epoch: uint64(epoch), Shuffle: ss.id, Stage: ss.fp, Data: data}
	if err := c.enc.Encode(frameHdr{Kind: frameShuffleMap}); err != nil {
		return &taskFailure{ioErr: err}
	}
	if err := c.enc.Encode(task); err != nil {
		return &taskFailure{ioErr: err}
	}
	var ack shuffleMapAck
	if err := c.dec.Decode(&ack); err != nil {
		return &taskFailure{ioErr: err}
	}
	if ack.Err != "" {
		return &taskFailure{
			taskErr:   fmt.Errorf("cluster: shuffle map %d: %s", pi, ack.Err),
			retryable: ack.Retryable,
			panicked:  ack.Panicked,
		}
	}
	if ack.ID != uint64(pi) || ack.Epoch != uint64(epoch) {
		return &taskFailure{ioErr: fmt.Errorf("cluster: shuffle map id/epoch mismatch: sent %d/%d got %d/%d", pi, epoch, ack.ID, ack.Epoch)}
	}
	mr.commit(pi, &ack)
	engine.ObserveTask("cluster", time.Since(started))
	return nil
}

// ctrlConn returns (dialing on demand) the session's control
// connection to addr, with the shuffle opened on it.
func (ss *shuffleSession) ctrlConn(ctx context.Context, addr string) (*conn, error) {
	ss.ctrlMu.Lock()
	c := ss.ctrl[addr]
	ss.ctrlMu.Unlock()
	if c != nil {
		return c, nil
	}
	nc, err := ss.d.connect(ctx, addr)
	if err != nil {
		return nil, err
	}
	if err := ss.ensureBegin(nc, ss.addrIdx(addr)); err != nil {
		nc.close()
		ss.harvest(nc)
		return nil, err
	}
	ss.ctrlMu.Lock()
	if ss.ctrl[addr] == nil {
		ss.ctrl[addr] = nc
		ss.ctrlMu.Unlock()
		return nc, nil
	}
	// Lost a benign race; keep the existing connection.
	c = ss.ctrl[addr]
	ss.ctrlMu.Unlock()
	nc.close()
	ss.harvest(nc)
	return c, nil
}

// dropCtrl closes a control connection after a transport failure.
func (ss *shuffleSession) dropCtrl(addr string) {
	ss.ctrlMu.Lock()
	c := ss.ctrl[addr]
	delete(ss.ctrl, addr)
	ss.ctrlMu.Unlock()
	if c != nil {
		c.close()
		ss.harvest(c)
	}
}

// withCtrl runs one control round trip against addr, redialing and
// retrying on failures. Deterministic failures surface immediately;
// retryable executor-side failures are bounded by the task retry
// budget; dial/transport failures get the same patience a stage slot
// gets (SlotFailureLimit consecutive attempts with capped backoff), so
// an executor that hard-dies and rebinds its port within a few seconds
// rejoins the control plane just like it rejoins the task plane.
func (ss *shuffleSession) withCtrl(ctx context.Context, addr string, f func(c *conn) error) error {
	var lastErr error
	taskFails, transportFails := 0, 0
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt > 0 {
			ss.stats.Reconnects.Add(1)
			mReconnects.With(addr).Inc()
			if !sleepCtx(ctx, ss.d.backoff(attempt)) {
				return ctx.Err()
			}
		}
		c, err := ss.ctrlConn(ctx, addr)
		if err == nil {
			if tt := ss.d.taskTimeout(); tt > 0 {
				_ = c.raw.SetDeadline(time.Now().Add(tt))
			}
			err = f(c)
			_ = c.raw.SetDeadline(time.Time{})
			if err == nil {
				return nil
			}
		}
		if tf, isTF := err.(*taskFailure); isTF && tf.taskErr != nil {
			if !tf.retryable {
				return tf.taskErr
			}
			// Retryable executor-side failure: the connection is fine,
			// but give the executor a beat (and the driver a chance to
			// recover lost state) before the next attempt.
			// Keep the retryable marker: reduceAll distinguishes "executor
			// lost state, re-materialize and try again" (retryable) from
			// deterministic failures by it.
			lastErr = engine.Retryable(tf.taskErr)
			if taskFails++; taskFails > ss.d.retries() {
				break
			}
			continue
		}
		lastErr = err
		ss.dropCtrl(addr)
		if transportFails++; transportFails >= ss.d.slotFailureLimit() {
			break
		}
	}
	return fmt.Errorf("cluster: shuffle control on %s: %w", addr, lastErr)
}

// barrier asks every executor which map sources its owned partitions
// still miss; the union (as map task indexes) is what the driver must
// re-run. Wall time spent here is the stage's barrier wait.
func (ss *shuffleSession) barrier(ctx context.Context) ([]int, error) {
	start := time.Now()
	defer func() {
		ns := int64(time.Since(start))
		ss.stats.ShuffleBarrierNs.Add(ns)
		mShuffleBarrierWait.Add(ns)
	}()
	missSet := map[int]bool{}
	for _, addr := range ss.d.Addrs {
		var ack shuffleBarrierAck
		err := ss.withCtrl(ctx, addr, func(c *conn) error {
			if err := c.enc.Encode(frameHdr{Kind: frameShuffleBarrier}); err != nil {
				return &taskFailure{ioErr: err}
			}
			if err := c.enc.Encode(&shuffleBarrierMsg{Shuffle: ss.id, Sources: ss.sources}); err != nil {
				return &taskFailure{ioErr: err}
			}
			ack = shuffleBarrierAck{}
			if err := c.dec.Decode(&ack); err != nil {
				return &taskFailure{ioErr: err}
			}
			if ack.Err != "" {
				return &taskFailure{taskErr: fmt.Errorf("cluster: shuffle barrier on %s: %s", addr, ack.Err), retryable: true}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, src := range ack.Missing {
			missSet[int(src)] = true
		}
	}
	missing := make([]int, 0, len(missSet))
	for pi := range missSet {
		missing = append(missing, pi)
	}
	sort.Ints(missing)
	return missing, nil
}

// ensureMaterialized runs map tasks (initial, or nil to skip straight
// to the barrier) and then barrier rounds until every (partition,
// source) pair is committed, re-enqueueing lost map outputs. This loop
// is what makes a shuffle survive an executor killed mid-stream: its
// partitions' missing sources are detected and re-pushed by re-run map
// tasks, bounded by the retry budget.
func (ss *shuffleSession) ensureMaterialized(ctx context.Context, initial []int) error {
	tasks := initial
	for round := 0; ; round++ {
		if len(tasks) > 0 {
			if err := ss.runMaps(ctx, tasks); err != nil {
				return err
			}
		}
		missing, err := ss.barrier(ctx)
		if err != nil {
			return err
		}
		if len(missing) == 0 {
			return nil
		}
		if round >= ss.d.retries() {
			return fmt.Errorf("cluster: shuffle %#x: %d map output(s) still missing after %d recovery round(s)",
				ss.id, len(missing), round)
		}
		tasks = missing
	}
}

// allTasks lists every map task index.
func (ss *shuffleSession) allTasks() []int {
	tasks := make([]int, len(ss.rel.Partitions))
	for i := range tasks {
		tasks[i] = i
	}
	return tasks
}

// reducePass runs the given reduce on every not-yet-done partition,
// partition-owner connections in parallel, partitions per owner in
// sequence. outSchema is what result payloads decode against.
func (ss *shuffleSession) reducePass(ctx context.Context, makeMsg func(part int) *shuffleReduceMsg, outSchema relation.Schema, outParts [][]relation.Row, doneParts []bool) error {
	byOwner := map[string][]int{}
	for p := 0; p < ss.parts; p++ {
		if doneParts[p] {
			continue
		}
		addr := ss.d.Addrs[p%len(ss.d.Addrs)]
		byOwner[addr] = append(byOwner[addr], p)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(byOwner))
	for addr, parts := range byOwner {
		wg.Add(1)
		go func(addr string, parts []int) {
			defer wg.Done()
			for _, p := range parts {
				if ctx.Err() != nil {
					errCh <- ctx.Err()
					return
				}
				var ack shuffleReduceAck
				taskStart := time.Now()
				err := ss.withCtrl(ctx, addr, func(c *conn) error {
					if err := c.enc.Encode(frameHdr{Kind: frameShuffleReduce}); err != nil {
						return &taskFailure{ioErr: err}
					}
					if err := c.enc.Encode(makeMsg(p)); err != nil {
						return &taskFailure{ioErr: err}
					}
					ack = shuffleReduceAck{}
					if err := c.dec.Decode(&ack); err != nil {
						return &taskFailure{ioErr: err}
					}
					if ack.Err != "" {
						return &taskFailure{
							taskErr:   fmt.Errorf("cluster: shuffle reduce partition %d on %s: %s", p, addr, ack.Err),
							retryable: ack.Retryable,
							panicked:  ack.Panicked,
						}
					}
					return nil
				})
				if err != nil {
					errCh <- err
					return
				}
				t0 := time.Now()
				rows, err := colcodec.Decode(outSchema, ack.Data)
				if err != nil {
					errCh <- engine.Retryable(fmt.Errorf("cluster: shuffle reduce partition %d: decode: %w", p, err))
					return
				}
				ss.stats.DecodeNs.Add(int64(time.Since(t0)))
				outParts[p] = rows
				doneParts[p] = true
				ss.stats.Tasks.Add(1)
				engine.ObserveTask("cluster", time.Since(taskStart))
			}
		}(addr, parts)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// reduceAll drives reducePass with recovery: a retryable failure (an
// executor restarted after the barrier and lost committed runs)
// triggers a re-materialization round on every involved session before
// the next pass.
func reduceAll(ctx context.Context, sessions []*shuffleSession, makeMsg func(part int) *shuffleReduceMsg, outSchema relation.Schema) ([][]relation.Row, error) {
	ss := sessions[0]
	outParts := make([][]relation.Row, ss.parts)
	doneParts := make([]bool, ss.parts)
	for attempt := 0; ; attempt++ {
		err := ss.reducePass(ctx, makeMsg, outSchema, outParts, doneParts)
		if err == nil {
			return outParts, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !engine.IsRetryable(err) || attempt >= ss.d.retries() {
			return nil, err
		}
		for _, s := range sessions {
			if rerr := s.ensureMaterialized(ctx, nil); rerr != nil {
				return nil, rerr
			}
		}
	}
}

// free releases executor-side state: best-effort shuffleFree frames on
// the control connections, which are then closed and their bytes
// harvested. Executors also free everything on shutdown, so a lost
// free frame leaks nothing durable.
func (ss *shuffleSession) free() {
	ss.ctrlMu.Lock()
	ctrl := ss.ctrl
	ss.ctrl = map[string]*conn{}
	ss.ctrlMu.Unlock()
	for _, c := range ctrl {
		_ = c.raw.SetDeadline(time.Now().Add(2 * time.Second))
		if err := c.enc.Encode(frameHdr{Kind: frameShuffleFree}); err == nil {
			if err := c.enc.Encode(&shuffleFreeMsg{Shuffles: []uint64{ss.id}}); err == nil {
				var ack shuffleFreeAck
				_ = c.dec.Decode(&ack)
			}
		}
		c.close()
		ss.harvest(c)
	}
}

// ShuffleMaterialize implements engine.ShuffleExecutor: run ops over
// rel, hash-partition the result on keys into parts partitions spread
// across the executors, and fetch them back. Partition p of the result
// is bitwise rel.PartitionByKey(parts, keys...) partition p (after
// ops), regardless of executor count, retries or push interleaving —
// committed runs concatenate in map-source order.
func (d *Driver) ShuffleMaterialize(ctx context.Context, rel *relation.Relation, ops []engine.OpDesc, keys []string, parts int) (*relation.Relation, engine.Stats, error) {
	start := time.Now()
	stats := engine.NewStatsCollector()
	d.live.Store(stats)
	ss, err := d.newShuffleSession(rel, ops, keys, parts, stats)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	defer ss.free()
	if err := ss.ensureMaterialized(ctx, ss.allTasks()); err != nil {
		return nil, engine.Stats{}, err
	}
	makeMsg := func(p int) *shuffleReduceMsg {
		return &shuffleReduceMsg{Shuffle: ss.id, Part: p, Kind: reduceCollect, Sources: ss.sources, Compress: d.Compress}
	}
	outParts, err := reduceAll(ctx, []*shuffleSession{ss}, makeMsg, ss.schema)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	out := &relation.Relation{Schema: ss.schema, Partitions: outParts}
	st := ss.finishStats(stats, start, rel.NumRows(), out.NumRows())
	return out, st, nil
}

// finishStats assembles the session's engine.Stats. The control
// connections are still open (free() runs afterwards), so their byte
// counters — which include every reduce result payload — are folded in
// here first.
func (ss *shuffleSession) finishStats(stats *engine.StatsCollector, start time.Time, rowsIn, rowsOut int) engine.Stats {
	ss.harvestCtrl()
	stats.RowsIn.Store(int64(rowsIn))
	stats.RowsOut.Store(int64(rowsOut))
	stats.Partitions.Store(int64(ss.parts))
	stats.WallNs.Store(int64(time.Since(start)))
	stats.ShufflePartitions.Add(int64(ss.parts))
	st := stats.Snapshot()
	engine.ObserveStage("cluster", st)
	return st
}

// ShuffleJoin implements engine.ShuffleExecutor: both sides are
// repartitioned on their join keys into the same fan-out, then each
// partition is joined locally on its owner with the engine's
// broadcast-join kernel (right side as build table) — the shuffle-hash
// join plan. Output partition p is bitwise what the broadcast plan
// would produce over left partition p of the repartitioned left side.
func (d *Driver) ShuffleJoin(ctx context.Context, left, right *relation.Relation, leftKeys, rightKeys []string, parts int) (*relation.Relation, engine.Stats, error) {
	start := time.Now()
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		return nil, engine.Stats{}, fmt.Errorf("cluster: shuffle join keys mismatch: %v vs %v", leftKeys, rightKeys)
	}
	// The per-partition reduce runs the broadcast-join kernel, so the
	// output schema is the kernel's: validated driver-side before any
	// bytes move.
	joinSchemaOp := engine.OpDesc{Kind: engine.OpBroadcastJoin, Join: &engine.JoinSpec{
		Schema: right.Schema, LeftKeys: leftKeys, RightKeys: rightKeys,
	}}
	outSchema, err := engine.OutputSchema(left.Schema, []engine.OpDesc{joinSchemaOp})
	if err != nil {
		return nil, engine.Stats{}, err
	}
	stats := engine.NewStatsCollector()
	d.live.Store(stats)
	if parts < 1 {
		parts = d.DefaultShuffleParts()
	}
	ssL, err := d.newShuffleSession(left, nil, leftKeys, parts, stats)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	defer ssL.free()
	ssR, err := d.newShuffleSession(right, nil, rightKeys, parts, stats)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	defer ssR.free()
	if err := ssL.ensureMaterialized(ctx, ssL.allTasks()); err != nil {
		return nil, engine.Stats{}, err
	}
	if err := ssR.ensureMaterialized(ctx, ssR.allTasks()); err != nil {
		return nil, engine.Stats{}, err
	}
	makeMsg := func(p int) *shuffleReduceMsg {
		return &shuffleReduceMsg{
			Shuffle: ssL.id, Shuffle2: ssR.id, Part: p, Kind: reduceJoin,
			Sources: ssL.sources, Sources2: ssR.sources,
			LeftKeys: leftKeys, RightKeys: rightKeys, Compress: d.Compress,
		}
	}
	outParts, err := reduceAll(ctx, []*shuffleSession{ssL, ssR}, makeMsg, outSchema)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	out := &relation.Relation{Schema: outSchema, Partitions: outParts}
	ssR.harvestCtrl()
	st := ssL.finishStats(stats, start, left.NumRows()+right.NumRows(), out.NumRows())
	return out, st, nil
}

// ShuffleAggregate implements engine.ShuffleExecutor: the shuffle
// aggregation plan. Map tasks compute per-partition partial aggregates
// (the map-side combine), the partials repartition on the group key,
// each owner merges its partitions' partials into finals, and the
// driver restores global key order with a streaming merge — replacing
// the PartialAgg→driver→MergePartials funnel with O(groups) driver
// traffic. Output is bitwise engine.AggregateDistributed's (identical
// per-group accumulation order), in one partition in global key order.
func (d *Driver) ShuffleAggregate(ctx context.Context, rel *relation.Relation, groupBy []string, aggs []engine.AggSpec, parts int) (*relation.Relation, engine.Stats, error) {
	start := time.Now()
	stats := engine.NewStatsCollector()
	d.live.Store(stats)
	mapOps := []engine.OpDesc{engine.PartialAgg(groupBy, aggs)}
	ss, err := d.newShuffleSession(rel, mapOps, groupBy, parts, stats)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	defer ss.free()
	// The finals' schema: what MergePartials produces from the partial
	// schema — computed driver-side on an empty relation.
	emptyPartials := &relation.Relation{Schema: ss.schema}
	finalEmpty, err := engine.MergePartials(emptyPartials, groupBy, aggs)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	finalSchema := finalEmpty.Schema
	if err := ss.ensureMaterialized(ctx, ss.allTasks()); err != nil {
		return nil, engine.Stats{}, err
	}
	makeMsg := func(p int) *shuffleReduceMsg {
		return &shuffleReduceMsg{
			Shuffle: ss.id, Part: p, Kind: reduceFinalAgg, Sources: ss.sources,
			GroupBy: groupBy, Aggs: aggs, Compress: d.Compress,
		}
	}
	outParts, err := reduceAll(ctx, []*shuffleSession{ss}, makeMsg, finalSchema)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	// Hash partitions are key-disjoint and each owner's finals are
	// key-ordered; the n-way merge restores the global order Aggregate
	// and MergePartials produce.
	merged := engine.MergeByGroupKey(outParts, len(groupBy))
	out := &relation.Relation{Schema: finalSchema, Partitions: [][]relation.Row{merged}}
	st := ss.finishStats(stats, start, rel.NumRows(), out.NumRows())
	return out, st, nil
}
