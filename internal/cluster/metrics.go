package cluster

import "ivnt/internal/telemetry"

// Metric families on the process-wide registry. Driver-side families
// mirror the fault-tolerance counters in engine.Stats but accumulate
// across stages for the lifetime of the process — what /metrics
// scrapes see. Executor-side families describe this process acting as
// a worker; in-process test clusters feed both sets into the same
// registry, which is fine: the names do not overlap.
var (
	mReconnects = telemetry.Default().CounterVec("cluster_reconnects_total",
		"Re-established executor connections, by executor address.", "addr")
	mRetries = telemetry.Default().Counter("cluster_task_retries_total",
		"Task launches abandoned after a transport failure and requeued.")
	mSpeculative = telemetry.Default().Counter("cluster_speculative_total",
		"Speculative (straggler) task launches.")
	mDeadlineHits = telemetry.Default().Counter("cluster_deadline_hits_total",
		"Task round trips that exceeded the per-task deadline.")
	mStagesShipped = telemetry.Default().Counter("cluster_stages_shipped_total",
		"Stage shipments sent to executors (once per stage per connection).")
	mBytesSent = telemetry.Default().Counter("cluster_bytes_sent_total",
		"Bytes written to executor connections.")
	mBytesRecv = telemetry.Default().Counter("cluster_bytes_recv_total",
		"Bytes read from executor connections.")
	mInflight = telemetry.Default().Gauge("cluster_inflight_tasks",
		"Task launches currently in flight, including speculative copies.")
	mAdmissionDeferrals = telemetry.Default().Counter("cluster_admission_deferrals_total",
		"Dispatch pauses inserted because an executor reported memory pressure.")
	mTaskPanics = telemetry.Default().Counter("cluster_task_panics_total",
		"Task results carrying a contained executor panic, observed by the driver.")

	// Shuffle families (protocol v4, docs/SHUFFLE.md). Sent/received and
	// bytes describe this process's executor server acting as a shuffle
	// peer; barrier wait and spills describe driver- and receiver-side
	// behaviour of the exchange. All are pre-registered here so
	// /metrics carries the full shuffle catalogue from process start —
	// `make vet-metrics` gates that via VerifyShuffleMetrics.
	mShufflePartsSent = telemetry.Default().Counter("cluster_shuffle_partitions_sent_total",
		"Shuffle bucket runs pushed to peer executors (or self-committed) by map tasks.")
	mShufflePartsRecv = telemetry.Default().Counter("cluster_shuffle_partitions_received_total",
		"Shuffle bucket runs committed by this process's executor server.")
	mShuffleBytesSent = telemetry.Default().Counter("cluster_shuffle_bytes_sent_total",
		"Shuffle partition payload bytes pushed to peer executors.")
	mShuffleBytesRecv = telemetry.Default().Counter("cluster_shuffle_bytes_recv_total",
		"Shuffle partition payload bytes received from peer executors.")
	mShufflePeerReconnects = telemetry.Default().Counter("cluster_shuffle_peer_reconnects_total",
		"Re-established executor-to-executor shuffle connections.")
	mShuffleBarrierWait = telemetry.Default().Counter("cluster_shuffle_barrier_wait_ns_total",
		"Nanoseconds drivers spent in shuffle barrier rounds waiting for materialization.")
	mShuffleSpills = telemetry.Default().Counter("cluster_shuffle_spills_total",
		"Shuffle partition runs spilled to disk by receiving executors under memory pressure.")
	mShuffleSpillBytes = telemetry.Default().Counter("cluster_shuffle_spill_bytes_total",
		"Bytes written to shuffle spill files by receiving executors.")

	mExecTasks = telemetry.Default().Counter("executor_tasks_total",
		"Tasks completed by this process's executor server.")
	mExecStages = telemetry.Default().Counter("executor_stages_received_total",
		"Stage shipments accepted by this process's executor server.")
	mExecConns = telemetry.Default().Gauge("executor_connections",
		"Driver connections currently open on this process's executor server.")
	mExecPanics = telemetry.Default().Counter("executor_task_panics_total",
		"Panics recovered during task execution by this process's executor server.")
)

// VerifyShuffleMetrics checks the cluster_shuffle_* catalogue is
// registered with the expected types — part of the `make vet-metrics`
// gate, alongside the engine-side engine.VerifyShuffleMetrics.
func VerifyShuffleMetrics() error {
	return telemetry.VerifyFamilies(map[string]string{
		"cluster_shuffle_partitions_sent_total":     telemetry.TypeCounter,
		"cluster_shuffle_partitions_received_total": telemetry.TypeCounter,
		"cluster_shuffle_bytes_sent_total":          telemetry.TypeCounter,
		"cluster_shuffle_bytes_recv_total":          telemetry.TypeCounter,
		"cluster_shuffle_peer_reconnects_total":     telemetry.TypeCounter,
		"cluster_shuffle_barrier_wait_ns_total":     telemetry.TypeCounter,
		"cluster_shuffle_spills_total":              telemetry.TypeCounter,
		"cluster_shuffle_spill_bytes_total":         telemetry.TypeCounter,
	})
}
