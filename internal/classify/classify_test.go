package classify

import (
	"testing"

	"ivnt/internal/relation"
	"ivnt/internal/rules"
)

func seq(vals []relation.Value, dt float64) *relation.Relation {
	rel := relation.New(rules.SequenceSchema())
	for i, v := range vals {
		rel.Append(relation.Row{
			relation.Float(float64(i) * dt),
			relation.Str("s"),
			v,
			relation.Str("FC"),
		})
	}
	return rel
}

func floats(xs ...float64) []relation.Value {
	out := make([]relation.Value, len(xs))
	for i, x := range xs {
		out[i] = relation.Float(x)
	}
	return out
}

func strsV(xs ...string) []relation.Value {
	out := make([]relation.Value, len(xs))
	for i, x := range xs {
		out[i] = relation.Str(x)
	}
	return out
}

// TestTable3Mapping verifies every row of the paper's Table 3.
func TestTable3Mapping(t *testing.T) {
	cases := []struct {
		name   string
		z      Criteria
		dtype  DataType
		branch Branch
	}{
		{"N H >2 true -> numeric alpha", Criteria{NumericType: true, Rate: High, Num: 5, Val: true}, Numeric, Alpha},
		{"N L >2 true -> ordinal beta", Criteria{NumericType: true, Rate: Low, Num: 5, Val: true}, Ordinal, Beta},
		{"S H >2 true -> ordinal beta", Criteria{NumericType: false, Rate: High, Num: 5, Val: true}, Ordinal, Beta},
		{"S L >2 true -> ordinal beta", Criteria{NumericType: false, Rate: Low, Num: 5, Val: true}, Ordinal, Beta},
		{"S H =2 true -> binary gamma", Criteria{NumericType: false, Rate: High, Num: 2, Val: true}, Binary, Gamma},
		{"S L =2 true -> binary gamma", Criteria{NumericType: false, Rate: Low, Num: 2, Val: true}, Binary, Gamma},
		{"S H >2 false -> nominal gamma", Criteria{NumericType: false, Rate: High, Num: 5, Val: false}, Nominal, Gamma},
		{"S L >2 false -> nominal gamma", Criteria{NumericType: false, Rate: Low, Num: 5, Val: false}, Nominal, Gamma},
		{"N H =2 true -> binary gamma", Criteria{NumericType: true, Rate: High, Num: 2, Val: true}, Binary, Gamma},
		{"N L =2 true -> binary gamma", Criteria{NumericType: true, Rate: Low, Num: 2, Val: true}, Binary, Gamma},
		// Combinations outside the table default to gamma.
		{"constant -> gamma", Criteria{NumericType: true, Rate: Low, Num: 1, Val: true}, Binary, Gamma},
		{"numeric w/o valence -> gamma", Criteria{NumericType: true, Rate: High, Num: 5, Val: false}, Nominal, Gamma},
	}
	for _, c := range cases {
		dt, br := Classify(c.z)
		if dt != c.dtype || br != c.branch {
			t.Errorf("%s: got (%s, %s), want (%s, %s)", c.name, dt, br, c.dtype, c.branch)
		}
	}
}

func TestComputeFastNumericIsAlpha(t *testing.T) {
	// 100 samples at 10 Hz with many distinct values.
	vals := make([]relation.Value, 100)
	for i := range vals {
		vals[i] = relation.Float(float64(i % 37))
	}
	z, err := Compute(seq(vals, 0.1), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !z.NumericType || z.Rate != High || z.Num != 37 || !z.Val {
		t.Fatalf("Z = %s", z)
	}
	dt, br := Classify(z)
	if dt != Numeric || br != Alpha {
		t.Fatalf("classified (%s, %s)", dt, br)
	}
}

func TestComputeSlowNumericIsBeta(t *testing.T) {
	// 10 samples spread over 100 seconds: 0.09/s < T=2.
	vals := floats(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	z, err := Compute(seq(vals, 10), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Rate != Low {
		t.Fatalf("rate = %s", z.Rate)
	}
	if dt, br := Classify(z); dt != Ordinal || br != Beta {
		t.Fatalf("classified (%s, %s)", dt, br)
	}
}

func TestComputeBinaryString(t *testing.T) {
	vals := strsV("ON", "OFF", "ON", "OFF")
	z, err := Compute(seq(vals, 1), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.NumericType || z.Num != 2 || !z.Val {
		t.Fatalf("Z = %s", z)
	}
	if dt, br := Classify(z); dt != Binary || br != Gamma {
		t.Fatalf("classified (%s, %s)", dt, br)
	}
}

func TestComputeNominalString(t *testing.T) {
	vals := strsV("driving", "parking", "charging", "driving", "idle")
	z, err := Compute(seq(vals, 1), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Val {
		t.Fatalf("nominal inferred comparable: %s", z)
	}
	if dt, br := Classify(z); dt != Nominal || br != Gamma {
		t.Fatalf("classified (%s, %s)", dt, br)
	}
}

func TestComputeHintOverridesInference(t *testing.T) {
	// heat: high/medium/low strings — nominal by inference, ordinal by
	// documentation.
	vals := strsV("high", "medium", "low", "high")
	hint := &rules.Translation{SID: "heat", Class: rules.ClassOrdinal,
		OrdinalScale: []string{"low", "medium", "high"}}
	z, err := Compute(seq(vals, 1), hint, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !z.Val {
		t.Fatalf("hint ignored: %s", z)
	}
	if dt, br := Classify(z); dt != Ordinal || br != Beta {
		t.Fatalf("classified (%s, %s)", dt, br)
	}
	// Nominal hint forces val=false even for numeric-looking data.
	nomHint := &rules.Translation{SID: "code", Class: rules.ClassNominal}
	z, err = Compute(seq(floats(1, 2, 3, 4), 0.01), nomHint, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Val {
		t.Fatalf("nominal hint ignored: %s", z)
	}
}

func TestComputeActiveSegments(t *testing.T) {
	// Bursts of fast activity separated by long idle: rate must be
	// computed over active time only, hence High.
	rel := relation.New(rules.SequenceSchema())
	tt := 0.0
	for burst := 0; burst < 3; burst++ {
		for i := 0; i < 20; i++ {
			rel.Append(relation.Row{
				relation.Float(tt), relation.Str("s"),
				relation.Float(float64(i)), relation.Str("FC"),
			})
			tt += 0.05 // 20 Hz
		}
		tt += 600 // 10 minutes idle
	}
	z, err := Compute(rel, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Rate != High {
		t.Fatalf("bursty signal must be High over active segments: %s", z)
	}
}

func TestComputeEdgeCases(t *testing.T) {
	// Empty sequence.
	z, err := Compute(seq(nil, 1), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Num != 0 || z.Rate != Low {
		t.Fatalf("empty Z = %s", z)
	}
	// Nulls are skipped.
	vals := []relation.Value{relation.Null(), relation.Float(1), relation.Null()}
	z, err = Compute(seq(vals, 1), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Num != 1 {
		t.Fatalf("null handling: %s", z)
	}
	// Bad schema.
	bad := relation.New(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if _, err := Compute(bad, nil, 2); err == nil {
		t.Fatal("bad schema must fail")
	}
}

func TestStringers(t *testing.T) {
	if Alpha.String() != "alpha" || Beta.String() != "beta" || Gamma.String() != "gamma" {
		t.Fatal("branch names")
	}
	if Numeric.String() != "numeric" || Ordinal.String() != "ordinal" ||
		Nominal.String() != "nominal" || Binary.String() != "binary" {
		t.Fatal("data type names")
	}
	if High.String() != "H" || Low.String() != "L" {
		t.Fatal("rate names")
	}
	z := Criteria{NumericType: true, Rate: High, Num: 3, Val: true}
	if z.String() != "(N, H, 3, true)" {
		t.Fatalf("criteria string = %q", z.String())
	}
}
