// Package classify implements the type-dependent classification of
// Sec. 4.2: every reduced signal sequence K_red is assigned criteria
// Z = (z_type, z_rate, z_num, z_val) and mapped to a data type and a
// processing branch (α numeric, β ordinal, γ nominal/binary) per
// Table 3. Criteria come from the sequence itself plus documentation
// hints from the rules catalog (the paper derived the scheme from
// inspecting over 1000 signal types).
package classify

import (
	"fmt"
	"sort"

	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

// Branch is a processing branch of Sec. 4.2.
type Branch uint8

// Processing branches.
const (
	// Alpha processes fast-changing numeric signals: outlier removal,
	// smoothing, SWAB segmentation, SAX symbolization.
	Alpha Branch = iota
	// Beta processes ordinal signals: F/V split, numeric translation,
	// gradient trend.
	Beta
	// Gamma passes nominal and binary signals through.
	Gamma
)

// String returns the Greek letter name.
func (b Branch) String() string {
	switch b {
	case Alpha:
		return "alpha"
	case Beta:
		return "beta"
	case Gamma:
		return "gamma"
	default:
		return fmt.Sprintf("branch(%d)", uint8(b))
	}
}

// DataType is the classified value domain of Table 3.
type DataType uint8

// Data types.
const (
	Numeric DataType = iota
	Ordinal
	Nominal
	Binary
)

// String returns the type name.
func (d DataType) String() string {
	switch d {
	case Numeric:
		return "numeric"
	case Ordinal:
		return "ordinal"
	case Nominal:
		return "nominal"
	case Binary:
		return "binary"
	default:
		return fmt.Sprintf("type(%d)", uint8(d))
	}
}

// Rate is z_rate of Eq. 2.
type Rate uint8

// Change rates.
const (
	// High change rate (n/Δt > T).
	High Rate = iota
	// Low change rate.
	Low
)

// String returns "H" or "L".
func (r Rate) String() string {
	if r == High {
		return "H"
	}
	return "L"
}

// Criteria is Z = (z_type, z_rate, z_num, z_val).
type Criteria struct {
	// NumericType is z_type: true for N, false for S.
	NumericType bool
	// Rate is z_rate.
	Rate Rate
	// Num is z_num, the count of distinct functional values.
	Num int
	// Val is z_val, whether values carry a comparable valence.
	Val bool
}

// String renders the tuple for reports.
func (z Criteria) String() string {
	ty := "S"
	if z.NumericType {
		ty = "N"
	}
	return fmt.Sprintf("(%s, %s, %d, %t)", ty, z.Rate, z.Num, z.Val)
}

// idleFactor separates active segments: a gap more than idleFactor
// times the median gap ends an active segment.
const idleFactor = 10

// Compute derives Z for one reduced per-signal sequence. The
// translation tuple supplies documentation hints (nil means infer
// everything from data); rateThreshold is T of Eq. 2 in values per
// second.
func Compute(seq *relation.Relation, hint *rules.Translation, rateThreshold float64) (Criteria, error) {
	vIdx := seq.Schema.Index(trace.ColV)
	tIdx := seq.Schema.Index(trace.ColT)
	if vIdx < 0 || tIdx < 0 {
		return Criteria{}, fmt.Errorf("classify: sequence lacks %s/%s (%s)", trace.ColV, trace.ColT, seq.Schema)
	}
	var (
		ts       []float64
		distinct = map[string]bool{}
		numeric  = true
		n        int
	)
	for _, p := range seq.Partitions {
		for _, r := range p {
			v := r[vIdx]
			if v.IsNull() {
				continue
			}
			n++
			ts = append(ts, r[tIdx].AsFloat())
			distinct[v.AsString()] = true
			if !v.IsNumeric() {
				numeric = false
			}
		}
	}
	z := Criteria{
		NumericType: numeric,
		Num:         len(distinct),
		Rate:        computeRate(ts, rateThreshold),
		Val:         inferValence(numeric, len(distinct), hint),
	}
	return z, nil
}

// computeRate implements Eq. 2 over active segments: segments are
// separated by gaps exceeding idleFactor times the median gap; the rate
// is points per second of active time.
func computeRate(ts []float64, threshold float64) Rate {
	if len(ts) < 2 {
		return Low
	}
	if threshold <= 0 {
		threshold = 2
	}
	sort.Float64s(ts)
	gaps := make([]float64, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i]-ts[i-1])
	}
	med := medianOf(gaps)
	idle := med * idleFactor
	if idle <= 0 {
		// All timestamps identical: infinitely fast.
		return High
	}
	var active float64
	var count int
	segStart := ts[0]
	points := 1
	for i := 1; i < len(ts); i++ {
		if ts[i]-ts[i-1] > idle {
			if points >= 2 {
				active += ts[i-1] - segStart
				count += points
			}
			segStart = ts[i]
			points = 1
			continue
		}
		points++
	}
	if points >= 2 {
		active += ts[len(ts)-1] - segStart
		count += points
	}
	if active <= 0 {
		return Low
	}
	if float64(count)/active > threshold {
		return High
	}
	return Low
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}

// inferValence determines z_val: documentation wins; otherwise numeric
// values are comparable, two-valued string signals are treated as
// comparable (binary), and richer string domains are not.
func inferValence(numeric bool, distinct int, hint *rules.Translation) bool {
	if hint != nil {
		switch hint.Class {
		case rules.ClassNumeric, rules.ClassOrdinal, rules.ClassBinary:
			return true
		case rules.ClassNominal:
			return false
		}
	}
	if numeric {
		return true
	}
	return distinct <= 2
}

// Classify maps Z to (data type, branch) per Table 3. Combinations the
// table leaves open (constant signals, numeric without valence) default
// to the pass-through branch γ.
func Classify(z Criteria) (DataType, Branch) {
	switch {
	case z.Num <= 2 && z.Val:
		// Rows 4 and 6: binary → γ, regardless of type and rate.
		return Binary, Gamma
	case z.NumericType && z.Rate == High && z.Num > 2 && z.Val:
		// Row 1: fast numeric → α.
		return Numeric, Alpha
	case z.NumericType && z.Rate == Low && z.Num > 2 && z.Val:
		// Row 2: slow numeric ordinal → β.
		return Ordinal, Beta
	case !z.NumericType && z.Num > 2 && z.Val:
		// Row 3: comparable strings → β.
		return Ordinal, Beta
	case !z.NumericType && z.Num > 2 && !z.Val:
		// Row 5: nominal → γ.
		return Nominal, Gamma
	default:
		// Constant signals and numeric-without-valence: nothing to
		// transform.
		return Nominal, Gamma
	}
}
