package interp

import (
	"context"
	"strings"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/protocol"
	"ivnt/internal/protocol/someip"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

var ctx = context.Background()

// buildTrace produces the paper's Fig. 2 situation: wiper messages
// (mid 3 on FC, wpos in bytes 0-1 with v=0.5*raw, wvel in bytes 2-3)
// interleaved with irrelevant traffic (mid 9 on DC).
func buildTrace(n int) *relation.Relation {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			raw := uint16(90 + i) // wpos = 45 + i/2
			vel := uint16(i % 3)
			tr.Append(trace.ByteTuple{
				T: float64(i) * 0.5, Channel: "FC", MsgID: 3,
				Payload: []byte{byte(raw >> 8), byte(raw), byte(vel >> 8), byte(vel)},
				Info:    trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 4},
			})
		} else {
			tr.Append(trace.ByteTuple{
				T: float64(i) * 0.5, Channel: "DC", MsgID: 9,
				Payload: []byte{0xAA, 0xBB},
				Info:    trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 2},
			})
		}
	}
	return tr.ToRelation(3)
}

func testCatalog() *rules.Catalog {
	return &rules.Catalog{Translations: []rules.Translation{
		{SID: "wpos", Channel: "FC", MsgID: 3, FirstByte: 0, LastByte: 1,
			Rule: "0.5 * ube(lrel, 0, 2)", Class: rules.ClassNumeric},
		{SID: "wvel", Channel: "FC", MsgID: 3, FirstByte: 2, LastByte: 3,
			Rule: "ube(lrel, 0, 2)", Class: rules.ClassNumeric},
		{SID: "other", Channel: "DC", MsgID: 9, FirstByte: 0, LastByte: 0,
			Rule: "byteat(lrel, 0)", Class: rules.ClassNumeric},
	}}
}

func TestExtractWiperSignals(t *testing.T) {
	kb := buildTrace(20)
	cat := testCatalog()
	ucomb, err := cat.Select("wpos", "wvel")
	if err != nil {
		t.Fatal(err)
	}
	ks, st, err := Extract(ctx, engine.NewLocal(2), kb, ucomb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 10 wiper messages × 2 signals each.
	if ks.NumRows() != 20 {
		t.Fatalf("K_s rows = %d, want 20", ks.NumRows())
	}
	if st.RowsIn != 20 {
		t.Fatalf("stats RowsIn = %d", st.RowsIn)
	}
	sigs, err := trace.SignalsFromRelation(ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sigs {
		switch s.SID {
		case "wpos":
			want := 45 + s.T // raw = 90+i, i = 2t, v = 45 + t
			if s.V.AsFloat() != want {
				t.Fatalf("wpos at t=%v: %v, want %v", s.T, s.V, want)
			}
		case "wvel":
			if s.V.AsInt() < 0 || s.V.AsInt() > 2 {
				t.Fatalf("wvel out of range: %v", s.V)
			}
		default:
			t.Fatalf("unexpected signal %q extracted", s.SID)
		}
		if s.Channel != "FC" {
			t.Fatalf("channel = %q", s.Channel)
		}
	}
}

func TestExtractSchemaIsKs(t *testing.T) {
	kb := buildTrace(4)
	ucomb, _ := testCatalog().Select("wpos")
	ks, _, err := Extract(ctx, engine.NewLocal(1), kb, ucomb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"t", "sid", "v", "bid"}
	for i, name := range want {
		if ks.Schema.Cols[i].Name != name {
			t.Fatalf("K_s schema = %s, want columns %v", ks.Schema, want)
		}
	}
}

func TestExtractWithoutPreselectionMatches(t *testing.T) {
	// Ablation A1: interpret-everything-then-filter must produce the
	// same K_s, just more expensively.
	kb := buildTrace(30)
	cat := testCatalog()
	ucomb, _ := cat.Select("wpos", "wvel")

	pre, _, err := Extract(ctx, engine.NewLocal(2), kb, ucomb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noPre, _, err := Extract(ctx, engine.NewLocal(2), kb, ucomb, Options{
		Preselect:   false,
		FullCatalog: cat.Translations,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := pre.Rows(), noPre.Rows()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(nil, DefaultOptions()); err == nil {
		t.Fatal("empty U_comb must fail")
	}
	ucomb, _ := testCatalog().Select("wpos")
	if _, err := Plan(ucomb, Options{Preselect: false}); err == nil {
		t.Fatal("no-preselect without catalog must fail")
	}
}

func TestMultiProtocolExtraction(t *testing.T) {
	// Table 1's point: one extraction combines CAN, LIN and SOME/IP.
	tr := &trace.Trace{}
	tr.Append(trace.ByteTuple{T: 1, Channel: "FC", MsgID: 3,
		Payload: []byte{0x00, 0x5A, 0x00, 0x01},
		Info:    trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 4}})
	tr.Append(trace.ByteTuple{T: 2, Channel: "K-LIN", MsgID: 11,
		Payload: []byte{0x05, 0x00},
		Info:    trace.MsgInfo{Protocol: trace.ProtoLIN, DLC: 2}})
	tr.Append(trace.ByteTuple{T: 3, Channel: "ETH1", MsgID: 212,
		Payload: make([]byte, 24),
		Info:    trace.MsgInfo{Protocol: trace.ProtoSOMEIP, DLC: 24}})

	cat := &rules.Catalog{Translations: []rules.Translation{
		{SID: "wpos", Channel: "FC", MsgID: 3, FirstByte: 0, LastByte: 1,
			Rule: "0.5 * ube(lrel, 0, 2)"},
		{SID: "wtype", Channel: "K-LIN", MsgID: 11, FirstByte: 0, LastByte: 0,
			Rule: "byteat(lrel, 0) + 2"},
		{SID: "wstat", Channel: "ETH1", MsgID: 212, FirstByte: 16, LastByte: 20,
			Rule: "lookup(byteat(lrel, 0), '0=idle;1=wiping')"},
	}}
	ucomb, err := cat.Select("wpos", "wtype", "wstat")
	if err != nil {
		t.Fatal(err)
	}
	ks, _, err := Extract(ctx, engine.NewLocal(1), tr.ToRelation(1), ucomb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := trace.SignalsFromRelation(ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 3 {
		t.Fatalf("signals = %d, want 3", len(sigs))
	}
	byID := map[string]relation.Value{}
	for _, s := range sigs {
		byID[s.SID] = s.V
	}
	if byID["wpos"].AsFloat() != 45 {
		t.Fatalf("wpos = %v", byID["wpos"])
	}
	if byID["wtype"].AsFloat() != 7 {
		t.Fatalf("wtype = %v", byID["wtype"])
	}
	if byID["wstat"].AsString() != "idle" {
		t.Fatalf("wstat = %v", byID["wstat"])
	}
}

func TestSidFilterExpr(t *testing.T) {
	ucomb := []rules.Translation{{SID: "a"}, {SID: "b"}, {SID: "a"}}
	got := sidFilterExpr(ucomb)
	if got != `sid == "a" || sid == "b"` {
		t.Fatalf("filter expr = %q", got)
	}
}

func TestSomeIPPresenceConditionalExtraction(t *testing.T) {
	// Sec. 3.2's hardest case: "rules where values of preceding bytes
	// define the presence of a signal type in succeeding bytes". Encode
	// SOME/IP notifications with and without an optional field and
	// verify the generated presence-gated rule extracts only the
	// present instances.
	msg := someip.MessageDef{
		ServiceID: 0, MethodID: 212, Name: "WiperService", Channel: "ETH1",
		PayloadLen: 12,
		Fields: []someip.Field{
			{Def: protocol.SignalDef{Name: "wstat", StartBit: 8, BitLen: 8}},
			{Def: protocol.SignalDef{Name: "wdetail", StartBit: 16, BitLen: 16, Scale: 0.1},
				Optional: true, PresenceBit: 0},
		},
	}
	if err := msg.Validate(); err != nil {
		t.Fatal(err)
	}
	detailRule, err := msg.FieldRule("wdetail")
	if err != nil {
		t.Fatal(err)
	}
	statRule, err := msg.FieldRule("wstat")
	if err != nil {
		t.Fatal(err)
	}
	// SOME/IP rules operate on the full recorded bytes; rel.B covers
	// header + payload, so lrel == l and the rules can be rewritten
	// onto lrel textually.
	cat := &rules.Catalog{Translations: []rules.Translation{
		{SID: "wstat", Channel: "ETH1", MsgID: msg.MessageID(),
			FirstByte: 0, LastByte: someip.HeaderLen + 11,
			Rule: strings.ReplaceAll(statRule, "(l,", "(lrel,")},
		{SID: "wdetail", Channel: "ETH1", MsgID: msg.MessageID(),
			FirstByte: 0, LastByte: someip.HeaderLen + 11,
			Rule: strings.ReplaceAll(detailRule, "(l,", "(lrel,")},
	}}

	tr := &trace.Trace{}
	with, err := msg.Encode(map[string]float64{"wstat": 1, "wdetail": 12.5})
	if err != nil {
		t.Fatal(err)
	}
	without, err := msg.Encode(map[string]float64{"wstat": 2})
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(trace.ByteTuple{T: 1, Channel: "ETH1", MsgID: msg.MessageID(), Payload: with,
		Info: trace.MsgInfo{Protocol: trace.ProtoSOMEIP, DLC: uint8(len(with))}})
	tr.Append(trace.ByteTuple{T: 2, Channel: "ETH1", MsgID: msg.MessageID(), Payload: without,
		Info: trace.MsgInfo{Protocol: trace.ProtoSOMEIP, DLC: uint8(len(without))}})

	ucomb, err := cat.Select("wstat", "wdetail")
	if err != nil {
		t.Fatal(err)
	}
	ks, _, err := Extract(ctx, engine.NewLocal(1), tr.ToRelation(1), ucomb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := trace.SignalsFromRelation(ks)
	if err != nil {
		t.Fatal(err)
	}
	var detailVals []relation.Value
	statCount := 0
	for _, s := range sigs {
		switch s.SID {
		case "wdetail":
			if !s.V.IsNull() {
				detailVals = append(detailVals, s.V)
			}
		case "wstat":
			statCount++
		}
	}
	if statCount != 2 {
		t.Fatalf("wstat instances = %d, want 2", statCount)
	}
	if len(detailVals) != 1 || detailVals[0].AsFloat() != 12.5 {
		t.Fatalf("wdetail present instances = %v, want one 12.5", detailVals)
	}
}
