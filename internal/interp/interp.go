// Package interp implements information extraction (Sec. 3, Algorithm 1
// lines 3–6): preselection of relevant messages, the broadcast join of
// raw messages with translation tuples, the u₁ relevant-byte extraction
// and the u₂ value interpretation, all as one serializable engine stage
// so it distributes row-parallel across executors.
package interp

import (
	"context"
	"fmt"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

// Options tune the extraction plan.
type Options struct {
	// Preselect enables the line-3 preselection semijoin that filters
	// K_b to relevant (b_id, m_id) pairs before joining rules. Ablation
	// A1 switches it off, which forces interpretation of the full
	// catalog followed by a post-filter.
	Preselect bool
	// FullCatalog is U_rel, required when Preselect is false: the plan
	// then interprets every documented signal and filters to the
	// selection afterwards, reproducing what "translating all signal
	// instances in all message instances" costs.
	FullCatalog []rules.Translation
}

// DefaultOptions enable preselection.
func DefaultOptions() Options { return Options{Preselect: true} }

// Plan builds the extraction stage for a U_comb selection: applied to a
// K_b relation it yields the K_s relation (t, sid, v, bid).
//
// Stage layout (all narrow operators, no shuffle needed):
//
//	semijoin (b_id,m_id)∈U_comb   — line 3, K_pre
//	⋈ U_comb on (b_id,m_id)       — line 4, K_join
//	u₁: lrel = slice(l, rel.B)    — line 5, K_join2
//	π drop l, m_info              — the memory-efficiency step
//	u₂: v = rule(lrel)            — line 6, K_s
//	π (t, sid, v, bid)
func Plan(ucomb []rules.Translation, opts Options) ([]engine.OpDesc, error) {
	if len(ucomb) == 0 {
		return nil, fmt.Errorf("interp: empty U_comb")
	}
	joinSet := ucomb
	if !opts.Preselect {
		if len(opts.FullCatalog) == 0 {
			return nil, fmt.Errorf("interp: Preselect=false requires FullCatalog")
		}
		joinSet = opts.FullCatalog
	}

	var ops []engine.OpDesc
	if opts.Preselect {
		// Line 3: σ over (b_id, m_id) as a semijoin with the distinct
		// pair table — the broadcast analogue of the paper's filter
		// pushdown onto the raw trace.
		pairs := rules.PairRelation(ucomb)
		ops = append(ops, engine.BroadcastJoin(pairs,
			[]string{trace.ColBID, trace.ColMID},
			[]string{rules.ColUPairBID, rules.ColUPairMID}))
	}

	// Line 4: K_join = K_pre ⋈ U_comb. One output row per (message
	// instance, matching translation tuple): the fan-out from messages
	// to signals.
	ops = append(ops, engine.BroadcastJoin(rules.ToRelation(joinSet),
		[]string{trace.ColBID, trace.ColMID},
		[]string{rules.ColUBID, rules.ColUMID}))

	// Line 5: u₁ — extract the relevant bytes l_rel per row, then drop
	// the full payload and protocol fields. Keeping only rel.B is what
	// lets the paper store traces raw yet interpret cheaply.
	ops = append(ops,
		engine.EvalRule(trace.ColLRel, relation.KindBytes, rules.ColU1Rule),
		engine.Project(trace.ColT, trace.ColBID, rules.ColUSID, trace.ColLRel, rules.ColU2Rule),
	)

	// Line 6: u₂ — interpret l_rel into the signal value v using the
	// per-row rule carried by the join.
	ops = append(ops,
		engine.EvalRule(trace.ColV, relation.KindNull, rules.ColU2Rule),
		engine.Project(trace.ColT, rules.ColUSID, trace.ColV, trace.ColBID),
	)

	if !opts.Preselect {
		// Post-filter to the requested signals: without preselection
		// everything was interpreted first.
		ops = append(ops, engine.Filter(sidFilterExpr(ucomb)))
	}
	return ops, nil
}

// sidFilterExpr renders "sid=='a' || sid=='b' || ...".
func sidFilterExpr(ucomb []rules.Translation) string {
	seen := map[string]bool{}
	var out string
	for i := range ucomb {
		sid := ucomb[i].SID
		if seen[sid] {
			continue
		}
		seen[sid] = true
		if out != "" {
			out += " || "
		}
		out += fmt.Sprintf("sid == %q", sid)
	}
	return out
}

// Extract runs the extraction plan over a K_b relation on the given
// executor and returns K_s (plus stage statistics).
func Extract(ctx context.Context, exec engine.Executor, kb *relation.Relation, ucomb []rules.Translation, opts Options) (*relation.Relation, engine.Stats, error) {
	ops, err := Plan(ucomb, opts)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	return exec.RunStage(ctx, kb, ops)
}
