// Compilation of parsed statements onto engine op trees. The contract
// that the differential harness holds (internal/difftest, `make
// difftest-query`): a compiled plan is *the same data* as the op tree a
// caller would hand-build from the statement's expression strings —
// same OpDesc slice, same stage fingerprint — so parsed and hand-built
// plans share compiled-pipeline cache entries and produce bitwise-equal
// results.
package query

import (
	"fmt"
	"strings"

	"ivnt/internal/engine"
	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

// SchemaFn resolves a relation name to its stored scan schema.
type SchemaFn func(rel string) (relation.Schema, error)

// DebugMutateWhere, when set, rewrites the WHERE source just before it
// becomes a Filter op. The differential harness injects precedence bugs
// through it to prove the query suite catches a miscompiled predicate.
var DebugMutateWhere func(string) string

// JoinPlan is the compiled join side of a plan.
type JoinPlan struct {
	Rel                 string
	LeftKeys, RightKeys []string
	RightOps            []engine.OpDesc // right-side scan stage (pushdown-foldable)
}

// Plan is a compiled statement: the scan-stage op tree plus the
// terminal distributed/global steps Run drives.
type Plan struct {
	From    string
	ScanOps []engine.OpDesc // main-relation scan stage; leading Filter/Project fold into pushdown
	Join    *JoinPlan
	PostOps []engine.OpDesc // post-join narrow ops (join queries only)

	GroupBy      []string
	Aggs         []engine.AggSpec // len>0: terminal engine.DistributedAggregate
	FinalProject []string         // post-aggregate projection to select order, "" slice when not needed
	OrderBy      []string         // terminal engine.SortRelation keys
	Limit        int              // -1: no limit
}

// aggFns maps aggregate call names to engine functions. first/last
// exist as engine aggregates but do not distribute (no mergeable
// partial), so the compiler rejects them explicitly.
var aggFns = map[string]engine.AggFunc{
	"count": engine.AggCount,
	"sum":   engine.AggSum,
	"min":   engine.AggMin,
	"max":   engine.AggMax,
	"mean":  engine.AggMean,
}

// Compile compiles q against the schemas the resolver provides.
func Compile(q *Query, schemas SchemaFn) (*Plan, error) {
	p, err := compile(q, schemas)
	if err != nil {
		mCompileErrors.Inc()
		return nil, err
	}
	mCompiled.Inc()
	return p, nil
}

func compile(q *Query, schemas SchemaFn) (*Plan, error) {
	left, err := schemas(q.From)
	if err != nil {
		return nil, err
	}
	p := &Plan{From: q.From, Limit: q.Limit, OrderBy: q.OrderBy}

	// The "work" schema select items and GROUP BY resolve against: the
	// scan schema, or the joined schema (left columns + right non-key
	// columns, the broadcast-join kernel's layout, which ShuffleJoin
	// matches bitwise).
	work := left
	var right relation.Schema
	if q.Join != nil {
		if right, err = schemas(q.Join.Rel); err != nil {
			return nil, err
		}
		jp := &JoinPlan{Rel: q.Join.Rel}
		for _, on := range q.Join.On {
			l, r := on[0], on[1]
			if !left.Has(l) && right.Has(l) && left.Has(r) {
				l, r = r, l // written right-side first; normalize
			}
			if !left.Has(l) {
				return nil, fmt.Errorf("query: join key %q is not a column of %s", l, q.From)
			}
			if !right.Has(r) {
				return nil, fmt.Errorf("query: join key %q is not a column of %s", r, q.Join.Rel)
			}
			jp.LeftKeys = append(jp.LeftKeys, l)
			jp.RightKeys = append(jp.RightKeys, r)
		}
		p.Join = jp
		rightKey := map[string]bool{}
		for _, k := range jp.RightKeys {
			rightKey[k] = true
		}
		cols := append([]relation.Column(nil), left.Cols...)
		for _, c := range right.Cols {
			if !rightKey[c.Name] {
				cols = append(cols, c)
			}
		}
		work = relation.Schema{Cols: cols}
		if err := checkDupCols(work); err != nil {
			return nil, err
		}
	}

	// WHERE placement: a predicate whose columns all live on one side
	// folds into that side's scan (zone-map pruning); anything touching
	// both sides of a join runs after it.
	if q.Where != "" {
		where := q.Where
		if DebugMutateWhere != nil {
			where = DebugMutateWhere(where)
		}
		switch {
		case q.Join == nil || identsWithin(q.WhereNode, left):
			p.ScanOps = append(p.ScanOps, engine.Filter(where))
		case identsWithin(q.WhereNode, right):
			p.Join.RightOps = append(p.Join.RightOps, engine.Filter(where))
		default:
			p.PostOps = append(p.PostOps, engine.Filter(where))
		}
	}

	if len(q.GroupBy) > 0 {
		if err := compileAggregate(q, p, work); err != nil {
			return nil, err
		}
	} else {
		if err := compileNarrow(q, p, work); err != nil {
			return nil, err
		}
	}

	// Validate the narrow stages the way the engine will compile them
	// (unknown columns, bad expressions, duplicate outputs all surface
	// here, with the engine's own messages).
	stageIn, stageOps := left, p.ScanOps
	if q.Join != nil {
		if _, err := engine.OutputSchema(left, p.ScanOps); err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		if _, err := engine.OutputSchema(right, p.Join.RightOps); err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		stageIn, stageOps = work, p.PostOps
	}
	out, err := engine.OutputSchema(stageIn, stageOps)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}

	// ORDER BY keys must be output columns.
	outNames := p.outputNames(out)
	for _, k := range q.OrderBy {
		if !sliceHas(outNames, k) {
			return nil, fmt.Errorf("query: ORDER BY key %q is not an output column (outputs: %s)", k, strings.Join(outNames, ", "))
		}
	}
	return p, nil
}

// outputNames lists the plan's output column names: the narrow-stage
// schema for scan queries, group keys + aggregate aliases (after any
// final projection) for aggregates.
func (p *Plan) outputNames(narrowOut relation.Schema) []string {
	if len(p.Aggs) == 0 {
		names := make([]string, len(narrowOut.Cols))
		for i, c := range narrowOut.Cols {
			names[i] = c.Name
		}
		return names
	}
	if len(p.FinalProject) > 0 {
		return p.FinalProject
	}
	names := append([]string(nil), p.GroupBy...)
	for _, a := range p.Aggs {
		names = append(names, a.As)
	}
	return names
}

// compileNarrow lowers a GROUP BY-less select list: bare columns become
// a Project, computed items an AddColumn each (advisory kind from
// inferKind) followed by a Project to select order.
func compileNarrow(q *Query, p *Plan, work relation.Schema) error {
	if q.Items[0].Star {
		if len(q.Items) > 1 {
			return fmt.Errorf("query: '*' must be the only select item")
		}
		return nil // no projection: scan schema passes through
	}
	var adds []engine.OpDesc
	var names []string
	seen := map[string]bool{}
	for i, it := range q.Items {
		if it.Star {
			return fmt.Errorf("query: '*' must be the only select item")
		}
		if it.CountStar {
			return fmt.Errorf("query: count(*) needs a GROUP BY")
		}
		if call, ok := it.Node.(*expr.Call); ok && len(q.GroupBy) == 0 {
			if _, isAgg := aggFns[call.Fn]; isAgg && call.Fn != "min" && call.Fn != "max" {
				return fmt.Errorf("query: aggregate %s(...) needs a GROUP BY", call.Fn)
			}
		}
		name := it.Alias
		if id, bare := it.Node.(*expr.Ident); bare && name == "" {
			if !work.Has(id.Name) {
				return fmt.Errorf("query: select item %d: unknown column %q", i+1, id.Name)
			}
			name = id.Name
		} else {
			if name == "" {
				return fmt.Errorf("query: select item %d (%s) needs an AS alias", i+1, it.Src)
			}
			adds = append(adds, engine.AddColumn(name, inferKind(it.Node, work), it.Src))
		}
		if seen[name] {
			return fmt.Errorf("query: duplicate output column %q", name)
		}
		seen[name] = true
		names = append(names, name)
	}
	ops := append(adds, engine.Project(names...))
	if q.Join == nil {
		p.ScanOps = append(p.ScanOps, ops...)
	} else {
		p.PostOps = append(p.PostOps, ops...)
	}
	return nil
}

// compileAggregate lowers a GROUP BY select list onto
// engine.DistributedAggregate: bare columns must be group keys,
// everything else an aliased aggregate call over one column (or
// count(*)). The pre-aggregate scan is projected to the columns the
// aggregation reads, in schema order, so column pruning reaches the
// segment decoder.
func compileAggregate(q *Query, p *Plan, work relation.Schema) error {
	for _, k := range q.GroupBy {
		if !work.Has(k) {
			return fmt.Errorf("query: GROUP BY key %q is not a column", k)
		}
	}
	p.GroupBy = q.GroupBy
	need := map[string]bool{}
	for _, k := range q.GroupBy {
		need[k] = true
	}
	var selOrder []string
	seen := map[string]bool{}
	for i, it := range q.Items {
		switch {
		case it.Star:
			return fmt.Errorf("query: '*' cannot appear with GROUP BY")
		case it.CountStar:
			if it.Alias == "" {
				return fmt.Errorf("query: select item %d (count(*)) needs an AS alias", i+1)
			}
			p.Aggs = append(p.Aggs, engine.AggSpec{Fn: engine.AggCount, As: it.Alias})
			selOrder = append(selOrder, it.Alias)
		default:
			if id, bare := it.Node.(*expr.Ident); bare {
				if !sliceHas(q.GroupBy, id.Name) {
					return fmt.Errorf("query: select item %d (%s) is neither a group key nor an aggregate", i+1, it.Src)
				}
				if it.Alias != "" {
					return fmt.Errorf("query: group key %q cannot take an alias", id.Name)
				}
				selOrder = append(selOrder, id.Name)
				break
			}
			call, ok := it.Node.(*expr.Call)
			if !ok {
				return fmt.Errorf("query: select item %d (%s) is neither a group key nor an aggregate", i+1, it.Src)
			}
			if call.Fn == "first" || call.Fn == "last" {
				return fmt.Errorf("query: %s() does not distribute (no mergeable partial); use min/max over a sort key instead", call.Fn)
			}
			fn, isAgg := aggFns[call.Fn]
			if !isAgg {
				return fmt.Errorf("query: select item %d: %s(...) is not an aggregate (want count/sum/min/max/mean)", i+1, call.Fn)
			}
			id, bareArg := argIdent(call)
			if !bareArg {
				return fmt.Errorf("query: select item %d: aggregate %s wants a single column argument", i+1, call.Fn)
			}
			if !work.Has(id) {
				return fmt.Errorf("query: select item %d: unknown column %q", i+1, id)
			}
			if it.Alias == "" {
				return fmt.Errorf("query: select item %d (%s) needs an AS alias", i+1, it.Src)
			}
			p.Aggs = append(p.Aggs, engine.AggSpec{Fn: fn, Col: id, As: it.Alias})
			need[id] = true
			selOrder = append(selOrder, it.Alias)
		}
		nm := selOrder[len(selOrder)-1]
		if seen[nm] {
			return fmt.Errorf("query: duplicate output column %q", nm)
		}
		seen[nm] = true
	}
	if len(p.Aggs) == 0 {
		return fmt.Errorf("query: GROUP BY without any aggregate select item")
	}

	// Project the pre-aggregate scan to the needed columns (schema
	// order keeps the projection canonical). Join queries skip this:
	// the join already narrowed the stream and the projection would
	// have to straddle both sides.
	if q.Join == nil {
		var cols []string
		for _, c := range work.Cols {
			if need[c.Name] {
				cols = append(cols, c.Name)
			}
		}
		p.ScanOps = append(p.ScanOps, engine.Project(cols...))
	}

	// The aggregate's natural output is group keys then aggregates in
	// spec order; a final projection restores select order when the
	// statement differs (or drops unselected group keys).
	natural := append(append([]string(nil), q.GroupBy...), aggNames(p.Aggs)...)
	if !sliceEq(natural, selOrder) {
		p.FinalProject = selOrder
	}
	return nil
}

func aggNames(aggs []engine.AggSpec) []string {
	out := make([]string, len(aggs))
	for i, a := range aggs {
		out[i] = a.As
	}
	return out
}

// argIdent returns the name of a call's single bare-column argument.
func argIdent(c *expr.Call) (string, bool) {
	if len(c.Args) != 1 {
		return "", false
	}
	id, ok := c.Args[0].(*expr.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// identsWithin reports whether every column n references is in s.
func identsWithin(n expr.Node, s relation.Schema) bool {
	for _, id := range expr.Idents(n) {
		if !s.Has(id) {
			return false
		}
	}
	return true
}

func checkDupCols(s relation.Schema) error {
	seen := map[string]bool{}
	for _, c := range s.Cols {
		if seen[c.Name] {
			return fmt.Errorf("query: join produces duplicate column %q (project or rename before joining)", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

func sliceHas(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func sliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// inferKind assigns the advisory schema kind of a computed select item
// (engine.AddColumn wants one; values themselves carry their own kinds
// at runtime). The rules are part of the plan contract — hand-built op
// trees must pick the same kinds to fingerprint-match parsed plans:
// comparisons, boolean connectives and ! are Bool; + - * % keep Int
// when both sides are Int, else Float; / is always Float; a
// conditional takes its then-branch's kind; calls default to Float.
func inferKind(n expr.Node, s relation.Schema) relation.Kind {
	switch x := n.(type) {
	case *expr.Lit:
		return x.Value().K
	case *expr.Ident:
		if i := s.Index(x.Name); i >= 0 {
			return s.Cols[i].Kind
		}
		return relation.KindFloat
	case *expr.Unary:
		if x.Op == "!" {
			return relation.KindBool
		}
		return inferKind(x.X, s)
	case *expr.Binary:
		switch x.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return relation.KindBool
		case "/":
			return relation.KindFloat
		default:
			if inferKind(x.L, s) == relation.KindInt && inferKind(x.R, s) == relation.KindInt {
				return relation.KindInt
			}
			return relation.KindFloat
		}
	case *expr.Cond:
		return inferKind(x.A, s)
	default:
		return relation.KindFloat
	}
}
