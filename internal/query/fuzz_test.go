package query

import (
	"testing"

	"ivnt/internal/relation"
)

// FuzzParseQuery hardens the statement parser and plan compiler:
// arbitrary statement text must parse-or-error without panicking, and
// whatever parses must compile-or-error without panicking. Compiled
// plans must round out basic invariants (a WHERE always lands in
// exactly one stage, aggregates imply group keys).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"SELECT * FROM trace",
		"SELECT ts, val FROM trace WHERE ts >= 100 && val > 0.5",
		"SELECT sid, count(*) AS n FROM trace GROUP BY sid ORDER BY sid LIMIT 10",
		"SELECT sid, mean(val) AS m, sum(val) AS s FROM trace WHERE sid != 'x' GROUP BY sid",
		"SELECT val * 2.0 + 1.0 AS scaled FROM trace",
		"SELECT sid, label FROM trace JOIN names ON sid == key WHERE ts <= 20",
		"select ts from trace where sid == 'a' order by ts asc",
		"SELECT a FROM t ORDER BY a DESC",
		"SELECT count(*) FROM t",
		"SELECT FROM WHERE GROUP BY",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t LIMIT 99999999999999999999",
		"SELECT (a FROM t",
		"SELECT a?b:c AS x FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schemas := map[string]relation.Schema{
		"trace": relation.NewSchema(
			relation.Column{Name: "ts", Kind: relation.KindInt},
			relation.Column{Name: "val", Kind: relation.KindFloat},
			relation.Column{Name: "sid", Kind: relation.KindString},
		),
		"names": relation.NewSchema(
			relation.Column{Name: "key", Kind: relation.KindString},
			relation.Column{Name: "label", Kind: relation.KindString},
		),
		"t": relation.NewSchema(
			relation.Column{Name: "a", Kind: relation.KindInt},
			relation.Column{Name: "b", Kind: relation.KindFloat},
			relation.Column{Name: "c", Kind: relation.KindString},
		),
	}
	fn := func(rel string) (relation.Schema, error) {
		s, ok := schemas[rel]
		if !ok {
			return relation.Schema{}, errUnknown(rel)
		}
		return s, nil
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		p, err := Compile(q, fn)
		if err != nil {
			return
		}
		if len(p.Aggs) > 0 && len(p.GroupBy) == 0 {
			t.Fatalf("%q compiled aggregates without group keys", src)
		}
		filters := 0
		for _, op := range p.ScanOps {
			if op.Kind.String() == "filter" {
				filters++
			}
		}
		if p.Join != nil {
			for _, op := range p.Join.RightOps {
				if op.Kind.String() == "filter" {
					filters++
				}
			}
			for _, op := range p.PostOps {
				if op.Kind.String() == "filter" {
					filters++
				}
			}
		}
		if q.Where != "" && filters != 1 {
			t.Fatalf("%q: WHERE compiled into %d filters", src, filters)
		}
	})
}
