package query

import (
	"context"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// Sources resolves relation names to scan sources at run time (the
// serve layer backs this with per-tenant segstore catalogs).
type Sources interface {
	Source(rel string) (engine.ScanSource, error)
}

// Result is one executed plan.
type Result struct {
	Rel *relation.Relation
	// PlanKind is the physical choice DistributedJoin/Aggregate made
	// (PlanBroadcast for plain scans, which never shuffle).
	PlanKind engine.PlanKind
	Stats    engine.Stats
}

// Run executes a compiled plan: scan stages (with fold-pushdown
// pruning) feed the distributed join/aggregate steps, then the global
// sort and limit. cfg tunes the broadcast/shuffle choice; the zero
// value uses the engine defaults.
func Run(ctx context.Context, exec engine.Executor, srcs Sources, p *Plan, cfg engine.PlanConfig) (*Result, error) {
	res := &Result{PlanKind: engine.PlanBroadcast}
	src, err := srcs.Source(p.From)
	if err != nil {
		return nil, err
	}
	cur, st, err := engine.ScanStage(ctx, exec, src, p.ScanOps)
	if err != nil {
		return nil, err
	}
	res.Stats.Add(st)

	if p.Join != nil {
		rsrc, err := srcs.Source(p.Join.Rel)
		if err != nil {
			return nil, err
		}
		right, st, err := engine.ScanStage(ctx, exec, rsrc, p.Join.RightOps)
		if err != nil {
			return nil, err
		}
		res.Stats.Add(st)
		var pk engine.PlanKind
		cur, pk, st, err = engine.DistributedJoin(ctx, exec, cur, right, p.Join.LeftKeys, p.Join.RightKeys, cfg)
		if err != nil {
			return nil, err
		}
		res.PlanKind = pk
		res.Stats.Add(st)
		if len(p.PostOps) > 0 {
			cur, st, err = exec.RunStage(ctx, cur, p.PostOps)
			if err != nil {
				return nil, err
			}
			res.Stats.Add(st)
		}
	}

	if len(p.Aggs) > 0 {
		var pk engine.PlanKind
		cur, pk, st, err = engine.DistributedAggregate(ctx, exec, cur, p.GroupBy, p.Aggs, cfg)
		if err != nil {
			return nil, err
		}
		res.PlanKind = pk
		res.Stats.Add(st)
		if len(p.FinalProject) > 0 {
			cur, st, err = exec.RunStage(ctx, cur, []engine.OpDesc{engine.Project(p.FinalProject...)})
			if err != nil {
				return nil, err
			}
			res.Stats.Add(st)
		}
	}

	if len(p.OrderBy) > 0 {
		if cur, err = engine.SortRelation(cur, p.OrderBy...); err != nil {
			return nil, err
		}
	}
	if p.Limit >= 0 {
		cur = limitRelation(cur, p.Limit)
	}
	res.Rel = cur
	return res, nil
}

// limitRelation keeps the first n rows in partition order, collapsing
// to a single partition (a LIMIT result is small by construction).
func limitRelation(rel *relation.Relation, n int) *relation.Relation {
	rows := make([]relation.Row, 0, n)
	for _, part := range rel.Partitions {
		for _, r := range part {
			if len(rows) == n {
				return relation.FromRows(rel.Schema, rows)
			}
			rows = append(rows, r)
		}
	}
	return relation.FromRows(rel.Schema, rows)
}
