// Package query is the SQL-ish frontend over stored trace relations:
//
//	SELECT <items> FROM <relation> [JOIN <relation> ON <keys>]
//	    [WHERE <expr>] [GROUP BY <keys>] [ORDER BY <keys>] [LIMIT n]
//
// It reuses internal/expr's lexer and Pratt parser for every embedded
// expression (via expr.Stream), so the predicate language of queries is
// exactly the rule language of the pipeline, and compiles statements
// onto the engine's serializable op trees: WHERE becomes a leading
// Filter that engine.FoldPushdown turns into zone-map segment pruning,
// GROUP BY becomes engine.DistributedAggregate (size-based
// broadcast/shuffle plan selection), JOIN becomes
// engine.DistributedJoin, ORDER BY engine.SortRelation. The grammar and
// its compilation contract are documented in docs/QUERY.md.
package query

import (
	"strconv"
	"strings"

	"ivnt/internal/expr"
)

// Keywords are reserved: they cannot name relations, columns or aliases
// in the positions the grammar consumes identifiers. Matching is
// case-insensitive.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"by": true, "order": true, "limit": true, "as": true,
	"join": true, "on": true, "asc": true, "desc": true,
}

// SelectItem is one output of the select list.
type SelectItem struct {
	Star      bool      // "*": every input column, must be the only item
	CountStar bool      // "count(*)"
	Src       string    // exact expression source text ("" for Star)
	Node      expr.Node // parsed expression (nil for Star / CountStar)
	Alias     string    // AS name; "" means the item is a bare column
}

// JoinClause is the parsed "JOIN rel ON a == b [&& c == d ...]".
// Which side each key column belongs to is resolved at compile time
// against the two schemas.
type JoinClause struct {
	Rel string
	On  [][2]string
}

// Query is the parsed form of one statement.
type Query struct {
	Src       string // full statement text
	Items     []SelectItem
	From      string
	Join      *JoinClause
	Where     string // exact WHERE source text, "" when absent
	WhereNode expr.Node
	GroupBy   []string
	OrderBy   []string
	Limit     int // -1 when absent
}

// Parse parses one statement. Errors carry line/col positions in the
// statement text (the expr parser's format).
func Parse(src string) (*Query, error) {
	q, err := parse(src)
	if err != nil {
		mParseErrors.Inc()
		return nil, err
	}
	mParsed.Inc()
	return q, nil
}

type parser struct{ s *expr.Stream }

func (p *parser) cur() expr.Tok { return p.s.Cur() }

func (p *parser) isKw(kw string) bool {
	c := p.s.Cur()
	return c.Kind == expr.TokIdent && strings.EqualFold(c.Text, kw)
}

func (p *parser) takeKw(kw string) bool {
	if p.isKw(kw) {
		p.s.Advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.takeKw(kw) {
		return p.s.ErrAt(p.cur().Pos, "expected %s, got %s", strings.ToUpper(kw), p.cur())
	}
	return nil
}

func (p *parser) isOp(text string) bool {
	c := p.cur()
	return c.Kind == expr.TokOp && c.Text == text
}

func (p *parser) expectIdent(what string) (string, error) {
	c := p.cur()
	if c.Kind != expr.TokIdent {
		return "", p.s.ErrAt(c.Pos, "expected %s, got %s", what, c)
	}
	if reserved[strings.ToLower(c.Text)] {
		return "", p.s.ErrAt(c.Pos, "expected %s, got reserved word %s", what, c)
	}
	p.s.Advance()
	return c.Text, nil
}

// identList parses "ident (, ident)*".
func (p *parser) identList(what string) ([]string, error) {
	var out []string
	for {
		id, err := p.expectIdent(what)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.isOp(",") {
			p.s.Advance()
			continue
		}
		return out, nil
	}
}

func parse(src string) (*Query, error) {
	p := &parser{s: expr.NewStream(src)}
	q := &Query{Src: src, Limit: -1}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	for {
		it, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, *it)
		if p.isOp(",") {
			p.s.Advance()
			continue
		}
		break
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent("relation name")
	if err != nil {
		return nil, err
	}
	q.From = rel
	if p.takeKw("join") {
		j := &JoinClause{}
		if j.Rel, err = p.expectIdent("relation name"); err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		for {
			l, err := p.expectIdent("join key column")
			if err != nil {
				return nil, err
			}
			if !p.isOp("==") { // single '=' lexes as '==' too
				return nil, p.s.ErrAt(p.cur().Pos, "expected == between join keys, got %s", p.cur())
			}
			p.s.Advance()
			r, err := p.expectIdent("join key column")
			if err != nil {
				return nil, err
			}
			j.On = append(j.On, [2]string{l, r})
			if p.isOp("&&") {
				p.s.Advance()
				continue
			}
			break
		}
		q.Join = j
	}
	if p.takeKw("where") {
		n, st, en, err := p.s.ParseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = strings.TrimSpace(src[st:en])
		q.WhereNode = n
	}
	if p.takeKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		if q.GroupBy, err = p.identList("group key"); err != nil {
			return nil, err
		}
	}
	if p.takeKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			k, err := p.expectIdent("order key")
			if err != nil {
				return nil, err
			}
			if p.isKw("desc") {
				return nil, p.s.ErrAt(p.cur().Pos, "DESC is not supported: the engine sorts ascending only")
			}
			p.takeKw("asc")
			q.OrderBy = append(q.OrderBy, k)
			if p.isOp(",") {
				p.s.Advance()
				continue
			}
			break
		}
	}
	if p.takeKw("limit") {
		c := p.cur()
		if c.Kind != expr.TokNumber {
			return nil, p.s.ErrAt(c.Pos, "expected row count after LIMIT, got %s", c)
		}
		n, err := strconv.Atoi(c.Text)
		if err != nil || n < 0 {
			return nil, p.s.ErrAt(c.Pos, "LIMIT wants a non-negative integer, got %q", c.Text)
		}
		p.s.Advance()
		q.Limit = n
	}
	if c := p.cur(); c.Kind != expr.TokEOF {
		return nil, p.s.ErrAt(c.Pos, "unexpected %s after query", c)
	}
	return q, nil
}

func (p *parser) parseItem() (*SelectItem, error) {
	if p.isOp("*") {
		pos := p.cur().Pos
		p.s.Advance()
		if p.isKw("as") {
			return nil, p.s.ErrAt(pos, "'*' cannot take an alias")
		}
		return &SelectItem{Star: true, Src: "*"}, nil
	}
	start := p.cur().Pos
	var it SelectItem
	if p.peekCountStar() {
		p.s.Advance() // count
		p.s.Advance() // (
		p.s.Advance() // *
		if !p.isOp(")") {
			return nil, p.s.ErrAt(p.cur().Pos, "expected ')' after count(*), got %s", p.cur())
		}
		end := p.cur().Pos + 1
		p.s.Advance()
		it = SelectItem{CountStar: true, Src: strings.TrimSpace(p.s.Src()[start:end])}
	} else {
		n, st, en, err := p.s.ParseExpr()
		if err != nil {
			return nil, err
		}
		it = SelectItem{Node: n, Src: strings.TrimSpace(p.s.Src()[st:en])}
	}
	if p.takeKw("as") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return nil, err
		}
		it.Alias = a
	}
	return &it, nil
}

// peekCountStar reports whether the next three tokens are count ( * —
// which cannot parse as an expression, so the select-item grammar
// special-cases it. The Stream holds one lookahead token, so peeking
// further runs a throwaway stream over the tail of the source.
func (p *parser) peekCountStar() bool {
	c := p.cur()
	if c.Kind != expr.TokIdent || !strings.EqualFold(c.Text, "count") {
		return false
	}
	t := expr.NewStream(p.s.Src()[c.Pos:])
	t.Advance() // count
	if n := t.Cur(); !(n.Kind == expr.TokOp && n.Text == "(") {
		return false
	}
	t.Advance()
	n := t.Cur()
	return n.Kind == expr.TokOp && n.Text == "*"
}
