// Query-frontend observability: the query_* counter catalogue,
// pre-registered at init and gated by cmd/vetmetrics like the engine,
// cluster and segstore catalogues (see docs/OBSERVABILITY.md).
package query

import (
	"fmt"

	"ivnt/internal/telemetry"
)

var (
	mParsed = telemetry.Default().Counter("query_parsed_total",
		"Statements parsed successfully.")
	mParseErrors = telemetry.Default().Counter("query_parse_errors_total",
		"Statements rejected by the parser.")
	mCompiled = telemetry.Default().Counter("query_compiled_total",
		"Statements compiled onto engine plans.")
	mCompileErrors = telemetry.Default().Counter("query_compile_errors_total",
		"Statements rejected during plan compilation.")
)

// metricNames lists the families this package must register.
var metricNames = []string{
	"query_parsed_total",
	"query_parse_errors_total",
	"query_compiled_total",
	"query_compile_errors_total",
}

// VerifyMetrics is the vet-metrics gate for the query catalogue.
func VerifyMetrics() error {
	found := map[string]string{}
	for _, fam := range telemetry.Default().Snapshot() {
		found[fam.Name] = fam.Type
	}
	for _, name := range metricNames {
		typ, ok := found[name]
		if !ok {
			return fmt.Errorf("query metric family %q is not registered", name)
		}
		if typ != telemetry.TypeCounter {
			return fmt.Errorf("query metric family %q registered as %s, want %s", name, typ, telemetry.TypeCounter)
		}
	}
	return nil
}
