package query

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

func testSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "ts", Kind: relation.KindInt},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sid", Kind: relation.KindString},
	)
}

func schemaFn(m map[string]relation.Schema) SchemaFn {
	return func(rel string) (relation.Schema, error) {
		s, ok := m[rel]
		if !ok {
			return relation.Schema{}, errUnknown(rel)
		}
		return s, nil
	}
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown relation " + string(e) }

func mustCompile(t *testing.T, sql string, schemas map[string]relation.Schema) *Plan {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	p, err := Compile(q, schemaFn(schemas))
	if err != nil {
		t.Fatalf("Compile(%q): %v", sql, err)
	}
	return p
}

// A parsed plan must be the very op tree a caller would hand-build —
// same OpDesc data, same stage fingerprint — so both share pipeline
// cache entries and results are bitwise-equal by construction.
func TestCompileMatchesHandBuiltOps(t *testing.T) {
	schemas := map[string]relation.Schema{"trace": testSchema()}
	cases := []struct {
		sql  string
		hand []engine.OpDesc
	}{
		{
			"SELECT * FROM trace",
			nil,
		},
		{
			"SELECT ts, val FROM trace WHERE ts >= 100 && val > 0.5",
			[]engine.OpDesc{
				engine.Filter("ts >= 100 && val > 0.5"),
				engine.Project("ts", "val"),
			},
		},
		{
			"SELECT sid, val * 2.0 + 1.0 AS scaled FROM trace",
			[]engine.OpDesc{
				engine.AddColumn("scaled", relation.KindFloat, "val * 2.0 + 1.0"),
				engine.Project("sid", "scaled"),
			},
		},
		{
			"select ts from trace where sid == 'a'",
			[]engine.OpDesc{
				engine.Filter("sid == 'a'"),
				engine.Project("ts"),
			},
		},
	}
	for _, c := range cases {
		p := mustCompile(t, c.sql, schemas)
		if !reflect.DeepEqual(p.ScanOps, c.hand) {
			t.Errorf("%q:\n got %#v\nwant %#v", c.sql, p.ScanOps, c.hand)
		}
		got := engine.StageFingerprint(testSchema(), p.ScanOps)
		want := engine.StageFingerprint(testSchema(), c.hand)
		if got != want {
			t.Errorf("%q: fingerprint %x != hand-built %x", c.sql, got, want)
		}
	}
}

func TestCompileAggregate(t *testing.T) {
	schemas := map[string]relation.Schema{"trace": testSchema()}
	p := mustCompile(t, "SELECT sid, count(*) AS n, mean(val) AS m FROM trace WHERE ts > 10 GROUP BY sid", schemas)
	wantOps := []engine.OpDesc{
		engine.Filter("ts > 10"),
		engine.Project("val", "sid"), // needed columns, schema order
	}
	if !reflect.DeepEqual(p.ScanOps, wantOps) {
		t.Fatalf("ScanOps = %#v, want %#v", p.ScanOps, wantOps)
	}
	wantAggs := []engine.AggSpec{
		{Fn: engine.AggCount, As: "n"},
		{Fn: engine.AggMean, Col: "val", As: "m"},
	}
	if !reflect.DeepEqual(p.Aggs, wantAggs) {
		t.Fatalf("Aggs = %#v, want %#v", p.Aggs, wantAggs)
	}
	if !reflect.DeepEqual(p.GroupBy, []string{"sid"}) || p.FinalProject != nil {
		t.Fatalf("GroupBy=%v FinalProject=%v", p.GroupBy, p.FinalProject)
	}

	// Select order differing from keys-then-aggs forces a final projection.
	p = mustCompile(t, "SELECT count(*) AS n, sid FROM trace GROUP BY sid", schemas)
	if !reflect.DeepEqual(p.FinalProject, []string{"n", "sid"}) {
		t.Fatalf("FinalProject = %v", p.FinalProject)
	}
}

func TestParseClauses(t *testing.T) {
	q, err := Parse("SELECT a FROM t WHERE x > 1 ORDER BY a ASC, b LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where != "x > 1" || !reflect.DeepEqual(q.OrderBy, []string{"a", "b"}) || q.Limit != 10 {
		t.Fatalf("parsed %+v", q)
	}
	q, err = Parse("SELECT a FROM l JOIN r ON a == b && c == d WHERE x > 1")
	if err != nil {
		t.Fatal(err)
	}
	if q.Join == nil || q.Join.Rel != "r" || !reflect.DeepEqual(q.Join.On, [][2]string{{"a", "b"}, {"c", "d"}}) {
		t.Fatalf("join parsed %+v", q.Join)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT FROM t", "expected"},
		{"SELECT a", "expected FROM"},
		{"SELECT a FROM t ORDER BY a DESC", "DESC is not supported"},
		{"SELECT a FROM t LIMIT -1", "expected row count"},
		{"SELECT a FROM t LIMIT x", "expected row count"},
		{"SELECT a FROM t trailing", "unexpected"},
		{"SELECT a FROM select", "reserved word"},
		{"SELECT a, FROM t", "expected"},
	}
	for _, c := range cases {
		if _, err := Parse(c.sql); err == nil {
			t.Errorf("Parse(%q): expected error", c.sql)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %q, want substring %q", c.sql, err, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	schemas := map[string]relation.Schema{"trace": testSchema()}
	cases := []struct{ sql, want string }{
		{"SELECT nope FROM trace", "unknown column"},
		{"SELECT ts FROM nope", "unknown relation"},
		{"SELECT ts + 1 FROM trace", "needs an AS alias"},
		{"SELECT count(*) AS n FROM trace", "needs a GROUP BY"},
		{"SELECT sum(val) AS s FROM trace", "needs a GROUP BY"},
		{"SELECT ts FROM trace GROUP BY sid", "neither a group key nor an aggregate"},
		{"SELECT sid, first(val) AS f FROM trace GROUP BY sid", "does not distribute"},
		{"SELECT sid, count(*) FROM trace GROUP BY sid", "needs an AS alias"},
		{"SELECT ts, ts FROM trace", "duplicate output column"},
		{"SELECT ts FROM trace ORDER BY val", "not an output column"},
		{"SELECT *, ts FROM trace", "'*' must be the only select item"},
	}
	for _, c := range cases {
		q, err := Parse(c.sql)
		if err == nil {
			_, err = Compile(q, schemaFn(schemas))
		}
		if err == nil {
			t.Errorf("%q: expected error", c.sql)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q error = %q, want substring %q", c.sql, err, c.want)
		}
	}
}

type memSources map[string]*relation.Relation

func (m memSources) Source(rel string) (engine.ScanSource, error) {
	r, ok := m[rel]
	if !ok {
		return nil, errUnknown(rel)
	}
	return &engine.MemSource{Rel: r}, nil
}

func testRel() *relation.Relation {
	rows := []relation.Row{
		{relation.Int(10), relation.Float(1.5), relation.Str("a")},
		{relation.Int(20), relation.Float(2.5), relation.Str("b")},
		{relation.Int(30), relation.Float(0.5), relation.Str("a")},
		{relation.Int(40), relation.Float(4.0), relation.Str("b")},
		{relation.Int(50), relation.Float(math.NaN()), relation.Str("c")},
	}
	return relation.FromRows(testSchema(), rows).Repartition(2)
}

func TestRunEndToEnd(t *testing.T) {
	srcs := memSources{"trace": testRel()}
	exec := engine.NewLocal(2)
	run := func(sql string) *relation.Relation {
		t.Helper()
		q, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(q, func(rel string) (relation.Schema, error) {
			src, err := srcs.Source(rel)
			if err != nil {
				return relation.Schema{}, err
			}
			return src.ScanSchema(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), exec, srcs, p, engine.PlanConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rel
	}

	out := run("SELECT ts FROM trace WHERE val > 1.0 ORDER BY ts")
	got := out.Rows()
	if len(got) != 3 || got[0][0].I != 10 || got[1][0].I != 20 || got[2][0].I != 40 {
		t.Fatalf("filtered rows = %v", got)
	}

	out = run("SELECT sid, count(*) AS n FROM trace GROUP BY sid ORDER BY sid")
	got = out.Rows()
	if len(got) != 3 || got[0][0].S != "a" || got[0][1].I != 2 || got[2][0].S != "c" || got[2][1].I != 1 {
		t.Fatalf("grouped rows = %v", got)
	}

	out = run("SELECT ts FROM trace ORDER BY ts LIMIT 2")
	if got = out.Rows(); len(got) != 2 || got[1][0].I != 20 {
		t.Fatalf("limited rows = %v", got)
	}
}

func TestRunJoin(t *testing.T) {
	names := relation.NewSchema(
		relation.Column{Name: "key", Kind: relation.KindString},
		relation.Column{Name: "label", Kind: relation.KindString},
	)
	nrows := []relation.Row{
		{relation.Str("a"), relation.Str("alpha")},
		{relation.Str("b"), relation.Str("beta")},
	}
	srcs := memSources{
		"trace": testRel(),
		"names": relation.FromRows(names, nrows),
	}
	exec := engine.NewLocal(2)
	q, err := Parse("SELECT sid, label FROM trace JOIN names ON sid == key WHERE ts <= 20 ORDER BY sid")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, func(rel string) (relation.Schema, error) {
		src, err := srcs.Source(rel)
		if err != nil {
			return relation.Schema{}, err
		}
		return src.ScanSchema(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The WHERE touches only the left side, so it folds into the left scan.
	if len(p.ScanOps) == 0 || p.ScanOps[0].Kind != engine.OpFilter {
		t.Fatalf("left-only WHERE not folded into left scan: %#v", p.ScanOps)
	}
	res, err := Run(context.Background(), exec, srcs, p, engine.PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rel.Rows()
	if len(got) != 2 || got[0][1].S != "alpha" || got[1][1].S != "beta" {
		t.Fatalf("join rows = %v", got)
	}
}
