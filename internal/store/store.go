// Package store persists extraction results — the "database" the
// paper's proposed pipeline writes interpreted signals into (Sec. 5.1
// measures "interpretation followed by writing the results to the
// database"). One directory per domain holds a manifest, the state
// representation and the per-signal symbolized sequences, all in
// portable CSV so downstream Data Mining stacks can ingest them
// directly.
package store

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"ivnt/internal/core"
	"ivnt/internal/relation"
	"ivnt/internal/staterep"
	"ivnt/internal/trace"
)

// Manifest describes one stored extraction.
type Manifest struct {
	Domain        string    `json:"domain"`
	CreatedAt     time.Time `json:"created_at"`
	Signals       []string  `json:"signals"`
	States        int       `json:"states"`
	KsRows        int       `json:"ks_rows"`
	ReducedRows   int       `json:"reduced_rows"`
	TraceRows     int       `json:"trace_rows"`
	Executor      string    `json:"executor"`
	ExtensionRows int       `json:"extension_rows"`
}

// Store is a directory of per-domain extraction results.
type Store struct {
	dir string
}

// Open creates/opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) domainDir(domain string) string {
	return filepath.Join(s.dir, domain)
}

// Domains lists the stored domains, sorted.
func (s *Store) Domains() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, e.Name(), "manifest.json")); err == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// WriteResult persists one pipeline result under the domain's
// directory, replacing any previous extraction for that domain.
func (s *Store) WriteResult(domain string, res *core.Result, executor string, traceRows int) error {
	if domain == "" {
		return fmt.Errorf("store: empty domain name")
	}
	dir := s.domainDir(domain)
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(dir, "signals"), 0o755); err != nil {
		return err
	}
	if err := writeStateCSV(filepath.Join(dir, "state.csv"), res.State); err != nil {
		return err
	}
	for _, sig := range res.Signals {
		path := filepath.Join(dir, "signals", sig.SID+".csv")
		if err := writeSequenceCSV(path, sig.Rel); err != nil {
			return err
		}
	}
	extRows := 0
	if res.Extensions != nil {
		extRows = res.Extensions.NumRows()
		if err := writeSequenceCSV(filepath.Join(dir, "extensions.csv"), res.Extensions); err != nil {
			return err
		}
	}
	man := Manifest{
		Domain:        domain,
		CreatedAt:     time.Now().UTC(),
		Signals:       res.State.Signals,
		States:        res.State.NumRows(),
		KsRows:        res.KsRows,
		ReducedRows:   res.ReduceStats.RowsOut,
		TraceRows:     traceRows,
		Executor:      executor,
		ExtensionRows: extRows,
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// Manifest loads a domain's manifest.
func (s *Store) Manifest(domain string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.domainDir(domain), "manifest.json"))
	if err != nil {
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("store: %s: %w", domain, err)
	}
	return man, nil
}

// ReadState loads a domain's state representation.
func (s *Store) ReadState(domain string) (*staterep.Table, error) {
	return readStateCSV(filepath.Join(s.domainDir(domain), "state.csv"))
}

// ReadSequence loads one stored per-signal sequence in K_s shape.
func (s *Store) ReadSequence(domain, sid string) (*relation.Relation, error) {
	return readSequenceCSV(filepath.Join(s.domainDir(domain), "signals", sid+".csv"))
}

// writeStateCSV stores a state table: header "t,<signals...>".
func writeStateCSV(path string, tb *staterep.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	header := append([]string{"t"}, tb.Signals...)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	rec := make([]string, len(tb.Signals)+1)
	for i, t := range tb.Times {
		rec[0] = strconv.FormatFloat(t, 'g', -1, 64)
		copy(rec[1:], tb.Cells[i])
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readStateCSV(path string) (*staterep.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Stream record by record: ReadAll would hold every raw record of
	// the file in memory at once, on top of the table being built.
	// ReuseRecord keeps the reader to one scratch record; the loop copies
	// out the cells it keeps.
	r := csv.NewReader(f)
	r.ReuseRecord = true
	hdr, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if len(hdr) < 1 || hdr[0] != "t" {
		return nil, fmt.Errorf("store: %s: malformed state header", path)
	}
	tb := &staterep.Table{Signals: append([]string(nil), hdr[1:]...)}
	for i := 1; ; i++ {
		rec, err := r.Read()
		if err == io.EOF {
			return tb, nil
		}
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("store: %s: row %d: bad t %q", path, i, rec[0])
		}
		tb.Times = append(tb.Times, t)
		tb.Cells = append(tb.Cells, append([]string(nil), rec[1:]...))
	}
}

// writeSequenceCSV stores a K_s-shaped relation (t,sid,v,bid).
func writeSequenceCSV(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"t", "sid", "v", "bid"}); err != nil {
		f.Close()
		return err
	}
	ti := rel.Schema.Index(trace.ColT)
	si := rel.Schema.Index(trace.ColSID)
	vi := rel.Schema.Index(trace.ColV)
	bi := rel.Schema.Index(trace.ColBID)
	if ti < 0 || si < 0 || vi < 0 || bi < 0 {
		f.Close()
		return fmt.Errorf("store: relation is not K_s shaped (%s)", rel.Schema)
	}
	for _, p := range rel.Partitions {
		for _, row := range p {
			rec := []string{
				strconv.FormatFloat(row[ti].AsFloat(), 'g', -1, 64),
				row[si].AsString(),
				row[vi].AsString(),
				row[bi].AsString(),
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readSequenceCSV(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Stream record by record (see readStateCSV): sequence files are the
	// largest thing the store holds, and ReadAll would double-buffer
	// them. relation.Str copies the cell, so the reused record is safe.
	r := csv.NewReader(f)
	r.FieldsPerRecord = 4
	r.ReuseRecord = true
	if _, err := r.Read(); err != nil { // header
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	rel := relation.New(trace.SignalSchema())
	for i := 1; ; i++ {
		rec, err := r.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("store: %s: row %d: bad t %q", path, i, rec[0])
		}
		rel.Append(relation.Row{
			relation.Float(t),
			relation.Str(rec[1]),
			relation.Str(rec[2]),
			relation.Str(rec[3]),
		})
	}
}
