package store

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
)

func sampleResult(t *testing.T) (*core.Result, int) {
	t.Helper()
	d := gen.Build(gen.SYN)
	tr := d.Generate(8000)
	fw, err := core.New(d.Catalog, d.DefaultConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunTrace(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr.Len()
}

func TestWriteAndReadBack(t *testing.T) {
	res, traceRows := sampleResult(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteResult("syn", res, "local[2]", traceRows); err != nil {
		t.Fatal(err)
	}

	domains, err := st.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 1 || domains[0] != "syn" {
		t.Fatalf("domains = %v", domains)
	}

	man, err := st.Manifest("syn")
	if err != nil {
		t.Fatal(err)
	}
	if man.Domain != "syn" || man.States != res.State.NumRows() ||
		man.KsRows != res.KsRows || man.TraceRows != traceRows ||
		man.Executor != "local[2]" {
		t.Fatalf("manifest = %+v", man)
	}

	tb, err := st.ReadState("syn")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != res.State.NumRows() || len(tb.Signals) != len(res.State.Signals) {
		t.Fatalf("state round trip: %d/%d rows, %d/%d signals",
			tb.NumRows(), res.State.NumRows(), len(tb.Signals), len(res.State.Signals))
	}
	for i := 0; i < tb.NumRows(); i++ {
		if tb.StateKey(i) != res.State.StateKey(i) {
			t.Fatalf("state %d differs after round trip", i)
		}
		if tb.Times[i] != res.State.Times[i] {
			t.Fatalf("time %d differs: %v vs %v", i, tb.Times[i], res.State.Times[i])
		}
	}
}

func TestReadSequence(t *testing.T) {
	res, traceRows := sampleResult(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteResult("syn", res, "local", traceRows); err != nil {
		t.Fatal(err)
	}
	sid := res.Signals[0].SID
	rel, err := st.ReadSequence("syn", sid)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != res.Signals[0].Rel.NumRows() {
		t.Fatalf("sequence rows = %d, want %d", rel.NumRows(), res.Signals[0].Rel.NumRows())
	}
	a, b := rel.Rows(), res.Signals[0].Rel.Rows()
	for i := range a {
		if a[i][0].AsFloat() != b[i][0].AsFloat() || a[i][2].AsString() != b[i][2].AsString() {
			t.Fatalf("sequence row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if _, err := st.ReadSequence("syn", "no.such.signal"); err == nil {
		t.Fatal("missing sequence must fail")
	}
}

func TestWriteReplacesPrevious(t *testing.T) {
	res, traceRows := sampleResult(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteResult("syn", res, "local", traceRows); err != nil {
		t.Fatal(err)
	}
	// Drop a marker file into the domain dir; a rewrite must remove it.
	marker := filepath.Join(st.Dir(), "syn", "stale.txt")
	if err := os.WriteFile(marker, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteResult("syn", res, "local", traceRows); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(marker); !os.IsNotExist(err) {
		t.Fatal("rewrite did not replace the domain directory")
	}
}

func TestErrors(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, traceRows := sampleResult(t)
	if err := st.WriteResult("", res, "local", traceRows); err == nil {
		t.Fatal("empty domain must fail")
	}
	if _, err := st.Manifest("missing"); err == nil {
		t.Fatal("missing manifest must fail")
	}
	if _, err := st.ReadState("missing"); err == nil {
		t.Fatal("missing state must fail")
	}
	// Corrupted state file.
	dir := filepath.Join(st.Dir(), "bad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "state.csv"), []byte("x,y\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadState("bad"); err == nil {
		t.Fatal("malformed header must fail")
	}
	// Non-directory entries in the store root are ignored by Domains.
	if err := os.WriteFile(filepath.Join(st.Dir(), "junk.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	domains, err := st.Domains()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range domains {
		if d == "junk.txt" || d == "bad" {
			t.Fatalf("domains include non-domain entry: %v", domains)
		}
	}
}

func TestReadSequenceCorrupt(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(st.Dir(), "bad", "signals")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"badt.csv":    "t,sid,v,bid\nxx,s,1,FC\n",
		"badcols.csv": "t,sid\n1,s\n",
	}
	for name, content := range cases {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		sid := name[:len(name)-4]
		if _, err := st.ReadSequence("bad", sid); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestManifestCorrupt(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(st.Dir(), "bad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Manifest("bad"); err == nil {
		t.Fatal("corrupt manifest must fail")
	}
}

func TestOpenCreatesNestedDir(t *testing.T) {
	base := t.TempDir()
	st, err := Open(filepath.Join(base, "a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.Dir()); err != nil {
		t.Fatal(err)
	}
	// Domains on an empty store.
	domains, err := st.Domains()
	if err != nil || len(domains) != 0 {
		t.Fatalf("empty store domains = %v, %v", domains, err)
	}
}
