package store

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"ivnt/internal/relation"
	"ivnt/internal/staterep"
	"ivnt/internal/trace"
)

// TestReadCSVRoundTrip guards the streaming readers' correctness: what
// the writers emit comes back identical, including cells that look
// like CSV metacharacters.
func TestReadCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()

	tb := &staterep.Table{
		Signals: []string{"speed", "door,\"x\""},
		Times:   []float64{0.5, 1.25, 2},
		Cells: [][]string{
			{"10", "open"},
			{"20", "closed,half"},
			{"", "–"},
		},
	}
	spath := filepath.Join(dir, "state.csv")
	if err := writeStateCSV(spath, tb); err != nil {
		t.Fatal(err)
	}
	got, err := readStateCSV(spath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb, got) {
		t.Fatalf("state table round trip:\n got %+v\nwant %+v", got, tb)
	}

	rel := relation.New(trace.SignalSchema())
	for i := 0; i < 10; i++ {
		rel.Append(relation.Row{
			relation.Float(float64(i) * 0.5),
			relation.Str(fmt.Sprintf("sig-%d", i%3)),
			relation.Str(fmt.Sprintf("v%d", i)),
			relation.Str("b0"),
		})
	}
	qpath := filepath.Join(dir, "seq.csv")
	if err := writeSequenceCSV(qpath, rel); err != nil {
		t.Fatal(err)
	}
	back, err := readSequenceCSV(qpath)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != rel.NumRows() {
		t.Fatalf("sequence round trip: %d rows, want %d", back.NumRows(), rel.NumRows())
	}
	a, b := rel.Rows(), back.Rows()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("row %d: got %v, want %v", i, b[i], a[i])
		}
	}
}

// TestReadCSVAllocations pins the streaming behaviour of the CSV
// readers: a record-at-a-time loop with ReuseRecord stays around two
// heap allocations per row, while the old ReadAll path (a [][]string
// of the whole file built before conversion) sat well above four. The
// ceiling fails if anyone reintroduces whole-file buffering.
func TestReadCSVAllocations(t *testing.T) {
	dir := t.TempDir()
	const n = 4000

	rel := relation.New(trace.SignalSchema())
	for i := 0; i < n; i++ {
		rel.Append(relation.Row{
			relation.Float(float64(i)),
			relation.Str("signal-7"),
			relation.Str("v12"),
			relation.Str("b3"),
		})
	}
	qpath := filepath.Join(dir, "seq.csv")
	if err := writeSequenceCSV(qpath, rel); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := readSequenceCSV(qpath); err != nil {
			t.Fatal(err)
		}
	})
	if perRow := allocs / n; perRow > 3.5 {
		t.Fatalf("readSequenceCSV allocates %.2f objects/row (%.0f total for %d rows); the streaming path stays under 3.5",
			perRow, allocs, n)
	}

	tb := &staterep.Table{Signals: []string{"a", "b", "c"}}
	for i := 0; i < n; i++ {
		tb.Times = append(tb.Times, float64(i))
		tb.Cells = append(tb.Cells, []string{"1", "2", "3"})
	}
	spath := filepath.Join(dir, "state.csv")
	if err := writeStateCSV(spath, tb); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(5, func() {
		if _, err := readStateCSV(spath); err != nil {
			t.Fatal(err)
		}
	})
	if perRow := allocs / n; perRow > 3.5 {
		t.Fatalf("readStateCSV allocates %.2f objects/row (%.0f total for %d rows); the streaming path stays under 3.5",
			perRow, allocs, n)
	}
}
