package extend

import (
	"context"
	"math"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
)

var ctx = context.Background()

func seqRow(t float64, sid string, v float64, bid string) relation.Row {
	return relation.Row{relation.Float(t), relation.Str(sid), relation.Float(v), relation.Str(bid)}
}

func wposSeq() *relation.Relation {
	// Table 2's example: wpos at 2s, 2.5s, 2.9s → gaps 0.5, 0.4.
	return relation.FromRows(rules.SequenceSchema(), []relation.Row{
		seqRow(2.0, "wpos", 45, "FC"),
		seqRow(2.5, "wpos", 60, "FC"),
		seqRow(2.9, "wpos", 70, "FC"),
	})
}

func TestApplyGapExtension(t *testing.T) {
	ext := rules.Extension{WID: "wposGap", SID: "wpos", Expr: "gap(t)"}
	w, err := Apply(ctx, engine.NewLocal(1), wposSeq(), ext)
	if err != nil {
		t.Fatal(err)
	}
	rows := w.Rows()
	// Head row has no gap → 2 meta instances.
	if len(rows) != 2 {
		t.Fatalf("W rows = %d, want 2: %v", len(rows), rows)
	}
	if rows[0][1].AsString() != "wposGap" {
		t.Fatalf("w_id = %q", rows[0][1])
	}
	if math.Abs(rows[0][2].AsFloat()-0.5) > 1e-9 || math.Abs(rows[1][2].AsFloat()-0.4) > 1e-9 {
		t.Fatalf("gaps = %v, %v", rows[0][2], rows[1][2])
	}
	if !w.Schema.Equal(rules.SequenceSchema()) {
		t.Fatalf("W schema = %s", w.Schema)
	}
}

func TestApplyWildcardExtensionNamesPerSource(t *testing.T) {
	ext := rules.Extension{WID: "gap", SID: "*", Expr: "gap(t)"}
	w, err := Apply(ctx, engine.NewLocal(1), wposSeq(), ext)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumRows() == 0 || w.Rows()[0][1].AsString() != "gap.wpos" {
		t.Fatalf("wildcard w_id = %v", w.Rows())
	}
}

func TestRunMultipleExtensions(t *testing.T) {
	cfg := &rules.DomainConfig{
		Name: "wiper",
		SIDs: []string{"wpos"},
		Extensions: []rules.Extension{
			{WID: "wposGap", SID: "wpos", Expr: "gap(t)"},
			{WID: "wposDouble", SID: "wpos", Expr: "v * 2"},
		},
	}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	w, err := Run(ctx, engine.NewLocal(1), "wpos", wposSeq(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumRows() != 2+3 {
		t.Fatalf("W rows = %d, want 5", w.NumRows())
	}
}

func TestRunNoExtensionsIsNil(t *testing.T) {
	cfg := &rules.DomainConfig{Name: "x", SIDs: []string{"wpos"}}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	w, err := Run(ctx, engine.NewLocal(1), "wpos", wposSeq(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatalf("expected nil W, got %d rows", w.NumRows())
	}
}

func TestApplyBadExpressionFails(t *testing.T) {
	ext := rules.Extension{WID: "w", SID: "wpos", Expr: "nosuchcol + 1"}
	if _, err := Apply(ctx, engine.NewLocal(1), wposSeq(), ext); err == nil {
		t.Fatal("bad expression must fail")
	}
}
