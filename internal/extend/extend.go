// Package extend implements extension rules (Sec. 4.1, Algorithm 1
// line 12): deriving meta-data sequences W of instances ŵ = (v, w_id)
// from reduced signal sequences — e.g. the gap between consecutive
// wpos occurrences (Table 2), or computations over other columns.
package extend

import (
	"context"
	"fmt"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

// Apply evaluates one extension rule over a signal sequence and returns
// the W sequence in K_s shape: (t, sid=w_id, v, bid). Rows whose
// expression evaluates to null (e.g. gap(t) at the sequence head)
// produce no meta instance.
func Apply(ctx context.Context, exec engine.Executor, seq *relation.Relation, ext rules.Extension) (*relation.Relation, error) {
	wid := ext.WID
	if ext.SID == "*" {
		// Wildcard extensions derive one meta signal per source signal.
		sidIdx := seq.Schema.Index(trace.ColSID)
		if sidIdx >= 0 && seq.NumRows() > 0 {
			wid = ext.WID + "." + seq.Rows()[0][sidIdx].AsString()
		}
	}
	ops := []engine.OpDesc{
		engine.AddColumn("w", relation.KindNull, ext.Expr),
		engine.Filter("!isnull(w)"),
		engine.AddColumn("wid", relation.KindString, fmt.Sprintf("%q", wid)),
		engine.Project(trace.ColT, "wid", "w", trace.ColBID),
	}
	out, _, err := exec.RunStage(ctx, seq, ops)
	if err != nil {
		return nil, fmt.Errorf("extend: %s: %w", ext.WID, err)
	}
	// Rename columns back to the canonical K_s shape.
	out.Schema = rules.SequenceSchema()
	return out, nil
}

// Run applies every extension of the domain config that derives from
// the given signal, returning the concatenated W relation (nil when no
// extension applies).
func Run(ctx context.Context, exec engine.Executor, sid string, seq *relation.Relation, cfg *rules.DomainConfig) (*relation.Relation, error) {
	var acc *relation.Relation
	for _, ext := range cfg.ExtensionsFor(sid) {
		w, err := Apply(ctx, exec, seq, ext)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = w
			continue
		}
		acc, err = acc.Concat(w)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
