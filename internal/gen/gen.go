// Package gen synthesizes in-vehicle network traces whose statistics
// match the paper's three evaluation data sets (Table 5): SYN (13
// signal types), LIG (180, the light functions) and STA (78, the car
// state). The real data sets are proprietary BMW fleet recordings; the
// generator reproduces their cost-relevant characteristics — signal
// type counts per processing branch, mean signal types per message,
// cyclic repetition, gateway forwarding — under fixed seeds, so every
// experiment is replicable (see DESIGN.md, substitutions).
package gen

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ivnt/internal/protocol"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

// DatasetSpec parameterizes one synthetic data set.
type DatasetSpec struct {
	Name string
	// Alpha, Beta, Gamma are the signal-type counts per processing
	// branch (Table 5's "# signal types - α/β/γ" rows).
	Alpha, Beta, Gamma int
	// SignalsPerMessage is the target mean signal types per message
	// (Table 5's ∅ row).
	SignalsPerMessage float64
	// Seed fixes the value processes.
	Seed int64
	// GatewayFraction of signals is additionally forwarded on a second
	// channel (recorded twice, exercising line 9's dedup). Default 0.1.
	GatewayFraction float64
	// OutlierRate injects value spikes per numeric signal instance;
	// CycleDropRate skips cyclic sends (cycle-time violations).
	OutlierRate   float64
	CycleDropRate float64
}

// The paper's three data sets (Table 5). Example counts are passed to
// Generate separately so benches can scale them.
var (
	SYN = DatasetSpec{Name: "SYN", Alpha: 6, Beta: 4, Gamma: 3,
		SignalsPerMessage: 1.47, Seed: 101, GatewayFraction: 0.15,
		OutlierRate: 0.0005, CycleDropRate: 0.0005}
	LIG = DatasetSpec{Name: "LIG", Alpha: 27, Beta: 71, Gamma: 82,
		SignalsPerMessage: 5.11, Seed: 202, GatewayFraction: 0.1,
		OutlierRate: 0.0003, CycleDropRate: 0.0003}
	STA = DatasetSpec{Name: "STA", Alpha: 6, Beta: 1, Gamma: 71,
		SignalsPerMessage: 3.66, Seed: 303, GatewayFraction: 0.1,
		OutlierRate: 0.0003, CycleDropRate: 0.0003}
)

// PaperExamples are the full example counts of Table 5, used by the
// bench harness to report scale factors.
var PaperExamples = map[string]int{"SYN": 13197983, "LIG": 12306327, "STA": 4807891}

// ByName resolves a data set spec.
func ByName(name string) (DatasetSpec, error) {
	switch name {
	case "SYN", "syn":
		return SYN, nil
	case "LIG", "lig":
		return LIG, nil
	case "STA", "sta":
		return STA, nil
	default:
		return DatasetSpec{}, fmt.Errorf("gen: unknown data set %q (want SYN, LIG or STA)", name)
	}
}

// NumSignals returns the total signal-type count.
func (s DatasetSpec) NumSignals() int { return s.Alpha + s.Beta + s.Gamma }

// signalKind is the generator-side branch a signal targets.
type signalKind uint8

const (
	kindNumeric signalKind = iota // branch α: fast numeric
	kindOrdinal                   // branch β: slow stepped
	kindNominal                   // branch γ: unordered states
	kindBinary                    // branch γ: two states
)

// signal is one generated signal type with its value process state.
type signal struct {
	sid    string
	kind   signalKind
	def    protocol.SignalDef
	levels []string // ordinal/nominal/binary symbol set

	// process state
	value     float64
	target    float64
	direction float64
}

// message is one generated message layout.
type message struct {
	id        uint32
	channel   string
	cycle     float64
	payload   int // bytes
	signals   []*signal
	gateway   string // non-empty: forwarded channel
	gatewayID uint32
}

// Dataset is a constructed synthetic data set: message layouts, the
// rules catalog describing them (the "documentation") and a default
// domain configuration.
type Dataset struct {
	Spec     DatasetSpec
	Catalog  *rules.Catalog
	messages []*message
	signals  []*signal
	rng      *rand.Rand
}

// Build constructs the data set's layouts and catalog.
func Build(spec DatasetSpec) *Dataset {
	if spec.GatewayFraction == 0 {
		spec.GatewayFraction = 0.1
	}
	d := &Dataset{Spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
	total := spec.NumSignals()

	// Create signals: α fast numeric, β ordinal, γ split between
	// nominal and binary (two thirds nominal, like the inspected
	// fleets' validity/state signals).
	for i := 0; i < spec.Alpha; i++ {
		d.signals = append(d.signals, &signal{
			sid:  fmt.Sprintf("%s.num%02d", spec.Name, i),
			kind: kindNumeric,
		})
	}
	ordScale := []string{"off", "low", "medium", "high", "max"}
	for i := 0; i < spec.Beta; i++ {
		d.signals = append(d.signals, &signal{
			sid:    fmt.Sprintf("%s.ord%02d", spec.Name, i),
			kind:   kindOrdinal,
			levels: ordScale,
		})
	}
	nomStates := []string{"driving", "parking", "charging", "idle", "towing"}
	for i := 0; i < spec.Gamma; i++ {
		s := &signal{sid: fmt.Sprintf("%s.nom%02d", spec.Name, i), kind: kindNominal, levels: nomStates}
		if i%3 == 2 {
			s.sid = fmt.Sprintf("%s.bin%02d", spec.Name, i)
			s.kind = kindBinary
			s.levels = []string{"OFF", "ON"}
		}
		d.signals = append(d.signals, s)
	}

	// Group signals into messages hitting the target mean
	// signals-per-message. Message count = round(total / mean).
	numMsgs := int(math.Round(float64(total) / spec.SignalsPerMessage))
	if numMsgs < 1 {
		numMsgs = 1
	}
	channels := []string{"FC", "DC", "K-LIN", "ETH1"}
	for m := 0; m < numMsgs; m++ {
		msg := &message{
			id:      uint32(0x100 + m),
			channel: channels[m%len(channels)],
		}
		d.messages = append(d.messages, msg)
	}
	// Round-robin signals over messages; fast signals first so cycle
	// assignment below can make their host messages fast.
	for i, s := range d.signals {
		msg := d.messages[i%numMsgs]
		msg.signals = append(msg.signals, s)
	}
	// Lay out payloads and assign cycles: a message is fast when it
	// carries any numeric signal.
	for _, msg := range d.messages {
		bit := 0
		fast := false
		for _, s := range msg.signals {
			switch s.kind {
			case kindNumeric:
				fast = true
				s.def = protocol.SignalDef{Name: s.sid, StartBit: bit, BitLen: 16, Scale: 0.05, Offset: -800}
				bit += 16
			default:
				s.def = protocol.SignalDef{Name: s.sid, StartBit: bit, BitLen: 8}
				bit += 8
			}
		}
		msg.payload = (bit + 7) / 8
		if msg.payload == 0 {
			msg.payload = 1
		}
		if fast {
			msg.cycle = 0.02 + d.rng.Float64()*0.08 // 20–100 ms
		} else {
			msg.cycle = 0.2 + d.rng.Float64()*0.8 // 200 ms–1 s
		}
		// Gateway forwarding for a fraction of messages.
		if d.rng.Float64() < spec.GatewayFraction {
			msg.gateway = channels[(int(msg.id)+1)%len(channels)]
			msg.gatewayID = msg.id + 0x1000
		}
	}
	d.Catalog = d.buildCatalog()
	return d
}

// buildCatalog renders the generated layouts as U_rel translation
// tuples, including forwarded routes.
func (d *Dataset) buildCatalog() *rules.Catalog {
	cat := &rules.Catalog{}
	add := func(s *signal, msg *message, channel string, mid uint32) {
		first, last := s.def.RelevantBytes()
		// Rules operate on lrel: shift the definition to the slice.
		rel := s.def
		rel.StartBit -= first * 8
		t := rules.Translation{
			SID:       s.sid,
			Channel:   channel,
			MsgID:     mid,
			FirstByte: first,
			LastByte:  last,
			CycleTime: msg.cycle,
		}
		switch s.kind {
		case kindNumeric:
			t.Rule = rel.RuleExprCol("lrel")
			t.Class = rules.ClassNumeric
		case kindOrdinal:
			t.Rule = fmt.Sprintf("lookup(%s, %q)", rel.RuleExprCol("lrel"), levelTable(s.levels))
			t.Class = rules.ClassOrdinal
			t.OrdinalScale = s.levels
		case kindNominal:
			t.Rule = fmt.Sprintf("lookup(%s, %q)", rel.RuleExprCol("lrel"), levelTable(s.levels))
			t.Class = rules.ClassNominal
		case kindBinary:
			t.Rule = fmt.Sprintf("lookup(%s, %q)", rel.RuleExprCol("lrel"), levelTable(s.levels))
			t.Class = rules.ClassBinary
		}
		cat.Translations = append(cat.Translations, t)
	}
	for _, msg := range d.messages {
		for _, s := range msg.signals {
			add(s, msg, msg.channel, msg.id)
			if msg.gateway != "" {
				add(s, msg, msg.gateway, msg.gatewayID)
			}
		}
	}
	return cat
}

func levelTable(levels []string) string {
	vt := make(map[uint64]string, len(levels))
	for i, l := range levels {
		vt[uint64(i)] = l
	}
	return rules.ValueTableString(vt)
}

// DefaultConfig builds the domain configuration the paper's evaluation
// uses: all signal types selected, identical-subsequent-instance
// reduction, cycle-violation preservation.
func (d *Dataset) DefaultConfig() *rules.DomainConfig {
	cfg := &rules.DomainConfig{
		Name:        d.Spec.Name,
		SIDs:        d.Catalog.SIDs(),
		Constraints: []rules.Constraint{rules.ChangeConstraint("*")},
	}
	if err := cfg.Normalize(); err != nil {
		panic(err) // generated configs are valid by construction
	}
	return cfg
}

// SelectSIDs returns the first n signal ids (deterministic), for the
// Table 6 experiments extracting 9 vs 89 signals.
func (d *Dataset) SelectSIDs(n int) []string {
	sids := d.Catalog.SIDs()
	if n > len(sids) {
		n = len(sids)
	}
	return sids[:n]
}

// schedEntry is one message's next send time in the generator's event
// queue.
type schedEntry struct {
	at  float64
	msg *message
	seq int
}

type sched []schedEntry

func (s sched) Len() int { return len(s) }
func (s sched) Less(i, j int) bool {
	if s[i].at != s[j].at {
		return s[i].at < s[j].at
	}
	return s[i].seq < s[j].seq
}
func (s sched) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s *sched) Push(x any)   { *s = append(*s, x.(schedEntry)) }
func (s *sched) Pop() any     { old := *s; n := len(old); e := old[n-1]; *s = old[:n-1]; return e }

// Generate produces a trace of exactly numExamples message instances
// (forwarded gateway copies included in the count), in time order.
func (d *Dataset) Generate(numExamples int) *trace.Trace {
	rng := rand.New(rand.NewSource(d.Spec.Seed + 7))
	for _, s := range d.signals {
		s.reset(rng)
	}
	q := make(sched, 0, len(d.messages))
	for i, msg := range d.messages {
		heap.Push(&q, schedEntry{at: rng.Float64() * msg.cycle, msg: msg, seq: i})
	}
	tr := &trace.Trace{Tuples: make([]trace.ByteTuple, 0, numExamples)}
	seq := len(d.messages)
	for len(tr.Tuples) < numExamples && q.Len() > 0 {
		e := heap.Pop(&q).(schedEntry)
		msg := e.msg
		// Cycle drop: skip this beat, leaving a gap (violation).
		if rng.Float64() >= d.Spec.CycleDropRate {
			payload := make([]byte, msg.payload)
			for _, s := range msg.signals {
				s.step(rng, msg.cycle)
				v := s.value
				if s.kind == kindNumeric && rng.Float64() < d.Spec.OutlierRate {
					v = s.value*10 + 500 // spike
				}
				// Encode clamps out-of-range values.
				_ = s.def.EncodePhysical(payload, v)
			}
			tr.Append(trace.ByteTuple{
				T: e.at, Channel: msg.channel, MsgID: msg.id, Payload: payload,
				Info: trace.MsgInfo{Protocol: protoFor(msg.channel), DLC: uint8(msg.payload)},
			})
			if msg.gateway != "" && len(tr.Tuples) < numExamples {
				fwd := make([]byte, len(payload))
				copy(fwd, payload)
				tr.Append(trace.ByteTuple{
					T: e.at + 0.0005, Channel: msg.gateway, MsgID: msg.gatewayID, Payload: fwd,
					Info: trace.MsgInfo{Protocol: protoFor(msg.gateway), DLC: uint8(msg.payload)},
				})
			}
		}
		heap.Push(&q, schedEntry{at: e.at + msg.cycle, msg: msg, seq: seq})
		seq++
	}
	// Gateway copies are stamped shortly after their originals and can
	// interleave with other messages' beats; restore global time order.
	sort.SliceStable(tr.Tuples, func(i, j int) bool { return tr.Tuples[i].T < tr.Tuples[j].T })
	return tr
}

func protoFor(channel string) trace.Protocol {
	switch channel {
	case "K-LIN":
		return trace.ProtoLIN
	case "ETH1":
		return trace.ProtoSOMEIP
	default:
		return trace.ProtoCAN
	}
}

// reset initializes a signal's value process.
func (s *signal) reset(rng *rand.Rand) {
	switch s.kind {
	case kindNumeric:
		s.value = rng.Float64() * 100
		s.target = rng.Float64() * 100
	default:
		s.value = float64(rng.Intn(len(s.levels)))
	}
}

// step advances the value process by one send cycle.
func (s *signal) step(rng *rand.Rand, cycle float64) {
	switch s.kind {
	case kindNumeric:
		// Ramp towards a target with noise; pick a new target when
		// reached — produces the segments SWAB recovers.
		if math.Abs(s.value-s.target) < 1 {
			s.target = rng.Float64() * 100
		}
		dir := 1.0
		if s.target < s.value {
			dir = -1
		}
		s.value += dir*20*cycle + rng.NormFloat64()*0.2
	case kindOrdinal:
		// Mostly hold; occasionally step one level.
		if rng.Float64() < 0.1 {
			s.value += float64(rng.Intn(3) - 1)
			s.value = clampf(s.value, 0, float64(len(s.levels)-1))
		}
	case kindNominal:
		if rng.Float64() < 0.05 {
			s.value = float64(rng.Intn(len(s.levels)))
		}
	case kindBinary:
		if rng.Float64() < 0.03 {
			s.value = 1 - s.value
		}
	}
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GenerateJourneys produces n independent journeys (separate traces
// with distinct seeds), the fleet shape of Table 6.
func GenerateJourneys(spec DatasetSpec, journeys, examplesPerJourney int) []*trace.Trace {
	out := make([]*trace.Trace, journeys)
	for j := 0; j < journeys; j++ {
		s := spec
		s.Seed = spec.Seed + int64(j)*1000
		out[j] = Build(s).Generate(examplesPerJourney)
	}
	return out
}

// Stats summarizes a built data set against Table 5.
type Stats struct {
	Name               string
	SignalTypes        int
	Alpha, Beta, Gamma int
	Examples           int
	SignalsPerMessage  float64
}

// DatasetStats computes the Table 5 statistics row for a generated
// trace.
func (d *Dataset) DatasetStats(tr *trace.Trace) Stats {
	totalSignals := 0
	for _, msg := range d.messages {
		totalSignals += len(msg.signals)
	}
	perMsg := float64(totalSignals) / float64(len(d.messages))
	return Stats{
		Name:              d.Spec.Name,
		SignalTypes:       d.Spec.NumSignals(),
		Alpha:             d.Spec.Alpha,
		Beta:              d.Spec.Beta,
		Gamma:             d.Spec.Gamma,
		Examples:          tr.Len(),
		SignalsPerMessage: perMsg,
	}
}
