package gen

import (
	"context"
	"math"
	"testing"

	"ivnt/internal/core"
	"ivnt/internal/engine"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"SYN", "LIG", "STA", "syn"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown data set must fail")
	}
}

// TestTable5SignalCounts verifies the generator reproduces Table 5's
// per-branch signal-type counts exactly.
func TestTable5SignalCounts(t *testing.T) {
	cases := []struct {
		spec  DatasetSpec
		total int
	}{
		{SYN, 13},
		{LIG, 180},
		{STA, 78},
	}
	for _, c := range cases {
		if c.spec.NumSignals() != c.total {
			t.Errorf("%s: signals = %d, want %d", c.spec.Name, c.spec.NumSignals(), c.total)
		}
		d := Build(c.spec)
		if len(d.signals) != c.total {
			t.Errorf("%s: built %d signals", c.spec.Name, len(d.signals))
		}
		if err := d.Catalog.Validate(); err != nil {
			t.Errorf("%s: catalog invalid: %v", c.spec.Name, err)
		}
	}
}

func TestSignalsPerMessageMatchesTable5(t *testing.T) {
	for _, spec := range []DatasetSpec{SYN, LIG, STA} {
		d := Build(spec)
		tr := d.Generate(100)
		st := d.DatasetStats(tr)
		if math.Abs(st.SignalsPerMessage-spec.SignalsPerMessage) > 0.5 {
			t.Errorf("%s: signals/message = %.2f, want ≈%.2f",
				spec.Name, st.SignalsPerMessage, spec.SignalsPerMessage)
		}
		if st.Examples != 100 {
			t.Errorf("%s: examples = %d", spec.Name, st.Examples)
		}
	}
}

func TestGenerateExactCountAndOrder(t *testing.T) {
	d := Build(SYN)
	tr := d.Generate(5000)
	if tr.Len() != 5000 {
		t.Fatalf("examples = %d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Tuples[i].T < tr.Tuples[i-1].T {
			t.Fatalf("trace not time-ordered at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Build(SYN).Generate(2000)
	b := Build(SYN).Generate(2000)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Tuples {
		x, y := a.Tuples[i], b.Tuples[i]
		if x.T != y.T || x.MsgID != y.MsgID || string(x.Payload) != string(y.Payload) {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestGatewayForwardingPresent(t *testing.T) {
	d := Build(SYN) // GatewayFraction 0.15, seeded: at least one forwarded message expected
	tr := d.Generate(3000)
	forwarded := 0
	for _, k := range tr.Tuples {
		if k.MsgID >= 0x1000 {
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Skip("seed produced no forwarded messages; acceptable but unusual")
	}
}

func TestGeneratedTraceRunsThroughFramework(t *testing.T) {
	// The generator's catalog and trace must be mutually consistent:
	// the full pipeline runs and classifies signals into the intended
	// branches.
	d := Build(SYN)
	fw, err := core.New(d.Catalog, d.DefaultConfig(), engine.NewLocal(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunTrace(context.Background(), d.Generate(20000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signals) != 13 {
		t.Fatalf("processed signals = %d, want 13", len(res.Signals))
	}
	branchCounts := map[string]int{}
	for _, s := range res.Signals {
		branchCounts[s.Branch.String()]++
	}
	// All 6 numeric signals must land in α; ordinals in β; the rest in
	// γ. Slow/degenerate edge cases may push individual signals to γ,
	// so require at least the majority shape.
	if branchCounts["alpha"] < 4 {
		t.Fatalf("branch counts = %v, want ≥4 alpha", branchCounts)
	}
	if branchCounts["gamma"] < 3 {
		t.Fatalf("branch counts = %v, want ≥3 gamma", branchCounts)
	}
	if res.ReductionRatio() >= 1 {
		t.Fatalf("no reduction achieved: %v", res.ReductionRatio())
	}
}

func TestGenerateJourneysIndependent(t *testing.T) {
	js := GenerateJourneys(SYN, 3, 500)
	if len(js) != 3 {
		t.Fatalf("journeys = %d", len(js))
	}
	if js[0].Tuples[10].Payload[0] == js[1].Tuples[10].Payload[0] &&
		js[0].Tuples[11].Payload[0] == js[1].Tuples[11].Payload[0] &&
		js[0].Tuples[12].Payload[0] == js[1].Tuples[12].Payload[0] {
		t.Log("journeys look suspiciously similar (may be coincidence)")
	}
	for _, j := range js {
		if j.Len() != 500 {
			t.Fatalf("journey length = %d", j.Len())
		}
	}
}

func TestSelectSIDs(t *testing.T) {
	d := Build(LIG)
	nine := d.SelectSIDs(9)
	if len(nine) != 9 {
		t.Fatalf("selected = %d", len(nine))
	}
	all := d.SelectSIDs(10000)
	if len(all) != 180 {
		t.Fatalf("selected all = %d", len(all))
	}
}

func TestOutlierAndDropInjection(t *testing.T) {
	spec := SYN
	spec.OutlierRate = 0.05
	spec.CycleDropRate = 0.05
	d := Build(spec)
	tr := d.Generate(2000)
	if tr.Len() != 2000 {
		t.Fatalf("examples = %d", tr.Len())
	}
}
