package protocol

import (
	"testing"
	"testing/quick"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

func TestDecodeRawMotorola(t *testing.T) {
	payload := []byte{0x5A, 0x01, 0xFF, 0x80}
	cases := []struct {
		def  SignalDef
		want uint64
	}{
		{SignalDef{Name: "a", StartBit: 0, BitLen: 8}, 0x5A},
		{SignalDef{Name: "b", StartBit: 0, BitLen: 16}, 0x5A01},
		{SignalDef{Name: "c", StartBit: 4, BitLen: 8}, 0xA0},
		{SignalDef{Name: "d", StartBit: 16, BitLen: 4}, 0xF},
		{SignalDef{Name: "e", StartBit: 24, BitLen: 1}, 1},
		{SignalDef{Name: "f", StartBit: 25, BitLen: 7}, 0},
	}
	for _, c := range cases {
		got, err := c.def.DecodeRaw(payload)
		if err != nil {
			t.Fatalf("%s: %v", c.def.Name, err)
		}
		if got != c.want {
			t.Errorf("%s: raw = %#x, want %#x", c.def.Name, got, c.want)
		}
	}
}

func TestDecodeRawIntel(t *testing.T) {
	payload := []byte{0x01, 0x02, 0x03}
	def := SignalDef{Name: "x", StartBit: 0, BitLen: 16, Order: Intel}
	got, err := def.DecodeRaw(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x0201 {
		t.Fatalf("intel raw = %#x, want 0x0201", got)
	}
}

func TestDecodePhysicalScaleOffsetSigned(t *testing.T) {
	payload := []byte{0xFF} // raw 255 unsigned, -1 signed
	uns := SignalDef{Name: "u", StartBit: 0, BitLen: 8, Scale: 0.5, Offset: -10}
	v, err := uns.DecodePhysical(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v != 255*0.5-10 {
		t.Fatalf("unsigned physical = %v", v)
	}
	sig := SignalDef{Name: "s", StartBit: 0, BitLen: 8, Signed: true, Scale: 2}
	v, err = sig.DecodePhysical(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v != -2 {
		t.Fatalf("signed physical = %v, want -2", v)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	defs := []SignalDef{
		{Name: "a", StartBit: 0, BitLen: 12, Scale: 0.25, Offset: -100},
		{Name: "b", StartBit: 12, BitLen: 4},
		{Name: "c", StartBit: 16, BitLen: 8, Signed: true},
		{Name: "d", StartBit: 24, BitLen: 16, Order: Intel},
	}
	payload := make([]byte, 5)
	want := map[string]float64{"a": -25.5, "b": 9, "c": -42, "d": 513}
	for i := range defs {
		if err := defs[i].EncodePhysical(payload, want[defs[i].Name]); err != nil {
			t.Fatalf("encode %s: %v", defs[i].Name, err)
		}
	}
	for i := range defs {
		got, err := defs[i].DecodePhysical(payload)
		if err != nil {
			t.Fatalf("decode %s: %v", defs[i].Name, err)
		}
		if got != want[defs[i].Name] {
			t.Errorf("%s: round trip %v, want %v", defs[i].Name, got, want[defs[i].Name])
		}
	}
}

func TestEncodePhysicalClamps(t *testing.T) {
	payload := make([]byte, 1)
	def := SignalDef{Name: "x", StartBit: 0, BitLen: 8}
	if err := def.EncodePhysical(payload, 300); err != nil {
		t.Fatal(err)
	}
	if payload[0] != 0xFF {
		t.Fatalf("overflow must clamp to 255, got %d", payload[0])
	}
	if err := def.EncodePhysical(payload, -5); err != nil {
		t.Fatal(err)
	}
	if payload[0] != 0 {
		t.Fatalf("underflow must clamp to 0, got %d", payload[0])
	}
	sdef := SignalDef{Name: "s", StartBit: 0, BitLen: 8, Signed: true}
	if err := sdef.EncodePhysical(payload, 500); err != nil {
		t.Fatal(err)
	}
	if payload[0] != 0x7F {
		t.Fatalf("signed overflow must clamp to 127, got %d", payload[0])
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []SignalDef{
		{Name: "", StartBit: 0, BitLen: 8},
		{Name: "x", StartBit: 0, BitLen: 0},
		{Name: "x", StartBit: 0, BitLen: 65},
		{Name: "x", StartBit: -1, BitLen: 8},
		{Name: "x", StartBit: 60, BitLen: 8}, // exceeds 8-byte payload
	}
	for i, def := range cases {
		if err := def.Validate(8); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, def)
		}
	}
}

func TestEncodeRawRejectsOverflow(t *testing.T) {
	payload := make([]byte, 1)
	def := SignalDef{Name: "x", StartBit: 0, BitLen: 4}
	if err := def.EncodeRaw(payload, 16); err == nil {
		t.Fatal("raw overflow must error")
	}
}

func TestDecodeSymbolic(t *testing.T) {
	def := SignalDef{Name: "light", StartBit: 0, BitLen: 2,
		ValueTable: map[uint64]string{0: "off", 1: "parklight on", 2: "headlight on"}}
	payload := []byte{0x40} // raw 1
	got, err := def.DecodeSymbolic(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != "parklight on" {
		t.Fatalf("symbolic = %q", got)
	}
	payload[0] = 0xC0 // raw 3, not in table
	got, err = def.DecodeSymbolic(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != "raw(3)" {
		t.Fatalf("missing entry = %q", got)
	}
}

// TestRuleExprMatchesDecode is the load-bearing consistency check: the
// expression a SignalDef renders for the interpretation pipeline must
// compute exactly what the codec computes.
func TestRuleExprMatchesDecode(t *testing.T) {
	schema := relation.NewSchema(relation.Column{Name: "l", Kind: relation.KindBytes})
	defs := []SignalDef{
		{Name: "plain", StartBit: 3, BitLen: 11},
		{Name: "scaled", StartBit: 0, BitLen: 16, Scale: 0.5, Offset: -40},
		{Name: "signed", StartBit: 16, BitLen: 8, Signed: true, Scale: 0.1},
		{Name: "intel", StartBit: 24, BitLen: 16, Order: Intel, Scale: 2},
	}
	payloads := [][]byte{
		{0x5A, 0x01, 0xFF, 0x80, 0x7E},
		{0x00, 0x00, 0x00, 0x00, 0x00},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x12, 0x34, 0x56, 0x78, 0x9A},
	}
	for _, def := range defs {
		prog, err := expr.Compile(def.RuleExpr(), schema)
		if err != nil {
			t.Fatalf("%s: rule %q does not compile: %v", def.Name, def.RuleExpr(), err)
		}
		for _, payload := range payloads {
			want, err := def.DecodePhysical(payload)
			if err != nil {
				t.Fatal(err)
			}
			got := prog.Eval(expr.SingleRowEnv{Row: relation.Row{relation.Bytes(payload)}})
			if got.AsFloat() != want {
				t.Errorf("%s on %x: rule %q = %v, codec = %v",
					def.Name, payload, def.RuleExpr(), got.AsFloat(), want)
			}
		}
	}
}

func TestRuleExprMatchesDecodeProperty(t *testing.T) {
	schema := relation.NewSchema(relation.Column{Name: "l", Kind: relation.KindBytes})
	def := SignalDef{Name: "p", StartBit: 5, BitLen: 13, Signed: true, Scale: 0.25, Offset: 3}
	prog, err := expr.Compile(def.RuleExpr(), schema)
	if err != nil {
		t.Fatal(err)
	}
	f := func(b0, b1, b2 byte) bool {
		payload := []byte{b0, b1, b2}
		want, err := def.DecodePhysical(payload)
		if err != nil {
			return false
		}
		got := prog.Eval(expr.SingleRowEnv{Row: relation.Row{relation.Bytes(payload)}})
		return got.AsFloat() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRawRoundTripProperty(t *testing.T) {
	def := SignalDef{Name: "p", StartBit: 7, BitLen: 10}
	f := func(raw uint16) bool {
		r := uint64(raw) & (1<<10 - 1)
		payload := make([]byte, 4)
		if err := def.EncodeRaw(payload, r); err != nil {
			return false
		}
		got, err := def.DecodeRaw(payload)
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelevantBytes(t *testing.T) {
	def := SignalDef{Name: "x", StartBit: 12, BitLen: 10}
	first, last := def.RelevantBytes()
	if first != 1 || last != 2 {
		t.Fatalf("relevant bytes = [%d,%d], want [1,2]", first, last)
	}
}

func TestByteOrderString(t *testing.T) {
	if Motorola.String() != "motorola" || Intel.String() != "intel" {
		t.Fatal("byte order names wrong")
	}
}

func TestIntelUnalignedAndSigned(t *testing.T) {
	// DBC LSB-first numbering: a 12-bit Intel field at bit 4 spans the
	// high nibble of byte 0 and all of byte 1.
	payload := []byte{0xAB, 0xCD, 0xEF}
	def := SignalDef{Name: "x", StartBit: 4, BitLen: 12, Order: Intel}
	raw, err := def.DecodeRaw(payload)
	if err != nil {
		t.Fatal(err)
	}
	// bits 4..15 LSB-first: byte0 high nibble 0xA, then byte1 0xCD
	// shifted: raw = 0xA | 0xCD<<4 = 0xCDA.
	if raw != 0xCDA {
		t.Fatalf("unaligned intel raw = %#x, want 0xCDA", raw)
	}
	sdef := SignalDef{Name: "s", StartBit: 4, BitLen: 12, Order: Intel, Signed: true}
	v, err := sdef.DecodePhysical(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v != float64(int64(0xCDA)-(1<<12)) {
		t.Fatalf("signed unaligned intel = %v", v)
	}
}

func TestIntelEncodeDecodeUnalignedRoundTripProperty(t *testing.T) {
	def := SignalDef{Name: "p", StartBit: 3, BitLen: 13, Order: Intel}
	f := func(raw uint16) bool {
		r := uint64(raw) & (1<<13 - 1)
		payload := make([]byte, 4)
		if err := def.EncodeRaw(payload, r); err != nil {
			return false
		}
		got, err := def.DecodeRaw(payload)
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntelRuleExprMatchesDecodeProperty(t *testing.T) {
	schema := relation.NewSchema(relation.Column{Name: "l", Kind: relation.KindBytes})
	for _, def := range []SignalDef{
		{Name: "u", StartBit: 5, BitLen: 11, Order: Intel, Scale: 0.25},
		{Name: "s", StartBit: 2, BitLen: 9, Order: Intel, Signed: true, Offset: -3},
	} {
		prog, err := expr.Compile(def.RuleExpr(), schema)
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		f := func(b0, b1 byte) bool {
			payload := []byte{b0, b1}
			want, err := def.DecodePhysical(payload)
			if err != nil {
				return false
			}
			got := prog.Eval(expr.SingleRowEnv{Row: relation.Row{relation.Bytes(payload)}})
			return got.AsFloat() == want
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", def.Name, err)
		}
	}
}
