package protocol

import "testing"

// Signal packing/unpacking runs per signal instance in the generator
// and the baseline; keep its cost visible.

func BenchmarkDecodePhysicalMotorola(b *testing.B) {
	def := SignalDef{Name: "s", StartBit: 3, BitLen: 13, Signed: true, Scale: 0.25, Offset: -40}
	payload := []byte{0x5A, 0x01, 0xFF}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := def.DecodePhysical(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePhysicalIntelUnaligned(b *testing.B) {
	def := SignalDef{Name: "s", StartBit: 5, BitLen: 11, Order: Intel, Scale: 0.1}
	payload := []byte{0x5A, 0x01, 0xFF}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := def.DecodePhysical(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePhysical(b *testing.B) {
	def := SignalDef{Name: "s", StartBit: 0, BitLen: 16, Scale: 0.05, Offset: -800}
	payload := make([]byte, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := def.EncodePhysical(payload, float64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}
