// Package someip implements the SOME/IP on-wire header and
// notification payload layouts. SOME/IP payloads are dynamic: the
// paper's Sec. 3.2 highlights rules "where values of preceding bytes
// define the presence of a signal type in succeeding bytes" — modeled
// here by optional fields gated on a presence-mask byte.
package someip

import (
	"encoding/binary"
	"fmt"

	"ivnt/internal/protocol"
)

// HeaderLen is the fixed SOME/IP header size in bytes.
const HeaderLen = 16

// Message types (subset).
const (
	TypeRequest      = 0x00
	TypeNotification = 0x02
	TypeResponse     = 0x80
	TypeError        = 0x81
)

// Header is the SOME/IP message header.
type Header struct {
	ServiceID        uint16
	MethodID         uint16
	Length           uint32 // bytes following the length field (8 + payload)
	ClientID         uint16
	SessionID        uint16
	ProtocolVersion  uint8
	InterfaceVersion uint8
	MessageType      uint8
	ReturnCode       uint8
}

// MessageID packs service and method into the 32-bit message id used as
// m_id in traces.
func (h *Header) MessageID() uint32 { return uint32(h.ServiceID)<<16 | uint32(h.MethodID) }

// Marshal renders the 16-byte header followed by the payload.
func Marshal(h Header, payload []byte) []byte {
	h.Length = uint32(8 + len(payload))
	out := make([]byte, HeaderLen+len(payload))
	binary.BigEndian.PutUint16(out[0:], h.ServiceID)
	binary.BigEndian.PutUint16(out[2:], h.MethodID)
	binary.BigEndian.PutUint32(out[4:], h.Length)
	binary.BigEndian.PutUint16(out[8:], h.ClientID)
	binary.BigEndian.PutUint16(out[10:], h.SessionID)
	out[12] = h.ProtocolVersion
	out[13] = h.InterfaceVersion
	out[14] = h.MessageType
	out[15] = h.ReturnCode
	copy(out[HeaderLen:], payload)
	return out
}

// Unmarshal parses a marshalled message into header and payload.
func Unmarshal(data []byte) (Header, []byte, error) {
	if len(data) < HeaderLen {
		return Header{}, nil, fmt.Errorf("someip: message of %d bytes shorter than header", len(data))
	}
	h := Header{
		ServiceID:        binary.BigEndian.Uint16(data[0:]),
		MethodID:         binary.BigEndian.Uint16(data[2:]),
		Length:           binary.BigEndian.Uint32(data[4:]),
		ClientID:         binary.BigEndian.Uint16(data[8:]),
		SessionID:        binary.BigEndian.Uint16(data[10:]),
		ProtocolVersion:  data[12],
		InterfaceVersion: data[13],
		MessageType:      data[14],
		ReturnCode:       data[15],
	}
	if int(h.Length) != 8+len(data)-HeaderLen {
		return Header{}, nil, fmt.Errorf("someip: length field %d inconsistent with %d payload bytes",
			h.Length, len(data)-HeaderLen)
	}
	return h, data[HeaderLen:], nil
}

// Field is one payload field of a notification layout. Optional fields
// exist only when their presence bit (in the payload's first byte, the
// presence mask) is set; all offsets are relative to the payload start
// and fixed, with absent optional fields zero-filled, keeping the
// layout static while still exercising presence-conditional rules.
type Field struct {
	Def protocol.SignalDef
	// Optional marks presence-gated fields.
	Optional bool
	// PresenceBit is the bit index (0 = MSB) in payload byte 0 checked
	// when Optional.
	PresenceBit int
}

// MessageDef is one documented SOME/IP notification layout.
type MessageDef struct {
	ServiceID  uint16
	MethodID   uint16
	Name       string
	Channel    string
	PayloadLen int // fixed payload size incl. presence mask byte
	CycleTime  float64
	Fields     []Field
}

// MessageID returns the combined 32-bit id.
func (m *MessageDef) MessageID() uint32 { return uint32(m.ServiceID)<<16 | uint32(m.MethodID) }

// Validate checks field geometry.
func (m *MessageDef) Validate() error {
	if m.PayloadLen < 1 {
		return fmt.Errorf("someip: message %s: payload length %d", m.Name, m.PayloadLen)
	}
	for i := range m.Fields {
		f := &m.Fields[i]
		if err := f.Def.Validate(m.PayloadLen); err != nil {
			return fmt.Errorf("someip: message %s: %w", m.Name, err)
		}
		if f.Optional && (f.PresenceBit < 0 || f.PresenceBit > 7) {
			return fmt.Errorf("someip: message %s: field %s: presence bit %d out of range",
				m.Name, f.Def.Name, f.PresenceBit)
		}
		if f.Def.StartBit < 8 {
			return fmt.Errorf("someip: message %s: field %s overlaps presence mask byte",
				m.Name, f.Def.Name)
		}
	}
	return nil
}

// Encode packs present values (by name) into a full marshalled message.
// Values absent from the map leave optional fields unset in the
// presence mask.
func (m *MessageDef) Encode(values map[string]float64) ([]byte, error) {
	payload := make([]byte, m.PayloadLen)
	for i := range m.Fields {
		f := &m.Fields[i]
		v, ok := values[f.Def.Name]
		if !ok {
			continue
		}
		if f.Optional {
			payload[0] |= 1 << (7 - f.PresenceBit)
		}
		if err := f.Def.EncodePhysical(payload, v); err != nil {
			return nil, err
		}
	}
	h := Header{
		ServiceID:       m.ServiceID,
		MethodID:        m.MethodID,
		ProtocolVersion: 1,
		MessageType:     TypeNotification,
	}
	return Marshal(h, payload), nil
}

// Decode unmarshals and unpacks the fields that are present.
func (m *MessageDef) Decode(data []byte) (map[string]float64, error) {
	h, payload, err := Unmarshal(data)
	if err != nil {
		return nil, err
	}
	if h.ServiceID != m.ServiceID || h.MethodID != m.MethodID {
		return nil, fmt.Errorf("someip: message %s: id mismatch %04x.%04x", m.Name, h.ServiceID, h.MethodID)
	}
	out := make(map[string]float64, len(m.Fields))
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Optional && payload[0]&(1<<(7-f.PresenceBit)) == 0 {
			continue
		}
		v, err := f.Def.DecodePhysical(payload)
		if err != nil {
			return nil, err
		}
		out[f.Def.Name] = v
	}
	return out, nil
}

// PresenceRule renders the presence condition of a field as an
// expression over the payload column l (the payload starts after the
// 16-byte header in the recorded bytes): present ⇔ mask bit set. For
// non-optional fields it returns "true".
func (m *MessageDef) PresenceRule(name string) (string, error) {
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Def.Name != name {
			continue
		}
		if !f.Optional {
			return "true", nil
		}
		return fmt.Sprintf("ubits(l, %d, 1) == 1", HeaderLen*8+f.PresenceBit), nil
	}
	return "", fmt.Errorf("someip: message %s: no field %q", m.Name, name)
}

// FieldRule renders the field extraction rule over the recorded bytes
// (header + payload), shifting the documented payload offsets by the
// header size and gating optional fields on their presence bit.
func (m *MessageDef) FieldRule(name string) (string, error) {
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Def.Name != name {
			continue
		}
		shifted := f.Def
		shifted.StartBit += HeaderLen * 8
		rule := shifted.RuleExpr()
		if f.Optional {
			pres, err := m.PresenceRule(name)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("iff(%s, %s, null)", pres, rule), nil
		}
		return rule, nil
	}
	return "", fmt.Errorf("someip: message %s: no field %q", m.Name, name)
}
