package someip

import (
	"testing"
	"testing/quick"

	"ivnt/internal/expr"
	"ivnt/internal/protocol"
	"ivnt/internal/relation"
)

func TestHeaderMarshalUnmarshal(t *testing.T) {
	h := Header{
		ServiceID: 0x00D2, MethodID: 0x0001, ClientID: 7, SessionID: 9,
		ProtocolVersion: 1, InterfaceVersion: 2, MessageType: TypeNotification,
	}
	payload := []byte{0xAA, 0xBB, 0xCC}
	data := Marshal(h, payload)
	if len(data) != HeaderLen+3 {
		t.Fatalf("marshalled length = %d", len(data))
	}
	got, gotPayload, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServiceID != h.ServiceID || got.MethodID != h.MethodID ||
		got.ClientID != 7 || got.SessionID != 9 ||
		got.MessageType != TypeNotification || got.Length != 11 {
		t.Fatalf("header = %+v", got)
	}
	if string(gotPayload) != string(payload) {
		t.Fatalf("payload = %x", gotPayload)
	}
	if got.MessageID() != 0x00D20001 {
		t.Fatalf("message id = %#x", got.MessageID())
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	if _, _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short message must fail")
	}
	h := Header{ServiceID: 1, MethodID: 2}
	data := Marshal(h, []byte{1, 2})
	data[7] = 99 // corrupt length
	if _, _, err := Unmarshal(data); err == nil {
		t.Fatal("inconsistent length must fail")
	}
}

// wstatMsg models Table 1's wstat from SOME/IP service 212: status in
// payload bytes 10..22 region, with an optional detail field gated on a
// presence bit.
func wstatMsg() MessageDef {
	return MessageDef{
		ServiceID: 0, MethodID: 212, Name: "WiperService", Channel: "ETH1",
		PayloadLen: 12, CycleTime: 0.2,
		Fields: []Field{
			{Def: protocol.SignalDef{Name: "wstat", StartBit: 8, BitLen: 8}},
			{Def: protocol.SignalDef{Name: "wdetail", StartBit: 16, BitLen: 16, Scale: 0.1},
				Optional: true, PresenceBit: 0},
		},
	}
}

func TestMessageEncodeDecodeWithPresence(t *testing.T) {
	m := wstatMsg()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	// Both fields present.
	data, err := m.Encode(map[string]float64{"wstat": 3, "wdetail": 12.5})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := m.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if vals["wstat"] != 3 || vals["wdetail"] != 12.5 {
		t.Fatalf("decoded %v", vals)
	}

	// Optional field absent: presence bit clear, field not reported.
	data, err = m.Encode(map[string]float64{"wstat": 4})
	if err != nil {
		t.Fatal(err)
	}
	vals, err = m.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vals["wdetail"]; ok {
		t.Fatalf("absent optional field reported: %v", vals)
	}
	if vals["wstat"] != 4 {
		t.Fatalf("decoded %v", vals)
	}
}

func TestValidateRejectsBadLayouts(t *testing.T) {
	bad := []MessageDef{
		{Name: "x", PayloadLen: 0},
		{Name: "x", PayloadLen: 2, Fields: []Field{
			{Def: protocol.SignalDef{Name: "a", StartBit: 8, BitLen: 8}, Optional: true, PresenceBit: 9}}},
		{Name: "x", PayloadLen: 2, Fields: []Field{
			{Def: protocol.SignalDef{Name: "a", StartBit: 0, BitLen: 8}}}}, // overlaps mask
		{Name: "x", PayloadLen: 2, Fields: []Field{
			{Def: protocol.SignalDef{Name: "a", StartBit: 8, BitLen: 16}}}}, // exceeds payload
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestFieldRuleMatchesDecode checks that the generated presence-gated
// interpretation rules compute what the codec computes, over the full
// recorded bytes (header + payload).
func TestFieldRuleMatchesDecode(t *testing.T) {
	m := wstatMsg()
	schema := relation.NewSchema(relation.Column{Name: "l", Kind: relation.KindBytes})

	for _, name := range []string{"wstat", "wdetail"} {
		ruleSrc, err := m.FieldRule(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := expr.Compile(ruleSrc, schema)
		if err != nil {
			t.Fatalf("rule %q: %v", ruleSrc, err)
		}
		for _, vals := range []map[string]float64{
			{"wstat": 3, "wdetail": 12.5},
			{"wstat": 7},
		} {
			data, err := m.Encode(vals)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := m.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			got := prog.Eval(expr.SingleRowEnv{Row: relation.Row{relation.Bytes(data)}})
			want, present := decoded[name]
			if !present {
				if !got.IsNull() {
					t.Errorf("%s absent but rule %q = %v", name, ruleSrc, got)
				}
				continue
			}
			if got.AsFloat() != want {
				t.Errorf("%s: rule %q = %v, codec = %v", name, ruleSrc, got.AsFloat(), want)
			}
		}
	}
	if _, err := m.FieldRule("nope"); err == nil {
		t.Fatal("unknown field must error")
	}
	if _, err := m.PresenceRule("nope"); err == nil {
		t.Fatal("unknown field must error")
	}
	if r, err := m.PresenceRule("wstat"); err != nil || r != "true" {
		t.Fatalf("mandatory presence rule = %q, %v", r, err)
	}
}

func TestMarshalUnmarshalRoundTripProperty(t *testing.T) {
	f := func(svc, mth, cli, ses uint16, payload []byte) bool {
		h := Header{ServiceID: svc, MethodID: mth, ClientID: cli, SessionID: ses, ProtocolVersion: 1}
		data := Marshal(h, payload)
		got, p2, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.ServiceID != svc || got.MethodID != mth || len(p2) != len(payload) {
			return false
		}
		for i := range payload {
			if p2[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
