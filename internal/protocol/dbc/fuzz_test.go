package dbc

import (
	"strings"
	"testing"
)

// FuzzParse hardens the DBC parser against malformed database files:
// parse-or-error, never panic; successful parses yield validated
// layouts convertible to catalogs.
func FuzzParse(f *testing.F) {
	f.Add(sampleDBC)
	f.Add(muxDBC)
	f.Add("BO_ 1 M: 8 X\n SG_ s : 7|64@0- (0.001,-32) [0|0] \"u\" X\n")
	f.Add("VAL_ 1 s 0 \"a b c\" 1 \"d;e\" ;")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		db, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if _, err := db.ToCatalog("FC"); err != nil {
			// Valid DBC structure can still produce rule collisions
			// (duplicate signal names); that is an error, not a panic.
			return
		}
	})
}
