package dbc

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/interp"
	"ivnt/internal/protocol"
	"ivnt/internal/trace"
)

const sampleDBC = `VERSION "wiper test db"

BU_: BCM GW IC

BO_ 3 WiperStatus: 4 BCM
 SG_ wpos : 7|16@0+ (0.5,0) [0|100] "deg" GW,IC
 SG_ wvel : 23|16@0+ (1,0) [0|10] "rad/min" GW

BO_ 291 Lights: 2 BCM
 SG_ headlight : 7|2@1+ (1,0) [0|2] "" IC
 SG_ brightness : 0|7@1+ (1,0) [0|100] "%" IC

BO_ 5 Temps: 2 BCM
 SG_ outside : 7|8@0- (0.5,-40) [-40|87] "degC" IC

CM_ SG_ 3 wpos "wiper position";
VAL_ 291 headlight 0 "off" 1 "parklight on" 2 "headlight on" ;
BA_ "GenMsgCycleTimeMs" BO_ 3 100;
BA_ "GenMsgCycleTimeMs" BO_ 291 500;
`

func parseSample(t *testing.T) *Database {
	t.Helper()
	db, err := Parse(strings.NewReader(sampleDBC))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestParseStructure(t *testing.T) {
	db := parseSample(t)
	if db.Version != "wiper test db" {
		t.Fatalf("version = %q", db.Version)
	}
	if len(db.Nodes) != 3 || db.Nodes[0] != "BCM" {
		t.Fatalf("nodes = %v", db.Nodes)
	}
	if len(db.Messages) != 3 {
		t.Fatalf("messages = %d", len(db.Messages))
	}
	wiper, ok := db.Message(3)
	if !ok || wiper.Name != "WiperStatus" || wiper.Length != 4 || len(wiper.Signals) != 2 {
		t.Fatalf("wiper = %+v", wiper)
	}
	if wiper.CycleTime != 0.1 {
		t.Fatalf("cycle time = %v", wiper.CycleTime)
	}
	lights, _ := db.Message(291)
	if lights.CycleTime != 0.5 {
		t.Fatalf("lights cycle = %v", lights.CycleTime)
	}
}

func TestParseSignalGeometry(t *testing.T) {
	db := parseSample(t)
	wiper, _ := db.Message(3)
	wpos, ok := wiper.Signal("wpos")
	if !ok {
		t.Fatal("wpos missing")
	}
	// DBC Motorola start bit 7 (MSB of byte 0) converts to linear
	// MSB-first index 0.
	if wpos.StartBit != 0 || wpos.BitLen != 16 || wpos.Order != protocol.Motorola || wpos.Signed {
		t.Fatalf("wpos = %+v", wpos)
	}
	if wpos.Scale != 0.5 || wpos.Offset != 0 {
		t.Fatalf("wpos scaling = %v %v", wpos.Scale, wpos.Offset)
	}
	lights, _ := db.Message(291)
	head, _ := lights.Signal("headlight")
	if head.StartBit != 7 || head.BitLen != 2 || head.Order != protocol.Intel {
		t.Fatalf("headlight = %+v", head)
	}
	if head.ValueTable[1] != "parklight on" {
		t.Fatalf("value table = %v", head.ValueTable)
	}
	temps, _ := db.Message(5)
	outside, _ := temps.Signal("outside")
	if !outside.Signed || outside.Offset != -40 {
		t.Fatalf("outside = %+v", outside)
	}
}

// TestDBCMotorolaStartBitConvention checks the classic DBC example: a
// 16-bit Motorola signal at DBC start bit 7 occupies bytes 0-1 MSB
// first.
func TestDBCMotorolaStartBitConvention(t *testing.T) {
	src := `BO_ 1 M: 8 X
 SG_ s : 7|16@0+ (1,0) [0|0] "" X
`
	db, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := db.Message(1)
	sig, _ := m.Signal("s")
	if sig.StartBit != 0 {
		t.Fatalf("start bit = %d, want 0 (linear MSB-first)", sig.StartBit)
	}
	raw, err := sig.DecodeRaw([]byte{0x12, 0x34, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if raw != 0x1234 {
		t.Fatalf("raw = %#x", raw)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"BO_ x Name: 8 E\n",
		"BO_ 1 Name 8\n",
		"SG_ orphan : 0|8@0+ (1,0) [0|0] \"\" X\n",
		"BO_ 1 M: 8 X\n SG_ s : 0|8@2+ (1,0) [0|0] \"\" X\n",
		"BO_ 1 M: 8 X\n SG_ s : a|8@0+ (1,0) [0|0] \"\" X\n",
		"BO_ 1 M: 8 X\n SG_ s : 0|b@0+ (1,0) [0|0] \"\" X\n",
		"BO_ 1 M: 8 X\n SG_ s 0|8@0+\n",
		"BO_ 1 M: 8 X\n SG_ s : 0|8@0+ (1 [0|0] \"\" X\n",
		"VAL_ zz sig 0 \"x\" ;\n",
		"VAL_ 1 sig 0 ;\n",
		"VAL_ 1 sig zz \"x\" ;\n",
		"BA_ \"GenMsgCycleTimeMs\" BO_ zz 100;\n",
		"BA_ \"GenMsgCycleTimeMs\" BO_ 1;\n",
		// Signal exceeding the payload fails message validation.
		"BO_ 1 M: 1 X\n SG_ s : 0|16@0+ (1,0) [0|0] \"\" X\n",
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, src)
		}
	}
}

func TestUnknownStatementsTolerated(t *testing.T) {
	src := "NS_ :\n BS_:\nSOMETHING random\nBO_ 1 M: 1 X\n SG_ s : 7|8@0+ (1,0) [0|0] \"\" X\n"
	db, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Messages) != 1 {
		t.Fatalf("messages = %d", len(db.Messages))
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.dbc")
	if err := writeFile(path, sampleDBC); err != nil {
		t.Fatal(err)
	}
	db, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Messages) != 3 {
		t.Fatalf("messages = %d", len(db.Messages))
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.dbc")); err == nil {
		t.Fatal("missing file must fail")
	}
}

// TestToCatalogEndToEnd is the integration check: encode frames with
// the DBC layouts, extract through the pipeline using the DBC-derived
// catalog, and verify values.
func TestToCatalogEndToEnd(t *testing.T) {
	db := parseSample(t)
	cat, err := db.ToCatalog("FC")
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Translations) != 5 {
		t.Fatalf("tuples = %d", len(cat.Translations))
	}

	wiper, _ := db.Message(3)
	lights, _ := db.Message(291)
	tr := &trace.Trace{}
	wf, err := wiper.Frame(map[string]float64{"wpos": 45, "wvel": 1})
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(trace.ByteTuple{T: 1, Channel: "FC", MsgID: 3, Payload: wf.Data,
		Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: wf.DLC()}})
	lf, err := lights.Frame(map[string]float64{"headlight": 1, "brightness": 80})
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(trace.ByteTuple{T: 2, Channel: "FC", MsgID: 291, Payload: lf.Data,
		Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: lf.DLC()}})

	ucomb, err := cat.Select("wpos", "headlight", "brightness")
	if err != nil {
		t.Fatal(err)
	}
	ks, _, err := interp.Extract(context.Background(), engine.NewLocal(1),
		tr.ToRelation(1), ucomb, interp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := trace.SignalsFromRelation(ks)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, s := range sigs {
		got[s.SID] = s.V.AsString()
	}
	if got["wpos"] != "45" {
		t.Fatalf("wpos = %q", got["wpos"])
	}
	if got["headlight"] != "parklight on" {
		t.Fatalf("headlight = %q", got["headlight"])
	}
	if got["brightness"] != "80" {
		t.Fatalf("brightness = %q", got["brightness"])
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const muxDBC = `BO_ 42 Status: 3 BCM
 SG_ page M : 7|8@0+ (1,0) [0|1] "" IC
 SG_ speed m0 : 15|16@0+ (0.1,0) [0|300] "km/h" IC
 SG_ rpm m1 : 15|16@0+ (1,0) [0|9000] "rpm" IC
`

func TestMultiplexedParsing(t *testing.T) {
	db, err := Parse(strings.NewReader(muxDBC))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := db.Message(42)
	if !ok || len(m.Signals) != 1 || m.Signals[0].Name != "page" {
		t.Fatalf("message = %+v", m)
	}
	if db.MuxSwitch[42] != "page" {
		t.Fatalf("switch = %q", db.MuxSwitch[42])
	}
	muxed := db.Multiplexed[42]
	if len(muxed) != 2 || muxed[0].Def.Name != "speed" || muxed[0].MuxValue != 0 ||
		muxed[1].Def.Name != "rpm" || muxed[1].MuxValue != 1 {
		t.Fatalf("multiplexed = %+v", muxed)
	}
}

func TestMultiplexedParseErrors(t *testing.T) {
	bad := []string{
		// Two switches.
		"BO_ 1 M: 2 X\n SG_ a M : 7|8@0+ (1,0) [0|0] \"\" X\n SG_ b M : 15|8@0+ (1,0) [0|0] \"\" X\n",
		// Muxed without switch.
		"BO_ 1 M: 2 X\n SG_ a m0 : 7|8@0+ (1,0) [0|0] \"\" X\n",
		// Bad marker.
		"BO_ 1 M: 2 X\n SG_ a Z : 7|8@0+ (1,0) [0|0] \"\" X\n",
		// Bad mux value.
		"BO_ 1 M: 2 X\n SG_ s M : 7|8@0+ (1,0) [0|0] \"\" X\n SG_ a mx : 15|8@0+ (1,0) [0|0] \"\" X\n",
		// Muxed signal exceeding payload.
		"BO_ 1 M: 1 X\n SG_ s M : 7|8@0+ (1,0) [0|0] \"\" X\n SG_ a m0 : 15|8@0+ (1,0) [0|0] \"\" X\n",
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error for %q", i, src)
		}
	}
}

// TestMultiplexedCatalogExtraction drives mux-gated rules through the
// extraction pipeline: each frame carries either speed (page 0) or rpm
// (page 1); the rules must extract exactly the present one.
func TestMultiplexedCatalogExtraction(t *testing.T) {
	db, err := Parse(strings.NewReader(muxDBC))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := db.ToCatalog("FC")
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Translations) != 3 {
		t.Fatalf("tuples = %d", len(cat.Translations))
	}

	tr := &trace.Trace{}
	// Frame with page=0 carrying speed raw 1000 (100.0 km/h).
	tr.Append(trace.ByteTuple{T: 1, Channel: "FC", MsgID: 42,
		Payload: []byte{0x00, 0x03, 0xE8},
		Info:    trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 3}})
	// Frame with page=1 carrying rpm raw 3000.
	tr.Append(trace.ByteTuple{T: 2, Channel: "FC", MsgID: 42,
		Payload: []byte{0x01, 0x0B, 0xB8},
		Info:    trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 3}})

	ucomb, err := cat.Select("speed", "rpm")
	if err != nil {
		t.Fatal(err)
	}
	ks, _, err := interp.Extract(context.Background(), engine.NewLocal(1),
		tr.ToRelation(1), ucomb, interp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := trace.SignalsFromRelation(ks)
	if err != nil {
		t.Fatal(err)
	}
	present := map[string]float64{}
	for _, s := range sigs {
		if s.V.IsNull() {
			continue
		}
		present[s.SID] = s.V.AsFloat()
	}
	if len(present) != 2 {
		t.Fatalf("present signals = %v", present)
	}
	if present["speed"] != 100 {
		t.Fatalf("speed = %v", present["speed"])
	}
	if present["rpm"] != 3000 {
		t.Fatalf("rpm = %v", present["rpm"])
	}
	// And per-frame exclusivity: two null cells out of four instances.
	nulls := 0
	for _, s := range sigs {
		if s.V.IsNull() {
			nulls++
		}
	}
	if nulls != 2 {
		t.Fatalf("null instances = %d, want 2 (absent mux pages)", nulls)
	}
}
