// Package dbc parses the industry-standard CAN database format (Vector
// DBC, the usual carrier of the "documentation" the paper's
// parameterization draws on) into message layouts and translation-rule
// catalogs. Supported statements:
//
//	VERSION "…"
//	BU_: node node …
//	BO_ <id> <name>: <dlc> <sender>
//	 SG_ <name> : <start>|<len>@<order><sign> (<factor>,<offset>) [<min>|<max>] "<unit>" <receivers>
//	VAL_ <id> <signal> <n> "<label>" … ;
//	BA_ "GenMsgCycleTimeMs" BO_ <id> <ms>;
//	CM_ …;  (ignored)
//
// Order @1 is Intel (little-endian, DBC LSB-first start bit), @0 is
// Motorola (start bit = MSB in DBC inverted numbering, converted to
// this library's MSB-first linear numbering).
package dbc

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ivnt/internal/protocol"
	"ivnt/internal/protocol/can"
	"ivnt/internal/rules"
)

// MuxSignal is a multiplexed signal: present only when the message's
// multiplexer switch carries MuxValue — CAN's flavour of "values of
// preceding bytes define the presence of a signal type in succeeding
// bytes" (Sec. 3.2).
type MuxSignal struct {
	Def      protocol.SignalDef
	MuxValue uint64
}

// Database is a parsed DBC file.
type Database struct {
	Version  string
	Nodes    []string
	Messages []can.MessageDef
	// ValueTables maps (message id, signal name) to raw→label tables
	// (also folded into the SignalDefs).
	ValueTables map[uint32]map[string]map[uint64]string
	// MuxSwitch maps message id to the name of its multiplexer switch
	// signal (an ordinary member of Messages[i].Signals).
	MuxSwitch map[uint32]string
	// Multiplexed maps message id to its mux-gated signals, which live
	// outside MessageDef.Signals because they may legitimately overlap
	// one another.
	Multiplexed map[uint32][]MuxSignal
}

// Message returns the message with the given id.
func (db *Database) Message(id uint32) (*can.MessageDef, bool) {
	for i := range db.Messages {
		if db.Messages[i].ID == id {
			return &db.Messages[i], true
		}
	}
	return nil, false
}

// ParseFile parses a DBC file from disk.
func ParseFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// Parse parses DBC text.
func Parse(r io.Reader) (*Database, error) {
	db := &Database{
		ValueTables: map[uint32]map[string]map[uint64]string{},
		MuxSwitch:   map[uint32]string{},
		Multiplexed: map[uint32][]MuxSignal{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var current *can.MessageDef
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "CM_") || strings.HasPrefix(line, "BA_DEF"):
			continue
		case strings.HasPrefix(line, "VERSION"):
			db.Version = unquote(strings.TrimSpace(strings.TrimPrefix(line, "VERSION")))
		case strings.HasPrefix(line, "BU_:"):
			for _, n := range strings.Fields(strings.TrimPrefix(line, "BU_:")) {
				db.Nodes = append(db.Nodes, n)
			}
		case strings.HasPrefix(line, "BO_ "):
			msg, err := parseMessage(line)
			if err != nil {
				return nil, fmt.Errorf("dbc: line %d: %w", lineNo, err)
			}
			db.Messages = append(db.Messages, msg)
			current = &db.Messages[len(db.Messages)-1]
		case strings.HasPrefix(line, "SG_ "):
			if current == nil {
				return nil, fmt.Errorf("dbc: line %d: SG_ outside BO_ block", lineNo)
			}
			sig, marker, err := parseSignal(line)
			if err != nil {
				return nil, fmt.Errorf("dbc: line %d: %w", lineNo, err)
			}
			switch {
			case marker == "M":
				if prev, ok := db.MuxSwitch[current.ID]; ok {
					return nil, fmt.Errorf("dbc: line %d: message %s has two multiplexer switches (%s, %s)",
						lineNo, current.Name, prev, sig.Name)
				}
				db.MuxSwitch[current.ID] = sig.Name
				current.Signals = append(current.Signals, sig)
			case marker != "":
				val, err := strconv.ParseUint(marker[1:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dbc: line %d: bad multiplexer marker %q", lineNo, marker)
				}
				db.Multiplexed[current.ID] = append(db.Multiplexed[current.ID],
					MuxSignal{Def: sig, MuxValue: val})
			default:
				current.Signals = append(current.Signals, sig)
			}
		case strings.HasPrefix(line, "VAL_ "):
			if err := db.parseVal(line); err != nil {
				return nil, fmt.Errorf("dbc: line %d: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "BA_ "):
			if err := db.parseAttr(line); err != nil {
				return nil, fmt.Errorf("dbc: line %d: %w", lineNo, err)
			}
		default:
			// Unknown statements are tolerated (real DBCs carry many).
			continue
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Fold value tables into the signal definitions and validate.
	for i := range db.Messages {
		m := &db.Messages[i]
		for j := range m.Signals {
			if vt := db.ValueTables[m.ID][m.Signals[j].Name]; len(vt) > 0 {
				m.Signals[j].ValueTable = vt
			}
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		// Multiplexed signals need a switch and must fit the payload;
		// they may overlap each other (different mux values share
		// bytes), so only geometry is checked.
		if muxed := db.Multiplexed[m.ID]; len(muxed) > 0 {
			if _, ok := db.MuxSwitch[m.ID]; !ok {
				return nil, fmt.Errorf("dbc: message %s has multiplexed signals but no switch", m.Name)
			}
			for k := range muxed {
				if vt := db.ValueTables[m.ID][muxed[k].Def.Name]; len(vt) > 0 {
					muxed[k].Def.ValueTable = vt
				}
				if err := muxed[k].Def.Validate(m.Length); err != nil {
					return nil, fmt.Errorf("dbc: message %s: %w", m.Name, err)
				}
			}
		}
	}
	return db, nil
}

// parseMessage parses "BO_ 291 WiperStatus: 4 BCM".
func parseMessage(line string) (can.MessageDef, error) {
	rest := strings.TrimPrefix(line, "BO_ ")
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return can.MessageDef{}, fmt.Errorf("malformed BO_: %q", line)
	}
	id, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return can.MessageDef{}, fmt.Errorf("bad message id %q", fields[0])
	}
	if !strings.HasSuffix(fields[1], ":") {
		return can.MessageDef{}, fmt.Errorf("malformed BO_ (missing ':'): %q", line)
	}
	name := strings.TrimSuffix(fields[1], ":")
	dlc, err := strconv.Atoi(fields[2])
	if err != nil {
		return can.MessageDef{}, fmt.Errorf("bad DLC %q", fields[2])
	}
	// DBC stores extended ids with bit 31 set.
	rawID := uint32(id)
	ext := rawID&0x80000000 != 0
	msg := can.MessageDef{ID: rawID &^ 0x80000000, Name: name, Length: dlc}
	if !ext && msg.ID > can.MaxStandardID {
		// Some tools omit the flag; accept as extended.
		ext = true
	}
	_ = ext
	return msg, nil
}

// parseSignal parses
// ` SG_ wpos : 0|16@0+ (0.5,0) [0|100] "deg" ECU2,ECU3`
// returning the definition plus the multiplexer marker ("" for plain
// signals, "M" for the switch, "mN" for a signal gated on value N).
func parseSignal(line string) (protocol.SignalDef, string, error) {
	rest := strings.TrimPrefix(strings.TrimSpace(line), "SG_ ")
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return protocol.SignalDef{}, "", fmt.Errorf("malformed SG_: %q", line)
	}
	nameField := strings.Fields(rest[:colon])
	if len(nameField) == 0 {
		return protocol.SignalDef{}, "", fmt.Errorf("SG_ without name: %q", line)
	}
	name := nameField[0]
	marker := ""
	if len(nameField) > 1 {
		marker = nameField[1]
		if marker != "M" && !(len(marker) > 1 && marker[0] == 'm') {
			return protocol.SignalDef{}, "", fmt.Errorf("bad multiplexer marker %q in %q", marker, line)
		}
	}
	spec := strings.TrimSpace(rest[colon+1:])

	// <start>|<len>@<order><sign>
	at := strings.IndexByte(spec, '@')
	pipe := strings.IndexByte(spec, '|')
	if at < 0 || pipe < 0 || pipe > at {
		return protocol.SignalDef{}, "", fmt.Errorf("malformed position spec in %q", line)
	}
	start, err := strconv.Atoi(strings.TrimSpace(spec[:pipe]))
	if err != nil {
		return protocol.SignalDef{}, "", fmt.Errorf("bad start bit in %q", line)
	}
	length, err := strconv.Atoi(strings.TrimSpace(spec[pipe+1 : at]))
	if err != nil {
		return protocol.SignalDef{}, "", fmt.Errorf("bad bit length in %q", line)
	}
	if at+2 >= len(spec) {
		return protocol.SignalDef{}, "", fmt.Errorf("missing order/sign in %q", line)
	}
	orderCh := spec[at+1]
	var order protocol.ByteOrder
	switch orderCh {
	case '1':
		order = protocol.Intel
	case '0':
		order = protocol.Motorola
	default:
		return protocol.SignalDef{}, "", fmt.Errorf("bad byte order %q in %q", orderCh, line)
	}
	if at+2 > len(spec) {
		return protocol.SignalDef{}, "", fmt.Errorf("missing sign in %q", line)
	}
	signed := spec[at+2] == '-'

	def := protocol.SignalDef{
		Name:   name,
		BitLen: length,
		Order:  order,
		Signed: signed,
		Scale:  1,
	}
	if order == protocol.Intel {
		def.StartBit = start // DBC LSB-first, matching SignalDef
	} else {
		// DBC Motorola start bit uses inverted bit numbering within
		// each byte (bit 7 is the byte's MSB) and names the field's
		// MSB. Convert to this library's linear MSB-first index.
		def.StartBit = (start/8)*8 + (7 - start%8)
	}

	// (factor,offset)
	if lp := strings.IndexByte(spec, '('); lp >= 0 {
		rp := strings.IndexByte(spec[lp:], ')')
		if rp < 0 {
			return protocol.SignalDef{}, "", fmt.Errorf("unterminated (factor,offset) in %q", line)
		}
		parts := strings.Split(spec[lp+1:lp+rp], ",")
		if len(parts) != 2 {
			return protocol.SignalDef{}, "", fmt.Errorf("malformed (factor,offset) in %q", line)
		}
		if def.Scale, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
			return protocol.SignalDef{}, "", fmt.Errorf("bad factor in %q", line)
		}
		if def.Offset, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
			return protocol.SignalDef{}, "", fmt.Errorf("bad offset in %q", line)
		}
	}
	return def, marker, nil
}

// parseVal parses `VAL_ 291 light 0 "off" 1 "parklight on" ;`.
func (db *Database) parseVal(line string) error {
	rest := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "VAL_ ")), ";")
	fields := splitQuoted(rest)
	if len(fields) < 2 {
		return fmt.Errorf("malformed VAL_: %q", line)
	}
	id, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad VAL_ message id %q", fields[0])
	}
	sig := fields[1]
	if (len(fields)-2)%2 != 0 {
		return fmt.Errorf("odd VAL_ pair count: %q", line)
	}
	vt := map[uint64]string{}
	for i := 2; i < len(fields); i += 2 {
		raw, err := strconv.ParseUint(fields[i], 10, 64)
		if err != nil {
			return fmt.Errorf("bad VAL_ raw value %q", fields[i])
		}
		vt[raw] = fields[i+1]
	}
	mid := uint32(id) &^ 0x80000000
	if db.ValueTables[mid] == nil {
		db.ValueTables[mid] = map[string]map[uint64]string{}
	}
	db.ValueTables[mid][sig] = vt
	return nil
}

// parseAttr handles cycle-time attributes:
// `BA_ "GenMsgCycleTimeMs" BO_ 291 100;` (milliseconds).
func (db *Database) parseAttr(line string) error {
	rest := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "BA_ ")), ";")
	fields := splitQuoted(rest)
	if len(fields) < 1 {
		return nil
	}
	attr := fields[0]
	if attr != "GenMsgCycleTime" && attr != "GenMsgCycleTimeMs" {
		return nil // other attributes ignored
	}
	if len(fields) != 4 || fields[1] != "BO_" {
		return fmt.Errorf("malformed cycle-time attribute: %q", line)
	}
	id, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return fmt.Errorf("bad BA_ message id %q", fields[2])
	}
	ms, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return fmt.Errorf("bad cycle time %q", fields[3])
	}
	if m, ok := db.Message(uint32(id) &^ 0x80000000); ok {
		m.CycleTime = ms / 1000
	}
	return nil
}

// splitQuoted splits on whitespace, keeping double-quoted substrings
// (without the quotes) as single fields.
func splitQuoted(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '"' {
			j := strings.IndexByte(s[i+1:], '"')
			if j < 0 {
				out = append(out, s[i+1:])
				return out
			}
			out = append(out, s[i+1:i+1+j])
			i += j + 2
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		out = append(out, s[i:j])
		i = j
	}
	return out
}

func unquote(s string) string {
	return strings.Trim(s, `"`)
}

// ToCatalog renders the database as a U_rel translation-tuple catalog
// for the given channel (b_id): the bridge from industry documentation
// to the framework's parameterization. Value-table signals translate
// through lookup(); their ordinal scale (if any) must be declared by
// the caller afterwards.
func (db *Database) ToCatalog(channel string) (*rules.Catalog, error) {
	cat := &rules.Catalog{}
	for i := range db.Messages {
		m := &db.Messages[i]
		for j := range m.Signals {
			sig := &m.Signals[j]
			first, last := sig.RelevantBytes()
			rel := *sig
			if sig.Order == protocol.Intel {
				rel.StartBit -= first * 8
			} else {
				rel.StartBit -= first * 8
			}
			t := rules.Translation{
				SID:       sig.Name,
				Channel:   channel,
				MsgID:     m.ID,
				FirstByte: first,
				LastByte:  last,
				CycleTime: m.CycleTime,
			}
			if len(sig.ValueTable) > 0 {
				t.Rule = fmt.Sprintf("lookup(%s, %q)",
					rel.RuleExprCol("lrel"), rules.ValueTableString(sig.ValueTable))
				if len(sig.ValueTable) == 2 {
					t.Class = rules.ClassBinary
				} else {
					t.Class = rules.ClassNominal
				}
			} else {
				t.Rule = rel.RuleExprCol("lrel")
				t.Class = rules.ClassNumeric
			}
			cat.Translations = append(cat.Translations, t)
		}
	}
	// Multiplexed signals: relevant bytes span the whole payload (the
	// switch gates the field), and the rule is presence-conditional on
	// the switch's raw value.
	for i := range db.Messages {
		m := &db.Messages[i]
		muxed := db.Multiplexed[m.ID]
		if len(muxed) == 0 {
			continue
		}
		swName := db.MuxSwitch[m.ID]
		sw, ok := m.Signal(swName)
		if !ok {
			return nil, fmt.Errorf("dbc: message %s: multiplexer switch %q missing", m.Name, swName)
		}
		// The mux comparison uses the switch's raw value.
		swRaw := *sw
		swRaw.Scale = 1
		swRaw.Offset = 0
		swExpr := swRaw.RuleExprCol("lrel")
		for j := range muxed {
			ms := &muxed[j]
			field := ms.Def.RuleExprCol("lrel")
			if len(ms.Def.ValueTable) > 0 {
				raw := ms.Def
				raw.Scale = 1
				raw.Offset = 0
				field = fmt.Sprintf("lookup(%s, %q)",
					raw.RuleExprCol("lrel"), rules.ValueTableString(ms.Def.ValueTable))
			}
			t := rules.Translation{
				SID:       ms.Def.Name,
				Channel:   channel,
				MsgID:     m.ID,
				FirstByte: 0,
				LastByte:  m.Length - 1,
				CycleTime: m.CycleTime,
				Rule:      fmt.Sprintf("iff(%s == %d, %s, null)", swExpr, ms.MuxValue, field),
			}
			if len(ms.Def.ValueTable) > 0 {
				t.Class = rules.ClassNominal
			} else {
				t.Class = rules.ClassNumeric
			}
			cat.Translations = append(cat.Translations, t)
		}
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	return cat, nil
}
