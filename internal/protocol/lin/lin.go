// Package lin implements LIN 2.x frames: protected identifiers with
// parity, classic and enhanced checksums, and message layouts reusing
// the shared protocol.SignalDef codec. The paper's Table 1 extracts the
// wiper type wtype from K-LIN message id 11 — that path runs through
// this package.
package lin

import (
	"fmt"

	"ivnt/internal/protocol"
)

// MaxDataLen is the LIN payload limit.
const MaxDataLen = 8

// MaxFrameID is the highest 6-bit LIN frame identifier.
const MaxFrameID = 0x3F

// ProtectedID computes the PID: the 6-bit id plus two parity bits
// (P0 = id0^id1^id2^id4, P1 = !(id1^id3^id4^id5)).
func ProtectedID(id uint8) (uint8, error) {
	if id > MaxFrameID {
		return 0, fmt.Errorf("lin: frame id %#x out of range", id)
	}
	bit := func(n uint8) uint8 { return id >> n & 1 }
	p0 := bit(0) ^ bit(1) ^ bit(2) ^ bit(4)
	p1 := ^(bit(1) ^ bit(3) ^ bit(4) ^ bit(5)) & 1
	return id | p0<<6 | p1<<7, nil
}

// ChecksumClassic computes the LIN 1.x checksum (inverted modulo-256
// sum with carry) over the data only.
func ChecksumClassic(data []byte) uint8 {
	return checksum(0, data)
}

// ChecksumEnhanced computes the LIN 2.x checksum, which also covers the
// protected identifier.
func ChecksumEnhanced(pid uint8, data []byte) uint8 {
	return checksum(uint16(pid), data)
}

func checksum(seed uint16, data []byte) uint8 {
	sum := seed
	for _, b := range data {
		sum += uint16(b)
		if sum >= 256 {
			sum -= 255
		}
	}
	return uint8(^sum & 0xFF)
}

// Frame is one LIN frame (response part).
type Frame struct {
	ID       uint8
	Data     []byte
	Checksum uint8
	// Enhanced selects the LIN 2.x checksum covering the PID.
	Enhanced bool
}

// Validate checks id range, payload length and checksum.
func (f *Frame) Validate() error {
	if f.ID > MaxFrameID {
		return fmt.Errorf("lin: frame id %#x out of range", f.ID)
	}
	if len(f.Data) == 0 || len(f.Data) > MaxDataLen {
		return fmt.Errorf("lin: frame %#x: payload length %d out of range", f.ID, len(f.Data))
	}
	want, err := f.expectedChecksum()
	if err != nil {
		return err
	}
	if f.Checksum != want {
		return fmt.Errorf("lin: frame %#x: checksum %#x, want %#x", f.ID, f.Checksum, want)
	}
	return nil
}

func (f *Frame) expectedChecksum() (uint8, error) {
	if !f.Enhanced {
		return ChecksumClassic(f.Data), nil
	}
	pid, err := ProtectedID(f.ID)
	if err != nil {
		return 0, err
	}
	return ChecksumEnhanced(pid, f.Data), nil
}

// Seal fills in the checksum.
func (f *Frame) Seal() error {
	c, err := f.expectedChecksum()
	if err != nil {
		return err
	}
	f.Checksum = c
	return nil
}

// MessageDef is one documented LIN frame layout.
type MessageDef struct {
	ID        uint8
	Name      string
	Channel   string
	Length    int
	CycleTime float64
	Enhanced  bool
	Signals   []protocol.SignalDef
}

// Validate checks layout consistency.
func (m *MessageDef) Validate() error {
	if m.ID > MaxFrameID {
		return fmt.Errorf("lin: message %s: id %#x out of range", m.Name, m.ID)
	}
	if m.Length < 1 || m.Length > MaxDataLen {
		return fmt.Errorf("lin: message %s: length %d out of range", m.Name, m.Length)
	}
	for i := range m.Signals {
		if err := m.Signals[i].Validate(m.Length); err != nil {
			return fmt.Errorf("lin: message %s: %w", m.Name, err)
		}
	}
	return nil
}

// Encode packs physical values into a sealed frame.
func (m *MessageDef) Encode(values map[string]float64) (Frame, error) {
	payload := make([]byte, m.Length)
	for i := range m.Signals {
		s := &m.Signals[i]
		v, ok := values[s.Name]
		if !ok {
			continue
		}
		if err := s.EncodePhysical(payload, v); err != nil {
			return Frame{}, err
		}
	}
	f := Frame{ID: m.ID, Data: payload, Enhanced: m.Enhanced}
	if err := f.Seal(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// Decode validates the frame and unpacks all signals.
func (m *MessageDef) Decode(f Frame) (map[string]float64, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(m.Signals))
	for i := range m.Signals {
		s := &m.Signals[i]
		v, err := s.DecodePhysical(f.Data)
		if err != nil {
			return nil, err
		}
		out[s.Name] = v
	}
	return out, nil
}
