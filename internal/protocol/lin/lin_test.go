package lin

import (
	"testing"
	"testing/quick"

	"ivnt/internal/protocol"
)

func TestProtectedIDKnownValues(t *testing.T) {
	// Reference PIDs from the LIN 2.1 specification table.
	cases := map[uint8]uint8{
		0x00: 0x80,
		0x01: 0xC1,
		0x02: 0x42,
		0x03: 0x03,
		0x3C: 0x3C,
		0x3D: 0x7D,
	}
	for id, want := range cases {
		got, err := ProtectedID(id)
		if err != nil {
			t.Fatalf("id %#x: %v", id, err)
		}
		if got != want {
			t.Errorf("ProtectedID(%#x) = %#x, want %#x", id, got, want)
		}
	}
	if _, err := ProtectedID(0x40); err == nil {
		t.Fatal("id > 0x3F must fail")
	}
}

func TestChecksumClassicKnownValue(t *testing.T) {
	// Sum with carry of {0x4A, 0x55, 0x93, 0xE5} = 0x1B7 -> carry fold
	// 0xB8+1... verify via independent computation.
	data := []byte{0x4A, 0x55, 0x93, 0xE5}
	sum := 0
	for _, b := range data {
		sum += int(b)
		if sum >= 256 {
			sum -= 255
		}
	}
	want := uint8(^uint8(sum))
	if got := ChecksumClassic(data); got != want {
		t.Fatalf("classic checksum = %#x, want %#x", got, want)
	}
}

func TestFrameSealValidate(t *testing.T) {
	f := Frame{ID: 0x11, Data: []byte{1, 2, 3}}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	f.Data[0] ^= 0xFF
	if err := f.Validate(); err == nil {
		t.Fatal("corrupted frame must fail checksum validation")
	}
}

func TestFrameEnhancedChecksumDiffers(t *testing.T) {
	a := Frame{ID: 0x11, Data: []byte{1, 2, 3}}
	b := Frame{ID: 0x11, Data: []byte{1, 2, 3}, Enhanced: true}
	if err := a.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := b.Seal(); err != nil {
		t.Fatal(err)
	}
	if a.Checksum == b.Checksum {
		t.Fatal("classic and enhanced checksums should differ for nonzero PID")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameValidateBounds(t *testing.T) {
	bad := []Frame{
		{ID: 0x40, Data: []byte{1}},
		{ID: 1, Data: nil},
		{ID: 1, Data: make([]byte, 9)},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func wtypeMsg() MessageDef {
	// Table 1: wiper type wtype from K-LIN message id 11, byte 1,
	// rule v = l + 2.
	return MessageDef{
		ID: 11, Name: "WiperConfig", Channel: "K-LIN", Length: 2, CycleTime: 1.0,
		Signals: []protocol.SignalDef{
			{Name: "wtype", StartBit: 0, BitLen: 8, Offset: 2},
		},
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	m := wtypeMsg()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	f, err := m.Encode(map[string]float64{"wtype": 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 3 { // raw = v - offset = 3
		t.Fatalf("raw byte = %d, want 3", f.Data[0])
	}
	vals, err := m.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if vals["wtype"] != 5 {
		t.Fatalf("decoded %v", vals)
	}
}

func TestMessageDecodeRejectsBadChecksum(t *testing.T) {
	m := wtypeMsg()
	f, err := m.Encode(map[string]float64{"wtype": 5})
	if err != nil {
		t.Fatal(err)
	}
	f.Checksum ^= 0xFF
	if _, err := m.Decode(f); err == nil {
		t.Fatal("bad checksum must fail decode")
	}
}

func TestMessageValidateBounds(t *testing.T) {
	bad := []MessageDef{
		{ID: 0x40, Name: "x", Length: 2},
		{ID: 1, Name: "x", Length: 0},
		{ID: 1, Name: "x", Length: 9},
		{ID: 1, Name: "x", Length: 1,
			Signals: []protocol.SignalDef{{Name: "s", StartBit: 4, BitLen: 8}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSealValidateRoundTripProperty(t *testing.T) {
	f := func(id uint8, data []byte, enhanced bool) bool {
		id %= 0x40
		if len(data) == 0 || len(data) > 8 {
			return true
		}
		fr := Frame{ID: id, Data: data, Enhanced: enhanced}
		if err := fr.Seal(); err != nil {
			return false
		}
		return fr.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
