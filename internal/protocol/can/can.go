// Package can implements classical CAN 2.0 frames and message layouts:
// identifier handling, DLC, and bit-packed signal multiplexing via the
// shared protocol.SignalDef codec. The paper's running example (the
// wiper message with m_id 3 on FA-CAN carrying wpos and wvel) is a CAN
// message in this sense.
package can

import (
	"fmt"

	"ivnt/internal/protocol"
)

// MaxDataLen is the classical CAN payload limit.
const MaxDataLen = 8

// MaxStandardID is the highest 11-bit identifier.
const MaxStandardID = 0x7FF

// MaxExtendedID is the highest 29-bit identifier.
const MaxExtendedID = 0x1FFFFFFF

// Frame is one CAN frame on the wire.
type Frame struct {
	ID       uint32
	Extended bool
	Data     []byte
}

// Validate checks identifier range and payload length.
func (f *Frame) Validate() error {
	if len(f.Data) > MaxDataLen {
		return fmt.Errorf("can: frame %#x: payload %d exceeds %d bytes", f.ID, len(f.Data), MaxDataLen)
	}
	max := uint32(MaxStandardID)
	if f.Extended {
		max = MaxExtendedID
	}
	if f.ID > max {
		return fmt.Errorf("can: frame id %#x out of range (extended=%t)", f.ID, f.Extended)
	}
	return nil
}

// DLC returns the data length code.
func (f *Frame) DLC() uint8 { return uint8(len(f.Data)) }

// MessageDef is one documented CAN message type m = (S, m_id, b_id).
type MessageDef struct {
	// ID is m_id, the CAN identifier.
	ID uint32
	// Name is the message's documented name.
	Name string
	// Channel is b_id, the bus the message occurs on (e.g. "FC").
	Channel string
	// Length is the payload length in bytes (DLC for classical CAN).
	Length int
	// CycleTime is the nominal send period in seconds (0 = event
	// driven); reduction rules check violations against it.
	CycleTime float64
	// Signals is S, the signal types every instance carries.
	Signals []protocol.SignalDef
}

// Validate checks the layout: payload bounds, identifier range and
// signal overlap.
func (m *MessageDef) Validate() error {
	if m.Length < 0 || m.Length > MaxDataLen {
		return fmt.Errorf("can: message %s: length %d out of range", m.Name, m.Length)
	}
	if m.ID > MaxExtendedID {
		return fmt.Errorf("can: message %s: id %#x out of range", m.Name, m.ID)
	}
	used := make([]bool, m.Length*8)
	for i := range m.Signals {
		s := &m.Signals[i]
		if err := s.Validate(m.Length); err != nil {
			return fmt.Errorf("can: message %s: %w", m.Name, err)
		}
		for b := s.StartBit; b < s.StartBit+s.BitLen; b++ {
			if used[b] {
				return fmt.Errorf("can: message %s: signal %s overlaps bit %d", m.Name, s.Name, b)
			}
			used[b] = true
		}
	}
	return nil
}

// Signal returns the named signal definition.
func (m *MessageDef) Signal(name string) (*protocol.SignalDef, bool) {
	for i := range m.Signals {
		if m.Signals[i].Name == name {
			return &m.Signals[i], true
		}
	}
	return nil, false
}

// Encode packs physical values (by signal name) into a fresh payload;
// missing signals encode as zero.
func (m *MessageDef) Encode(values map[string]float64) ([]byte, error) {
	payload := make([]byte, m.Length)
	for i := range m.Signals {
		s := &m.Signals[i]
		v, ok := values[s.Name]
		if !ok {
			continue
		}
		if err := s.EncodePhysical(payload, v); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// Decode unpacks all signals to physical values.
func (m *MessageDef) Decode(payload []byte) (map[string]float64, error) {
	out := make(map[string]float64, len(m.Signals))
	for i := range m.Signals {
		s := &m.Signals[i]
		v, err := s.DecodePhysical(payload)
		if err != nil {
			return nil, err
		}
		out[s.Name] = v
	}
	return out, nil
}

// Frame wraps an encoded payload in a CAN frame.
func (m *MessageDef) Frame(values map[string]float64) (Frame, error) {
	payload, err := m.Encode(values)
	if err != nil {
		return Frame{}, err
	}
	f := Frame{ID: m.ID, Extended: m.ID > MaxStandardID, Data: payload}
	return f, f.Validate()
}
