package can

import (
	"testing"
	"testing/quick"

	"ivnt/internal/protocol"
)

// wiperMsg is the paper's running example: m_id 3 on FA-CAN carrying
// wpos (bytes 1-2, v = 0.5*raw) and wvel (bytes 3-4, v = raw).
func wiperMsg() MessageDef {
	return MessageDef{
		ID: 3, Name: "WiperStatus", Channel: "FC", Length: 4, CycleTime: 0.5,
		Signals: []protocol.SignalDef{
			{Name: "wpos", StartBit: 0, BitLen: 16, Scale: 0.5},
			{Name: "wvel", StartBit: 16, BitLen: 16},
		},
	}
}

func TestWiperEncodeDecode(t *testing.T) {
	m := wiperMsg()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	payload, err := m.Encode(map[string]float64{"wpos": 45, "wvel": 1})
	if err != nil {
		t.Fatal(err)
	}
	// wpos raw = 45/0.5 = 90 = 0x5A, matching Fig. 2's payload x5A x01
	// split across two bytes (big endian 16-bit field = 0x005A).
	if payload[1] != 0x5A || payload[3] != 0x01 {
		t.Fatalf("payload = %x", payload)
	}
	vals, err := m.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if vals["wpos"] != 45 || vals["wvel"] != 1 {
		t.Fatalf("decoded %v", vals)
	}
}

func TestMessageValidateOverlap(t *testing.T) {
	m := MessageDef{
		ID: 1, Name: "bad", Length: 2,
		Signals: []protocol.SignalDef{
			{Name: "a", StartBit: 0, BitLen: 10},
			{Name: "b", StartBit: 8, BitLen: 8},
		},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("overlapping signals must fail validation")
	}
}

func TestMessageValidateBounds(t *testing.T) {
	cases := []MessageDef{
		{ID: 1, Name: "toolong", Length: 9},
		{ID: MaxExtendedID + 1, Name: "badid", Length: 8},
		{ID: 1, Name: "sigout", Length: 1,
			Signals: []protocol.SignalDef{{Name: "x", StartBit: 4, BitLen: 8}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestFrameValidate(t *testing.T) {
	f := Frame{ID: 0x800, Data: make([]byte, 4)}
	if err := f.Validate(); err == nil {
		t.Fatal("standard id 0x800 must fail")
	}
	f.Extended = true
	if err := f.Validate(); err != nil {
		t.Fatalf("extended id 0x800 must pass: %v", err)
	}
	f = Frame{ID: 1, Data: make([]byte, 9)}
	if err := f.Validate(); err == nil {
		t.Fatal("9-byte payload must fail")
	}
	if f.DLC() != 9 {
		t.Fatalf("dlc = %d", f.DLC())
	}
}

func TestMessageFrame(t *testing.T) {
	m := wiperMsg()
	f, err := m.Frame(map[string]float64{"wpos": 60})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 3 || f.Extended || len(f.Data) != 4 {
		t.Fatalf("frame = %+v", f)
	}
	vals, err := m.Decode(f.Data)
	if err != nil {
		t.Fatal(err)
	}
	if vals["wpos"] != 60 || vals["wvel"] != 0 {
		t.Fatalf("decoded %v", vals)
	}
}

func TestSignalLookup(t *testing.T) {
	m := wiperMsg()
	if _, ok := m.Signal("wpos"); !ok {
		t.Fatal("wpos missing")
	}
	if _, ok := m.Signal("nope"); ok {
		t.Fatal("phantom signal found")
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	m := wiperMsg()
	f := func(posRaw uint16, vel uint16) bool {
		pos := float64(posRaw) * 0.5
		payload, err := m.Encode(map[string]float64{"wpos": pos, "wvel": float64(vel)})
		if err != nil {
			return false
		}
		vals, err := m.Decode(payload)
		return err == nil && vals["wpos"] == pos && vals["wvel"] == float64(vel)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
