// Package protocol implements the bus-protocol substrate: bit-level
// signal packing/unpacking shared by CAN and LIN (subpackages can, lin)
// and the SOME/IP header codec (subpackage someip).
//
// Signal definitions play the role of the "documentation" the paper's
// parameterization draws on: each definition can render itself as an
// interpretation rule u_info in the expression language (RuleExpr), so
// catalogs of documented signals translate mechanically into the U_rel
// translation-tuple tables of Sec. 3.1.
package protocol

import (
	"fmt"
	"strings"
)

// ByteOrder selects signal byte ordering within a frame payload.
type ByteOrder uint8

// Byte orders. Motorola (big-endian) is the automotive default;
// Intel (little-endian) fields must be byte-aligned.
const (
	Motorola ByteOrder = iota // big-endian
	Intel                     // little-endian, byte-aligned only
)

// String returns the conventional name.
func (o ByteOrder) String() string {
	if o == Intel {
		return "intel"
	}
	return "motorola"
}

// SignalDef describes one signal's position and translation inside a
// frame payload, the per-signal slice of what a DBC/FIBEX file would
// document.
type SignalDef struct {
	// Name is s_id.
	Name string
	// StartBit is the field's bit position within the payload. For
	// Motorola order it is the MSB-first index (bit 0 = most
	// significant bit of byte 0); for Intel order it is the DBC
	// LSB-first index of the field's least significant bit (bit 0 =
	// least significant bit of byte 0), so DBC signal definitions map
	// 1:1.
	StartBit int
	// BitLen is the field width in bits (1..64).
	BitLen int
	// Order is the byte order.
	Order ByteOrder
	// Signed selects two's-complement interpretation of the raw field.
	Signed bool
	// Scale and Offset map raw to physical: v = raw*Scale + Offset.
	// Scale 0 is treated as 1.
	Scale  float64
	Offset float64
	// ValueTable, when non-empty, maps raw values to symbolic states
	// (e.g. 0→"off", 1→"parklight on"); such signals are categorical.
	ValueTable map[uint64]string
}

// Validate checks geometric consistency against a payload of payloadLen
// bytes.
func (s *SignalDef) Validate(payloadLen int) error {
	if s.Name == "" {
		return fmt.Errorf("protocol: signal without name")
	}
	if s.BitLen < 1 || s.BitLen > 64 {
		return fmt.Errorf("protocol: signal %s: bit length %d out of range", s.Name, s.BitLen)
	}
	if s.StartBit < 0 || s.StartBit+s.BitLen > payloadLen*8 {
		return fmt.Errorf("protocol: signal %s: bits [%d,%d) exceed payload of %d bytes",
			s.Name, s.StartBit, s.StartBit+s.BitLen, payloadLen)
	}
	return nil
}

func (s *SignalDef) scale() float64 {
	if s.Scale == 0 {
		return 1
	}
	return s.Scale
}

// DecodeRaw extracts the raw unsigned field from payload.
func (s *SignalDef) DecodeRaw(payload []byte) (uint64, error) {
	if err := s.Validate(len(payload)); err != nil {
		return 0, err
	}
	var out uint64
	if s.Order == Intel {
		for i := 0; i < s.BitLen; i++ {
			bit := s.StartBit + i
			out |= uint64(payload[bit/8]>>(bit%8)&1) << i
		}
		return out, nil
	}
	for i := 0; i < s.BitLen; i++ {
		bit := s.StartBit + i
		out = out<<1 | uint64(payload[bit/8]>>(7-bit%8)&1)
	}
	return out, nil
}

// DecodePhysical extracts the physical (scaled, signed) value.
func (s *SignalDef) DecodePhysical(payload []byte) (float64, error) {
	raw, err := s.DecodeRaw(payload)
	if err != nil {
		return 0, err
	}
	v := int64(raw)
	if s.Signed && s.BitLen < 64 && raw&(1<<(s.BitLen-1)) != 0 {
		v = int64(raw) - (1 << s.BitLen)
	}
	return float64(v)*s.scale() + s.Offset, nil
}

// DecodeSymbolic looks the raw value up in the value table; missing
// entries render as "raw(N)".
func (s *SignalDef) DecodeSymbolic(payload []byte) (string, error) {
	raw, err := s.DecodeRaw(payload)
	if err != nil {
		return "", err
	}
	if name, ok := s.ValueTable[raw]; ok {
		return name, nil
	}
	return fmt.Sprintf("raw(%d)", raw), nil
}

// EncodeRaw writes the raw field into payload in place.
func (s *SignalDef) EncodeRaw(payload []byte, raw uint64) error {
	if err := s.Validate(len(payload)); err != nil {
		return err
	}
	if s.BitLen < 64 && raw >= 1<<s.BitLen {
		return fmt.Errorf("protocol: signal %s: raw %d exceeds %d bits", s.Name, raw, s.BitLen)
	}
	if s.Order == Intel {
		for i := 0; i < s.BitLen; i++ {
			bit := s.StartBit + i
			mask := byte(1) << (bit % 8)
			if raw>>i&1 != 0 {
				payload[bit/8] |= mask
			} else {
				payload[bit/8] &^= mask
			}
		}
		return nil
	}
	for i := 0; i < s.BitLen; i++ {
		bit := s.StartBit + i
		mask := byte(1) << (7 - bit%8)
		if raw>>(s.BitLen-1-i)&1 != 0 {
			payload[bit/8] |= mask
		} else {
			payload[bit/8] &^= mask
		}
	}
	return nil
}

// EncodePhysical quantizes a physical value into the raw field and
// writes it.
func (s *SignalDef) EncodePhysical(payload []byte, v float64) error {
	raw := int64((v - s.Offset) / s.scale())
	if s.Signed {
		lo, hi := -(int64(1) << (s.BitLen - 1)), int64(1)<<(s.BitLen-1)-1
		if raw < lo {
			raw = lo
		}
		if raw > hi {
			raw = hi
		}
		return s.EncodeRaw(payload, uint64(raw)&(1<<s.BitLen-1))
	}
	if raw < 0 {
		raw = 0
	}
	if s.BitLen < 64 && raw >= 1<<s.BitLen {
		raw = 1<<s.BitLen - 1
	}
	return s.EncodeRaw(payload, uint64(raw))
}

// RuleExpr renders the signal's translation as an expression over the
// payload column l — the Int.rule of a U_rel translation tuple
// (Table 1). Value-table signals translate their raw extraction only;
// symbolic mapping happens in the rules catalog, which owns the table.
func (s *SignalDef) RuleExpr() string { return s.RuleExprCol("l") }

// RuleExprCol renders the translation over an arbitrary payload column
// (e.g. "lrel" for rules applied after u₁ byte extraction).
func (s *SignalDef) RuleExprCol(col string) string {
	var raw string
	switch {
	case s.Order == Intel && s.Signed:
		raw = fmt.Sprintf("slbits(%s, %d, %d)", col, s.StartBit, s.BitLen)
	case s.Order == Intel:
		raw = fmt.Sprintf("ulbits(%s, %d, %d)", col, s.StartBit, s.BitLen)
	case s.Signed:
		raw = fmt.Sprintf("sbits(%s, %d, %d)", col, s.StartBit, s.BitLen)
	default:
		raw = fmt.Sprintf("ubits(%s, %d, %d)", col, s.StartBit, s.BitLen)
	}
	var b strings.Builder
	b.WriteString(raw)
	if sc := s.scale(); sc != 1 {
		fmt.Fprintf(&b, " * %g", sc)
	}
	if s.Offset != 0 {
		fmt.Fprintf(&b, " + %g", s.Offset)
	}
	return b.String()
}

// RelevantBytes returns the inclusive byte range [first, last] the
// signal occupies — the "rel.B" part of u_info in Table 1. The range
// is identical for both bit numberings.
func (s *SignalDef) RelevantBytes() (first, last int) {
	return s.StartBit / 8, (s.StartBit + s.BitLen - 1) / 8
}
