// Package bench regenerates every table and figure of the paper's
// evaluation (Sec. 5) plus the ablations called out in DESIGN.md:
//
//	Table 5 — data set statistics
//	Fig. 5  — execution time of Algorithm 1 lines 3–11 vs. #examples
//	Table 6 — extraction time, proposed (distributed) vs. in-house
//	A1      — preselection on/off
//	A2      — worker scaling
//	A3      — reduction ratios
//
// Absolute times differ from the paper (its substrate was a 70-server
// Spark cluster; ours is this machine), so every experiment exposes a
// scale knob and the harness reports shape metrics — who wins, scaling
// exponents, crossovers — that are comparable.
package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
	"ivnt/internal/inhouse"
	"ivnt/internal/interp"
	"ivnt/internal/rules"
	"ivnt/internal/telemetry"
	"ivnt/internal/trace"
)

// DefaultScale shrinks the paper's example counts to something a
// single machine iterates quickly (~1/1000 of the paper).
const DefaultScale = 0.001

// specs returns the three data sets in paper order.
func specs() []gen.DatasetSpec { return []gen.DatasetSpec{gen.SYN, gen.LIG, gen.STA} }

// ---------------------------------------------------------------- Table 5

// Table5Row is one column of the paper's Table 5 (transposed here: one
// row per data set).
type Table5Row struct {
	Name               string
	SignalTypes        int
	Alpha, Beta, Gamma int
	Examples           int
	SignalsPerMessage  float64
}

// Table5 generates each data set at the given scale and computes its
// statistics.
func Table5(scale float64) []Table5Row {
	if scale <= 0 {
		scale = DefaultScale
	}
	out := make([]Table5Row, 0, 3)
	for _, spec := range specs() {
		d := gen.Build(spec)
		n := int(float64(gen.PaperExamples[spec.Name]) * scale)
		if n < 1000 {
			n = 1000
		}
		st := d.DatasetStats(d.Generate(n))
		out = append(out, Table5Row{
			Name:        st.Name,
			SignalTypes: st.SignalTypes,
			Alpha:       st.Alpha, Beta: st.Beta, Gamma: st.Gamma,
			Examples:          st.Examples,
			SignalsPerMessage: st.SignalsPerMessage,
		})
	}
	return out
}

// FormatTable5 renders the rows in the paper's layout.
func FormatTable5(rows []Table5Row, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: data set statistics (scale %g of paper examples)\n", scale)
	fmt.Fprintf(&b, "%-28s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12s", r.Name)
	}
	b.WriteByte('\n')
	line := func(label string, f func(Table5Row) string) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%12s", f(r))
		}
		b.WriteByte('\n')
	}
	line("# signal types", func(r Table5Row) string { return fmt.Sprint(r.SignalTypes) })
	line("# signal types - alpha", func(r Table5Row) string { return fmt.Sprint(r.Alpha) })
	line("# signal types - beta", func(r Table5Row) string { return fmt.Sprint(r.Beta) })
	line("# signal types - gamma", func(r Table5Row) string { return fmt.Sprint(r.Gamma) })
	line("# examples", func(r Table5Row) string { return fmt.Sprint(r.Examples) })
	line("mean signal types per msg", func(r Table5Row) string { return fmt.Sprintf("%.2f", r.SignalsPerMessage) })
	return b.String()
}

// ---------------------------------------------------------------- Fig. 5

// Fig5Point is one measurement of the Fig. 5 series.
type Fig5Point struct {
	Dataset  string
	Examples int
	Seconds  float64
}

// Fig5Options tune the sweep.
type Fig5Options struct {
	// Scale of the paper's example counts; default DefaultScale.
	Scale float64
	// Steps per data set; default 8.
	Steps int
	// Workers for the local executor; 0 = GOMAXPROCS.
	Workers int
	// Datasets restricts the sweep (default all three).
	Datasets []string
}

func (o Fig5Options) withDefaults() Fig5Options {
	if o.Scale <= 0 {
		o.Scale = DefaultScale
	}
	if o.Steps < 2 {
		o.Steps = 8
	}
	if len(o.Datasets) == 0 {
		o.Datasets = []string{"SYN", "LIG", "STA"}
	}
	return o
}

// Fig5 reproduces the execution-time-vs-examples sweep: per data set,
// step-wise growing prefixes of K_b run through Algorithm 1 lines 3–11
// (interpretation + reduction) on the local executor; every signal type
// is extracted, identical subsequent instances are removed.
func Fig5(ctx context.Context, opts Fig5Options) ([]Fig5Point, error) {
	opts = opts.withDefaults()
	exec := engine.NewLocal(opts.Workers)
	var out []Fig5Point
	for _, name := range opts.Datasets {
		spec, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		d := gen.Build(spec)
		maxN := int(float64(gen.PaperExamples[spec.Name]) * opts.Scale)
		if maxN < opts.Steps*100 {
			maxN = opts.Steps * 100
		}
		full := d.Generate(maxN)
		fw, err := core.New(d.Catalog, d.DefaultConfig(), exec)
		if err != nil {
			return nil, err
		}
		for s := 1; s <= opts.Steps; s++ {
			n := maxN * s / opts.Steps
			prefix := &trace.Trace{Tuples: full.Tuples[:n]}
			kb := prefix.ToRelation(partitionsFor(exec))
			start := time.Now()
			if _, _, _, err := fw.ExtractAndReduce(ctx, kb); err != nil {
				return nil, err
			}
			out = append(out, Fig5Point{Dataset: spec.Name, Examples: n, Seconds: time.Since(start).Seconds()})
		}
	}
	return out, nil
}

func partitionsFor(exec engine.Executor) int {
	return runtime.GOMAXPROCS(0) * 2
}

// FormatFig5 renders the series as aligned columns (dataset, examples,
// seconds) suitable for plotting.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	b.WriteString("Fig 5: execution time of lines 3-11 vs examples\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "dataset", "examples", "seconds")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %12d %12.4f\n", p.Dataset, p.Examples, p.Seconds)
	}
	return b.String()
}

// Fig5Slope fits log-log regression slopes per data set — the paper
// claims O(n), i.e. slope ≈ 1.
func Fig5Slope(points []Fig5Point) map[string]float64 {
	series := map[string][][2]float64{}
	for _, p := range points {
		if p.Examples > 0 && p.Seconds > 0 {
			series[p.Dataset] = append(series[p.Dataset],
				[2]float64{math.Log(float64(p.Examples)), math.Log(p.Seconds)})
		}
	}
	out := map[string]float64{}
	for name, pts := range series {
		out[name] = slope(pts)
	}
	return out
}

// slope is the least-squares slope of (x, y) pairs.
func slope(pts [][2]float64) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		sxy += p[0] * p[1]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// ---------------------------------------------------------------- Table 6

// Table6Row is one row of the paper's Table 6, plus the cluster
// driver's fault-tolerance counters for the proposed side (all zero on
// the local executor or a healthy cluster) and per-task latency
// quantiles estimated from the telemetry task_seconds histogram delta
// across this row's extractions.
type Table6Row struct {
	Journeys      int
	TraceRows     int
	ExtractedRows int
	Signals       int
	ProposedSec   float64
	InhouseSec    float64
	Speedup       float64
	Retries       int
	Reconnects    int
	Speculative   int
	DeadlineHits  int
	TaskP50Sec    float64
	TaskP95Sec    float64
	TaskP99Sec    float64
}

// Table6Options tune the comparison.
type Table6Options struct {
	// Scale of the paper's per-journey row count (0.481e9 rows/journey
	// in the paper); default 1e-4 → ~48k rows per journey.
	Scale float64
	// Workers for the proposed (distributed) side; 0 = GOMAXPROCS.
	Workers int
	// Journeys levels; default {1, 7, 12} as in the paper.
	Journeys []int
	// SignalCounts per extraction; default {9, 89}.
	SignalCounts []int
	// Exec optionally overrides the proposed executor (e.g. a cluster
	// driver); nil uses local.
	Exec engine.Executor
}

func (o Table6Options) withDefaults() Table6Options {
	if o.Scale <= 0 {
		o.Scale = 1e-4
	}
	if len(o.Journeys) == 0 {
		o.Journeys = []int{1, 7, 12}
	}
	if len(o.SignalCounts) == 0 {
		o.SignalCounts = []int{9, 89}
	}
	return o
}

// paperRowsPerJourney is Table 6's 0.481·10⁹ trace rows per journey.
const paperRowsPerJourney = 481e6

// Table6 reproduces the signal-extraction comparison: multi-journey LIG
// fleet traces, extraction of 9 vs 89 signals, proposed row-parallel
// pipeline vs in-house ingest-everything baseline. The in-house time is
// measured once per journey level (it does not depend on the number of
// extracted signals).
func Table6(ctx context.Context, opts Table6Options) ([]Table6Row, error) {
	opts = opts.withDefaults()
	exec := opts.Exec
	if exec == nil {
		exec = engine.NewLocal(opts.Workers)
	}
	rowsPerJourney := int(paperRowsPerJourney * opts.Scale)
	if rowsPerJourney < 1000 {
		rowsPerJourney = 1000
	}
	d := gen.Build(gen.LIG)

	var out []Table6Row
	for _, journeys := range opts.Journeys {
		fleet := gen.GenerateJourneys(gen.LIG, journeys, rowsPerJourney)
		traceRows := journeys * rowsPerJourney

		// In-house: sequential ingest of every journey, interpretation
		// of the full catalog on the way in. Time is independent of
		// the extraction below.
		tool, err := inhouse.New(d.Catalog)
		if err != nil {
			return nil, err
		}
		inhouseStart := time.Now()
		for _, j := range fleet {
			if err := tool.Ingest(j); err != nil {
				return nil, err
			}
		}
		inhouseSec := time.Since(inhouseStart).Seconds()

		for _, nSignals := range opts.SignalCounts {
			sids := d.SelectSIDs(nSignals)
			cfg := &rules.DomainConfig{
				Name:        fmt.Sprintf("lig-%d", nSignals),
				SIDs:        sids,
				Constraints: []rules.Constraint{rules.ChangeConstraint("*")},
			}
			ucomb, err := d.Catalog.Select(cfg.SIDs...)
			if err != nil {
				return nil, err
			}
			parts := partitionsFor(exec)
			// The paper measures "interpretation followed by writing
			// the results" for the proposed side (Sec. 5.1) — lines
			// 3–6, not reduction — against the baseline's ingest.
			taskHistBefore := telemetry.Default().HistogramData("task_seconds")
			start := time.Now()
			extracted := 0
			var faults engine.Stats
			for _, j := range fleet {
				ks, exStats, err := interp.Extract(ctx, exec, j.ToRelation(parts), ucomb, interp.DefaultOptions())
				if err != nil {
					return nil, err
				}
				_ = ks
				extracted += exStats.RowsOut
				faults.Add(exStats)
			}
			proposedSec := time.Since(start).Seconds()
			taskHist := telemetry.Default().HistogramData("task_seconds").Sub(taskHistBefore)
			row := Table6Row{
				Journeys:      journeys,
				TraceRows:     traceRows,
				ExtractedRows: extracted,
				Signals:       nSignals,
				ProposedSec:   proposedSec,
				InhouseSec:    inhouseSec,
				Retries:       faults.Retries,
				Reconnects:    faults.Reconnects,
				Speculative:   faults.Speculative,
				DeadlineHits:  faults.DeadlineHits,
				TaskP50Sec:    taskHist.Quantile(0.5),
				TaskP95Sec:    taskHist.Quantile(0.95),
				TaskP99Sec:    taskHist.Quantile(0.99),
			}
			if proposedSec > 0 {
				row.Speedup = inhouseSec / proposedSec
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// FormatTable6 renders the rows in the paper's layout.
func FormatTable6(rows []Table6Row, opts Table6Options) string {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: signal extraction times (scale %g of paper rows; paper: 0.481e9 rows/journey)\n", opts.Scale)
	fmt.Fprintf(&b, "%9s %12s %15s %10s %14s %14s %8s %9s %9s %9s\n",
		"journeys", "trace rows", "extracted rows", "# signals", "proposed [s]", "in-house [s]", "speedup",
		"p50[ms]", "p95[ms]", "p99[ms]")
	var retries, reconnects, speculative, deadlineHits int
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d %12d %15d %10d %14.3f %14.3f %8.2f %9.2f %9.2f %9.2f\n",
			r.Journeys, r.TraceRows, r.ExtractedRows, r.Signals,
			r.ProposedSec, r.InhouseSec, r.Speedup,
			r.TaskP50Sec*1e3, r.TaskP95Sec*1e3, r.TaskP99Sec*1e3)
		retries += r.Retries
		reconnects += r.Reconnects
		speculative += r.Speculative
		deadlineHits += r.DeadlineHits
	}
	if retries+reconnects+speculative+deadlineHits > 0 {
		fmt.Fprintf(&b, "fault tolerance (proposed side): retries=%d reconnects=%d speculative=%d deadline hits=%d\n",
			retries, reconnects, speculative, deadlineHits)
	}
	return b.String()
}
