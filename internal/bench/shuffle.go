package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ivnt/internal/cluster"
	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

// ShuffleOptions tune the shuffle-vs-broadcast join experiment.
type ShuffleOptions struct {
	// Rows in the probe-side trace relation; default 40000.
	Rows int
	// Partitions of the probe relation (= map tasks); default 16.
	Partitions int
	// KeyCard is the join-key cardinality — the build-side dimension
	// table has exactly one row per distinct key; default 16384. The
	// broadcast plan ships this table once per connection (executors ×
	// slots), the shuffle plan moves each row once.
	KeyCard int
	// Parts is the shuffle fan-out; default 2× executors.
	Parts int
	// Executors and slots per executor for the loopback cluster.
	Executors, Slots int
	// Compress turns on DEFLATE for partition payloads.
	Compress bool
}

func (o ShuffleOptions) withDefaults() ShuffleOptions {
	if o.Rows <= 0 {
		o.Rows = 40000
	}
	if o.Partitions <= 0 {
		o.Partitions = 16
	}
	if o.KeyCard <= 0 {
		o.KeyCard = 16384
	}
	if o.Executors <= 0 {
		o.Executors = 4
	}
	if o.Slots <= 0 {
		o.Slots = 2
	}
	if o.Parts <= 0 {
		o.Parts = 2 * o.Executors
	}
	return o
}

// ShuffleResult is one plan's measurement of the same distributed join.
// BytesOnWire is the total driver-visible traffic plus (for the shuffle
// plan) the executor-to-executor partition pushes the driver's byte
// counters cannot see.
type ShuffleResult struct {
	Plan string

	Rows, BuildRows, Partitions, Parts int
	Executors, Tasks, OutRows          int

	BytesSent, BytesRecv, BytesPushed int64
	BytesOnWire                       int64
	// Reduction = broadcast BytesOnWire / this plan's BytesOnWire
	// (1.0 on the broadcast row itself).
	Reduction float64

	// Task latency quantiles (seconds) from the telemetry task_seconds
	// histogram delta across this plan's run.
	TaskP50Sec, TaskP99Sec float64
	// Driver wall time spent blocked on the shuffle barrier (zero for
	// the broadcast plan).
	BarrierWallSec float64

	WallSec float64
}

// shuffleStage builds the join inputs: a wide probe-side trace keyed
// uniformly over KeyCard distinct message IDs, and a build-side
// dimension table with one padded row per key. The build side is what
// separates the plans: broadcast ships it once per connection
// (executors × slots), the shuffle exchange pushes each of its rows to
// exactly one partition owner.
func shuffleStage(opts ShuffleOptions) (probe, build *relation.Relation) {
	probeSchema := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "x", Kind: relation.KindInt},
	)
	rows := make([]relation.Row, opts.Rows)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.01),
			relation.Int(int64(i % opts.KeyCard)),
			relation.Int(int64(i%4096) - 2048),
		}
	}
	probe = relation.FromRows(probeSchema, rows).Repartition(opts.Partitions)

	buildSchema := relation.NewSchema(
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "desc", Kind: relation.KindString},
	)
	trows := make([]relation.Row, opts.KeyCard)
	for i := range trows {
		trows[i] = relation.Row{
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("unit-%05d/signal-channel-%d", i, i%7)),
			relation.Str(fmt.Sprintf("dbc entry %06d: scaled channel, raw*%d/128 offset %d, bounds [-%d, %d]",
				i, i%13+1, i%29, i%200, i%300)),
		}
	}
	build = relation.FromRows(buildSchema, trows).Repartition(opts.Partitions)
	return probe, build
}

// Shuffle runs the same distributed hash join under both physical plans
// on one loopback cluster — broadcast (build table shipped to every
// connection) and shuffle (both sides hash-partitioned executor to
// executor) — and reports bytes-on-wire and task latency for each.
// The returned slice is [broadcast, shuffle].
func Shuffle(ctx context.Context, opts ShuffleOptions) ([]*ShuffleResult, error) {
	opts = opts.withDefaults()
	probe, build := shuffleStage(opts)

	addrs, stop, err := cluster.StartLocalCluster(ctx, opts.Executors)
	if err != nil {
		return nil, err
	}
	defer stop()
	drv := &cluster.Driver{
		Addrs:            addrs,
		SlotsPerExecutor: opts.Slots,
		Compress:         opts.Compress,
		ShuffleParts:     opts.Parts,
	}

	measure := func(plan string, run func() (*relation.Relation, engine.Stats, error)) (*ShuffleResult, error) {
		before := telemetry.Default().HistogramData("task_seconds")
		start := time.Now()
		out, st, err := run()
		if err != nil {
			return nil, fmt.Errorf("shuffle bench: %s plan: %w", plan, err)
		}
		wall := time.Since(start)
		hist := telemetry.Default().HistogramData("task_seconds").Sub(before)
		res := &ShuffleResult{
			Plan:           plan,
			Rows:           probe.NumRows(),
			BuildRows:      build.NumRows(),
			Partitions:     probe.NumPartitions(),
			Parts:          opts.Parts,
			Executors:      opts.Executors,
			Tasks:          st.Tasks,
			OutRows:        out.NumRows(),
			BytesSent:      st.BytesSent,
			BytesRecv:      st.BytesRecv,
			BytesPushed:    st.ShuffleBytesPushed,
			BytesOnWire:    st.BytesSent + st.BytesRecv + st.ShuffleBytesPushed,
			TaskP50Sec:     hist.Quantile(0.5),
			TaskP99Sec:     hist.Quantile(0.99),
			BarrierWallSec: st.ShuffleBarrierWall.Seconds(),
			WallSec:        wall.Seconds(),
		}
		return res, nil
	}

	bcast, err := measure("broadcast", func() (*relation.Relation, engine.Stats, error) {
		ops := []engine.OpDesc{engine.BroadcastJoin(build, []string{"mid"}, []string{"mid"})}
		return drv.RunStage(ctx, probe, ops)
	})
	if err != nil {
		return nil, err
	}
	shuf, err := measure("shuffle", func() (*relation.Relation, engine.Stats, error) {
		return drv.ShuffleJoin(ctx, probe, build, []string{"mid"}, []string{"mid"}, opts.Parts)
	})
	if err != nil {
		return nil, err
	}
	if bcast.OutRows != shuf.OutRows {
		return nil, fmt.Errorf("shuffle bench: plans disagree: broadcast produced %d rows, shuffle %d",
			bcast.OutRows, shuf.OutRows)
	}
	bcast.Reduction = 1
	if shuf.BytesOnWire > 0 {
		shuf.Reduction = float64(bcast.BytesOnWire) / float64(shuf.BytesOnWire)
	}
	return []*ShuffleResult{bcast, shuf}, nil
}

// FormatShuffle renders the plan comparison as an aligned table.
func FormatShuffle(results []*ShuffleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %9s %6s %6s %12s %12s %12s %12s %7s %10s %10s %9s\n",
		"plan", "rows", "build", "parts", "tasks",
		"sent_B", "recv_B", "pushed_B", "wire_B", "reduce",
		"p50_ms", "p99_ms", "wall_ms")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %9d %9d %6d %6d %12d %12d %12d %12d %6.2fx %10.3f %10.3f %9.1f\n",
			r.Plan, r.Rows, r.BuildRows, r.Parts, r.Tasks,
			r.BytesSent, r.BytesRecv, r.BytesPushed, r.BytesOnWire, r.Reduction,
			r.TaskP50Sec*1e3, r.TaskP99Sec*1e3, r.WallSec*1e3)
	}
	return b.String()
}
